#include "inetmodel/internet.hpp"

#include "httpd/http_server.hpp"
#include "tls/tls_server.hpp"
#include "util/rng.hpp"

namespace iwscan::model {
namespace {

/// Table-1 "Error" hosts: the connection is accepted, then reset as soon
/// as the request arrives (middleboxes, IDS appliances, broken daemons).
class AbortApp final : public tcp::Application {
 public:
  void on_data(tcp::TcpConnection& conn, std::span<const std::uint8_t>) override {
    conn.abort();
  }
};

std::string server_header_for(const GroundTruth& gt, util::Rng& rng) {
  // The Akamai "GHost" server string is what the paper's Table 3 service
  // classifier keys on.
  if (gt.as->service_tag == "akamai") return "GHost";
  if (gt.as->service_tag == "cloudflare") return "cloudflare";
  const double r = rng.uniform01();
  if (r < 0.40) return "Apache";
  if (r < 0.70) return "nginx";
  if (r < 0.85) return "Microsoft-IIS/8.5";
  if (r < 0.95) return "lighttpd";
  return "httpd";
}

}  // namespace

InternetModel::InternetModel(sim::Network& network, ModelConfig config)
    : network_(network),
      config_(config),
      registry_(AsRegistry::standard(config.scale_log2)) {}

InternetModel::~InternetModel() {
  network_.loop().cancel(sweep_event_);
  for (const auto& [ip, entry] : hosts_) {
    network_.detach(ip);
    network_.clear_path(ip);
  }
}

void InternetModel::install() {
  network_.set_resolver([this](net::IPv4Address ip) { return resolve(ip); });
  sweep_event_ = network_.loop().schedule(config_.sweep_interval, [this] { sweep(); });
}

sim::Endpoint* InternetModel::resolve(net::IPv4Address ip) {
  const GroundTruth gt = truth(ip);
  if (!gt.present) return nullptr;  // dark space: probes just time out

  HostEntry entry;
  if (gt.adversary) {
    AdversarialHost adv = make_adversarial_host(
        network_, ip, *gt.adversary, util::mix64(config_.seed ^ 0xad4eULL, ip.value()));
    entry.endpoint = std::move(adv.endpoint);
    entry.quiescent = std::move(adv.quiescent);
  } else {
    auto host = build_host(ip, gt);
    tcp::TcpHost* raw = host.get();
    entry.endpoint = std::move(host);
    entry.quiescent = [raw] { return raw->quiescent(); };
  }
  sim::Endpoint* raw = entry.endpoint.get();

  sim::PathConfig path = network_.default_path();
  path.latency = sim::usec(gt.latency_us);
  path.jitter = config_.jitter;
  path.loss_rate = config_.loss_rate;
  path.reorder_rate = config_.reorder_rate;
  path.duplicate_rate = config_.duplicate_rate;
  path.path_mtu = gt.path_mtu;
  network_.set_path(ip, path);

  network_.attach(ip, raw);
  hosts_.emplace(ip, std::move(entry));
  ++instantiated_;
  return raw;
}

std::unique_ptr<tcp::TcpHost> InternetModel::build_host(net::IPv4Address ip,
                                                        const GroundTruth& gt) {
  util::Rng rng(util::mix64(config_.seed ^ 0xb111dULL, ip.value()));

  tcp::StackConfig base;
  base.os = gt.os;
  base.own_mss_limit = static_cast<std::uint16_t>(
      gt.path_mtu >= 1500 ? 1460 : gt.path_mtu - 40);
  auto host = std::make_unique<tcp::TcpHost>(network_, ip, base,
                                             util::mix64(config_.seed, ip.value()));

  const std::string server_header = server_header_for(gt, rng);

  if (gt.http) {
    tcp::StackConfig http_stack = base;
    http_stack.iw = gt.http_iw;

    if (gt.http_category == HttpCategory::Abort) {
      host->listen(80,
                   [](net::IPv4Address, std::uint16_t) {
                     return std::make_unique<AbortApp>();
                   },
                   http_stack);
    } else {
      http::WebConfig web;
      web.server_header = server_header;
      if (gt.http_vhost_iw) {
        web.vhost_iw = gt.http_vhost_iw;
        web.canonical_name = gt.canonical_name;
      }
      switch (gt.http_category) {
        case HttpCategory::SuccessDirect:
          web.root = http::RootBehavior::Page;
          web.page_size = gt.http_page_bytes;
          break;
        case HttpCategory::SuccessRedirect:
          web.root = http::RootBehavior::RedirectToName;
          web.canonical_name = gt.canonical_name;
          web.redirected_page_size = gt.redirect_page_bytes;
          break;
        case HttpCategory::SuccessEcho:
          web.root = http::RootBehavior::NotFoundEcho;
          web.not_found_extra = 160;
          break;
        case HttpCategory::FewData: {
          const std::uint32_t eff = gt.os == tcp::OsProfile::Windows ? 536 : 64;
          const std::size_t span = gt.few_bound * eff - eff / 2;
          const std::size_t overhead =
              http_response_overhead(server_header, 200, span, true);
          if (span > overhead + 8) {
            web.root = http::RootBehavior::Page;
            web.page_size = gt.http_page_bytes;
          } else {
            web.root = http::RootBehavior::RawBanner;
            web.page_size = gt.http_page_bytes;
          }
          break;
        }
        case HttpCategory::NoData:
          web.root = http::RootBehavior::Silent;
          break;
        case HttpCategory::Abort:
          break;  // handled above
      }
      host->listen(80, http::HttpServerApp::factory(std::move(web)), http_stack);
    }
  }

  if (gt.tls) {
    tcp::StackConfig tls_stack = base;
    tls_stack.iw = gt.tls_iw;

    if (gt.tls_category == TlsCategory::Abort) {
      host->listen(443,
                   [](net::IPv4Address, std::uint16_t) {
                     return std::make_unique<AbortApp>();
                   },
                   tls_stack);
    } else {
      tls::TlsConfig cfg;
      cfg.chain_bytes = gt.chain_bytes;
      cfg.server_name = gt.canonical_name;
      cfg.seed = util::mix64(config_.seed, ip.value() ^ 3);
      cfg.ocsp_staple = gt.ocsp_staple;
      cfg.sni_iw = gt.tls_vhost_iw;
      switch (gt.tls_category) {
        case TlsCategory::Normal:
          cfg.sni_policy = tls::SniPolicy::Ignore;
          break;
        case TlsCategory::SniAlert:
          cfg.sni_policy = tls::SniPolicy::AlertAndClose;
          break;
        case TlsCategory::SniSilent:
          cfg.sni_policy = tls::SniPolicy::SilentClose;
          break;
        case TlsCategory::ExoticCipher:
          cfg.supported_ciphers = tls::cipher_set(tls::CipherProfile::Exotic);
          break;
        case TlsCategory::Abort:
          break;  // handled above
      }
      host->listen(443, tls::TlsServerApp::factory(std::move(cfg)), tls_stack);
    }
  }

  return host;
}

void InternetModel::sweep() {
  sweep_event_ = network_.loop().schedule(config_.sweep_interval, [this] { sweep(); });
  for (auto it = hosts_.begin(); it != hosts_.end();) {
    if (it->second.quiescent()) {
      network_.detach(it->first);
      network_.clear_path(it->first);
      it = hosts_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace iwscan::model
