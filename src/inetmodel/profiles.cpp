#include "inetmodel/profiles.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "httpd/http_message.hpp"
#include "inetmodel/censys_certs.hpp"
#include "util/rng.hpp"

namespace iwscan::model {
namespace {

tcp::IwConfig draw_iw(const std::vector<IwMixEntry>& mix, util::Rng& rng) {
  if (mix.empty()) return tcp::IwConfig::segments_of(10);
  double total = 0;
  for (const auto& entry : mix) total += entry.weight;
  double pick = rng.uniform01() * total;
  for (const auto& entry : mix) {
    if (pick < entry.weight) return entry.iw;
    pick -= entry.weight;
  }
  return mix.back().iw;
}

/// Smallest standard segment-IW ≥ bound (used so a few-data host's true IW
/// is consistent with the data it manages to send).
std::uint32_t standard_iw_at_least(std::uint32_t bound) {
  for (const std::uint32_t candidate : {1u, 2u, 4u, 10u, 16u, 32u, 64u}) {
    if (candidate >= bound) return candidate;
  }
  return bound;
}

std::uint32_t draw_path_mtu(util::Rng& rng) {
  // Tuned so that P(MSS ≥ 1436) ≈ 0.80 and P(MSS ≥ 1336) ≈ 0.99
  // (footnote 1 of the paper).
  const double r = rng.uniform01();
  if (r < 0.70) return 1500;
  if (r < 0.76) return 1492;  // PPPoE
  if (r < 0.80) return 1476;  // MSS 1436 boundary
  if (r < 0.92) return 1400;
  if (r < 0.99) return 1376;  // MSS 1336 boundary
  return 576;
}

std::string hex_name(std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%08llx",
                static_cast<unsigned long long>(value & 0xffffffffULL));
  return buf;
}

}  // namespace

std::size_t http_response_overhead(std::string_view server_header, int status,
                                   std::size_t body_size, bool connection_close) {
  http::HttpResponse response;
  response.status = status;
  response.reason = status == 200 ? "OK" : (status == 404 ? "Not Found" : "Moved");
  response.headers.push_back({"Server", std::string(server_header)});
  response.headers.push_back({"Content-Type", "text/html"});
  if (connection_close) response.headers.push_back({"Connection", "close"});
  response.body.assign(body_size, 'x');
  return response.serialize().size() - body_size;
}

std::uint32_t GroundTruth::true_iw_segments(bool for_tls,
                                            std::uint16_t announced_mss,
                                            bool vhost) const {
  const tcp::IwConfig* iw = for_tls ? &tls_iw : &http_iw;
  if (vhost) {
    const auto& split = for_tls ? tls_vhost_iw : http_vhost_iw;
    if (split) iw = &*split;
  }
  const std::uint16_t eff = tcp::effective_mss(os, announced_mss, 1460);
  const std::uint32_t cwnd = iw->initial_cwnd(eff);
  return (cwnd + eff - 1) / eff;  // partial trailing segment counts
}

namespace {

/// Epoch at which a host's (salt-identified) upgrade lands: geometric in the
/// per-epoch rate, deterministic per (seed, salt, ip), ≥ 1.
int upgrade_epoch(std::uint64_t seed, std::uint64_t salt, net::IPv4Address ip,
                  double rate) {
  if (rate <= 0.0) return std::numeric_limits<int>::max();
  const double u =
      static_cast<double>(util::mix64(seed ^ salt, ip.value()) >> 11) * 0x1.0p-53;
  const double epochs = std::log(1.0 - u) / std::log(1.0 - std::min(rate, 0.999));
  return 1 + static_cast<int>(epochs);
}

}  // namespace

GroundTruth synthesize_host(const AsRegistry& registry, std::uint64_t seed,
                            net::IPv4Address ip, const DriftParams& drift,
                            const AdversarialParams& adversarial,
                            const CdnParams& cdn) {
  GroundTruth gt;
  const AsInfo* as = registry.find(ip);
  if (as == nullptr) return gt;
  gt.as = as;
  gt.popular = as->popular_prefix && as->popular_prefix->contains(ip);
  const AsArchetype& arch = gt.popular ? as->popular_archetype : as->archetype;

  util::Rng rng(util::mix64(seed, ip.value()));
  if (!rng.chance(arch.host_density)) return gt;
  gt.present = true;

  {
    const double r = rng.uniform01();
    if (r < arch.p_http_only) {
      gt.http = true;
    } else if (r < arch.p_http_only + arch.p_tls_only) {
      gt.tls = true;
    } else if (r < arch.p_http_only + arch.p_tls_only + arch.p_both) {
      gt.http = gt.tls = true;
    }
    // Remainder: present but neither web port open (probes see RST).
  }

  gt.os = rng.chance(arch.windows_share) ? tcp::OsProfile::Windows
                                         : tcp::OsProfile::Linux;
  gt.http_iw = draw_iw(arch.http.iw_mix, rng);
  gt.tls_iw = draw_iw(arch.tls.iw_mix, rng);
  // Dual-service server-class hosts mostly run one kernel stack, so their
  // HTTP and TLS IWs usually agree (paper: 6.2 M of 7 M dual hosts match);
  // the remainder — and CPE-style access hosts, where :80 and :443 are
  // often different devices behind one address — keep independent values
  // ("some services run IW configurations customized to different
  // services").
  if (gt.http && gt.tls) {
    // CDNs are excluded: their per-service IW customization is deliberate
    // (Akamai's TLS IW4 vs. per-customer HTTP IWs, §4.3).
    const bool server_class =
        as->kind == AsKind::Cloud || as->kind == AsKind::Hoster ||
        as->kind == AsKind::Enterprise || as->kind == AsKind::University;
    if (server_class && rng.chance(0.92)) gt.tls_iw = gt.http_iw;
  }

  // Longitudinal drift (§5 trend-monitoring extension): once a legacy-IW
  // Linux host's deterministic kernel-update epoch passes, it runs IW 10 —
  // one kernel, so both services upgrade together.
  if (drift.epoch > 0 && gt.os == tcp::OsProfile::Linux &&
      drift.epoch >=
          upgrade_epoch(seed, 0xeb0c4ULL, ip, drift.upgrade_rate_per_epoch)) {
    const auto upgrade = [](tcp::IwConfig& iw) {
      if (iw.policy == tcp::IwPolicy::Segments && iw.segments <= 4) {
        iw = tcp::IwConfig::segments_of(10);
      }
    };
    upgrade(gt.http_iw);
    upgrade(gt.tls_iw);
  }

  // ---- HTTP behaviour ----------------------------------------------------
  if (gt.http) {
    const HttpArchetype& h = arch.http;
    const double weights[] = {h.success_direct, h.success_redirect, h.success_echo,
                              h.few_data,       h.no_data,          h.abort};
    switch (rng.weighted(weights)) {
      case 0: gt.http_category = HttpCategory::SuccessDirect; break;
      case 1: gt.http_category = HttpCategory::SuccessRedirect; break;
      case 2: gt.http_category = HttpCategory::SuccessEcho; break;
      case 3: gt.http_category = HttpCategory::FewData; break;
      case 4: gt.http_category = HttpCategory::NoData; break;
      default: gt.http_category = HttpCategory::Abort; break;
    }

    if (gt.http_category == HttpCategory::SuccessEcho) {
      // The echoed 404 tops out near ~1.7 kB, which only exceeds the IW for
      // Linux-clamped MSS and IWs ≤ 10 segments — larger/Windows hosts
      // would stay few-data, so the category forces a compatible profile.
      gt.os = tcp::OsProfile::Linux;
      if (gt.http_iw.policy != tcp::IwPolicy::Segments || gt.http_iw.segments > 10) {
        gt.http_iw = tcp::IwConfig::segments_of(10);
      }
    }

    if (gt.http_category == HttpCategory::FewData) {
      const auto& bounds = h.few_bound_weights.empty() ? default_few_bound_weights()
                                                       : h.few_bound_weights;
      gt.few_bound = static_cast<std::uint32_t>(rng.weighted(bounds));
      if (gt.few_bound == 0) gt.few_bound = 1;
      // The host's true IW must be at least the bound (it managed to send
      // that much in one burst) — §4.1: bound-7 hosts "are very likely
      // configured to use an IW of 10".
      if (gt.http_iw.policy == tcp::IwPolicy::Segments &&
          gt.http_iw.segments < gt.few_bound) {
        gt.http_iw = tcp::IwConfig::segments_of(standard_iw_at_least(gt.few_bound));
      }
      // Pick a page size whose total response lands mid-bucket: the
      // estimator's lower bound ceil(span/mss) then equals few_bound.
      const std::uint32_t eff = gt.os == tcp::OsProfile::Windows ? 536 : 64;
      const std::size_t span = gt.few_bound * eff - eff / 2;
      const std::size_t overhead = http_response_overhead("Apache", 200, span, true);
      if (span > overhead + 8) {
        gt.http_page_bytes = span - overhead;
      } else {
        gt.http_page_bytes = span;  // served as a raw banner (non-HTTP)
      }
    }

    if (gt.http_category == HttpCategory::SuccessDirect ||
        gt.http_category == HttpCategory::SuccessRedirect) {
      // Enough data to overflow the IW in both MSS passes plus slack for
      // the verification window.
      const std::uint16_t eff64 = tcp::effective_mss(gt.os, 64, 1460);
      const std::uint16_t eff128 = tcp::effective_mss(gt.os, 128, 1460);
      const std::size_t need = std::max(gt.http_iw.initial_cwnd(eff64),
                                        gt.http_iw.initial_cwnd(eff128)) +
                               2 * std::size_t{eff128};
      const double extra = 400.0 - 2800.0 * std::log(1.0 - rng.uniform01() + 1e-12);
      const std::size_t page = need + static_cast<std::size_t>(extra);
      if (gt.http_category == HttpCategory::SuccessRedirect) {
        gt.redirect_page_bytes = page;
        gt.canonical_name = "www.site-" + hex_name(util::mix64(seed, ip.value() ^ 1)) +
                            ".example";
      } else {
        gt.http_page_bytes = page;
      }
    }
  }

  // ---- TLS behaviour -----------------------------------------------------
  if (gt.tls) {
    const TlsArchetype& t = arch.tls;
    const double normal =
        std::max(0.0, 1.0 - t.sni_alert - t.sni_silent - t.exotic_cipher - t.abort);
    const double weights[] = {normal, t.sni_alert, t.sni_silent, t.exotic_cipher,
                              t.abort};
    switch (rng.weighted(weights)) {
      case 0: gt.tls_category = TlsCategory::Normal; break;
      case 1: gt.tls_category = TlsCategory::SniAlert; break;
      case 2: gt.tls_category = TlsCategory::SniSilent; break;
      case 3: gt.tls_category = TlsCategory::ExoticCipher; break;
      default: gt.tls_category = TlsCategory::Abort; break;
    }
    gt.chain_bytes = CertChainDistribution::sample(rng);
    gt.ocsp_staple = rng.chance(t.ocsp_staple);
    if (gt.canonical_name.empty()) {
      gt.canonical_name =
          "www.site-" + hex_name(util::mix64(seed, ip.value() ^ 1)) + ".example";
    }
  }

  // ---- Reverse DNS ---------------------------------------------------------
  if (rng.chance(arch.rdns_present)) {
    const std::string tag =
        arch.rdns_tag.empty() ? std::string(as->name) : arch.rdns_tag;
    if (rng.chance(arch.rdns_ip_encoded)) {
      char buf[96];
      const char* style = arch.rdns_is_isp
                              ? (rng.chance(0.5) ? "customer" : "dyn")
                              : "host";
      std::snprintf(buf, sizeof(buf), "%s-%u-%u-%u-%u.%s.example", style,
                    ip.octet(0), ip.octet(1), ip.octet(2), ip.octet(3), tag.c_str());
      gt.rdns = buf;
    } else {
      gt.rdns = "srv" + hex_name(util::mix64(seed, ip.value() ^ 2)) + "." + tag +
                ".example";
    }
  }

  gt.path_mtu = draw_path_mtu(rng);
  gt.latency_us = static_cast<std::uint32_t>(rng.between(8'000, 120'000));

  // ---- Adversarial overlay -------------------------------------------------
  // Dedicated RNG stream: the draw sequence above is untouched, so a world
  // with fraction == 0 is byte-identical to one synthesized without the
  // overlay at all.
  if (adversarial.fraction > 0.0) {
    util::Rng adv_rng(util::mix64(seed ^ 0xadde5ULL, ip.value()));
    if (adv_rng.chance(adversarial.fraction)) {
      AdversarialBehavior candidates[kAdversarialBehaviorCount];
      int count = 0;
      for (int i = 0; i < kAdversarialBehaviorCount; ++i) {
        const auto behavior = static_cast<AdversarialBehavior>(i);
        // App-layer pathologies need the matching port open; wire-level
        // ones replace whatever daemons the host would have run.
        if (behavior == AdversarialBehavior::RedirectLoop && !gt.http) continue;
        if (behavior == AdversarialBehavior::TlsFatalAlert && !gt.tls) continue;
        candidates[count++] = behavior;
      }
      gt.adversary = candidates[adv_rng.between(0, count - 1)];
    }
  }

  // ---- CDN overlay ---------------------------------------------------------
  // Modern-stack follow-up: a fraction of the web hosts inside CDN-eligible
  // ASes become edges running the tiered large-IW plans, optionally paced
  // and optionally with a per-vhost IW split. Like the adversarial overlay,
  // everything is drawn from a dedicated stream so fraction == 0 worlds are
  // byte-identical to pre-overlay ones. Adversaries win: a hostile stack is
  // not also a CDN edge.
  if (cdn.fraction > 0.0 && gt.present && !gt.adversary &&
      (gt.http || gt.tls) && arch.cdn_eligible()) {
    util::Rng cdn_rng(util::mix64(seed ^ 0xcd17ULL, ip.value()));
    if (cdn_rng.chance(cdn.fraction)) {
      // Base tier 1..3 (IW16 / IW32 / IW50), popularity-weighted per AS.
      int tier = 1 + static_cast<int>(cdn_rng.weighted(arch.cdn_tier_weights));
      // Longitudinal tier drift: each upgrade step lands at a deterministic
      // geometric epoch (pure in (seed, step, ip) — the draws themselves
      // never depend on the epoch, so advancing the epoch only ever raises
      // the tier: monotone drift).
      for (int step = 0; tier < 3; ++step) {
        int lands_at = 0;
        for (int s = 0; s <= step; ++s) {
          const int draw = upgrade_epoch(seed, 0x7d21fULL + static_cast<std::uint64_t>(s),
                                         ip, cdn.tier_upgrade_rate_per_epoch);
          if (draw >= std::numeric_limits<int>::max() - lands_at) {
            lands_at = std::numeric_limits<int>::max();
            break;
          }
          lands_at += draw;
        }
        if (lands_at > drift.epoch) break;
        ++tier;
      }
      gt.cdn_tier = static_cast<std::uint8_t>(tier);
      gt.os = tcp::OsProfile::Linux;  // the edge fleets are Linux-derived

      // Tier → IwConfig: segment plans by default, byte-budget plans for a
      // share of edges (16/24/32 KiB for tiers 1/2/3).
      const bool byte_tiered = cdn_rng.chance(arch.cdn_byte_tier_share);
      const auto tier_config = [byte_tiered](int t) {
        if (byte_tiered) {
          return tcp::IwConfig::byte_tier_kib(t == 1 ? 16u : t == 2 ? 24u : 32u);
        }
        return t == 1 ? tcp::IwConfig::iw16()
                      : t == 2 ? tcp::IwConfig::iw32() : tcp::IwConfig::iw50();
      };
      tcp::IwConfig edge_iw = tier_config(tier);

      // Paced first flight: spread well past the detection threshold even at
      // the model's minimum RTT (16 ms × 600% = 96 ms > the 80 ms default).
      const bool paced = cdn_rng.chance(arch.cdn_paced_share);
      const std::uint32_t spreads[] = {600, 800, 1200};
      const std::uint32_t spread =
          spreads[cdn_rng.between(0, 2)];  // drawn even when unused: fixed stream
      if (paced) edge_iw = edge_iw.paced_over(spread);

      // Per-vhost split: requests naming the canonical host get the next
      // tier up; a tier-3 edge flips representation (segments ↔ bytes) so
      // the vhost config is still distinct from the IP-as-Host one.
      const bool vhost_split = cdn_rng.chance(arch.cdn_vhost_share);
      if (vhost_split) {
        tcp::IwConfig vhost_iw =
            tier < 3 ? tier_config(tier + 1)
                     : (byte_tiered ? tcp::IwConfig::iw50()
                                    : tcp::IwConfig::byte_tier_kib(32));
        if (paced) vhost_iw = vhost_iw.paced_over(spread);
        if (gt.http) gt.http_vhost_iw = vhost_iw;
        if (gt.tls) gt.tls_vhost_iw = vhost_iw;
      }
      if (gt.http) gt.http_iw = edge_iw;
      if (gt.tls) gt.tls_iw = edge_iw;

      // An edge always serves real content: force the success categories and
      // resize the page so even the largest (vhost) config overflows at both
      // announced MSSes, with verification slack.
      if (gt.canonical_name.empty()) {
        gt.canonical_name =
            "www.site-" + hex_name(util::mix64(seed, ip.value() ^ 1)) + ".example";
      }
      const std::uint16_t eff64 = tcp::effective_mss(gt.os, 64, 1460);
      const std::uint16_t eff128 = tcp::effective_mss(gt.os, 128, 1460);
      std::size_t need = 0;
      const auto consider = [&need, eff64, eff128](const tcp::IwConfig& iw) {
        need = std::max({need, std::size_t{iw.initial_cwnd(eff64)},
                         std::size_t{iw.initial_cwnd(eff128)}});
      };
      consider(edge_iw);
      if (gt.http_vhost_iw) consider(*gt.http_vhost_iw);
      if (gt.tls_vhost_iw) consider(*gt.tls_vhost_iw);
      need += 2 * std::size_t{eff128};
      const double extra =
          400.0 - 2800.0 * std::log(1.0 - cdn_rng.uniform01() + 1e-12);
      if (gt.http) {
        gt.http_category = HttpCategory::SuccessDirect;
        gt.http_page_bytes = need + static_cast<std::size_t>(extra);
        gt.redirect_page_bytes = 0;
        gt.few_bound = 0;
      }
      if (gt.tls) {
        gt.tls_category = TlsCategory::Normal;
        // Edge chains are padded (full chains, SCTs, OCSP) well past the
        // Fig. 2 mean — large enough that the ServerHello flight overflows
        // even the vhost window, so TLS probes measure the IW, not the chain.
        gt.chain_bytes = std::max(gt.chain_bytes, need + 512);
      }
    }
  }
  return gt;
}

}  // namespace iwscan::model
