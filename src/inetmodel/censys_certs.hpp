// Certificate-chain length distribution, anchored to the censys.io analysis
// in §3.3 / Fig. 2 of the paper:
//
//   * 36.5 M hosts analyzed, mean chain length 2186 B, min 36 B, max 65 kB;
//   * ≥ 640 B (10 segments × 64 B MSS) for ~86 % of hosts;
//   * ≥ 2176 B (34 segments × 64 B) for ~50 % of hosts.
//
// The paper's raw dataset is proprietary, so we substitute an empirical
// quantile table interpolated between those published anchors (DESIGN.md
// §2); sampling inverts the piecewise-linear CDF.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace iwscan::model {

class CertChainDistribution {
 public:
  static constexpr std::size_t kMinBytes = 36;
  static constexpr std::size_t kMaxBytes = 65'000;

  /// Draw one chain length (bytes).
  [[nodiscard]] static std::size_t sample(util::Rng& rng) noexcept;

  /// Deterministic draw for a given host (pure in (seed, key)).
  [[nodiscard]] static std::size_t sample_for(std::uint64_t seed,
                                              std::uint64_t key) noexcept;

  /// CCDF P(length ≥ bytes) of the model distribution (for Fig. 2 checks).
  [[nodiscard]] static double ccdf(double bytes) noexcept;

 private:
  [[nodiscard]] static std::size_t inverse_cdf(double quantile) noexcept;
};

}  // namespace iwscan::model
