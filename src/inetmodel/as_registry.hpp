// Synthetic autonomous-system registry.
//
// Stands in for the real AS topology (DESIGN.md §2): ~30 ASes modeled on
// the networks the paper names (Amazon, Akamai, Cloudflare, Azure, GoDaddy,
// Comcast, Telmex, Vodafone IT, Korea Telecom, universities, national
// backbones, …), each with CIDR prefixes carved from a configurable
// universe and an *archetype* describing its host population:
// IW mixes per protocol (Table 3 anchors), HTTP response behaviours
// (§3.2), TLS policies (§3.3), OS shares, and reverse-DNS style.
//
// Every AS's first prefix reserves a small "popular" sub-block whose hosts
// use the Alexa-style mix (Fig. 4): popularity is thus decidable from the
// IP alone, keeping host synthesis a pure function.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "netbase/ipv4.hpp"
#include "tcpstack/config.hpp"
#include "tls/ciphers.hpp"

namespace iwscan::model {

enum class AsKind {
  Cloud,
  Cdn,
  Hoster,
  Isp,        // transit/eyeball ISP with legacy server population
  Access,     // residential access network (CPE devices)
  University,
  Backbone,
  Enterprise,
};

[[nodiscard]] std::string_view to_string(AsKind kind) noexcept;

/// One entry of an initial-window mix.
struct IwMixEntry {
  tcp::IwConfig iw;
  double weight = 0;
};

/// HTTP response-behaviour categories (observable classes from §3.2/§4.1).
enum class HttpCategory {
  SuccessDirect,    // "/" serves a page larger than any plausible IW
  SuccessRedirect,  // 301 to a canonical name; the target page is large
  SuccessEcho,      // 404 that echoes the URI; the long-URI retry succeeds
  FewData,          // response sized below the IW → lower bound only
  NoData,           // accepts the connection, never sends a byte
  Abort,            // resets when the request arrives (Table 1 "Error")
};

/// TLS host behaviour categories (§3.3, Table 2 discussion).
enum class TlsCategory {
  Normal,        // first flight with a censys-distributed cert chain
  SniAlert,      // fatal unrecognized_name without SNI → ~1 segment
  SniSilent,     // closes silently without SNI → NoData
  ExoticCipher,  // no suite in common → handshake_failure alert
  Abort,         // resets on ClientHello (Table 1 "Error")
};

struct HttpArchetype {
  std::vector<IwMixEntry> iw_mix;
  // Category weights (normalized at draw time).
  double success_direct = 0.28;
  double success_redirect = 0.13;
  double success_echo = 0.10;
  double few_data = 0.45;
  double no_data = 0.023;
  double abort = 0.016;
  // Few-data lower-bound targets: weight of bound k at index k (index 0
  // unused; NoData is its own category). Defaults to the global Table 2
  // anchored distribution when empty.
  std::vector<double> few_bound_weights;
};

struct TlsArchetype {
  std::vector<IwMixEntry> iw_mix;
  double sni_alert = 0.075;
  double sni_silent = 0.024;
  double exotic_cipher = 0.008;
  double abort = 0.011;
  double ocsp_staple = 0.30;  // of normal hosts (2017-era stapling share)
  tls::CipherProfile ciphers = tls::CipherProfile::Standard;
};

struct AsArchetype {
  double host_density = 0.25;  // P(an address in the prefix hosts anything)
  double p_http_only = 0.55;   // given a host is present
  double p_tls_only = 0.25;
  double p_both = 0.20;
  double windows_share = 0.10;
  double rdns_present = 0.70;
  double rdns_ip_encoded = 0.40;  // of hosts with rDNS
  std::string rdns_tag;           // domain label, e.g. "comcastline"
  bool rdns_is_isp = false;       // appears on the access-classifier lists
  HttpArchetype http;
  TlsArchetype tls;

  // CDN overlay eligibility (the 2019 follow-up; see CdnParams in
  // profiles.hpp). Relative weights for the IW16/IW32/IW50 tiers assigned
  // to overlaid hosts — all-zero means the AS never hosts a CDN edge and
  // the overlay skips it entirely. Popular sub-blocks bias toward the
  // higher tiers (popularity-weighted IW, Fig. 4 style).
  std::array<double, 3> cdn_tier_weights{0.0, 0.0, 0.0};
  double cdn_paced_share = 0.0;      // of overlaid hosts: paced first flight
  double cdn_byte_tier_share = 0.0;  // of overlaid hosts: byte-budget tiers
  double cdn_vhost_share = 0.0;      // of overlaid hosts: per-vhost IW split

  [[nodiscard]] bool cdn_eligible() const noexcept {
    return cdn_tier_weights[0] + cdn_tier_weights[1] + cdn_tier_weights[2] > 0.0;
  }
};

struct AsInfo {
  std::uint32_t asn = 0;
  std::string name;
  AsKind kind;
  std::vector<net::Cidr> prefixes;
  std::optional<net::Cidr> popular_prefix;  // Alexa-style sub-block
  AsArchetype archetype;
  AsArchetype popular_archetype;  // used inside popular_prefix
  std::string service_tag;        // "akamai", "ec2", "cloudflare", "azure", ""
};

class AsRegistry {
 public:
  /// Build the standard registry in a universe of 2^scale_log2 addresses
  /// starting at 10.0.0.0 (scale_log2 in [12, 24]; default 20 ≈ 1M).
  [[nodiscard]] static AsRegistry standard(int scale_log2 = 20);

  [[nodiscard]] const std::vector<AsInfo>& all() const noexcept { return ases_; }
  [[nodiscard]] const AsInfo* find(net::IPv4Address addr) const noexcept;
  [[nodiscard]] const AsInfo* by_asn(std::uint32_t asn) const noexcept;
  [[nodiscard]] const AsInfo* by_name(std::string_view name) const noexcept;

  /// Allowlist for a full scan: every AS prefix.
  [[nodiscard]] std::vector<net::Cidr> scan_space() const;
  /// Allowlist for the Alexa-style scan: the popular sub-blocks.
  [[nodiscard]] std::vector<net::Cidr> popular_space() const;
  /// Total addresses in scan_space().
  [[nodiscard]] std::uint64_t scan_space_size() const noexcept;

  /// True if addr falls inside an AS's popular sub-block.
  [[nodiscard]] bool is_popular(net::IPv4Address addr) const noexcept;

 private:
  struct Range {
    std::uint32_t start;
    std::uint32_t end;  // inclusive
    std::size_t as_index;
  };

  void index_ranges();

  std::vector<AsInfo> ases_;
  std::vector<Range> ranges_;  // sorted by start
};

/// The global Table-2-anchored few-data lower-bound weights (index = bound).
[[nodiscard]] const std::vector<double>& default_few_bound_weights();

}  // namespace iwscan::model
