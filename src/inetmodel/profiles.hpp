// Host ground truth: a pure, deterministic function (registry, seed, ip) →
// everything about the host at that address. Because it is pure, the
// simulator can materialize hosts lazily during a scan, and the analysis /
// validation code can recompute the truth for any address without storing
// millions of records.
#pragma once

#include <optional>
#include <string>

#include "inetmodel/adversarial.hpp"
#include "inetmodel/as_registry.hpp"
#include "netbase/ipv4.hpp"
#include "tcpstack/config.hpp"

namespace iwscan::model {

struct GroundTruth {
  bool present = false;  // something answers at this address
  bool http = false;     // port 80 open
  bool tls = false;      // port 443 open
  const AsInfo* as = nullptr;
  bool popular = false;  // inside the AS's Alexa-style sub-block

  tcp::OsProfile os = tcp::OsProfile::Linux;
  tcp::IwConfig http_iw;
  tcp::IwConfig tls_iw;

  HttpCategory http_category = HttpCategory::SuccessDirect;
  std::uint32_t few_bound = 0;     // HTTP FewData target (segments at 64 B)
  std::size_t http_page_bytes = 0; // body size of the canonical page
  std::size_t redirect_page_bytes = 0;
  std::string canonical_name;

  TlsCategory tls_category = TlsCategory::Normal;
  std::size_t chain_bytes = 0;
  bool ocsp_staple = false;

  std::string rdns;  // empty if no PTR record
  std::uint32_t path_mtu = 1500;
  std::uint32_t latency_us = 40'000;  // one-way, microseconds

  // Hostile-stack overlay: when set, the modeled daemons above are replaced
  // by the named pathology (see inetmodel/adversarial.hpp).
  std::optional<AdversarialBehavior> adversary;

  // CDN overlay (modern-stack follow-up). Tier 0 = not overlaid; tiers
  // 1/2/3 map to the IW16/IW32/IW50 (or 16/24/32 KiB byte-budget) plans.
  // When the vhost configs are set, the edge serves a *different* IwConfig
  // for requests naming the canonical host (Host header / SNI) than for
  // IP-as-Host probes — the per-vhost split real CDNs exhibit.
  std::uint8_t cdn_tier = 0;
  std::optional<tcp::IwConfig> http_vhost_iw;
  std::optional<tcp::IwConfig> tls_vhost_iw;

  /// True IW in segments for a protocol, under an announced MSS, given the
  /// host's OS clamping — the value a perfect estimator should measure.
  /// `vhost` selects the per-vhost config (requests that name the canonical
  /// host); it falls back to the default config when the host has no split.
  [[nodiscard]] std::uint32_t true_iw_segments(bool for_tls,
                                               std::uint16_t announced_mss,
                                               bool vhost = false) const;
};

/// Longitudinal drift parameters (the §5 trend-monitoring extension).
struct DriftParams {
  int epoch = 0;                       // 0 = the paper's snapshot
  double upgrade_rate_per_epoch = 0.06;  // legacy-Linux → IW10 per epoch
};

/// Adversarial overlay parameters: `fraction` of present hosts swap their
/// modeled daemons for a hostile behavior. Drawn from a dedicated RNG
/// stream, so fraction == 0 worlds are byte-identical to pre-overlay ones.
struct AdversarialParams {
  double fraction = 0.0;
};

/// CDN overlay parameters: `fraction` of present web hosts inside
/// CDN-eligible ASes (see AsArchetype::cdn_tier_weights) become modern CDN
/// edges with tiered large IWs, paced first flights, and per-vhost splits.
/// Drawn from a dedicated RNG stream, so fraction == 0 worlds are
/// byte-identical to pre-overlay ones. Tier drift is monotone in the epoch:
/// an edge only ever moves to a higher tier as epochs advance.
struct CdnParams {
  double fraction = 0.0;
  double tier_upgrade_rate_per_epoch = 0.08;
};

/// Synthesize the ground truth for one address. Pure in (seed, ip, drift,
/// adversarial, cdn); upgrades are monotone in the epoch (a host never
/// downgrades).
[[nodiscard]] GroundTruth synthesize_host(const AsRegistry& registry,
                                          std::uint64_t seed, net::IPv4Address ip,
                                          const DriftParams& drift = {},
                                          const AdversarialParams& adversarial = {},
                                          const CdnParams& cdn = {});

/// Exact on-wire size of an HTTP response head + body produced by our
/// httpd for the given parameters (used to hit few-data bound targets).
[[nodiscard]] std::size_t http_response_overhead(std::string_view server_header,
                                                 int status, std::size_t body_size,
                                                 bool connection_close);

}  // namespace iwscan::model
