// The simulated Internet: lazily materializes hosts (TCP stack + HTTP/TLS
// applications + path characteristics) from the pure ground-truth function
// when a probe first reaches their address, and evicts them again once
// quiescent — so a sweep over millions of addresses holds only the
// in-flight hosts in memory, mirroring how the real Internet holds no
// per-scanner state at all.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "inetmodel/as_registry.hpp"
#include "inetmodel/profiles.hpp"
#include "netsim/network.hpp"
#include "tcpstack/host.hpp"

namespace iwscan::model {

struct ModelConfig {
  int scale_log2 = 18;       // universe of 2^N addresses (default 256 Ki)
  std::uint64_t seed = 42;
  double loss_rate = 0.002;  // per-packet, per-direction
  double reorder_rate = 0.003;
  double duplicate_rate = 0.0;
  sim::SimTime jitter = sim::msec(3);
  sim::SimTime sweep_interval = sim::sec(5);
  // Hostile-stack overlay: this fraction of present hosts swap their modeled
  // daemons for a pathology from inetmodel/adversarial.hpp. Drawn from a
  // dedicated RNG stream, so 0.0 reproduces pre-overlay worlds exactly.
  double adversarial_fraction = 0.0;
  // Longitudinal drift (the §5 trend-monitoring extension): each epoch,
  // a fraction of legacy-IW Linux hosts upgrades to IW 10 (kernel/distro
  // updates — the mechanism the paper names for the slow IW10 adoption).
  // Upgrades are deterministic per host and monotone across epochs.
  int epoch = 0;
  double upgrade_rate_per_epoch = 0.06;
  // CDN overlay (modern-stack follow-up): this fraction of present web hosts
  // inside CDN-eligible ASes become tiered large-IW edges (paced first
  // flights, per-vhost splits). Dedicated RNG stream: 0.0 reproduces
  // pre-overlay worlds exactly. Tier drift shares `epoch` above.
  double cdn_fraction = 0.0;
  double cdn_tier_upgrade_rate = 0.08;
};

class InternetModel {
 public:
  InternetModel(sim::Network& network, ModelConfig config);
  ~InternetModel();

  InternetModel(const InternetModel&) = delete;
  InternetModel& operator=(const InternetModel&) = delete;

  /// Register the lazy resolver with the network and start the eviction
  /// sweeper. Call once before scanning.
  void install();

  [[nodiscard]] const AsRegistry& registry() const noexcept { return registry_; }
  [[nodiscard]] const ModelConfig& config() const noexcept { return config_; }

  /// Ground truth for any address (pure; does not materialize the host).
  [[nodiscard]] GroundTruth truth(net::IPv4Address ip) const {
    return synthesize_host(registry_, config_.seed, ip,
                           DriftParams{config_.epoch, config_.upgrade_rate_per_epoch},
                           AdversarialParams{config_.adversarial_fraction},
                           CdnParams{config_.cdn_fraction, config_.cdn_tier_upgrade_rate});
  }

  [[nodiscard]] std::size_t live_hosts() const noexcept { return hosts_.size(); }
  [[nodiscard]] std::uint64_t hosts_instantiated() const noexcept {
    return instantiated_;
  }

 private:
  /// A materialized host: modeled TcpHost or adversarial raw endpoint,
  /// plus the quiescence probe the eviction sweep polls.
  struct HostEntry {
    std::unique_ptr<sim::Endpoint> endpoint;
    std::function<bool()> quiescent;
  };

  sim::Endpoint* resolve(net::IPv4Address ip);
  [[nodiscard]] std::unique_ptr<tcp::TcpHost> build_host(net::IPv4Address ip,
                                                         const GroundTruth& gt);
  void sweep();

  sim::Network& network_;
  ModelConfig config_;
  AsRegistry registry_;
  std::unordered_map<net::IPv4Address, HostEntry> hosts_;
  sim::EventId sweep_event_ = sim::kNullEvent;
  std::uint64_t instantiated_ = 0;
};

}  // namespace iwscan::model
