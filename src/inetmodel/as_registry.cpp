#include "inetmodel/as_registry.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace iwscan::model {

std::string_view to_string(AsKind kind) noexcept {
  switch (kind) {
    case AsKind::Cloud: return "cloud";
    case AsKind::Cdn: return "cdn";
    case AsKind::Hoster: return "hoster";
    case AsKind::Isp: return "isp";
    case AsKind::Access: return "access";
    case AsKind::University: return "university";
    case AsKind::Backbone: return "backbone";
    case AsKind::Enterprise: return "enterprise";
  }
  return "?";
}

const std::vector<double>& default_few_bound_weights() {
  // Table 2 (HTTP row), renormalized over bounds 1..14; the 4.8% NoData
  // share is a separate category. The published tail beyond IW10 (~6.2%)
  // is spread over 11..14.
  static const std::vector<double> kWeights = {
      0.0,   // index 0 unused
      16.5, 7.1, 7.2, 2.9, 3.6, 2.0, 45.0, 2.7, 1.1, 0.9,
      2.2, 1.8, 1.2, 1.0,
  };
  return kWeights;
}

namespace {

using SegList = std::initializer_list<std::pair<std::uint32_t, double>>;

std::vector<IwMixEntry> segs(SegList list) {
  std::vector<IwMixEntry> mix;
  mix.reserve(list.size());
  for (const auto& [n, w] : list) {
    mix.push_back({tcp::IwConfig::segments_of(n), w});
  }
  return mix;
}

void add_bytes_entry(std::vector<IwMixEntry>& mix, std::uint32_t bytes, double weight) {
  mix.push_back({tcp::IwConfig::bytes_of(bytes), weight});
}

// ---- archetype factories -------------------------------------------------

AsArchetype content_archetype() {
  AsArchetype a;
  a.host_density = 0.35;
  a.p_http_only = 0.30;
  a.p_tls_only = 0.30;
  a.p_both = 0.40;
  a.windows_share = 0.04;
  a.rdns_present = 0.85;
  a.rdns_ip_encoded = 0.75;
  a.rdns_tag = "cloudhost";
  a.http.iw_mix = segs({{2, 2}, {4, 4}, {10, 92}, {16, 1}, {20, 1}});
  a.http.success_direct = 0.42;
  a.http.success_redirect = 0.22;
  a.http.success_echo = 0.08;
  a.http.few_data = 0.25;
  a.http.no_data = 0.015;
  a.http.abort = 0.015;
  a.tls.iw_mix = segs({{1, 1}, {2, 2}, {4, 5}, {10, 90}, {25, 2}});
  a.tls.sni_alert = 0.05;
  a.tls.sni_silent = 0.015;
  return a;
}

AsArchetype access_archetype() {
  AsArchetype a;
  a.host_density = 0.18;
  a.p_http_only = 0.65;  // CPE admin pages are HTTP-heavy
  a.p_tls_only = 0.20;
  a.p_both = 0.15;
  a.windows_share = 0.06;
  a.rdns_present = 0.92;
  a.rdns_ip_encoded = 0.95;
  a.rdns_is_isp = true;
  // Table 3 "Access NW" anchors: HTTP 3.5/50.2/20.8/21.7 (IW 1/2/4/10),
  // TLS 4.5/17.6/67.1/10.4.
  a.http.iw_mix = segs({{1, 3.5}, {2, 50.2}, {3, 1.5}, {4, 20.8}, {10, 21.7}, {6, 1.0}});
  add_bytes_entry(a.http.iw_mix, 4096, 1.2);   // scattered byte-IW CPE
  add_bytes_entry(a.http.iw_mix, 1536, 0.5);   // MTU-fill monitors
  a.tls.iw_mix = segs({{1, 4.5}, {2, 17.6}, {4, 67.1}, {10, 10.4}, {5, 0.4}});
  a.http.success_direct = 0.24;
  a.http.success_redirect = 0.05;
  a.http.success_echo = 0.12;
  a.http.few_data = 0.53;
  a.http.no_data = 0.04;
  a.http.abort = 0.02;
  a.tls.sni_alert = 0.06;
  a.tls.sni_silent = 0.030;
  a.tls.exotic_cipher = 0.010;
  a.tls.ciphers = tls::CipherProfile::Standard;
  return a;
}

AsArchetype legacy_isp_archetype() {
  AsArchetype a;
  a.host_density = 0.22;
  a.p_http_only = 0.62;
  a.p_tls_only = 0.18;
  a.p_both = 0.20;
  a.windows_share = 0.08;
  a.rdns_present = 0.55;
  a.rdns_ip_encoded = 0.60;
  a.rdns_tag = "netline";
  a.http.iw_mix = segs({{1, 15}, {2, 42}, {3, 8}, {4, 22}, {5, 1}, {10, 11}, {6, 1}});
  a.tls.iw_mix = segs({{1, 14}, {2, 20}, {4, 44}, {10, 20}, {3, 2}});
  a.http.success_direct = 0.26;
  a.http.success_redirect = 0.08;
  a.http.success_echo = 0.10;
  a.http.few_data = 0.50;
  a.http.no_data = 0.04;
  a.http.abort = 0.02;
  a.tls.sni_alert = 0.07;
  a.tls.sni_silent = 0.034;
  return a;
}

AsArchetype hoster_archetype() {
  AsArchetype a;
  a.host_density = 0.40;
  a.p_http_only = 0.35;
  a.p_tls_only = 0.20;
  a.p_both = 0.45;
  a.windows_share = 0.08;
  a.rdns_present = 0.80;
  a.rdns_ip_encoded = 0.55;
  a.rdns_tag = "vserver";
  a.http.iw_mix = segs({{1, 2}, {2, 5}, {4, 8}, {10, 83}, {9, 0.8}, {11, 0.7}, {30, 0.5}});
  a.tls.iw_mix = segs({{1, 2}, {2, 4}, {4, 10}, {10, 80}, {25, 3}, {9, 1}});
  a.http.success_direct = 0.34;
  a.http.success_redirect = 0.18;
  a.http.success_echo = 0.10;
  a.http.few_data = 0.34;
  a.http.no_data = 0.02;
  a.http.abort = 0.02;
  a.tls.sni_alert = 0.07;
  return a;
}

AsArchetype university_archetype() {
  AsArchetype a;
  a.host_density = 0.20;
  a.p_http_only = 0.60;
  a.p_tls_only = 0.15;
  a.p_both = 0.25;
  a.windows_share = 0.08;
  a.rdns_present = 0.90;
  a.rdns_ip_encoded = 0.30;
  a.rdns_tag = "campusnet";
  a.http.iw_mix = segs({{1, 5}, {2, 55}, {3, 4}, {4, 12}, {10, 24}});
  a.tls.iw_mix = segs({{1, 4}, {2, 30}, {4, 30}, {10, 36}});
  a.http.success_direct = 0.30;
  a.http.success_redirect = 0.10;
  a.http.success_echo = 0.12;
  a.http.few_data = 0.50;
  a.http.no_data = 0.03;
  a.http.abort = 0.015;
  return a;
}

AsArchetype backbone_archetype() {
  AsArchetype a;
  a.host_density = 0.12;
  a.p_http_only = 0.70;
  a.p_tls_only = 0.12;
  a.p_both = 0.18;
  a.windows_share = 0.08;
  a.rdns_present = 0.50;
  a.rdns_ip_encoded = 0.55;
  a.rdns_tag = "transit";
  a.http.iw_mix = segs({{1, 25}, {2, 34}, {3, 6}, {4, 19}, {10, 15}, {20, 1}});
  a.tls.iw_mix = segs({{1, 20}, {2, 22}, {4, 34}, {10, 23}, {11, 1}});
  a.http.success_direct = 0.24;
  a.http.success_redirect = 0.06;
  a.http.success_echo = 0.08;
  a.http.few_data = 0.56;
  a.http.no_data = 0.04;
  a.http.abort = 0.02;
  a.tls.sni_alert = 0.085;
  a.tls.sni_silent = 0.036;
  return a;
}

AsArchetype enterprise_archetype() {
  AsArchetype a;
  a.host_density = 0.15;
  a.p_http_only = 0.45;
  a.p_tls_only = 0.25;
  a.p_both = 0.30;
  a.windows_share = 0.20;
  a.rdns_present = 0.60;
  a.rdns_ip_encoded = 0.20;
  a.rdns_tag = "corp";
  a.http.iw_mix = segs({{1, 4}, {2, 20}, {4, 26}, {10, 48}, {5, 1}, {64, 1}});
  a.tls.iw_mix = segs({{1, 3}, {2, 10}, {4, 35}, {10, 50}, {6, 2}});
  a.http.success_direct = 0.30;
  a.http.success_redirect = 0.12;
  a.http.success_echo = 0.08;
  a.http.few_data = 0.46;
  a.http.no_data = 0.02;
  a.http.abort = 0.02;
  return a;
}

/// Alexa-style mix (Fig. 4): high success, strong IW10 dominance.
AsArchetype popular_archetype_for(const AsArchetype& base) {
  AsArchetype a = base;
  a.host_density = std::max(base.host_density, 0.55);
  a.p_both = 0.55;
  a.p_http_only = 0.25;
  a.p_tls_only = 0.20;
  // The AS's own IW mixes are kept: popularity changes how much data a
  // host serves and how well-kept it is, not which kernel/CDN stack it
  // runs (Akamai's popular sites still show Akamai's IW).
  // ASes whose HTTP hosts can never be pushed to success (Akamai after its
  // error-page change) stay that way: popularity does not restore the echo.
  const bool http_unscannable = base.http.success_direct +
                                    base.http.success_redirect +
                                    base.http.success_echo <
                                0.01;
  if (!http_unscannable) {
    a.http.success_direct = 0.52;
    a.http.success_redirect = 0.22;
    a.http.success_echo = 0.06;
    a.http.few_data = 0.17;
    a.http.no_data = 0.01;
    a.http.abort = 0.02;
  }
  a.tls.sni_alert = 0.05;
  a.tls.sni_silent = 0.02;
  a.tls.exotic_cipher = 0.005;
  // Popularity-weighted CDN tiers: the popular sub-block of a CDN-eligible
  // AS skews toward the premium (larger-IW) tiers — high-traffic customers
  // buy the aggressive first-flight plans.
  if (base.cdn_eligible()) {
    a.cdn_tier_weights = {base.cdn_tier_weights[0] * 0.25,
                          base.cdn_tier_weights[1],
                          base.cdn_tier_weights[2] * 3.0};
  }
  return a;
}

struct AsSpec {
  std::uint32_t asn;
  const char* name;
  AsKind kind;
  int size_delta;  // block size = universe >> size_delta
  const char* service_tag;
  AsArchetype archetype;
};

}  // namespace

AsRegistry AsRegistry::standard(int scale_log2) {
  IWSCAN_ASSERT(scale_log2 >= 12 && scale_log2 <= 24,
                "AsRegistry::standard scale must stay within the synthetic "
                "population's supported range");

  std::vector<AsSpec> specs;

  {  // --- Clouds ---
    AsArchetype ec2 = content_archetype();
    // Table 3 EC2 anchors: HTTP 0.0/1.8/3.4/94.7 — TLS 0.2/1.3/2.6/95.8.
    ec2.http.iw_mix = segs({{2, 1.8}, {4, 3.4}, {10, 94.7}});
    ec2.tls.iw_mix = segs({{1, 0.2}, {2, 1.3}, {4, 2.6}, {10, 95.8}});
    ec2.rdns_tag = "compute.amazonia";
    specs.push_back({16509, "Amazon-EC2", AsKind::Cloud, 4, "ec2", ec2});

    AsArchetype azure = content_archetype();
    // Table 3 Azure anchors: HTTP 0.0/7.8/54.9/37.1 — TLS 0.1/4.1/73.3/21.9.
    azure.http.iw_mix = segs({{2, 7.8}, {4, 54.9}, {10, 37.1}, {3, 0.2}});
    azure.tls.iw_mix = segs({{1, 0.1}, {2, 4.1}, {4, 73.3}, {10, 21.9}, {6, 0.6}});
    azure.windows_share = 0.12;
    azure.rdns_tag = "cloudapp.azzure";
    specs.push_back({8075, "Microsoft-Azure", AsKind::Cloud, 5, "azure", azure});

    AsArchetype gcloud = content_archetype();
    gcloud.http.iw_mix = segs({{4, 4}, {10, 95}, {32, 1}});
    gcloud.tls.iw_mix = segs({{4, 5}, {10, 94}, {32, 1}});
    gcloud.rdns_tag = "gcloud";
    specs.push_back({396982, "Googol-Cloud", AsKind::Cloud, 6, "", gcloud});
  }

  {  // --- CDNs ---
    AsArchetype cloudflare = content_archetype();
    // Table 3: Cloudflare 100% IW10 on both protocols.
    cloudflare.http.iw_mix = segs({{10, 100}});
    cloudflare.tls.iw_mix = segs({{10, 100}});
    cloudflare.http.success_direct = 0.55;
    cloudflare.http.success_redirect = 0.25;
    cloudflare.http.few_data = 0.16;
    cloudflare.http.no_data = 0.01;
    cloudflare.http.abort = 0.01;
    cloudflare.host_density = 0.60;
    cloudflare.rdns_tag = "cflare";
    cloudflare.cdn_tier_weights = {55, 35, 10};  // IW16 / IW32 / IW50
    cloudflare.cdn_paced_share = 0.40;
    cloudflare.cdn_byte_tier_share = 0.15;
    cloudflare.cdn_vhost_share = 0.35;
    specs.push_back({13335, "Cloudflare", AsKind::Cdn, 6, "cloudflare", cloudflare});

    AsArchetype akamai = content_archetype();
    // Table 3: Akamai TLS 100% IW4; the HTTP row is all "–" because its
    // default error page stopped echoing the URI mid-study (§4 "Success
    // rates"), so HTTP estimates never succeed.
    akamai.tls.iw_mix = segs({{4, 100}});
    akamai.http.iw_mix = segs({{4, 60}, {16, 20}, {32, 20}});  // per-customer IWs
    akamai.http.success_direct = 0.0;
    akamai.http.success_redirect = 0.0;
    akamai.http.success_echo = 0.0;   // the "Akamai change": no URI echo
    akamai.http.few_data = 0.96;
    akamai.http.no_data = 0.02;
    akamai.http.abort = 0.02;
    akamai.tls.sni_alert = 0.0;
    akamai.tls.sni_silent = 0.0;
    akamai.host_density = 0.55;
    akamai.rdns_tag = "akam";
    akamai.cdn_tier_weights = {70, 25, 5};
    akamai.cdn_paced_share = 0.25;
    akamai.cdn_byte_tier_share = 0.30;  // per-customer byte budgets
    akamai.cdn_vhost_share = 0.50;      // heavily multi-tenant edges
    specs.push_back({20940, "Akamai", AsKind::Cdn, 5, "akamai", akamai});

    AsArchetype fastly = content_archetype();
    fastly.http.iw_mix = segs({{10, 97}, {20, 3}});
    fastly.tls.iw_mix = segs({{10, 96}, {25, 4}});
    fastly.rdns_tag = "fastish";
    fastly.cdn_tier_weights = {40, 40, 20};
    fastly.cdn_paced_share = 0.55;  // aggressive pacer deployment
    fastly.cdn_byte_tier_share = 0.10;
    fastly.cdn_vhost_share = 0.30;
    specs.push_back({54113, "Fastly", AsKind::Cdn, 7, "", fastly});
  }

  {  // --- Hosters ---
    AsArchetype godaddy = hoster_archetype();
    // §4.3: 19.8% of GoDaddy's HTTP hosts (32.7% TLS) use a static IW 48,
    // irrespective of the announced MSS.
    godaddy.http.iw_mix = segs({{2, 4}, {4, 8}, {10, 66}, {48, 19.8}, {1, 2.2}});
    godaddy.tls.iw_mix = segs({{2, 3}, {4, 9}, {10, 54}, {48, 32.7}, {1, 1.3}});
    godaddy.rdns_tag = "secureserver";
    specs.push_back({26496, "GoDaddy", AsKind::Hoster, 6, "", godaddy});

    AsArchetype ovh = hoster_archetype();
    ovh.tls.iw_mix = segs({{1, 2}, {2, 4}, {4, 10}, {10, 77}, {25, 6}, {9, 1}});
    ovh.rdns_tag = "ovhall";
    specs.push_back({16276, "OVH", AsKind::Hoster, 6, "", ovh});

    specs.push_back({24940, "Hetzner", AsKind::Hoster, 7, "", hoster_archetype()});
    specs.push_back({14061, "DigitalOcean", AsKind::Hoster, 7, "", hoster_archetype()});
    AsArchetype unified = hoster_archetype();
    unified.windows_share = 0.30;
    specs.push_back({46606, "UnifiedLayer", AsKind::Hoster, 7, "", unified});
  }

  {  // --- Access networks ---
    AsArchetype comcast = access_archetype();
    comcast.http.iw_mix = segs({{1, 4}, {2, 58}, {4, 16}, {10, 21}, {3, 1}});
    comcast.rdns_tag = "comcastline";
    specs.push_back({7922, "Comcast", AsKind::Access, 4, "access", comcast});

    AsArchetype telmex = access_archetype();
    // §4.2: Technicolor residential modems at Telmex configured with a
    // 4 kB byte-counted IW (64 segments at MSS 64, 32 at MSS 128); a
    // smaller group of devices fills one 1536 B MTU (24 / 12 segments).
    telmex.http.iw_mix = segs({{1, 4}, {2, 44}, {4, 18}, {10, 14}});
    add_bytes_entry(telmex.http.iw_mix, 4096, 30.0);  // Technicolor CPE
    add_bytes_entry(telmex.http.iw_mix, 1536, 5.0);   // MTU-fill devices
    telmex.tls.iw_mix = segs({{1, 5}, {2, 16}, {4, 64}, {10, 13}});
    add_bytes_entry(telmex.tls.iw_mix, 4096, 2.0);
    telmex.rdns_tag = "prod-infinitum";
    specs.push_back({8151, "Telmex", AsKind::Access, 5, "access", telmex});

    AsArchetype vodafone_it = access_archetype();
    vodafone_it.http.iw_mix = segs({{1, 3}, {2, 62}, {4, 14}, {10, 20}, {3, 1}});
    vodafone_it.rdns_tag = "vodafonedsl";
    specs.push_back({30722, "VodafonIT", AsKind::Access, 6, "access", vodafone_it});

    AsArchetype korea_tel = access_archetype();
    korea_tel.http.iw_mix = segs({{1, 6}, {2, 38}, {4, 30}, {10, 24}, {6, 2}});
    korea_tel.tls.iw_mix = segs({{1, 5}, {2, 14}, {4, 70}, {10, 10}, {5, 1}});
    korea_tel.rdns_tag = "kornet";
    specs.push_back({4766, "KoreaTelecom", AsKind::Access, 5, "access", korea_tel});

    AsArchetype dtag = access_archetype();
    dtag.rdns_tag = "dialin-t";
    specs.push_back({3320, "DeutscheTelekom", AsKind::Access, 5, "access", dtag});

    AsArchetype orange = access_archetype();
    orange.rdns_tag = "orangecust";
    specs.push_back({3215, "Orange", AsKind::Access, 6, "access", orange});

    AsArchetype turktel = access_archetype();
    turktel.rdns_tag = "ttnetcust";
    specs.push_back({9121, "TurkTelekom", AsKind::Access, 6, "access", turktel});
  }

  {  // --- ISPs / backbones / universities / enterprises ---
    specs.push_back({4134, "ChinaNet", AsKind::Isp, 3, "", legacy_isp_archetype()});
    specs.push_back({4837, "ChinaUnicom", AsKind::Isp, 4, "", legacy_isp_archetype()});
    specs.push_back({9498, "Nat.Int.Backbone", AsKind::Backbone, 5, "",
                     backbone_archetype()});
    specs.push_back({6453, "TataComm", AsKind::Backbone, 6, "", backbone_archetype()});
    specs.push_back({3356, "Level-Trans", AsKind::Backbone, 6, "",
                     backbone_archetype()});
    AsArchetype univ = university_archetype();
    specs.push_back({680, "RWTH-DFN", AsKind::University, 7, "", univ});
    specs.push_back({3, "MIT-Net", AsKind::University, 7, "", univ});
    specs.push_back({786, "JANET-Campus", AsKind::University, 7, "", univ});
    specs.push_back({2906, "Enterprise-A", AsKind::Enterprise, 6, "",
                     enterprise_archetype()});
    specs.push_back({13414, "Enterprise-B", AsKind::Enterprise, 6, "",
                     enterprise_archetype()});
  }

  {  // --- Additional clouds / hosters / ISPs for per-AS statistics ---
    AsArchetype alibaba = content_archetype();
    alibaba.http.iw_mix = segs({{2, 6}, {4, 10}, {10, 82}, {20, 2}});
    alibaba.tls.iw_mix = segs({{2, 5}, {4, 14}, {10, 79}, {25, 2}});
    alibaba.rdns_tag = "alicloudish";
    specs.push_back({45102, "Alibaba-Cloud", AsKind::Cloud, 5, "", alibaba});

    AsArchetype tencent = content_archetype();
    tencent.http.iw_mix = segs({{2, 8}, {4, 16}, {10, 74}, {16, 2}});
    tencent.tls.iw_mix = segs({{2, 6}, {4, 20}, {10, 72}, {16, 2}});
    tencent.rdns_tag = "tencloudish";
    specs.push_back({45090, "Tencent-Cloud", AsKind::Cloud, 6, "", tencent});

    specs.push_back({60781, "LeaseWeb", AsKind::Hoster, 7, "", hoster_archetype()});

    // A capacity-constrained regional ISP: small IWs remain rational where
    // links are thin (the "large IWs overflow low-capacity links" side of
    // the paper's introduction).
    AsArchetype regional = legacy_isp_archetype();
    regional.http.iw_mix = segs({{1, 30}, {2, 48}, {3, 8}, {4, 10}, {10, 4}});
    regional.tls.iw_mix = segs({{1, 26}, {2, 34}, {4, 30}, {10, 10}});
    regional.rdns_tag = "regionnet";
    specs.push_back({36866, "Regional-ISP", AsKind::Isp, 6, "", regional});

    // Satellite access: tiny path MTUs and legacy stacks.
    AsArchetype satellite = access_archetype();
    satellite.http.iw_mix = segs({{1, 18}, {2, 58}, {4, 16}, {10, 8}});
    satellite.tls.iw_mix = segs({{1, 12}, {2, 30}, {4, 48}, {10, 10}});
    satellite.rdns_tag = "satbeam";
    specs.push_back({22351, "SatNet", AsKind::Access, 8, "access", satellite});
  }

  {  // --- Modern-stack CDNs (longitudinal follow-up population) ---
    // Two edges born after the 2017 measurement: their whole populations
    // already run the large-IW tiers, so the per-provider breakdown has
    // providers whose medians sit at 16/32/50 from epoch T0.
    AsArchetype limelight = content_archetype();
    limelight.http.iw_mix = segs({{10, 30}, {16, 40}, {32, 25}, {50, 5}});
    limelight.tls.iw_mix = segs({{10, 34}, {16, 40}, {32, 22}, {50, 4}});
    add_bytes_entry(limelight.http.iw_mix, 16 * 1024, 4.0);  // byte-tiered plans
    limelight.http.success_direct = 0.52;
    limelight.http.success_redirect = 0.22;
    limelight.http.success_echo = 0.04;
    limelight.http.few_data = 0.18;
    limelight.http.no_data = 0.02;
    limelight.http.abort = 0.02;
    limelight.host_density = 0.50;
    limelight.rdns_tag = "llnw-edge";
    limelight.cdn_tier_weights = {35, 45, 20};
    limelight.cdn_paced_share = 0.50;
    limelight.cdn_byte_tier_share = 0.20;
    limelight.cdn_vhost_share = 0.40;
    specs.push_back({22822, "Limelight", AsKind::Cdn, 7, "", limelight});

    AsArchetype gcore = content_archetype();
    gcore.http.iw_mix = segs({{10, 42}, {16, 30}, {32, 20}, {50, 8}});
    gcore.tls.iw_mix = segs({{10, 46}, {16, 30}, {32, 18}, {50, 6}});
    add_bytes_entry(gcore.tls.iw_mix, 24 * 1024, 3.0);
    gcore.http.success_direct = 0.50;
    gcore.http.success_redirect = 0.24;
    gcore.http.success_echo = 0.04;
    gcore.http.few_data = 0.18;
    gcore.http.no_data = 0.02;
    gcore.http.abort = 0.02;
    gcore.host_density = 0.45;
    gcore.rdns_tag = "gcore-edge";
    gcore.cdn_tier_weights = {30, 40, 30};
    gcore.cdn_paced_share = 0.60;
    gcore.cdn_byte_tier_share = 0.15;
    gcore.cdn_vhost_share = 0.35;
    specs.push_back({199524, "G-Core", AsKind::Cdn, 7, "", gcore});
  }

  // Allocate contiguous power-of-two blocks from 10.0.0.0, largest first so
  // alignment is preserved.
  std::stable_sort(specs.begin(), specs.end(),
                   [](const AsSpec& a, const AsSpec& b) {
                     return a.size_delta < b.size_delta;
                   });

  AsRegistry registry;
  std::uint32_t cursor = net::IPv4Address{10, 0, 0, 0}.value();
  for (const auto& spec : specs) {
    const int prefix_len = 32 - (scale_log2 - spec.size_delta);
    IWSCAN_ASSERT(prefix_len >= 8 && prefix_len <= 28,
                  "AS spec size_delta pushed its prefix outside routable bounds");
    const std::uint64_t block = std::uint64_t{1} << (scale_log2 - spec.size_delta);

    AsInfo info;
    info.asn = spec.asn;
    info.name = spec.name;
    info.kind = spec.kind;
    info.service_tag = spec.service_tag;
    info.archetype = spec.archetype;
    if (info.archetype.http.few_bound_weights.empty()) {
      info.archetype.http.few_bound_weights = default_few_bound_weights();
    }
    info.popular_archetype = popular_archetype_for(info.archetype);
    if (info.popular_archetype.http.few_bound_weights.empty()) {
      info.popular_archetype.http.few_bound_weights = default_few_bound_weights();
    }
    info.prefixes.push_back(net::Cidr{net::IPv4Address{cursor}, prefix_len});

    // Popular (Alexa-style) sub-block: only content networks host popular
    // sites; the first 1/16th of the block, clamped to [/22, /26] so the
    // popular scan has substance at small scales.
    if (spec.kind == AsKind::Cloud || spec.kind == AsKind::Cdn ||
        spec.kind == AsKind::Hoster) {
      const int popular_len = std::clamp(prefix_len + 4, 22, 26);
      info.popular_prefix = net::Cidr{net::IPv4Address{cursor}, popular_len};
    }

    registry.ases_.push_back(std::move(info));
    cursor += static_cast<std::uint32_t>(block);
  }

  registry.index_ranges();
  return registry;
}

void AsRegistry::index_ranges() {
  ranges_.clear();
  for (std::size_t i = 0; i < ases_.size(); ++i) {
    for (const auto& prefix : ases_[i].prefixes) {
      const std::uint32_t start = prefix.first().value();
      const std::uint32_t end =
          start + static_cast<std::uint32_t>(prefix.size() - 1);
      ranges_.push_back(Range{start, end, i});
    }
  }
  std::sort(ranges_.begin(), ranges_.end(),
            [](const Range& a, const Range& b) { return a.start < b.start; });
}

const AsInfo* AsRegistry::find(net::IPv4Address addr) const noexcept {
  const std::uint32_t value = addr.value();
  auto it = std::upper_bound(
      ranges_.begin(), ranges_.end(), value,
      [](std::uint32_t v, const Range& r) { return v < r.start; });
  if (it == ranges_.begin()) return nullptr;
  --it;
  if (value > it->end) return nullptr;
  return &ases_[it->as_index];
}

const AsInfo* AsRegistry::by_asn(std::uint32_t asn) const noexcept {
  for (const auto& as : ases_) {
    if (as.asn == asn) return &as;
  }
  return nullptr;
}

const AsInfo* AsRegistry::by_name(std::string_view name) const noexcept {
  for (const auto& as : ases_) {
    if (as.name == name) return &as;
  }
  return nullptr;
}

std::vector<net::Cidr> AsRegistry::scan_space() const {
  std::vector<net::Cidr> space;
  for (const auto& as : ases_) {
    space.insert(space.end(), as.prefixes.begin(), as.prefixes.end());
  }
  return space;
}

std::vector<net::Cidr> AsRegistry::popular_space() const {
  std::vector<net::Cidr> space;
  for (const auto& as : ases_) {
    if (as.popular_prefix) space.push_back(*as.popular_prefix);
  }
  return space;
}

std::uint64_t AsRegistry::scan_space_size() const noexcept {
  std::uint64_t total = 0;
  for (const auto& as : ases_) {
    for (const auto& prefix : as.prefixes) total += prefix.size();
  }
  return total;
}

bool AsRegistry::is_popular(net::IPv4Address addr) const noexcept {
  const AsInfo* as = find(addr);
  return as != nullptr && as->popular_prefix && as->popular_prefix->contains(addr);
}

}  // namespace iwscan::model
