#include "inetmodel/adversarial.hpp"

#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <variant>

#include "tcpstack/host.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace iwscan::model {
namespace {

// ---------------------------------------------------------------------------
// Raw scripted endpoints: wire-level pathologies that no real TCP stack
// would emit, played directly onto the fabric (the ScriptedServer idiom of
// tests/scripted_host_test.cpp, hardened for concurrent connections and
// lazy eviction). All scheduling is relative to this host's own packet
// arrivals, so behavior is invariant under scan interleaving.
// ---------------------------------------------------------------------------

class RawAdversary final : public sim::Endpoint {
 public:
  RawAdversary(sim::Network& network, net::IPv4Address ip,
               AdversarialBehavior behavior, std::uint64_t seed)
      : network_(network), ip_(ip), behavior_(behavior), seed_(seed) {}

  ~RawAdversary() override {
    for (auto& [key, conn] : conns_) cancel_timers(conn);
  }

  RawAdversary(const RawAdversary&) = delete;
  RawAdversary& operator=(const RawAdversary&) = delete;

  /// Eviction probe for the Internet model: no connection state left.
  [[nodiscard]] bool quiescent() const noexcept { return conns_.empty(); }

  void handle_packet(net::PacketView bytes) override {
    const auto datagram = net::decode_datagram(bytes);
    if (!datagram) return;
    const auto* segment = std::get_if<net::TcpSegment>(&*datagram);
    if (segment == nullptr) return;
    const std::uint32_t key = conn_key(segment->tcp.src_port, segment->tcp.dst_port);

    if (segment->tcp.has(net::kRst)) {
      erase_conn(key);
      return;
    }

    if (segment->tcp.has(net::kSyn)) {
      Conn& conn = conns_[key];
      conn.peer = segment->ip.src;
      conn.peer_port = segment->tcp.src_port;
      conn.local_port = segment->tcp.dst_port;
      conn.isn = static_cast<std::uint32_t>(util::mix64(seed_, key));
      touch(key, conn);
      const std::uint16_t window =
          behavior_ == AdversarialBehavior::ZeroWindow ? 0 : 65535;
      reply(conn, conn.isn, segment->tcp.seq + 1, net::kSyn | net::kAck, window, {});
      return;
    }

    const auto it = conns_.find(key);
    if (it == conns_.end()) return;
    Conn& conn = it->second;
    touch(key, conn);

    if (behavior_ == AdversarialBehavior::Tarpit) return;  // deaf forever

    if (!segment->payload.empty() && !conn.burst_sent) {
      conn.burst_sent = true;
      conn.request_end =
          segment->tcp.seq + static_cast<std::uint32_t>(segment->payload.size());
      on_request(key, conn);
      return;
    }
    if (conn.burst_sent && segment->payload.empty() && segment->tcp.has(net::kAck) &&
        !conn.verify_answered) {
      conn.verify_answered = true;
      on_verify_ack(conn);
    }
  }

 private:
  struct Conn {
    net::IPv4Address peer;
    std::uint16_t peer_port = 0;
    std::uint16_t local_port = 0;
    std::uint32_t isn = 0;
    std::uint32_t request_end = 0;  // ack covering the scanner's request
    bool burst_sent = false;
    bool verify_answered = false;
    int dripped = 0;  // slowloris bytes sent so far
    sim::EventId rto = sim::kNullEvent;
    sim::EventId aux = sim::kNullEvent;
    sim::EventId expiry = sim::kNullEvent;
  };

  [[nodiscard]] static std::uint32_t conn_key(std::uint16_t peer_port,
                                              std::uint16_t local_port) noexcept {
    return (std::uint32_t{peer_port} << 16) | local_port;
  }

  [[nodiscard]] std::uint32_t data_seq(const Conn& conn,
                                       std::uint32_t offset) const noexcept {
    return conn.isn + 1 + offset;
  }

  void on_request(std::uint32_t key, Conn& conn) {
    switch (behavior_) {
      case AdversarialBehavior::ZeroWindow:
        // Consume the request, then stall: the window never opens.
        reply(conn, data_seq(conn, 0), conn.request_end, net::kAck, 0, {});
        return;

      case AdversarialBehavior::MssViolator: {
        // Four segments of 1000 B against the announced 64 B MSS, with an
        // honest RTO retransmission so the estimator still converges.
        for (std::uint32_t i = 0; i < 4; ++i) {
          reply(conn, data_seq(conn, i * 1000), conn.request_end, net::kAck, 65535,
                net::Bytes(1000, 'M'));
        }
        conn.rto = loop().schedule(sim::sec(1), [this, key] {
          if (Conn* c = find_conn(key)) {
            c->rto = sim::kNullEvent;
            reply(*c, data_seq(*c, 0), c->request_end, net::kAck, 65535,
                  net::Bytes(1000, 'M'));
          }
        });
        return;
      }

      case AdversarialBehavior::NoRetransmit:
        // One burst, then nothing — the RTO-based IW boundary never fires.
        for (std::uint32_t i = 0; i < 8; ++i) {
          reply(conn, data_seq(conn, i * 64), conn.request_end, net::kAck, 65535,
                net::Bytes(64, 'N'));
        }
        return;

      case AdversarialBehavior::RstInjector:
        // Data starts flowing, then the stream is torn down mid-response.
        for (std::uint32_t i = 0; i < 3; ++i) {
          reply(conn, data_seq(conn, i * 64), conn.request_end, net::kAck, 65535,
                net::Bytes(64, 'R'));
        }
        conn.aux = loop().schedule(sim::msec(100), [this, key] {
          if (Conn* c = find_conn(key)) {
            c->aux = sim::kNullEvent;
            reply(*c, data_seq(*c, 3 * 64), c->request_end, net::kRst | net::kAck, 0,
                  {});
            erase_conn(key);
          }
        });
        return;

      case AdversarialBehavior::Slowloris:
        // One payload byte every 500 ms, never retransmitted: stalls any
        // collector that waits for a burst to complete.
        drip(key);
        return;

      case AdversarialBehavior::FinBeforeData:
        // Accept the request, close immediately: FIN with zero payload.
        reply(conn, data_seq(conn, 0), conn.request_end,
              net::kAck | net::kFin | net::kPsh, 65535, {});
        return;

      case AdversarialBehavior::ShrinkingRetransmit:
        // [0,256) now, the straddling [192,448) shortly after, then a
        // "retransmission" of [0,256): ranges that rewrite stream history.
        reply(conn, data_seq(conn, 0), conn.request_end, net::kAck, 65535,
              net::Bytes(256, 'S'));
        conn.aux = loop().schedule(sim::msec(200), [this, key] {
          if (Conn* c = find_conn(key)) {
            c->aux = sim::kNullEvent;
            reply(*c, data_seq(*c, 192), c->request_end, net::kAck, 65535,
                  net::Bytes(256, 'T'));
          }
        });
        conn.rto = loop().schedule(sim::sec(1), [this, key] {
          if (Conn* c = find_conn(key)) {
            c->rto = sim::kNullEvent;
            reply(*c, data_seq(*c, 0), c->request_end, net::kAck, 65535,
                  net::Bytes(256, 'S'));
          }
        });
        return;

      case AdversarialBehavior::Tarpit:
      case AdversarialBehavior::RedirectLoop:
      case AdversarialBehavior::TlsFatalAlert:
        return;  // tarpit is deaf; the others never use the raw endpoint
    }
  }

  void on_verify_ack(Conn& conn) {
    loop().cancel(conn.rto);
    conn.rto = sim::kNullEvent;
    if (behavior_ == AdversarialBehavior::MssViolator) {
      // Fresh data released by the ACK — the MSS violator is otherwise a
      // perfectly IW-limited sender.
      reply(conn, data_seq(conn, 4 * 1000), conn.request_end, net::kAck, 65535,
            net::Bytes(1000, 'V'));
    }
    // Everyone else: silence. The scanner's teardown RST erases the conn.
  }

  void drip(std::uint32_t key) {
    Conn* conn = find_conn(key);
    if (conn == nullptr) return;
    conn->aux = loop().schedule(sim::msec(500), [this, key] {
      Conn* c = find_conn(key);
      if (c == nullptr) return;
      c->aux = sim::kNullEvent;
      reply(*c, data_seq(*c, static_cast<std::uint32_t>(c->dripped)), c->request_end,
            net::kAck | net::kPsh, 65535, net::Bytes(1, 'z'));
      ++c->dripped;
      if (c->dripped < 40) drip(key);  // bounded: ~20 s of dripping
    });
  }

  void touch(std::uint32_t key, Conn& conn) {
    // Idle backstop: the scanner's teardown RST is the normal erase signal,
    // but it can be lost on an impaired path — expire the state instead of
    // pinning the host in memory forever.
    loop().cancel(conn.expiry);
    conn.expiry = loop().schedule(sim::sec(120), [this, key] {
      if (Conn* c = find_conn(key)) {
        c->expiry = sim::kNullEvent;
        erase_conn(key);
      }
    });
  }

  [[nodiscard]] Conn* find_conn(std::uint32_t key) {
    const auto it = conns_.find(key);
    return it == conns_.end() ? nullptr : &it->second;
  }

  void erase_conn(std::uint32_t key) {
    const auto it = conns_.find(key);
    if (it == conns_.end()) return;
    cancel_timers(it->second);
    conns_.erase(it);
  }

  void cancel_timers(Conn& conn) {
    loop().cancel(conn.rto);
    loop().cancel(conn.aux);
    loop().cancel(conn.expiry);
    conn.rto = conn.aux = conn.expiry = sim::kNullEvent;
  }

  void reply(const Conn& conn, std::uint32_t seq, std::uint32_t ack,
             std::uint8_t flags, std::uint16_t window, net::Bytes payload) {
    net::TcpSegment segment;
    segment.ip.src = ip_;
    segment.ip.dst = conn.peer;
    segment.tcp.src_port = conn.local_port;
    segment.tcp.dst_port = conn.peer_port;
    segment.tcp.seq = seq;
    segment.tcp.ack = ack;
    segment.tcp.flags = flags;
    segment.tcp.window = window;
    segment.payload = std::move(payload);
    network_.send(net::encode(segment));
  }

  [[nodiscard]] sim::EventLoop& loop() noexcept { return network_.loop(); }

  sim::Network& network_;
  net::IPv4Address ip_;
  AdversarialBehavior behavior_;
  std::uint64_t seed_;
  std::unordered_map<std::uint32_t, Conn> conns_;
};

// ---------------------------------------------------------------------------
// Application-layer pathologies riding the real TCP stack.
// ---------------------------------------------------------------------------

/// Infinite 301 loop: "/" and "/loop-b" redirect to "/loop-a", "/loop-a"
/// redirects to "/loop-b". Purely path-based, so the loop is stateless
/// across connections and invariant under lazy host eviction.
class RedirectLoopApp final : public tcp::Application {
 public:
  void on_data(tcp::TcpConnection& conn, std::span<const std::uint8_t> data) override {
    buffer_.insert(buffer_.end(), data.begin(), data.end());
    if (responded_) return;
    const std::string_view text = util::as_text(buffer_);
    if (text.find("\r\n\r\n") == std::string_view::npos) return;
    responded_ = true;
    const bool to_b = text.find("GET /loop-a ") != std::string_view::npos;
    std::string response = "HTTP/1.1 301 Moved Permanently\r\n";
    response += "Server: loopd\r\n";
    response += std::string("Location: ") + (to_b ? "/loop-b" : "/loop-a") + "\r\n";
    response += "Connection: close\r\n";
    response += "Content-Length: 0\r\n\r\n";
    conn.send(response);
    conn.close();
  }

 private:
  net::Bytes buffer_;
  bool responded_ = false;
};

/// TLS fatal alert mid-handshake: a fatal handshake_failure alert record
/// instead of a ServerHello, then an orderly close.
class TlsAlertApp final : public tcp::Application {
 public:
  void on_data(tcp::TcpConnection& conn, std::span<const std::uint8_t>) override {
    if (sent_) return;
    sent_ = true;
    // Record: Alert(21), TLS 1.2, length 2; body: fatal(2), handshake_failure(40).
    static constexpr std::uint8_t kAlert[] = {0x15, 0x03, 0x03,
                                              0x00, 0x02, 0x02, 0x28};
    conn.send(std::span<const std::uint8_t>(kAlert));
    conn.close();
  }

 private:
  bool sent_ = false;
};

}  // namespace

AdversarialHost make_adversarial_host(sim::Network& network, net::IPv4Address ip,
                                      AdversarialBehavior behavior,
                                      std::uint64_t seed) {
  switch (behavior) {
    case AdversarialBehavior::RedirectLoop:
    case AdversarialBehavior::TlsFatalAlert: {
      tcp::StackConfig stack;  // stock Linux stack; the app is the pathology
      auto host = std::make_unique<tcp::TcpHost>(network, ip, stack, seed);
      if (behavior == AdversarialBehavior::RedirectLoop) {
        host->listen(80, [](net::IPv4Address, std::uint16_t) {
          return std::make_unique<RedirectLoopApp>();
        });
      } else {
        host->listen(443, [](net::IPv4Address, std::uint16_t) {
          return std::make_unique<TlsAlertApp>();
        });
      }
      tcp::TcpHost* raw = host.get();
      return {std::move(host), [raw] { return raw->quiescent(); }};
    }
    case AdversarialBehavior::Tarpit:
    case AdversarialBehavior::ZeroWindow:
    case AdversarialBehavior::MssViolator:
    case AdversarialBehavior::NoRetransmit:
    case AdversarialBehavior::RstInjector:
    case AdversarialBehavior::Slowloris:
    case AdversarialBehavior::FinBeforeData:
    case AdversarialBehavior::ShrinkingRetransmit: {
      auto raw = std::make_unique<RawAdversary>(network, ip, behavior, seed);
      RawAdversary* ptr = raw.get();
      return {std::move(raw), [ptr] { return ptr->quiescent(); }};
    }
  }
  return {};
}

}  // namespace iwscan::model
