#include "inetmodel/censys_certs.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace iwscan::model {
namespace {

// Quantile anchors (cumulative probability → chain bytes). Between anchors
// the CDF is linear in bytes. The anchors encode the published statistics:
// P(≥640)=0.86 → CDF(640)=0.14; P(≥2176)=0.50 → CDF(2176)=0.50; the upper
// tail is thin so that the mean lands near 2186 B.
struct Anchor {
  double cdf;
  double bytes;
};

constexpr std::array<Anchor, 10> kAnchors = {{
    {0.000, 36.0},     // self-signed minimal blobs
    {0.020, 300.0},
    {0.080, 520.0},
    {0.140, 640.0},    // P(≥640) = 0.86
    {0.300, 1400.0},
    {0.500, 2176.0},   // P(≥2176) = 0.50
    {0.800, 2900.0},
    {0.960, 4200.0},
    {0.998, 9000.0},
    {1.000, 65000.0},  // max observed 65 kB
}};

}  // namespace

std::size_t CertChainDistribution::inverse_cdf(double quantile) noexcept {
  quantile = std::clamp(quantile, 0.0, 1.0);
  for (std::size_t i = 1; i < kAnchors.size(); ++i) {
    if (quantile <= kAnchors[i].cdf) {
      const auto& lo = kAnchors[i - 1];
      const auto& hi = kAnchors[i];
      const double t = hi.cdf == lo.cdf ? 0.0 : (quantile - lo.cdf) / (hi.cdf - lo.cdf);
      const double bytes = lo.bytes + t * (hi.bytes - lo.bytes);
      return static_cast<std::size_t>(bytes);
    }
  }
  return kMaxBytes;
}

std::size_t CertChainDistribution::sample(util::Rng& rng) noexcept {
  return inverse_cdf(rng.uniform01());
}

std::size_t CertChainDistribution::sample_for(std::uint64_t seed,
                                              std::uint64_t key) noexcept {
  const double quantile =
      static_cast<double>(util::mix64(seed, key) >> 11) * 0x1.0p-53;
  return inverse_cdf(quantile);
}

double CertChainDistribution::ccdf(double bytes) noexcept {
  if (bytes <= kAnchors.front().bytes) return 1.0;
  for (std::size_t i = 1; i < kAnchors.size(); ++i) {
    if (bytes <= kAnchors[i].bytes) {
      const auto& lo = kAnchors[i - 1];
      const auto& hi = kAnchors[i];
      const double t =
          hi.bytes == lo.bytes ? 0.0 : (bytes - lo.bytes) / (hi.bytes - lo.bytes);
      return 1.0 - (lo.cdf + t * (hi.cdf - lo.cdf));
    }
  }
  return 0.0;
}

}  // namespace iwscan::model
