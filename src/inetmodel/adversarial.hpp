// Hostile-host behaviors (§5 "anomalous stacks"; "Ten Years of ZMap"'s
// tarpits, RST injectors and broken daemons): ~10 deterministic pathologies
// pluggable into the Internet model, so the scan engine's graceful
// degradation can be exercised — and pinned — under traffic that a
// well-behaved TCP stack would never produce.
//
// Two implementation families:
//   * raw scripted endpoints (no TCP stack at all) for wire-level
//     pathologies — tarpits, zero-window stallers, MSS violators,
//     never-retransmitters, RST injectors, FIN-before-data, shrinking
//     retransmitters, slowloris byte-dripper;
//   * applications riding the real tcp::TcpHost stack for app-layer
//     pathologies — infinite 301 redirect loops and TLS fatal alerts.
//
// Determinism contract (the sharded byte-identity invariant): a host's
// behavior depends only on (seed, ip, peer ports) and time since its own
// first packet — never on global state or wall clock — so an adversarial
// population merges byte-identically across any shard count.
#pragma once

#include <functional>
#include <memory>
#include <string_view>

#include "netbase/ipv4.hpp"
#include "netsim/network.hpp"

namespace iwscan::model {

enum class AdversarialBehavior : std::uint8_t {
  Tarpit,              // SYN/ACK, then total silence (never ACKs the request)
  ZeroWindow,          // ACKs the request but pins the receive window at 0
  MssViolator,         // sends 1000 B segments against an announced 64 B MSS
  NoRetransmit,        // one burst, never retransmits (defeats RTO detection)
  RstInjector,         // data starts flowing, then an injected RST
  RedirectLoop,        // 301 chain that alternates between two paths forever
  Slowloris,           // one payload byte every 500 ms, no retransmissions
  FinBeforeData,       // ACK+FIN in answer to the request, zero payload
  TlsFatalAlert,       // TLS fatal alert instead of a ServerHello, then FIN
  ShrinkingRetransmit, // partially-overlapping ranges rewriting stream history
};

inline constexpr int kAdversarialBehaviorCount = 10;

[[nodiscard]] constexpr std::string_view to_string(AdversarialBehavior b) noexcept {
  switch (b) {
    case AdversarialBehavior::Tarpit: return "tarpit";
    case AdversarialBehavior::ZeroWindow: return "zero-window";
    case AdversarialBehavior::MssViolator: return "mss-violator";
    case AdversarialBehavior::NoRetransmit: return "no-retransmit";
    case AdversarialBehavior::RstInjector: return "rst-injector";
    case AdversarialBehavior::RedirectLoop: return "redirect-loop";
    case AdversarialBehavior::Slowloris: return "slowloris";
    case AdversarialBehavior::FinBeforeData: return "fin-before-data";
    case AdversarialBehavior::TlsFatalAlert: return "tls-fatal-alert";
    case AdversarialBehavior::ShrinkingRetransmit: return "shrinking-retransmit";
  }
  return "?";
}

/// A materialized hostile host: the endpoint to attach plus a quiescence
/// probe for the Internet model's eviction sweep (raw endpoints are not
/// tcp::TcpHost, so the model cannot ask them directly).
struct AdversarialHost {
  std::unique_ptr<sim::Endpoint> endpoint;
  std::function<bool()> quiescent;
};

/// Build the endpoint implementing `behavior` at `ip`. `seed` keys all of
/// the host's draws (ISNs etc.); the caller attaches/detaches the endpoint.
[[nodiscard]] AdversarialHost make_adversarial_host(sim::Network& network,
                                                    net::IPv4Address ip,
                                                    AdversarialBehavior behavior,
                                                    std::uint64_t seed);

}  // namespace iwscan::model
