#include "util/logging.hpp"

#include <cstdio>

#include "util/check.hpp"

namespace iwscan::util {

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
  }
  IWSCAN_UNREACHABLE("LogLevel out of range");
}

Logger::Logger()
    : sink_([](LogLevel level, std::string_view message) {
        std::fprintf(stderr, "[%.*s] %.*s\n", static_cast<int>(to_string(level).size()),
                     to_string(level).data(), static_cast<int>(message.size()),
                     message.data());
      }) {}

Logger& Logger::instance() noexcept {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, std::string_view message) {
  if (sink_ && enabled(level)) sink_(level, message);
}

}  // namespace iwscan::util
