// Byte ↔ text bridging for codec boundaries (TCP payload bytes carrying
// ASCII protocols). Centralizes the two reinterpret_casts the codebase
// needs so call sites stay cast-free and greppable.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace iwscan::util {

/// View a byte buffer as text. The bytes must outlive the view.
[[nodiscard]] inline std::string_view as_text(
    std::span<const std::uint8_t> bytes) noexcept {
  if (bytes.empty()) return {};
  return {reinterpret_cast<const char*>(bytes.data()), bytes.size()};
}

/// View text as raw bytes. The text must outlive the span.
[[nodiscard]] inline std::span<const std::uint8_t> as_bytes(
    std::string_view text) noexcept {
  if (text.empty()) return {};
  return {reinterpret_cast<const std::uint8_t*>(text.data()), text.size()};
}

}  // namespace iwscan::util
