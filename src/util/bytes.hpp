// Byte ↔ text bridging for codec boundaries (TCP payload bytes carrying
// ASCII protocols). Centralizes the two reinterpret_casts — and the one
// raw-memory word load — the codebase needs so call sites stay cast-free
// and greppable.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>

namespace iwscan::util {

/// View a byte buffer as text. The bytes must outlive the view.
[[nodiscard]] inline std::string_view as_text(
    std::span<const std::uint8_t> bytes) noexcept {
  if (bytes.empty()) return {};
  return {reinterpret_cast<const char*>(bytes.data()), bytes.size()};
}

/// Load 8 bytes as a u64 in *native* byte order — the single audited raw
/// word read, for word-at-a-time kernels (callers that need a fixed
/// endianness must gate on std::endian::native). Compiles to one unaligned
/// load; `bytes` must point at ≥ 8 readable bytes.
[[nodiscard]] inline std::uint64_t load_u64_native(
    const std::uint8_t* bytes) noexcept {
  std::uint64_t value;
  std::memcpy(&value, bytes, sizeof(value));
  return value;
}

/// View text as raw bytes. The text must outlive the span.
[[nodiscard]] inline std::span<const std::uint8_t> as_bytes(
    std::string_view text) noexcept {
  if (text.empty()) return {};
  return {reinterpret_cast<const std::uint8_t*>(text.data()), text.size()};
}

}  // namespace iwscan::util
