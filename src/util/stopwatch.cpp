#include "util/stopwatch.hpp"

#include <chrono>

namespace iwscan::util {

namespace {
std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

Stopwatch::Stopwatch() : start_ns_(now_ns()) {}

void Stopwatch::restart() { start_ns_ = now_ns(); }

std::uint64_t Stopwatch::elapsed_ns() const { return now_ns() - start_ns_; }

double Stopwatch::elapsed_seconds() const {
  return static_cast<double>(elapsed_ns()) * 1e-9;
}

}  // namespace iwscan::util
