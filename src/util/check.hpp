// Runtime invariant checks that stay armed in every build type.
//
// assert() compiles away under NDEBUG — which is exactly what the default
// RelWithDebInfo build defines, so a violated invariant in a long scan run
// would sail through silently. IWSCAN_ASSERT/IWSCAN_UNREACHABLE always
// check, print message + file:line, and abort() so ASan/UBSan dump a
// symbolized stack trace. iwlint's banned-call rule rejects raw assert()
// in favour of these.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace iwscan::util::detail {

[[noreturn]] inline void check_fail(const char* kind, const char* condition,
                                    const char* message, const char* file,
                                    int line) noexcept {
  if (condition != nullptr) {
    std::fprintf(stderr, "%s:%d: %s(%s) failed: %s\n", file, line, kind, condition,
                 message);
  } else {
    std::fprintf(stderr, "%s:%d: %s: %s\n", file, line, kind, message);
  }
  std::fflush(stderr);
  std::abort();  // abort (not exit) so sanitizers print the stack trace
}

}  // namespace iwscan::util::detail

/// Always-on invariant check: IWSCAN_ASSERT(cond, "what went wrong").
#define IWSCAN_ASSERT(cond, msg)                                               \
  do {                                                                         \
    if (!(cond)) {                                                             \
      ::iwscan::util::detail::check_fail("IWSCAN_ASSERT", #cond, (msg),        \
                                         __FILE__, __LINE__);                  \
    }                                                                          \
  } while (false)

/// Marks code that must be unreachable; aborts with a trace if it is not.
#define IWSCAN_UNREACHABLE(msg)                                                \
  ::iwscan::util::detail::check_fail("IWSCAN_UNREACHABLE", nullptr, (msg),     \
                                     __FILE__, __LINE__)
