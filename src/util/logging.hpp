// Minimal leveled logger.
//
// The scanner and benches run millions of simulated connections; logging is
// therefore off by default above Warn and entirely macro-free — call sites
// pay only a level check when a sink is installed.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace iwscan::util {

enum class LogLevel { Trace, Debug, Info, Warn, Error };

[[nodiscard]] std::string_view to_string(LogLevel level) noexcept;

/// Process-global logging configuration. Not thread-safe by design: tests
/// and benches configure it once up front.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  static Logger& instance() noexcept;

  void set_level(LogLevel level) noexcept { level_ = level; }
  [[nodiscard]] LogLevel level() const noexcept { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const noexcept { return level >= level_; }

  /// Replace the sink (default: stderr). Pass nullptr to silence.
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  void write(LogLevel level, std::string_view message);

 private:
  Logger();
  LogLevel level_ = LogLevel::Warn;
  Sink sink_;
};

namespace detail {
template <typename... Args>
void log_impl(LogLevel level, Args&&... args) {
  Logger& logger = Logger::instance();
  if (!logger.enabled(level)) return;
  std::ostringstream oss;
  (oss << ... << args);
  logger.write(level, oss.str());
}
}  // namespace detail

template <typename... Args>
void log_trace(Args&&... args) {
  detail::log_impl(LogLevel::Trace, std::forward<Args>(args)...);
}
template <typename... Args>
void log_debug(Args&&... args) {
  detail::log_impl(LogLevel::Debug, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(Args&&... args) {
  detail::log_impl(LogLevel::Info, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(Args&&... args) {
  detail::log_impl(LogLevel::Warn, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(Args&&... args) {
  detail::log_impl(LogLevel::Error, std::forward<Args>(args)...);
}

}  // namespace iwscan::util
