// Deterministic random number generation for reproducible simulations.
//
// Every stochastic component in iwscan (population synthesis, link loss,
// sampling) draws from an explicitly-seeded Rng so that a scan of the
// simulated Internet is bit-reproducible across runs and platforms.
// The generator is xoshiro256** (Blackman & Vigna), seeded via splitmix64.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <string_view>
#include <vector>

namespace iwscan::util {

/// splitmix64 step; used for seeding and for stateless hash-mixing.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix of a value with a seed. Used to derive per-host
/// deterministic properties from (global_seed, ip) without storing state.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t seed, std::uint64_t value) noexcept {
  std::uint64_t s = seed ^ (value * 0x9e3779b97f4a7c15ULL);
  return splitmix64(s);
}

/// xoshiro256** PRNG. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x1d2c3b4a59687716ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::uint64_t between(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool chance(double p) noexcept { return uniform01() < p; }

  /// Standard normal variate (Box-Muller, caches the pair).
  [[nodiscard]] double normal() noexcept;

  /// Index drawn from discrete distribution proportional to weights.
  /// Empty or all-zero weights return 0.
  [[nodiscard]] std::size_t weighted(std::span<const double> weights) noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Hash a string to a 64-bit seed (FNV-1a, then mixed).
[[nodiscard]] std::uint64_t hash_seed(std::string_view text) noexcept;

/// Pre-normalized discrete distribution with O(1) sampling (alias method).
/// Used on hot paths (per-host profile draws over millions of hosts).
class AliasTable {
 public:
  AliasTable() = default;
  explicit AliasTable(std::span<const double> weights);

  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }
  [[nodiscard]] bool empty() const noexcept { return prob_.empty(); }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

}  // namespace iwscan::util
