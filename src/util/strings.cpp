#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace iwscan::util {

std::vector<std::string_view> split(std::string_view text, char delim) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) noexcept {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' || c == '\v';
  };
  while (!text.empty() && is_space(text.front())) text.remove_prefix(1);
  while (!text.empty() && is_space(text.back())) text.remove_suffix(1);
  return text;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool istarts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() && iequals(text.substr(0, prefix.size()), prefix);
}

bool icontains(std::string_view haystack, std::string_view needle) noexcept {
  if (needle.empty()) return true;
  if (haystack.size() < needle.size()) return false;
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    if (iequals(haystack.substr(i, needle.size()), needle)) return true;
  }
  return false;
}

std::optional<std::uint64_t> parse_u64(std::string_view text) noexcept {
  if (text.empty()) return std::nullopt;
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) return std::nullopt;
  return value;
}

std::string format_bytes(std::uint64_t bytes) {
  char buf[64];
  if (bytes < 10'000) {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  } else if (bytes < 10'000'000) {
    std::snprintf(buf, sizeof(buf), "%.1f kB", static_cast<double>(bytes) / 1000.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f MB", static_cast<double>(bytes) / 1'000'000.0);
  }
  return buf;
}

std::string format_percent(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

std::string format_count(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace iwscan::util
