// Wall-clock stopwatch — for benchmark reporting ONLY.
//
// Everything the scan pipeline itself measures runs in virtual time
// (sim::SimTime); this type exists so bench targets can report real
// elapsed time, e.g. the shards=1 vs shards=N speedup rows. The interface
// is deliberately opaque: the actual clock read lives in stopwatch.cpp,
// the one wall-clock site the determinism lint rule allows outside netsim.
// Never use this to pace or order scan work.
#pragma once

#include <cstdint>

namespace iwscan::util {

class Stopwatch {
 public:
  /// Starts running immediately.
  Stopwatch();

  void restart();

  /// Nanoseconds since construction or the last restart().
  [[nodiscard]] std::uint64_t elapsed_ns() const;
  [[nodiscard]] double elapsed_seconds() const;

 private:
  std::uint64_t start_ns_ = 0;
};

}  // namespace iwscan::util
