// Small string utilities shared across modules (HTTP parsing, table output).
#pragma once

#include <charconv>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace iwscan::util {

/// Split on a delimiter character. Empty fields are preserved.
[[nodiscard]] std::vector<std::string_view> split(std::string_view text, char delim);

/// Strip leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view text) noexcept;

/// ASCII lowercase copy.
[[nodiscard]] std::string to_lower(std::string_view text);

/// Case-insensitive ASCII equality.
[[nodiscard]] bool iequals(std::string_view a, std::string_view b) noexcept;

/// Case-insensitive prefix test.
[[nodiscard]] bool istarts_with(std::string_view text, std::string_view prefix) noexcept;

/// True if `needle` occurs in `haystack` (case-insensitive).
[[nodiscard]] bool icontains(std::string_view haystack, std::string_view needle) noexcept;

/// Parse an unsigned decimal integer; nullopt on any non-digit or overflow.
[[nodiscard]] std::optional<std::uint64_t> parse_u64(std::string_view text) noexcept;

/// Render bytes with a unit suffix ("2186 B", "14.3 kB", "1.2 MB").
[[nodiscard]] std::string format_bytes(std::uint64_t bytes);

/// Render a ratio as a percentage with one decimal ("50.8%").
[[nodiscard]] std::string format_percent(double fraction);

/// Render a count with thousands separators ("48,300,000").
[[nodiscard]] std::string format_count(std::uint64_t value);

}  // namespace iwscan::util
