#include "util/flags.hpp"

#include <charconv>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace iwscan::util {

void Flags::define_u64(std::string name, std::uint64_t default_value, std::string help) {
  Entry entry;
  entry.kind = Kind::U64;
  entry.help = std::move(help);
  entry.u64_value = default_value;
  entries_.emplace(std::move(name), std::move(entry));
}

void Flags::define_double(std::string name, double default_value, std::string help) {
  Entry entry;
  entry.kind = Kind::Double;
  entry.help = std::move(help);
  entry.double_value = default_value;
  entries_.emplace(std::move(name), std::move(entry));
}

void Flags::define_bool(std::string name, bool default_value, std::string help) {
  Entry entry;
  entry.kind = Kind::Bool;
  entry.help = std::move(help);
  entry.bool_value = default_value;
  entries_.emplace(std::move(name), std::move(entry));
}

void Flags::define_string(std::string name, std::string default_value, std::string help) {
  Entry entry;
  entry.kind = Kind::String;
  entry.help = std::move(help);
  entry.string_value = std::move(default_value);
  entries_.emplace(std::move(name), std::move(entry));
}

const Flags::Entry* Flags::find(std::string_view name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

bool Flags::assign(Entry& entry, std::string_view name, std::string_view value) {
  switch (entry.kind) {
    case Kind::U64: {
      const auto parsed = parse_u64(value);
      if (!parsed) {
        error_ = "flag --" + std::string(name) + ": expected unsigned integer, got '" +
                 std::string(value) + "'";
        return false;
      }
      entry.u64_value = *parsed;
      return true;
    }
    case Kind::Double: {
      double parsed = 0.0;
      const auto [ptr, ec] =
          std::from_chars(value.data(), value.data() + value.size(), parsed);
      if (ec != std::errc{} || ptr != value.data() + value.size()) {
        error_ = "flag --" + std::string(name) + ": expected number, got '" +
                 std::string(value) + "'";
        return false;
      }
      entry.double_value = parsed;
      return true;
    }
    case Kind::Bool: {
      if (iequals(value, "true") || value == "1") {
        entry.bool_value = true;
      } else if (iequals(value, "false") || value == "0") {
        entry.bool_value = false;
      } else {
        error_ = "flag --" + std::string(name) + ": expected true/false, got '" +
                 std::string(value) + "'";
        return false;
      }
      return true;
    }
    case Kind::String:
      entry.string_value = value;
      return true;
  }
  return false;
}

bool Flags::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (!arg.starts_with("--")) {
      error_ = "unexpected positional argument '" + std::string(arg) + "'";
      return false;
    }
    arg.remove_prefix(2);

    std::string_view name = arg;
    std::optional<std::string_view> value;
    if (const std::size_t eq = arg.find('='); eq != std::string_view::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    }

    auto it = entries_.find(name);
    // `--no-foo` sugar for boolean flags.
    if (it == entries_.end() && name.starts_with("no-")) {
      const auto base = entries_.find(name.substr(3));
      if (base != entries_.end() && base->second.kind == Kind::Bool && !value) {
        base->second.bool_value = false;
        continue;
      }
    }
    if (it == entries_.end()) {
      error_ = "unknown flag --" + std::string(name);
      return false;
    }

    Entry& entry = it->second;
    if (!value) {
      if (entry.kind == Kind::Bool) {
        entry.bool_value = true;
        continue;
      }
      if (i + 1 >= argc) {
        error_ = "flag --" + std::string(name) + " requires a value";
        return false;
      }
      value = argv[++i];
    }
    if (!assign(entry, name, *value)) return false;
  }
  return true;
}

std::uint64_t Flags::u64(std::string_view name) const {
  const Entry* entry = find(name);
  if (!entry || entry->kind != Kind::U64) {
    throw std::logic_error("undefined u64 flag: " + std::string(name));
  }
  return entry->u64_value;
}

double Flags::real(std::string_view name) const {
  const Entry* entry = find(name);
  if (!entry || entry->kind != Kind::Double) {
    throw std::logic_error("undefined double flag: " + std::string(name));
  }
  return entry->double_value;
}

bool Flags::boolean(std::string_view name) const {
  const Entry* entry = find(name);
  if (!entry || entry->kind != Kind::Bool) {
    throw std::logic_error("undefined bool flag: " + std::string(name));
  }
  return entry->bool_value;
}

const std::string& Flags::str(std::string_view name) const {
  const Entry* entry = find(name);
  if (!entry || entry->kind != Kind::String) {
    throw std::logic_error("undefined string flag: " + std::string(name));
  }
  return entry->string_value;
}

std::string Flags::usage(std::string_view program) const {
  std::ostringstream oss;
  oss << "Usage: " << program << " [flags]\n";
  for (const auto& [name, entry] : entries_) {
    oss << "  --" << name;
    switch (entry.kind) {
      case Kind::U64: oss << "=<u64>       (default " << entry.u64_value << ")"; break;
      case Kind::Double:
        oss << "=<number>    (default " << entry.double_value << ")";
        break;
      case Kind::Bool:
        oss << "[=<bool>]    (default " << (entry.bool_value ? "true" : "false") << ")";
        break;
      case Kind::String:
        oss << "=<string>    (default '" << entry.string_value << "')";
        break;
    }
    oss << "\n      " << entry.help << "\n";
  }
  return oss.str();
}

}  // namespace iwscan::util
