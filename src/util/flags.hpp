// Tiny command-line flag parser for bench/example binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--name` /
// `--no-name`. Unknown flags are an error so that typos in experiment
// parameters do not silently run the default configuration.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace iwscan::util {

class Flags {
 public:
  /// Declare flags before parse(). `help` is printed by usage().
  void define_u64(std::string name, std::uint64_t default_value, std::string help);
  void define_double(std::string name, double default_value, std::string help);
  void define_bool(std::string name, bool default_value, std::string help);
  void define_string(std::string name, std::string default_value, std::string help);

  /// Parse argv. Returns false (and fills error()) on unknown flag or bad
  /// value. `--help` sets help_requested().
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::uint64_t u64(std::string_view name) const;
  [[nodiscard]] double real(std::string_view name) const;
  [[nodiscard]] bool boolean(std::string_view name) const;
  [[nodiscard]] const std::string& str(std::string_view name) const;

  [[nodiscard]] bool help_requested() const noexcept { return help_requested_; }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  [[nodiscard]] std::string usage(std::string_view program) const;

 private:
  enum class Kind { U64, Double, Bool, String };
  struct Entry {
    Kind kind = Kind::U64;
    std::string help;
    std::uint64_t u64_value = 0;
    double double_value = 0.0;
    bool bool_value = false;
    std::string string_value;
  };

  [[nodiscard]] const Entry* find(std::string_view name) const;
  bool assign(Entry& entry, std::string_view name, std::string_view value);

  std::map<std::string, Entry, std::less<>> entries_;
  std::string error_;
  bool help_requested_ = false;
};

}  // namespace iwscan::util
