// Source annotations consumed by iwlint's cross-TU call-graph rules
// (DESIGN.md §9) and, where the compiler offers a matching attribute, by
// codegen too.
//
//   IWSCAN_HOT           Marks a function as a root of the per-packet
//                        datapath. iwlint's hot-path rule flags anything
//                        transitively reachable from a root that allocates,
//                        grows a container, takes a lock, blocks, throws,
//                        or touches iostreams. Under GCC/Clang it also
//                        expands to [[gnu::hot]] so the optimizer keeps
//                        these functions in the hot text section.
//
//   IWSCAN_HOT_BOUNDARY  Marks an audited hand-off point — a virtual
//                        per-packet entry like Endpoint::handle_packet —
//                        where the hot-path traversal stops instead of
//                        flooding into every override. A boundary-named
//                        function that is itself IWSCAN_HOT is still
//                        traversed as a root. Boundaries do NOT stop the
//                        determinism-taint traversal: determinism must
//                        hold through every layer.
//
// Annotate the declaration (in-class) or the definition; iwlint matches
// them by qualified name. Keep the marker on the same line as, or the line
// before, the function it annotates.
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define IWSCAN_HOT [[gnu::hot]]
#else
#define IWSCAN_HOT
#endif

#define IWSCAN_HOT_BOUNDARY

namespace iwscan::util {
// The macros above are the whole interface; the namespace exists to satisfy
// header-hygiene (every src/util header declares iwscan::util).
}  // namespace iwscan::util
