#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace iwscan::util {

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  if (bound <= 1) return 0;
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform01();
  while (u1 <= 0.0) u1 = uniform01();
  const double u2 = uniform01();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

std::size_t Rng::weighted(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (const double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return 0;
  double pick = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (pick < w) return i;
    pick -= w;
  }
  return weights.size() - 1;
}

std::uint64_t hash_seed(std::string_view text) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return mix64(h, 0x5eedf00d5eedf00dULL);
}

AliasTable::AliasTable(std::span<const double> weights) {
  const std::size_t n = weights.size();
  if (n == 0) return;
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  double total = 0.0;
  for (const double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) {
    // Degenerate: uniform.
    for (std::size_t i = 0; i < n; ++i) {
      prob_[i] = 1.0;
      alias_[i] = static_cast<std::uint32_t>(i);
    }
    return;
  }

  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = (weights[i] > 0.0 ? weights[i] : 0.0) * static_cast<double>(n) / total;
  }
  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (const std::uint32_t i : large) {
    prob_[i] = 1.0;
    alias_[i] = i;
  }
  for (const std::uint32_t i : small) {
    prob_[i] = 1.0;
    alias_[i] = i;
  }
}

std::size_t AliasTable::sample(Rng& rng) const noexcept {
  if (prob_.empty()) return 0;
  const std::size_t column = rng.below(prob_.size());
  return rng.uniform01() < prob_[column] ? column : alias_[column];
}

}  // namespace iwscan::util
