// Opt-in allocation counting for performance tests and benchmarks.
//
// Define IWSCAN_COUNT_ALLOCATIONS in EXACTLY ONE translation unit of a
// binary before including this header: that TU then emits replacement
// global operator new/delete which count every allocation. Every other TU
// may include the header freely for the read-side API. When no TU in the
// binary defines the macro, nothing is replaced and allocations() reads 0.
//
// The replacements forward to std::malloc/std::free (the only permitted
// call sites of the malloc family in this codebase — see tools/lint), so
// sanitizer interceptors still observe every allocation and the counter
// works unchanged under ASan/TSan. The counter is atomic because worker
// threads (exec::ThreadPool) allocate concurrently.
//
// Portability: the over-aligned path pairs std::aligned_alloc with
// std::free, which is C11/POSIX — a Windows port would need
// _aligned_malloc/_aligned_free instead. Fine for now: this header is
// test/bench-only and the project targets Linux.
#pragma once

#include <atomic>
#include <cstdint>

namespace iwscan::util::alloc_stats {

// Inline variable: one definition shared by every TU that includes this
// header, written only by the counting operator new below.
// iwlint: allow(concurrency-confinement) -- the audited exception: a global
// operator-new hook cannot take a context object, and the counter must be
// atomic because pool workers allocate concurrently; it is observability
// only (never feeds scan results) and tests reset via delta snapshots
inline std::atomic<std::uint64_t> g_allocation_count{0};

/// Global operator-new calls since process start (0 unless one TU of the
/// binary was built with IWSCAN_COUNT_ALLOCATIONS).
[[nodiscard]] inline std::uint64_t allocations() noexcept {
  return g_allocation_count.load(std::memory_order_relaxed);
}

}  // namespace iwscan::util::alloc_stats

#ifdef IWSCAN_COUNT_ALLOCATIONS

#include <cstdlib>
#include <new>

namespace iwscan::util::alloc_stats::detail {

inline void* counted_alloc_nothrow(std::size_t size) noexcept {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  return std::malloc(size);
}

inline void* counted_alloc_nothrow(std::size_t size,
                                   std::align_val_t align) noexcept {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  const auto alignment = static_cast<std::size_t>(align);
  // aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t rounded = (size + alignment - 1) / alignment * alignment;
  return std::aligned_alloc(alignment, rounded == 0 ? alignment : rounded);
}

// Conforming throwing operator new must give the installed new-handler a
// chance to reclaim memory and retry; only throw once no handler is set.
// (Retries re-count the allocation attempt, which only matters under OOM.)
inline void* counted_alloc(std::size_t size) {
  for (;;) {
    if (void* ptr = counted_alloc_nothrow(size)) return ptr;
    const std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc{};
    handler();
  }
}

inline void* counted_alloc(std::size_t size, std::align_val_t align) {
  for (;;) {
    if (void* ptr = counted_alloc_nothrow(size, align)) return ptr;
    const std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc{};
    handler();
  }
}

}  // namespace iwscan::util::alloc_stats::detail

void* operator new(std::size_t size) {
  return iwscan::util::alloc_stats::detail::counted_alloc(size);
}
void* operator new[](std::size_t size) {
  return iwscan::util::alloc_stats::detail::counted_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return iwscan::util::alloc_stats::detail::counted_alloc(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return iwscan::util::alloc_stats::detail::counted_alloc(size, align);
}

// The nothrow family must be replaced too: libstdc++ reaches it from
// library internals (e.g. std::stable_sort's temporary buffer), and a
// default-library nothrow new paired with the free()-backed replacement
// delete below is an alloc/dealloc mismatch under ASan.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return iwscan::util::alloc_stats::detail::counted_alloc_nothrow(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return iwscan::util::alloc_stats::detail::counted_alloc_nothrow(size);
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return iwscan::util::alloc_stats::detail::counted_alloc_nothrow(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return iwscan::util::alloc_stats::detail::counted_alloc_nothrow(size, align);
}

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(ptr);
}

#endif  // IWSCAN_COUNT_ALLOCATIONS
