// Small-buffer move-only `void()` callable for hot paths.
//
// std::function heap-allocates for any capture that is large or not
// trivially copyable; the event loop stores millions of short-lived
// callbacks per scan, so per-callback allocations and expensive moves
// dominate the schedule/fire cost. InlineFn keeps callables up to
// kInlineSize bytes inside the object. Trivially-copyable captures (the
// overwhelming majority: a `this` pointer plus a few captured words)
// relocate with a plain byte copy — no indirect call; non-trivial captures
// relocate through a per-type table; large or potentially-throwing-move
// callables fall back to a single heap box so relocation stays noexcept
// either way.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace iwscan::util {

class InlineFn {
 public:
  /// Inline capture budget, sized so the event-loop slab slot (InlineFn +
  /// bookkeeping) stays within one cache line. Five pointers covers every
  /// capture list on the simulator's hot paths; anything bigger silently
  /// boxes on the heap.
  static constexpr std::size_t kInlineSize = 40;

  InlineFn() noexcept = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineFn(F&& fn) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(fn));
  }

  /// Destroy the current callable (if any) and construct `fn` directly in
  /// the inline storage — lets owners build callables in place instead of
  /// routing them through a temporary and a relocating move.
  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  void emplace(F&& fn) {
    reset();
    if constexpr (stored_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
    } else {
      // iwlint: allow(hot-path) -- overflow path for callables larger than
      // the inline storage; every hot-path callable is sized to stay inline
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(fn)));
    }
    ops_ = select_ops<D>();
  }

  InlineFn(InlineFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      take_storage(other);
      other.ops_ = nullptr;
    }
  }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        take_storage(other);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  /// Invoke the stored callable. No-op when empty.
  void operator()() {
    if (ops_ != nullptr) ops_->invoke(storage_);
  }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

  void reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(std::byte* storage);
    // Move-construct into `to` and destroy the source; null when a plain
    // copy of `size` bytes relocates (trivially-copyable payloads and the
    // heap-box pointer). Noexcept by construction: inline storage is only
    // used for nothrow-movable types.
    void (*relocate)(std::byte* from, std::byte* to) noexcept;
    // Null for trivially-destructible inline payloads.
    void (*destroy)(std::byte* storage) noexcept;
    // Payload size for the trivial-relocation copy. Copying exactly the
    // payload (not the whole buffer) keeps the loads inside freshly-written
    // bytes, which store-forwards cleanly on the schedule→slot→fire path.
    std::uint32_t size;
  };

  void take_storage(InlineFn& other) noexcept {
    if (ops_->relocate == nullptr) {
      std::copy_n(other.storage_, ops_->size, storage_);
    } else {
      ops_->relocate(other.storage_, storage_);
    }
  }

  template <typename D>
  static constexpr bool stored_inline() {
    return sizeof(D) <= kInlineSize && alignof(void*) >= alignof(D) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename T>
  [[nodiscard]] static T* slot(std::byte* storage) noexcept {
    return std::launder(static_cast<T*>(static_cast<void*>(storage)));
  }

  template <typename D>
  [[nodiscard]] static const Ops* select_ops() noexcept {
    if constexpr (stored_inline<D>()) {
      static constexpr Ops ops{
          [](std::byte* storage) { (*slot<D>(storage))(); },
          std::is_trivially_copyable_v<D>
              ? nullptr
              : +[](std::byte* from, std::byte* to) noexcept {
                  ::new (static_cast<void*>(to)) D(std::move(*slot<D>(from)));
                  slot<D>(from)->~D();
                },
          std::is_trivially_destructible_v<D>
              ? nullptr
              : +[](std::byte* storage) noexcept { slot<D>(storage)->~D(); },
          static_cast<std::uint32_t>(sizeof(D)),
      };
      return &ops;
    } else {
      static constexpr Ops ops{
          [](std::byte* storage) { (**slot<D*>(storage))(); },
          nullptr,  // relocating the box is copying its pointer
          [](std::byte* storage) noexcept { delete *slot<D*>(storage); },
          static_cast<std::uint32_t>(sizeof(D*)),
      };
      return &ops;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(alignof(void*)) std::byte storage_[kInlineSize];
};

}  // namespace iwscan::util
