// Synthetic certificate generation.
//
// The scan only measures *bytes on the wire*, never validates trust, so the
// certificates are deterministic DER-shaped blobs (valid outer SEQUENCE
// framing, pseudo-random body) whose sizes follow the censys.io chain-length
// statistics the paper reports (Fig. 2): mean 2186 B, min 36 B, max 65 kB.
#pragma once

#include <cstdint>
#include <string_view>

#include "tls/handshake.hpp"
#include "util/rng.hpp"

namespace iwscan::tls {

/// One DER-shaped certificate of exactly `size` bytes (size ≥ 8), with
/// subject/issuer hints embedded for debuggability.
[[nodiscard]] net::Bytes make_certificate(std::size_t size, std::string_view subject,
                                          std::uint64_t seed);

/// A chain whose total_certificate_bytes() equals `total_bytes`, split into
/// a realistic leaf + intermediate(s) layout. total_bytes ≥ 8.
[[nodiscard]] CertificateChain make_chain(std::size_t total_bytes,
                                          std::string_view subject, std::uint64_t seed);

}  // namespace iwscan::tls
