#include "tls/ciphers.hpp"

#include <algorithm>
#include <array>
#include <cstdio>

namespace iwscan::tls {
namespace {

// Browser-union probe list (Safari ∪ Firefox ∪ Chrome, 2017-era TLS 1.2)
// enriched with suites observed in censys.io scans — 40 entries, matching
// the methodology in §3.3 of the paper.
constexpr std::array<CipherSuite, 40> kProbeList = {
    0xC02C,  // TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384
    0xC02B,  // TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256
    0xC030,  // TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384
    0xC02F,  // TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256
    0xCCA9,  // TLS_ECDHE_ECDSA_WITH_CHACHA20_POLY1305_SHA256
    0xCCA8,  // TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305_SHA256
    0xC024,  // TLS_ECDHE_ECDSA_WITH_AES_256_CBC_SHA384
    0xC023,  // TLS_ECDHE_ECDSA_WITH_AES_128_CBC_SHA256
    0xC028,  // TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA384
    0xC027,  // TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA256
    0xC00A,  // TLS_ECDHE_ECDSA_WITH_AES_256_CBC_SHA
    0xC009,  // TLS_ECDHE_ECDSA_WITH_AES_128_CBC_SHA
    0xC014,  // TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA
    0xC013,  // TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA
    0x009F,  // TLS_DHE_RSA_WITH_AES_256_GCM_SHA384
    0x009E,  // TLS_DHE_RSA_WITH_AES_128_GCM_SHA256
    0x006B,  // TLS_DHE_RSA_WITH_AES_256_CBC_SHA256
    0x0067,  // TLS_DHE_RSA_WITH_AES_128_CBC_SHA256
    0x0039,  // TLS_DHE_RSA_WITH_AES_256_CBC_SHA
    0x0033,  // TLS_DHE_RSA_WITH_AES_128_CBC_SHA
    0x009D,  // TLS_RSA_WITH_AES_256_GCM_SHA384
    0x009C,  // TLS_RSA_WITH_AES_128_GCM_SHA256
    0x003D,  // TLS_RSA_WITH_AES_256_CBC_SHA256
    0x003C,  // TLS_RSA_WITH_AES_128_CBC_SHA256
    0x0035,  // TLS_RSA_WITH_AES_256_CBC_SHA
    0x002F,  // TLS_RSA_WITH_AES_128_CBC_SHA
    0x000A,  // TLS_RSA_WITH_3DES_EDE_CBC_SHA
    0xC012,  // TLS_ECDHE_RSA_WITH_3DES_EDE_CBC_SHA
    0x0016,  // TLS_DHE_RSA_WITH_3DES_EDE_CBC_SHA
    0xC008,  // TLS_ECDHE_ECDSA_WITH_3DES_EDE_CBC_SHA
    0x0041,  // TLS_RSA_WITH_CAMELLIA_128_CBC_SHA        (censys extra)
    0x0084,  // TLS_RSA_WITH_CAMELLIA_256_CBC_SHA        (censys extra)
    0x0005,  // TLS_RSA_WITH_RC4_128_SHA                 (censys extra)
    0x0004,  // TLS_RSA_WITH_RC4_128_MD5                 (censys extra)
    0xC011,  // TLS_ECDHE_RSA_WITH_RC4_128_SHA           (censys extra)
    0xC007,  // TLS_ECDHE_ECDSA_WITH_RC4_128_SHA         (censys extra)
    0x0032,  // TLS_DHE_DSS_WITH_AES_128_CBC_SHA         (censys extra)
    0x0038,  // TLS_DHE_DSS_WITH_AES_256_CBC_SHA         (censys extra)
    0x0013,  // TLS_DHE_DSS_WITH_3DES_EDE_CBC_SHA        (censys extra)
    0x0066,  // TLS_DHE_DSS_WITH_RC4_128_SHA             (censys extra)
};

struct NamedSuite {
  CipherSuite id;
  const char* name;
};

constexpr std::array<NamedSuite, 14> kNames = {{
    {0xC02C, "TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384"},
    {0xC02B, "TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256"},
    {0xC030, "TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384"},
    {0xC02F, "TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256"},
    {0xCCA9, "TLS_ECDHE_ECDSA_WITH_CHACHA20_POLY1305_SHA256"},
    {0xCCA8, "TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305_SHA256"},
    {0xC014, "TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA"},
    {0xC013, "TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA"},
    {0x009C, "TLS_RSA_WITH_AES_128_GCM_SHA256"},
    {0x009D, "TLS_RSA_WITH_AES_256_GCM_SHA384"},
    {0x0035, "TLS_RSA_WITH_AES_256_CBC_SHA"},
    {0x002F, "TLS_RSA_WITH_AES_128_CBC_SHA"},
    {0x000A, "TLS_RSA_WITH_3DES_EDE_CBC_SHA"},
    {0x0005, "TLS_RSA_WITH_RC4_128_SHA"},
}};

}  // namespace

std::span<const CipherSuite> probe_cipher_list() noexcept { return kProbeList; }

std::string cipher_name(CipherSuite suite) {
  for (const auto& named : kNames) {
    if (named.id == suite) return named.name;
  }
  char buf[8];
  std::snprintf(buf, sizeof(buf), "0x%04X", suite);
  return buf;
}

std::vector<CipherSuite> cipher_set(CipherProfile profile) {
  switch (profile) {
    case CipherProfile::Modern:
      return {0xC02C, 0xC02B, 0xC030, 0xC02F, 0xCCA9, 0xCCA8};
    case CipherProfile::Standard:
      return {0xC030, 0xC02F, 0xC028, 0xC027, 0xC014, 0xC013,
              0x009D, 0x009C, 0x003D, 0x003C, 0x0035, 0x002F, 0x000A};
    case CipherProfile::Legacy:
      return {0x0035, 0x002F, 0x000A, 0x0005, 0x0004, 0xC011, 0x0016};
    case CipherProfile::Exotic:
      // Suites deliberately outside the probe list (e.g. PSK/ARIA families)
      // so negotiation fails — modeling the "no common cipher" hosts that
      // yield only an alert (§4, Table 2 discussion).
      return {0x008C, 0x008D, 0xC03C, 0xC03D, 0x00A8};
  }
  return {};
}

CipherSuite negotiate(std::span<const CipherSuite> client_offer,
                      std::span<const CipherSuite> server_set) noexcept {
  for (const CipherSuite offered : client_offer) {
    if (std::find(server_set.begin(), server_set.end(), offered) != server_set.end()) {
      return offered;
    }
  }
  return 0;
}

}  // namespace iwscan::tls
