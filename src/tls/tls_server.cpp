#include "tls/tls_server.hpp"

#include "tls/handshake.hpp"
#include "util/rng.hpp"

namespace iwscan::tls {

void TlsServerApp::on_data(tcp::TcpConnection& conn,
                           std::span<const std::uint8_t> data) {
  if (handled_hello_) return;
  reader_.feed(data);
  const auto record = reader_.next();
  if (reader_.malformed()) {
    conn.abort();
    return;
  }
  if (!record) return;  // ClientHello spans more TCP segments; wait

  handled_hello_ = true;
  if (record->type != ContentType::Handshake) {
    send_alert(conn, AlertDescription::InternalError);
    return;
  }
  const auto messages = split_handshakes(record->payload);
  if (!messages || messages->empty() ||
      messages->front().type != HandshakeType::ClientHello) {
    send_alert(conn, AlertDescription::InternalError);
    return;
  }
  const auto hello = ClientHello::decode(messages->front().body);
  if (!hello) {
    send_alert(conn, AlertDescription::InternalError);
    return;
  }

  // SNI policy first: hosts that insist on a (forward-DNS) name reject
  // IP-only probes before any cipher negotiation (§4, success-rate text).
  if (!hello->server_name.has_value()) {
    switch (config_.sni_policy) {
      case SniPolicy::Ignore:
        break;
      case SniPolicy::AlertAndClose:
        send_alert(conn, AlertDescription::UnrecognizedName);
        return;
      case SniPolicy::SilentClose:
        conn.close();  // FIN with zero application bytes
        return;
    }
  }

  const CipherSuite chosen =
      negotiate(hello->cipher_suites, config_.supported_ciphers);
  if (chosen == 0) {
    send_alert(conn, AlertDescription::HandshakeFailure);
    return;
  }

  // Per-vhost IW: a ClientHello naming this edge's vhost via SNI is served
  // from the vhost's (larger) first-flight config. Must precede the
  // ServerHello flight — set_initial_window is a no-op once data has flown.
  if (config_.sni_iw && hello->server_name &&
      !config_.server_name.empty() && *hello->server_name == config_.server_name) {
    conn.set_initial_window(*config_.sni_iw);
  }

  send_first_flight(conn, *hello);
}

void TlsServerApp::send_first_flight(tcp::TcpConnection& conn,
                                     const ClientHello& hello) {
  ServerHello server_hello;
  server_hello.version = kTls12;
  util::Rng rng(util::mix64(config_.seed, conn.remote_addr().value()));
  for (auto& byte : server_hello.random) byte = static_cast<std::uint8_t>(rng());
  server_hello.cipher_suite = negotiate(hello.cipher_suites, config_.supported_ciphers);
  const bool staple = config_.ocsp_staple && hello.ocsp_stapling;
  server_hello.ocsp_stapling = staple;
  server_hello.extra_extension_bytes = config_.hello_extra_bytes;
  server_hello.session_id.assign(32, 0x42);  // servers typically issue one

  const CertificateChain chain =
      make_chain(config_.chain_bytes, config_.server_name, config_.seed);

  net::Bytes flight;
  {
    const net::Bytes hello_msg =
        encode_handshake(HandshakeType::ServerHello, server_hello.encode());
    flight.insert(flight.end(), hello_msg.begin(), hello_msg.end());
  }
  {
    const net::Bytes cert_msg =
        encode_handshake(HandshakeType::Certificate, chain.encode());
    flight.insert(flight.end(), cert_msg.begin(), cert_msg.end());
  }
  if (staple) {
    // CertificateStatus: status_type(1) + 24-bit length + OCSP response.
    net::Bytes status;
    net::WireWriter writer(status);
    writer.u8(1);  // ocsp
    writer.u24(static_cast<std::uint32_t>(config_.ocsp_response_bytes));
    util::Rng ocsp_rng(util::mix64(config_.seed, 0x0c5b));
    for (std::size_t i = 0; i < config_.ocsp_response_bytes; ++i) {
      status.push_back(static_cast<std::uint8_t>(ocsp_rng()));
    }
    const net::Bytes status_msg =
        encode_handshake(HandshakeType::CertificateStatus, status);
    flight.insert(flight.end(), status_msg.begin(), status_msg.end());
  }
  {
    const net::Bytes done_msg = encode_handshake(HandshakeType::ServerHelloDone, {});
    flight.insert(flight.end(), done_msg.begin(), done_msg.end());
  }

  net::Bytes wire;
  encode_fragmented(ContentType::Handshake, kTls12, flight, wire);
  conn.send(std::span<const std::uint8_t>(wire));
  // The server now waits for the client's key exchange; it does NOT close —
  // so an IW-limited flight is followed by silence + RTO retransmission,
  // exactly what the estimator needs.
}

void TlsServerApp::send_alert(tcp::TcpConnection& conn, AlertDescription description) {
  const net::Bytes alert = encode_alert(AlertLevel::Fatal, description);
  net::Bytes wire;
  encode_fragmented(ContentType::Alert, kTls12, alert, wire);
  conn.send(std::span<const std::uint8_t>(wire));
  conn.close();
}

tcp::TcpHost::AppFactory TlsServerApp::factory(TlsConfig config) {
  return [config](net::IPv4Address, std::uint16_t) {
    return std::make_unique<TlsServerApp>(config);
  };
}

}  // namespace iwscan::tls
