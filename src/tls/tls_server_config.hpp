// Configuration for a simulated TLS host (separated from tls_server.hpp so
// the Internet model can describe hosts without pulling in the app logic).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "tcpstack/config.hpp"
#include "tls/ciphers.hpp"

namespace iwscan::tls {

enum class SniPolicy {
  Ignore,        // serves the default certificate without SNI
  AlertAndClose, // fatal unrecognized_name alert, then close
  SilentClose,   // FIN immediately, zero application bytes (Table 2 NoData)
};

struct TlsConfig {
  SniPolicy sni_policy = SniPolicy::Ignore;
  std::vector<CipherSuite> supported_ciphers = cipher_set(CipherProfile::Standard);
  std::size_t chain_bytes = 2186;  // total certificate bytes (Fig. 2 mean)
  bool ocsp_staple = false;        // adds a CertificateStatus message
  std::size_t ocsp_response_bytes = 1600;
  std::uint16_t hello_extra_bytes = 140;  // realistic ServerHello extensions
  std::string server_name;         // certificate subject hint
  std::uint64_t seed = 0;
  // Per-vhost IW split (CDN edges): a ClientHello whose SNI names
  // `server_name` is answered with this IwConfig instead of the listener's
  // default — applied before the ServerHello flight, so SNI-less probing
  // measures a different window than named probing.
  std::optional<tcp::IwConfig> sni_iw;
};

}  // namespace iwscan::tls
