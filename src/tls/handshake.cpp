#include "tls/handshake.hpp"

namespace iwscan::tls {
namespace {

constexpr std::uint16_t kExtServerName = 0;
constexpr std::uint16_t kExtStatusRequest = 5;
constexpr std::uint16_t kExtSupportedGroups = 10;
constexpr std::uint16_t kExtEcPointFormats = 11;
constexpr std::uint16_t kExtSignatureAlgorithms = 13;

void write_extension(net::WireWriter& writer, std::uint16_t type,
                     std::span<const std::uint8_t> data) {
  writer.u16(type);
  writer.u16(static_cast<std::uint16_t>(data.size()));
  writer.raw(data);
}

}  // namespace

net::Bytes encode_handshake(HandshakeType type, std::span<const std::uint8_t> body) {
  net::Bytes out;
  out.reserve(4 + body.size());
  net::WireWriter writer(out);
  writer.u8(static_cast<std::uint8_t>(type));
  writer.u24(static_cast<std::uint32_t>(body.size()));
  writer.raw(body);
  return out;
}

std::optional<std::vector<HandshakeMessage>> split_handshakes(
    std::span<const std::uint8_t> payload) {
  std::vector<HandshakeMessage> messages;
  net::WireReader reader(payload);
  while (reader.remaining() > 0) {
    if (reader.remaining() < 4) return std::nullopt;
    const auto type = static_cast<HandshakeType>(reader.u8());
    const std::uint32_t length = reader.u24();
    if (length > reader.remaining()) return std::nullopt;
    const auto body = reader.raw(length);
    messages.push_back(HandshakeMessage{type, net::Bytes(body.begin(), body.end())});
  }
  return messages;
}

net::Bytes ClientHello::encode() const {
  net::Bytes out;
  net::WireWriter writer(out);
  writer.u16(version);
  writer.raw(std::span<const std::uint8_t>(random));
  writer.u8(static_cast<std::uint8_t>(session_id.size()));
  writer.raw(session_id);
  writer.u16(static_cast<std::uint16_t>(cipher_suites.size() * 2));
  for (const CipherSuite suite : cipher_suites) writer.u16(suite);
  writer.u8(static_cast<std::uint8_t>(compression_methods.size()));
  for (const std::uint8_t method : compression_methods) writer.u8(method);

  // Extensions block.
  net::Bytes extensions;
  net::WireWriter ext(extensions);
  if (server_name) {
    net::Bytes sni;
    net::WireWriter sni_writer(sni);
    sni_writer.u16(static_cast<std::uint16_t>(server_name->size() + 3));
    sni_writer.u8(0);  // host_name
    sni_writer.u16(static_cast<std::uint16_t>(server_name->size()));
    sni_writer.raw(*server_name);
    write_extension(ext, kExtServerName, sni);
  }
  if (ocsp_stapling) {
    net::Bytes status;
    net::WireWriter status_writer(status);
    status_writer.u8(1);   // status_type = ocsp
    status_writer.u16(0);  // responder_id_list
    status_writer.u16(0);  // request_extensions
    write_extension(ext, kExtStatusRequest, status);
  }
  {
    // supported_groups: x25519, secp256r1, secp384r1
    net::Bytes groups;
    net::WireWriter groups_writer(groups);
    groups_writer.u16(6);
    groups_writer.u16(0x001d);
    groups_writer.u16(0x0017);
    groups_writer.u16(0x0018);
    write_extension(ext, kExtSupportedGroups, groups);
  }
  {
    // ec_point_formats: uncompressed
    const net::Bytes formats{0x01, 0x00};
    write_extension(ext, kExtEcPointFormats, formats);
  }
  {
    // signature_algorithms: a typical browser set
    net::Bytes algorithms;
    net::WireWriter algorithms_writer(algorithms);
    const std::uint16_t algos[] = {0x0403, 0x0503, 0x0603, 0x0401,
                                   0x0501, 0x0601, 0x0201};
    algorithms_writer.u16(static_cast<std::uint16_t>(sizeof(algos) / 2 * 2));
    for (const std::uint16_t algo : algos) algorithms_writer.u16(algo);
    write_extension(ext, kExtSignatureAlgorithms, algorithms);
  }
  writer.u16(static_cast<std::uint16_t>(extensions.size()));
  writer.raw(extensions);
  return out;
}

std::optional<ClientHello> ClientHello::decode(std::span<const std::uint8_t> body) {
  net::WireReader reader(body);
  ClientHello hello;
  hello.version = reader.u16();
  const auto random = reader.raw(32);
  if (!reader.ok()) return std::nullopt;
  std::copy(random.begin(), random.end(), hello.random.begin());

  const std::uint8_t session_len = reader.u8();
  const auto session = reader.raw(session_len);
  // iwlint: allow(hot-path) -- TLS parsing runs per probe conversation, not
  // per fabric packet; reached only via the over-approximate decode edge
  hello.session_id.assign(session.begin(), session.end());

  const std::uint16_t cipher_bytes = reader.u16();
  if (cipher_bytes % 2 != 0) return std::nullopt;
  if (cipher_bytes > reader.remaining()) return std::nullopt;
  hello.cipher_suites.clear();
  for (std::size_t i = 0; i < cipher_bytes / 2u; ++i) {
    // iwlint: allow(hot-path) -- per-conversation handshake decode; a hello
    // carries at most a few dozen suites
    hello.cipher_suites.push_back(reader.u16());
  }

  const std::uint8_t compression_len = reader.u8();
  const auto compressions = reader.raw(compression_len);
  // iwlint: allow(hot-path) -- per-conversation handshake decode; the
  // compression list is a handful of bytes
  hello.compression_methods.assign(compressions.begin(), compressions.end());
  if (!reader.ok()) return std::nullopt;

  if (reader.remaining() >= 2) {
    const std::uint16_t ext_total = reader.u16();
    if (ext_total > reader.remaining()) return std::nullopt;
    net::WireReader ext(reader.raw(ext_total));
    while (ext.remaining() >= 4) {
      const std::uint16_t type = ext.u16();
      const std::uint16_t length = ext.u16();
      if (length > ext.remaining()) return std::nullopt;
      net::WireReader data(ext.raw(length));
      if (type == kExtServerName && length >= 5) {
        data.u16();  // list length
        const std::uint8_t name_type = data.u8();
        const std::uint16_t name_len = data.u16();
        const auto name = data.raw(name_len);
        if (data.ok() && name_type == 0) {
          hello.server_name = std::string(name.begin(), name.end());
        }
      } else if (type == kExtStatusRequest) {
        hello.ocsp_stapling = true;
      }
    }
  }
  if (!reader.ok()) return std::nullopt;
  return hello;
}

net::Bytes ServerHello::encode() const {
  net::Bytes out;
  net::WireWriter writer(out);
  writer.u16(version);
  writer.raw(std::span<const std::uint8_t>(random));
  writer.u8(static_cast<std::uint8_t>(session_id.size()));
  writer.raw(session_id);
  writer.u16(cipher_suite);
  writer.u8(compression_method);
  if (ocsp_stapling || extra_extension_bytes > 0) {
    net::Bytes extensions;
    net::WireWriter ext(extensions);
    if (ocsp_stapling) write_extension(ext, kExtStatusRequest, {});
    if (extra_extension_bytes > 0) {
      const net::Bytes padding(extra_extension_bytes, 0);
      write_extension(ext, 0x0015, padding);  // padding extension (RFC 7685)
    }
    writer.u16(static_cast<std::uint16_t>(extensions.size()));
    writer.raw(extensions);
  }
  return out;
}

std::optional<ServerHello> ServerHello::decode(std::span<const std::uint8_t> body) {
  net::WireReader reader(body);
  ServerHello hello;
  hello.version = reader.u16();
  const auto random = reader.raw(32);
  if (!reader.ok()) return std::nullopt;
  std::copy(random.begin(), random.end(), hello.random.begin());
  const std::uint8_t session_len = reader.u8();
  const auto session = reader.raw(session_len);
  // iwlint: allow(hot-path) -- TLS parsing runs per probe conversation, not
  // per fabric packet; reached only via the over-approximate decode edge
  hello.session_id.assign(session.begin(), session.end());
  hello.cipher_suite = reader.u16();
  hello.compression_method = reader.u8();
  if (!reader.ok()) return std::nullopt;
  if (reader.remaining() >= 2) {
    const std::uint16_t ext_total = reader.u16();
    if (ext_total > reader.remaining()) return std::nullopt;
    net::WireReader ext(reader.raw(ext_total));
    while (ext.remaining() >= 4) {
      const std::uint16_t type = ext.u16();
      const std::uint16_t length = ext.u16();
      // A length past the block would make skip() a no-op and stall the
      // loop forever; treat it as the malformed extension block it is.
      if (length > ext.remaining()) return std::nullopt;
      ext.skip(length);
      if (type == kExtStatusRequest) hello.ocsp_stapling = true;
    }
  }
  return reader.ok() ? std::optional(hello) : std::nullopt;
}

std::size_t CertificateChain::total_certificate_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& cert : certificates) total += cert.size();
  return total;
}

net::Bytes CertificateChain::encode() const {
  net::Bytes out;
  net::WireWriter writer(out);
  std::size_t list_bytes = 0;
  for (const auto& cert : certificates) list_bytes += 3 + cert.size();
  writer.u24(static_cast<std::uint32_t>(list_bytes));
  for (const auto& cert : certificates) {
    writer.u24(static_cast<std::uint32_t>(cert.size()));
    writer.raw(cert);
  }
  return out;
}

std::optional<CertificateChain> CertificateChain::decode(
    std::span<const std::uint8_t> body) {
  net::WireReader reader(body);
  const std::uint32_t list_bytes = reader.u24();
  if (!reader.ok() || list_bytes != reader.remaining()) return std::nullopt;
  CertificateChain chain;
  while (reader.remaining() > 0) {
    const std::uint32_t cert_len = reader.u24();
    if (!reader.ok() || cert_len > reader.remaining()) return std::nullopt;
    const auto cert = reader.raw(cert_len);
    // iwlint: allow(hot-path) -- certificate chains are copied once per
    // handshake; probe sessions cap them via the rx-byte budget
    chain.certificates.emplace_back(cert.begin(), cert.end());
  }
  return chain;
}

}  // namespace iwscan::tls
