// TLS server application: answers a ClientHello with the first server
// flight (ServerHello + Certificate [+ CertificateStatus] + ServerHelloDone)
// — the data source the TLS-based IW inference rides on (§3.3).
//
// Host policies model the behaviours behind the paper's TLS "few data"
// population (Table 1/2): servers that require SNI and either alert or
// close silently without it, and servers whose cipher sets don't intersect
// the probe list (handshake_failure alert only).
#pragma once

#include <string>
#include <vector>

#include "tls/cert.hpp"
#include "tls/records.hpp"
#include "tls/tls_server_config.hpp"
#include "tcpstack/host.hpp"

namespace iwscan::tls {

class TlsServerApp final : public tcp::Application {
 public:
  explicit TlsServerApp(TlsConfig config) : config_(std::move(config)) {}

  void on_data(tcp::TcpConnection& conn, std::span<const std::uint8_t> data) override;

  [[nodiscard]] static tcp::TcpHost::AppFactory factory(TlsConfig config);

 private:
  void send_first_flight(tcp::TcpConnection& conn, const ClientHello& hello);
  void send_alert(tcp::TcpConnection& conn, AlertDescription description);

  TlsConfig config_;
  RecordReader reader_;
  bool handled_hello_ = false;
};

}  // namespace iwscan::tls
