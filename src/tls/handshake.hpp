// TLS 1.2 handshake messages (RFC 5246 §7.4): ClientHello, ServerHello,
// Certificate, ServerHelloDone, CertificateStatus — the complete first
// flight the IW scan rides on (§3.3 of the paper).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "netbase/wire.hpp"
#include "tls/ciphers.hpp"
#include "tls/records.hpp"

namespace iwscan::tls {

enum class HandshakeType : std::uint8_t {
  ClientHello = 1,
  ServerHello = 2,
  Certificate = 11,
  ServerHelloDone = 14,
  CertificateStatus = 22,
};

/// Frame a handshake message (type + 24-bit length + body).
[[nodiscard]] net::Bytes encode_handshake(HandshakeType type,
                                          std::span<const std::uint8_t> body);

/// Iterate handshake messages inside concatenated handshake payload bytes.
struct HandshakeMessage {
  HandshakeType type;
  net::Bytes body;
};
[[nodiscard]] std::optional<std::vector<HandshakeMessage>> split_handshakes(
    std::span<const std::uint8_t> payload);

struct ClientHello {
  std::uint16_t version = kTls12;
  std::array<std::uint8_t, 32> random{};
  net::Bytes session_id;
  std::vector<CipherSuite> cipher_suites;
  std::vector<std::uint8_t> compression_methods{0};
  std::optional<std::string> server_name;  // SNI
  bool ocsp_stapling = false;              // status_request extension

  /// Body bytes (without the handshake frame).
  [[nodiscard]] net::Bytes encode() const;
  [[nodiscard]] static std::optional<ClientHello> decode(
      std::span<const std::uint8_t> body);
};

struct ServerHello {
  std::uint16_t version = kTls12;
  std::array<std::uint8_t, 32> random{};
  net::Bytes session_id;
  CipherSuite cipher_suite = 0;
  std::uint8_t compression_method = 0;
  bool ocsp_stapling = false;  // echoes status_request when stapling
  // Extra extension payload (renegotiation_info, ALPN, tickets… lumped as a
  // padding extension): real server hellos carry 100–250 B beyond the
  // minimum, which matters for how much first-flight data fills the IW.
  std::uint16_t extra_extension_bytes = 0;

  [[nodiscard]] net::Bytes encode() const;
  [[nodiscard]] static std::optional<ServerHello> decode(
      std::span<const std::uint8_t> body);
};

struct CertificateChain {
  std::vector<net::Bytes> certificates;  // DER blobs, leaf first

  /// Sum of certificate byte lengths (the quantity plotted in Fig. 2).
  [[nodiscard]] std::size_t total_certificate_bytes() const noexcept;

  [[nodiscard]] net::Bytes encode() const;
  [[nodiscard]] static std::optional<CertificateChain> decode(
      std::span<const std::uint8_t> body);
};

}  // namespace iwscan::tls
