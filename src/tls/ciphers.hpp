// TLS 1.2 cipher-suite registry.
//
// The paper compiles a list of 40 cipher suites from Safari, Firefox and
// Chrome, enriched with suites seen in censys.io data (§3.3). We reproduce
// that list with real IANA code points so the ClientHello on the simulated
// wire is a faithful byte-level artifact.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace iwscan::tls {

using CipherSuite = std::uint16_t;

/// The 40-suite probe list (browser union + censys extras), strongest first.
[[nodiscard]] std::span<const CipherSuite> probe_cipher_list() noexcept;

/// Human-readable suite name ("TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256"),
/// or "0xXXXX" if unregistered.
[[nodiscard]] std::string cipher_name(CipherSuite suite);

/// Typical server-side support sets, used to populate host profiles.
enum class CipherProfile {
  Modern,    // ECDHE+AESGCM/ChaCha only
  Standard,  // modern + AES-CBC + RSA key exchange
  Legacy,    // old CBC/3DES/RC4-era suites
  Exotic,    // suites outside the probe list → handshake failure
};

[[nodiscard]] std::vector<CipherSuite> cipher_set(CipherProfile profile);

/// First probe-list suite supported by the server, or 0 if none.
[[nodiscard]] CipherSuite negotiate(std::span<const CipherSuite> client_offer,
                                    std::span<const CipherSuite> server_set) noexcept;

}  // namespace iwscan::tls
