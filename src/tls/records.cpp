#include "tls/records.hpp"

#include <algorithm>
#include <stdexcept>

namespace iwscan::tls {

void encode_record(const Record& record, net::Bytes& out) {
  // A larger payload must go through encode_fragmented; the 16-bit length
  // field would silently truncate and desync the record stream.
  if (record.payload.size() > kMaxRecordPayload) {
    throw std::length_error("TLS record payload exceeds 2^14 bytes");
  }
  net::WireWriter writer(out);
  writer.u8(static_cast<std::uint8_t>(record.type));
  writer.u16(record.version);
  writer.u16(static_cast<std::uint16_t>(record.payload.size()));
  writer.raw(record.payload);
}

void encode_fragmented(ContentType type, std::uint16_t version,
                       std::span<const std::uint8_t> payload, net::Bytes& out) {
  std::size_t offset = 0;
  do {
    const std::size_t chunk = std::min(payload.size() - offset, kMaxRecordPayload);
    net::WireWriter writer(out);
    writer.u8(static_cast<std::uint8_t>(type));
    writer.u16(version);
    writer.u16(static_cast<std::uint16_t>(chunk));
    writer.raw(payload.subspan(offset, chunk));
    offset += chunk;
  } while (offset < payload.size());
}

void RecordReader::feed(std::span<const std::uint8_t> data) {
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

std::optional<Record> RecordReader::next() {
  if (malformed_ || buffer_.size() < 5) return std::nullopt;
  const std::uint8_t type = buffer_[0];
  if (type < 20 || type > 23) {
    malformed_ = true;
    return std::nullopt;
  }
  const std::uint16_t version =
      static_cast<std::uint16_t>((buffer_[1] << 8) | buffer_[2]);
  const std::size_t length = (buffer_[3] << 8) | buffer_[4];
  if (length > kMaxRecordPayload + 256) {
    malformed_ = true;
    return std::nullopt;
  }
  if (buffer_.size() < 5 + length) return std::nullopt;

  Record record;
  record.type = static_cast<ContentType>(type);
  record.version = version;
  record.payload.assign(buffer_.begin() + 5,
                        buffer_.begin() + 5 + static_cast<std::ptrdiff_t>(length));
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + 5 + static_cast<std::ptrdiff_t>(length));
  return record;
}

net::Bytes encode_alert(AlertLevel level, AlertDescription description) {
  return net::Bytes{static_cast<std::uint8_t>(level),
                    static_cast<std::uint8_t>(description)};
}

std::optional<Alert> decode_alert(std::span<const std::uint8_t> payload) {
  if (payload.size() != 2) return std::nullopt;
  return Alert{static_cast<AlertLevel>(payload[0]),
               static_cast<AlertDescription>(payload[1])};
}

}  // namespace iwscan::tls
