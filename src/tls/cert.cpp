#include "tls/cert.hpp"

#include <algorithm>

namespace iwscan::tls {

net::Bytes make_certificate(std::size_t size, std::string_view subject,
                            std::uint64_t seed) {
  size = std::max<std::size_t>(size, 8);
  net::Bytes cert;
  cert.reserve(size);

  // DER outer frame: SEQUENCE (0x30) with definite long-form length so the
  // blob passes casual "is this DER?" inspection.
  const std::size_t content_len = size - 4;
  cert.push_back(0x30);
  cert.push_back(0x82);  // length in next two bytes
  cert.push_back(static_cast<std::uint8_t>(content_len >> 8));
  cert.push_back(static_cast<std::uint8_t>(content_len));

  // Embed the subject for debuggability, then deterministic filler.
  const std::size_t tag_len = std::min(subject.size(), size - cert.size());
  cert.insert(cert.end(), subject.begin(), subject.begin() + tag_len);

  util::Rng rng(util::mix64(seed, size));
  while (cert.size() < size) {
    cert.push_back(static_cast<std::uint8_t>(rng() & 0xff));
  }
  return cert;
}

CertificateChain make_chain(std::size_t total_bytes, std::string_view subject,
                            std::uint64_t seed) {
  total_bytes = std::max<std::size_t>(total_bytes, 8);
  CertificateChain chain;

  // Realistic splits: small totals are a lone (often self-signed) leaf;
  // mid-size chains are leaf + one intermediate; large ones add a second
  // intermediate. The leaf takes ~55% of the bytes, as in typical chains.
  if (total_bytes < 1200) {
    chain.certificates.push_back(make_certificate(total_bytes, subject, seed));
    return chain;
  }
  const int intermediates = total_bytes >= 4200 ? 2 : 1;
  const std::size_t leaf = total_bytes * 55 / 100;
  std::size_t remaining = total_bytes - leaf;
  chain.certificates.push_back(make_certificate(leaf, subject, seed));
  for (int i = 0; i < intermediates; ++i) {
    const std::size_t piece =
        i + 1 == intermediates ? remaining : remaining / 2;
    chain.certificates.push_back(
        make_certificate(piece, "intermediate-ca", util::mix64(seed, 1000 + i)));
    remaining -= piece;
  }
  return chain;
}

}  // namespace iwscan::tls
