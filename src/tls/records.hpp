// TLS record layer (RFC 5246 §6.2): framing only, no encryption — the scan
// never progresses past the server's first flight, which is plaintext.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "netbase/wire.hpp"

namespace iwscan::tls {

enum class ContentType : std::uint8_t {
  ChangeCipherSpec = 20,
  Alert = 21,
  Handshake = 22,
  ApplicationData = 23,
};

inline constexpr std::uint16_t kTls12 = 0x0303;
inline constexpr std::uint16_t kTls10 = 0x0301;
inline constexpr std::size_t kMaxRecordPayload = 1 << 14;

struct Record {
  ContentType type = ContentType::Handshake;
  std::uint16_t version = kTls12;
  net::Bytes payload;
};

/// Serialize one record (payload must be ≤ 2^14 bytes).
void encode_record(const Record& record, net::Bytes& out);

/// Serialize a payload, fragmenting across records if it exceeds 2^14.
void encode_fragmented(ContentType type, std::uint16_t version,
                       std::span<const std::uint8_t> payload, net::Bytes& out);

/// Incremental record deframer: feed TCP payload bytes, pop whole records.
class RecordReader {
 public:
  void feed(std::span<const std::uint8_t> data);

  /// Next complete record, or nullopt if more bytes are needed.
  /// Sets malformed() and returns nullopt on a bad header.
  [[nodiscard]] std::optional<Record> next();

  [[nodiscard]] bool malformed() const noexcept { return malformed_; }
  [[nodiscard]] std::size_t buffered() const noexcept { return buffer_.size(); }

 private:
  net::Bytes buffer_;
  bool malformed_ = false;
};

enum class AlertLevel : std::uint8_t { Warning = 1, Fatal = 2 };
enum class AlertDescription : std::uint8_t {
  CloseNotify = 0,
  HandshakeFailure = 40,
  ProtocolVersion = 70,
  InternalError = 80,
  UnrecognizedName = 112,
};

/// Two-byte alert payload inside an Alert record.
[[nodiscard]] net::Bytes encode_alert(AlertLevel level, AlertDescription description);
struct Alert {
  AlertLevel level;
  AlertDescription description;
};
[[nodiscard]] std::optional<Alert> decode_alert(std::span<const std::uint8_t> payload);

}  // namespace iwscan::tls
