#include "netbase/ipv4.hpp"

#include <charconv>

namespace iwscan::net {

std::optional<IPv4Address> IPv4Address::parse(std::string_view text) noexcept {
  std::uint32_t value = 0;
  const char* cursor = text.data();
  const char* const end = text.data() + text.size();
  for (int i = 0; i < 4; ++i) {
    unsigned octet = 0;
    const auto [ptr, ec] = std::from_chars(cursor, end, octet);
    if (ec != std::errc{} || octet > 255) return std::nullopt;
    // Reject leading zeros longer than one digit ("01") for strictness.
    if (ptr - cursor > 1 && *cursor == '0') return std::nullopt;
    value = (value << 8) | octet;
    cursor = ptr;
    if (i < 3) {
      if (cursor == end || *cursor != '.') return std::nullopt;
      ++cursor;
    }
  }
  if (cursor != end) return std::nullopt;
  return IPv4Address{value};
}

std::string IPv4Address::to_string() const {
  std::string out;
  out.reserve(15);
  for (int i = 0; i < 4; ++i) {
    if (i) out.push_back('.');
    out += std::to_string(octet(i));
  }
  return out;
}

std::optional<Cidr> Cidr::parse(std::string_view text) noexcept {
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) {
    const auto addr = IPv4Address::parse(text);
    if (!addr) return std::nullopt;
    return Cidr{*addr, 32};
  }
  const auto addr = IPv4Address::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  unsigned len = 0;
  const std::string_view suffix = text.substr(slash + 1);
  const auto [ptr, ec] =
      std::from_chars(suffix.data(), suffix.data() + suffix.size(), len);
  if (ec != std::errc{} || ptr != suffix.data() + suffix.size() || len > 32) {
    return std::nullopt;
  }
  return Cidr{*addr, static_cast<int>(len)};
}

std::string Cidr::to_string() const {
  return base.to_string() + "/" + std::to_string(prefix_len);
}

}  // namespace iwscan::net
