// Whole-datagram encode/decode: IPv4 + (TCP segment | ICMP message).
//
// The simulator transports raw byte vectors; these helpers are the only
// place where full datagrams are assembled or taken apart, so checksums and
// length fields are guaranteed consistent everywhere.
#pragma once

#include <optional>
#include <variant>

#include "netbase/headers.hpp"
#include "netbase/wire.hpp"

namespace iwscan::net {

struct TcpSegment {
  Ipv4Header ip;
  TcpHeader tcp;
  Bytes payload;

  [[nodiscard]] std::size_t payload_size() const noexcept { return payload.size(); }
  /// Sequence space consumed: payload plus SYN/FIN flags.
  [[nodiscard]] std::uint32_t seq_length() const noexcept {
    return static_cast<std::uint32_t>(payload.size()) + (tcp.has(kSyn) ? 1 : 0) +
           (tcp.has(kFin) ? 1 : 0);
  }
};

struct IcmpDatagram {
  Ipv4Header ip;
  IcmpMessage icmp;
};

using Datagram = std::variant<TcpSegment, IcmpDatagram>;

/// Serialize a TCP segment into wire bytes. Fills ip.total_length and both
/// checksums; other ip/tcp fields are taken as given.
[[nodiscard]] Bytes encode(const TcpSegment& segment);

/// Serialize an ICMP datagram.
[[nodiscard]] Bytes encode(const IcmpDatagram& datagram);

/// encode() into a caller-provided vector (cleared first) — the pooled
/// datapath: passing a recycled PacketBuf's bytes() makes steady-state
/// encoding allocation-free once buffers have grown to working size.
void encode_into(const TcpSegment& segment, Bytes& out);
void encode_into(const IcmpDatagram& datagram, Bytes& out);

/// Parse any supported datagram. Returns nullopt on malformed bytes, bad
/// checksum, or unsupported protocol.
[[nodiscard]] std::optional<Datagram> decode_datagram(std::span<const std::uint8_t> bytes);

/// Destination address without full parsing (for simulator routing).
/// Returns nullopt if the buffer cannot possibly hold an IPv4 header.
[[nodiscard]] std::optional<IPv4Address> peek_destination(
    std::span<const std::uint8_t> bytes) noexcept;

/// Source address without full parsing.
[[nodiscard]] std::optional<IPv4Address> peek_source(
    std::span<const std::uint8_t> bytes) noexcept;

}  // namespace iwscan::net
