// TCP option encoding/decoding (RFC 793 §3.1, RFC 7323, RFC 2018).
//
// Only the options the scan methodology touches are modeled: MSS (announced
// small to maximize segment counts, §3.1 of the paper), window scale (to
// advertise a large receive window), and SACK-permitted (deliberately NOT
// offered, disabling tail-loss probes, §3.1). Unknown options round-trip as
// raw bytes so foreign stacks can be represented faithfully.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <variant>
#include <vector>

#include "netbase/wire.hpp"

namespace iwscan::net {

struct MssOption {
  std::uint16_t mss = 536;
  bool operator==(const MssOption&) const = default;
};

struct WindowScaleOption {
  std::uint8_t shift = 0;
  bool operator==(const WindowScaleOption&) const = default;
};

struct SackPermittedOption {
  bool operator==(const SackPermittedOption&) const = default;
};

struct UnknownOption {
  std::uint8_t kind = 0;
  Bytes data;  // option payload, excluding kind and length octets
  bool operator==(const UnknownOption&) const = default;
};

using TcpOption =
    std::variant<MssOption, WindowScaleOption, SackPermittedOption, UnknownOption>;

/// Serialize options and pad with NOPs to a 4-byte boundary.
void encode_tcp_options(const std::vector<TcpOption>& options, WireWriter& writer);

/// Size in bytes that encode_tcp_options will produce (incl. padding).
[[nodiscard]] std::size_t encoded_tcp_options_size(const std::vector<TcpOption>& options);

/// Parse the options area of a TCP header. Returns nullopt on malformed
/// lengths; NOP and END are consumed silently.
[[nodiscard]] std::optional<std::vector<TcpOption>> decode_tcp_options(
    std::span<const std::uint8_t> data);

/// First MSS option found, if any.
[[nodiscard]] std::optional<std::uint16_t> find_mss(const std::vector<TcpOption>& options);

/// First window-scale option found, if any.
[[nodiscard]] std::optional<std::uint8_t> find_window_scale(
    const std::vector<TcpOption>& options);

/// True if SACK-permitted is present.
[[nodiscard]] bool has_sack_permitted(const std::vector<TcpOption>& options);

}  // namespace iwscan::net
