// IPv4 addresses and CIDR prefixes.
//
// Addresses are held in host byte order; conversion to network order happens
// only at the wire codec boundary (headers.cpp).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace iwscan::net {

class IPv4Address {
 public:
  constexpr IPv4Address() = default;
  constexpr explicit IPv4Address(std::uint32_t host_order) noexcept : value_(host_order) {}
  constexpr IPv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d) noexcept
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  /// Parse dotted-quad notation ("192.0.2.1").
  [[nodiscard]] static std::optional<IPv4Address> parse(std::string_view text) noexcept;

  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }
  [[nodiscard]] constexpr std::uint8_t octet(int index) const noexcept {
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - index)));
  }

  [[nodiscard]] std::string to_string() const;

  constexpr auto operator<=>(const IPv4Address&) const noexcept = default;

 private:
  std::uint32_t value_ = 0;
};

/// A CIDR block, e.g. 203.0.113.0/24.
struct Cidr {
  IPv4Address base;
  int prefix_len = 32;

  [[nodiscard]] static std::optional<Cidr> parse(std::string_view text) noexcept;

  [[nodiscard]] constexpr std::uint32_t mask() const noexcept {
    return prefix_len == 0 ? 0u : ~std::uint32_t{0} << (32 - prefix_len);
  }
  [[nodiscard]] constexpr bool contains(IPv4Address addr) const noexcept {
    return (addr.value() & mask()) == (base.value() & mask());
  }
  /// Number of addresses in the block (2^(32-prefix_len)).
  [[nodiscard]] constexpr std::uint64_t size() const noexcept {
    return std::uint64_t{1} << (32 - prefix_len);
  }
  /// First address of the block (network address).
  [[nodiscard]] constexpr IPv4Address first() const noexcept {
    return IPv4Address{base.value() & mask()};
  }
  /// i-th address inside the block; caller ensures i < size().
  [[nodiscard]] constexpr IPv4Address at(std::uint64_t i) const noexcept {
    return IPv4Address{static_cast<std::uint32_t>((base.value() & mask()) + i)};
  }

  [[nodiscard]] std::string to_string() const;

  constexpr auto operator<=>(const Cidr&) const noexcept = default;
};

}  // namespace iwscan::net

template <>
struct std::hash<iwscan::net::IPv4Address> {
  std::size_t operator()(const iwscan::net::IPv4Address& addr) const noexcept {
    // Fibonacci hash of the 32-bit value; good dispersion for sequential IPs.
    return static_cast<std::size_t>(addr.value() * 0x9E3779B97F4A7C15ULL >> 16);
  }
};
