#include "netbase/tcp_options.hpp"

#include <algorithm>

namespace iwscan::net {
namespace {

constexpr std::uint8_t kEnd = 0;
constexpr std::uint8_t kNop = 1;
constexpr std::uint8_t kMss = 2;
constexpr std::uint8_t kWindowScale = 3;
constexpr std::uint8_t kSackPermitted = 4;

// Largest payload an option can carry: the length octet covers kind+length.
constexpr std::size_t kMaxOptionPayload = 253;

std::size_t unknown_payload_size(const UnknownOption& opt) {
  return std::min(opt.data.size(), kMaxOptionPayload);
}

std::size_t option_size(const TcpOption& option) {
  return std::visit(
      [](const auto& opt) -> std::size_t {
        using T = std::decay_t<decltype(opt)>;
        if constexpr (std::is_same_v<T, MssOption>) return 4;
        if constexpr (std::is_same_v<T, WindowScaleOption>) return 3;
        if constexpr (std::is_same_v<T, SackPermittedOption>) return 2;
        if constexpr (std::is_same_v<T, UnknownOption>)
          return 2 + unknown_payload_size(opt);
      },
      option);
}

}  // namespace

std::size_t encoded_tcp_options_size(const std::vector<TcpOption>& options) {
  std::size_t size = 0;
  for (const auto& option : options) size += option_size(option);
  return (size + 3) & ~std::size_t{3};
}

void encode_tcp_options(const std::vector<TcpOption>& options, WireWriter& writer) {
  std::size_t written = 0;
  for (const auto& option : options) {
    std::visit(
        [&](const auto& opt) {
          using T = std::decay_t<decltype(opt)>;
          if constexpr (std::is_same_v<T, MssOption>) {
            writer.u8(kMss);
            writer.u8(4);
            writer.u16(opt.mss);
          } else if constexpr (std::is_same_v<T, WindowScaleOption>) {
            writer.u8(kWindowScale);
            writer.u8(3);
            writer.u8(opt.shift);
          } else if constexpr (std::is_same_v<T, SackPermittedOption>) {
            writer.u8(kSackPermitted);
            writer.u8(2);
          } else if constexpr (std::is_same_v<T, UnknownOption>) {
            // The length octet is 8-bit; clamp instead of letting the cast
            // truncate and desynchronize the length from the payload.
            const std::size_t payload = unknown_payload_size(opt);
            writer.u8(opt.kind);
            writer.u8(static_cast<std::uint8_t>(2 + payload));
            writer.raw(std::span<const std::uint8_t>(opt.data).first(payload));
          }
        },
        option);
    written += option_size(option);
  }
  while (written % 4 != 0) {
    writer.u8(kNop);
    ++written;
  }
}

std::optional<std::vector<TcpOption>> decode_tcp_options(
    std::span<const std::uint8_t> data) {
  std::vector<TcpOption> options;
  std::size_t i = 0;
  while (i < data.size()) {
    const std::uint8_t kind = data[i];
    if (kind == kEnd) break;
    if (kind == kNop) {
      ++i;
      continue;
    }
    if (i + 1 >= data.size()) return std::nullopt;
    const std::uint8_t length = data[i + 1];
    if (length < 2 || i + length > data.size()) return std::nullopt;
    const auto payload = data.subspan(i + 2, length - 2);
    switch (kind) {
      case kMss: {
        if (length != 4) return std::nullopt;
        const auto mss = static_cast<std::uint16_t>((payload[0] << 8) | payload[1]);
        // iwlint: allow(hot-path) -- a segment decodes to at most a few
        // options; counted by the runtime allocs-per-packet budget
        options.push_back(MssOption{mss});
        break;
      }
      case kWindowScale: {
        if (length != 3) return std::nullopt;
        // iwlint: allow(hot-path) -- a segment decodes to at most a few
        // options; counted by the runtime allocs-per-packet budget
        options.push_back(WindowScaleOption{payload[0]});
        break;
      }
      case kSackPermitted: {
        if (length != 2) return std::nullopt;
        // iwlint: allow(hot-path) -- a segment decodes to at most a few
        // options; counted by the runtime allocs-per-packet budget
        options.push_back(SackPermittedOption{});
        break;
      }
      // iwlint: allow(wire-enum-default) -- unknown option kinds must
      // round-trip as UnknownOption so foreign stacks stay representable (§3.1)
      default:
        // iwlint: allow(hot-path) -- a segment decodes to at most a few
        // options; counted by the runtime allocs-per-packet budget
        options.push_back(UnknownOption{kind, Bytes(payload.begin(), payload.end())});
        break;
    }
    i += length;
  }
  return options;
}

std::optional<std::uint16_t> find_mss(const std::vector<TcpOption>& options) {
  for (const auto& option : options) {
    if (const auto* mss = std::get_if<MssOption>(&option)) return mss->mss;
  }
  return std::nullopt;
}

std::optional<std::uint8_t> find_window_scale(const std::vector<TcpOption>& options) {
  for (const auto& option : options) {
    if (const auto* ws = std::get_if<WindowScaleOption>(&option)) return ws->shift;
  }
  return std::nullopt;
}

bool has_sack_permitted(const std::vector<TcpOption>& options) {
  for (const auto& option : options) {
    if (std::holds_alternative<SackPermittedOption>(option)) return true;
  }
  return false;
}

}  // namespace iwscan::net
