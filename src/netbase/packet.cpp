#include "netbase/packet.hpp"

#include "netbase/checksum.hpp"

namespace iwscan::net {

void encode_into(const TcpSegment& segment, Bytes& out) {
  out.clear();
  const std::size_t tcp_len = segment.tcp.encoded_size() + segment.payload.size();
  // iwlint: allow(hot-path) -- reserve on a pooled buffer reusing its
  // capacity; a no-op in steady state (pinned by alloc_budget_test)
  out.reserve(Ipv4Header::kSize + tcp_len);
  WireWriter writer(out);

  Ipv4Header ip = segment.ip;
  ip.protocol = kProtocolTcp;
  ip.total_length = static_cast<std::uint16_t>(Ipv4Header::kSize + tcp_len);
  ip.encode(writer);

  const std::size_t tcp_start = writer.offset();
  segment.tcp.encode(writer);
  writer.raw(segment.payload);

  const std::uint16_t checksum = tcp_checksum(
      ip.src, ip.dst, std::span<const std::uint8_t>(out).subspan(tcp_start));
  writer.patch_u16(tcp_start + 16, checksum);
}

void encode_into(const IcmpDatagram& datagram, Bytes& out) {
  out.clear();
  // ICMP wire size is known up front (8-byte header + payload), so the
  // message encodes straight into the output — no staging vector.
  constexpr std::size_t kIcmpHeaderSize = 8;
  const std::size_t icmp_len = kIcmpHeaderSize + datagram.icmp.payload.size();
  // iwlint: allow(hot-path) -- reserve on a pooled buffer reusing its
  // capacity; a no-op in steady state (pinned by alloc_budget_test)
  out.reserve(Ipv4Header::kSize + icmp_len);
  WireWriter writer(out);
  Ipv4Header ip = datagram.ip;
  ip.protocol = kProtocolIcmp;
  ip.total_length = static_cast<std::uint16_t>(Ipv4Header::kSize + icmp_len);
  ip.encode(writer);
  datagram.icmp.encode(writer);
}

Bytes encode(const TcpSegment& segment) {
  Bytes out;
  encode_into(segment, out);
  return out;
}

Bytes encode(const IcmpDatagram& datagram) {
  Bytes out;
  encode_into(datagram, out);
  return out;
}

std::optional<Datagram> decode_datagram(std::span<const std::uint8_t> bytes) {
  WireReader reader(bytes);
  const auto ip = Ipv4Header::decode(reader);
  if (!ip) return std::nullopt;
  if (ip->total_length < Ipv4Header::kSize || ip->total_length > bytes.size()) {
    return std::nullopt;
  }
  const std::size_t l4_len = ip->total_length - Ipv4Header::kSize;

  if (ip->protocol == kProtocolTcp) {
    const auto l4 = std::span<const std::uint8_t>(bytes).subspan(Ipv4Header::kSize, l4_len);
    if (tcp_checksum(ip->src, ip->dst, l4) != 0) return std::nullopt;
    WireReader tcp_reader(l4);
    std::size_t data_offset = 0;
    auto tcp = TcpHeader::decode(tcp_reader, data_offset);
    if (!tcp) return std::nullopt;
    if (data_offset > l4_len) return std::nullopt;
    TcpSegment segment;
    segment.ip = *ip;
    segment.tcp = std::move(*tcp);
    const auto payload = l4.subspan(data_offset);
    // iwlint: allow(hot-path) -- rx payload copy out of the borrowed fabric
    // buffer; counted by the runtime allocs-per-packet budget
    segment.payload.assign(payload.begin(), payload.end());
    return Datagram{std::move(segment)};
  }

  if (ip->protocol == kProtocolIcmp) {
    const auto l4 = std::span<const std::uint8_t>(bytes).subspan(Ipv4Header::kSize, l4_len);
    auto icmp = IcmpMessage::decode(l4);
    if (!icmp) return std::nullopt;
    return Datagram{IcmpDatagram{*ip, std::move(*icmp)}};
  }

  return std::nullopt;
}

std::optional<IPv4Address> peek_destination(
    std::span<const std::uint8_t> bytes) noexcept {
  if (bytes.size() < Ipv4Header::kSize) return std::nullopt;
  const std::uint32_t value = (std::uint32_t{bytes[16]} << 24) |
                              (std::uint32_t{bytes[17]} << 16) |
                              (std::uint32_t{bytes[18]} << 8) | bytes[19];
  return IPv4Address{value};
}

std::optional<IPv4Address> peek_source(std::span<const std::uint8_t> bytes) noexcept {
  if (bytes.size() < Ipv4Header::kSize) return std::nullopt;
  const std::uint32_t value = (std::uint32_t{bytes[12]} << 24) |
                              (std::uint32_t{bytes[13]} << 16) |
                              (std::uint32_t{bytes[14]} << 8) | bytes[15];
  return IPv4Address{value};
}

}  // namespace iwscan::net
