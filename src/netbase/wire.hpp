// Big-endian wire readers/writers shared by all codecs (IP/TCP/TLS/HTTP
// framing). Header-only; every access is bounds-checked on the read side.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace iwscan::net {

using Bytes = std::vector<std::uint8_t>;

/// Appends big-endian fields to a growing byte vector.
class WireWriter {
 public:
  explicit WireWriter(Bytes& out) noexcept : out_(out) {}

  // u8 and raw are the only append primitives (u16/u24/u32 route through
  // u8), so they carry this file's hot-path suppressions: encoders write
  // into caller-provided pooled buffers whose capacity is reused across
  // packets, so the growth idiom never allocates in steady state.
  // iwlint: allow(hot-path) -- appends into the caller's pooled buffer;
  // capacity reuse is pinned by alloc_budget_test
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v >> 8));
    u8(static_cast<std::uint8_t>(v));
  }
  void u24(std::uint32_t v) {
    u8(static_cast<std::uint8_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void raw(std::span<const std::uint8_t> bytes) {
    // iwlint: allow(hot-path) -- bulk append into the caller's pooled buffer
    out_.insert(out_.end(), bytes.begin(), bytes.end());
  }
  void raw(std::string_view text) {
    // iwlint: allow(hot-path) -- bulk append into the caller's pooled buffer
    out_.insert(out_.end(), text.begin(), text.end());
  }

  /// Current write offset, for later patch_u16 (length fields).
  [[nodiscard]] std::size_t offset() const noexcept { return out_.size(); }

  void patch_u8(std::size_t at, std::uint8_t v) {
    check_patch(at, 1);
    out_[at] = v;
  }
  void patch_u16(std::size_t at, std::uint16_t v) {
    check_patch(at, 2);
    out_[at] = static_cast<std::uint8_t>(v >> 8);
    out_[at + 1] = static_cast<std::uint8_t>(v);
  }
  void patch_u24(std::size_t at, std::uint32_t v) {
    check_patch(at, 3);
    out_[at] = static_cast<std::uint8_t>(v >> 16);
    out_[at + 1] = static_cast<std::uint8_t>(v >> 8);
    out_[at + 2] = static_cast<std::uint8_t>(v);
  }

 private:
  // A patch may only rewrite bytes that were already written; an offset
  // reserved with offset() before the field was emitted would silently
  // scribble past the vector otherwise. The exception is the check itself
  // (callers and fuzz drivers recover from it); an assert would be dead
  // under NDEBUG and would turn the recoverable error into an abort.
  void check_patch(std::size_t at, std::size_t len) const {
    if (at > out_.size() || len > out_.size() - at) {
      // iwlint: allow(hot-path) -- audited failure path: an out-of-range
      // patch is a programming error, and fuzz drivers recover via catch
      throw std::out_of_range("WireWriter: patch offset past end of written bytes");
    }
  }

  Bytes& out_;
};

/// Bounds-checked big-endian reader. All accessors return nullopt past end;
/// ok() stays false afterwards so callers can batch-check once.
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> data) noexcept : data_(data) {}

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

  std::uint8_t u8() noexcept {
    if (!require(1)) return 0;
    return data_[pos_++];
  }
  std::uint16_t u16() noexcept {
    if (!require(2)) return 0;
    const std::uint16_t v =
        static_cast<std::uint16_t>((data_[pos_] << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  std::uint32_t u24() noexcept {
    if (!require(3)) return 0;
    const std::uint32_t v = (std::uint32_t{data_[pos_]} << 16) |
                            (std::uint32_t{data_[pos_ + 1]} << 8) | data_[pos_ + 2];
    pos_ += 3;
    return v;
  }
  std::uint32_t u32() noexcept {
    const std::uint32_t hi = u16();
    const std::uint32_t lo = u16();
    return (hi << 16) | lo;
  }
  std::span<const std::uint8_t> raw(std::size_t n) noexcept {
    if (!require(n)) return {};
    const auto view = data_.subspan(pos_, n);
    pos_ += n;
    return view;
  }
  void skip(std::size_t n) noexcept {
    if (require(n)) pos_ += n;
  }

  /// The sanctioned bounds guard: true iff `n` more bytes are available.
  /// Public so parsers can pre-validate an attacker-derived length before
  /// using it to size containers or slice spans — iwlint's wire-taint rule
  /// recognizes require() as the sanitizer for exactly that flow.
  /// Overflow-safe: pos_ <= data_.size() is an invariant, so the
  /// subtraction cannot wrap, whereas `pos_ + n` could for hostile n.
  bool require(std::size_t n) noexcept {
    if (!ok_ || n > data_.size() - pos_) {
      ok_ = false;
      return false;
    }
    return true;
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Convenience conversion for embedding ASCII payloads.
[[nodiscard]] inline Bytes to_bytes(std::string_view text) {
  return Bytes(text.begin(), text.end());
}
[[nodiscard]] inline std::string to_string(std::span<const std::uint8_t> bytes) {
  return std::string(bytes.begin(), bytes.end());
}

}  // namespace iwscan::net
