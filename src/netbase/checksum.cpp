#include "netbase/checksum.hpp"

#include <bit>

#include "util/bytes.hpp"

namespace iwscan::net {

namespace {

/// End-around fold of a ones-complement partial sum down to 16 bits. The
/// result is 0 only when the input is 0 (a positive sum folds into
/// [1, 0xffff]), which is what keeps the word-wise path's intermediate
/// folds invisible to finish().
[[nodiscard]] constexpr std::uint64_t fold16(std::uint64_t sum) noexcept {
  while ((sum >> 16) != 0) sum = (sum & 0xffff) + (sum >> 16);
  return sum;
}

[[nodiscard]] constexpr std::uint16_t byteswap16(std::uint64_t value) noexcept {
  return static_cast<std::uint16_t>(((value & 0xff) << 8) | ((value >> 8) & 0xff));
}

}  // namespace

void ChecksumAccumulator::add_scalar(std::span<const std::uint8_t> bytes) noexcept {
  std::size_t i = 0;
  for (; i + 1 < bytes.size(); i += 2) {
    sum_ += (static_cast<std::uint16_t>(bytes[i]) << 8) | bytes[i + 1];
  }
  if (i < bytes.size()) sum_ += static_cast<std::uint16_t>(bytes[i]) << 8;
}

// Word-at-a-time RFC 1071 sum. Eight bytes per load, accumulated in
// little-endian 16-bit-lane space and converted once at the end:
// ones-complement addition is arithmetic mod 0xffff, where a byte swap is
// multiplication by 2^8 (a unit), so
//   big-endian sum ≡ byteswap16(fold16(little-endian sum))  (mod 0xffff),
// and both sides are zero exactly for all-zero input, making the
// substitution invisible to finish()'s fold-and-invert. Four independent
// accumulators give the load/add chain instruction-level parallelism.
void ChecksumAccumulator::add(std::span<const std::uint8_t> bytes) noexcept {
  std::size_t i = 0;
  const std::size_t n = bytes.size();
  if constexpr (std::endian::native == std::endian::little) {
    if (n >= 8) {
      constexpr std::uint64_t kLo32 = 0xffffffffULL;
      std::uint64_t a0 = 0;
      std::uint64_t a1 = 0;
      std::uint64_t a2 = 0;
      std::uint64_t a3 = 0;
      const std::uint8_t* data = bytes.data();
      for (; i + 32 <= n; i += 32) {
        const std::uint64_t w0 = util::load_u64_native(data + i);
        const std::uint64_t w1 = util::load_u64_native(data + i + 8);
        const std::uint64_t w2 = util::load_u64_native(data + i + 16);
        const std::uint64_t w3 = util::load_u64_native(data + i + 24);
        a0 += (w0 & kLo32) + (w0 >> 32);
        a1 += (w1 & kLo32) + (w1 >> 32);
        a2 += (w2 & kLo32) + (w2 >> 32);
        a3 += (w3 & kLo32) + (w3 >> 32);
      }
      for (; i + 8 <= n; i += 8) {
        const std::uint64_t w = util::load_u64_native(data + i);
        a0 += (w & kLo32) + (w >> 32);
      }
      // The processed prefix is a multiple of 8 bytes, so the tail below
      // starts on an even offset and the big-endian pairing is preserved.
      sum_ += byteswap16(fold16(a0 + a1 + a2 + a3));
    }
  }
  // Tail (and big-endian hosts: the whole range) as big-endian byte pairs.
  for (; i + 1 < n; i += 2) {
    sum_ += (static_cast<std::uint16_t>(bytes[i]) << 8) | bytes[i + 1];
  }
  if (i < n) sum_ += static_cast<std::uint16_t>(bytes[i]) << 8;
}

std::uint16_t ChecksumAccumulator::finish() const noexcept {
  return static_cast<std::uint16_t>(~fold16(sum_) & 0xffff);
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> bytes) noexcept {
  ChecksumAccumulator acc;
  acc.add(bytes);
  return acc.finish();
}

std::uint16_t internet_checksum_scalar(
    std::span<const std::uint8_t> bytes) noexcept {
  ChecksumAccumulator acc;
  acc.add_scalar(bytes);
  return acc.finish();
}

std::uint16_t tcp_checksum(IPv4Address src, IPv4Address dst,
                           std::span<const std::uint8_t> segment) noexcept {
  ChecksumAccumulator acc;
  acc.add_u32(src.value());
  acc.add_u32(dst.value());
  acc.add_u16(6);  // protocol = TCP
  acc.add_u16(static_cast<std::uint16_t>(segment.size()));
  acc.add(segment);
  return acc.finish();
}

}  // namespace iwscan::net
