#include "netbase/checksum.hpp"

namespace iwscan::net {

void ChecksumAccumulator::add(std::span<const std::uint8_t> bytes) noexcept {
  std::size_t i = 0;
  for (; i + 1 < bytes.size(); i += 2) {
    sum_ += (static_cast<std::uint16_t>(bytes[i]) << 8) | bytes[i + 1];
  }
  if (i < bytes.size()) sum_ += static_cast<std::uint16_t>(bytes[i]) << 8;
}

std::uint16_t ChecksumAccumulator::finish() const noexcept {
  std::uint64_t folded = sum_;
  while (folded >> 16) folded = (folded & 0xffff) + (folded >> 16);
  return static_cast<std::uint16_t>(~folded & 0xffff);
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> bytes) noexcept {
  ChecksumAccumulator acc;
  acc.add(bytes);
  return acc.finish();
}

std::uint16_t tcp_checksum(IPv4Address src, IPv4Address dst,
                           std::span<const std::uint8_t> segment) noexcept {
  ChecksumAccumulator acc;
  acc.add_u32(src.value());
  acc.add_u32(dst.value());
  acc.add_u16(6);  // protocol = TCP
  acc.add_u16(static_cast<std::uint16_t>(segment.size()));
  acc.add(segment);
  return acc.finish();
}

}  // namespace iwscan::net
