#include "netbase/headers.hpp"

#include "netbase/checksum.hpp"

namespace iwscan::net {

void Ipv4Header::encode(WireWriter& writer) const {
  writer.u8(0x45);  // version 4, IHL 5
  writer.u8(tos);
  writer.u16(total_length);
  writer.u16(identification);
  std::uint16_t frag = fragment_offset & 0x1fff;
  if (dont_fragment) frag |= 0x4000;
  if (more_fragments) frag |= 0x2000;
  writer.u16(frag);
  writer.u8(ttl);
  writer.u8(protocol);
  const std::size_t checksum_at = writer.offset();
  writer.u16(0);
  writer.u32(src.value());
  writer.u32(dst.value());

  // Checksum over the header we just wrote.
  // WireWriter appends to a Bytes we do not own a span of; recompute from
  // the known layout instead of re-reading: fold fields directly.
  ChecksumAccumulator acc;
  acc.add_u16(0x4500 | tos);
  acc.add_u16(total_length);
  acc.add_u16(identification);
  acc.add_u16(frag);
  acc.add_u16(static_cast<std::uint16_t>((ttl << 8) | protocol));
  acc.add_u32(src.value());
  acc.add_u32(dst.value());
  writer.patch_u16(checksum_at, acc.finish());
}

std::optional<Ipv4Header> Ipv4Header::decode(WireReader& reader) {
  if (reader.remaining() < kSize) return std::nullopt;
  // Keep a copy of the raw header bytes for checksum verification.
  const auto raw = reader.raw(kSize);
  if (!reader.ok()) return std::nullopt;
  if (internet_checksum(raw) != 0) return std::nullopt;

  WireReader h(raw);
  const std::uint8_t version_ihl = h.u8();
  if ((version_ihl >> 4) != 4) return std::nullopt;
  const std::size_t ihl_bytes = static_cast<std::size_t>(version_ihl & 0x0f) * 4;
  if (ihl_bytes != kSize) return std::nullopt;  // options unsupported

  Ipv4Header header;
  header.tos = h.u8();
  header.total_length = h.u16();
  header.identification = h.u16();
  const std::uint16_t frag = h.u16();
  header.dont_fragment = (frag & 0x4000) != 0;
  header.more_fragments = (frag & 0x2000) != 0;
  header.fragment_offset = frag & 0x1fff;
  header.ttl = h.u8();
  header.protocol = h.u8();
  h.u16();  // checksum, already verified
  header.src = IPv4Address{h.u32()};
  header.dst = IPv4Address{h.u32()};
  return header;
}

void TcpHeader::encode(WireWriter& writer) const {
  writer.u16(src_port);
  writer.u16(dst_port);
  writer.u32(seq);
  writer.u32(ack);
  const std::size_t header_len = encoded_size();
  writer.u8(static_cast<std::uint8_t>((header_len / 4) << 4));
  writer.u8(flags);
  writer.u16(window);
  writer.u16(0);  // checksum patched by the packet codec
  writer.u16(urgent);
  encode_tcp_options(options, writer);
}

std::optional<TcpHeader> TcpHeader::decode(WireReader& reader,
                                           std::size_t& data_offset_bytes) {
  if (reader.remaining() < 20) return std::nullopt;
  TcpHeader header;
  header.src_port = reader.u16();
  header.dst_port = reader.u16();
  header.seq = reader.u32();
  header.ack = reader.u32();
  const std::uint8_t offset_byte = reader.u8();
  data_offset_bytes = static_cast<std::size_t>(offset_byte >> 4) * 4;
  if (data_offset_bytes < 20) return std::nullopt;
  header.flags = reader.u8() & 0x3f;
  header.window = reader.u16();
  reader.u16();  // checksum verified at packet layer
  header.urgent = reader.u16();
  const std::size_t options_len = data_offset_bytes - 20;
  if (options_len > reader.remaining()) return std::nullopt;
  auto options = decode_tcp_options(reader.raw(options_len));
  if (!options) return std::nullopt;
  header.options = std::move(*options);
  return header;
}

void IcmpMessage::encode(WireWriter& writer) const {
  writer.u8(static_cast<std::uint8_t>(type));
  writer.u8(code);
  const std::size_t checksum_at = writer.offset();
  writer.u16(0);
  writer.u16(id_or_unused);
  writer.u16(seq_or_mtu);
  writer.raw(payload);

  ChecksumAccumulator acc;
  acc.add_u16(static_cast<std::uint16_t>((static_cast<std::uint8_t>(type) << 8) | code));
  acc.add_u16(id_or_unused);
  acc.add_u16(seq_or_mtu);
  acc.add(payload);
  writer.patch_u16(checksum_at, acc.finish());
}

std::optional<IcmpMessage> IcmpMessage::decode(std::span<const std::uint8_t> data) {
  if (data.size() < 8) return std::nullopt;
  if (internet_checksum(data) != 0) return std::nullopt;
  WireReader reader(data);
  IcmpMessage message;
  message.type = static_cast<IcmpType>(reader.u8());
  message.code = reader.u8();
  reader.u16();  // checksum
  message.id_or_unused = reader.u16();
  message.seq_or_mtu = reader.u16();
  const auto rest = reader.raw(reader.remaining());
  // iwlint: allow(hot-path) -- ICMP payload copy into the decoded message;
  // counted by the runtime allocs-per-packet budget (alloc_budget_test)
  message.payload.assign(rest.begin(), rest.end());
  return message;
}

}  // namespace iwscan::net
