// RFC 1071 Internet checksum, with the TCP/UDP pseudo-header variant.
#pragma once

#include <cstdint>
#include <span>

#include "netbase/ipv4.hpp"
#include "util/annotations.hpp"

namespace iwscan::net {

/// Running ones-complement sum; fold + invert at the end via finish().
class ChecksumAccumulator {
 public:
  /// Add a byte range as big-endian 16-bit words (odd trailing byte padded
  /// with a zero byte, per RFC 1071). Word-at-a-time: reads 8 bytes per
  /// load and folds, ~an order of magnitude faster than the byte loop on
  /// MTU-sized frames.
  IWSCAN_HOT void add(std::span<const std::uint8_t> bytes) noexcept;
  /// Reference byte-pair implementation of add(). Kept as the oracle for
  /// the word-wise kernel's property tests; produces an identical running
  /// sum as far as finish() can observe.
  void add_scalar(std::span<const std::uint8_t> bytes) noexcept;
  void add_u16(std::uint16_t value) noexcept { sum_ += value; }
  void add_u32(std::uint32_t value) noexcept {
    sum_ += (value >> 16) + (value & 0xffff);
  }

  /// Final folded, inverted checksum in host byte order.
  [[nodiscard]] std::uint16_t finish() const noexcept;

 private:
  std::uint64_t sum_ = 0;
};

/// Checksum of a plain byte range (e.g. an IPv4 header with its checksum
/// field zeroed, or an ICMP message).
[[nodiscard]] std::uint16_t internet_checksum(std::span<const std::uint8_t> bytes) noexcept;

/// internet_checksum() computed with the scalar reference kernel — the
/// property-test oracle for the word-wise fast path.
[[nodiscard]] std::uint16_t internet_checksum_scalar(
    std::span<const std::uint8_t> bytes) noexcept;

/// TCP checksum over pseudo-header + segment bytes (header with zeroed
/// checksum field + payload).
[[nodiscard]] std::uint16_t tcp_checksum(IPv4Address src, IPv4Address dst,
                                         std::span<const std::uint8_t> segment) noexcept;

}  // namespace iwscan::net
