// RFC 1071 Internet checksum, with the TCP/UDP pseudo-header variant.
#pragma once

#include <cstdint>
#include <span>

#include "netbase/ipv4.hpp"
#include "util/annotations.hpp"

namespace iwscan::net {

/// Running ones-complement sum; fold + invert at the end via finish().
class ChecksumAccumulator {
 public:
  /// Add a byte range as big-endian 16-bit words (odd trailing byte padded
  /// with a zero byte, per RFC 1071). Word-at-a-time: reads 8 bytes per
  /// load and folds, ~an order of magnitude faster than the byte loop on
  /// MTU-sized frames.
  IWSCAN_HOT void add(std::span<const std::uint8_t> bytes) noexcept;
  /// Reference byte-pair implementation of add(). Kept as the oracle for
  /// the word-wise kernel's property tests; produces an identical running
  /// sum as far as finish() can observe.
  void add_scalar(std::span<const std::uint8_t> bytes) noexcept;
  void add_u16(std::uint16_t value) noexcept { sum_ += value; }
  void add_u32(std::uint32_t value) noexcept {
    sum_ += (value >> 16) + (value & 0xffff);
  }

  /// Final folded, inverted checksum in host byte order.
  [[nodiscard]] std::uint16_t finish() const noexcept;

 private:
  std::uint64_t sum_ = 0;
};

/// Checksum of a plain byte range (e.g. an IPv4 header with its checksum
/// field zeroed, or an ICMP message).
[[nodiscard]] std::uint16_t internet_checksum(std::span<const std::uint8_t> bytes) noexcept;

/// internet_checksum() computed with the scalar reference kernel — the
/// property-test oracle for the word-wise fast path.
[[nodiscard]] std::uint16_t internet_checksum_scalar(
    std::span<const std::uint8_t> bytes) noexcept;

/// TCP checksum over pseudo-header + segment bytes (header with zeroed
/// checksum field + payload).
[[nodiscard]] std::uint16_t tcp_checksum(IPv4Address src, IPv4Address dst,
                                         std::span<const std::uint8_t> segment) noexcept;

/// Incremental checksum update (RFC 1624 eqn. 3): the checksum of a packet
/// after one 16-bit word changes from `old_word` to `new_word`, without
/// re-summing the packet. The stateless sweep patches precomputed packet
/// templates (destination address, seq/ack) per target this way, so its
/// hot path touches a handful of words instead of the whole frame. All
/// values are host-order, matching tcp_checksum()/internet_checksum().
[[nodiscard]] constexpr std::uint16_t checksum_update16(
    std::uint16_t checksum, std::uint16_t old_word, std::uint16_t new_word) noexcept {
  // HC' = ~(~HC + ~m + m'), with end-around carry folds. Two folds suffice:
  // three 16-bit terms sum below 3 * 0xffff, so one fold leaves at most one
  // carry bit for the second.
  std::uint32_t sum = static_cast<std::uint16_t>(~checksum);
  sum += static_cast<std::uint16_t>(~old_word);
  sum += new_word;
  sum = (sum & 0xffff) + (sum >> 16);
  sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

/// 32-bit convenience over checksum_update16: updates for one big-endian
/// 32-bit field (an IPv4 address, a TCP sequence number) changing value.
[[nodiscard]] constexpr std::uint16_t checksum_update32(
    std::uint16_t checksum, std::uint32_t old_word, std::uint32_t new_word) noexcept {
  const std::uint16_t high =
      checksum_update16(checksum, static_cast<std::uint16_t>(old_word >> 16),
                        static_cast<std::uint16_t>(new_word >> 16));
  return checksum_update16(high, static_cast<std::uint16_t>(old_word),
                           static_cast<std::uint16_t>(new_word));
}

}  // namespace iwscan::net
