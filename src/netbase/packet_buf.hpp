// Pooled, reference-counted packet buffers for the simulator datapath.
//
// Steady-state packet flow (encode → inject → impair → deliver) reuses a
// small working set of byte vectors instead of allocating one per packet:
// encode_into() fills a PacketBuf acquired from the fabric's BufferPool,
// every hop passes either the 8-byte handle (delivery lambdas, duplicate
// copies — a refcount bump, not a byte copy) or a borrowed PacketView
// (taps, filters, Endpoint::handle_packet), and the last handle to go out
// of scope returns the vector — capacity intact — to the pool's free list.
//
// Ownership rules (see DESIGN.md §Performance):
//   * Refcounts are not atomic. A pool and all handles to its buffers
//     belong to one shard (one EventLoop); never pass a PacketBuf across
//     threads.
//   * bytes() is mutate-before-share: only the sole handle to a freshly
//     acquired buffer may write, before any copy of the handle exists.
//   * A PacketView borrows; it is valid only for the duration of the call
//     it is passed to. Receivers that keep packet bytes must copy them.
//   * Handles may outlive their pool (e.g. parked in a not-yet-fired
//     delivery event while the Network is torn down): the pool core is
//     orphaned and buffers are freed — not recycled — as the last handles
//     release them.
#pragma once

#include <cstdint>
#include <span>
#include <utility>

#include "netbase/wire.hpp"

namespace iwscan::net {

/// Read-only borrow of a packet's wire bytes.
using PacketView = std::span<const std::uint8_t>;

class BufferPool;

namespace detail {

struct PoolCore;

struct PacketBlock {
  Bytes data;
  std::uint32_t refs = 0;
  PacketBlock* next_free = nullptr;
  PoolCore* core = nullptr;
};

// Heap-allocated so in-flight buffers can outlive the pool object: the
// pool's destructor marks the core closed and drops the free list; the
// last outstanding handle then frees its block and, once nothing remains
// outstanding, the core itself.
struct PoolCore {
  PacketBlock* free_head = nullptr;
  std::size_t outstanding = 0;
  bool closed = false;
};

inline void release_block(PacketBlock* block) noexcept {
  if (--block->refs != 0) return;
  PoolCore* core = block->core;
  --core->outstanding;
  if (core->closed) {
    delete block;
    if (core->outstanding == 0) delete core;
    return;
  }
  block->data.clear();  // keeps capacity for the next acquire()
  block->next_free = core->free_head;
  core->free_head = block;
}

}  // namespace detail

/// Shared handle to one pooled packet buffer. Copying shares (refcount
/// bump); the buffer recycles when the last handle releases it.
class PacketBuf {
 public:
  PacketBuf() noexcept = default;
  PacketBuf(const PacketBuf& other) noexcept : block_(other.block_) {
    if (block_ != nullptr) ++block_->refs;
  }
  PacketBuf(PacketBuf&& other) noexcept
      : block_(std::exchange(other.block_, nullptr)) {}
  PacketBuf& operator=(const PacketBuf& other) noexcept {
    PacketBuf(other).swap(*this);
    return *this;
  }
  PacketBuf& operator=(PacketBuf&& other) noexcept {
    PacketBuf(std::move(other)).swap(*this);
    return *this;
  }
  ~PacketBuf() { reset(); }

  void swap(PacketBuf& other) noexcept { std::swap(block_, other.block_); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return block_ != nullptr;
  }
  [[nodiscard]] PacketView view() const noexcept {
    return block_ != nullptr ? PacketView{block_->data} : PacketView{};
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return block_ != nullptr ? block_->data.size() : 0;
  }

  /// Mutable bytes for filling right after acquire(). Mutate-before-share:
  /// calling this once any other handle to the block exists breaks the
  /// stability readers of those handles rely on.
  [[nodiscard]] Bytes& bytes() noexcept { return block_->data; }

  /// Move the bytes out (bridge to owning net::Bytes consumers); copies
  /// when the block is shared. Leaves this handle null.
  [[nodiscard]] Bytes take_bytes() {
    if (block_ == nullptr) return {};
    Bytes out;
    if (block_->refs == 1) {
      out = std::move(block_->data);
    } else {
      out.assign(block_->data.begin(), block_->data.end());
    }
    reset();
    return out;
  }

  void reset() noexcept {
    if (block_ != nullptr) {
      detail::release_block(block_);
      block_ = nullptr;
    }
  }

 private:
  friend class BufferPool;
  explicit PacketBuf(detail::PacketBlock* block) noexcept : block_(block) {}

  detail::PacketBlock* block_ = nullptr;
};

/// Free list of recycled packet buffers. One per Network (one per shard):
/// single-threaded by construction, like the EventLoop it feeds.
class BufferPool {
 public:
  BufferPool() : core_(new detail::PoolCore) {}
  ~BufferPool() {
    core_->closed = true;
    detail::PacketBlock* block = core_->free_head;
    while (block != nullptr) {
      delete std::exchange(block, block->next_free);
    }
    if (core_->outstanding == 0) delete core_;
  }

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// An empty buffer with recycled capacity (uniquely held; fill via
  /// bytes() before sharing).
  [[nodiscard]] PacketBuf acquire() {
    detail::PacketBlock* block = core_->free_head;
    if (block != nullptr) {
      core_->free_head = block->next_free;
    } else {
      // iwlint: allow(hot-path) -- pool-miss path: the free list serves every
      // steady-state acquire; growth stops at the scan's high-water mark
      block = new detail::PacketBlock;
      block->core = core_;
    }
    block->refs = 1;
    ++core_->outstanding;
    return PacketBuf{block};
  }

  /// Wrap an existing byte vector (compat path for callers that still
  /// build owned net::Bytes); its capacity joins the pool on release.
  [[nodiscard]] PacketBuf adopt(Bytes&& bytes) {
    PacketBuf buf = acquire();
    buf.bytes() = std::move(bytes);
    return buf;
  }

  /// Buffers currently held by handles (diagnostics/tests).
  [[nodiscard]] std::size_t outstanding() const noexcept {
    return core_->outstanding;
  }

 private:
  detail::PoolCore* core_;
};

}  // namespace iwscan::net
