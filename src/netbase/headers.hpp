// IPv4, TCP and ICMP header codecs (RFC 791, RFC 793, RFC 792).
//
// Encoding always computes correct lengths and checksums; decoding verifies
// them. Both sides of the simulation (scanner and host stacks) exchange real
// wire bytes, so a decoding bug here would break the scan exactly as it
// would on a physical network.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "netbase/ipv4.hpp"
#include "netbase/tcp_options.hpp"
#include "netbase/wire.hpp"

namespace iwscan::net {

inline constexpr std::uint8_t kProtocolIcmp = 1;
inline constexpr std::uint8_t kProtocolTcp = 6;

struct Ipv4Header {
  static constexpr std::size_t kSize = 20;  // options unsupported

  std::uint8_t tos = 0;
  std::uint16_t total_length = 0;  // filled by encode from payload size
  std::uint16_t identification = 0;
  bool dont_fragment = false;
  bool more_fragments = false;
  std::uint16_t fragment_offset = 0;  // in 8-byte units
  std::uint8_t ttl = 64;
  std::uint8_t protocol = kProtocolTcp;
  IPv4Address src;
  IPv4Address dst;

  /// Serialize with checksum; total_length must already be set.
  void encode(WireWriter& writer) const;

  /// Parse and verify version/IHL/checksum. Returns nullopt if invalid.
  [[nodiscard]] static std::optional<Ipv4Header> decode(WireReader& reader);
};

enum TcpFlag : std::uint8_t {
  kFin = 0x01,
  kSyn = 0x02,
  kRst = 0x04,
  kPsh = 0x08,
  kAck = 0x10,
  kUrg = 0x20,
};

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 0;
  std::uint16_t urgent = 0;
  std::vector<TcpOption> options;

  [[nodiscard]] bool has(TcpFlag flag) const noexcept { return (flags & flag) != 0; }
  [[nodiscard]] std::size_t encoded_size() const {
    return 20 + encoded_tcp_options_size(options);
  }

  /// Serialize with a zero checksum placeholder; the packet codec patches
  /// in the pseudo-header checksum afterwards.
  void encode(WireWriter& writer) const;

  /// Parse header + options; `data_offset_bytes` receives the IHL so the
  /// caller can slice the payload. Checksum verification happens at the
  /// packet layer where the pseudo-header addresses are known.
  [[nodiscard]] static std::optional<TcpHeader> decode(WireReader& reader,
                                                       std::size_t& data_offset_bytes);
};

enum class IcmpType : std::uint8_t {
  EchoReply = 0,
  DestinationUnreachable = 3,
  Echo = 8,
};

/// ICMP code for "fragmentation needed and DF set" (RFC 1191 PMTUD).
inline constexpr std::uint8_t kIcmpFragNeeded = 4;

struct IcmpMessage {
  IcmpType type = IcmpType::Echo;
  std::uint8_t code = 0;
  // Rest-of-header semantics depend on type: echo id/seq, or unused +
  // next-hop MTU for Fragmentation Needed.
  std::uint16_t id_or_unused = 0;
  std::uint16_t seq_or_mtu = 0;
  Bytes payload;

  void encode(WireWriter& writer) const;
  [[nodiscard]] static std::optional<IcmpMessage> decode(
      std::span<const std::uint8_t> data);
};

}  // namespace iwscan::net
