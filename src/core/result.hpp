// Result records for IW probing, at connection, probe and host granularity.
#pragma once

#include <cstdint>
#include <string_view>

#include "netbase/ipv4.hpp"
#include "netbase/wire.hpp"

namespace iwscan::core {

/// Outcome of a single estimation connection (Fig. 1 run).
enum class ConnOutcome {
  Unreachable,  // no SYN/ACK before timeout
  Refused,      // RST in answer to our SYN (port closed)
  Success,      // first-segment retransmission seen AND ACK release produced
                // new data → the sender was genuinely IW-limited
  FewData,      // response ended (FIN) or no data followed the ACK release:
                // the IW may not have been filled; only a lower bound holds
  NoData,       // handshake fine but zero payload bytes arrived
  Error,        // RST mid-exchange, malformed data, or timeout w/o retransmit
};

[[nodiscard]] constexpr std::string_view to_string(ConnOutcome outcome) noexcept {
  switch (outcome) {
    case ConnOutcome::Unreachable: return "unreachable";
    case ConnOutcome::Refused: return "refused";
    case ConnOutcome::Success: return "success";
    case ConnOutcome::FewData: return "few-data";
    case ConnOutcome::NoData: return "no-data";
    case ConnOutcome::Error: return "error";
  }
  return "?";
}

/// Hostile-stack taxonomy (§5 anomalous stacks; DESIGN.md §11). A probe
/// that trips one of these is still classified into a ConnOutcome — the
/// anomaly records *why* the exchange degenerated so reports can count
/// pathologies per class instead of folding them into Timeout/Few-Data.
enum class ProbeAnomaly : std::uint8_t {
  None,
  Tarpit,               // SYN/ACK then total silence; request never ACKed
  ZeroWindow,           // request ACKed but receive window pinned at zero
  MssViolation,         // segment larger than the announced MSS
  NoRetransmit,         // data but no RTO retransmission of the first segment
  MidStreamRst,         // RST after data had started flowing
  RedirectLoop,         // 301 chain exceeded the hop budget / revisited a URL
  Slowloris,            // bytes tricking in with long gaps between segments
  EarlyFin,             // FIN before any payload byte
  TlsFatalAlert,        // TLS fatal alert instead of a ServerHello
  ShrinkingRetransmit,  // partially-overlapping / shrinking retransmissions
  BudgetExceeded,       // engine killed the session (wall/bytes/segments)
  PacedDelivery,        // first flight trickled across the RTO window (CDN
                        // pacing): the burst count is a lower bound only
};

[[nodiscard]] constexpr std::string_view to_string(ProbeAnomaly anomaly) noexcept {
  switch (anomaly) {
    case ProbeAnomaly::None: return "none";
    case ProbeAnomaly::Tarpit: return "tarpit";
    case ProbeAnomaly::ZeroWindow: return "zero-window";
    case ProbeAnomaly::MssViolation: return "mss-violation";
    case ProbeAnomaly::NoRetransmit: return "no-retransmit";
    case ProbeAnomaly::MidStreamRst: return "mid-stream-rst";
    case ProbeAnomaly::RedirectLoop: return "redirect-loop";
    case ProbeAnomaly::Slowloris: return "slowloris";
    case ProbeAnomaly::EarlyFin: return "early-fin";
    case ProbeAnomaly::TlsFatalAlert: return "tls-fatal-alert";
    case ProbeAnomaly::ShrinkingRetransmit: return "shrinking-retransmit";
    case ProbeAnomaly::BudgetExceeded: return "budget-exceeded";
    case ProbeAnomaly::PacedDelivery: return "paced-delivery";
  }
  return "?";
}

/// Everything one estimation connection observed.
struct ConnObservation {
  ConnOutcome outcome = ConnOutcome::Unreachable;
  std::uint32_t segments = 0;      // distinct data segments before retransmit
  std::uint64_t span_bytes = 0;    // highest received seq − first data seq
  std::uint16_t max_segment = 0;   // observed maximum segment size (§3.1)
  std::uint32_t iw_estimate = 0;   // segments, span/max_segment rounded
  bool fin_seen = false;
  bool reorder_seen = false;
  bool loss_holes = false;         // unfilled sequence holes at conclusion
  bool verify_new_data = false;    // data released by the 2·MSS-window ACK
  ProbeAnomaly anomaly = ProbeAnomaly::None;
  bool zero_window_seen = false;   // any segment advertised window 0
  bool mss_violation = false;      // any payload exceeded the announced MSS
  bool overlap_seen = false;       // partially-overlapping retransmission
  net::Bytes prefix;               // in-order payload prefix (capped)
};

/// Final per-host classification, matching the paper's Table 1 buckets.
enum class HostOutcome {
  Unreachable,  // excluded from the "reachable" denominators
  Success,
  FewData,
  Error,
};

[[nodiscard]] constexpr std::string_view to_string(HostOutcome outcome) noexcept {
  switch (outcome) {
    case HostOutcome::Unreachable: return "unreachable";
    case HostOutcome::Success: return "success";
    case HostOutcome::FewData: return "few-data";
    case HostOutcome::Error: return "error";
  }
  return "?";
}

struct HostScanRecord {
  net::IPv4Address ip;
  HostOutcome outcome = HostOutcome::Unreachable;

  // Success fields (primary announced MSS, normally 64 B).
  std::uint32_t iw_segments = 0;
  std::uint64_t iw_bytes = 0;
  std::uint16_t observed_mss = 0;

  // FewData lower bound in segments; 0 means no data at all (Table 2
  // "NoData" column).
  std::uint32_t lower_bound = 0;

  // Secondary-MSS success values (0 if not measured / not successful);
  // used for the §4.2 byte-limit analysis.
  std::uint32_t iw_segments_b = 0;
  std::uint64_t iw_bytes_b = 0;
  std::uint16_t observed_mss_b = 0;

  bool fin_seen = false;
  bool reorder_seen = false;
  bool loss_suspected = false;
  ProbeAnomaly anomaly = ProbeAnomaly::None;
  std::uint8_t probes_run = 0;
  std::uint8_t connections_used = 0;

  /// Field-wise equality — the byte-identity contract of sharded scans
  /// (exec::ParallelScanRunner) is pinned against this.
  [[nodiscard]] friend bool operator==(const HostScanRecord&,
                                       const HostScanRecord&) = default;

  [[nodiscard]] bool success() const noexcept {
    return outcome == HostOutcome::Success;
  }
  /// §4.2 classification: a host whose IW is a byte budget sends half the
  /// segments when the announced MSS doubles (same byte total).
  [[nodiscard]] bool byte_limited() const noexcept {
    return iw_segments_b != 0 && iw_segments != 0 &&
           iw_segments != iw_segments_b && iw_bytes == iw_bytes_b;
  }
};

}  // namespace iwscan::core
