#include "core/probe_strategy.hpp"

#include "tls/handshake.hpp"
#include "tls/records.hpp"
#include "util/rng.hpp"

namespace iwscan::core {
namespace {

class TlsStrategy final : public ProbeStrategy {
 public:
  explicit TlsStrategy(TlsStrategyConfig config) : config_(config) {}

  net::Bytes request() override {
    tls::ClientHello hello;
    hello.version = tls::kTls12;
    util::Rng rng(util::mix64(config_.seed, 0x7175c11e));
    for (auto& byte : hello.random) byte = static_cast<std::uint8_t>(rng());
    const auto probe_list = tls::probe_cipher_list();
    hello.cipher_suites.assign(probe_list.begin(), probe_list.end());
    // No SNI by default: the scan enumerates IPs without forward-DNS
    // knowledge (§4, "missing Server Name Indication" explains part of the
    // few-data TLS hosts). Curated-SNI mode names a known vhost instead —
    // the only way to measure per-vhost IW tiers on multi-tenant edges.
    // OCSP stapling is requested to coax even more first-flight bytes out
    // of the server (§3.3).
    if (config_.server_name.empty()) {
      hello.server_name.reset();
    } else {
      hello.server_name = config_.server_name;
    }
    hello.ocsp_stapling = config_.offer_ocsp_stapling;

    const net::Bytes body = hello.encode();
    const net::Bytes message =
        tls::encode_handshake(tls::HandshakeType::ClientHello, body);
    net::Bytes wire;
    tls::encode_fragmented(tls::ContentType::Handshake, tls::kTls10, message, wire);
    return wire;
  }

  bool wants_followup(const ConnObservation&) override {
    // §3.3: no retry logic — the certificate chain either fills the IW or
    // it does not; the length fields are deliberately not inspected.
    return false;
  }

  std::string_view name() const override { return "tls"; }

 private:
  TlsStrategyConfig config_;
};

}  // namespace

std::unique_ptr<ProbeStrategy> make_tls_strategy(TlsStrategyConfig config) {
  return std::make_unique<TlsStrategy>(config);
}

}  // namespace iwscan::core
