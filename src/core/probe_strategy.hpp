// Application-layer probe strategies: how to trigger a large-enough
// response from an unknown host (§3.2 HTTP, §3.3 TLS).
//
// One strategy instance drives one probe attempt, which may span multiple
// connections (HTTP follows a 301 redirect on a fresh connection, then
// falls back to a bloated URI that enlarges echoing 404 pages).
#pragma once

#include <memory>
#include <string>

#include "core/result.hpp"

namespace iwscan::core {

class ProbeStrategy {
 public:
  virtual ~ProbeStrategy() = default;

  /// Request payload for the next connection of this probe attempt.
  [[nodiscard]] virtual net::Bytes request() = 0;

  /// Inspect a concluded connection. Returns true if the strategy wants a
  /// follow-up connection (it has updated its internal state so the next
  /// request() reflects the new plan).
  [[nodiscard]] virtual bool wants_followup(const ConnObservation& observation) = 0;

  /// Application-layer pathology observed across this attempt's
  /// connections (e.g. a 301 redirect loop) — evidence the wire-level
  /// estimator cannot see. None unless the strategy detected one.
  [[nodiscard]] virtual ProbeAnomaly anomaly() const { return ProbeAnomaly::None; }

  [[nodiscard]] virtual std::string_view name() const = 0;
};

struct HttpStrategyConfig {
  std::string user_agent = "iwscan/1.0 (+https://iw.example.net/research)";
  /// Long-URI length: fills the connection's MTU so the echoed 404 body is
  /// as large as possible (§3.2 — "more bytes than we announced ... in the
  /// MSS").
  std::size_t long_uri_length = 1300;
  int max_connections = 2;
  /// Redirect-hop budget (§3.2 follows exactly one). Raising it lets the
  /// strategy walk longer chains; the visited-URL set still cuts loops.
  int max_redirect_hops = 1;
};

/// HTTP probe: GET / with the IP as Host → follow 301 → long-URI fallback.
[[nodiscard]] std::unique_ptr<ProbeStrategy> make_http_strategy(
    net::IPv4Address target, HttpStrategyConfig config);

struct TlsStrategyConfig {
  bool offer_ocsp_stapling = true;  // §3.3: "extensions for requesting OCSP"
  std::uint64_t seed = 0;           // ClientHello random
  // Curated-SNI mode (the TLS analogue of the §5 URL lists): when
  // non-empty, the ClientHello carries this server_name. Required to reach
  // per-vhost IW configs on multi-tenant CDN edges; the default (no SNI)
  // measures the IP-as-Host window.
  std::string server_name;
};

/// TLS probe: ClientHello with the 40-cipher browser-union list; the
/// certificate chain in the reply is the data source. Single connection.
[[nodiscard]] std::unique_ptr<ProbeStrategy> make_tls_strategy(TlsStrategyConfig config);

/// Curated-URL probe (the future work of §5): with prior knowledge of a
/// valid host name + path (à la Padhye/Floyd and Medina et al. URL lists),
/// request that resource directly — the only way to assess virtualized
/// per-customer services like Akamai's (§4.3). Single connection.
[[nodiscard]] std::unique_ptr<ProbeStrategy> make_url_list_strategy(
    std::string host_header, std::string path);

}  // namespace iwscan::core
