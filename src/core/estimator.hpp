// The initial-window estimator: one TCP connection implementing Figure 1 of
// the paper.
//
//   1. SYN with a small announced MSS and a large receive window (so the
//      sender is limited only by its IW, never by flow control).
//   2. ACK + request in one segment, triggering a response.
//   3. Collect data *without acknowledging*, tracking sequence ranges to
//      detect reordering and loss; a segment whose range was already fully
//      received at the start of the stream is the sender's RTO
//      retransmission → the IW burst is complete.
//   4. Verification: acknowledge everything with a window of only
//      2·MSS. New data ⇒ the sender was IW-limited (Success). A FIN or
//      silence ⇒ the sender simply ran out of data (FewData): only a lower
//      bound on the IW is known.
//
// SACK is deliberately never offered, which disables tail-loss probes that
// would otherwise skew the estimate (§3.1).
#pragma once

#include <functional>
#include <map>

#include "core/result.hpp"
#include "netsim/event_loop.hpp"
#include "scanner/scan_engine.hpp"

namespace iwscan::core {

struct EstimatorConfig {
  std::uint16_t announced_mss = 64;
  std::uint16_t window = 65535;              // large handshake receive window
  std::uint16_t verify_window_segments = 2;  // §3.1: "only two segments"
  sim::SimTime syn_timeout = sim::sec(3);
  sim::SimTime collect_timeout = sim::sec(12);
  sim::SimTime verify_timeout = sim::sec(3);
  std::size_t prefix_cap = 16 * 1024;  // in-order payload kept for analysis

  // Pacing evidence (ProbeAnomaly::PacedDelivery): the first flight counts
  // as paced — not a burst — when the span from first to last fresh data
  // byte covers at least this percentage of the first-data → retransmission
  // window, over at least `paced_min_arrivals` distinct arrival instants.
  // A genuine burst spans only the path jitter (≪ the RTO window); a CDN
  // pacer spreads its flight over RTT multiples, far past this threshold.
  std::uint32_t paced_window_percent = 8;
  std::uint32_t paced_min_arrivals = 3;
};

class IwEstimator {
 public:
  /// `done` fires exactly once; it may tear the estimator down only
  /// indirectly (schedule, don't destroy — the estimator is still on the
  /// call stack).
  using DoneFn = std::function<void(const ConnObservation&)>;

  IwEstimator(scan::SessionServices& services, net::IPv4Address target,
              std::uint16_t target_port, EstimatorConfig config, net::Bytes request,
              DoneFn done);
  ~IwEstimator();

  IwEstimator(const IwEstimator&) = delete;
  IwEstimator& operator=(const IwEstimator&) = delete;

  void start();
  void on_datagram(const net::Datagram& datagram);

  [[nodiscard]] bool finished() const noexcept { return phase_ == Phase::Done; }
  [[nodiscard]] std::uint16_t local_port() const noexcept { return local_port_; }

 private:
  enum class Phase { Idle, SynSent, Collect, Verify, Done };

  void on_syn_ack(const net::TcpSegment& segment);
  void on_collect_data(const net::TcpSegment& segment);
  void on_verify_data(const net::TcpSegment& segment);
  void record_range(std::uint64_t start, std::uint64_t end,
                    std::span<const std::uint8_t> payload);
  [[nodiscard]] bool covered(std::uint64_t start, std::uint64_t end) const noexcept;
  [[nodiscard]] bool overlaps(std::uint64_t start, std::uint64_t end) const noexcept;
  void note_payload(std::size_t payload_size);
  [[nodiscard]] bool contiguous_from_zero(std::uint64_t upto) const noexcept;
  void enter_verify();
  void conclude(ConnOutcome outcome);
  void send_segment(std::uint32_t seq, std::uint32_t ack, std::uint8_t flags,
                    std::uint16_t window, std::span<const std::uint8_t> payload,
                    bool with_mss_option);
  void arm_timer(sim::SimTime delay, void (IwEstimator::*handler)());
  void on_syn_timeout();
  void on_collect_timeout();
  void on_verify_timeout();

  scan::SessionServices& services_;
  net::IPv4Address target_;
  std::uint16_t target_port_;
  EstimatorConfig config_;
  net::Bytes request_;
  DoneFn done_;

  Phase phase_ = Phase::Idle;
  std::uint16_t local_port_ = 0;
  std::uint32_t isn_ = 0;       // our initial sequence number
  std::uint32_t irs_ = 0;       // server initial sequence number
  std::uint32_t data_base_ = 0; // irs_ + 1: sequence of the first data byte

  // Received sequence ranges relative to data_base_, coalesced.
  std::map<std::uint64_t, std::uint64_t> ranges_;  // start → end (exclusive)
  std::map<std::uint64_t, net::Bytes> chunks_;     // for prefix reassembly
  std::uint64_t max_end_ = 0;
  std::uint64_t prefix_bytes_stored_ = 0;

  // Hostile-stack evidence (§5 / DESIGN.md §11). `request_acked_`
  // distinguishes a tarpit (SYN/ACK, then deaf) from a host that accepted
  // the request but had nothing to say; the trickle counter separates a
  // slowloris byte-dripper from a sender whose retransmissions were lost.
  bool request_acked_ = false;
  std::uint32_t trickle_gaps_ = 0;
  sim::SimTime last_data_at_ = sim::SimTime::min();

  // Pacing evidence: arrival instants of the first and last fresh data
  // byte, and how many distinct instants delivered fresh data. Evaluated
  // against the RTO window when the retransmission closes the collect
  // phase (enter_verify).
  sim::SimTime first_data_at_ = sim::SimTime::min();
  std::uint32_t fresh_arrival_instants_ = 0;

  ConnObservation observation_;
  sim::EventId timer_ = sim::kNullEvent;
};

}  // namespace iwscan::core
