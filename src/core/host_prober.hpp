// Per-host probe orchestration (§4 "Scan setup"):
//
//   * each host is probed three times per announced MSS, to detect tail
//     loss: the host counts as Success only if at least two probes agree
//     AND the agreed value is the maximum of all probes;
//   * the whole sequence runs twice, with MSS 64 and MSS 128, back-to-back
//     ("all six probes are sent after each other"), so byte-counted IWs
//     (§4.2) can be told apart from segment-counted ones;
//   * each probe may span several connections (HTTP redirect / long-URI
//     escalation, §3.2).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/estimator.hpp"
#include "core/probe_strategy.hpp"
#include "core/result.hpp"
#include "scanner/scan_engine.hpp"

namespace iwscan::core {

enum class ProbeProtocol { Http, Tls };

struct IwScanConfig {
  ProbeProtocol protocol = ProbeProtocol::Http;
  std::uint16_t port = 80;
  std::uint16_t mss_primary = 64;
  std::uint16_t mss_secondary = 128;  // 0 disables the dual-MSS pass
  int probes_per_mss = 3;
  EstimatorConfig estimator;  // announced_mss is overridden per pass
  sim::SimTime inter_connection_delay = sim::msec(20);
  HttpStrategyConfig http;
  bool tls_offer_ocsp = true;
  // Curated-URL mode (§5 future work): when curated_host is non-empty, HTTP
  // probes request curated_path with this Host header instead of running the
  // generic no-prior-knowledge strategy — required for virtualized services.
  std::string curated_host;
  std::string curated_path = "/";
};

class HostProber final : public scan::ProbeSession {
 public:
  using RecordFn = std::function<void(const HostScanRecord&)>;

  HostProber(scan::SessionServices& services, net::IPv4Address target,
             const IwScanConfig& config, RecordFn on_record,
             std::function<void()> finish);
  ~HostProber() override;

  void start() override;
  void on_datagram(const net::Datagram& datagram) override;
  void on_budget_exhausted(scan::BudgetKind kind) override;

 private:
  // Per-probe merged view over its connections.
  struct ProbeResult {
    ConnOutcome outcome = ConnOutcome::Error;
    std::uint32_t iw_estimate = 0;
    std::uint64_t span_bytes = 0;
    std::uint16_t max_segment = 0;
    std::uint32_t lower_bound = 0;
    bool fin_seen = false;
    bool reorder_seen = false;
    bool loss_holes = false;
  };
  // Aggregate over the 3 probes of one MSS pass.
  struct PassResult {
    HostOutcome outcome = HostOutcome::Error;
    std::uint32_t iw_segments = 0;
    std::uint64_t iw_bytes = 0;
    std::uint16_t observed_mss = 0;
    std::uint32_t lower_bound = 0;
    bool fin_seen = false;
    bool reorder_seen = false;
    bool loss_suspected = false;
  };

  void begin_probe();
  void begin_connection();
  void on_connection_done(const ConnObservation& observation);
  void finish_probe();
  [[nodiscard]] PassResult aggregate_pass(const std::vector<ProbeResult>& probes) const;
  void finish_host();
  [[nodiscard]] std::uint16_t current_mss() const noexcept {
    return pass_ == 0 ? config_.mss_primary : config_.mss_secondary;
  }
  [[nodiscard]] std::unique_ptr<ProbeStrategy> make_strategy();

  scan::SessionServices& services_;
  net::IPv4Address target_;
  IwScanConfig config_;
  RecordFn on_record_;
  std::function<void()> finish_;

  int pass_ = 0;   // 0 = primary MSS, 1 = secondary
  int probe_ = 0;  // within the pass
  std::vector<ProbeResult> pass_probes_[2];
  ProbeResult current_probe_;
  bool current_probe_has_conn_ = false;
  std::uint8_t connections_used_ = 0;
  bool first_connection_ = true;
  bool finished_ = false;
  // First anomaly observed across all connections of this host (wire-level
  // from the estimator, or application-level from the strategy).
  ProbeAnomaly anomaly_ = ProbeAnomaly::None;

  std::unique_ptr<ProbeStrategy> strategy_;
  std::unique_ptr<IwEstimator> estimator_;
  std::vector<std::unique_ptr<IwEstimator>> old_estimators_;
  sim::EventId continuation_ = sim::kNullEvent;
};

/// ProbeModule adapter so HostProber plugs into the ScanEngine.
class IwProbeModule final : public scan::ProbeModule {
 public:
  IwProbeModule(IwScanConfig config, HostProber::RecordFn on_record)
      : config_(std::move(config)), on_record_(std::move(on_record)) {}

  std::unique_ptr<scan::ProbeSession> create_session(
      scan::SessionServices& services, net::IPv4Address target,
      std::function<void()> finish) override;

  [[nodiscard]] const IwScanConfig& config() const noexcept { return config_; }

 private:
  IwScanConfig config_;
  HostProber::RecordFn on_record_;
};

}  // namespace iwscan::core
