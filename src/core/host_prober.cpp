#include "core/host_prober.hpp"

#include <algorithm>
#include <map>

namespace iwscan::core {

HostProber::HostProber(scan::SessionServices& services, net::IPv4Address target,
                       const IwScanConfig& config, RecordFn on_record,
                       std::function<void()> finish)
    : services_(services),
      target_(target),
      config_(config),
      on_record_(std::move(on_record)),
      finish_(std::move(finish)) {}

HostProber::~HostProber() { services_.loop().cancel(continuation_); }

void HostProber::start() { begin_probe(); }

void HostProber::on_datagram(const net::Datagram& datagram) {
  if (finished_ || !estimator_) return;
  estimator_->on_datagram(datagram);
}

std::unique_ptr<ProbeStrategy> HostProber::make_strategy() {
  if (config_.protocol == ProbeProtocol::Http) {
    if (!config_.curated_host.empty()) {
      return make_url_list_strategy(config_.curated_host, config_.curated_path);
    }
    return make_http_strategy(target_, config_.http);
  }
  TlsStrategyConfig tls;
  tls.offer_ocsp_stapling = config_.tls_offer_ocsp;
  tls.seed = services_.session_seed(target_);
  // Curated mode carries over to TLS as a curated SNI: with prior knowledge
  // of the vhost name, the probe measures the named service's IW instead of
  // the IP-as-Host default.
  tls.server_name = config_.curated_host;
  return make_tls_strategy(tls);
}

void HostProber::begin_probe() {
  strategy_ = make_strategy();
  current_probe_ = ProbeResult{};
  current_probe_has_conn_ = false;
  begin_connection();
}

void HostProber::begin_connection() {
  EstimatorConfig estimator_config = config_.estimator;
  estimator_config.announced_mss = current_mss();

  // Retire (don't destroy) the previous estimator: conclusion callbacks may
  // still be on the stack below us.
  if (estimator_) old_estimators_.push_back(std::move(estimator_));

  estimator_ = std::make_unique<IwEstimator>(
      services_, target_, config_.port, estimator_config, strategy_->request(),
      [this](const ConnObservation& observation) { on_connection_done(observation); });
  ++connections_used_;
  estimator_->start();
}

void HostProber::on_connection_done(const ConnObservation& observation) {
  if (finished_) return;

  // A dead port / dead host on the very first contact: the host is not
  // reachable at all and is excluded from the scan denominators (Table 1
  // counts only hosts where "data exchange is possible").
  if (first_connection_ && (observation.outcome == ConnOutcome::Unreachable ||
                            observation.outcome == ConnOutcome::Refused)) {
    HostScanRecord record;
    record.ip = target_;
    record.outcome = HostOutcome::Unreachable;
    record.probes_run = 1;
    record.connections_used = connections_used_;
    finished_ = true;
    if (on_record_) on_record_(record);
    finish_();
    return;
  }
  first_connection_ = false;

  if (anomaly_ == ProbeAnomaly::None) {
    anomaly_ = observation.anomaly;
    if (anomaly_ == ProbeAnomaly::None && config_.protocol == ProbeProtocol::Tls &&
        !observation.prefix.empty() && observation.prefix[0] == 0x15) {
      // The reply opened with a TLS alert record instead of a ServerHello:
      // the handshake was refused at the TLS layer (§3.3 SNI-required
      // hosts and hostile mid-handshake aborts alike).
      anomaly_ = ProbeAnomaly::TlsFatalAlert;
    }
  }

  // Merge this connection into the probe result: Success dominates; among
  // non-success connections keep the largest lower bound.
  const auto better = [](ConnOutcome a, ConnOutcome b) {
    const auto rank = [](ConnOutcome o) {
      switch (o) {
        case ConnOutcome::Success: return 5;
        case ConnOutcome::FewData: return 4;
        case ConnOutcome::NoData: return 3;
        case ConnOutcome::Error: return 2;
        case ConnOutcome::Refused: return 1;
        case ConnOutcome::Unreachable: return 0;
      }
      return 0;
    };
    return rank(a) > rank(b);
  };

  const bool take = !current_probe_has_conn_ ||
                    better(observation.outcome, current_probe_.outcome) ||
                    (observation.outcome == current_probe_.outcome &&
                     observation.iw_estimate > current_probe_.iw_estimate);
  if (take) {
    current_probe_.outcome = observation.outcome;
    current_probe_.iw_estimate = observation.iw_estimate;
    current_probe_.span_bytes = observation.span_bytes;
    current_probe_.max_segment = observation.max_segment;
    current_probe_.lower_bound =
        observation.outcome == ConnOutcome::FewData ? observation.iw_estimate : 0;
  }
  current_probe_.fin_seen |= observation.fin_seen;
  current_probe_.reorder_seen |= observation.reorder_seen;
  current_probe_.loss_holes |= observation.loss_holes;
  current_probe_has_conn_ = true;

  const bool followup = strategy_->wants_followup(observation);
  if (anomaly_ == ProbeAnomaly::None) anomaly_ = strategy_->anomaly();
  services_.loop().cancel(continuation_);
  continuation_ = services_.loop().schedule(config_.inter_connection_delay, [this, followup] {
    continuation_ = sim::kNullEvent;
    if (followup) {
      begin_connection();
    } else {
      finish_probe();
    }
  });
}

void HostProber::finish_probe() {
  pass_probes_[pass_].push_back(current_probe_);
  old_estimators_.clear();

  ++probe_;
  if (probe_ < config_.probes_per_mss) {
    begin_probe();
    return;
  }
  // Pass complete; move to the secondary MSS or finish.
  probe_ = 0;
  if (pass_ == 0 && config_.mss_secondary != 0) {
    pass_ = 1;
    begin_probe();
    return;
  }
  finish_host();
}

HostProber::PassResult HostProber::aggregate_pass(
    const std::vector<ProbeResult>& probes) const {
  PassResult pass;
  for (const auto& probe : probes) {
    pass.fin_seen |= probe.fin_seen;
    pass.reorder_seen |= probe.reorder_seen;
    pass.loss_suspected |= probe.loss_holes;
  }

  // Success rule (§4): ≥2 of 3 probes agree and the agreed value is the
  // maximum of all successful probes (tail loss only ever lowers values).
  std::map<std::uint32_t, int> votes;
  std::uint32_t max_estimate = 0;
  for (const auto& probe : probes) {
    if (probe.outcome == ConnOutcome::Success) {
      ++votes[probe.iw_estimate];
      max_estimate = std::max(max_estimate, probe.iw_estimate);
    }
  }
  const int needed = std::min<int>(2, static_cast<int>(probes.size()));
  if (const auto it = votes.find(max_estimate);
      max_estimate != 0 && it != votes.end() && it->second >= needed) {
    pass.outcome = HostOutcome::Success;
    pass.iw_segments = max_estimate;
    for (const auto& probe : probes) {
      if (probe.outcome == ConnOutcome::Success && probe.iw_estimate == max_estimate) {
        pass.iw_bytes = probe.span_bytes;
        pass.observed_mss = probe.max_segment;
        break;
      }
    }
    return pass;
  }
  if (!votes.empty()) {
    // Successes exist but disagree on the maximum: unstable estimate.
    pass.outcome = HostOutcome::Error;
    return pass;
  }

  bool any_data = false;
  bool any_reply = false;
  for (const auto& probe : probes) {
    if (probe.outcome == ConnOutcome::FewData) {
      any_data = true;
      pass.lower_bound = std::max(pass.lower_bound, probe.lower_bound);
      for (const auto& p2 : probes) {
        pass.observed_mss = std::max(pass.observed_mss, p2.max_segment);
      }
    }
    if (probe.outcome == ConnOutcome::NoData) any_reply = true;
  }
  if (any_data) {
    pass.outcome = HostOutcome::FewData;
  } else if (any_reply) {
    pass.outcome = HostOutcome::FewData;  // lower_bound 0 == Table 2 "NoData"
    pass.lower_bound = 0;
  } else {
    pass.outcome = HostOutcome::Error;
  }
  return pass;
}

void HostProber::finish_host() {
  const PassResult primary = aggregate_pass(pass_probes_[0]);
  HostScanRecord record;
  record.ip = target_;
  record.outcome = primary.outcome;
  record.iw_segments = primary.iw_segments;
  record.iw_bytes = primary.iw_bytes;
  record.observed_mss = primary.observed_mss;
  record.lower_bound = primary.lower_bound;
  record.fin_seen = primary.fin_seen;
  record.reorder_seen = primary.reorder_seen;
  record.loss_suspected = primary.loss_suspected;
  record.anomaly = anomaly_;
  record.probes_run = static_cast<std::uint8_t>(pass_probes_[0].size() +
                                                pass_probes_[1].size());
  record.connections_used = connections_used_;

  if (!pass_probes_[1].empty()) {
    const PassResult secondary = aggregate_pass(pass_probes_[1]);
    if (secondary.outcome == HostOutcome::Success) {
      record.iw_segments_b = secondary.iw_segments;
      record.iw_bytes_b = secondary.iw_bytes;
      record.observed_mss_b = secondary.observed_mss;
    }
  }

  finished_ = true;
  if (on_record_) on_record_(record);
  finish_();
}

void HostProber::on_budget_exhausted(scan::BudgetKind kind) {
  if (finished_) return;
  // The engine is cutting us off: emit what we know. A wire-level anomaly
  // already identified (e.g. Slowloris evidence from an earlier probe)
  // names the pathology better than the generic budget bucket.
  HostScanRecord record;
  record.ip = target_;
  record.outcome = HostOutcome::Error;
  record.anomaly =
      anomaly_ != ProbeAnomaly::None ? anomaly_ : ProbeAnomaly::BudgetExceeded;
  record.probes_run = static_cast<std::uint8_t>(pass_probes_[0].size() +
                                                pass_probes_[1].size());
  record.connections_used = connections_used_;
  (void)kind;
  finished_ = true;
  services_.loop().cancel(continuation_);
  continuation_ = sim::kNullEvent;
  if (on_record_) on_record_(record);
  finish_();
}

std::unique_ptr<scan::ProbeSession> IwProbeModule::create_session(
    scan::SessionServices& services, net::IPv4Address target,
    std::function<void()> finish) {
  return std::make_unique<HostProber>(services, target, config_, on_record_,
                                      std::move(finish));
}

}  // namespace iwscan::core
