#include "core/probe_strategy.hpp"

#include <unordered_set>

#include "httpd/http_message.hpp"
#include "util/bytes.hpp"
#include "util/strings.hpp"

namespace iwscan::core {
namespace {

class HttpStrategy final : public ProbeStrategy {
 public:
  HttpStrategy(net::IPv4Address target, HttpStrategyConfig config)
      : config_(std::move(config)), host_(target.to_string()), path_("/") {
    visited_.insert(host_ + path_);
  }

  net::Bytes request() override {
    ++connections_;
    std::string req = "GET " + path_ + " HTTP/1.1\r\n";
    req += "Host: " + host_ + "\r\n";
    req += "User-Agent: " + config_.user_agent + "\r\n";
    req += "Accept: */*\r\n";
    // Connection: close makes the server FIN once the response is done —
    // the signal that the IW was *not* filled (§3.2).
    req += "Connection: close\r\n\r\n";
    return net::to_bytes(req);
  }

  bool wants_followup(const ConnObservation& observation) override {
    if (connections_ >= config_.max_connections) return false;
    if (observation.outcome == ConnOutcome::Success) return false;
    if (observation.outcome != ConnOutcome::FewData) return false;
    if (observation.prefix.empty()) return false;

    const auto head = http::parse_response_head(util::as_text(observation.prefix));
    if (!head) return false;

    if (head->status == 301 || head->status == 302 || head->status == 307 ||
        head->status == 308) {
      const auto location = head->header("Location");
      if (location) {
        const auto parts = http::parse_location(*location);
        if (parts) {
          const std::string next_host = parts->host.empty() ? host_ : parts->host;
          const std::string next_path = parts->path.empty() ? "/" : parts->path;
          if (visited_.contains(next_host + next_path)) {
            // The chain revisits a URL it already served: an infinite
            // redirect loop. Stop here — following it again can only burn
            // the connection budget.
            anomaly_ = ProbeAnomaly::RedirectLoop;
            return false;
          }
          if (redirect_hops_ >= config_.max_redirect_hops) {
            if (redirect_hops_ >= 2) {
              // A chain still redirecting after several hops is
              // indistinguishable from a loop at our budget.
              anomaly_ = ProbeAnomaly::RedirectLoop;
            }
            return false;
          }
          // A valid URI (and possibly a common name for the Host header)
          // extracted from the error response (§3.2).
          ++redirect_hops_;
          host_ = next_host;
          path_ = next_path;
          visited_.insert(host_ + path_);
          return true;
        }
      }
    }

    if (!tried_long_uri_) {
      // Bloat the error page: many servers echo the unknown URI in their
      // 404 body, so a long URI inflates the response (§3.2). The URI
      // states the nature of the scan, as the paper's does.
      tried_long_uri_ = true;
      std::string uri = "/this-is-a-tcp-initial-window-measurement-see-"
                        "iw.example.net-for-details-";
      if (uri.size() < config_.long_uri_length) {
        uri.append(config_.long_uri_length - uri.size(), 'x');
      }
      path_ = std::move(uri);
      return true;
    }
    return false;
  }

  ProbeAnomaly anomaly() const override { return anomaly_; }

  std::string_view name() const override { return "http"; }

 private:
  HttpStrategyConfig config_;
  std::string host_;
  std::string path_;
  int connections_ = 0;
  int redirect_hops_ = 0;
  std::unordered_set<std::string> visited_;
  ProbeAnomaly anomaly_ = ProbeAnomaly::None;
  bool tried_long_uri_ = false;
};

class UrlListStrategy final : public ProbeStrategy {
 public:
  UrlListStrategy(std::string host_header, std::string path)
      : host_(std::move(host_header)), path_(std::move(path)) {}

  net::Bytes request() override {
    std::string req = "GET " + path_ + " HTTP/1.1\r\n";
    req += "Host: " + host_ + "\r\n";
    req += "User-Agent: iwscan/1.0 (curated-url mode)\r\n";
    req += "Accept: */*\r\n";
    req += "Connection: close\r\n\r\n";
    return net::to_bytes(req);
  }

  bool wants_followup(const ConnObservation&) override {
    // The URL is already known-good; there is nothing to escalate to.
    return false;
  }

  std::string_view name() const override { return "url-list"; }

 private:
  std::string host_;
  std::string path_;
};

}  // namespace

std::unique_ptr<ProbeStrategy> make_http_strategy(net::IPv4Address target,
                                                  HttpStrategyConfig config) {
  return std::make_unique<HttpStrategy>(target, std::move(config));
}

std::unique_ptr<ProbeStrategy> make_url_list_strategy(std::string host_header,
                                                      std::string path) {
  return std::make_unique<UrlListStrategy>(std::move(host_header), std::move(path));
}

}  // namespace iwscan::core
