#include "core/estimator.hpp"

#include <algorithm>

#include "netbase/tcp_options.hpp"
#include "tcpstack/seq.hpp"

namespace iwscan::core {

IwEstimator::IwEstimator(scan::SessionServices& services, net::IPv4Address target,
                         std::uint16_t target_port, EstimatorConfig config,
                         net::Bytes request, DoneFn done)
    : services_(services),
      target_(target),
      target_port_(target_port),
      config_(config),
      request_(std::move(request)),
      done_(std::move(done)) {}

IwEstimator::~IwEstimator() { services_.loop().cancel(timer_); }

void IwEstimator::start() {
  local_port_ = services_.allocate_port(target_);
  isn_ = static_cast<std::uint32_t>(services_.session_seed(target_));
  phase_ = Phase::SynSent;
  // SYN announcing the small MSS and a large window; SACK deliberately
  // absent (§3.1 — suppresses tail loss probes).
  send_segment(isn_, 0, net::kSyn, config_.window, {}, /*with_mss_option=*/true);
  arm_timer(config_.syn_timeout, &IwEstimator::on_syn_timeout);
}

void IwEstimator::on_datagram(const net::Datagram& datagram) {
  if (phase_ == Phase::Done || phase_ == Phase::Idle) return;
  const auto* segment = std::get_if<net::TcpSegment>(&datagram);
  if (segment == nullptr) return;
  if (segment->tcp.dst_port != local_port_ || segment->tcp.src_port != target_port_) {
    return;  // belongs to another connection of this host session
  }

  if (segment->tcp.has(net::kRst)) {
    if (phase_ != Phase::SynSent && max_end_ > 0) {
      // The response had started flowing; a reset now is an injected abort
      // (middlebox or hostile daemon), not a closed port.
      observation_.anomaly = ProbeAnomaly::MidStreamRst;
    }
    conclude(phase_ == Phase::SynSent ? ConnOutcome::Refused : ConnOutcome::Error);
    return;
  }

  if (segment->tcp.has(net::kAck)) {
    const std::uint64_t acked = tcp::seq_diff(segment->tcp.ack, isn_ + 1);
    if (!request_.empty() && acked <= (std::uint64_t{1} << 31) &&
        acked >= request_.size()) {
      request_acked_ = true;  // the peer consumed our request
    }
    if (segment->tcp.window == 0) observation_.zero_window_seen = true;
  }

  switch (phase_) {
    case Phase::SynSent:
      if (segment->tcp.has(net::kSyn) && segment->tcp.has(net::kAck) &&
          segment->tcp.ack == isn_ + 1) {
        on_syn_ack(*segment);
      }
      break;
    case Phase::Collect:
      if (segment->tcp.has(net::kSyn) && segment->tcp.has(net::kAck) &&
          segment->tcp.seq == irs_) {
        // Retransmitted SYN/ACK: our handshake-ACK+request was lost on the
        // way out. Resend it, or the probe would idle into a false NoData.
        send_segment(isn_ + 1, data_base_, net::kAck | net::kPsh, config_.window,
                     request_, /*with_mss_option=*/false);
        break;
      }
      on_collect_data(*segment);
      break;
    case Phase::Verify:
      on_verify_data(*segment);
      break;
    default:
      break;
  }
}

void IwEstimator::on_syn_ack(const net::TcpSegment& segment) {
  irs_ = segment.tcp.seq;
  data_base_ = irs_ + 1;
  phase_ = Phase::Collect;
  // Handshake ACK and the request ride in one segment (Fig. 1).
  send_segment(isn_ + 1, data_base_, net::kAck | net::kPsh, config_.window, request_,
               /*with_mss_option=*/false);
  arm_timer(config_.collect_timeout, &IwEstimator::on_collect_timeout);
}

void IwEstimator::on_collect_data(const net::TcpSegment& segment) {
  const bool has_fin = segment.tcp.has(net::kFin);
  if (segment.payload.empty() && !has_fin) return;  // bare ACK of our request

  if (!segment.payload.empty()) {
    note_payload(segment.payload.size());
    const std::uint64_t start = tcp::seq_diff(segment.tcp.seq, data_base_);
    // Sequences "before" the first data byte would wrap to huge offsets;
    // treat anything implausibly far out as noise.
    if (start > (std::uint64_t{1} << 31)) return;
    const std::uint64_t end = start + segment.payload.size();

    if (covered(start, end)) {
      if (start == 0) {
        // The sender's RTO retransmission of its first segment: the IW
        // burst is complete. Move to verification.
        enter_verify();
        return;
      }
      return;  // duplicate of a later segment; ignore
    }
    if (overlaps(start, end)) {
      // Intersects recorded data without being a pure duplicate or a
      // gap-fill: a well-behaved stack retransmits on exact segment
      // boundaries, so a straddling range is a shrinking/overlapping
      // retransmitter rewriting stream history.
      observation_.overlap_seen = true;
    }
    const sim::SimTime now = services_.loop().now();
    if (last_data_at_ != sim::SimTime::min() && now - last_data_at_ >= sim::msec(400)) {
      ++trickle_gaps_;  // slowloris evidence: fresh data after a long gap
    }
    if (first_data_at_ == sim::SimTime::min()) first_data_at_ = now;
    if (now != last_data_at_) ++fresh_arrival_instants_;
    last_data_at_ = now;
    record_range(start, end, segment.payload);
  }

  if (has_fin) {
    observation_.fin_seen = true;
    const std::uint64_t fin_at =
        tcp::seq_diff(segment.tcp.seq, data_base_) + segment.payload.size();
    // Response is complete once everything up to the FIN arrived; under
    // reordering a hole may still be in flight — the collect timer covers
    // the case where it never arrives.
    if (contiguous_from_zero(fin_at)) {
      conclude(max_end_ == 0 ? ConnOutcome::NoData : ConnOutcome::FewData);
    }
  }
}

void IwEstimator::on_verify_data(const net::TcpSegment& segment) {
  if (!segment.payload.empty()) {
    note_payload(segment.payload.size());
    const std::uint64_t start = tcp::seq_diff(segment.tcp.seq, data_base_);
    if (start <= (std::uint64_t{1} << 31)) {
      const std::uint64_t end = start + segment.payload.size();
      if (!covered(start, end)) {
        // Fresh data released by our ACK: the sender had more queued and
        // was therefore genuinely limited by its IW.
        observation_.verify_new_data = true;
        conclude(ConnOutcome::Success);
        return;
      }
    }
  }
  if (segment.tcp.has(net::kFin)) {
    observation_.fin_seen = true;
    conclude(max_end_ == 0 ? ConnOutcome::NoData : ConnOutcome::FewData);
  }
}

void IwEstimator::record_range(std::uint64_t start, std::uint64_t end,
                               std::span<const std::uint8_t> payload) {
  ++observation_.segments;
  observation_.max_segment = std::max(observation_.max_segment,
                                      static_cast<std::uint16_t>(payload.size()));
  if (start < max_end_) {
    observation_.reorder_seen = true;  // fills (part of) an earlier gap
  }

  // Keep payload for in-order prefix reassembly (HTTP status/Location).
  if (prefix_bytes_stored_ < config_.prefix_cap && !chunks_.contains(start)) {
    chunks_.emplace(start, net::Bytes(payload.begin(), payload.end()));
    prefix_bytes_stored_ += payload.size();
  }

  // Insert [start,end) into the coalesced range map.
  auto it = ranges_.upper_bound(start);
  if (it != ranges_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= start) {
      start = prev->first;
      end = std::max(end, prev->second);
      it = ranges_.erase(prev);
    }
  }
  while (it != ranges_.end() && it->first <= end) {
    end = std::max(end, it->second);
    it = ranges_.erase(it);
  }
  ranges_.emplace(start, end);
  max_end_ = std::max(max_end_, end);
}

bool IwEstimator::covered(std::uint64_t start, std::uint64_t end) const noexcept {
  const auto it = ranges_.upper_bound(start);
  if (it == ranges_.begin()) return false;
  const auto& [range_start, range_end] = *std::prev(it);
  return range_start <= start && end <= range_end;
}

bool IwEstimator::overlaps(std::uint64_t start, std::uint64_t end) const noexcept {
  auto it = ranges_.upper_bound(start);
  if (it != ranges_.begin() && std::prev(it)->second > start) return true;
  return it != ranges_.end() && it->first < end;
}

void IwEstimator::note_payload(std::size_t payload_size) {
  // §3.1 tolerates OS-level clamping of tiny announced MSS values up to the
  // RFC 1122 default of 536 bytes; anything beyond that floor is a stack
  // ignoring the option outright.
  const std::size_t limit = std::max<std::size_t>(config_.announced_mss, 536);
  if (payload_size > limit) observation_.mss_violation = true;
}

bool IwEstimator::contiguous_from_zero(std::uint64_t upto) const noexcept {
  if (upto == 0) return true;
  const auto it = ranges_.find(0);
  return it != ranges_.end() && it->second >= upto;
}

void IwEstimator::enter_verify() {
  phase_ = Phase::Verify;
  observation_.loss_holes = ranges_.size() > 1;  // holes inside the burst

  // Pacing evidence. The sender's RTO ran from its first data segment to
  // the retransmission that got us here, and the network shifts both
  // endpoints of that window by the same one-way latency — so
  // now − first_data_at_ is the sender's RTO window as observed on our
  // side, and the fresh-data span measures how much of it the first
  // flight occupied. A burst spans only the path jitter; a paced flight
  // covers a fixed fraction of the window, and its byte count is then a
  // lower bound, not an exact IW (conclude() downgrades Success).
  if (first_data_at_ != sim::SimTime::min() &&
      observation_.anomaly == ProbeAnomaly::None) {
    const std::int64_t window = (services_.loop().now() - first_data_at_).count();
    const std::int64_t span = (last_data_at_ - first_data_at_).count();
    if (window > 0 &&
        span * 100 >= window * static_cast<std::int64_t>(config_.paced_window_percent) &&
        fresh_arrival_instants_ >= config_.paced_min_arrivals) {
      observation_.anomaly = ProbeAnomaly::PacedDelivery;
    }
  }
  // Acknowledge everything received, advertising a window of just
  // 2·MSS: enough to see whether more data exists without being flooded.
  const std::uint32_t ack = data_base_ + static_cast<std::uint32_t>(max_end_);
  const auto verify_window = static_cast<std::uint16_t>(
      config_.verify_window_segments * config_.announced_mss);
  send_segment(isn_ + 1 + static_cast<std::uint32_t>(request_.size()), ack, net::kAck,
               verify_window, {}, /*with_mss_option=*/false);
  arm_timer(config_.verify_timeout, &IwEstimator::on_verify_timeout);
}

void IwEstimator::conclude(ConnOutcome outcome) {
  if (phase_ == Phase::Done) return;
  // A paced first flight is never an exact-IW success: the bytes counted
  // before the retransmission bound the IW from below, but the pacer may
  // have withheld more. Degrade to the FewData (lower-bound) verdict.
  if (observation_.anomaly == ProbeAnomaly::PacedDelivery &&
      outcome == ConnOutcome::Success) {
    outcome = ConnOutcome::FewData;
  }
  const bool had_connection = phase_ != Phase::SynSent || outcome == ConnOutcome::Refused;
  phase_ = Phase::Done;
  services_.loop().cancel(timer_);
  timer_ = sim::kNullEvent;

  // Tear the server connection down; the scan never closes gracefully.
  if (had_connection && outcome != ConnOutcome::Refused &&
      outcome != ConnOutcome::Unreachable) {
    send_segment(isn_ + 1 + static_cast<std::uint32_t>(request_.size()),
                 data_base_ + static_cast<std::uint32_t>(max_end_),
                 net::kRst | net::kAck, 0, {}, false);
  }

  observation_.outcome = outcome;
  if (observation_.anomaly == ProbeAnomaly::None) {
    if (outcome == ConnOutcome::NoData && observation_.fin_seen) {
      observation_.anomaly = ProbeAnomaly::EarlyFin;
    } else if (observation_.overlap_seen) {
      observation_.anomaly = ProbeAnomaly::ShrinkingRetransmit;
    } else if (observation_.mss_violation) {
      observation_.anomaly = ProbeAnomaly::MssViolation;
    }
  }
  observation_.span_bytes = max_end_;
  if (observation_.max_segment > 0) {
    // §3.1: "monitor the actually used segment size and use the observed
    // maximum for our IW estimation" — robust against OS MSS clamping.
    observation_.iw_estimate = static_cast<std::uint32_t>(
        (max_end_ + observation_.max_segment - 1) / observation_.max_segment);
  }
  if (outcome == ConnOutcome::NoData) {
    observation_.iw_estimate = 0;
  }

  // Reassemble the in-order prefix for application-layer analysis.
  observation_.prefix.clear();
  std::uint64_t expect = 0;
  for (const auto& [start, bytes] : chunks_) {
    if (start > expect) break;  // hole
    const std::uint64_t skip = expect - start;
    if (skip < bytes.size()) {
      observation_.prefix.insert(observation_.prefix.end(),
                                 bytes.begin() + static_cast<std::ptrdiff_t>(skip),
                                 bytes.end());
      expect = start + bytes.size();
    }
  }

  done_(observation_);
}

void IwEstimator::send_segment(std::uint32_t seq, std::uint32_t ack, std::uint8_t flags,
                               std::uint16_t window,
                               std::span<const std::uint8_t> payload,
                               bool with_mss_option) {
  net::TcpSegment segment;
  segment.ip.src = services_.scanner_address();
  segment.ip.dst = target_;
  segment.ip.ttl = 64;
  segment.ip.dont_fragment = true;
  segment.tcp.src_port = local_port_;
  segment.tcp.dst_port = target_port_;
  segment.tcp.seq = seq;
  segment.tcp.ack = ack;
  segment.tcp.flags = flags;
  segment.tcp.window = window;
  if (with_mss_option) {
    segment.tcp.options.push_back(net::MssOption{config_.announced_mss});
  }
  segment.payload.assign(payload.begin(), payload.end());
  services_.send_packet(segment);
}

void IwEstimator::arm_timer(sim::SimTime delay, void (IwEstimator::*handler)()) {
  services_.loop().cancel(timer_);
  timer_ = services_.loop().schedule(delay, [this, handler] {
    timer_ = sim::kNullEvent;
    (this->*handler)();
  });
}

void IwEstimator::on_syn_timeout() { conclude(ConnOutcome::Unreachable); }

void IwEstimator::on_collect_timeout() {
  if (observation_.fin_seen) {
    // FIN arrived but a hole never filled: tail of the response lost.
    observation_.loss_holes = ranges_.size() != 1 || !ranges_.contains(0);
    conclude(max_end_ == 0 ? ConnOutcome::NoData : ConnOutcome::FewData);
  } else if (max_end_ == 0) {
    if (observation_.zero_window_seen) {
      observation_.anomaly = ProbeAnomaly::ZeroWindow;
    } else if (!request_acked_) {
      // Completed the handshake but never consumed our request: a tarpit
      // holding the connection open to waste scanner state.
      observation_.anomaly = ProbeAnomaly::Tarpit;
    }
    conclude(ConnOutcome::NoData);
  } else {
    // Data flowed but no retransmission was ever seen — all retransmits
    // lost, a middlebox interfered, or the stack simply never retransmits.
    // No trustworthy estimate either way. Repeated long inter-segment gaps
    // mark the slowloris variant that drips bytes to stall the collector.
    observation_.anomaly = trickle_gaps_ >= 2 ? ProbeAnomaly::Slowloris
                                              : ProbeAnomaly::NoRetransmit;
    conclude(ConnOutcome::Error);
  }
}

void IwEstimator::on_verify_timeout() {
  // No new data after the ACK release: the sender was out of data, so the
  // IW may not have been filled (lower bound only).
  conclude(max_end_ == 0 ? ConnOutcome::NoData : ConnOutcome::FewData);
}

}  // namespace iwscan::core
