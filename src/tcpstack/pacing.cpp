#include "tcpstack/pacing.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace iwscan::tcp {

namespace {

/// floor(value * num / den) with a 128-bit intermediate: exact for any
/// 64-bit operands, which keeps slot offsets overflow-free even for the
/// hostile RTT/RTO magnitudes the fuzz driver feeds in.
[[nodiscard]] std::uint64_t scale_u64(std::uint64_t value, std::uint64_t num,
                                      std::uint64_t den) noexcept {
  if (den == 0) return 0;
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(value) * num) / den);
}

}  // namespace

std::vector<PacingSlot> build_pacing_schedule(const IwConfig& iw,
                                              std::uint16_t mss, sim::SimTime rtt,
                                              sim::SimTime rto_deadline,
                                              std::uint64_t seed) {
  const std::uint32_t cwnd = iw.initial_cwnd(mss);
  const std::uint32_t seg = std::max<std::uint32_t>(mss, 1);
  const std::size_t slots = (cwnd + seg - 1) / seg;

  std::vector<PacingSlot> schedule(slots);
  for (std::size_t i = 0; i < slots; ++i) {
    const std::uint64_t sent = static_cast<std::uint64_t>(i) * seg;
    schedule[i].bytes =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(seg, cwnd - sent));
  }
  if (!iw.pacing.paced() || slots <= 1) return schedule;

  const std::uint64_t rtt_ns =
      rtt.count() > 0 ? static_cast<std::uint64_t>(rtt.count()) : 0;
  const std::uint64_t deadline_ns =
      rto_deadline.count() > 0 ? static_cast<std::uint64_t>(rto_deadline.count())
                               : 0;
  // Spread the flight over spread_rtt_percent of the RTT, but never past
  // 9/10 of the RTO deadline: a sender that paced into its own retransmit
  // timer would manufacture the very signal the scanner waits for.
  const std::uint64_t span_ns =
      std::min(scale_u64(rtt_ns, iw.pacing.spread_rtt_percent, 100),
               scale_u64(deadline_ns, 9, 10));
  if (span_ns == 0) return schedule;

  // Per-gap weights 1000 ± 10·jitter_percent from a dedicated seeded
  // stream; offsets are the prefix sums rescaled onto [0, span] in exact
  // integer arithmetic, so the last slot lands on the span boundary.
  const std::uint64_t jitter =
      10 * std::min<std::uint64_t>(iw.pacing.jitter_percent, 99);
  util::Rng rng(seed);
  std::vector<std::uint64_t> prefix(slots, 0);
  std::uint64_t total = 0;
  for (std::size_t gap = 1; gap < slots; ++gap) {
    const std::uint64_t weight =
        jitter == 0 ? 1000 : rng.between(1000 - jitter, 1000 + jitter);
    total += weight;
    prefix[gap] = total;
  }
  for (std::size_t i = 1; i < slots; ++i) {
    schedule[i].offset = sim::SimTime(
        static_cast<sim::SimTime::rep>(scale_u64(span_ns, prefix[i], total)));
  }
  return schedule;
}

}  // namespace iwscan::tcp
