// A simulated host: one IP address, a TCP demultiplexer with listening
// ports, and optional ICMP echo service. Owns its connections.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "netsim/network.hpp"
#include "tcpstack/connection.hpp"
#include "util/annotations.hpp"

namespace iwscan::tcp {

class TcpHost : public sim::Endpoint {
 public:
  /// Creates the application protocol instance for an accepted connection.
  using AppFactory = std::function<std::unique_ptr<Application>(
      net::IPv4Address peer, std::uint16_t peer_port)>;

  TcpHost(sim::Network& network, net::IPv4Address address, StackConfig config,
          std::uint64_t seed);
  ~TcpHost() override;

  TcpHost(const TcpHost&) = delete;
  TcpHost& operator=(const TcpHost&) = delete;

  /// Accept connections on `port`, creating one Application per connection.
  /// `config_override` replaces the host-wide StackConfig for connections
  /// on this port — used for per-service IW customization (the paper finds
  /// e.g. Akamai running different IWs per service, §4.3).
  void listen(std::uint16_t port, AppFactory factory,
              std::optional<StackConfig> config_override = std::nullopt);
  void close_port(std::uint16_t port);

  void set_icmp_echo(bool enabled) noexcept { icmp_echo_ = enabled; }

  void handle_packet(net::PacketView bytes) override;

  [[nodiscard]] net::IPv4Address address() const noexcept { return address_; }
  [[nodiscard]] const StackConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t active_connections() const noexcept {
    return connections_.size();
  }
  /// True when no connection (live or awaiting cleanup) remains — the
  /// Internet model uses this to decide when a lazy host can be evicted.
  [[nodiscard]] bool quiescent() const noexcept {
    return connections_.empty() && graveyard_.empty();
  }

 private:
  struct ConnKey {
    net::IPv4Address peer;
    std::uint16_t peer_port;
    std::uint16_t local_port;
    bool operator==(const ConnKey&) const = default;
  };
  struct ConnKeyHash {
    std::size_t operator()(const ConnKey& key) const noexcept {
      const std::uint64_t packed = (std::uint64_t{key.peer.value()} << 32) |
                                   (std::uint64_t{key.peer_port} << 16) |
                                   key.local_port;
      return static_cast<std::size_t>(packed * 0x9E3779B97F4A7C15ULL >> 13);
    }
  };

  void on_tcp(const net::TcpSegment& segment);
  void on_icmp(const net::IcmpDatagram& datagram);
  void send_reset_for(const net::TcpSegment& offending);
  IWSCAN_HOT void transmit(net::TcpSegment&& segment);
  void reap_graveyard();

  sim::Network& network_;
  net::IPv4Address address_;
  StackConfig config_;
  std::uint64_t seed_;
  bool icmp_echo_ = true;

  struct Listener {
    AppFactory factory;
    std::optional<StackConfig> config_override;
  };
  std::unordered_map<std::uint16_t, Listener> listeners_;
  std::unordered_map<ConnKey, std::unique_ptr<TcpConnection>, ConnKeyHash> connections_;
  // Connections that closed during their own callbacks; freed on the next
  // event-loop tick so no live stack frame references them.
  std::vector<std::unique_ptr<TcpConnection>> graveyard_;
  sim::EventId reap_event_ = sim::kNullEvent;
};

}  // namespace iwscan::tcp
