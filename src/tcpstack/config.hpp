// Host TCP stack configuration: OS MSS-clamping profiles and initial-window
// policies.
//
// These knobs span every sender behaviour the paper observes in the wild:
//   * segment-counted IWs (RFC 2001/2414/3390/6928: 1, 2, 4, 10, vendor
//     values like 25, 48, 64),
//   * byte-counted IWs (§4.2: hosts that always send ~4 kB — Technicolor
//     modems at Telmex — so 64 segments at MSS 64 but 32 at MSS 128),
//   * MTU-fill IWs (§4.2: hosts summing to 1536 B: 24 segments at MSS 64,
//     12 at MSS 128),
//   * OS minimum-MSS rules (§3.1: Linux rejects MSS < 64; all tested
//     Windows variants fall back to 536 when the announced MSS is smaller).
#pragma once

#include <algorithm>
#include <cstdint>

#include "netsim/event_loop.hpp"

namespace iwscan::tcp {

enum class OsProfile {
  Linux,    // accepts MSS >= 64; below that clamps to 64
  Windows,  // announced MSS < 536 → uses 536
  Permissive,  // uses whatever the peer announces (>= 1)
};

/// Effective segment size a host uses toward a peer that announced
/// `announced_mss`, given the host's own upper limit (interface MTU - 40).
[[nodiscard]] constexpr std::uint16_t effective_mss(OsProfile os,
                                                    std::uint16_t announced_mss,
                                                    std::uint16_t own_limit) noexcept {
  std::uint16_t mss = announced_mss;
  switch (os) {
    case OsProfile::Linux:
      mss = std::max<std::uint16_t>(mss, 64);
      break;
    case OsProfile::Windows:
      if (mss < 536) mss = 536;
      break;
    case OsProfile::Permissive:
      mss = std::max<std::uint16_t>(mss, 1);
      break;
  }
  return std::min(mss, own_limit);
}

enum class IwPolicy {
  Segments,  // cwnd_0 = segments × MSS (the RFC family and vendor variants)
  Bytes,     // cwnd_0 = fixed byte budget regardless of MSS (§4.2 hosts)
};

enum class PacingMode : std::uint8_t {
  Burst,  // whole initial window back-to-back (the paper's §3 assumption)
  Paced,  // first flight spread over a fraction of the handshake RTT
};

/// First-flight delivery policy. CDN edge stacks ("Demystifying TCP Initial
/// Window Configurations of CDNs") pace the initial window across the RTT
/// instead of bursting it, which removes the clean burst the
/// count-bytes-before-RTO method relies on. The schedule itself is built by
/// build_pacing_schedule() (pacing.hpp) from a per-connection seed, so a
/// paced host's wire behaviour is bit-reproducible.
struct PacingPolicy {
  PacingMode mode = PacingMode::Burst;
  // Fraction of the measured handshake RTT the first flight is spread over,
  // in percent (100 = one full RTT). The schedule is additionally capped at
  // 9/10 of the sender's RTO so pacing never trips its own retransmit timer.
  std::uint32_t spread_rtt_percent = 100;
  // Seeded per-gap jitter amplitude in percent of the nominal gap (0 =
  // perfectly even spacing).
  std::uint32_t jitter_percent = 10;

  [[nodiscard]] constexpr bool paced() const noexcept {
    return mode == PacingMode::Paced;
  }
  friend constexpr bool operator==(const PacingPolicy&,
                                   const PacingPolicy&) = default;
};

struct IwConfig {
  IwPolicy policy = IwPolicy::Segments;
  std::uint32_t segments = 10;  // used when policy == Segments
  std::uint32_t bytes = 4096;   // used when policy == Bytes
  PacingPolicy pacing{};        // how the first flight leaves the host

  [[nodiscard]] constexpr std::uint32_t initial_cwnd(std::uint16_t mss) const noexcept {
    if (policy == IwPolicy::Bytes) return std::max(bytes, std::uint32_t{mss});
    return segments * mss;
  }

  [[nodiscard]] static constexpr IwConfig segments_of(std::uint32_t n) noexcept {
    return IwConfig{IwPolicy::Segments, n, 0};
  }
  [[nodiscard]] static constexpr IwConfig bytes_of(std::uint32_t n) noexcept {
    return IwConfig{IwPolicy::Bytes, 0, n};
  }

  // CDN-scale presets from the follow-up study: segment tiers IW16/32/50
  // and byte-budget tiers (edge configs that provision the first flight in
  // kilobytes, like the §4.2 byte-counted hosts but far larger).
  [[nodiscard]] static constexpr IwConfig iw16() noexcept { return segments_of(16); }
  [[nodiscard]] static constexpr IwConfig iw32() noexcept { return segments_of(32); }
  [[nodiscard]] static constexpr IwConfig iw50() noexcept { return segments_of(50); }
  [[nodiscard]] static constexpr IwConfig byte_tier_kib(std::uint32_t kib) noexcept {
    return bytes_of(kib * 1024);
  }

  /// Copy of this config with a paced first flight.
  [[nodiscard]] constexpr IwConfig paced_over(
      std::uint32_t spread_rtt_percent, std::uint32_t jitter_percent = 10) const noexcept {
    IwConfig out = *this;
    out.pacing = PacingPolicy{PacingMode::Paced, spread_rtt_percent, jitter_percent};
    return out;
  }

  friend constexpr bool operator==(const IwConfig&, const IwConfig&) = default;
};

struct StackConfig {
  OsProfile os = OsProfile::Linux;
  IwConfig iw = IwConfig::segments_of(10);
  std::uint16_t own_mss_limit = 1460;  // own interface MTU - 40
  std::uint16_t advertised_window = 65535;
  sim::SimTime rto_initial = sim::sec(1);  // Linux default initial RTO
  sim::SimTime rto_max = sim::sec(60);
  int max_retransmits = 5;
  sim::SimTime idle_timeout = sim::sec(30);
  bool reset_on_closed_port = true;  // false = silently drop (filtered)
};

}  // namespace iwscan::tcp
