// Modulo-2^32 sequence-number arithmetic (RFC 793 §3.3).
#pragma once

#include <cstdint>

namespace iwscan::tcp {

[[nodiscard]] constexpr bool seq_lt(std::uint32_t a, std::uint32_t b) noexcept {
  return static_cast<std::int32_t>(a - b) < 0;
}
[[nodiscard]] constexpr bool seq_le(std::uint32_t a, std::uint32_t b) noexcept {
  return static_cast<std::int32_t>(a - b) <= 0;
}
[[nodiscard]] constexpr bool seq_gt(std::uint32_t a, std::uint32_t b) noexcept {
  return static_cast<std::int32_t>(a - b) > 0;
}
[[nodiscard]] constexpr bool seq_ge(std::uint32_t a, std::uint32_t b) noexcept {
  return static_cast<std::int32_t>(a - b) >= 0;
}
/// Distance a→b, meaningful when b is "after" a in the window.
[[nodiscard]] constexpr std::uint32_t seq_diff(std::uint32_t b, std::uint32_t a) noexcept {
  return b - a;
}

}  // namespace iwscan::tcp
