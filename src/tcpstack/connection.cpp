#include "tcpstack/connection.hpp"

#include <algorithm>

#include "tcpstack/pacing.hpp"
#include "tcpstack/seq.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace iwscan::tcp {

TcpConnection::TcpConnection(sim::EventLoop& loop, const StackConfig& config,
                             net::IPv4Address local_addr, std::uint16_t local_port,
                             net::IPv4Address remote_addr, std::uint16_t remote_port,
                             const net::TcpSegment& syn, std::uint32_t initial_seq,
                             std::unique_ptr<Application> app, SendFn send,
                             ClosedFn on_closed)
    : loop_(loop),
      config_(config),
      local_addr_(local_addr),
      local_port_(local_port),
      remote_addr_(remote_addr),
      remote_port_(remote_port),
      app_(std::move(app)),
      send_fn_(std::move(send)),
      on_closed_(std::move(on_closed)) {
  const auto announced = net::find_mss(syn.tcp.options);
  peer_announced_mss_ = announced.value_or(0);
  // RFC 1122: absent MSS option implies the 536-byte default.
  mss_ = effective_mss(config_.os, announced.value_or(536), config_.own_mss_limit);
  cwnd_ = config_.iw.initial_cwnd(mss_);

  irs_ = syn.tcp.seq;
  rcv_nxt_ = irs_ + 1;
  rwnd_ = syn.tcp.window;

  iss_ = initial_seq;
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;
  buffer_start_seq_ = iss_ + 1;

  rto_ = config_.rto_initial;
  synack_sent_at_ = loop_.now();
  send_syn_ack();
  arm_retransmit();
  touch_idle_timer();
}

TcpConnection::~TcpConnection() {
  loop_.cancel(retx_event_);
  loop_.cancel(idle_event_);
  for (const auto id : pacing_events_) loop_.cancel(id);
}

std::uint32_t TcpConnection::bytes_in_flight() const noexcept {
  return seq_diff(snd_nxt_, snd_una_);
}

std::uint32_t TcpConnection::unsent_bytes() const noexcept {
  const std::uint32_t data_end =
      buffer_start_seq_ + static_cast<std::uint32_t>(buffer_.size());
  const std::uint32_t sent_data_end = snd_nxt_ - (fin_sent_ ? 1 : 0);
  return seq_ge(sent_data_end, data_end) ? 0 : seq_diff(data_end, sent_data_end);
}

std::uint32_t TcpConnection::send_window() const noexcept {
  return std::min(cwnd_, std::uint32_t{rwnd_});
}

void TcpConnection::on_segment(const net::TcpSegment& segment) {
  if (state_ == TcpState::Closed) return;
  touch_idle_timer();
  in_segment_processing_ = true;
  const struct Reset {  // cleared on every exit path, incl. early returns
    bool* flag;
    ~Reset() { *flag = false; }
  } reset_guard{&in_segment_processing_};

  if (segment.tcp.has(net::kRst)) {
    // RFC 793: validate the RST is in the receive window; our peers always
    // send exact in-window resets so an exact-or-newer check suffices.
    enter_closed();
    return;
  }

  const std::uint64_t segments_sent_before = stats_.segments_sent;
  const std::uint32_t rcv_nxt_before = rcv_nxt_;

  if (state_ == TcpState::SynReceived) {
    if (segment.tcp.has(net::kSyn) && !segment.tcp.has(net::kAck)) {
      // Retransmitted SYN: answer with the same SYN/ACK.
      send_syn_ack();
      return;
    }
    if (!segment.tcp.has(net::kAck) || segment.tcp.ack != iss_ + 1) {
      return;  // not the handshake completion we expect
    }
    state_ = TcpState::Established;
    snd_una_ = segment.tcp.ack;
    rwnd_ = segment.tcp.window;
    // Handshake RTT (Karn: measured against the first SYN/ACK transmission)
    // — the pacing schedule spreads the first flight over a slice of it.
    handshake_rtt_ = loop_.now() - synack_sent_at_;
    loop_.cancel(retx_event_);
    retx_event_ = sim::kNullEvent;
    retx_count_ = 0;
    rto_ = config_.rto_initial;
    if (app_) app_->on_established(*this);
    // Fall through: the handshake ACK may carry the request payload
    // (Fig. 1 of the paper: "ACK, REQUEST" in one segment).
  } else {
    handle_ack(segment);
  }
  if (state_ == TcpState::Closed) return;

  handle_payload(segment);
  if (state_ == TcpState::Closed) return;

  try_send();
  if (state_ == TcpState::Closed) return;

  // Acknowledge received data if nothing we sent carried the ACK. A
  // duplicate or out-of-order payload also triggers an immediate ACK (the
  // classic duplicate-ACK signal) so a retransmitting peer converges.
  const bool advanced = rcv_nxt_ != rcv_nxt_before;
  const bool unaccepted_payload = !segment.payload.empty() && !advanced;
  if ((advanced || unaccepted_payload) &&
      stats_.segments_sent == segments_sent_before) {
    send_pure_ack();
  }
}

void TcpConnection::handle_ack(const net::TcpSegment& segment) {
  if (!segment.tcp.has(net::kAck)) return;
  const std::uint32_t ack = segment.tcp.ack;
  if (seq_gt(ack, snd_nxt_)) {
    send_pure_ack();  // acks data we never sent
    return;
  }
  rwnd_ = segment.tcp.window;
  if (!seq_gt(ack, snd_una_)) return;  // duplicate or old ACK

  const std::uint32_t acked = seq_diff(ack, snd_una_);
  snd_una_ = ack;

  // A data ACK while pacing releases the remaining first flight at once:
  // the receiver is reading, so the window is governed by slow start from
  // here on (and the verify-phase ACK must trigger an immediate burst).
  if (pacing_active_) cancel_pacing();

  // Trim acknowledged bytes off the retransmission buffer.
  if (seq_gt(ack, buffer_start_seq_)) {
    const std::uint32_t buffer_acked = std::min<std::uint32_t>(
        seq_diff(ack, buffer_start_seq_), static_cast<std::uint32_t>(buffer_.size()));
    buffer_.erase(buffer_.begin(), buffer_.begin() + buffer_acked);
    buffer_start_seq_ += buffer_acked;
  }

  // Slow start (RFC 5681 §3.1): cwnd += min(acked, SMSS) per ACK.
  cwnd_ += std::min<std::uint32_t>(acked, mss_);

  retx_count_ = 0;
  rto_ = config_.rto_initial;
  if (bytes_in_flight() == 0) {
    loop_.cancel(retx_event_);
    retx_event_ = sim::kNullEvent;
  } else {
    arm_retransmit();
  }

  if (fin_sent_ && ack == snd_nxt_) {
    if (state_ == TcpState::FinWait1) {
      state_ = TcpState::FinWait2;
    } else if (state_ == TcpState::LastAck) {
      enter_closed();
    }
  }
}

void TcpConnection::handle_payload(const net::TcpSegment& segment) {
  const bool has_fin = segment.tcp.has(net::kFin);
  if (segment.payload.empty() && !has_fin) return;

  if (segment.tcp.seq != rcv_nxt_) {
    // Out-of-order or duplicate: drop and let the duplicate-ACK logic in
    // on_segment() answer. Reassembly is unnecessary against our probers.
    return;
  }

  rcv_nxt_ += static_cast<std::uint32_t>(segment.payload.size());
  if (!segment.payload.empty() && app_) {
    app_->on_data(*this, segment.payload);
    if (state_ == TcpState::Closed) return;  // app aborted
  }

  if (has_fin) {
    rcv_nxt_ += 1;
    switch (state_) {
      case TcpState::Established:
        state_ = TcpState::CloseWait;
        break;
      case TcpState::FinWait1:
      case TcpState::FinWait2:
        // Simultaneous/after-our-FIN close; skip TIME_WAIT.
        enter_closed();
        return;
      default:
        break;
    }
    if (app_) app_->on_peer_close(*this);
  }
}

void TcpConnection::send(std::span<const std::uint8_t> data) {
  if (state_ == TcpState::Closed || fin_pending_) return;
  // iwlint: allow(hot-path) -- per-connection send buffer reusing its
  // capacity across segments; bounded by the app's response size
  buffer_.insert(buffer_.end(), data.begin(), data.end());
  // Inside segment processing, transmission is deferred until the app
  // callback returns — so a send()+close() pair lets the FIN piggyback on
  // the final data segment, as real stacks do.
  if (state_ != TcpState::SynReceived && !in_segment_processing_) try_send();
}

void TcpConnection::close() {
  if (state_ == TcpState::Closed || fin_pending_) return;
  fin_pending_ = true;
  if (state_ != TcpState::SynReceived && !in_segment_processing_) try_send();
}

void TcpConnection::abort() {
  if (state_ == TcpState::Closed) return;
  send_rst(snd_nxt_);
  enter_closed();
}

void TcpConnection::set_initial_window(const IwConfig& iw) {
  if (state_ == TcpState::Closed || first_flight_started_ ||
      stats_.bytes_sent != 0) {
    return;
  }
  config_.iw = iw;
  cwnd_ = iw.initial_cwnd(mss_);
}

void TcpConnection::try_send() {
  if (state_ != TcpState::Established && state_ != TcpState::CloseWait) {
    return;
  }
  if (pacing_active_) return;  // slot timers own transmission
  if (config_.iw.pacing.paced() && !first_flight_started_ &&
      unsent_bytes() > 0) {
    start_paced_first_flight();
    return;
  }
  const std::uint32_t window = send_window();
  bool sent_any = false;

  while (true) {
    const std::uint32_t unsent = unsent_bytes();
    if (unsent == 0) break;
    const std::uint32_t in_flight = bytes_in_flight();
    if (in_flight >= window) break;
    const std::uint32_t room = window - in_flight;
    const std::uint32_t chunk = std::min({std::uint32_t{mss_}, unsent, room});
    if (chunk == 0) break;

    const std::uint32_t offset = seq_diff(snd_nxt_, buffer_start_seq_);
    const auto payload =
        std::span<const std::uint8_t>(buffer_).subspan(offset, chunk);
    const bool last_chunk = chunk == unsent;
    std::uint8_t flags = net::kAck;
    if (last_chunk) flags |= net::kPsh;
    const bool attach_fin = last_chunk && fin_pending_ && !fin_sent_;
    if (attach_fin) flags |= net::kFin;

    emit_segment(snd_nxt_, payload, flags, /*retransmission=*/false);
    stats_.bytes_sent += chunk;
    snd_nxt_ += chunk;
    if (attach_fin) {
      fin_sent_ = true;
      snd_nxt_ += 1;
      state_ = state_ == TcpState::CloseWait ? TcpState::LastAck : TcpState::FinWait1;
    }
    sent_any = true;
  }

  // Bare FIN once every queued byte has been transmitted (data may still be
  // unacked; the FIN occupies the next sequence number after it).
  if (fin_pending_ && !fin_sent_ && unsent_bytes() == 0) {
    emit_segment(snd_nxt_, {}, net::kFin | net::kAck, /*retransmission=*/false);
    fin_sent_ = true;
    snd_nxt_ += 1;
    state_ = state_ == TcpState::CloseWait ? TcpState::LastAck : TcpState::FinWait1;
    sent_any = true;
  }

  if (sent_any && bytes_in_flight() > 0) arm_retransmit();
}

void TcpConnection::start_paced_first_flight() {
  first_flight_started_ = true;
  // Schedule seed: (ISS, peer address) — unique per connection, stable per
  // replay, and independent of anything the scanner controls beyond timing.
  const auto schedule =
      build_pacing_schedule(config_.iw, mss_, handshake_rtt_, rto_,
                            util::mix64(iss_, remote_addr_.value()));
  if (schedule.empty()) return;
  pacing_slots_total_ = schedule.size();
  pacing_active_ = true;
  // iwlint: allow(hot-path) -- once per connection at first-flight start;
  // bounded by the slot count of one initial window
  pacing_events_.assign(schedule.size(), sim::kNullEvent);
  // iwlint: allow(hot-path) -- same once-per-connection slot table as above
  pacing_slot_bytes_.resize(schedule.size());
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    pacing_slot_bytes_[i] = schedule[i].bytes;
  }
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    pacing_events_[i] =
        loop_.schedule(schedule[i].offset, [this, i] { on_pacing_slot(i); });
  }
  // Slot 0 fires inline (offset zero by construction); the RTO is armed
  // here, once, so the retransmission the scanner waits for comes exactly
  // one RTO after the first data segment — pacing must not reset it.
  on_pacing_slot(0);
}

void TcpConnection::on_pacing_slot(std::size_t index) {
  if (index < pacing_events_.size()) pacing_events_[index] = sim::kNullEvent;
  if (state_ == TcpState::Closed || !pacing_active_) return;
  const bool last_slot = index + 1 == pacing_slots_total_;
  emit_paced_chunk(pacing_slot_bytes_[index], last_slot);
  if (index == 0 && bytes_in_flight() > 0) arm_retransmit();
  if (!last_slot) return;

  pacing_active_ = false;
  // The flight is out. A trailing FIN rides its own segment (without
  // re-arming the RTO: the timer from slot 0 already covers everything
  // unacked); residual window-limited data waits for the next ACK.
  if (fin_pending_ && !fin_sent_ && unsent_bytes() == 0) {
    emit_segment(snd_nxt_, {}, net::kFin | net::kAck, /*retransmission=*/false);
    fin_sent_ = true;
    snd_nxt_ += 1;
    state_ =
        state_ == TcpState::CloseWait ? TcpState::LastAck : TcpState::FinWait1;
  }
}

void TcpConnection::emit_paced_chunk(std::uint32_t chunk_bytes, bool last_slot) {
  const std::uint32_t unsent = unsent_bytes();
  const std::uint32_t window = send_window();
  const std::uint32_t in_flight = bytes_in_flight();
  const std::uint32_t room = in_flight >= window ? 0 : window - in_flight;
  const std::uint32_t chunk = std::min({chunk_bytes, unsent, room});
  if (chunk == 0) return;
  const std::uint32_t offset = seq_diff(snd_nxt_, buffer_start_seq_);
  const auto payload =
      std::span<const std::uint8_t>(buffer_).subspan(offset, chunk);
  std::uint8_t flags = net::kAck;
  if (last_slot || chunk == unsent) flags |= net::kPsh;
  emit_segment(snd_nxt_, payload, flags, /*retransmission=*/false);
  stats_.bytes_sent += chunk;
  snd_nxt_ += chunk;
}

void TcpConnection::cancel_pacing() {
  for (auto& id : pacing_events_) {
    loop_.cancel(id);
    id = sim::kNullEvent;
  }
  pacing_active_ = false;
}

void TcpConnection::emit_segment(std::uint32_t seq,
                                 std::span<const std::uint8_t> payload,
                                 std::uint8_t flags, bool retransmission) {
  net::TcpSegment segment;
  segment.ip.src = local_addr_;
  segment.ip.dst = remote_addr_;
  segment.ip.ttl = 64;
  segment.ip.dont_fragment = true;
  segment.tcp.src_port = local_port_;
  segment.tcp.dst_port = remote_port_;
  segment.tcp.seq = seq;
  segment.tcp.ack = (flags & net::kAck) ? rcv_nxt_ : 0;
  segment.tcp.flags = flags;
  segment.tcp.window = config_.advertised_window;
  // iwlint: allow(hot-path) -- staged segment payload copy; counted by the
  // runtime allocs-per-packet budget (alloc_budget_test)
  segment.payload.assign(payload.begin(), payload.end());
  ++stats_.segments_sent;
  if (retransmission) ++stats_.segments_retransmitted;
  send_fn_(std::move(segment));
}

void TcpConnection::send_pure_ack() {
  emit_segment(snd_nxt_, {}, net::kAck, /*retransmission=*/false);
}

void TcpConnection::send_syn_ack() {
  net::TcpSegment segment;
  segment.ip.src = local_addr_;
  segment.ip.dst = remote_addr_;
  segment.ip.ttl = 64;
  segment.ip.dont_fragment = true;
  segment.tcp.src_port = local_port_;
  segment.tcp.dst_port = remote_port_;
  segment.tcp.seq = iss_;
  segment.tcp.ack = rcv_nxt_;
  segment.tcp.flags = net::kSyn | net::kAck;
  segment.tcp.window = config_.advertised_window;
  // iwlint: allow(hot-path) -- one MSS option per SYN-ACK; connection setup,
  // not steady-state transfer
  segment.tcp.options.push_back(net::MssOption{config_.own_mss_limit});
  ++stats_.segments_sent;
  send_fn_(std::move(segment));
}

void TcpConnection::send_rst(std::uint32_t seq) {
  emit_segment(seq, {}, net::kRst | net::kAck, /*retransmission=*/false);
}

void TcpConnection::arm_retransmit() {
  loop_.cancel(retx_event_);
  retx_event_ = loop_.schedule(rto_, [this] { on_retransmit_timeout(); });
}

void TcpConnection::on_retransmit_timeout() {
  retx_event_ = sim::kNullEvent;
  if (state_ == TcpState::Closed) return;
  if (pacing_active_) cancel_pacing();  // the RTO path owns transmission now
  if (++retx_count_ > config_.max_retransmits) {
    enter_closed();
    return;
  }

  if (state_ == TcpState::SynReceived) {
    send_syn_ack();
    ++stats_.segments_retransmitted;
  } else if (bytes_in_flight() > 0) {
    // Retransmit only the first unacknowledged segment (classic RTO
    // behaviour — exactly what the scanner waits for, Fig. 1).
    const std::uint32_t sent_data_end = snd_nxt_ - (fin_sent_ ? 1 : 0);
    if (seq_lt(snd_una_, sent_data_end)) {
      const std::uint32_t offset = seq_diff(snd_una_, buffer_start_seq_);
      const std::uint32_t available = seq_diff(sent_data_end, snd_una_);
      const std::uint32_t len = std::min<std::uint32_t>({mss_, available});
      const auto payload =
          std::span<const std::uint8_t>(buffer_).subspan(offset, len);
      std::uint8_t flags = net::kAck;
      const bool covers_fin = fin_sent_ && snd_una_ + len == sent_data_end;
      if (covers_fin) flags |= net::kFin | net::kPsh;
      emit_segment(snd_una_, payload, flags, /*retransmission=*/true);
    } else if (fin_sent_) {
      emit_segment(snd_una_, {}, net::kFin | net::kAck, /*retransmission=*/true);
    }
  } else {
    return;  // nothing outstanding; timer was stale
  }

  rto_ = std::min(rto_ * 2, config_.rto_max);
  arm_retransmit();
}

void TcpConnection::touch_idle_timer() {
  loop_.cancel(idle_event_);
  idle_event_ = loop_.schedule(config_.idle_timeout, [this] { on_idle_timeout(); });
}

void TcpConnection::on_idle_timeout() {
  idle_event_ = sim::kNullEvent;
  enter_closed();
}

void TcpConnection::enter_closed() {
  if (state_ == TcpState::Closed) return;
  state_ = TcpState::Closed;
  cancel_pacing();
  loop_.cancel(retx_event_);
  retx_event_ = sim::kNullEvent;
  loop_.cancel(idle_event_);
  idle_event_ = sim::kNullEvent;
  if (on_closed_) {
    // May destroy *this; nothing may run afterwards.
    on_closed_(*this);
  }
}

}  // namespace iwscan::tcp
