// Seeded-deterministic first-flight pacing schedules.
//
// A paced sender (PacingMode::Paced) does not burst its initial window: it
// slices cwnd_0 into MSS-sized slots and spreads them over a fraction of
// the handshake RTT, with per-gap jitter drawn from a seeded stream. The
// schedule is a pure function of (IwConfig, mss, rtt, rto_deadline, seed),
// so the same connection replays byte- and time-identically — the property
// the fuzz driver (tests/fuzz/fuzz_pacing_schedule.cpp) and the scenario
// battery pin.
#pragma once

#include <cstdint>
#include <vector>

#include "netsim/event_loop.hpp"
#include "tcpstack/config.hpp"

namespace iwscan::tcp {

struct PacingSlot {
  sim::SimTime offset{};    // delay from the first flight's start
  std::uint32_t bytes = 0;  // payload bytes released at this slot
};

/// Build the first-flight schedule for `iw` at effective segment size `mss`.
///
/// Invariants (for any inputs):
///   * deterministic in (iw, mss, rtt, rto_deadline, seed);
///   * the slot byte counts sum to exactly iw.initial_cwnd(mss);
///   * offsets are monotone non-decreasing and the first is zero;
///   * no offset lands at or past `rto_deadline` (the spread is capped at
///     9/10 of it), so pacing never races the sender's own RTO;
///   * Burst mode, a single-slot window, or a non-positive deadline yield
///     an all-zero-offset (burst) schedule.
[[nodiscard]] std::vector<PacingSlot> build_pacing_schedule(
    const IwConfig& iw, std::uint16_t mss, sim::SimTime rtt,
    sim::SimTime rto_deadline, std::uint64_t seed);

}  // namespace iwscan::tcp
