#include "tcpstack/host.hpp"

#include <utility>

#include "util/logging.hpp"
#include "util/rng.hpp"

namespace iwscan::tcp {

TcpHost::TcpHost(sim::Network& network, net::IPv4Address address, StackConfig config,
                 std::uint64_t seed)
    : network_(network), address_(address), config_(config), seed_(seed) {}

TcpHost::~TcpHost() {
  if (reap_event_ != sim::kNullEvent) network_.loop().cancel(reap_event_);
}

void TcpHost::listen(std::uint16_t port, AppFactory factory,
                     std::optional<StackConfig> config_override) {
  listeners_[port] = Listener{std::move(factory), std::move(config_override)};
}

void TcpHost::close_port(std::uint16_t port) { listeners_.erase(port); }

void TcpHost::handle_packet(net::PacketView bytes) {
  const auto datagram = net::decode_datagram(bytes);
  if (!datagram) return;  // corrupt on the wire; real stacks drop silently
  if (const auto* tcp = std::get_if<net::TcpSegment>(&*datagram)) {
    if (tcp->ip.dst != address_) return;
    on_tcp(*tcp);
  } else if (const auto* icmp = std::get_if<net::IcmpDatagram>(&*datagram)) {
    if (icmp->ip.dst != address_) return;
    on_icmp(*icmp);
  }
}

void TcpHost::on_tcp(const net::TcpSegment& segment) {
  const ConnKey key{segment.ip.src, segment.tcp.src_port, segment.tcp.dst_port};

  if (const auto it = connections_.find(key); it != connections_.end()) {
    it->second->on_segment(segment);
    return;
  }

  if (segment.tcp.has(net::kSyn) && !segment.tcp.has(net::kAck)) {
    const auto listener = listeners_.find(segment.tcp.dst_port);
    if (listener == listeners_.end()) {
      if (config_.reset_on_closed_port) send_reset_for(segment);
      return;
    }
    auto app = listener->second.factory(segment.ip.src, segment.tcp.src_port);
    const StackConfig& conn_config =
        listener->second.config_override.value_or(config_);
    // ISN derived deterministically from the 4-tuple; good enough for a
    // simulation (no off-path attacker to defend against).
    const std::uint32_t isn = static_cast<std::uint32_t>(util::mix64(
        seed_, (std::uint64_t{segment.ip.src.value()} << 32) |
                   (std::uint64_t{segment.tcp.src_port} << 16) | segment.tcp.dst_port));
    auto connection = std::make_unique<TcpConnection>(
        network_.loop(), conn_config, address_, segment.tcp.dst_port, segment.ip.src,
        segment.tcp.src_port, segment, isn, std::move(app),
        [this](net::TcpSegment&& out) { transmit(std::move(out)); },
        [this, key](TcpConnection&) {
          // Move to the graveyard; the connection may be deep in its own
          // call stack right now.
          if (auto node = connections_.extract(key); !node.empty()) {
            graveyard_.push_back(std::move(node.mapped()));
            if (reap_event_ == sim::kNullEvent) {
              reap_event_ = network_.loop().schedule(sim::SimTime::zero(),
                                                     [this] { reap_graveyard(); });
            }
          }
        });
    connections_.emplace(key, std::move(connection));
    return;
  }

  // Non-SYN segment for an unknown connection (e.g. late packet after the
  // connection aborted): answer with RST as real stacks do.
  if (!segment.tcp.has(net::kRst)) send_reset_for(segment);
}

void TcpHost::send_reset_for(const net::TcpSegment& offending) {
  net::TcpSegment rst;
  rst.ip.src = address_;
  rst.ip.dst = offending.ip.src;
  rst.ip.ttl = 64;
  rst.tcp.src_port = offending.tcp.dst_port;
  rst.tcp.dst_port = offending.tcp.src_port;
  if (offending.tcp.has(net::kAck)) {
    rst.tcp.seq = offending.tcp.ack;
    rst.tcp.flags = net::kRst;
  } else {
    rst.tcp.seq = 0;
    rst.tcp.ack = offending.tcp.seq + offending.seq_length();
    rst.tcp.flags = net::kRst | net::kAck;
  }
  transmit(std::move(rst));
}

void TcpHost::on_icmp(const net::IcmpDatagram& datagram) {
  if (!icmp_echo_ || datagram.icmp.type != net::IcmpType::Echo) return;
  net::IcmpDatagram reply;
  reply.ip.src = address_;
  reply.ip.dst = datagram.ip.src;
  reply.ip.ttl = 64;
  reply.icmp.type = net::IcmpType::EchoReply;
  reply.icmp.code = 0;
  reply.icmp.id_or_unused = datagram.icmp.id_or_unused;
  reply.icmp.seq_or_mtu = datagram.icmp.seq_or_mtu;
  reply.icmp.payload = datagram.icmp.payload;
  net::PacketBuf packet = network_.pool().acquire();
  net::encode_into(reply, packet.bytes());
  network_.send(std::move(packet));
}

void TcpHost::transmit(net::TcpSegment&& segment) {
  net::PacketBuf packet = network_.pool().acquire();
  net::encode_into(segment, packet.bytes());
  network_.send(std::move(packet));
}

void TcpHost::reap_graveyard() {
  reap_event_ = sim::kNullEvent;
  graveyard_.clear();
}

}  // namespace iwscan::tcp
