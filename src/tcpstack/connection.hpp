// Server-side TCP connection (RFC 793 subset + RFC 5681 slow start).
//
// This models the probed host's sender behaviour, which is everything the
// IW-inference method observes: SYN/ACK with its own MSS, an initial
// congestion window per IwConfig, slow-start growth on ACKs, RTO-driven
// retransmission of the first unacked segment, FIN only once the send
// buffer drained, and RST/idle-abort edge cases.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "netbase/packet.hpp"
#include "netsim/event_loop.hpp"
#include "tcpstack/config.hpp"
#include "util/bytes.hpp"

namespace iwscan::tcp {

class TcpConnection;

/// Per-connection application protocol handler (HTTP or TLS server logic).
class Application {
 public:
  virtual ~Application() = default;
  /// Three-way handshake completed.
  virtual void on_established(TcpConnection& conn) { (void)conn; }
  /// In-order payload bytes arrived.
  virtual void on_data(TcpConnection& conn, std::span<const std::uint8_t> data) = 0;
  /// Peer half-closed (FIN received).
  virtual void on_peer_close(TcpConnection& conn) { (void)conn; }
};

enum class TcpState {
  SynReceived,
  Established,
  FinWait1,   // our FIN sent, not yet acked
  FinWait2,   // our FIN acked, peer still open
  CloseWait,  // peer FIN received, app not yet closed
  LastAck,    // peer FIN received and our FIN sent
  Closed,
};

struct ConnectionStats {
  std::uint64_t segments_sent = 0;
  std::uint64_t segments_retransmitted = 0;
  std::uint64_t bytes_sent = 0;  // payload bytes, first transmissions only
};

class TcpConnection {
 public:
  using SendFn = std::function<void(net::TcpSegment&&)>;
  using ClosedFn = std::function<void(TcpConnection&)>;

  /// Constructed by TcpHost in response to a SYN; sends the SYN/ACK.
  TcpConnection(sim::EventLoop& loop, const StackConfig& config,
                net::IPv4Address local_addr, std::uint16_t local_port,
                net::IPv4Address remote_addr, std::uint16_t remote_port,
                const net::TcpSegment& syn, std::uint32_t initial_seq,
                std::unique_ptr<Application> app, SendFn send, ClosedFn on_closed);
  ~TcpConnection();

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  /// Segment addressed to this connection.
  void on_segment(const net::TcpSegment& segment);

  // --- Application API -----------------------------------------------
  /// Queue response bytes; transmission is governed by cwnd/rwnd.
  void send(std::span<const std::uint8_t> data);
  void send(std::string_view text) { send(util::as_bytes(text)); }
  /// Half-close after all queued data: FIN goes out once the buffer drains.
  void close();
  /// Abort with RST.
  void abort();
  /// Swap the initial-window policy before any payload has been sent — the
  /// per-vhost hook (same IP, different Host/SNI → different IwConfig).
  /// A no-op once the first flight started or the connection closed.
  void set_initial_window(const IwConfig& iw);

  // --- Introspection --------------------------------------------------
  [[nodiscard]] TcpState state() const noexcept { return state_; }
  [[nodiscard]] std::uint16_t mss() const noexcept { return mss_; }
  [[nodiscard]] std::uint32_t cwnd() const noexcept { return cwnd_; }
  [[nodiscard]] std::uint32_t bytes_in_flight() const noexcept;
  [[nodiscard]] bool send_buffer_empty() const noexcept {
    return unsent_bytes() == 0;
  }
  [[nodiscard]] const ConnectionStats& stats() const noexcept { return stats_; }
  [[nodiscard]] net::IPv4Address remote_addr() const noexcept { return remote_addr_; }
  [[nodiscard]] std::uint16_t remote_port() const noexcept { return remote_port_; }
  [[nodiscard]] std::uint16_t local_port() const noexcept { return local_port_; }
  [[nodiscard]] sim::EventLoop& loop() noexcept { return loop_; }
  /// MSS the peer announced in its SYN before OS clamping (0 = none).
  [[nodiscard]] std::uint16_t peer_announced_mss() const noexcept {
    return peer_announced_mss_;
  }

 private:
  void handle_ack(const net::TcpSegment& segment);
  void handle_payload(const net::TcpSegment& segment);
  void try_send();
  void start_paced_first_flight();
  void on_pacing_slot(std::size_t index);
  void emit_paced_chunk(std::uint32_t chunk_bytes, bool last_slot);
  void cancel_pacing();
  void emit_segment(std::uint32_t seq, std::span<const std::uint8_t> payload,
                    std::uint8_t flags, bool retransmission);
  void send_pure_ack();
  void send_syn_ack();
  void send_rst(std::uint32_t seq);
  void arm_retransmit();
  void on_retransmit_timeout();
  void touch_idle_timer();
  void on_idle_timeout();
  void enter_closed();
  [[nodiscard]] std::uint32_t unsent_bytes() const noexcept;
  [[nodiscard]] std::uint32_t send_window() const noexcept;

  sim::EventLoop& loop_;
  StackConfig config_;
  net::IPv4Address local_addr_;
  std::uint16_t local_port_;
  net::IPv4Address remote_addr_;
  std::uint16_t remote_port_;
  std::unique_ptr<Application> app_;
  SendFn send_fn_;
  ClosedFn on_closed_;

  TcpState state_ = TcpState::SynReceived;
  std::uint16_t mss_ = 536;             // effective segment size toward peer
  std::uint16_t peer_announced_mss_ = 0;

  // Send side.
  std::uint32_t iss_ = 0;       // our initial sequence number
  std::uint32_t snd_una_ = 0;   // oldest unacknowledged sequence
  std::uint32_t snd_nxt_ = 0;   // next sequence to send (incl. FIN if sent)
  std::uint32_t cwnd_ = 0;      // congestion window, bytes
  std::uint32_t rwnd_ = 0;      // peer-advertised receive window
  net::Bytes buffer_;           // unacked + unsent payload bytes
  std::uint32_t buffer_start_seq_ = 0;  // seq of buffer_[0]
  bool fin_pending_ = false;    // app called close()
  bool fin_sent_ = false;
  // True while processing an incoming segment: app-initiated send()/close()
  // defer transmission so FIN can coalesce with the last data segment.
  bool in_segment_processing_ = false;

  // Receive side.
  std::uint32_t irs_ = 0;      // peer initial sequence number
  std::uint32_t rcv_nxt_ = 0;  // next expected peer sequence

  // Timers.
  sim::EventId retx_event_ = sim::kNullEvent;
  sim::EventId idle_event_ = sim::kNullEvent;
  sim::SimTime rto_{};
  int retx_count_ = 0;

  // First-flight pacing (PacingMode::Paced). The handshake RTT is measured
  // SYN/ACK → handshake ACK; slot timers release the initial window over
  // the schedule from build_pacing_schedule(). A data ACK or an RTO cancels
  // the remaining slots (the window is then governed by slow start / the
  // retransmit path as usual).
  sim::SimTime synack_sent_at_{};
  sim::SimTime handshake_rtt_{};
  std::vector<sim::EventId> pacing_events_;
  std::vector<std::uint32_t> pacing_slot_bytes_;
  std::size_t pacing_slots_total_ = 0;
  bool pacing_active_ = false;
  bool first_flight_started_ = false;

  ConnectionStats stats_;
};

}  // namespace iwscan::tcp
