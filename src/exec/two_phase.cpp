#include "exec/two_phase.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <deque>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <variant>

#include "exec/channel.hpp"
#include "exec/shard_plan.hpp"
#include "exec/thread_pool.hpp"
#include "store/spill.hpp"
#include "util/check.hpp"

namespace iwscan::exec {

namespace {

// Must stay distinct from StatelessSweep's address (SweepConfig default):
// the two tiers run as separate flows so phase 1 cannot perturb phase 2.
constexpr net::IPv4Address kScannerAddress{192, 0, 2, 1};
constexpr std::size_t kChannelCapacity = 1024;
/// Responsive hosts buffered between the sweep and the engine before
/// backpressure pauses the sweep's SYN pacing.
constexpr std::size_t kPromotionQueueCapacity = 1024;

struct TaggedRecord {
  std::uint64_t cycle = 0;
  core::HostScanRecord record;
};

struct SweepTagged {
  scan::SweepRecord record;  // carries its own cycle index
};

/// Capped mode only: this shard's sweep finished; the worker now blocks on
/// the global truncation threshold before starting phase 2.
struct PhaseOneDone {
  std::uint64_t shard = 0;
  scan::SweepStats stats;
  sim::SimTime duration{};
  /// This shard's responsive cycle indices, ascending. The aggregator
  /// merges them to name the K-th smallest index across shards — sweep
  /// records themselves never need to transit in spill mode.
  std::vector<std::uint64_t> responsive_cycles;
  std::string sweep_spill_file;  // spill mode only
};

struct ShardDone {
  std::uint64_t shard = 0;
  scan::EngineStats engine;
  scan::SweepStats sweep;  // zero in capped mode (reported via PhaseOneDone)
  sim::SimTime duration{};
  std::uint64_t promoted = 0;
  std::string spill_file;        // spill mode only: phase-2 host records
  std::string sweep_spill_file;  // spill mode, streaming only
};

using Message = std::variant<TaggedRecord, SweepTagged, PhaseOneDone, ShardDone>;

/// The live hand-off between the sweep and the engine (streaming mode).
/// Single-threaded by construction: both endpoints live on one event loop,
/// so push/next/close never race and need no lock.
class PromotionSource final : public scan::TargetSource {
 public:
  explicit PromotionSource(std::size_t capacity) : capacity_(capacity) {}

  [[nodiscard]] Pull next(net::IPv4Address& target, std::uint64_t& cycle) override {
    if (queue_.empty()) return closed_ ? Pull::Exhausted : Pull::Pending;
    target = queue_.front().first;
    cycle = queue_.front().second;
    queue_.pop_front();
    if (on_drain_) on_drain_();  // room again — un-throttle the sweep
    return Pull::Ready;
  }

  void set_wakeup(std::function<void()> wakeup) override {
    wakeup_ = std::move(wakeup);
  }

  void push(net::IPv4Address ip, std::uint64_t cycle) {
    queue_.emplace_back(ip, cycle);
    if (wakeup_) wakeup_();
  }

  /// No further pushes will ever happen (the sweep completed).
  void close() {
    closed_ = true;
    if (wakeup_) wakeup_();
  }

  [[nodiscard]] bool full() const noexcept { return queue_.size() >= capacity_; }

  void set_on_drain(std::function<void()> on_drain) {
    on_drain_ = std::move(on_drain);
  }

 private:
  std::deque<std::pair<net::IPv4Address, std::uint64_t>> queue_;
  std::size_t capacity_;
  bool closed_ = false;
  std::function<void()> wakeup_;
  std::function<void()> on_drain_;
};

/// Folds a cycle's sweep events (Responsive, then possibly Banner; or
/// Closed) into one SweepRecord per host.
class SweepCollector {
 public:
  void on_event(const scan::SweepEvent& event) {
    scan::SweepRecord& record = by_cycle_[event.cycle];
    record.cycle = event.cycle;
    record.ip = event.source;
    switch (event.kind) {
      case scan::SweepEventKind::Responsive:
        record.responsive = true;
        record.window = event.window;
        record.mss = event.mss;
        break;
      case scan::SweepEventKind::Closed:
        record.closed = true;
        break;
      case scan::SweepEventKind::Banner:
        record.banner_length = event.banner_length;
        record.banner = event.banner;
        break;
    }
  }

  [[nodiscard]] std::vector<scan::SweepRecord> take_sorted() {
    std::vector<scan::SweepRecord> records;
    records.reserve(by_cycle_.size());
    for (auto& [cycle, record] : by_cycle_) records.push_back(std::move(record));
    by_cycle_.clear();
    std::sort(records.begin(), records.end(),
              [](const scan::SweepRecord& a, const scan::SweepRecord& b) {
                return a.cycle < b.cycle;
              });
    return records;
  }

 private:
  std::unordered_map<std::uint64_t, scan::SweepRecord> by_cycle_;
};

void sort_by_cycle(std::vector<scan::SweepRecord>& records) {
  std::sort(records.begin(), records.end(),
            [](const scan::SweepRecord& a, const scan::SweepRecord& b) {
              return a.cycle < b.cycle;
            });
}

std::vector<core::HostScanRecord> sorted_records(std::vector<TaggedRecord> tagged) {
  std::sort(tagged.begin(), tagged.end(),
            [](const TaggedRecord& a, const TaggedRecord& b) { return a.cycle < b.cycle; });
  std::vector<core::HostScanRecord> records;
  records.reserve(tagged.size());
  for (TaggedRecord& entry : tagged) records.push_back(std::move(entry.record));
  return records;
}

scan::EngineConfig engine_config_for(const ScanJob& job, double rate_pps,
                                     std::size_t max_outstanding) {
  scan::EngineConfig config;
  config.scanner_address = kScannerAddress;
  config.rate_pps = rate_pps;
  config.max_outstanding = max_outstanding;
  config.seed = job.scan_seed;
  config.budget = job.budget;
  return config;
}

scan::SweepConfig sweep_config_for(const TwoPhaseJob& job, double rate_pps) {
  scan::SweepConfig config;  // scanner_address/source_port keep their defaults
  config.target_port = job.scan.probe.port;
  config.rate_pps = rate_pps;
  config.seed = job.scan.scan_seed;
  return config;
}

store::SpillConfig spill_config_for(const ScanJob& job, std::uint64_t global_shard,
                                    std::uint64_t global_total) {
  store::SpillConfig config;
  config.directory = job.spill_dir;
  config.segment_bytes = job.spill_segment_bytes;
  config.seed = job.scan_seed;
  config.shard = static_cast<std::uint32_t>(global_shard);
  config.total_shards = static_cast<std::uint32_t>(global_total);
  return config;
}

/// Closes a spill writer, treating an I/O failure (disk full, unwritable
/// directory) as fatal — the scan's records would otherwise be lost.
template <class Record>
std::string finish_spill(store::SpillWriter<Record>& writer) {
  const bool flushed = writer.close();
  if (!flushed) {
    std::fprintf(stderr, "iwscan: %s\n", writer.error().c_str());
  }
  IWSCAN_ASSERT(flushed, "spill write failed; see the error above");
  return writer.path();
}

/// Spills a finished shard's sweep records (already in cycle order) and
/// returns the file path.
std::string spill_sweep_records(const ScanJob& job, std::uint64_t global_shard,
                                std::uint64_t global_total,
                                const std::vector<scan::SweepRecord>& records) {
  store::SpillWriter<scan::SweepRecord> writer(
      spill_config_for(job, global_shard, global_total));
  for (const scan::SweepRecord& record : records) writer.append(record.cycle, record);
  return finish_spill(writer);
}

/// Promoted hosts awaiting phase 2, in cycle order: (target, cycle index).
using PromotionList = std::vector<scan::ListTargetSource::Entry>;

[[nodiscard]] PromotionList responsive_entries(
    const std::vector<scan::SweepRecord>& records) {
  PromotionList entries;
  for (const scan::SweepRecord& record : records) {
    if (record.responsive) entries.emplace_back(record.ip, record.cycle);
  }
  return entries;
}

struct SweepOutcome {
  std::vector<scan::SweepRecord> records;  // cycle order
  scan::SweepStats stats;
  sim::SimTime duration{};
};

/// Capped-mode phase 1: run this shard's sweep to completion, alone.
SweepOutcome run_sweep_phase(const TwoPhaseJob& job, sim::Network& network,
                             double sweep_rate, std::uint64_t shard,
                             std::uint64_t total_shards) {
  SweepOutcome outcome;
  scan::TargetGenerator targets(job.scan.allow, job.scan.block, job.scan.scan_seed,
                                job.scan.sample_fraction, shard, total_shards);
  SweepCollector collector;
  scan::StatelessSweep sweep(
      network, sweep_config_for(job, sweep_rate), std::move(targets),
      [&](const scan::SweepEvent& event) { collector.on_event(event); });
  const sim::SimTime start = network.loop().now();
  sweep.start();
  while (!sweep.done() && network.loop().step()) {
  }
  outcome.duration = network.loop().now() - start;
  outcome.records = collector.take_sorted();
  outcome.stats = sweep.stats();
  return outcome;
}

struct ListOutcome {
  scan::EngineStats stats;
  sim::SimTime duration{};
};

/// Phase 2 over a pre-resolved promotion list (capped mode), on the same
/// world the sweep ran on.
template <typename Sink>
ListOutcome run_list_phase(const ScanJob& job, sim::Network& network,
                           PromotionList entries, double rate_pps,
                           std::size_t max_outstanding,
                           std::atomic<std::uint64_t>& launched, Sink&& sink) {
  ListOutcome outcome;
  scan::ListTargetSource source(std::move(entries));
  std::unordered_map<net::IPv4Address, std::uint64_t> cycle_of;
  core::IwProbeModule module(job.probe, [&](const core::HostScanRecord& record) {
    const auto it = cycle_of.find(record.ip);
    sink(TaggedRecord{it == cycle_of.end() ? 0 : it->second, record});
  });
  scan::ScanEngine engine(network, engine_config_for(job, rate_pps, max_outstanding),
                          source, module);
  engine.set_launch_observer([&](net::IPv4Address ip, std::uint64_t cycle) {
    cycle_of[ip] = cycle;
    launched.fetch_add(1, std::memory_order_relaxed);
  });
  const sim::SimTime start = network.loop().now();
  engine.start();
  while (!engine.done() && network.loop().step()) {
  }
  outcome.duration = network.loop().now() - start;
  outcome.stats = engine.stats();
  return outcome;
}

struct StreamingOutcome {
  std::vector<scan::SweepRecord> sweep_records;  // cycle order
  scan::SweepStats sweep_stats;
  scan::EngineStats engine_stats;
  sim::SimTime duration{};
  std::uint64_t promoted = 0;
};

/// Streaming mode on one world: sweep and engine run concurrently on the
/// same event loop, coupled by a bounded promotion queue. Backpressure
/// flows sweep-ward only — a full queue pauses SYN pacing, a pop wakes it.
template <typename Sink>
StreamingOutcome run_streaming_world(const TwoPhaseJob& job, sim::Network& network,
                                     double sweep_rate, double engine_rate,
                                     std::size_t max_outstanding, std::uint64_t shard,
                                     std::uint64_t total_shards,
                                     std::atomic<std::uint64_t>& launched,
                                     Sink&& sink) {
  StreamingOutcome outcome;
  scan::TargetGenerator targets(job.scan.allow, job.scan.block, job.scan.scan_seed,
                                job.scan.sample_fraction, shard, total_shards);

  PromotionSource promoted(kPromotionQueueCapacity);
  SweepCollector collector;
  scan::StatelessSweep sweep(network, sweep_config_for(job, sweep_rate),
                             std::move(targets),
                             [&](const scan::SweepEvent& event) {
                               collector.on_event(event);
                               if (event.kind == scan::SweepEventKind::Responsive) {
                                 promoted.push(event.source, event.cycle);
                                 ++outcome.promoted;
                               }
                             });
  sweep.set_throttle([&promoted] { return promoted.full(); });
  promoted.set_on_drain([&sweep] { sweep.wake(); });
  sweep.set_on_complete([&promoted] { promoted.close(); });

  std::unordered_map<net::IPv4Address, std::uint64_t> cycle_of;
  core::IwProbeModule module(job.scan.probe, [&](const core::HostScanRecord& record) {
    const auto it = cycle_of.find(record.ip);
    sink(TaggedRecord{it == cycle_of.end() ? 0 : it->second, record});
  });
  scan::ScanEngine engine(network,
                          engine_config_for(job.scan, engine_rate, max_outstanding),
                          promoted, module);
  engine.set_launch_observer([&](net::IPv4Address ip, std::uint64_t cycle) {
    cycle_of[ip] = cycle;
    launched.fetch_add(1, std::memory_order_relaxed);
  });

  const sim::SimTime start = network.loop().now();
  sweep.start();
  engine.start();
  while ((!sweep.done() || !engine.done()) && network.loop().step()) {
  }
  outcome.duration = network.loop().now() - start;
  outcome.sweep_records = collector.take_sorted();
  outcome.sweep_stats = sweep.stats();
  outcome.engine_stats = engine.stats();
  return outcome;
}

/// Streaming worker: a private identically-seeded world per shard, tagged
/// records streamed into the aggregator's channel, sweep records delivered
/// in bulk once the shard finishes.
void run_streaming_shard(const TwoPhaseJob& job, const ShardSpec& spec,
                         double sweep_rate, std::uint64_t network_seed,
                         const sim::PathConfig& default_path,
                         const model::ModelConfig& model_config,
                         BoundedChannel<Message>& channel,
                         std::atomic<std::uint64_t>& launched) {
  sim::EventLoop loop;
  sim::Network network(loop, network_seed);
  network.set_default_path(default_path);
  model::InternetModel internet(network, model_config);
  internet.install();

  const std::uint64_t global_total = job.scan.process_shards * spec.total_shards;
  const std::uint64_t global_shard =
      job.scan.process_shard + job.scan.process_shards * spec.shard;
  std::optional<store::SpillWriter<core::HostScanRecord>> spill;
  if (!job.scan.spill_dir.empty()) {
    spill.emplace(spill_config_for(job.scan, global_shard, global_total));
  }

  StreamingOutcome outcome = run_streaming_world(
      job, network, sweep_rate, spec.rate_pps, spec.max_outstanding, global_shard,
      global_total, launched, [&](TaggedRecord record) {
        if (spill.has_value()) {
          spill->append(record.cycle, record.record);
        } else {
          channel.push(std::move(record));
        }
      });
  ShardDone done{spec.shard,        outcome.engine_stats, outcome.sweep_stats,
                 outcome.duration,  outcome.promoted,     {},
                 {}};
  if (spill.has_value()) {
    done.spill_file = finish_spill(*spill);
    done.sweep_spill_file =
        spill_sweep_records(job.scan, global_shard, global_total, outcome.sweep_records);
  } else {
    for (scan::SweepRecord& record : outcome.sweep_records) {
      channel.push(SweepTagged{std::move(record)});
    }
  }
  channel.push(std::move(done));
}

/// Capped worker: sweep this shard, report, block on the globally computed
/// truncation threshold, then run phase 2 on the same world. Stride
/// sharding means every promoted cycle this shard keeps is one it swept.
void run_capped_shard(const TwoPhaseJob& job, const ShardSpec& spec,
                      double sweep_rate, std::uint64_t network_seed,
                      const sim::PathConfig& default_path,
                      const model::ModelConfig& model_config,
                      BoundedChannel<Message>& channel,
                      std::atomic<std::uint64_t>& launched,
                      BoundedChannel<std::uint64_t>& threshold_channel) {
  sim::EventLoop loop;
  sim::Network network(loop, network_seed);
  network.set_default_path(default_path);
  model::InternetModel internet(network, model_config);
  internet.install();

  const std::uint64_t global_total = job.scan.process_shards * spec.total_shards;
  const std::uint64_t global_shard =
      job.scan.process_shard + job.scan.process_shards * spec.shard;
  const bool spilling = !job.scan.spill_dir.empty();

  SweepOutcome sweep_out =
      run_sweep_phase(job, network, sweep_rate, global_shard, global_total);
  PromotionList entries = responsive_entries(sweep_out.records);
  PhaseOneDone phase1{spec.shard, sweep_out.stats, sweep_out.duration, {}, {}};
  phase1.responsive_cycles.reserve(entries.size());
  for (const scan::ListTargetSource::Entry& entry : entries) {
    phase1.responsive_cycles.push_back(entry.second);
  }
  if (spilling) {
    phase1.sweep_spill_file =
        spill_sweep_records(job.scan, global_shard, global_total, sweep_out.records);
  } else {
    for (scan::SweepRecord& record : sweep_out.records) {
      channel.push(SweepTagged{std::move(record)});
    }
  }
  channel.push(std::move(phase1));

  // Barrier: the aggregator needs every shard's responsive set before it
  // can name the K-th smallest cycle index. A closed channel (early
  // shutdown) degrades to "keep everything".
  const std::uint64_t threshold =
      threshold_channel.pop().value_or(std::numeric_limits<std::uint64_t>::max());
  std::erase_if(entries, [threshold](const scan::ListTargetSource::Entry& entry) {
    return entry.second > threshold;
  });
  const std::uint64_t promoted = entries.size();

  std::optional<store::SpillWriter<core::HostScanRecord>> spill;
  if (spilling) spill.emplace(spill_config_for(job.scan, global_shard, global_total));
  ListOutcome phase2 = run_list_phase(
      job.scan, network, std::move(entries), spec.rate_pps, spec.max_outstanding,
      launched, [&](TaggedRecord record) {
        if (spill.has_value()) {
          spill->append(record.cycle, record.record);
        } else {
          channel.push(std::move(record));
        }
      });
  ShardDone done{spec.shard, phase2.stats, {}, phase2.duration, promoted, {}, {}};
  if (spill.has_value()) done.spill_file = finish_spill(*spill);
  channel.push(std::move(done));
}

}  // namespace

TwoPhaseResult TwoPhaseRunner::run(sim::Network& network,
                                   model::InternetModel& internet) {
  TwoPhaseResult result;
  {
    scan::TargetGenerator probe(job_.scan.allow, job_.scan.block, job_.scan.scan_seed,
                                job_.scan.sample_fraction);
    result.address_space = probe.address_space_size();
  }

  const bool capped = job_.max_promoted_hosts > 0;
  const bool spilling = !job_.scan.spill_dir.empty();
  std::atomic<std::uint64_t> launched{0};
  std::vector<TaggedRecord> tagged;
  std::uint64_t merged = 0;

  // shards<=1 only: the single-world paths below sink records straight into
  // this writer; shards>1 workers own per-shard writers instead.
  std::optional<store::SpillWriter<core::HostScanRecord>> host_spill;
  if (spilling && job_.scan.shards <= 1) {
    host_spill.emplace(spill_config_for(job_.scan, job_.scan.process_shard,
                                        job_.scan.process_shards));
  }

  auto emit_progress = [&](std::uint64_t shards_done, std::uint64_t shards_total) {
    if (!job_.scan.progress) return;
    ProgressSnapshot snap;
    snap.targets_started = launched.load(std::memory_order_relaxed);
    snap.records_merged = merged;
    snap.outstanding = snap.targets_started - snap.records_merged;
    snap.shards_done = shards_done;
    snap.shards_total = shards_total;
    job_.scan.progress(snap);
  };
  auto record_sink = [&](TaggedRecord record) {
    if (host_spill.has_value()) {
      host_spill->append(record.cycle, record.record);
    } else {
      tagged.push_back(std::move(record));
    }
    ++merged;
    if (job_.scan.progress_interval > 0 && merged % job_.scan.progress_interval == 0) {
      emit_progress(0, std::max<std::uint64_t>(job_.scan.shards, 1));
    }
  };

  if (job_.scan.shards <= 1) {
    if (capped) {
      SweepOutcome sweep_out =
          run_sweep_phase(job_, network, job_.sweep_rate_pps,
                          job_.scan.process_shard, job_.scan.process_shards);
      PromotionList entries = responsive_entries(sweep_out.records);
      const std::uint64_t responsive = entries.size();
      if (responsive > job_.max_promoted_hosts) {
        entries.resize(job_.max_promoted_hosts);  // cycle order: lowest win
      }
      result.truncated = responsive - entries.size();
      result.promoted = entries.size();
      if (spilling) {
        result.sweep_spill_files.push_back(
            spill_sweep_records(job_.scan, job_.scan.process_shard,
                                job_.scan.process_shards, sweep_out.records));
      } else {
        result.sweep_records = std::move(sweep_out.records);
      }
      result.sweep = sweep_out.stats;
      ListOutcome phase2 =
          run_list_phase(job_.scan, network, std::move(entries), job_.scan.rate_pps,
                         job_.scan.max_outstanding, launched, record_sink);
      result.engine = phase2.stats;
      result.duration = sweep_out.duration + phase2.duration;
    } else {
      StreamingOutcome outcome = run_streaming_world(
          job_, network, job_.sweep_rate_pps, job_.scan.rate_pps,
          job_.scan.max_outstanding, job_.scan.process_shard,
          job_.scan.process_shards, launched, record_sink);
      if (spilling) {
        result.sweep_spill_files.push_back(
            spill_sweep_records(job_.scan, job_.scan.process_shard,
                                job_.scan.process_shards, outcome.sweep_records));
      } else {
        result.sweep_records = std::move(outcome.sweep_records);
      }
      result.sweep = outcome.sweep_stats;
      result.engine = outcome.engine_stats;
      result.duration = outcome.duration;
      result.promoted = outcome.promoted;
    }
    if (host_spill.has_value()) {
      result.spill_files.push_back(finish_spill(*host_spill));
    } else {
      result.records = sorted_records(std::move(tagged));
    }
    emit_progress(1, 1);
    return result;
  }

  const ShardPlan plan =
      ShardPlan::make(job_.scan.shards, job_.scan.rate_pps, job_.scan.max_outstanding);
  const std::uint64_t shard_count = plan.shards.size();
  const double sweep_rate =
      job_.sweep_rate_pps / static_cast<double>(shard_count);
  const std::uint64_t network_seed = network.seed();
  const sim::PathConfig default_path = network.default_path();
  const model::ModelConfig model_config = internet.config();

  BoundedChannel<Message> channel(kChannelCapacity);
  // Capped mode: one single-slot reply channel per shard carries the
  // globally computed truncation threshold back to the worker after the
  // phase-1 barrier (BoundedChannel is the repo's only sanctioned
  // cross-thread hand-off; see DESIGN.md §9).
  std::vector<std::unique_ptr<BoundedChannel<std::uint64_t>>> threshold_channels;
  if (capped) {
    threshold_channels.reserve(shard_count);
    for (std::uint64_t i = 0; i < shard_count; ++i) {
      threshold_channels.push_back(std::make_unique<BoundedChannel<std::uint64_t>>(1));
    }
  }

  // Capped mode holds a mid-task barrier (the threshold pop) in every
  // worker, so all shards must be able to run concurrently — one thread
  // each, not capped at hardware concurrency. Workers mostly sleep in
  // virtual time, so oversubscription is harmless.
  ThreadPool pool(capped ? shard_count
                         : std::min<std::size_t>(
                               shard_count,
                               std::max<std::size_t>(
                                   1, std::thread::hardware_concurrency())));
  for (const ShardSpec& spec : plan.shards) {
    pool.submit([this, spec, sweep_rate, network_seed, default_path, model_config,
                 &channel, &launched, &threshold_channels, capped] {
      if (capped) {
        run_capped_shard(job_, spec, sweep_rate, network_seed, default_path,
                         model_config, channel, launched,
                         *threshold_channels[spec.shard]);
      } else {
        run_streaming_shard(job_, spec, sweep_rate, network_seed, default_path,
                            model_config, channel, launched);
      }
    });
  }

  std::vector<scan::SweepRecord> sweep_records;
  std::vector<std::string> host_spills(shard_count);
  std::vector<std::string> sweep_spills(shard_count);
  sim::SimTime phase1_duration{};
  sim::SimTime phase2_duration{};
  std::uint64_t shards_done = 0;

  if (capped) {
    // Phase-1 barrier: collect every shard's responsive set (as cycle
    // indices — the sweep records themselves stay on disk in spill mode)
    // before truncating.
    std::vector<std::uint64_t> responsive_cycles;
    std::uint64_t phase1_done = 0;
    while (phase1_done < shard_count) {
      auto message = channel.pop();
      if (!message) break;  // closed early — unreachable in normal operation
      if (auto* sweep_record = std::get_if<SweepTagged>(&*message)) {
        sweep_records.push_back(std::move(sweep_record->record));
      } else if (auto* fin = std::get_if<PhaseOneDone>(&*message)) {
        result.sweep += fin->stats;
        phase1_duration = std::max(phase1_duration, fin->duration);
        responsive_cycles.insert(responsive_cycles.end(),
                                 fin->responsive_cycles.begin(),
                                 fin->responsive_cycles.end());
        sweep_spills[fin->shard] = std::move(fin->sweep_spill_file);
        ++phase1_done;
      }
    }
    sort_by_cycle(sweep_records);
    // Cycle indices are globally unique, so after sorting the merged
    // responsive set, index K-1 carries exactly the K-th smallest index.
    std::sort(responsive_cycles.begin(), responsive_cycles.end());
    const std::uint64_t responsive = responsive_cycles.size();
    const std::uint64_t threshold =
        responsive >= job_.max_promoted_hosts
            ? responsive_cycles[job_.max_promoted_hosts - 1]
            : std::numeric_limits<std::uint64_t>::max();
    result.promoted = std::min<std::uint64_t>(responsive, job_.max_promoted_hosts);
    result.truncated = responsive - result.promoted;
    for (auto& reply : threshold_channels) reply->push(threshold);

    while (shards_done < shard_count) {
      auto message = channel.pop();
      if (!message) break;
      if (auto* record = std::get_if<TaggedRecord>(&*message)) {
        record_sink(std::move(*record));
      } else if (auto* fin = std::get_if<ShardDone>(&*message)) {
        result.engine += fin->engine;
        phase2_duration = std::max(phase2_duration, fin->duration);
        host_spills[fin->shard] = std::move(fin->spill_file);
        ++shards_done;
        emit_progress(shards_done, shard_count);
      }
    }
  } else {
    while (shards_done < shard_count) {
      auto message = channel.pop();
      if (!message) break;
      if (auto* record = std::get_if<TaggedRecord>(&*message)) {
        record_sink(std::move(*record));
      } else if (auto* sweep_record = std::get_if<SweepTagged>(&*message)) {
        sweep_records.push_back(std::move(sweep_record->record));
      } else if (auto* fin = std::get_if<ShardDone>(&*message)) {
        result.engine += fin->engine;
        result.sweep += fin->sweep;
        result.promoted += fin->promoted;
        phase1_duration = std::max(phase1_duration, fin->duration);
        host_spills[fin->shard] = std::move(fin->spill_file);
        sweep_spills[fin->shard] = std::move(fin->sweep_spill_file);
        ++shards_done;
        emit_progress(shards_done, shard_count);
      }
    }
    sort_by_cycle(sweep_records);
  }
  pool.wait();
  channel.close();

  for (std::string& path : host_spills) {  // fixed shard order
    if (!path.empty()) result.spill_files.push_back(std::move(path));
  }
  for (std::string& path : sweep_spills) {
    if (!path.empty()) result.sweep_spill_files.push_back(std::move(path));
  }
  result.sweep_records = std::move(sweep_records);
  result.records = sorted_records(std::move(tagged));
  result.duration = phase1_duration + phase2_duration;
  return result;
}

}  // namespace iwscan::exec
