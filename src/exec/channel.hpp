// Bounded multi-producer single-consumer channel.
//
// The hand-off between shard workers and the merge aggregator in the
// parallel scan executor (see parallel_runner.hpp): workers block when the
// aggregator falls behind (bounded memory, like the engine's own
// max_outstanding backpressure), and the aggregator blocks when no results
// are pending. Closing wakes everyone; a closed channel drains remaining
// items before reporting exhaustion, so no record is ever lost.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace iwscan::exec {

template <typename T>
class BoundedChannel {
 public:
  explicit BoundedChannel(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedChannel(const BoundedChannel&) = delete;
  BoundedChannel& operator=(const BoundedChannel&) = delete;

  /// Blocks while the channel is full. Returns false (dropping `value`)
  /// if the channel was closed.
  bool push(T value) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [this] { return queue_.size() < capacity_ || closed_; });
    if (closed_) return false;
    queue_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while the channel is empty and open. Returns nullopt once the
  /// channel is closed *and* fully drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [this] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Unblocks all producers and consumers. Queued items remain poppable.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

 private:
  std::size_t capacity_;
  std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace iwscan::exec
