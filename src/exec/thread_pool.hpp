// Fixed-size worker thread pool.
//
// The only place in the codebase that spawns threads: shard workers of the
// parallel scan executor run here, each driving a private virtual-time
// event loop. Pool scheduling affects wall-clock timing only — never scan
// output, which is made order-independent upstream (per-target draws,
// per-flow impairment RNGs) and re-ordered deterministically downstream
// (cycle-index merge in ParallelScanRunner).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace iwscan::exec {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least one).
  explicit ThreadPool(std::size_t threads);
  /// Waits for queued work to drain, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; runs on some worker thread.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable all_idle_;
  std::size_t running_ = 0;
  bool stop_ = false;
};

}  // namespace iwscan::exec
