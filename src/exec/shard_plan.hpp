// Shard planning: how one logical scan is split across worker threads.
//
// Shards partition the permutation cycle by stride (shard k of n visits
// indices k, k+n, k+2n, … — exactly ZMap's multi-scanner sharding), so
// every shard shares the same allowlist/blocklist/seed verbatim and the
// partition is disjoint by construction. What *is* divided is the resource
// budget: each worker gets an equal slice of the global packet rate and of
// the outstanding-session cap, so shards=N never exceeds the footprint the
// caller configured for shards=1.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace iwscan::exec {

struct ShardSpec {
  std::uint64_t shard = 0;
  std::uint64_t total_shards = 1;
  double rate_pps = 0;             // this worker's share of the global rate
  std::size_t max_outstanding = 1; // this worker's share of the session cap
};

struct ShardPlan {
  std::vector<ShardSpec> shards;

  /// Divides the global rate and session budget evenly over `total_shards`
  /// workers (at least one; per-shard max_outstanding at least one).
  [[nodiscard]] static ShardPlan make(std::uint64_t total_shards, double rate_pps,
                                      std::size_t max_outstanding);
};

}  // namespace iwscan::exec
