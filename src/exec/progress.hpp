// Live progress reporting for parallel scans.
//
// The aggregator thread of ParallelScanRunner invokes the callback
// periodically (every `progress_interval` merged records, and whenever a
// shard completes) with a consistent snapshot. Counters are cumulative
// across all shards; the callback always runs on the thread that called
// ParallelScanRunner::run, never on a worker.
#pragma once

#include <cstdint>
#include <functional>

namespace iwscan::exec {

struct ProgressSnapshot {
  std::uint64_t targets_started = 0;  // probe sessions launched, all shards
  std::uint64_t records_merged = 0;   // host records the aggregator has taken
  std::uint64_t outstanding = 0;      // started but not yet merged
  std::uint64_t shards_done = 0;
  std::uint64_t shards_total = 0;
};

using ProgressFn = std::function<void(const ProgressSnapshot&)>;

}  // namespace iwscan::exec
