#include "exec/parallel_runner.hpp"

#include <algorithm>
#include <atomic>
#include <thread>
#include <unordered_map>
#include <utility>
#include <variant>

#include "exec/channel.hpp"
#include "exec/shard_plan.hpp"
#include "exec/thread_pool.hpp"

namespace iwscan::exec {

namespace {

constexpr net::IPv4Address kScannerAddress{192, 0, 2, 1};
constexpr std::size_t kChannelCapacity = 1024;

struct TaggedRecord {
  std::uint64_t cycle = 0;  // global permutation-cycle index of the target
  core::HostScanRecord record;
};

struct ShardDone {
  std::uint64_t shard = 0;
  scan::EngineStats stats;
  sim::SimTime duration{};
};

using Message = std::variant<TaggedRecord, ShardDone>;

std::vector<core::HostScanRecord> sorted_records(std::vector<TaggedRecord> tagged) {
  // Cycle indices are unique across shards (shard k of n owns exactly the
  // indices ≡ k mod n), so this recovers the shards=1 emission order.
  std::sort(tagged.begin(), tagged.end(),
            [](const TaggedRecord& a, const TaggedRecord& b) { return a.cycle < b.cycle; });
  std::vector<core::HostScanRecord> records;
  records.reserve(tagged.size());
  for (const TaggedRecord& entry : tagged) records.push_back(entry.record);
  return records;
}

scan::EngineConfig engine_config_for(const ScanJob& job, double rate_pps,
                                     std::size_t max_outstanding) {
  scan::EngineConfig config;
  config.scanner_address = kScannerAddress;
  config.rate_pps = rate_pps;
  config.max_outstanding = max_outstanding;
  config.seed = job.scan_seed;
  config.budget = job.budget;
  return config;
}

/// shards<=1: the classic single-loop path, on the caller's world. Records
/// are still emitted in cycle order so the output shape matches shards>1.
ScanResult run_single(const ScanJob& job, sim::Network& network) {
  ScanResult result;
  scan::TargetGenerator targets(job.allow, job.block, job.scan_seed,
                                job.sample_fraction);
  result.address_space = targets.address_space_size();

  std::unordered_map<net::IPv4Address, std::uint64_t> cycle_of;
  std::vector<TaggedRecord> tagged;
  std::uint64_t launched = 0;
  auto emit_progress = [&](std::uint64_t shards_done) {
    if (!job.progress) return;
    ProgressSnapshot snap;
    snap.targets_started = launched;
    snap.records_merged = tagged.size();
    snap.outstanding = launched - tagged.size();
    snap.shards_done = shards_done;
    snap.shards_total = 1;
    job.progress(snap);
  };

  core::IwProbeModule module(job.probe, [&](const core::HostScanRecord& record) {
    const auto it = cycle_of.find(record.ip);
    tagged.push_back({it == cycle_of.end() ? 0 : it->second, record});
    if (job.progress_interval > 0 && tagged.size() % job.progress_interval == 0) {
      emit_progress(0);
    }
  });

  scan::ScanEngine engine(network, engine_config_for(job, job.rate_pps, job.max_outstanding),
                          std::move(targets), module);
  engine.set_launch_observer([&](net::IPv4Address ip, std::uint64_t cycle) {
    cycle_of[ip] = cycle;
    ++launched;
  });

  const sim::SimTime start = network.loop().now();
  engine.start();
  while (!engine.done() && network.loop().step()) {
  }
  result.duration = network.loop().now() - start;
  result.engine = engine.stats();
  result.records = sorted_records(std::move(tagged));
  emit_progress(1);
  return result;
}

/// One worker: a private world seeded identically to the reference one,
/// scanning shard `spec.shard` of `spec.total_shards` and streaming tagged
/// records into the aggregator's channel. Runs entirely in virtual time.
void run_shard(const ScanJob& job, const ShardSpec& spec, std::uint64_t network_seed,
               const sim::PathConfig& default_path, const model::ModelConfig& model_config,
               BoundedChannel<Message>& channel, std::atomic<std::uint64_t>& launched) {
  sim::EventLoop loop;
  sim::Network network(loop, network_seed);
  network.set_default_path(default_path);
  model::InternetModel internet(network, model_config);
  internet.install();

  scan::TargetGenerator targets(job.allow, job.block, job.scan_seed,
                                job.sample_fraction, spec.shard, spec.total_shards);

  std::unordered_map<net::IPv4Address, std::uint64_t> cycle_of;
  core::IwProbeModule module(job.probe, [&](const core::HostScanRecord& record) {
    const auto it = cycle_of.find(record.ip);
    channel.push(TaggedRecord{it == cycle_of.end() ? 0 : it->second, record});
  });

  scan::ScanEngine engine(network,
                          engine_config_for(job, spec.rate_pps, spec.max_outstanding),
                          std::move(targets), module);
  engine.set_launch_observer([&](net::IPv4Address ip, std::uint64_t cycle) {
    cycle_of[ip] = cycle;
    launched.fetch_add(1, std::memory_order_relaxed);
  });

  const sim::SimTime start = loop.now();
  engine.start();
  while (!engine.done() && loop.step()) {
  }
  channel.push(ShardDone{spec.shard, engine.stats(), loop.now() - start});
}

}  // namespace

ScanResult ParallelScanRunner::run(sim::Network& network, model::InternetModel& internet) {
  if (job_.shards <= 1) return run_single(job_, network);

  ScanResult result;
  {
    // The same normalized allowlist every shard iterates; sized once here.
    scan::TargetGenerator probe(job_.allow, job_.block, job_.scan_seed,
                                job_.sample_fraction);
    result.address_space = probe.address_space_size();
  }

  const ShardPlan plan = ShardPlan::make(job_.shards, job_.rate_pps, job_.max_outstanding);
  const std::uint64_t shard_count = plan.shards.size();
  const std::uint64_t network_seed = network.seed();
  const sim::PathConfig default_path = network.default_path();
  const model::ModelConfig model_config = internet.config();

  BoundedChannel<Message> channel(kChannelCapacity);
  std::atomic<std::uint64_t> launched{0};

  ThreadPool pool(std::min<std::size_t>(
      shard_count, std::max<std::size_t>(1, std::thread::hardware_concurrency())));
  for (const ShardSpec& spec : plan.shards) {
    pool.submit([this, spec, network_seed, default_path, model_config, &channel,
                 &launched] {
      run_shard(job_, spec, network_seed, default_path, model_config, channel, launched);
    });
  }

  // Aggregate on the calling thread: drain the channel until every shard
  // has reported completion, then merge in deterministic order.
  std::vector<TaggedRecord> tagged;
  std::vector<ShardDone> done(shard_count);
  std::uint64_t shards_done = 0;
  auto emit_progress = [&] {
    if (!job_.progress) return;
    ProgressSnapshot snap;
    snap.targets_started = launched.load(std::memory_order_relaxed);
    snap.records_merged = tagged.size();
    snap.outstanding = snap.targets_started - snap.records_merged;
    snap.shards_done = shards_done;
    snap.shards_total = shard_count;
    job_.progress(snap);
  };

  while (shards_done < shard_count) {
    auto message = channel.pop();
    if (!message) break;  // closed early — unreachable in normal operation
    if (auto* record = std::get_if<TaggedRecord>(&*message)) {
      tagged.push_back(std::move(*record));
      if (job_.progress_interval > 0 && tagged.size() % job_.progress_interval == 0) {
        emit_progress();
      }
    } else {
      const ShardDone& fin = std::get<ShardDone>(*message);
      done[fin.shard] = fin;
      ++shards_done;
      emit_progress();
    }
  }
  pool.wait();
  channel.close();

  for (const ShardDone& fin : done) {  // fixed shard order, schedule-independent
    result.engine += fin.stats;
    result.duration = std::max(result.duration, fin.duration);
  }
  result.records = sorted_records(std::move(tagged));
  return result;
}

}  // namespace iwscan::exec
