#include "exec/parallel_runner.hpp"

#include <algorithm>
#include <atomic>
#include <optional>
#include <thread>
#include <unordered_map>
#include <utility>
#include <variant>

#include "exec/channel.hpp"
#include "exec/shard_plan.hpp"
#include "exec/thread_pool.hpp"
#include "store/spill.hpp"
#include "util/check.hpp"

namespace iwscan::exec {

namespace {

constexpr net::IPv4Address kScannerAddress{192, 0, 2, 1};
constexpr std::size_t kChannelCapacity = 1024;

struct TaggedRecord {
  std::uint64_t cycle = 0;  // global permutation-cycle index of the target
  core::HostScanRecord record;
};

struct ShardDone {
  std::uint64_t shard = 0;
  scan::EngineStats stats;
  sim::SimTime duration{};
  std::string spill_file;  // spill mode only
};

using Message = std::variant<TaggedRecord, ShardDone>;

std::vector<core::HostScanRecord> sorted_records(std::vector<TaggedRecord> tagged) {
  // Cycle indices are unique across shards (shard k of n owns exactly the
  // indices ≡ k mod n), so this recovers the shards=1 emission order.
  std::sort(tagged.begin(), tagged.end(),
            [](const TaggedRecord& a, const TaggedRecord& b) { return a.cycle < b.cycle; });
  std::vector<core::HostScanRecord> records;
  records.reserve(tagged.size());
  for (const TaggedRecord& entry : tagged) records.push_back(entry.record);
  return records;
}

scan::EngineConfig engine_config_for(const ScanJob& job, double rate_pps,
                                     std::size_t max_outstanding) {
  scan::EngineConfig config;
  config.scanner_address = kScannerAddress;
  config.rate_pps = rate_pps;
  config.max_outstanding = max_outstanding;
  config.seed = job.scan_seed;
  config.budget = job.budget;
  return config;
}

/// Upper bound on the records this process can emit: its slice of the
/// allowlist (ceil over process shards), scaled by the sample fraction.
/// Used to pre-size the merge vector so the record path never reallocates
/// mid-scan (pinned in tests/alloc_budget_test.cpp).
std::size_t expected_records(const ScanJob& job, std::uint64_t address_space) {
  const std::uint64_t shards = std::max<std::uint64_t>(job.process_shards, 1);
  const std::uint64_t per_process = (address_space + shards - 1) / shards;
  if (job.sample_fraction >= 1.0) return static_cast<std::size_t>(per_process);
  return static_cast<std::size_t>(static_cast<double>(per_process) *
                                  job.sample_fraction) +
         1;
}

store::SpillConfig spill_config_for(const ScanJob& job, std::uint64_t global_shard,
                                    std::uint64_t global_total) {
  store::SpillConfig config;
  config.directory = job.spill_dir;
  config.segment_bytes = job.spill_segment_bytes;
  config.seed = job.scan_seed;
  config.shard = static_cast<std::uint32_t>(global_shard);
  config.total_shards = static_cast<std::uint32_t>(global_total);
  return config;
}

/// Closes a spill writer, treating an I/O failure (disk full, unwritable
/// directory) as fatal — the scan's records would otherwise be lost.
template <class Record>
std::string finish_spill(store::SpillWriter<Record>& writer) {
  const bool flushed = writer.close();
  if (!flushed) {
    std::fprintf(stderr, "iwscan: %s\n", writer.error().c_str());
  }
  IWSCAN_ASSERT(flushed, "spill write failed; see the error above");
  return writer.path();
}

/// shards<=1: the classic single-loop path, on the caller's world. Records
/// are still emitted in cycle order so the output shape matches shards>1.
ScanResult run_single(const ScanJob& job, sim::Network& network) {
  ScanResult result;
  scan::TargetGenerator targets(job.allow, job.block, job.scan_seed,
                                job.sample_fraction, job.process_shard,
                                job.process_shards);
  result.address_space = targets.address_space_size();

  std::optional<store::SpillWriter<core::HostScanRecord>> spill;
  if (!job.spill_dir.empty()) {
    spill.emplace(spill_config_for(job, job.process_shard, job.process_shards));
  }

  std::unordered_map<net::IPv4Address, std::uint64_t> cycle_of;
  std::vector<TaggedRecord> tagged;
  if (!spill.has_value()) tagged.reserve(expected_records(job, result.address_space));
  std::uint64_t launched = 0;
  std::uint64_t completed = 0;
  auto emit_progress = [&](std::uint64_t shards_done) {
    if (!job.progress) return;
    ProgressSnapshot snap;
    snap.targets_started = launched;
    snap.records_merged = completed;
    snap.outstanding = launched - completed;
    snap.shards_done = shards_done;
    snap.shards_total = 1;
    job.progress(snap);
  };

  core::IwProbeModule module(job.probe, [&](const core::HostScanRecord& record) {
    const auto it = cycle_of.find(record.ip);
    const std::uint64_t cycle = it == cycle_of.end() ? 0 : it->second;
    if (it != cycle_of.end()) cycle_of.erase(it);  // one record per host
    if (spill.has_value()) {
      spill->append(cycle, record);
    } else {
      tagged.push_back({cycle, record});
    }
    ++completed;
    if (job.progress_interval > 0 && completed % job.progress_interval == 0) {
      emit_progress(0);
    }
  });

  scan::ScanEngine engine(network, engine_config_for(job, job.rate_pps, job.max_outstanding),
                          std::move(targets), module);
  engine.set_launch_observer([&](net::IPv4Address ip, std::uint64_t cycle) {
    cycle_of[ip] = cycle;
    ++launched;
  });

  const sim::SimTime start = network.loop().now();
  engine.start();
  while (!engine.done() && network.loop().step()) {
  }
  result.duration = network.loop().now() - start;
  result.engine = engine.stats();
  if (spill.has_value()) {
    result.spill_files.push_back(finish_spill(*spill));
  } else {
    result.records = sorted_records(std::move(tagged));
  }
  emit_progress(1);
  return result;
}

/// One worker: a private world seeded identically to the reference one,
/// scanning global stride `process_shard + process_shards * spec.shard` of
/// `process_shards * spec.total_shards` and streaming tagged records into
/// the aggregator's channel (or its own spill file in spill mode).
void run_shard(const ScanJob& job, const ShardSpec& spec, std::uint64_t network_seed,
               const sim::PathConfig& default_path, const model::ModelConfig& model_config,
               BoundedChannel<Message>& channel, std::atomic<std::uint64_t>& launched) {
  sim::EventLoop loop;
  sim::Network network(loop, network_seed);
  network.set_default_path(default_path);
  model::InternetModel internet(network, model_config);
  internet.install();

  const std::uint64_t global_total = job.process_shards * spec.total_shards;
  const std::uint64_t global_shard =
      job.process_shard + job.process_shards * spec.shard;
  scan::TargetGenerator targets(job.allow, job.block, job.scan_seed,
                                job.sample_fraction, global_shard, global_total);

  std::optional<store::SpillWriter<core::HostScanRecord>> spill;
  if (!job.spill_dir.empty()) {
    spill.emplace(spill_config_for(job, global_shard, global_total));
  }

  std::unordered_map<net::IPv4Address, std::uint64_t> cycle_of;
  core::IwProbeModule module(job.probe, [&](const core::HostScanRecord& record) {
    const auto it = cycle_of.find(record.ip);
    const std::uint64_t cycle = it == cycle_of.end() ? 0 : it->second;
    if (it != cycle_of.end()) cycle_of.erase(it);
    if (spill.has_value()) {
      spill->append(cycle, record);
    } else {
      channel.push(TaggedRecord{cycle, record});
    }
  });

  scan::ScanEngine engine(network,
                          engine_config_for(job, spec.rate_pps, spec.max_outstanding),
                          std::move(targets), module);
  engine.set_launch_observer([&](net::IPv4Address ip, std::uint64_t cycle) {
    cycle_of[ip] = cycle;
    launched.fetch_add(1, std::memory_order_relaxed);
  });

  const sim::SimTime start = loop.now();
  engine.start();
  while (!engine.done() && loop.step()) {
  }
  ShardDone done{spec.shard, engine.stats(), loop.now() - start, {}};
  if (spill.has_value()) done.spill_file = finish_spill(*spill);
  channel.push(std::move(done));
}

}  // namespace

ScanResult ParallelScanRunner::run(sim::Network& network, model::InternetModel& internet) {
  if (job_.shards <= 1) return run_single(job_, network);

  ScanResult result;
  {
    // The same normalized allowlist every shard iterates; sized once here.
    scan::TargetGenerator probe(job_.allow, job_.block, job_.scan_seed,
                                job_.sample_fraction);
    result.address_space = probe.address_space_size();
  }

  const ShardPlan plan = ShardPlan::make(job_.shards, job_.rate_pps, job_.max_outstanding);
  const std::uint64_t shard_count = plan.shards.size();
  const std::uint64_t network_seed = network.seed();
  const sim::PathConfig default_path = network.default_path();
  const model::ModelConfig model_config = internet.config();
  const bool spilling = !job_.spill_dir.empty();

  BoundedChannel<Message> channel(kChannelCapacity);
  std::atomic<std::uint64_t> launched{0};

  ThreadPool pool(std::min<std::size_t>(
      shard_count, std::max<std::size_t>(1, std::thread::hardware_concurrency())));
  for (const ShardSpec& spec : plan.shards) {
    pool.submit([this, spec, network_seed, default_path, model_config, &channel,
                 &launched] {
      run_shard(job_, spec, network_seed, default_path, model_config, channel, launched);
    });
  }

  // Aggregate on the calling thread: drain the channel until every shard
  // has reported completion, then merge in deterministic order.
  std::vector<TaggedRecord> tagged;
  if (!spilling) tagged.reserve(expected_records(job_, result.address_space));
  std::vector<ShardDone> done(shard_count);
  std::uint64_t shards_done = 0;
  auto emit_progress = [&] {
    if (!job_.progress) return;
    ProgressSnapshot snap;
    snap.targets_started = launched.load(std::memory_order_relaxed);
    snap.records_merged = tagged.size();
    snap.outstanding = snap.targets_started - snap.records_merged;
    snap.shards_done = shards_done;
    snap.shards_total = shard_count;
    job_.progress(snap);
  };

  while (shards_done < shard_count) {
    auto message = channel.pop();
    if (!message) break;  // closed early — unreachable in normal operation
    if (auto* record = std::get_if<TaggedRecord>(&*message)) {
      tagged.push_back(std::move(*record));
      if (job_.progress_interval > 0 && tagged.size() % job_.progress_interval == 0) {
        emit_progress();
      }
    } else {
      ShardDone& fin = std::get<ShardDone>(*message);
      done[fin.shard] = std::move(fin);
      ++shards_done;
      emit_progress();
    }
  }
  pool.wait();
  channel.close();

  for (ShardDone& fin : done) {  // fixed shard order, schedule-independent
    result.engine += fin.stats;
    result.duration = std::max(result.duration, fin.duration);
    if (!fin.spill_file.empty()) result.spill_files.push_back(std::move(fin.spill_file));
  }
  result.records = sorted_records(std::move(tagged));
  return result;
}

}  // namespace iwscan::exec
