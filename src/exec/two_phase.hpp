// Two-phase scan executor: stateless sweep feeding the stateful estimator.
//
// The paper's stateful probe sessions are what make IW measurement possible,
// but they are also the scan's scarce resource — each one holds connection
// state, timers and a session budget for tens of virtual seconds. Probing
// the whole address space that way spends the expensive tier on the ~95% of
// addresses that never answer. The two-phase executor splits the work the
// way ZBanner splits it (PAPERS.md):
//
//   phase 1  StatelessSweep walks the entire space at a much higher rate
//            with zero per-host state (scanner/stateless.hpp), harvesting
//            liveness, the SYN-ACK window/MSS and a first-flight banner;
//   phase 2  only the responsive hosts are promoted into the stateful
//            ScanEngine, which runs the full IW probe sequence against
//            each (core::IwProbeModule).
//
// Promotion is streamed: responsive hosts flow through a bounded queue into
// the engine while the sweep is still running (backpressure throttles the
// sweep, never the reverse), so the scan pipeline has no global barrier.
// With ScanOptions::max_promoted_hosts set, promotion instead becomes a
// deterministic global truncation — the K responsive hosts with the lowest
// permutation-cycle indices, regardless of shard count — which requires the
// sweep to finish first (capped mode trades the barrier for a hard phase-2
// budget).
//
// Output determinism is the same contract as ParallelScanRunner: both the
// sweep records and the IW records are merged in global permutation-cycle
// order, and their content is byte-identical for any shard count. The sweep
// tier keeps its side of that bargain by scanning from its own source
// address (disjoint per-flow impairment streams and host connection keys),
// so running phase 1 first cannot perturb what phase 2 observes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exec/parallel_runner.hpp"
#include "inetmodel/internet.hpp"
#include "scanner/stateless.hpp"

namespace iwscan::exec {

struct TwoPhaseJob {
  /// Phase-2 parameters plus everything the phases share (address space,
  /// blocklist, scan seed, sample fraction, shard count, progress hook).
  /// The sweep probes scan.probe.port and reuses scan.scan_seed for its
  /// cookie key and target permutation.
  ScanJob scan;
  /// Phase-1 SYN rate (global; divided across shards like scan.rate_pps).
  double sweep_rate_pps = 600'000;
  /// 0 = promote every responsive host, streaming them into phase 2 while
  /// the sweep runs. >0 = cap phase 2 at the K responsive hosts with the
  /// lowest global cycle indices (deterministic truncation; the sweep then
  /// completes before phase 2 starts). With scan.process_shards > 1 the cap
  /// is per process — each operator process truncates its own stride, since
  /// processes cannot see each other's responsive sets.
  std::uint64_t max_promoted_hosts = 0;
};

struct TwoPhaseResult {
  std::vector<scan::SweepRecord> sweep_records;  // permutation-cycle order
  scan::SweepStats sweep;                        // summed over shards
  std::vector<core::HostScanRecord> records;     // phase-2 output, cycle order
  scan::EngineStats engine;                      // summed over shards
  sim::SimTime duration{};                       // virtual time, both phases
  std::uint64_t address_space = 0;               // allowlist size, post-merge
  std::uint64_t promoted = 0;   // responsive hosts handed to phase 2
  std::uint64_t truncated = 0;  // responsive hosts dropped by the cap
  // Spill mode (scan.spill_dir non-empty): records/sweep_records stay empty
  // and the record streams live in these per-shard columnar spill files
  // instead (host records and sweep records respectively), in shard order.
  // Read them back in global cycle order with store::open_merge.
  std::vector<std::string> spill_files;
  std::vector<std::string> sweep_spill_files;
};

class TwoPhaseRunner {
 public:
  explicit TwoPhaseRunner(TwoPhaseJob job) : job_(std::move(job)) {}

  /// Runs both phases to completion. Worlds are used exactly as in
  /// ParallelScanRunner::run — shards<=1 executes on the caller's world,
  /// shards>1 builds identically-seeded private worlds per worker — and in
  /// every mode a worker's phase 2 runs on the same world its phase 1
  /// swept, so the shard count never changes what a host has seen.
  [[nodiscard]] TwoPhaseResult run(sim::Network& network, model::InternetModel& internet);

 private:
  TwoPhaseJob job_;
};

}  // namespace iwscan::exec
