#include "exec/shard_plan.hpp"

#include <algorithm>

namespace iwscan::exec {

ShardPlan ShardPlan::make(std::uint64_t total_shards, double rate_pps,
                          std::size_t max_outstanding) {
  const std::uint64_t count = total_shards == 0 ? 1 : total_shards;
  ShardPlan plan;
  plan.shards.reserve(count);
  for (std::uint64_t k = 0; k < count; ++k) {
    ShardSpec spec;
    spec.shard = k;
    spec.total_shards = count;
    spec.rate_pps = rate_pps / static_cast<double>(count);
    spec.max_outstanding =
        std::max<std::size_t>(1, max_outstanding / static_cast<std::size_t>(count));
    plan.shards.push_back(spec);
  }
  return plan;
}

}  // namespace iwscan::exec
