// Parallel sharded scan executor with deterministic merge.
//
// Turns the shard parameters the target generator has always had into real
// multi-core throughput: the address space is partitioned into N disjoint
// shards (see shard_plan.hpp), each shard runs on its own worker thread
// with a private event loop, network fabric and lazily-materialized
// Internet model, and the per-shard record streams are merged back into
// the exact order a shards=1 scan would have produced.
//
// Byte-identical output for any N rests on three legs:
//   1. per-target determinism upstream — session seeds, source ports
//      (scan::SessionServices) and path impairments (sim::Network per-flow
//      RNGs) depend only on (seed, target), never on launch interleaving;
//   2. identically-seeded private worlds — every worker synthesizes hosts
//      from the same pure (model seed, address) function, and host behavior
//      depends only on time *since its first packet*, so per-shard pacing
//      differences cannot leak into records;
//   3. a total merge order — every record is tagged with its target's
//      global permutation-cycle index, which interleaves shard streams back
//      into the single-shard emission order (see PermutationIterator).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/host_prober.hpp"
#include "exec/progress.hpp"
#include "inetmodel/internet.hpp"
#include "scanner/scan_engine.hpp"

namespace iwscan::exec {

/// Scan parameters shared by all shards. The analysis layer converts its
/// ScanOptions into one of these and delegates (analysis/scan_runner.cpp).
struct ScanJob {
  core::IwScanConfig probe;  // protocol/port must already be resolved
  double rate_pps = 150'000; // global rate; divided across shards
  double sample_fraction = 1.0;
  std::uint64_t scan_seed = 7;
  std::size_t max_outstanding = 20'000;  // global cap; divided across shards
  scan::SessionBudget budget;  // per-session ceilings, identical in every shard
  std::vector<net::Cidr> allow;
  std::vector<net::Cidr> block;
  std::uint64_t shards = 1;
  // Multi-process operator mode (ZMap-style --shard i/N --seed S): this
  // process owns the permutation residue `process_shard` (mod
  // `process_shards`); thread shards subdivide that stride further. Cycle
  // indices stay global, so spill files from all processes merge back into
  // the single-process record order (tools/iwmerge).
  std::uint64_t process_shard = 0;
  std::uint64_t process_shards = 1;
  // Bounded-memory result path: when non-empty, workers stream records
  // into per-shard columnar spill files under this directory
  // (store::SpillWriter) instead of growing ScanResult::records — RSS
  // stays O(spill_segment_bytes), not O(targets). Read the files back in
  // global cycle order with store::MergeReader or tools/iwmerge.
  std::string spill_dir;
  std::size_t spill_segment_bytes = 1u << 20;
  ProgressFn progress;  // optional; invoked on the calling thread
  std::uint64_t progress_interval = 1024;  // merged records between snapshots
};

struct ScanResult {
  std::vector<core::HostScanRecord> records;  // permutation-cycle order
  scan::EngineStats engine;                   // summed over shards
  sim::SimTime duration{};                    // max over shards (virtual time)
  std::uint64_t address_space = 0;            // allowlist size, post-merge
  // Spill mode only (records stays empty): one file per worker shard, in
  // shard order. Merge-read them to recover the record stream.
  std::vector<std::string> spill_files;
};

class ParallelScanRunner {
 public:
  explicit ParallelScanRunner(ScanJob job) : job_(std::move(job)) {}

  /// Runs the scan to completion. `network`/`internet` are the reference
  /// world: shards<=1 executes directly on it (the classic single-loop
  /// path); shards>1 leaves it untouched and builds one identically-seeded
  /// private world per worker, so the merged output is byte-identical to a
  /// shards=1 run on a fresh world with the same seeds.
  [[nodiscard]] ScanResult run(sim::Network& network, model::InternetModel& internet);

 private:
  ScanJob job_;
};

}  // namespace iwscan::exec
