#include "exec/thread_pool.hpp"

#include <utility>

namespace iwscan::exec {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t count = threads == 0 ? 1 : threads;
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(mutex_);
  all_idle_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_ready_.wait(lock, [this] { return !queue_.empty() || stop_; });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --running_;
      if (queue_.empty() && running_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace iwscan::exec
