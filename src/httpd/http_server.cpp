#include "httpd/http_server.hpp"

#include "netbase/ipv4.hpp"
#include "tcpstack/host.hpp"
#include "util/bytes.hpp"
#include "util/strings.hpp"

namespace iwscan::http {

void HttpServerApp::on_data(tcp::TcpConnection& conn,
                            std::span<const std::uint8_t> data) {
  if (config_.root == RootBehavior::Silent) return;
  if (config_.root == RootBehavior::RawBanner) {
    if (responded_) return;
    responded_ = true;
    std::string banner = "220 device ready\r\n";
    if (banner.size() < config_.page_size) {
      banner.append(config_.page_size - banner.size(), '*');
    } else {
      banner.resize(config_.page_size);
    }
    conn.send(banner);
    conn.close();
    return;
  }

  switch (parser_.feed(util::as_text(data))) {
    case RequestParser::Status::NeedMore:
      return;
    case RequestParser::Status::Invalid:
      conn.abort();
      return;
    case RequestParser::Status::Complete:
      break;
  }
  if (responded_) return;  // one response per connection; peers send Connection: close
  responded_ = true;
  respond(conn, parser_.request());
}

HttpServerApp::~HttpServerApp() {
  if (loop_ != nullptr) loop_->cancel(pending_response_);
}

void HttpServerApp::respond(tcp::TcpConnection& conn, const HttpRequest& request) {
  // Per-vhost IW: a request naming the canonical vhost is served from the
  // vhost's (larger) first-flight config. Must precede the first response
  // byte — set_initial_window is a no-op once the flight has started.
  if (config_.vhost_iw && !config_.canonical_name.empty()) {
    const auto host = request.header("Host");
    if (host && util::iequals(*host, config_.canonical_name)) {
      conn.set_initial_window(*config_.vhost_iw);
    }
  }
  const HttpResponse response = build_response(request);
  const bool close_after = request.wants_close() || response.status == 301;
  const std::string wire = response.serialize();
  if (config_.processing_delay == sim::SimTime::zero()) {
    conn.send(wire);
    if (close_after) conn.close();
    return;
  }
  // Delayed response. The connection owns this app, so if the connection is
  // destroyed first the app destructor cancels the event — the captured
  // references can never dangle.
  loop_ = &conn.loop();
  pending_response_ = loop_->schedule(
      config_.processing_delay, [this, &conn, wire, close_after] {
        pending_response_ = sim::kNullEvent;
        if (conn.state() == tcp::TcpState::Closed) return;
        conn.send(wire);
        if (close_after) conn.close();
      });
}

HttpResponse HttpServerApp::build_response(const HttpRequest& request) const {
  HttpResponse response;
  response.headers.push_back({"Server", config_.server_header});
  response.headers.push_back({"Content-Type", "text/html"});
  if (request.wants_close()) response.headers.push_back({"Connection", "close"});

  const auto host = request.header("Host");
  const bool host_is_name = host && !net::IPv4Address::parse(*host).has_value() &&
                            !host->empty();
  const bool is_root = request.target == "/";

  switch (config_.root) {
    case RootBehavior::Page:
      response.status = 200;
      response.reason = "OK";
      response.body = page_body(config_.page_size, "page");
      return response;

    case RootBehavior::RedirectToName:
      if (is_root && !host_is_name) {
        response.status = 301;
        response.reason = "Moved Permanently";
        response.headers.push_back(
            {"Location", "http://" + config_.canonical_name + "/"});
        response.body = "<html><head><title>301 Moved Permanently</title></head>"
                        "<body><h1>Moved Permanently</h1></body></html>";
        return response;
      }
      // Named virtual host (or deep link): the real page.
      response.status = 200;
      response.reason = "OK";
      response.body = page_body(config_.redirected_page_size, "vhost");
      return response;

    case RootBehavior::NotFoundEcho: {
      response.status = 404;
      response.reason = "Not Found";
      std::string body = "<html><head><title>404 Not Found</title></head><body>"
                         "<h1>Not Found</h1><p>The requested URL ";
      body += request.target;
      body += " was not found on this server.</p>";
      body.append(config_.not_found_extra, '.');
      body += "</body></html>";
      response.body = std::move(body);
      return response;
    }

    case RootBehavior::NotFoundPlain:
      response.status = 404;
      response.reason = "Not Found";
      response.body = "<html><body><h1>404 Not Found</h1></body></html>";
      return response;

    case RootBehavior::EmptyReply:
      response.status = 200;
      response.reason = "OK";
      response.body.clear();
      return response;

    case RootBehavior::VirtualHosted:
      // Only a valid (customer) Host name selects a real service; IP-based
      // probing sees a short error — the reason the paper's generalized
      // methodology cannot assess virtualized services without prior
      // knowledge (§4.3/§5).
      if (host && util::iequals(*host, config_.canonical_name)) {
        response.status = 200;
        response.reason = "OK";
        response.body = page_body(config_.redirected_page_size, "vhost");
      } else {
        response.status = 404;
        response.reason = "Not Found";
        response.body = "<html><body><h1>404 Not Found</h1></body></html>";
      }
      return response;

    case RootBehavior::RawBanner:
    case RootBehavior::Silent:
      break;  // handled before parsing; unreachable here
  }
  response.status = 500;
  response.reason = "Internal Server Error";
  return response;
}

std::string HttpServerApp::page_body(std::size_t size, std::string_view tag) {
  std::string body = "<html><head><title>";
  body += tag;
  body += "</title></head><body>";
  const std::string filler = "<p>lorem ipsum dolor sit amet consectetur</p>";
  while (body.size() + filler.size() + 14 < size) body += filler;
  if (body.size() + 14 < size) body.append(size - body.size() - 14, 'x');
  body += "</body></html>";
  return body;
}

tcp::TcpHost::AppFactory HttpServerApp::factory(WebConfig config) {
  return [config](net::IPv4Address, std::uint16_t) {
    return std::make_unique<HttpServerApp>(config);
  };
}

}  // namespace iwscan::http
