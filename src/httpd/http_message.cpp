#include "httpd/http_message.hpp"

#include <charconv>

#include "util/strings.hpp"

namespace iwscan::http {
namespace {

std::optional<std::string_view> find_header(const std::vector<Header>& headers,
                                            std::string_view name) {
  for (const auto& header : headers) {
    if (util::iequals(header.name, name)) return header.value;
  }
  return std::nullopt;
}

/// Parse "Name: value" lines between `begin` and the blank line.
bool parse_header_block(std::string_view block, std::vector<Header>& out) {
  for (const auto line : util::split(block, '\n')) {
    std::string_view trimmed = line;
    if (!trimmed.empty() && trimmed.back() == '\r') trimmed.remove_suffix(1);
    if (trimmed.empty()) continue;
    const std::size_t colon = trimmed.find(':');
    if (colon == std::string_view::npos) return false;
    out.push_back(Header{std::string(util::trim(trimmed.substr(0, colon))),
                         std::string(util::trim(trimmed.substr(colon + 1)))});
  }
  return true;
}

}  // namespace

std::optional<std::string_view> HttpRequest::header(std::string_view name) const {
  return find_header(headers, name);
}

bool HttpRequest::wants_close() const {
  const auto connection = header("Connection");
  return connection && util::icontains(*connection, "close");
}

std::optional<std::string_view> HttpResponse::header(std::string_view name) const {
  return find_header(headers, name);
}

std::string HttpResponse::serialize() const {
  std::string out;
  out.reserve(128 + body.size());
  out += version;
  out += ' ';
  out += std::to_string(status);
  out += ' ';
  out += reason;
  out += "\r\n";
  for (const auto& header : headers) {
    out += header.name;
    out += ": ";
    out += header.value;
    out += "\r\n";
  }
  out += "Content-Length: ";
  out += std::to_string(body.size());
  out += "\r\n\r\n";
  out += body;
  return out;
}

RequestParser::Status RequestParser::feed(std::string_view data) {
  if (complete_) return Status::Complete;
  if (invalid_) return Status::Invalid;
  buffer_.append(data);
  if (buffer_.size() > kMaxHeaderBytes) return fail();

  const std::size_t end = buffer_.find("\r\n\r\n");
  if (end == std::string::npos) return Status::NeedMore;

  const std::string_view head(buffer_.data(), end);
  const std::size_t line_end = head.find("\r\n");
  const std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);

  const auto parts = util::split(request_line, ' ');
  if (parts.size() != 3 || parts[0].empty() || parts[1].empty()) {
    return fail();
  }
  request_.method = std::string(parts[0]);
  request_.target = std::string(parts[1]);
  request_.version = std::string(parts[2]);
  if (!request_.version.starts_with("HTTP/")) return fail();

  request_.headers.clear();
  if (line_end != std::string_view::npos &&
      !parse_header_block(head.substr(line_end + 2), request_.headers)) {
    return fail();
  }
  complete_ = true;
  return Status::Complete;
}

RequestParser::Status RequestParser::fail() {
  // Latch: once a request is rejected, later bytes on the same connection
  // must not resurrect it as a parse of a half-garbled buffer.
  invalid_ = true;
  return Status::Invalid;
}

void RequestParser::reset() {
  buffer_.clear();
  request_ = HttpRequest{};
  complete_ = false;
  invalid_ = false;
}

std::optional<ParsedResponseHead> parse_response_head(std::string_view data) {
  const std::size_t end = data.find("\r\n\r\n");
  if (end == std::string_view::npos) return std::nullopt;
  const std::string_view head = data.substr(0, end);
  const std::size_t line_end = head.find("\r\n");
  const std::string_view status_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);

  // "HTTP/1.1 301 Moved Permanently"
  if (!status_line.starts_with("HTTP/")) return std::nullopt;
  const std::size_t sp1 = status_line.find(' ');
  if (sp1 == std::string_view::npos) return std::nullopt;
  const std::size_t sp2 = status_line.find(' ', sp1 + 1);
  const std::string_view code_text =
      status_line.substr(sp1 + 1, sp2 == std::string_view::npos
                                      ? std::string_view::npos
                                      : sp2 - sp1 - 1);
  int status = 0;
  const auto [ptr, ec] =
      std::from_chars(code_text.data(), code_text.data() + code_text.size(), status);
  if (ec != std::errc{} || ptr != code_text.data() + code_text.size()) {
    return std::nullopt;
  }
  // RFC 9112: the status code is exactly three digits. from_chars alone
  // would accept "-5" or "12345" here.
  if (status < 100 || status > 999) return std::nullopt;

  ParsedResponseHead parsed;
  parsed.status = status;
  if (sp2 != std::string_view::npos) {
    parsed.reason = std::string(status_line.substr(sp2 + 1));
  }
  parsed.header_bytes = end + 4;
  if (line_end != std::string_view::npos &&
      !parse_header_block(head.substr(line_end + 2), parsed.headers)) {
    return std::nullopt;
  }
  return parsed;
}

std::optional<std::string_view> ParsedResponseHead::header(std::string_view name) const {
  return find_header(headers, name);
}

std::optional<std::uint64_t> ParsedResponseHead::content_length() const {
  const auto value = header("Content-Length");
  if (!value) return std::nullopt;
  return util::parse_u64(util::trim(*value));
}

std::optional<LocationParts> parse_location(std::string_view uri) {
  uri = util::trim(uri);
  if (uri.empty()) return std::nullopt;

  LocationParts parts;
  if (util::istarts_with(uri, "http://")) {
    uri.remove_prefix(7);
  } else if (util::istarts_with(uri, "https://")) {
    uri.remove_prefix(8);
  } else if (uri.front() == '/') {
    parts.path = std::string(uri);
    return parts;
  } else {
    return std::nullopt;
  }

  const std::size_t slash = uri.find('/');
  std::string_view authority = uri;
  if (slash == std::string_view::npos) {
    // Move-assign rather than operator=(const char*): GCC 12's -Wrestrict
    // false-positives on the char* assignment path (GCC PR105329).
    parts.path = std::string("/");
  } else {
    authority = uri.substr(0, slash);
    parts.path = std::string(uri.substr(slash));
  }
  if (authority.empty()) return std::nullopt;
  // Strip an explicit port from the authority.
  if (const std::size_t colon = authority.find(':'); colon != std::string_view::npos) {
    authority = authority.substr(0, colon);
  }
  parts.host = std::string(authority);
  return parts;
}

}  // namespace iwscan::http
