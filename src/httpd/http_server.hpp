// HTTP origin-server behaviour models.
//
// Each simulated web host gets a WebConfig capturing the behaviours the
// paper's HTTP probing method interacts with (§3.2):
//   * direct 200 pages of varying size (enough data vs. "few data"),
//   * virtual-hosting 301 redirects whose Location reveals a valid URI,
//   * 404 pages that echo the (deliberately bloated) request URI — and the
//     Akamai-style variant that stopped echoing mid-study,
//   * Connection: close honoring, which lets the scanner observe a FIN when
//     a response ends before the IW is exhausted.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "httpd/http_message.hpp"
#include "tcpstack/connection.hpp"
#include "tcpstack/host.hpp"

namespace iwscan::http {

enum class RootBehavior {
  Page,            // "/" serves a page directly
  RedirectToName,  // "/" with an IP Host header → 301 to the canonical name
  NotFoundEcho,    // unknown URIs → 404 echoing the request URI
  NotFoundPlain,   // unknown URIs → short fixed 404
  EmptyReply,      // headers only, zero-length body (never enough data)
  RawBanner,       // non-HTTP service: page_size raw bytes, then close
  Silent,          // accepts requests, never answers (Table 2 "NoData")
  VirtualHosted,   // CDN edge: real page only for a known Host header,
                   // short non-echoing 404 otherwise (§4.3 Akamai model)
};

struct WebConfig {
  RootBehavior root = RootBehavior::Page;
  std::size_t page_size = 4096;        // body bytes of the canonical page
  std::string canonical_name;          // e.g. "www.example-a1b2.net"
  std::string server_header = "Apache";
  // When redirecting: body size of the page reached via the redirect.
  std::size_t redirected_page_size = 8192;
  // 404 body overhead around the echoed URI.
  std::size_t not_found_extra = 160;
  sim::SimTime processing_delay = sim::SimTime::zero();
  // Per-vhost IW split (CDN edges): requests whose Host header names the
  // canonical vhost are answered with this IwConfig instead of the
  // listener's default — applied before the first response byte, so
  // IP-as-Host probing measures a different window than named probing.
  std::optional<tcp::IwConfig> vhost_iw;
};

/// Per-connection HTTP application. Create via factory() for TcpHost.
class HttpServerApp final : public tcp::Application {
 public:
  explicit HttpServerApp(WebConfig config) : config_(std::move(config)) {}
  ~HttpServerApp() override;

  void on_data(tcp::TcpConnection& conn, std::span<const std::uint8_t> data) override;

  /// TcpHost-compatible factory closing over a shared config.
  [[nodiscard]] static tcp::TcpHost::AppFactory factory(WebConfig config);

 private:
  void respond(tcp::TcpConnection& conn, const HttpRequest& request);
  [[nodiscard]] HttpResponse build_response(const HttpRequest& request) const;
  [[nodiscard]] static std::string page_body(std::size_t size, std::string_view tag);

  WebConfig config_;
  RequestParser parser_;
  bool responded_ = false;
  // Pending delayed-response event; cancelled on destruction so it can
  // never fire against a torn-down connection (the app dies with it).
  sim::EventLoop* loop_ = nullptr;
  sim::EventId pending_response_ = sim::kNullEvent;
};

}  // namespace iwscan::http
