// HTTP/1.1 message parsing and generation (request/response subset used by
// the scan: GET requests, status lines, Host/Location/Connection headers).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace iwscan::http {

struct Header {
  std::string name;
  std::string value;
};

struct HttpRequest {
  std::string method;
  std::string target;
  std::string version;
  std::vector<Header> headers;

  /// First header with the given name, case-insensitive.
  [[nodiscard]] std::optional<std::string_view> header(std::string_view name) const;
  [[nodiscard]] bool wants_close() const;
};

struct HttpResponse {
  int status = 200;
  std::string reason;
  std::string version = "HTTP/1.1";
  std::vector<Header> headers;
  std::string body;

  [[nodiscard]] std::optional<std::string_view> header(std::string_view name) const;
  /// Serialize with Content-Length computed from the body.
  [[nodiscard]] std::string serialize() const;
};

/// Incremental request parser. Feed bytes as they arrive; a complete
/// request (through the blank line; bodies are not expected on GET) is
/// returned once available.
class RequestParser {
 public:
  enum class Status { NeedMore, Complete, Invalid };

  Status feed(std::string_view data);

  /// Valid only after feed() returned Complete.
  [[nodiscard]] const HttpRequest& request() const noexcept { return request_; }

  /// Prepare for the next request on the same connection.
  void reset();

 private:
  Status fail();

  std::string buffer_;
  HttpRequest request_;
  bool complete_ = false;
  bool invalid_ = false;
  // Guard against unbounded header growth from a hostile/buggy peer.
  static constexpr std::size_t kMaxHeaderBytes = 64 * 1024;
};

/// Parse a serialized response's status line and headers (body follows per
/// Content-Length). Used by the scanner to interpret probe answers.
struct ParsedResponseHead {
  int status = 0;
  std::string reason;
  std::vector<Header> headers;
  std::size_t header_bytes = 0;  // offset where the body starts

  [[nodiscard]] std::optional<std::string_view> header(std::string_view name) const;

  /// Content-Length as an integer. nullopt when the header is absent,
  /// non-numeric, or would overflow 64 bits (hostile responders announce
  /// absurd lengths; never fold those into buffer arithmetic).
  [[nodiscard]] std::optional<std::uint64_t> content_length() const;
};

[[nodiscard]] std::optional<ParsedResponseHead> parse_response_head(std::string_view data);

/// Extract the path (and implicit host) from an absolute or relative URI in
/// a Location header. Returns {host, path}; host is empty for relative URIs.
struct LocationParts {
  std::string host;
  std::string path;
};
[[nodiscard]] std::optional<LocationParts> parse_location(std::string_view uri);

}  // namespace iwscan::http
