// Umbrella header: the public surface of iwscan.
//
// A reproduction of "Large-Scale Scanning of TCP's Initial Window"
// (Rüth, Bormann, Hohlfeld — IMC 2017). See README.md for the quickstart
// and DESIGN.md for the architecture.
//
// Layering (each header is also individually includable):
//   iwscan::util      — RNG, logging, strings, flags
//   iwscan::net       — IPv4/TCP/ICMP wire codecs
//   iwscan::sim       — event loop, network fabric, packet capture
//   iwscan::tcp       — server-side TCP stack (hosts under test)
//   iwscan::http      — HTTP origin behaviours + message codecs
//   iwscan::tls       — TLS 1.2 first-flight server + codecs
//   iwscan::scan      — ZMap-style engine, targets, probe modules
//   iwscan::core      — the IW estimator, probe strategies, host prober
//   iwscan::model     — the synthetic Internet (AS registry, ground truth)
//   iwscan::exec      — parallel sharded scan executor, deterministic merge
//   iwscan::analysis  — aggregation, sampling, clustering, reports
#pragma once

#include "util/flags.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"

#include "netbase/checksum.hpp"
#include "netbase/headers.hpp"
#include "netbase/ipv4.hpp"
#include "netbase/packet.hpp"
#include "netbase/tcp_options.hpp"
#include "netbase/wire.hpp"

#include "netsim/capture.hpp"
#include "netsim/event_loop.hpp"
#include "netsim/network.hpp"

#include "tcpstack/config.hpp"
#include "tcpstack/connection.hpp"
#include "tcpstack/host.hpp"
#include "tcpstack/seq.hpp"

#include "httpd/http_message.hpp"
#include "httpd/http_server.hpp"

#include "tls/cert.hpp"
#include "tls/ciphers.hpp"
#include "tls/handshake.hpp"
#include "tls/records.hpp"
#include "tls/tls_server.hpp"
#include "tls/tls_server_config.hpp"

#include "scanner/icmp_mtu.hpp"
#include "scanner/permutation.hpp"
#include "scanner/scan_engine.hpp"
#include "scanner/syn_scan.hpp"
#include "scanner/targets.hpp"

#include "core/estimator.hpp"
#include "core/host_prober.hpp"
#include "core/probe_strategy.hpp"
#include "core/result.hpp"

#include "inetmodel/as_registry.hpp"
#include "inetmodel/censys_certs.hpp"
#include "inetmodel/internet.hpp"
#include "inetmodel/profiles.hpp"

#include "exec/channel.hpp"
#include "exec/parallel_runner.hpp"
#include "exec/progress.hpp"
#include "exec/shard_plan.hpp"
#include "exec/thread_pool.hpp"

#include "analysis/dbscan.hpp"
#include "analysis/iw_table.hpp"
#include "analysis/report.hpp"
#include "analysis/scan_runner.hpp"
#include "analysis/service_classify.hpp"
#include "analysis/subsample.hpp"
#include "analysis/table_writer.hpp"
