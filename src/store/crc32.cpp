#include "store/crc32.hpp"

#include <array>
#include <cstddef>

namespace iwscan::store {
namespace {

using Crc32Tables = std::array<std::array<std::uint32_t, 256>, 8>;

consteval Crc32Tables make_crc32_tables() {
  Crc32Tables tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) != 0 ? 0xEDB88320u : 0u);
    }
    tables[0][i] = crc;
  }
  // tables[k][b] = CRC of byte b followed by k zero bytes; lets the main
  // loop fold 8 input bytes per step (slicing-by-8).
  for (std::size_t k = 1; k < tables.size(); ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      const std::uint32_t prev = tables[k - 1][i];
      tables[k][i] = (prev >> 8) ^ tables[0][prev & 0xFFu];
    }
  }
  return tables;
}

constexpr Crc32Tables kTables = make_crc32_tables();

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) noexcept {
  std::uint32_t crc = ~std::uint32_t{0};
  std::size_t i = 0;
  for (; i + 8 <= data.size(); i += 8) {
    crc ^= std::uint32_t{data[i]} | (std::uint32_t{data[i + 1]} << 8) |
           (std::uint32_t{data[i + 2]} << 16) | (std::uint32_t{data[i + 3]} << 24);
    // iwlint: allow(wire-taint) -- uint8_t values and &0xFF masks index
    // 256-entry tables; every subscript is in range by construction
    crc = kTables[7][crc & 0xFFu] ^ kTables[6][(crc >> 8) & 0xFFu] ^
          kTables[5][(crc >> 16) & 0xFFu] ^ kTables[4][crc >> 24] ^
          kTables[3][data[i + 4]] ^ kTables[2][data[i + 5]] ^
          kTables[1][data[i + 6]] ^ kTables[0][data[i + 7]];
  }
  for (; i < data.size(); ++i) {
    // iwlint: allow(wire-taint) -- (crc ^ byte) & 0xFF indexes a 256-entry table
    crc = (crc >> 8) ^ kTables[0][(crc ^ data[i]) & 0xFFu];
  }
  return ~crc;
}

}  // namespace iwscan::store
