#include "store/spill_format.hpp"

#include <algorithm>

#include "store/crc32.hpp"

namespace iwscan::store {
namespace {

// Little-endian field helpers built on the byte primitives, so the spill
// codecs share WireWriter/WireReader's pooled-buffer and bounds-checking
// behavior (the wire stack itself is big-endian; the spill format is LE by
// design — it is a host-side file format, not a network protocol).
void put_u16le(net::WireWriter& writer, std::uint16_t v) {
  writer.u8(static_cast<std::uint8_t>(v));
  writer.u8(static_cast<std::uint8_t>(v >> 8));
}

void put_u32le(net::WireWriter& writer, std::uint32_t v) {
  put_u16le(writer, static_cast<std::uint16_t>(v));
  put_u16le(writer, static_cast<std::uint16_t>(v >> 16));
}

void put_u64le(net::WireWriter& writer, std::uint64_t v) {
  put_u32le(writer, static_cast<std::uint32_t>(v));
  put_u32le(writer, static_cast<std::uint32_t>(v >> 32));
}

std::uint16_t get_u16le(net::WireReader& reader) {
  const std::uint16_t lo = reader.u8();
  const std::uint16_t hi = reader.u8();
  return static_cast<std::uint16_t>(lo | (hi << 8));
}

std::uint32_t get_u32le(net::WireReader& reader) {
  const std::uint32_t lo = get_u16le(reader);
  const std::uint32_t hi = get_u16le(reader);
  return lo | (hi << 16);
}

std::uint64_t get_u64le(net::WireReader& reader) {
  const std::uint64_t lo = get_u32le(reader);
  const std::uint64_t hi = get_u32le(reader);
  return lo | (hi << 32);
}

}  // namespace

void encode_segment_header(net::Bytes& out, const SegmentMeta& meta) {
  const std::size_t start = out.size();
  net::WireWriter writer(out);
  put_u32le(writer, kSegmentMagic);
  put_u16le(writer, kFormatVersion);
  writer.u8(static_cast<std::uint8_t>(meta.kind));
  writer.u8(0);  // reserved
  put_u64le(writer, meta.seed);
  put_u32le(writer, meta.shard);
  put_u32le(writer, meta.total_shards);
  put_u32le(writer, meta.record_bytes);
  put_u32le(writer, meta.record_count);
  put_u64le(writer, meta.first_cycle);
  put_u64le(writer, meta.last_cycle);
  put_u32le(writer, meta.payload_crc);
  const std::span<const std::uint8_t> body(out.data() + start,
                                           kSegmentHeaderBytes - 4);
  put_u32le(writer, crc32(body));
}

bool decode_segment_header(net::WireReader& reader, SegmentMeta& meta,
                           std::string* error) {
  if (!reader.require(kSegmentHeaderBytes)) {
    if (error != nullptr) *error = "truncated segment header";
    return false;
  }
  const std::span<const std::uint8_t> body = reader.raw(kSegmentHeaderBytes - 4);
  net::WireReader header(body);
  const std::uint32_t magic = get_u32le(header);
  const std::uint16_t version = get_u16le(header);
  const auto kind = static_cast<RecordKind>(header.u8());
  header.u8();  // reserved
  meta.seed = get_u64le(header);
  meta.shard = get_u32le(header);
  meta.total_shards = get_u32le(header);
  meta.record_bytes = get_u32le(header);
  meta.record_count = get_u32le(header);
  meta.first_cycle = get_u64le(header);
  meta.last_cycle = get_u64le(header);
  meta.payload_crc = get_u32le(header);
  const std::uint32_t header_crc = get_u32le(reader);
  if (header_crc != crc32(body)) {
    if (error != nullptr) *error = "segment header CRC mismatch (corrupted header)";
    return false;
  }
  if (magic != kSegmentMagic) {
    if (error != nullptr) *error = "bad segment magic (not an iwspill file)";
    return false;
  }
  if (version != kFormatVersion) {
    if (error != nullptr) {
      *error = "unsupported spill format version " + std::to_string(version);
    }
    return false;
  }
  if (kind != RecordKind::Host && kind != RecordKind::Sweep) {
    if (error != nullptr) {
      *error = "unknown record kind " +
               std::to_string(static_cast<unsigned>(kind));
    }
    return false;
  }
  meta.kind = kind;
  return true;
}

void encode_record(net::WireWriter& writer, std::uint64_t cycle,
                   const core::HostScanRecord& record) {
  put_u64le(writer, cycle);
  put_u32le(writer, record.ip.value());
  writer.u8(static_cast<std::uint8_t>(record.outcome));
  writer.u8(static_cast<std::uint8_t>(record.anomaly));
  writer.u8(static_cast<std::uint8_t>((record.fin_seen ? 1u : 0u) |
                                      (record.reorder_seen ? 2u : 0u) |
                                      (record.loss_suspected ? 4u : 0u)));
  writer.u8(record.probes_run);
  writer.u8(record.connections_used);
  put_u32le(writer, record.iw_segments);
  put_u64le(writer, record.iw_bytes);
  put_u16le(writer, record.observed_mss);
  put_u32le(writer, record.lower_bound);
  put_u32le(writer, record.iw_segments_b);
  put_u64le(writer, record.iw_bytes_b);
  put_u16le(writer, record.observed_mss_b);
}

void decode_record(net::WireReader& reader, std::uint64_t& cycle,
                   core::HostScanRecord& record) {
  cycle = get_u64le(reader);
  record.ip = net::IPv4Address{get_u32le(reader)};
  // HostOutcome has no fixed underlying type, so an out-of-range cast would
  // be UB; the mask is a no-op on writer-produced (CRC-verified) bytes.
  record.outcome = static_cast<core::HostOutcome>(reader.u8() & 0x03u);
  record.anomaly = static_cast<core::ProbeAnomaly>(reader.u8());
  const std::uint8_t flags = reader.u8();
  record.fin_seen = (flags & 1u) != 0;
  record.reorder_seen = (flags & 2u) != 0;
  record.loss_suspected = (flags & 4u) != 0;
  record.probes_run = reader.u8();
  record.connections_used = reader.u8();
  record.iw_segments = get_u32le(reader);
  record.iw_bytes = get_u64le(reader);
  record.observed_mss = get_u16le(reader);
  record.lower_bound = get_u32le(reader);
  record.iw_segments_b = get_u32le(reader);
  record.iw_bytes_b = get_u64le(reader);
  record.observed_mss_b = get_u16le(reader);
}

void encode_record(net::WireWriter& writer, std::uint64_t cycle,
                   const scan::SweepRecord& record) {
  put_u64le(writer, cycle);
  put_u32le(writer, record.ip.value());
  writer.u8(static_cast<std::uint8_t>((record.responsive ? 1u : 0u) |
                                      (record.closed ? 2u : 0u)));
  writer.u8(record.banner_length);
  put_u16le(writer, record.window);
  put_u16le(writer, record.mss);
  writer.raw(std::span<const std::uint8_t>(record.banner));
}

void decode_record(net::WireReader& reader, std::uint64_t& cycle,
                   scan::SweepRecord& record) {
  cycle = get_u64le(reader);
  record.cycle = cycle;
  record.ip = net::IPv4Address{get_u32le(reader)};
  const std::uint8_t flags = reader.u8();
  record.responsive = (flags & 1u) != 0;
  record.closed = (flags & 2u) != 0;
  record.banner_length =
      std::min<std::uint8_t>(reader.u8(), scan::kSweepBannerCap);
  record.window = get_u16le(reader);
  record.mss = get_u16le(reader);
  const auto banner = reader.raw(scan::kSweepBannerCap);
  std::copy(banner.begin(), banner.end(), record.banner.begin());
}

}  // namespace iwscan::store
