// On-disk columnar spill format for scan records (DESIGN.md §10).
//
// A spill file is a concatenation of self-describing segments. Every field
// is explicit little-endian, written byte by byte through the WireWriter /
// WireReader primitives — no struct memcpy, so the layout is identical on
// every host and survives compiler/ABI changes. Each segment:
//
//   offset  width  field
//   ------  -----  -----------------------------------------------------
//        0      4  magic "IWSP" (0x49575350, LE)
//        4      2  format version (kFormatVersion)
//        6      1  record kind (RecordKind: 1 = host, 2 = sweep)
//        7      1  reserved (0)
//        8      8  scan seed (permutation + session seed of the run)
//       16      4  shard index      } the permutation stride this file
//       20      4  total shards     } covers: cycles ≡ shard (mod total)
//       24      4  record wire width in bytes (must match the codec)
//       28      4  record count in this segment
//       32      8  first (lowest) cycle index in the segment
//       40      8  last (highest) cycle index in the segment
//       48      4  CRC-32 of the payload bytes
//       52      4  CRC-32 of header bytes [0, 52)
//       56      –  payload: `record count` fixed-width records, sorted by
//                  ascending cycle index (each segment is a sorted run)
//
// Records are keyed by the *global* permutation-cycle index, which is
// unique across shards and processes — K-way merging any disjoint set of
// spill files by cycle reproduces exactly the record order a
// single-process, single-thread scan emits (exec/parallel_runner.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "core/result.hpp"
#include "netbase/wire.hpp"
#include "scanner/stateless.hpp"

namespace iwscan::store {

enum class RecordKind : std::uint8_t { Host = 1, Sweep = 2 };

inline constexpr std::uint32_t kSegmentMagic = 0x49575350u;  // "IWSP"
inline constexpr std::uint16_t kFormatVersion = 1;
inline constexpr std::size_t kSegmentHeaderBytes = 56;
inline constexpr std::size_t kHostRecordBytes = 49;
inline constexpr std::size_t kSweepRecordBytes = 50;
inline constexpr std::size_t kDefaultSegmentBytes = 1u << 20;

// The codecs below spell out every field at its exact width; if a record
// struct changes shape these trip at compile time and force a format
// version bump (or a new trailing field) instead of silent corruption.
static_assert(sizeof(core::HostScanRecord::ip) == 4);
static_assert(sizeof(core::HostScanRecord::iw_segments) == 4);
static_assert(sizeof(core::HostScanRecord::iw_bytes) == 8);
static_assert(sizeof(core::HostScanRecord::observed_mss) == 2);
static_assert(sizeof(core::HostScanRecord::lower_bound) == 4);
static_assert(sizeof(core::HostScanRecord::iw_segments_b) == 4);
static_assert(sizeof(core::HostScanRecord::iw_bytes_b) == 8);
static_assert(sizeof(core::HostScanRecord::observed_mss_b) == 2);
static_assert(sizeof(core::HostScanRecord::anomaly) == 1);
static_assert(sizeof(core::HostScanRecord::probes_run) == 1);
static_assert(sizeof(core::HostScanRecord::connections_used) == 1);
static_assert(sizeof(scan::SweepRecord::cycle) == 8);
static_assert(sizeof(scan::SweepRecord::ip) == 4);
static_assert(sizeof(scan::SweepRecord::window) == 2);
static_assert(sizeof(scan::SweepRecord::mss) == 2);
static_assert(sizeof(scan::SweepRecord::banner_length) == 1);
static_assert(scan::kSweepBannerCap == 32);

struct SegmentMeta {
  RecordKind kind = RecordKind::Host;
  std::uint64_t seed = 0;
  std::uint32_t shard = 0;
  std::uint32_t total_shards = 1;
  std::uint32_t record_bytes = 0;
  std::uint32_t record_count = 0;
  std::uint64_t first_cycle = 0;
  std::uint64_t last_cycle = 0;
  std::uint32_t payload_crc = 0;
};

/// Appends the 56-byte segment header (including its own CRC) to `out`.
void encode_segment_header(net::Bytes& out, const SegmentMeta& meta);

/// Consumes one segment header. False (with `error` filled) on a short
/// read, bad magic, unknown version, or a header CRC mismatch.
[[nodiscard]] bool decode_segment_header(net::WireReader& reader, SegmentMeta& meta,
                                         std::string* error);

// Fixed-width record codecs: encode appends exactly k*RecordBytes; decode
// consumes the same. The tagged cycle index is authoritative — for sweep
// records, decode writes it back into SweepRecord::cycle.
void encode_record(net::WireWriter& writer, std::uint64_t cycle,
                   const core::HostScanRecord& record);
void decode_record(net::WireReader& reader, std::uint64_t& cycle,
                   core::HostScanRecord& record);
void encode_record(net::WireWriter& writer, std::uint64_t cycle,
                   const scan::SweepRecord& record);
void decode_record(net::WireReader& reader, std::uint64_t& cycle,
                   scan::SweepRecord& record);

template <class Record>
struct RecordTraits;

template <>
struct RecordTraits<core::HostScanRecord> {
  static constexpr RecordKind kind = RecordKind::Host;
  static constexpr std::size_t wire_bytes = kHostRecordBytes;
  static constexpr std::string_view file_prefix = "host";
};

template <>
struct RecordTraits<scan::SweepRecord> {
  static constexpr RecordKind kind = RecordKind::Sweep;
  static constexpr std::size_t wire_bytes = kSweepRecordBytes;
  static constexpr std::string_view file_prefix = "sweep";
};

}  // namespace iwscan::store
