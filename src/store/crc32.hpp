// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte spans.
//
// Guards every spill segment (store/spill_format.hpp): the header carries a
// CRC of itself and of its payload, so a truncated or bit-flipped tail is a
// reported open() error instead of silently corrupt records. Slicing-by-8
// keeps the check cheap enough to run at segment-flush rate.
#pragma once

#include <cstdint>
#include <span>

namespace iwscan::store {

[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data) noexcept;

}  // namespace iwscan::store
