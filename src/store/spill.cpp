#include "store/spill.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <filesystem>
#include <numeric>

namespace iwscan::store {

std::string spill_file_name(RecordKind kind, std::uint32_t shard,
                            std::uint32_t total_shards) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s-%05u-of-%05u.iwspill",
                kind == RecordKind::Host ? "host" : "sweep", shard, total_shards);
  return buf;
}

std::string join_path(const std::string& dir, const std::string& name) {
  if (dir.empty()) return name;
  if (dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

bool shards_overlap(std::uint32_t shard_a, std::uint32_t total_a,
                    std::uint32_t shard_b, std::uint32_t total_b) {
  const std::uint32_t g = std::gcd(std::max(total_a, 1u), std::max(total_b, 1u));
  return shard_a % g == shard_b % g;
}

bool collect_spill_files(const std::vector<std::string>& inputs, RecordKind kind,
                         std::vector<std::string>& files, std::string* error) {
  namespace fs = std::filesystem;
  const std::string_view prefix = kind == RecordKind::Host
                                      ? RecordTraits<core::HostScanRecord>::file_prefix
                                      : RecordTraits<scan::SweepRecord>::file_prefix;
  const auto matches = [&](const fs::path& path) {
    const std::string name = path.filename().string();
    return path.extension() == ".iwspill" &&
           name.compare(0, prefix.size(), prefix) == 0 &&
           name.size() > prefix.size() && name[prefix.size()] == '-';
  };
  for (const std::string& input : inputs) {
    std::error_code ec;
    const fs::file_status status = fs::status(input, ec);
    if (ec || status.type() == fs::file_type::not_found) {
      if (error != nullptr) *error = "no such file or directory: " + input;
      return false;
    }
    if (fs::is_directory(status)) {
      for (const fs::directory_entry& entry : fs::directory_iterator(input, ec)) {
        if (entry.is_regular_file() && matches(entry.path())) {
          files.push_back(entry.path().string());
        }
      }
      if (ec) {
        if (error != nullptr) *error = "cannot list directory: " + input;
        return false;
      }
    } else if (matches(fs::path(input))) {
      files.push_back(input);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return true;
}

namespace detail {

FileSink::~FileSink() { static_cast<void>(close()); }

bool FileSink::open(const std::string& path, std::string* error) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    ok_ = false;
    return false;
  }
  return true;
}

void FileSink::write(std::span<const std::uint8_t> bytes) {
  if (file_ == nullptr || !ok_ || bytes.empty()) return;
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
    ok_ = false;
  }
}

bool FileSink::close() {
  if (file_ == nullptr) return ok_;
  if (std::fclose(file_) != 0) ok_ = false;
  file_ = nullptr;
  return ok_;
}

bool open_spill_sink(const std::string& directory, const std::string& path,
                     FileSink& sink, std::string* error) {
  if (!directory.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(directory, ec);
    if (ec) {
      if (error != nullptr) *error = "cannot create spill directory " + directory;
      return false;
    }
  }
  return sink.open(path, error);
}

}  // namespace detail

MappedFile::~MappedFile() { unmap(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    unmap();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

void MappedFile::unmap() noexcept {
  if (data_ != nullptr) {
    ::munmap(data_, size_);
    data_ = nullptr;
    size_ = 0;
  }
}

bool MappedFile::map(const std::string& path, std::string* error) {
  unmap();
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    if (error != nullptr) *error = "cannot stat " + path;
    return false;
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {  // a valid, empty spill: no segments, no mapping
    ::close(fd);
    return true;
  }
  void* data = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (data == MAP_FAILED) {
    if (error != nullptr) *error = "cannot mmap " + path;
    return false;
  }
  data_ = data;
  size_ = size;
  return true;
}

}  // namespace iwscan::store
