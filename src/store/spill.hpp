// Bounded-memory result path: append-only spill writers, mmap-backed
// segment readers, and the K-way merge that reconstructs the global record
// order (DESIGN.md §10).
//
// The in-RAM result path grows one vector across the whole scan — ~400 GB
// at 2^32 targets. SpillWriter caps that at O(segment): records accumulate
// in a fixed-capacity buffer, and when it fills the buffer is sorted by
// global permutation-cycle index and flushed as one self-describing,
// CRC-guarded segment (store/spill_format.hpp). Every segment is therefore
// a sorted run, so reading the scan back is a K-way heap merge over all
// segments of all shards — cycle indices are globally unique, which makes
// the merged stream byte-identical to what a single-process single-thread
// scan would have produced, for any {process × thread} sharding.
//
// Hot-path contract (iwlint): SpillWriter::append and SegmentReader::next
// are IWSCAN_HOT roots — no allocation, no locking, no syscalls per
// record. The segment flush (sort + encode + CRC + buffered fwrite) is the
// audited IWSCAN_HOT_BOUNDARY; it reuses its scratch buffers' capacity, so
// steady-state appends stay allocation-free (tests/alloc_budget_test.cpp).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "netbase/wire.hpp"
#include "store/crc32.hpp"
#include "store/spill_format.hpp"
#include "util/annotations.hpp"

namespace iwscan::store {

struct SpillConfig {
  std::string directory;  // created if missing
  std::size_t segment_bytes = kDefaultSegmentBytes;
  std::uint64_t seed = 0;  // scan seed, stamped into every segment header
  std::uint32_t shard = 0;
  std::uint32_t total_shards = 1;
};

/// Canonical file name for one shard's spill of one record kind, e.g.
/// "host-00002-of-00008.iwspill".
[[nodiscard]] std::string spill_file_name(RecordKind kind, std::uint32_t shard,
                                          std::uint32_t total_shards);

/// dir + "/" + name (no-op join when dir is empty).
[[nodiscard]] std::string join_path(const std::string& dir, const std::string& name);

/// True iff the two permutation strides intersect: shard_a (mod total_a)
/// and shard_b (mod total_b) share a residue class exactly when
/// shard_a ≡ shard_b (mod gcd(total_a, total_b)).
[[nodiscard]] bool shards_overlap(std::uint32_t shard_a, std::uint32_t total_a,
                                  std::uint32_t shard_b, std::uint32_t total_b);

/// Expands inputs (spill files or directories containing them) into the
/// sorted list of files of `kind`, matched by file-name prefix.
[[nodiscard]] bool collect_spill_files(const std::vector<std::string>& inputs,
                                       RecordKind kind,
                                       std::vector<std::string>& files,
                                       std::string* error);

namespace detail {

/// Buffered append-only file sink; keeps cstdio out of the templates so
/// the flush path stays one audited syscall site.
class FileSink {
 public:
  FileSink() = default;
  ~FileSink();
  FileSink(const FileSink&) = delete;
  FileSink& operator=(const FileSink&) = delete;

  [[nodiscard]] bool open(const std::string& path, std::string* error);
  void write(std::span<const std::uint8_t> bytes);
  [[nodiscard]] bool close();
  [[nodiscard]] bool ok() const noexcept { return ok_; }

 private:
  std::FILE* file_ = nullptr;
  bool ok_ = true;
};

/// Creates `directory` (and parents) if needed, then opens the sink.
[[nodiscard]] bool open_spill_sink(const std::string& directory,
                                   const std::string& path, FileSink& sink,
                                   std::string* error);

}  // namespace detail

/// Read-only memory mapping of a whole spill file. Segment payload spans
/// point into the mapping, so readers never copy the file into RAM — the
/// kernel pages it in on demand and may evict it under pressure.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  [[nodiscard]] bool map(const std::string& path, std::string* error);
  [[nodiscard]] std::span<const std::uint8_t> bytes() const noexcept {
    return {static_cast<const std::uint8_t*>(data_), size_};
  }

 private:
  void unmap() noexcept;
  void* data_ = nullptr;
  std::size_t size_ = 0;
};

/// One validated segment inside a mapped spill file.
struct SegmentView {
  SegmentMeta meta;
  std::span<const std::uint8_t> payload;
};

/// Streams (cycle, record) pairs into fixed-size sorted segments. Records
/// may arrive in any order (sessions complete out of cycle order); each
/// segment is sorted at flush time.
template <class Record>
class SpillWriter {
 public:
  explicit SpillWriter(const SpillConfig& config)
      : seed_(config.seed),
        shard_(config.shard),
        total_shards_(config.total_shards) {
    const std::size_t capacity = std::clamp<std::size_t>(
        config.segment_bytes / RecordTraits<Record>::wire_bytes, 1, 1u << 26);
    buffer_.resize(capacity);
    path_ = join_path(config.directory,
                      spill_file_name(RecordTraits<Record>::kind, shard_,
                                      total_shards_));
    ok_ = detail::open_spill_sink(config.directory, path_, sink_, &error_);
  }
  ~SpillWriter() { close(); }
  SpillWriter(const SpillWriter&) = delete;
  SpillWriter& operator=(const SpillWriter&) = delete;

  /// Hot per-record entry point: one buffer store, no allocation, no lock;
  /// only a full buffer crosses into the flush boundary below.
  IWSCAN_HOT void append(std::uint64_t cycle, const Record& record) {
    if (count_ == buffer_.size()) flush_segment();
    buffer_[count_].cycle = cycle;
    buffer_[count_].record = record;
    ++count_;
    ++appended_;
  }

  /// Flushes the tail segment and closes the file. False on any I/O error
  /// (disk full, unwritable directory); error() has the detail.
  bool close() {
    if (closed_) return ok_;
    closed_ = true;
    if (ok_) flush_segment();
    if (!sink_.close()) ok_ = false;
    if (!ok_ && error_.empty()) error_ = "I/O error writing " + path_;
    return ok_;
  }

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] std::uint64_t appended() const noexcept { return appended_; }
  [[nodiscard]] std::uint64_t segments_flushed() const noexcept {
    return segments_flushed_;
  }
  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

 private:
  struct Tagged {
    std::uint64_t cycle = 0;
    Record record{};
  };

  /// The audited hot/cold hand-off: sort the run, encode it through the
  /// wire codecs into reused scratch buffers, CRC it, and hand it to the
  /// buffered file sink in two writes.
  IWSCAN_HOT_BOUNDARY void flush_segment() {
    if (count_ == 0 || !ok_) return;
    std::sort(buffer_.begin(),
              buffer_.begin() + static_cast<std::ptrdiff_t>(count_),
              [](const Tagged& a, const Tagged& b) { return a.cycle < b.cycle; });
    payload_.clear();
    net::WireWriter writer(payload_);
    for (std::size_t i = 0; i < count_; ++i) {
      encode_record(writer, buffer_[i].cycle, buffer_[i].record);
    }
    SegmentMeta meta;
    meta.kind = RecordTraits<Record>::kind;
    meta.seed = seed_;
    meta.shard = shard_;
    meta.total_shards = total_shards_;
    meta.record_bytes = static_cast<std::uint32_t>(RecordTraits<Record>::wire_bytes);
    meta.record_count = static_cast<std::uint32_t>(count_);
    meta.first_cycle = buffer_.front().cycle;
    meta.last_cycle = buffer_[count_ - 1].cycle;
    meta.payload_crc = crc32(payload_);
    header_.clear();
    encode_segment_header(header_, meta);
    sink_.write(header_);
    sink_.write(payload_);
    if (!sink_.ok()) ok_ = false;
    count_ = 0;
    ++segments_flushed_;
  }

  std::uint64_t seed_ = 0;
  std::uint32_t shard_ = 0;
  std::uint32_t total_shards_ = 1;
  std::vector<Tagged> buffer_;  // fixed capacity; count_ tracks the fill
  std::size_t count_ = 0;
  std::uint64_t appended_ = 0;
  std::uint64_t segments_flushed_ = 0;
  net::Bytes payload_;  // encode scratch, capacity reused across segments
  net::Bytes header_;
  std::string path_;
  std::string error_;
  detail::FileSink sink_;
  bool ok_ = true;
  bool closed_ = false;
};

/// Opens one spill file: maps it, walks and validates every segment
/// (structure + header CRC + payload CRC + uniform seed/shard identity),
/// then iterates records in file order via next().
template <class Record>
class SegmentReader {
 public:
  [[nodiscard]] bool open(const std::string& path, std::string* error) {
    path_ = path;
    if (!file_.map(path, error)) return false;
    net::WireReader reader(file_.bytes());
    while (reader.remaining() > 0) {
      SegmentMeta meta;
      std::string detail_error;
      if (!decode_segment_header(reader, meta, &detail_error)) {
        return fail(error, detail_error);
      }
      if (meta.kind != RecordTraits<Record>::kind) {
        return fail(error, "segment holds the wrong record kind");
      }
      if (meta.record_bytes != RecordTraits<Record>::wire_bytes) {
        return fail(error, "segment record width " +
                               std::to_string(meta.record_bytes) +
                               " does not match this build's codec");
      }
      const std::size_t payload_bytes =
          std::size_t{meta.record_count} * RecordTraits<Record>::wire_bytes;
      if (!reader.require(payload_bytes)) {
        return fail(error, "truncated segment payload (file cut short mid-segment)");
      }
      const std::span<const std::uint8_t> payload = reader.raw(payload_bytes);
      if (crc32(payload) != meta.payload_crc) {
        return fail(error, "segment payload CRC mismatch (corrupted records)");
      }
      if (!segments_.empty()) {
        const SegmentMeta& first = segments_.front().meta;
        if (meta.seed != first.seed || meta.shard != first.shard ||
            meta.total_shards != first.total_shards) {
          return fail(error, "segments disagree on seed/shard identity");
        }
      }
      record_count_ += meta.record_count;
      segments_.push_back(SegmentView{meta, payload});
    }
    if (!segments_.empty()) {
      cursor_ = net::WireReader(segments_.front().payload);
    }
    return true;
  }

  /// Hot sequential read: records in file order (per-segment cycle order).
  IWSCAN_HOT bool next(std::uint64_t& cycle, Record& out) {
    while (segment_index_ < segments_.size()) {
      if (cursor_.remaining() >= RecordTraits<Record>::wire_bytes) {
        decode_record(cursor_, cycle, out);
        return true;
      }
      ++segment_index_;
      if (segment_index_ < segments_.size()) {
        cursor_ = net::WireReader(segments_[segment_index_].payload);
      }
    }
    return false;
  }

  [[nodiscard]] const std::vector<SegmentView>& segments() const noexcept {
    return segments_;
  }
  [[nodiscard]] std::uint64_t record_count() const noexcept { return record_count_; }
  [[nodiscard]] bool has_identity() const noexcept { return !segments_.empty(); }
  [[nodiscard]] std::uint64_t seed() const noexcept {
    return segments_.empty() ? 0 : segments_.front().meta.seed;
  }
  [[nodiscard]] std::uint32_t shard() const noexcept {
    return segments_.empty() ? 0 : segments_.front().meta.shard;
  }
  [[nodiscard]] std::uint32_t total_shards() const noexcept {
    return segments_.empty() ? 1 : segments_.front().meta.total_shards;
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  bool fail(std::string* error, const std::string& detail) const {
    if (error != nullptr) *error = path_ + ": " + detail;
    return false;
  }

  MappedFile file_;
  std::vector<SegmentView> segments_;
  std::uint64_t record_count_ = 0;
  std::size_t segment_index_ = 0;
  net::WireReader cursor_{std::span<const std::uint8_t>{}};
  std::string path_;
};

/// K-way merge over every segment of every input file: streams records in
/// strictly increasing global cycle order. Cycle uniqueness is enforced —
/// a repeated or out-of-order cycle (overlapping shards, duplicated
/// inputs) stops the stream with ok() == false instead of emitting a
/// corrupt merge.
template <class Record>
class MergeReader {
 public:
  explicit MergeReader(std::vector<SegmentReader<Record>> inputs)
      : inputs_(std::move(inputs)) {
    for (const SegmentReader<Record>& input : inputs_) {
      for (const SegmentView& segment : input.segments()) {
        if (segment.meta.record_count == 0) continue;
        Cursor cursor;
        cursor.reader = net::WireReader(segment.payload);
        decode_record(cursor.reader, cursor.cycle, cursor.record);
        cursors_.push_back(std::move(cursor));
      }
      record_count_ += input.record_count();
    }
    heap_.resize(cursors_.size());
    for (std::size_t i = 0; i < heap_.size(); ++i) heap_[i] = i;
    std::make_heap(heap_.begin(), heap_.end(), CycleGreater{this});
  }

  bool next(std::uint64_t& cycle, Record& out) {
    if (!error_.empty() || heap_.empty()) return false;
    std::pop_heap(heap_.begin(), heap_.end(), CycleGreater{this});
    Cursor& top = cursors_[heap_.back()];
    cycle = top.cycle;
    out = top.record;
    if (top.reader.remaining() >= RecordTraits<Record>::wire_bytes) {
      decode_record(top.reader, top.cycle, top.record);
      std::push_heap(heap_.begin(), heap_.end(), CycleGreater{this});
    } else {
      heap_.pop_back();
    }
    if (emitted_ > 0 && cycle <= last_cycle_) {
      error_ = "cycle index " + std::to_string(cycle) +
               " repeats or regresses in the merge (overlapping or "
               "duplicated spill inputs)";
      return false;
    }
    last_cycle_ = cycle;
    ++emitted_;
    return true;
  }

  [[nodiscard]] std::uint64_t record_count() const noexcept { return record_count_; }
  [[nodiscard]] std::uint64_t seed() const noexcept {
    for (const SegmentReader<Record>& input : inputs_) {
      if (input.has_identity()) return input.seed();
    }
    return 0;
  }
  [[nodiscard]] bool ok() const noexcept { return error_.empty(); }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

 private:
  struct Cursor {
    net::WireReader reader{std::span<const std::uint8_t>{}};
    std::uint64_t cycle = 0;
    Record record{};
  };
  struct CycleGreater {
    const MergeReader* self;
    bool operator()(std::size_t a, std::size_t b) const {
      return self->cursors_[a].cycle > self->cursors_[b].cycle;
    }
  };

  std::vector<SegmentReader<Record>> inputs_;  // owns the mappings
  std::vector<Cursor> cursors_;
  std::vector<std::size_t> heap_;
  std::uint64_t record_count_ = 0;
  std::uint64_t last_cycle_ = 0;
  std::uint64_t emitted_ = 0;
  std::string error_;
};

/// Opens and cross-validates a set of spill files, then hands back the
/// merge. Rejects, with a clear error: unreadable/corrupt files, inputs
/// from different scans (mixed seeds), and overlapping shard strides.
template <class Record>
[[nodiscard]] std::optional<MergeReader<Record>> open_merge(
    const std::vector<std::string>& files, std::string* error) {
  std::vector<SegmentReader<Record>> readers;
  readers.reserve(files.size());
  for (const std::string& file : files) {
    SegmentReader<Record> reader;
    if (!reader.open(file, error)) return std::nullopt;
    readers.push_back(std::move(reader));
  }
  const SegmentReader<Record>* reference = nullptr;
  for (const SegmentReader<Record>& reader : readers) {
    if (!reader.has_identity()) continue;  // empty spill: nothing to clash
    if (reference == nullptr) {
      reference = &reader;
      continue;
    }
    if (reader.seed() != reference->seed()) {
      if (error != nullptr) {
        *error = "mixed scan seeds: " + reference->path() + " has seed " +
                 std::to_string(reference->seed()) + " but " + reader.path() +
                 " has seed " + std::to_string(reader.seed()) +
                 "; spill files merge only within a single scan";
      }
      return std::nullopt;
    }
  }
  for (std::size_t i = 0; i < readers.size(); ++i) {
    if (!readers[i].has_identity()) continue;
    for (std::size_t j = i + 1; j < readers.size(); ++j) {
      if (!readers[j].has_identity()) continue;
      if (shards_overlap(readers[i].shard(), readers[i].total_shards(),
                         readers[j].shard(), readers[j].total_shards())) {
        if (error != nullptr) {
          *error = "overlapping shards: " + readers[i].path() + " covers shard " +
                   std::to_string(readers[i].shard()) + "/" +
                   std::to_string(readers[i].total_shards()) + " and " +
                   readers[j].path() + " covers shard " +
                   std::to_string(readers[j].shard()) + "/" +
                   std::to_string(readers[j].total_shards()) +
                   "; their permutation strides intersect, so the same "
                   "targets would merge twice";
        }
        return std::nullopt;
      }
    }
  }
  return MergeReader<Record>(std::move(readers));
}

/// Convenience: merge `files` fully into RAM (tests, small scans).
template <class Record>
[[nodiscard]] bool read_merged(const std::vector<std::string>& files,
                               std::vector<Record>& out, std::string* error) {
  auto merge = open_merge<Record>(files, error);
  if (!merge.has_value()) return false;
  out.clear();
  out.reserve(static_cast<std::size_t>(merge->record_count()));
  std::uint64_t cycle = 0;
  Record record{};
  while (merge->next(cycle, record)) out.push_back(record);
  if (!merge->ok()) {
    if (error != nullptr) *error = merge->error();
    return false;
  }
  return true;
}

}  // namespace iwscan::store
