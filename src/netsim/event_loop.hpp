// Discrete-event simulation core.
//
// Virtual time advances only when events fire, so a whole-population scan
// that would take hours of wall-clock time on a real network executes in
// seconds while preserving every timing-dependent behaviour (RTOs, scan
// timeouts, rate limiting).
//
// Storage layout (the hot path of the whole simulator): callbacks live in a
// slab of recycled slots (inline via util::InlineFn), and firing order
// comes from a hierarchical timing wheel over lightweight {when, seq, slot}
// records — O(1) schedule and cancel, amortized O(1) fire, and no allocator
// traffic in steady state because bucket vectors and slab slots are reused.
// The firing order is exactly the historical contract: earliest virtual
// time first, ties broken by schedule order (each wheel granule's records
// are sorted by (when, seq) before draining; `seq` mirrors the monotonic
// ids the previous priority-queue implementation sorted on).
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/annotations.hpp"
#include "util/inline_fn.hpp"

namespace iwscan::sim {

using SimTime = std::chrono::nanoseconds;

constexpr SimTime usec(std::int64_t n) { return std::chrono::microseconds(n); }
constexpr SimTime msec(std::int64_t n) { return std::chrono::milliseconds(n); }
constexpr SimTime sec(std::int64_t n) { return std::chrono::seconds(n); }

/// Handle for cancelling a scheduled event. 0 is the null handle. Encodes
/// {slot + 1, generation}; a slot's generation bumps every time it is
/// released, so a handle kept past its event firing (or cancellation) can
/// never cancel an unrelated later event that reuses the slot.
using EventId = std::uint64_t;
inline constexpr EventId kNullEvent = 0;

class EventLoop {
 public:
  using Callback = util::InlineFn;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedule `fn` to run `delay` after now. Negative delays clamp to now.
  template <typename F,
            typename = std::enable_if_t<
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventId schedule(SimTime delay, F&& fn) {
    if (delay < SimTime::zero()) delay = SimTime::zero();
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Schedule at an absolute virtual time (clamped to now if in the past).
  /// Inline and templated: scheduling is the single hottest call in the
  /// simulator, and constructing the callable directly in its slab slot
  /// (instead of routing a type-erased temporary through a relocating
  /// move) keeps the whole arm sequence in the caller's frame.
  template <typename F,
            typename = std::enable_if_t<
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventId schedule_at(SimTime when, F&& fn) {
    if (when < now_) when = now_;
    const std::uint32_t slot = acquire_slot();
    Slot& s = slot_at(slot);
    if constexpr (std::is_same_v<std::decay_t<F>, Callback>) {
      s.fn = std::forward<F>(fn);
    } else {
      // iwlint: allow(hot-path) -- InlineFn::emplace constructs the callable
      // in the slot's inline storage; not container growth
      s.fn.emplace(std::forward<F>(fn));
    }
    s.seq = next_seq_++;
    insert_record(Record{when.count(), s.seq, slot});
    ++records_;
    ++live_;
    return (static_cast<EventId>(slot) + 1) << 32 | s.generation;
  }

  /// Cancel a pending event. Safe on already-fired, stale, or null ids.
  void cancel(EventId id);

  /// Run a single event. Returns false if the queue is empty.
  IWSCAN_HOT bool step();

  /// Run events with time ≤ deadline; advances now() to deadline if the
  /// queue drains earlier.
  IWSCAN_HOT void run_until(SimTime deadline);

  /// Run until the queue is empty.
  IWSCAN_HOT void run();

  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }
  /// Live (scheduled, not cancelled, not yet fired) events. Lazily-dropped
  /// cancelled records are not counted.
  [[nodiscard]] std::size_t pending_events() const noexcept { return live_; }
  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return events_processed_;
  }
  /// Physical records held in the wheel/overflow structures (live plus
  /// lazily-dropped cancelled ones). Test/debug introspection: lets tests
  /// pin that record accounting never drifts (underflow here would degrade
  /// every cancel into a full sweep).
  [[nodiscard]] std::size_t stored_records() const noexcept {
    return records_;
  }

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffff;

  // One cache line: InlineFn (48 B) + bookkeeping. `generation` bumps on
  // every release (fire or cancel), so an EventId carrying an older
  // generation can never cancel a free or reused slot. `seq` snapshots the
  // schedule-order counter at arm time (0 = free); a wheel record is stale
  // exactly when its seq no longer matches its slot's.
  struct Slot {
    Callback fn;
    std::uint32_t generation = 1;
    std::uint32_t next_free = kNoSlot;
    std::uint64_t seq = 0;
  };

  // `seq` doubles as the deterministic tie-break (schedule order) and the
  // staleness token matched against the slot.
  struct Record {
    SimTime::rep when;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  struct RecordOrder {
    bool operator()(const Record& a, const Record& b) const noexcept {
      if (a.when != b.when) return a.when < b.when;
      return a.seq < b.seq;
    }
  };

  // Wheel geometry: 65.5 µs granules, 4 levels of 64 buckets cover
  // ~2^40 ns ≈ 18 virtual minutes ahead; anything further waits in an
  // overflow list that re-buckets when the wheel drains down to it. The
  // coarse granule batches nearby events into one sort+drain pass, so the
  // per-bucket bookkeeping (candidate scan, drain setup) amortizes across
  // tens of events instead of being paid per event.
  static constexpr int kGranuleBits = 16;
  static constexpr int kBucketBits = 6;
  static constexpr std::size_t kBuckets = std::size_t{1} << kBucketBits;
  static constexpr int kLevels = 4;
  static constexpr std::uint64_t kNoTick = ~std::uint64_t{0};

  [[nodiscard]] static std::uint64_t tick_of(SimTime::rep when) noexcept {
    return static_cast<std::uint64_t>(when) >> kGranuleBits;
  }

  // The slab lives in fixed 64 KiB chunks rather than one growing vector:
  // slots keep stable addresses (no relocation of armed callbacks), and the
  // modest chunk size lets the allocator recycle freed chunks across
  // EventLoop instances instead of returning multi-megabyte blocks to the
  // OS and page-faulting them back in for every new loop.
  static constexpr int kChunkBits = 10;
  static constexpr std::uint32_t kChunkSlots = 1u << kChunkBits;

  [[nodiscard]] Slot& slot_at(std::uint32_t slot) noexcept {
    return chunks_[slot >> kChunkBits][slot & (kChunkSlots - 1)];
  }
  [[nodiscard]] const Slot& slot_at(std::uint32_t slot) const noexcept {
    return chunks_[slot >> kChunkBits][slot & (kChunkSlots - 1)];
  }
  [[nodiscard]] std::uint32_t acquire_slot() {
    if (free_head_ != kNoSlot) {
      const std::uint32_t slot = free_head_;
      free_head_ = slot_at(slot).next_free;
      return slot;
    }
    if ((slot_count_ & (kChunkSlots - 1)) == 0) grow_slab();
    return slot_count_++;
  }
  void grow_slab();
  void release_slot(std::uint32_t slot);
  [[nodiscard]] bool stale(const Record& record) const noexcept {
    return slot_at(record.slot).seq != record.seq;
  }
  void insert_record(const Record& record) {
    const std::uint64_t t = tick_of(record.when);
    if (drain_active_ && t == drain_tick_) {
      insert_into_drain(record);
      return;
    }
    // Invariant: tick_ ≤ tick_of(when) whenever user code can schedule, so
    // the distance is non-negative and picks the level whose window holds
    // the record.
    const std::uint64_t distance = t - tick_;
    for (int level = 0; level < kLevels; ++level) {
      if (distance < std::uint64_t{1} << (kBucketBits * (level + 1))) {
        const std::size_t bucket = (t >> (kBucketBits * level)) & (kBuckets - 1);
        // iwlint: allow(hot-path) -- append into a recycled bucket vector;
        // capacity is reused across wheel revolutions (alloc_budget_test)
        wheel_[level][bucket].push_back(record);
        occupancy_[level] |= std::uint64_t{1} << bucket;
        return;
      }
    }
    // iwlint: allow(hot-path) -- overflow list holds only events scheduled
    // beyond the wheel horizon (~18 virtual minutes); rare and re-bucketed
    overflow_.push_back(record);
  }
  void insert_into_drain(const Record& record);
  void cascade(int level, std::size_t bucket);
  /// Fire the earliest event if its time is ≤ limit. Returns false (and
  /// leaves the loop consistent) otherwise.
  bool fire_next(SimTime::rep limit);
  void fire(const Record& record);
  bool rebucket_overflow(SimTime::rep limit);
  /// Drop every stale record (bounds memory under cancel-heavy loads).
  void sweep_stale();
  void clear_all_records();

  SimTime now_{0};
  std::uint64_t next_seq_ = 1;
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint32_t slot_count_ = 0;
  std::uint32_t free_head_ = kNoSlot;
  std::size_t live_ = 0;
  std::uint64_t events_processed_ = 0;

  std::array<std::array<std::vector<Record>, kBuckets>, kLevels> wheel_;
  std::array<std::uint64_t, kLevels> occupancy_{};
  std::vector<Record> overflow_;
  std::vector<Record> cascade_scratch_;  // empty between cascades
  std::uint64_t tick_ = 0;     // wheel cursor; ≤ tick_of(next fire)
  std::size_t records_ = 0;    // live + stale records held in wheel/overflow
  bool drain_active_ = false;  // a level-0 bucket is sorted and mid-drain
  std::uint32_t drain_bucket_ = 0;
  std::uint64_t drain_tick_ = 0;
  std::size_t drain_pos_ = 0;
};

}  // namespace iwscan::sim
