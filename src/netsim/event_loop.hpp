// Discrete-event simulation core.
//
// Virtual time advances only when events fire, so a whole-population scan
// that would take hours of wall-clock time on a real network executes in
// seconds while preserving every timing-dependent behaviour (RTOs, scan
// timeouts, rate limiting).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>

namespace iwscan::sim {

using SimTime = std::chrono::nanoseconds;

constexpr SimTime usec(std::int64_t n) { return std::chrono::microseconds(n); }
constexpr SimTime msec(std::int64_t n) { return std::chrono::milliseconds(n); }
constexpr SimTime sec(std::int64_t n) { return std::chrono::seconds(n); }

/// Handle for cancelling a scheduled event. 0 is the null handle.
using EventId = std::uint64_t;
inline constexpr EventId kNullEvent = 0;

class EventLoop {
 public:
  using Callback = std::function<void()>;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedule `fn` to run `delay` after now. Negative delays clamp to now.
  EventId schedule(SimTime delay, Callback fn);

  /// Schedule at an absolute virtual time (clamped to now if in the past).
  EventId schedule_at(SimTime when, Callback fn);

  /// Cancel a pending event. Safe on already-fired or null ids.
  void cancel(EventId id);

  /// Run a single event. Returns false if the queue is empty.
  bool step();

  /// Run events with time ≤ deadline; advances now() to deadline if the
  /// queue drains earlier.
  void run_until(SimTime deadline);

  /// Run until the queue is empty.
  void run();

  [[nodiscard]] bool empty() const noexcept { return pending_.empty(); }
  [[nodiscard]] std::size_t pending_events() const noexcept { return pending_.size(); }
  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return events_processed_;
  }

 private:
  struct Entry {
    SimTime when;
    EventId id;
    // Earliest-first; ties break by schedule order for determinism.
    bool operator<(const Entry& other) const noexcept {
      if (when != other.when) return when > other.when;
      return id > other.id;
    }
  };

  SimTime now_{0};
  EventId next_id_ = 1;
  std::priority_queue<Entry> queue_;
  std::unordered_map<EventId, Callback> pending_;
  std::uint64_t events_processed_ = 0;
};

}  // namespace iwscan::sim
