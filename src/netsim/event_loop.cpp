#include "netsim/event_loop.hpp"

#include <utility>

namespace iwscan::sim {

EventId EventLoop::schedule(SimTime delay, Callback fn) {
  if (delay < SimTime::zero()) delay = SimTime::zero();
  return schedule_at(now_ + delay, std::move(fn));
}

EventId EventLoop::schedule_at(SimTime when, Callback fn) {
  if (when < now_) when = now_;
  const EventId id = next_id_++;
  queue_.push(Entry{when, id});
  pending_.emplace(id, std::move(fn));
  return id;
}

void EventLoop::cancel(EventId id) {
  if (id == kNullEvent) return;
  pending_.erase(id);
  // The heap entry stays and is skipped lazily on pop.
}

bool EventLoop::step() {
  while (!queue_.empty()) {
    const Entry entry = queue_.top();
    queue_.pop();
    const auto it = pending_.find(entry.id);
    if (it == pending_.end()) continue;  // cancelled
    Callback fn = std::move(it->second);
    pending_.erase(it);
    now_ = entry.when;
    ++events_processed_;
    fn();
    return true;
  }
  return false;
}

void EventLoop::run_until(SimTime deadline) {
  while (!queue_.empty()) {
    const Entry entry = queue_.top();
    if (entry.when > deadline) break;
    queue_.pop();
    const auto it = pending_.find(entry.id);
    if (it == pending_.end()) continue;
    Callback fn = std::move(it->second);
    pending_.erase(it);
    now_ = entry.when;
    ++events_processed_;
    fn();
  }
  if (now_ < deadline) now_ = deadline;
}

void EventLoop::run() {
  while (step()) {
  }
}

}  // namespace iwscan::sim
