#include "netsim/event_loop.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <utility>

namespace iwscan::sim {

namespace {

constexpr std::uint32_t id_slot(EventId id) noexcept {
  return static_cast<std::uint32_t>(id >> 32) - 1;
}

constexpr std::uint32_t id_generation(EventId id) noexcept {
  return static_cast<std::uint32_t>(id);
}

constexpr SimTime::rep kNoLimit = std::numeric_limits<SimTime::rep>::max();

}  // namespace

void EventLoop::grow_slab() {
  // iwlint: allow(hot-path) -- slab growth stops at the scan's high-water
  // mark of in-flight events; steady state recycles slots via the free list
  chunks_.push_back(std::make_unique<Slot[]>(kChunkSlots));
}

void EventLoop::release_slot(std::uint32_t slot) {
  Slot& s = slot_at(slot);
  s.fn.reset();
  s.seq = 0;       // stale-ifies any wheel record for this arming
  ++s.generation;  // invalidates any outstanding EventId for this slot
  s.next_free = free_head_;
  free_head_ = slot;
  --live_;
}

// Lands in the granule currently being drained: a sorted insert past the
// drain cursor keeps same-time events firing in schedule order.
void EventLoop::insert_into_drain(const Record& record) {
  std::vector<Record>& bucket = wheel_[0][drain_bucket_];
  const auto it = std::upper_bound(
      bucket.begin() + static_cast<std::ptrdiff_t>(drain_pos_), bucket.end(),
      record, RecordOrder{});
  // iwlint: allow(hot-path) -- sorted insert into a recycled bucket vector;
  // bucket capacity is reused across granules (pinned by alloc_budget_test)
  bucket.insert(it, record);
}

void EventLoop::cancel(EventId id) {
  if (id == kNullEvent) return;
  const std::uint32_t slot = id_slot(id);
  if (slot >= slot_count_) return;
  if (slot_at(slot).seq == 0) return;  // already fired or cancelled
  if (slot_at(slot).generation != id_generation(id)) return;  // stale id
  release_slot(slot);
  // The wheel record is dropped lazily (at drain or cascade time); sweep
  // eagerly once stale records dominate so cancel-heavy loads stay bounded.
  if (records_ > 4 * live_ + 64) sweep_stale();
}

// Redistribute a higher-level bucket into lower levels. Every live record
// lands at least one level down (its distance from tick_ is less than this
// level's window span), but the bucket is swapped into scratch storage
// first so an insert_record that targets this very bucket can neither
// invalidate the iteration nor be wiped by the trailing clear.
void EventLoop::cascade(int level, std::size_t bucket) {
  occupancy_[level] &= ~(std::uint64_t{1} << bucket);
  cascade_scratch_.swap(wheel_[level][bucket]);  // scratch was empty
  for (const Record& record : cascade_scratch_) {
    if (stale(record)) {
      --records_;  // cancelled while parked: collected here
      continue;
    }
    insert_record(record);
  }
  cascade_scratch_.clear();
}

void EventLoop::fire(const Record& record) {
  Slot& s = slot_at(record.slot);
  Callback fn = std::move(s.fn);
  now_ = SimTime{record.when};
  tick_ = tick_of(record.when);
  // Free the slot before invoking: the callback may schedule (reusing this
  // slot under a new generation) or grow the slab.
  release_slot(record.slot);
  ++events_processed_;
  fn();
}

bool EventLoop::fire_next(SimTime::rep limit) {
  for (;;) {
    if (drain_active_) {
      std::vector<Record>& bucket = wheel_[0][drain_bucket_];
      while (drain_pos_ < bucket.size()) {
        const Record record = bucket[drain_pos_];
        if (stale(record)) {
          ++drain_pos_;
          --records_;
          continue;
        }
        if (record.when > limit) {
          // Pause. Physically erase the consumed prefix first: those
          // records were already subtracted from records_ when they fired
          // or were skipped as stale, and leaving them in the bucket would
          // make the next drain (or sweep_stale) subtract them again and
          // underflow records_. Then drop the drain state: before the next
          // call, external code may schedule events into earlier granules,
          // so the next fire must re-select the earliest bucket from
          // scratch.
          bucket.erase(bucket.begin(),
                       bucket.begin() + static_cast<std::ptrdiff_t>(drain_pos_));
          drain_active_ = false;
          return false;
        }
        ++drain_pos_;
        --records_;
        fire(record);  // may reallocate `bucket`; return without touching it
        return true;
      }
      bucket.clear();
      occupancy_[0] &= ~(std::uint64_t{1} << drain_bucket_);
      drain_active_ = false;
    }
    if (live_ == 0) {
      if (records_ != 0) clear_all_records();  // only stale records remain
      return false;
    }
    // Earliest candidate across levels: for level 0 the exact granule of
    // the next occupied bucket; for higher levels the start of the next
    // occupied window, a lower bound for every event parked inside it. Ties
    // go to the higher level (its bucket may hold earlier events and must
    // be redistributed before the level-0 granule fires).
    std::uint64_t best_tick = kNoTick;
    std::uint64_t best_start = 0;
    int best_level = -1;
    std::size_t best_bucket = 0;
    for (int level = 0; level < kLevels; ++level) {
      const std::uint64_t occ = occupancy_[level];
      if (occ == 0) continue;
      const std::uint64_t position = tick_ >> (kBucketBits * level);
      const int cursor = static_cast<int>(position & (kBuckets - 1));
      std::uint64_t rot = std::rotr(occ, cursor);
      std::uint64_t dist = static_cast<std::uint64_t>(std::countr_zero(rot));
      if (dist == 0 && level > 0 &&
          tick_ != position << (kBucketBits * level)) {
        // An occupied cursor bucket at level >= 1 is ambiguous. With tick_
        // exactly at the window's start (a higher-level cascade tied on
        // cand and jumped here first), its records are genuinely current
        // and must cascade now — the dist == 0 reading is right. But with
        // tick_ strictly mid-window, current-window records are impossible
        // (the scan cascades a bucket at its start before letting tick_
        // move past it, and mid-window inserts land at lower levels), so
        // the records sit one full revolution ahead — e.g. tick_ = 1 and
        // an insert at distance 64^(level+1)-1 granules. Then drop the
        // cursor bit and rescan: any other occupied bucket at this level
        // is nearer and must not be shadowed; only when the cursor bucket
        // is alone is the next window a whole revolution out. Level-0
        // granules are exact, so dist == 0 there is always due.
        rot &= rot - 1;
        dist = rot != 0 ? static_cast<std::uint64_t>(std::countr_zero(rot))
                        : kBuckets;
      }
      const std::uint64_t window = position + dist;
      const std::uint64_t start = window << (kBucketBits * level);
      const std::uint64_t cand = std::max(start, tick_);
      if (cand <= best_tick) {
        best_tick = cand;
        best_start = start;
        best_level = level;
        best_bucket = window & (kBuckets - 1);
      }
    }
    if (best_level < 0) {
      // Wheels empty but live events remain: they wait in the overflow
      // list beyond the wheel horizon.
      if (!rebucket_overflow(limit)) return false;
      continue;
    }
    if (best_level == 0) {
      std::vector<Record>& bucket = wheel_[0][best_bucket];
      // Cascades preserve push order and pushes follow schedule order, so
      // buckets are usually already sorted; the linear pre-check dodges the
      // full sort on that common path.
      if (bucket.size() > 1 &&
          !std::is_sorted(bucket.begin(), bucket.end(), RecordOrder{})) {
        std::sort(bucket.begin(), bucket.end(), RecordOrder{});
      }
      drain_active_ = true;
      drain_bucket_ = static_cast<std::uint32_t>(best_bucket);
      drain_tick_ = best_tick;
      drain_pos_ = 0;
      continue;
    }
    const auto start_ns = static_cast<SimTime::rep>(best_start << kGranuleBits);
    if (start_ns > limit) return false;  // keeps tick_ ≤ tick_of(limit)
    if (best_start > tick_) tick_ = best_start;
    cascade(best_level, best_bucket);
  }
}

bool EventLoop::rebucket_overflow(SimTime::rep limit) {
  std::erase_if(overflow_, [this](const Record& record) {
    if (stale(record)) {
      --records_;
      return true;
    }
    return false;
  });
  if (overflow_.empty()) return false;
  SimTime::rep min_when = kNoLimit;
  for (const Record& record : overflow_) {
    min_when = std::min(min_when, record.when);
  }
  if (min_when > limit) return false;
  // Nothing is parked in the wheels, so the cursor can jump straight to the
  // earliest overflow event; everything within the horizon re-buckets (the
  // earliest lands in level 0) and the far tail returns to the list.
  tick_ = std::max(tick_, tick_of(min_when));
  std::vector<Record> pending;
  pending.swap(overflow_);
  for (const Record& record : pending) {
    insert_record(record);
  }
  return true;
}

void EventLoop::sweep_stale() {
  for (int level = 0; level < kLevels; ++level) {
    std::uint64_t occ = occupancy_[level];
    while (occ != 0) {
      const auto bucket = static_cast<std::size_t>(std::countr_zero(occ));
      occ &= occ - 1;
      std::vector<Record>& records = wheel_[level][bucket];
      const bool draining =
          drain_active_ && level == 0 && bucket == drain_bucket_;
      // Leave the consumed prefix of an active drain untouched so the drain
      // cursor stays valid; the suffix is still sorted after compaction.
      auto begin = records.begin();
      if (draining) begin += static_cast<std::ptrdiff_t>(drain_pos_);
      const auto it = std::remove_if(
          begin, records.end(),
          [this](const Record& record) { return stale(record); });
      records_ -= static_cast<std::size_t>(records.end() - it);
      records.erase(it, records.end());
      if (records.empty() && !draining) {
        occupancy_[level] &= ~(std::uint64_t{1} << bucket);
      }
    }
  }
  std::erase_if(overflow_, [this](const Record& record) {
    if (stale(record)) {
      --records_;
      return true;
    }
    return false;
  });
}

void EventLoop::clear_all_records() {
  for (int level = 0; level < kLevels; ++level) {
    std::uint64_t occ = occupancy_[level];
    while (occ != 0) {
      wheel_[level][static_cast<std::size_t>(std::countr_zero(occ))].clear();
      occ &= occ - 1;
    }
    occupancy_[level] = 0;
  }
  overflow_.clear();
  drain_active_ = false;
  records_ = 0;
}

bool EventLoop::step() { return fire_next(kNoLimit); }

void EventLoop::run_until(SimTime deadline) {
  const SimTime::rep limit = deadline.count();
  while (fire_next(limit)) {
  }
  if (now_ < deadline) now_ = deadline;
}

void EventLoop::run() {
  while (fire_next(kNoLimit)) {
  }
}

}  // namespace iwscan::sim
