#include "netsim/network.hpp"

#include <utility>

#include "util/logging.hpp"

namespace iwscan::sim {

const PathConfig& Network::path_for(net::IPv4Address remote) const {
  const auto it = paths_.find(remote);
  return it == paths_.end() ? default_path_ : it->second;
}

util::Rng& Network::flow_rng(net::IPv4Address src, net::IPv4Address dst) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(src.value()) << 32) | dst.value();
  auto it = flow_rngs_.find(key);
  if (it == flow_rngs_.end()) {
    // iwlint: allow(hot-path) -- one insert per flow, on its first packet
    // only; the map is pre-sized via reserve_endpoints before a scan
    it = flow_rngs_.emplace(key, util::Rng(util::mix64(seed_, key))).first;
  }
  return it->second;
}

void Network::send(net::PacketBuf packet) {
  const net::PacketView bytes = packet.view();
  const auto dst = net::peek_destination(bytes);
  const auto src = net::peek_source(bytes);
  if (!dst || !src) {
    ++stats_.packets_unroutable;
    return;
  }

  ++stats_.packets_sent;
  stats_.bytes_sent += bytes.size();
  if (tap_) tap_(bytes);

  // Materialize the destination now (not at delivery): its path
  // characteristics (MTU, latency, loss) must shape this very packet.
  if (!endpoints_.contains(*dst) && resolver_) {
    resolver_(*dst);  // attaches itself (or stays dark)
  }

  // Path impairments are keyed by the remote (non-scanner) side so that
  // both directions of one host's path share a configuration. We try the
  // destination first (scanner→host), then the source (host→scanner).
  const PathConfig& path =
      paths_.contains(*dst) ? paths_.at(*dst)
      : paths_.contains(*src) ? paths_.at(*src)
                              : default_path_;

  // Path-MTU enforcement (RFC 1191): oversized DF packets are dropped and
  // answered with ICMP Fragmentation Needed carrying the next-hop MTU.
  if (bytes.size() > path.path_mtu) {
    const bool dont_fragment = bytes.size() > 6 && (bytes[6] & 0x40) != 0;
    if (dont_fragment) {
      ++stats_.icmp_frag_needed;
      send_frag_needed(*src, *dst, path.path_mtu, bytes);
      return;
    }
    // Fragmentation itself is not modeled; non-DF oversize is delivered
    // whole (the scanner always sets DF, matching real raw-socket probes).
  }

  if (filter_ && !filter_(bytes)) {
    ++stats_.packets_lost;
    return;
  }

  util::Rng& rng = flow_rng(*src, *dst);
  if (path.loss_rate > 0.0 && rng.chance(path.loss_rate)) {
    ++stats_.packets_lost;
    return;
  }

  SimTime delay = path.latency;
  if (path.jitter > SimTime::zero()) {
    delay += SimTime{static_cast<std::int64_t>(
        rng.uniform01() * static_cast<double>(path.jitter.count()))};
  }
  if (path.reorder_rate > 0.0 && rng.chance(path.reorder_rate)) {
    ++stats_.packets_reordered;
    delay += path.reorder_delay;
  }

  const net::IPv4Address destination = *dst;
  if (path.duplicate_rate > 0.0 && rng.chance(path.duplicate_rate)) {
    // Duplicate delivery (e.g. spurious link-layer retransmission): the
    // copy trails the original slightly. Copying the handle shares the
    // buffer — the duplicate costs a refcount bump, not a byte copy.
    ++stats_.packets_duplicated;
    deliver(delay + path.duplicate_delay, destination, packet);
  }
  deliver(delay, destination, std::move(packet));
}

void Network::deliver(SimTime delay, net::IPv4Address destination,
                      net::PacketBuf packet) {
  loop_.schedule(delay, [this, destination, packet = std::move(packet)]() {
    Endpoint* endpoint = nullptr;
    if (const auto it = endpoints_.find(destination); it != endpoints_.end()) {
      endpoint = it->second;
    } else if (resolver_) {
      endpoint = resolver_(destination);
    }
    if (endpoint == nullptr) {
      ++stats_.packets_unroutable;
      return;
    }
    ++stats_.packets_delivered;
    endpoint->handle_packet(packet.view());
  });
}

void Network::send_frag_needed(net::IPv4Address original_src,
                               net::IPv4Address original_dst,
                               std::uint32_t next_hop_mtu, net::PacketView original) {
  net::IcmpDatagram reply;
  // A real router answers from its own interface address; we source the
  // message from the unreachable destination, which is equally useful to
  // the prober (it matches on the embedded original header).
  reply.ip.src = original_dst;
  reply.ip.dst = original_src;
  reply.ip.ttl = 64;
  reply.icmp.type = net::IcmpType::DestinationUnreachable;
  reply.icmp.code = net::kIcmpFragNeeded;
  reply.icmp.id_or_unused = 0;
  reply.icmp.seq_or_mtu = static_cast<std::uint16_t>(next_hop_mtu);
  // RFC 792: original IP header + first 8 payload bytes.
  const std::size_t quote = std::min<std::size_t>(original.size(), 28);
  // iwlint: allow(hot-path) -- ICMP error path (Fragmentation Needed), not
  // steady-state forwarding; quotes at most 28 bytes of the original
  reply.icmp.payload.assign(original.begin(),
                            original.begin() + static_cast<std::ptrdiff_t>(quote));

  // The ICMP reply traverses the same path back (without MTU trouble).
  net::PacketBuf encoded = pool_.acquire();
  net::encode_into(reply, encoded.bytes());
  const PathConfig& path = path_for(original_dst);
  deliver(path.latency, original_src, std::move(encoded));
}

}  // namespace iwscan::sim
