// Packet capture: a tap on the simulated wire producing tcpdump-style text
// traces and standard pcap files (LINKTYPE_RAW) that open in Wireshark —
// the simulation analog of the packet traces the paper's validation
// manually inspects (§3.5).
#pragma once

#include <string>
#include <vector>

#include "netbase/packet.hpp"
#include "netbase/packet_buf.hpp"
#include "netsim/event_loop.hpp"

namespace iwscan::sim {

class Network;

class PacketCapture {
 public:
  struct Entry {
    SimTime timestamp;
    net::Bytes bytes;
  };

  /// Record one datagram (called by the Network tap or manually). The
  /// bytes are copied out of the borrowed view into the entry.
  void record(SimTime timestamp, net::PacketView bytes);

  /// Install this capture as the network's tap (replaces any previous tap).
  void attach(Network& network);

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] const std::vector<Entry>& entries() const noexcept {
    return entries_;
  }
  void clear() noexcept { entries_.clear(); }

  /// Optional cap on retained packets (oldest dropped); 0 = unlimited.
  void set_limit(std::size_t limit) noexcept { limit_ = limit; }

  /// tcpdump-style one-line-per-packet rendering.
  [[nodiscard]] std::string text() const;

  /// Standard pcap file bytes (magic 0xa1b2c3d4, linktype 101 = raw IPv4);
  /// loadable in Wireshark/tcpdump.
  [[nodiscard]] net::Bytes pcap() const;

 private:
  std::vector<Entry> entries_;
  std::size_t limit_ = 0;
};

/// Render one datagram as a tcpdump-like line (no timestamp).
[[nodiscard]] std::string format_packet(net::PacketView bytes);

}  // namespace iwscan::sim
