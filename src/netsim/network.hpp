// Simulated IP fabric: routes datagrams between endpoints with per-path
// delay, loss, reordering, and path-MTU enforcement.
//
// This is the stand-in for the real Internet between the scanner's vantage
// point and the probed hosts (see DESIGN.md §2). Endpoints exchange real
// encoded datagrams; the fabric only delays, drops, duplicates order, or
// answers with ICMP Fragmentation Needed — exactly the impairments the
// paper's methodology must survive (§3.1, §3.5).
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "netbase/ipv4.hpp"
#include "netbase/packet.hpp"
#include "netbase/packet_buf.hpp"
#include "netsim/event_loop.hpp"
#include "util/annotations.hpp"
#include "util/rng.hpp"

namespace iwscan::sim {

/// Anything that can receive datagrams at an IP address.
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  /// Called when a datagram addressed to this endpoint is delivered. The
  /// view borrows the fabric's pooled buffer for the duration of the call;
  /// endpoints that keep packet bytes must copy them. Marked as a hot-path
  /// boundary: the fabric's IWSCAN_HOT traversal stops at this virtual
  /// hand-off; receivers that are themselves datapath (ScanEngine) carry
  /// their own IWSCAN_HOT on the override.
  IWSCAN_HOT_BOUNDARY virtual void handle_packet(net::PacketView bytes) = 0;
};

/// Impairment model for one path (scanner ↔ host).
struct PathConfig {
  SimTime latency = msec(20);        // one-way propagation delay
  SimTime jitter = SimTime::zero();  // uniform extra delay in [0, jitter]
  double loss_rate = 0.0;            // i.i.d. per-packet drop probability
  double reorder_rate = 0.0;         // probability of extra delay → reorder
  SimTime reorder_delay = msec(5);   // extra delay applied to reordered packets
  double duplicate_rate = 0.0;       // probability a packet arrives twice
  SimTime duplicate_delay = msec(2); // extra delay of the duplicate copy
  std::uint32_t path_mtu = 1500;     // smallest MTU along the path
};

struct NetworkStats {
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t packets_lost = 0;
  std::uint64_t packets_reordered = 0;
  std::uint64_t packets_duplicated = 0;
  std::uint64_t packets_unroutable = 0;
  std::uint64_t icmp_frag_needed = 0;
  std::uint64_t bytes_sent = 0;
};

class Network {
 public:
  /// `resolver` is consulted for destinations with no attached endpoint —
  /// the lazy-instantiation hook used by the Internet model to materialize
  /// hosts only when a probe first reaches them. It may return nullptr
  /// (address unreachable; the packet is silently dropped, as on the real
  /// Internet where the scanner just times out).
  using Resolver = std::function<Endpoint*(net::IPv4Address)>;

  Network(EventLoop& loop, std::uint64_t seed) : loop_(loop), seed_(seed) {}

  /// The impairment seed this fabric was built with. A sharded scan
  /// (exec::ParallelScanRunner) builds one private Network per worker from
  /// this seed so per-flow impairment draws match the single-shard run.
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  void attach(net::IPv4Address addr, Endpoint* endpoint) { endpoints_[addr] = endpoint; }
  void detach(net::IPv4Address addr) { endpoints_.erase(addr); }
  [[nodiscard]] bool attached(net::IPv4Address addr) const {
    return endpoints_.contains(addr);
  }

  /// Pre-size the address-keyed maps for `expected` additional endpoints
  /// so a scan's lazy host instantiation does not rehash mid-flight.
  /// Flow-RNG entries are keyed per (address, direction), hence 2x. Pure
  /// capacity hint: nothing iterates these maps, so the (bucket-order
  /// dependent) behavior of the fabric is unchanged.
  void reserve_endpoints(std::size_t expected) {
    endpoints_.reserve(endpoints_.size() + expected);
    paths_.reserve(paths_.size() + expected);
    flow_rngs_.reserve(flow_rngs_.size() + 2 * expected);
  }

  void set_resolver(Resolver resolver) { resolver_ = std::move(resolver); }

  /// Deterministic fault injection for tests: invoked for every packet
  /// before impairments; returning false drops it (counted as lost).
  using Filter = std::function<bool(net::PacketView)>;
  void set_filter(Filter filter) { filter_ = std::move(filter); }

  /// Wire tap (see PacketCapture): observes every packet at injection
  /// time, before any impairment — the sender-side vantage point.
  using Tap = std::function<void(net::PacketView)>;
  void set_tap(Tap tap) { tap_ = std::move(tap); }

  void set_default_path(const PathConfig& config) { default_path_ = config; }
  [[nodiscard]] const PathConfig& default_path() const noexcept { return default_path_; }

  /// Per-destination path override (keyed by the non-scanner endpoint).
  void set_path(net::IPv4Address addr, const PathConfig& config) {
    paths_[addr] = config;
  }
  void clear_path(net::IPv4Address addr) { paths_.erase(addr); }

  /// Inject a datagram into the fabric. Routing uses the IP header's
  /// destination; impairments use the path keyed by the *remote* side
  /// (destination for scanner→host, source for host→scanner — the same
  /// path object, so loss is symmetric per host as on one Internet path).
  /// The buffer should come from this fabric's pool(); duplication and the
  /// delivery hop then share it by handle instead of copying bytes.
  IWSCAN_HOT void send(net::PacketBuf packet);

  /// Compatibility overload for callers that still build owned byte
  /// vectors; the vector is adopted into the pool.
  void send(net::Bytes bytes) { send(pool_.adopt(std::move(bytes))); }

  /// Recycled packet buffers for senders on this fabric (one pool per
  /// shard; see packet_buf.hpp for the ownership rules).
  [[nodiscard]] net::BufferPool& pool() noexcept { return pool_; }

  [[nodiscard]] const NetworkStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

  [[nodiscard]] EventLoop& loop() noexcept { return loop_; }

 private:
  [[nodiscard]] const PathConfig& path_for(net::IPv4Address remote) const;
  [[nodiscard]] util::Rng& flow_rng(net::IPv4Address src, net::IPv4Address dst);
  IWSCAN_HOT void deliver(SimTime delay, net::IPv4Address destination,
                          net::PacketBuf packet);
  void send_frag_needed(net::IPv4Address original_src, net::IPv4Address original_dst,
                        std::uint32_t next_hop_mtu, net::PacketView original);

  EventLoop& loop_;
  std::uint64_t seed_;
  // Impairment draws are per-flow (keyed by the ordered (src, dst) pair and
  // seeded from `seed_`), not from one shared stream: a flow's loss/jitter
  // sequence then depends only on its own packet order, so interleaving
  // flows differently — e.g. splitting a scan across shard workers — cannot
  // change which packets of a given flow are dropped or delayed.
  std::unordered_map<std::uint64_t, util::Rng> flow_rngs_;
  std::unordered_map<net::IPv4Address, Endpoint*> endpoints_;
  std::unordered_map<net::IPv4Address, PathConfig> paths_;
  net::BufferPool pool_;
  PathConfig default_path_;
  Resolver resolver_;
  Filter filter_;
  Tap tap_;
  NetworkStats stats_;
};

}  // namespace iwscan::sim
