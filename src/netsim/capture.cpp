#include "netsim/capture.hpp"

#include <cstdio>

#include "netsim/network.hpp"

namespace iwscan::sim {
namespace {

void put_u32le(net::Bytes& out, std::uint32_t value) {
  out.push_back(static_cast<std::uint8_t>(value));
  out.push_back(static_cast<std::uint8_t>(value >> 8));
  out.push_back(static_cast<std::uint8_t>(value >> 16));
  out.push_back(static_cast<std::uint8_t>(value >> 24));
}

void put_u16le(net::Bytes& out, std::uint16_t value) {
  out.push_back(static_cast<std::uint8_t>(value));
  out.push_back(static_cast<std::uint8_t>(value >> 8));
}

}  // namespace

void PacketCapture::record(SimTime timestamp, net::PacketView bytes) {
  if (limit_ != 0 && entries_.size() >= limit_) {
    entries_.erase(entries_.begin());
  }
  entries_.push_back(Entry{timestamp, net::Bytes(bytes.begin(), bytes.end())});
}

void PacketCapture::attach(Network& network) {
  network.set_tap([this, &network](net::PacketView bytes) {
    record(network.loop().now(), bytes);
  });
}

std::string format_packet(net::PacketView bytes) {
  const auto datagram = net::decode_datagram(bytes);
  if (!datagram) return "[malformed datagram, " + std::to_string(bytes.size()) + " B]";

  char buf[256];
  if (const auto* segment = std::get_if<net::TcpSegment>(&*datagram)) {
    std::string flags;
    if (segment->tcp.has(net::kSyn)) flags += 'S';
    if (segment->tcp.has(net::kFin)) flags += 'F';
    if (segment->tcp.has(net::kRst)) flags += 'R';
    if (segment->tcp.has(net::kPsh)) flags += 'P';
    if (segment->tcp.has(net::kAck)) flags += '.';
    if (flags.empty()) flags = "none";

    std::string options;
    if (const auto mss = net::find_mss(segment->tcp.options)) {
      options = ", mss " + std::to_string(*mss);
    }
    std::snprintf(buf, sizeof(buf), "IP %s.%u > %s.%u: Flags [%s], seq %u, ack %u, win %u%s, length %zu",
                  segment->ip.src.to_string().c_str(), segment->tcp.src_port,
                  segment->ip.dst.to_string().c_str(), segment->tcp.dst_port,
                  flags.c_str(), segment->tcp.seq, segment->tcp.ack,
                  segment->tcp.window, options.c_str(), segment->payload.size());
    return buf;
  }

  const auto& icmp = std::get<net::IcmpDatagram>(*datagram);
  const char* kind = "icmp";
  switch (icmp.icmp.type) {
    case net::IcmpType::Echo: kind = "echo request"; break;
    case net::IcmpType::EchoReply: kind = "echo reply"; break;
    case net::IcmpType::DestinationUnreachable:
      kind = icmp.icmp.code == net::kIcmpFragNeeded ? "unreachable - need to frag"
                                                    : "unreachable";
      break;
  }
  std::snprintf(buf, sizeof(buf), "IP %s > %s: ICMP %s, length %zu",
                icmp.ip.src.to_string().c_str(), icmp.ip.dst.to_string().c_str(),
                kind, icmp.icmp.payload.size() + 8);
  return buf;
}

std::string PacketCapture::text() const {
  std::string out;
  for (const auto& entry : entries_) {
    char stamp[32];
    std::snprintf(stamp, sizeof(stamp), "%12.6f  ",
                  std::chrono::duration<double>(entry.timestamp).count());
    out += stamp;
    out += format_packet(entry.bytes);
    out += '\n';
  }
  return out;
}

net::Bytes PacketCapture::pcap() const {
  net::Bytes out;
  out.reserve(24 + entries_.size() * 16 + 4096);
  // Global header.
  put_u32le(out, 0xa1b2c3d4);  // magic (microsecond timestamps)
  put_u16le(out, 2);           // version major
  put_u16le(out, 4);           // version minor
  put_u32le(out, 0);           // thiszone
  put_u32le(out, 0);           // sigfigs
  put_u32le(out, 65535);       // snaplen
  put_u32le(out, 101);         // LINKTYPE_RAW: packets begin with the IP header

  for (const auto& entry : entries_) {
    const auto micros =
        std::chrono::duration_cast<std::chrono::microseconds>(entry.timestamp);
    put_u32le(out, static_cast<std::uint32_t>(micros.count() / 1'000'000));
    put_u32le(out, static_cast<std::uint32_t>(micros.count() % 1'000'000));
    put_u32le(out, static_cast<std::uint32_t>(entry.bytes.size()));
    put_u32le(out, static_cast<std::uint32_t>(entry.bytes.size()));
    out.insert(out.end(), entry.bytes.begin(), entry.bytes.end());
  }
  return out;
}

}  // namespace iwscan::sim
