#include "analysis/spill_report.hpp"

#include <utility>

namespace iwscan::analysis {

SpillSummary summarize_spill(store::MergeReader<core::HostScanRecord>& reader) {
  SpillSummary out;
  out.seed = reader.seed();
  std::uint64_t cycle = 0;
  core::HostScanRecord record;
  while (reader.next(cycle, record)) {
    accumulate(out.summary, record);
    if (record.outcome == core::HostOutcome::Success) {
      ++out.histogram[record.iw_segments];
    }
    ++out.records;
  }
  return out;
}

bool summarize_spill_files(const std::vector<std::string>& inputs, SpillSummary& out,
                           std::string& error) {
  std::vector<std::string> files;
  if (!store::collect_spill_files(inputs, store::RecordKind::Host, files, &error)) {
    return false;
  }
  auto merge = store::open_merge<core::HostScanRecord>(files, &error);
  if (!merge.has_value()) return false;
  out = summarize_spill(*merge);
  if (!merge->ok()) {
    error = merge->error();
    return false;
  }
  return true;
}

std::map<std::uint32_t, double> spill_iw_fractions(const SpillSummary& summary) {
  std::uint64_t total = 0;
  for (const auto& [iw, count] : summary.histogram) total += count;
  std::map<std::uint32_t, double> fractions;
  if (total == 0) return fractions;
  for (const auto& [iw, count] : summary.histogram) {
    fractions[iw] = static_cast<double>(count) / static_cast<double>(total);
  }
  return fractions;
}

}  // namespace iwscan::analysis
