// DBSCAN density clustering (Ester et al. 1996), used as in §4.3 of the
// paper: ASes are embedded as points of their IW-share vector
// (IW1, IW2, IW4, IW10, other) and clustered to reveal per-service
// deployment patterns (Fig. 5).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace iwscan::analysis {

inline constexpr int kDbscanNoise = -1;

struct DbscanParams {
  double epsilon = 0.15;  // neighbourhood radius (Euclidean)
  int min_points = 3;     // density threshold (including the point itself)
};

/// Cluster `points` (all of equal dimension). Returns one label per point:
/// 0..k-1 for clusters, kDbscanNoise for noise.
[[nodiscard]] std::vector<int> dbscan(std::span<const std::vector<double>> points,
                                      const DbscanParams& params);

/// Number of clusters in a label vector (max label + 1).
[[nodiscard]] int cluster_count(std::span<const int> labels);

}  // namespace iwscan::analysis
