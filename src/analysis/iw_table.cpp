#include "analysis/iw_table.hpp"

#include <cmath>

namespace iwscan::analysis {

void accumulate(DatasetSummary& summary, const core::HostScanRecord& record) {
  ++summary.probed;
  if (record.outcome == core::HostOutcome::Unreachable) return;
  ++summary.reachable;
  switch (record.outcome) {
    case core::HostOutcome::Success: ++summary.success; break;
    case core::HostOutcome::FewData: ++summary.few_data; break;
    case core::HostOutcome::Error: ++summary.error; break;
    case core::HostOutcome::Unreachable: break;
  }
}

DatasetSummary summarize(std::span<const core::HostScanRecord> records) {
  DatasetSummary summary;
  for (const auto& record : records) accumulate(summary, record);
  return summary;
}

std::map<std::uint32_t, std::uint64_t> iw_histogram(
    std::span<const core::HostScanRecord> records) {
  std::map<std::uint32_t, std::uint64_t> histogram;
  for (const auto& record : records) {
    if (record.outcome == core::HostOutcome::Success) {
      ++histogram[record.iw_segments];
    }
  }
  return histogram;
}

std::map<std::uint32_t, double> iw_fractions(
    std::span<const core::HostScanRecord> records) {
  const auto histogram = iw_histogram(records);
  std::uint64_t total = 0;
  for (const auto& [iw, count] : histogram) total += count;
  std::map<std::uint32_t, double> fractions;
  if (total == 0) return fractions;
  for (const auto& [iw, count] : histogram) {
    fractions[iw] = static_cast<double>(count) / static_cast<double>(total);
  }
  return fractions;
}

std::map<std::uint32_t, double> dominant_iws(
    const std::map<std::uint32_t, double>& fractions, double min_fraction) {
  std::map<std::uint32_t, double> dominant;
  for (const auto& [iw, fraction] : fractions) {
    if (fraction >= min_fraction) dominant.emplace(iw, fraction);
  }
  return dominant;
}

std::map<std::uint32_t, double> few_data_lower_bounds(
    std::span<const core::HostScanRecord> records) {
  std::map<std::uint32_t, std::uint64_t> counts;
  std::uint64_t total = 0;
  for (const auto& record : records) {
    if (record.outcome != core::HostOutcome::FewData) continue;
    ++counts[record.lower_bound];
    ++total;
  }
  std::map<std::uint32_t, double> fractions;
  if (total == 0) return fractions;
  for (const auto& [bound, count] : counts) {
    fractions[bound] = static_cast<double>(count) / static_cast<double>(total);
  }
  return fractions;
}

std::string records_to_csv(std::span<const core::HostScanRecord> records) {
  std::string out =
      "ip,outcome,iw_segments,iw_bytes,observed_mss,lower_bound,"
      "iw_segments_alt_mss,fin_seen,reorder_seen,loss_suspected,probes,"
      "connections\n";
  for (const auto& record : records) {
    out += record.ip.to_string();
    out += ',';
    out += to_string(record.outcome);
    out += ',';
    out += std::to_string(record.iw_segments);
    out += ',';
    out += std::to_string(record.iw_bytes);
    out += ',';
    out += std::to_string(record.observed_mss);
    out += ',';
    out += std::to_string(record.lower_bound);
    out += ',';
    out += std::to_string(record.iw_segments_b);
    out += ',';
    out += record.fin_seen ? '1' : '0';
    out += ',';
    out += record.reorder_seen ? '1' : '0';
    out += ',';
    out += record.loss_suspected ? '1' : '0';
    out += ',';
    out += std::to_string(record.probes_run);
    out += ',';
    out += std::to_string(record.connections_used);
    out += '\n';
  }
  return out;
}

double l1_distance(const std::map<std::uint32_t, double>& a,
                   const std::map<std::uint32_t, double>& b) {
  double distance = 0.0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() || ib != b.end()) {
    if (ib == b.end() || (ia != a.end() && ia->first < ib->first)) {
      distance += std::abs(ia->second);
      ++ia;
    } else if (ia == a.end() || ib->first < ia->first) {
      distance += std::abs(ib->second);
      ++ib;
    } else {
      distance += std::abs(ia->second - ib->second);
      ++ia;
      ++ib;
    }
  }
  return distance;
}

}  // namespace iwscan::analysis
