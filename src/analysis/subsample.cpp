#include "analysis/subsample.hpp"

#include <algorithm>
#include <set>

#include "analysis/iw_table.hpp"

namespace iwscan::analysis {

std::vector<core::HostScanRecord> subsample(
    std::span<const core::HostScanRecord> records, double fraction,
    std::uint64_t seed) {
  std::vector<core::HostScanRecord> sample;
  if (fraction >= 1.0) {
    sample.assign(records.begin(), records.end());
    return sample;
  }
  sample.reserve(static_cast<std::size_t>(static_cast<double>(records.size()) *
                                          fraction * 1.1) + 16);
  for (const auto& record : records) {
    const double coin =
        static_cast<double>(util::mix64(seed, record.ip.value()) >> 11) * 0x1.0p-53;
    if (coin < fraction) sample.push_back(record);
  }
  return sample;
}

SubsampleBand subsample_band(std::span<const core::HostScanRecord> records,
                             double fraction, int trials, double coverage,
                             std::uint64_t seed,
                             const std::map<std::uint32_t, double>& reference) {
  SubsampleBand band;
  if (trials <= 0) return band;

  // Collect the union of IW values so every trial contributes 0s for
  // missing values (essential for honest quantiles of rare IWs).
  std::set<std::uint32_t> keys;
  for (const auto& [iw, fraction_value] : reference) keys.insert(iw);

  std::vector<std::map<std::uint32_t, double>> trials_fractions;
  trials_fractions.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    const auto sample = subsample(records, fraction, util::mix64(seed, 1000 + t));
    auto fractions = iw_fractions(sample);
    band.max_l1_to_reference =
        std::max(band.max_l1_to_reference, l1_distance(fractions, reference));
    for (const auto& [iw, f] : fractions) keys.insert(iw);
    trials_fractions.push_back(std::move(fractions));
  }

  const double tail = (1.0 - coverage) / 2.0;
  for (const std::uint32_t iw : keys) {
    std::vector<double> values;
    values.reserve(trials_fractions.size());
    double sum = 0.0;
    for (const auto& fractions : trials_fractions) {
      const auto it = fractions.find(iw);
      const double v = it == fractions.end() ? 0.0 : it->second;
      values.push_back(v);
      sum += v;
    }
    std::sort(values.begin(), values.end());
    const auto at_quantile = [&](double q) {
      const double pos = q * static_cast<double>(values.size() - 1);
      const std::size_t lo = static_cast<std::size_t>(pos);
      const std::size_t hi = std::min(lo + 1, values.size() - 1);
      const double t = pos - static_cast<double>(lo);
      return values[lo] * (1.0 - t) + values[hi] * t;
    };
    band.mean[iw] = sum / static_cast<double>(values.size());
    band.quantile_lo[iw] = at_quantile(tail);
    band.quantile_hi[iw] = at_quantile(1.0 - tail);
  }
  return band;
}

}  // namespace iwscan::analysis
