#include "analysis/report.hpp"

#include <set>
#include <sstream>

#include "analysis/table_writer.hpp"
#include "util/strings.hpp"

namespace iwscan::analysis {
namespace {

std::string render_table(const TextTable& table, bool markdown) {
  if (!markdown) return table.render();
  // Markdown: rebuild from the CSV form.
  const std::string csv = table.csv();
  std::string out;
  bool header = true;
  for (const auto line : util::split(csv, '\n')) {
    if (line.empty()) continue;
    out += "| ";
    std::size_t columns = 0;
    for (const auto cell : util::split(line, ',')) {
      out += std::string(cell) + " | ";
      ++columns;
    }
    out += '\n';
    if (header) {
      out += "|";
      for (std::size_t i = 0; i < columns; ++i) out += "---|";
      out += '\n';
      header = false;
    }
  }
  return out;
}

void append_summary(std::ostringstream& out, std::string_view tag,
                    std::span<const core::HostScanRecord> records, bool markdown) {
  const auto summary = summarize(records);
  TextTable table({"scan", "probed", "reachable", "success", "few data", "error"});
  table.add_row({std::string(tag), util::format_count(summary.probed),
                 util::format_count(summary.reachable),
                 util::format_percent(summary.success_rate()),
                 util::format_percent(summary.few_data_rate()),
                 util::format_percent(summary.error_rate())});
  out << render_table(table, markdown) << '\n';
}

void append_distribution(std::ostringstream& out, std::string_view tag,
                         std::span<const core::HostScanRecord> records,
                         double threshold, bool markdown) {
  const auto fractions = dominant_iws(iw_fractions(records), threshold);
  TextTable table({"IW (segments)", "share of " + std::string(tag) + " hosts"});
  for (const auto& [iw, fraction] : fractions) {
    table.add_row({std::to_string(iw), util::format_percent(fraction)});
  }
  out << render_table(table, markdown) << '\n';
}

void append_few_data(std::ostringstream& out, std::string_view tag,
                     std::span<const core::HostScanRecord> records, bool markdown) {
  const auto bounds = few_data_lower_bounds(records);
  if (bounds.empty()) return;
  out << tag << " hosts without enough data (lower bounds):\n";
  TextTable table({"bound", "share of few-data hosts"});
  for (const auto& [bound, fraction] : bounds) {
    if (fraction < 0.002) continue;
    table.add_row({bound == 0 ? "no data" : "IW >= " + std::to_string(bound),
                   util::format_percent(fraction)});
  }
  out << render_table(table, markdown) << '\n';
}

void append_anomalies(std::ostringstream& out, std::string_view tag,
                      std::span<const core::HostScanRecord> records,
                      bool markdown) {
  std::map<core::ProbeAnomaly, std::uint64_t> counts;
  for (const auto& record : records) {
    if (record.anomaly != core::ProbeAnomaly::None) ++counts[record.anomaly];
  }
  if (counts.empty()) return;
  std::uint64_t total = 0;
  for (const auto& [anomaly, count] : counts) total += count;
  out << tag << " anomalous stacks (" << util::format_count(total) << " hosts):\n";
  TextTable table({"anomaly", "hosts"});
  for (const auto& [anomaly, count] : counts) {
    table.add_row({std::string(to_string(anomaly)), util::format_count(count)});
  }
  out << render_table(table, markdown) << '\n';
}

void append_per_service(std::ostringstream& out, const ScanInputs& inputs,
                        bool markdown) {
  ServiceClassifier classifier(*inputs.registry, inputs.rdns);
  const ServiceClass classes[] = {ServiceClass::Akamai, ServiceClass::Ec2,
                                  ServiceClass::Cloudflare, ServiceClass::Azure,
                                  ServiceClass::AccessNetwork, ServiceClass::Other};

  TextTable table({"service", "protocol", "successes", "IW1", "IW2", "IW4",
                   "IW10", "other"});
  const auto add_rows = [&](std::string_view protocol,
                            std::span<const core::HostScanRecord> records) {
    std::map<ServiceClass, std::map<std::uint32_t, std::uint64_t>> histograms;
    for (const auto& record : records) {
      if (record.outcome != core::HostOutcome::Success) continue;
      ++histograms[classifier.classify(record.ip)][record.iw_segments];
    }
    for (const ServiceClass service : classes) {
      const auto it = histograms.find(service);
      if (it == histograms.end()) continue;
      std::uint64_t total = 0;
      for (const auto& [iw, count] : it->second) total += count;
      const auto share = [&](std::uint32_t iw) {
        const auto hit = it->second.find(iw);
        return hit == it->second.end()
                   ? 0.0
                   : static_cast<double>(hit->second) / static_cast<double>(total);
      };
      const double other = 1.0 - share(1) - share(2) - share(4) - share(10);
      table.add_row({std::string(to_string(service)), std::string(protocol),
                     util::format_count(total), util::format_percent(share(1)),
                     util::format_percent(share(2)), util::format_percent(share(4)),
                     util::format_percent(share(10)),
                     util::format_percent(other < 0 ? 0.0 : other)});
    }
  };
  if (!inputs.http.empty()) add_rows("HTTP", inputs.http);
  if (!inputs.tls.empty()) add_rows("TLS", inputs.tls);
  out << render_table(table, markdown) << '\n';
}

}  // namespace

std::string render_report(const ScanInputs& inputs, const ReportOptions& options) {
  std::ostringstream out;
  const char* h1 = options.markdown ? "# " : "== ";
  const char* h1_end = options.markdown ? "" : " ==";
  const char* h2 = options.markdown ? "## " : "-- ";
  const char* h2_end = options.markdown ? "" : " --";

  out << h1 << options.title << h1_end << "\n\n";
  if (inputs.sample_fraction) {
    out << "Scan mode: random " << util::format_percent(*inputs.sample_fraction)
        << " sample of the address space (\"1% is enough\" mode).\n\n";
  }

  out << h2 << "Dataset" << h2_end << "\n\n";
  if (!inputs.http.empty()) append_summary(out, "HTTP", inputs.http, options.markdown);
  if (!inputs.tls.empty()) append_summary(out, "TLS", inputs.tls, options.markdown);

  out << h2 << "Initial window distribution" << h2_end << "\n\n";
  if (!inputs.http.empty()) {
    out << "HTTP:\n";
    append_distribution(out, "HTTP", inputs.http, options.dominant_threshold,
                        options.markdown);
  }
  if (!inputs.tls.empty()) {
    out << "TLS:\n";
    append_distribution(out, "TLS", inputs.tls, options.dominant_threshold,
                        options.markdown);
  }

  if (options.include_few_data) {
    out << h2 << "Hosts with insufficient data" << h2_end << "\n\n";
    if (!inputs.http.empty()) append_few_data(out, "HTTP", inputs.http, options.markdown);
    if (!inputs.tls.empty()) append_few_data(out, "TLS", inputs.tls, options.markdown);
  }

  if (options.include_anomalies) {
    out << h2 << "Anomalous stacks" << h2_end << "\n\n";
    if (!inputs.http.empty()) {
      append_anomalies(out, "HTTP", inputs.http, options.markdown);
    }
    if (!inputs.tls.empty()) append_anomalies(out, "TLS", inputs.tls, options.markdown);
  }

  if (options.include_per_service && inputs.registry != nullptr) {
    out << h2 << "Per-service breakdown" << h2_end << "\n\n";
    append_per_service(out, inputs, options.markdown);
  }

  return out.str();
}

}  // namespace iwscan::analysis
