#include "analysis/table_writer.hpp"

#include <algorithm>
#include <cstdio>

namespace iwscan::analysis {

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  std::string out;
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string{};
      out += cell;
      if (i + 1 < widths.size()) out.append(widths[i] - cell.size() + 2, ' ');
    }
    out += '\n';
  };

  emit_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  out.append(total > 2 ? total - 2 : total, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

std::string TextTable::csv() const {
  const auto quote = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (const char c : cell) {
      if (c == '"') quoted += '"';
      quoted += c;
    }
    quoted += '"';
    return quoted;
  };
  std::string out;
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) out += ',';
      out += quote(cells[i]);
    }
    out += '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
  return out;
}

std::string fmt_double(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

}  // namespace iwscan::analysis
