// IW-by-provider breakdown and the longitudinal (multi-epoch) drift tables.
//
// The per-provider view is the CDN-era refinement of the paper's Table 3:
// instead of a handful of named networks, every AS in the registry gets a
// row with its success counts, median measured IW, the share of large
// (IW ≥ 16) windows, and how many of its hosts degraded to bounded
// estimates because the first flight was paced (ProbeAnomaly::PacedDelivery).
//
// The longitudinal mode re-synthesizes the same world at epochs T0/T1/T2
// (DriftParams/CdnParams drift is monotone and deterministic per host) and
// scans each snapshot on a fresh event loop — the §5 trend-monitoring loop
// in library form. Output is byte-identical across shard counts and under
// the spill path, which cdn_test pins.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "analysis/scan_runner.hpp"
#include "core/result.hpp"
#include "inetmodel/as_registry.hpp"

namespace iwscan::analysis {

/// One provider (AS) row of the IW-by-provider breakdown.
struct ProviderIwRow {
  std::uint32_t asn = 0;
  std::string name;
  std::string kind;            // to_string(AsKind)
  std::uint64_t reachable = 0;
  std::uint64_t success = 0;
  std::uint64_t few_data = 0;
  std::uint64_t paced = 0;     // PacedDelivery anomalies (bounded estimates)
  std::map<std::uint32_t, std::uint64_t> histogram;  // IW segments → successes
  std::uint32_t median_iw = 0; // over successful estimates (0 if none)
  std::uint64_t large_iw = 0;  // successes with IW ≥ 16 (the CDN tiers)

  [[nodiscard]] double large_iw_share() const noexcept {
    return success != 0 ? static_cast<double>(large_iw) /
                              static_cast<double>(success)
                        : 0.0;
  }
  [[nodiscard]] double paced_share() const noexcept {
    return reachable != 0 ? static_cast<double>(paced) /
                                static_cast<double>(reachable)
                          : 0.0;
  }
};

/// Groups records by the AS owning each address. Rows come out in registry
/// order (deterministic); ASes no record fell into are omitted.
[[nodiscard]] std::vector<ProviderIwRow> provider_breakdown(
    std::span<const core::HostScanRecord> records,
    const model::AsRegistry& registry);

/// Render the breakdown as an aligned text table (or Markdown).
[[nodiscard]] std::string render_provider_table(
    std::span<const ProviderIwRow> rows, bool markdown = false);

/// One epoch of the longitudinal mode.
struct EpochBreakdown {
  int epoch = 0;
  std::vector<ProviderIwRow> rows;
};

struct LongitudinalOptions {
  model::ModelConfig model;  // `epoch` is overridden per run
  ScanOptions scan;          // spill_dir gets a per-epoch subdirectory
  std::vector<int> epochs = {0, 1, 2};
  std::uint64_t network_seed = 1;
};

/// Runs one scan per epoch against a freshly-synthesized world (same seed,
/// the drift/CDN epoch advanced). With scan.spill_dir set, each epoch
/// spills under "<dir>/epoch<N>" and is read back through the K-way merge.
/// Returns an empty vector (with `*error` set, if given) on spill failures.
[[nodiscard]] std::vector<EpochBreakdown> longitudinal_breakdown(
    const LongitudinalOptions& options, std::string* error = nullptr);

/// The drift table: one row per provider, one column group per epoch
/// (successes, median IW, IW ≥ 16 share, paced share).
[[nodiscard]] std::string render_longitudinal_table(
    std::span<const EpochBreakdown> epochs, bool markdown = false);

}  // namespace iwscan::analysis
