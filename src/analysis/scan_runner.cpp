#include "analysis/scan_runner.hpp"

namespace iwscan::analysis {

ScanOutput run_iw_scan(sim::Network& network, model::InternetModel& internet,
                       const ScanOptions& options) {
  ScanOutput output;

  core::IwScanConfig probe = options.probe;
  probe.protocol = options.protocol;
  probe.port = options.protocol == core::ProbeProtocol::Http ? 80 : 443;

  const auto space = options.popular_space ? internet.registry().popular_space()
                                           : internet.registry().scan_space();
  scan::TargetGenerator targets(space, options.blocklist, options.scan_seed,
                                options.sample_fraction);
  output.address_space = targets.address_space_size();

  core::IwProbeModule module(probe, [&output](const core::HostScanRecord& record) {
    output.records.push_back(record);
  });

  scan::EngineConfig engine_config;
  engine_config.scanner_address = net::IPv4Address{192, 0, 2, 1};
  engine_config.rate_pps = options.rate_pps;
  engine_config.max_outstanding = options.max_outstanding;
  engine_config.seed = options.scan_seed;

  scan::ScanEngine engine(network, engine_config, std::move(targets), module);
  const sim::SimTime started = network.loop().now();
  engine.start();
  while (!engine.done() && network.loop().step()) {
  }
  output.duration = network.loop().now() - started;
  output.engine = engine.stats();
  return output;
}

}  // namespace iwscan::analysis
