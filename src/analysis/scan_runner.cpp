#include "analysis/scan_runner.hpp"

#include <utility>

namespace iwscan::analysis {

ScanOutput run_iw_scan(sim::Network& network, model::InternetModel& internet,
                       const ScanOptions& options) {
  exec::ScanJob job;
  job.probe = options.probe;
  job.probe.protocol = options.protocol;
  job.probe.port = options.protocol == core::ProbeProtocol::Http ? 80 : 443;
  job.rate_pps = options.rate_pps;
  job.sample_fraction = options.sample_fraction;
  job.scan_seed = options.scan_seed;
  job.max_outstanding = options.max_outstanding;
  job.budget = options.budget;
  job.allow = options.popular_space ? internet.registry().popular_space()
                                    : internet.registry().scan_space();
  job.block = options.blocklist;
  job.shards = options.shards;
  job.process_shard = options.process_shard;
  job.process_shards = options.process_shards;
  job.spill_dir = options.spill_dir;
  job.spill_segment_bytes = options.spill_segment_bytes;
  job.progress = options.progress;
  job.progress_interval = options.progress_interval;

  ScanOutput output;
  if (options.two_phase) {
    exec::TwoPhaseJob two_phase;
    two_phase.scan = std::move(job);
    two_phase.sweep_rate_pps = options.sweep_rate_pps;
    two_phase.max_promoted_hosts = options.max_promoted_hosts;
    exec::TwoPhaseRunner runner(std::move(two_phase));
    exec::TwoPhaseResult result = runner.run(network, internet);
    output.records = std::move(result.records);
    output.engine = result.engine;
    output.duration = result.duration;
    output.address_space = result.address_space;
    output.sweep_records = std::move(result.sweep_records);
    output.sweep = result.sweep;
    output.promoted = result.promoted;
    output.truncated = result.truncated;
    output.spill_files = std::move(result.spill_files);
    output.sweep_spill_files = std::move(result.sweep_spill_files);
    return output;
  }

  exec::ParallelScanRunner runner(std::move(job));
  exec::ScanResult result = runner.run(network, internet);
  output.records = std::move(result.records);
  output.engine = result.engine;
  output.duration = result.duration;
  output.address_space = result.address_space;
  output.spill_files = std::move(result.spill_files);
  return output;
}

}  // namespace iwscan::analysis
