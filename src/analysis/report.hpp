// Scan report generation — the library analog of the weekly 1%-scan result
// pages the authors publish (https://iw.comsys.rwth-aachen.de, §4.1/§5):
// one self-contained text/markdown document summarizing a scan pair.
#pragma once

#include <optional>
#include <string>

#include "analysis/iw_table.hpp"
#include "analysis/service_classify.hpp"
#include "inetmodel/as_registry.hpp"

namespace iwscan::analysis {

struct ReportOptions {
  std::string title = "TCP Initial Window scan report";
  double dominant_threshold = 0.001;  // Fig. 3 "≥0.1% of hosts" filter
  bool markdown = false;              // tables as Markdown instead of text
  bool include_per_service = true;
  bool include_few_data = true;
  /// Per-class counts of hostile-stack pathologies (DESIGN.md §11) — the
  /// §5 "anomalous stacks" section; off by default so pre-existing report
  /// snapshots are unchanged.
  bool include_anomalies = false;
};

struct ScanInputs {
  std::span<const core::HostScanRecord> http;  // may be empty
  std::span<const core::HostScanRecord> tls;   // may be empty
  const model::AsRegistry* registry = nullptr;    // enables per-service section
  ServiceClassifier::RdnsFn rdns;                 // optional, for access class
  std::optional<double> sample_fraction;          // annotate sampled scans
};

/// Render a complete report.
[[nodiscard]] std::string render_report(const ScanInputs& inputs,
                                        const ReportOptions& options = {});

}  // namespace iwscan::analysis
