// End-to-end convenience API: run a full IW scan of the simulated Internet
// and collect host records. This is the primary entry point a library user
// touches (see examples/quickstart.cpp).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/host_prober.hpp"
#include "exec/parallel_runner.hpp"
#include "exec/two_phase.hpp"
#include "inetmodel/internet.hpp"
#include "scanner/scan_engine.hpp"

namespace iwscan::analysis {

struct ScanOptions {
  core::ProbeProtocol protocol = core::ProbeProtocol::Http;
  double rate_pps = 150'000;          // paper's moderate rate (§3.4)
  double sample_fraction = 1.0;       // §4.1: 0.01 = the "1% is enough" mode
  std::uint64_t scan_seed = 7;
  std::size_t max_outstanding = 20'000;
  scan::SessionBudget budget;         // per-session graceful-degradation caps
  bool popular_space = false;         // Alexa-style scan (Fig. 4)
  std::vector<net::Cidr> blocklist;   // never probed (ZMap ethics model)
  core::IwScanConfig probe;           // port is derived from protocol
  // Parallel execution (exec::ParallelScanRunner): >1 splits the scan over
  // that many worker threads; the merged output is byte-identical for any
  // value on a fresh world with the same seeds.
  std::uint64_t shards = 1;
  exec::ProgressFn progress;               // optional live-progress callback
  std::uint64_t progress_interval = 1024;  // merged records between snapshots
  // Two-phase mode (exec::TwoPhaseRunner): a stateless ZBanner-style sweep
  // covers the whole space first and only responsive hosts are promoted
  // into the stateful IW estimator. Output records are byte-identical to a
  // stateful-everywhere scan restricted to the responsive set.
  bool two_phase = false;
  double sweep_rate_pps = 600'000;  // phase-1 SYN rate (global)
  // >0 caps phase 2 at the K responsive hosts with the lowest global
  // permutation-cycle indices (deterministic truncation, any shard count).
  std::uint64_t max_promoted_hosts = 0;
  // Multi-process operator mode (ZMap-style --shard i/N): this process owns
  // the permutation residue process_shard (mod process_shards); the merged
  // output across all N processes equals a single-process run. Processes
  // must share scan_seed (tools/iwmerge enforces this on merge).
  std::uint64_t process_shard = 0;
  std::uint64_t process_shards = 1;
  // Bounded-memory result path: when non-empty, records stream into
  // fixed-size columnar spill segments under this directory instead of
  // ScanOutput::records — RSS stays O(spill_segment_bytes) per worker, not
  // O(targets). Read back with store::open_merge or tools/iwmerge.
  std::string spill_dir;
  std::size_t spill_segment_bytes = 1u << 20;
};

struct ScanOutput {
  std::vector<core::HostScanRecord> records;
  scan::EngineStats engine;
  sim::SimTime duration{};
  std::uint64_t address_space = 0;  // size of the allowlist
  // Two-phase mode only (empty/zero otherwise):
  std::vector<scan::SweepRecord> sweep_records;  // phase-1 output, cycle order
  scan::SweepStats sweep;
  std::uint64_t promoted = 0;   // responsive hosts handed to phase 2
  std::uint64_t truncated = 0;  // responsive hosts dropped by the cap
  // Spill mode only (records/sweep_records stay empty): per-shard spill
  // files, shard order. analysis::summarize_spill reads them back merged.
  std::vector<std::string> spill_files;
  std::vector<std::string> sweep_spill_files;
};

/// Runs the scan to completion on the network's event loop.
[[nodiscard]] ScanOutput run_iw_scan(sim::Network& network, model::InternetModel& internet,
                                     const ScanOptions& options);

}  // namespace iwscan::analysis
