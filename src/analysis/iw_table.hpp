// Aggregation of host scan records into the paper's tables and figures:
// Table 1 (dataset overview), Fig. 3/4 (IW distributions), Table 2
// (few-data lower bounds).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <span>
#include <vector>

#include "core/result.hpp"

namespace iwscan::analysis {

/// Table 1 row: reachable hosts and outcome shares.
struct DatasetSummary {
  std::uint64_t probed = 0;       // targets with any reply (reachable+refused)
  std::uint64_t reachable = 0;    // data exchange possible
  std::uint64_t success = 0;
  std::uint64_t few_data = 0;
  std::uint64_t error = 0;

  [[nodiscard]] double success_rate() const noexcept {
    return reachable ? static_cast<double>(success) / reachable : 0.0;
  }
  [[nodiscard]] double few_data_rate() const noexcept {
    return reachable ? static_cast<double>(few_data) / reachable : 0.0;
  }
  [[nodiscard]] double error_rate() const noexcept {
    return reachable ? static_cast<double>(error) / reachable : 0.0;
  }
};

/// Folds one record into the summary. summarize() loops this; streaming
/// consumers (analysis::summarize_spill) call it record-by-record so the
/// whole dataset never has to be resident.
void accumulate(DatasetSummary& summary, const core::HostScanRecord& record);

[[nodiscard]] DatasetSummary summarize(std::span<const core::HostScanRecord> records);

/// IW histogram over successful estimates: IW segments → host count.
[[nodiscard]] std::map<std::uint32_t, std::uint64_t> iw_histogram(
    std::span<const core::HostScanRecord> records);

/// Same, as fractions of all successful hosts.
[[nodiscard]] std::map<std::uint32_t, double> iw_fractions(
    std::span<const core::HostScanRecord> records);

/// Fig. 3 filter: keep IWs held by at least `min_fraction` of hosts.
[[nodiscard]] std::map<std::uint32_t, double> dominant_iws(
    const std::map<std::uint32_t, double>& fractions, double min_fraction = 0.001);

/// Table 2: few-data lower-bound distribution. Key 0 is the NoData bucket;
/// values are fractions of all few-data hosts.
[[nodiscard]] std::map<std::uint32_t, double> few_data_lower_bounds(
    std::span<const core::HostScanRecord> records);

/// L1 distance between two IW fraction maps (used for the sampling
/// stability analysis, §4.1).
[[nodiscard]] double l1_distance(const std::map<std::uint32_t, double>& a,
                                 const std::map<std::uint32_t, double>& b);

/// Serialize host records as CSV (one row per host) for external tooling —
/// the library analog of the raw result files the authors publish weekly.
[[nodiscard]] std::string records_to_csv(std::span<const core::HostScanRecord> records);

}  // namespace iwscan::analysis
