#include "analysis/provider_table.hpp"

#include <algorithm>
#include <sstream>

#include "analysis/table_writer.hpp"
#include "store/spill.hpp"
#include "util/strings.hpp"

namespace iwscan::analysis {
namespace {

std::string render_table(const TextTable& table, bool markdown) {
  if (!markdown) return table.render();
  const std::string csv = table.csv();
  std::string out;
  bool header = true;
  for (const auto line : util::split(csv, '\n')) {
    if (line.empty()) continue;
    out += "| ";
    std::size_t columns = 0;
    for (const auto cell : util::split(line, ',')) {
      out += std::string(cell) + " | ";
      ++columns;
    }
    out += '\n';
    if (header) {
      out += "|";
      for (std::size_t i = 0; i < columns; ++i) out += "---|";
      out += '\n';
      header = false;
    }
  }
  return out;
}

std::uint32_t histogram_median(const std::map<std::uint32_t, std::uint64_t>& hist) {
  std::uint64_t total = 0;
  for (const auto& [iw, count] : hist) total += count;
  if (total == 0) return 0;
  const std::uint64_t midpoint = (total + 1) / 2;
  std::uint64_t seen = 0;
  for (const auto& [iw, count] : hist) {
    seen += count;
    if (seen >= midpoint) return iw;
  }
  return hist.rbegin()->first;
}

}  // namespace

std::vector<ProviderIwRow> provider_breakdown(
    std::span<const core::HostScanRecord> records,
    const model::AsRegistry& registry) {
  // One slot per registry AS, filled in registry order so the output is
  // deterministic regardless of record order.
  std::vector<ProviderIwRow> slots(registry.all().size());
  std::vector<bool> touched(slots.size(), false);

  for (const auto& record : records) {
    const model::AsInfo* as = registry.find(record.ip);
    if (as == nullptr) continue;
    std::size_t index = 0;
    for (; index < registry.all().size(); ++index) {
      if (&registry.all()[index] == as) break;
    }
    ProviderIwRow& row = slots[index];
    if (!touched[index]) {
      touched[index] = true;
      row.asn = as->asn;
      row.name = as->name;
      row.kind = std::string(model::to_string(as->kind));
    }
    if (record.outcome == core::HostOutcome::Unreachable) continue;
    ++row.reachable;
    if (record.anomaly == core::ProbeAnomaly::PacedDelivery) ++row.paced;
    switch (record.outcome) {
      case core::HostOutcome::Success:
        ++row.success;
        ++row.histogram[record.iw_segments];
        if (record.iw_segments >= 16) ++row.large_iw;
        break;
      case core::HostOutcome::FewData:
        ++row.few_data;
        break;
      default:
        break;
    }
  }

  std::vector<ProviderIwRow> rows;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (!touched[i]) continue;
    slots[i].median_iw = histogram_median(slots[i].histogram);
    rows.push_back(std::move(slots[i]));
  }
  return rows;
}

std::string render_provider_table(std::span<const ProviderIwRow> rows,
                                  bool markdown) {
  TextTable table({"provider", "kind", "reachable", "success", "few data",
                   "median IW", "IW>=16", "paced"});
  for (const auto& row : rows) {
    table.add_row({row.name, row.kind, std::to_string(row.reachable),
                   std::to_string(row.success), std::to_string(row.few_data),
                   std::to_string(row.median_iw),
                   fmt_double(row.large_iw_share() * 100.0) + "%",
                   fmt_double(row.paced_share() * 100.0) + "%"});
  }
  return render_table(table, markdown);
}

std::vector<EpochBreakdown> longitudinal_breakdown(
    const LongitudinalOptions& options, std::string* error) {
  std::vector<EpochBreakdown> out;
  for (const int epoch : options.epochs) {
    model::ModelConfig model_config = options.model;
    model_config.epoch = epoch;

    // Each epoch is a self-contained world on its own event loop: the same
    // (seed, ip) draws plus the epoch's deterministic drift — nothing leaks
    // from one epoch's scan into the next.
    sim::EventLoop loop;
    sim::Network network(loop, options.network_seed);
    model::InternetModel internet(network, model_config);
    internet.install();

    ScanOptions scan = options.scan;
    if (!scan.spill_dir.empty()) {
      scan.spill_dir += "/epoch" + std::to_string(epoch);
    }
    const ScanOutput output = run_iw_scan(network, internet, scan);

    EpochBreakdown breakdown;
    breakdown.epoch = epoch;
    if (!scan.spill_dir.empty()) {
      std::vector<core::HostScanRecord> records;
      std::string merge_error;
      if (!store::read_merged<core::HostScanRecord>(output.spill_files, records,
                                                    &merge_error)) {
        if (error != nullptr) *error = merge_error;
        return {};
      }
      breakdown.rows = provider_breakdown(records, internet.registry());
    } else {
      breakdown.rows = provider_breakdown(output.records, internet.registry());
    }
    out.push_back(std::move(breakdown));
  }
  return out;
}

std::string render_longitudinal_table(std::span<const EpochBreakdown> epochs,
                                      bool markdown) {
  // Row universe: providers in first-seen order across the epochs (registry
  // order within an epoch, so the union is deterministic too).
  std::vector<std::pair<std::uint32_t, std::string>> providers;
  for (const auto& epoch : epochs) {
    for (const auto& row : epoch.rows) {
      const bool known =
          std::any_of(providers.begin(), providers.end(),
                      [&row](const auto& p) { return p.first == row.asn; });
      if (!known) providers.emplace_back(row.asn, row.name);
    }
  }

  std::vector<std::string> headers = {"provider"};
  for (const auto& epoch : epochs) {
    const std::string tag = "T" + std::to_string(epoch.epoch);
    headers.push_back(tag + " success");
    headers.push_back(tag + " median");
    headers.push_back(tag + " IW>=16");
    headers.push_back(tag + " paced");
  }

  TextTable table(std::move(headers));
  for (const auto& [asn, name] : providers) {
    std::vector<std::string> cells = {name};
    for (const auto& epoch : epochs) {
      const auto it = std::find_if(
          epoch.rows.begin(), epoch.rows.end(),
          [asn = asn](const ProviderIwRow& row) { return row.asn == asn; });
      if (it == epoch.rows.end()) {
        cells.insert(cells.end(), {"-", "-", "-", "-"});
        continue;
      }
      cells.push_back(std::to_string(it->success));
      cells.push_back(std::to_string(it->median_iw));
      cells.push_back(fmt_double(it->large_iw_share() * 100.0) + "%");
      cells.push_back(fmt_double(it->paced_share() * 100.0) + "%");
    }
    table.add_row(std::move(cells));
  }
  return render_table(table, markdown);
}

}  // namespace iwscan::analysis
