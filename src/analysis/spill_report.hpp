// Streaming report generation over spilled scan records. This is the
// read side of the bounded-memory contract (store/spill.hpp): the paper's
// Table 1 / Fig. 3 aggregates are folds, so a whole-IPv4 result set can be
// reduced through the K-way merge iterator one record at a time — peak RSS
// stays O(segment), never O(records). tools/iwmerge is the CLI wrapper.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/iw_table.hpp"
#include "core/result.hpp"
#include "store/spill.hpp"

namespace iwscan::analysis {

/// Everything the quickstart report needs, computed in one streaming pass.
struct SpillSummary {
  DatasetSummary summary;
  std::map<std::uint32_t, std::uint64_t> histogram;  // IW segments → hosts
  std::uint64_t records = 0;
  std::uint64_t seed = 0;  // scan seed stamped in the segment headers
};

/// Folds one merged record stream into a SpillSummary. The reader's own
/// error state (CRC mismatch, cycle regression) terminates the fold; check
/// `reader.ok()` afterwards.
[[nodiscard]] SpillSummary summarize_spill(
    store::MergeReader<core::HostScanRecord>& reader);

/// Convenience: collect spill inputs (files or directories), open the
/// merge and fold. Returns false with a diagnostic in `error` on any
/// integrity or identity failure (mixed seeds, overlapping shards,
/// corrupted segments).
[[nodiscard]] bool summarize_spill_files(const std::vector<std::string>& inputs,
                                         SpillSummary& out, std::string& error);

/// Same fractions the in-RAM path derives via iw_fractions().
[[nodiscard]] std::map<std::uint32_t, double> spill_iw_fractions(
    const SpillSummary& summary);

}  // namespace iwscan::analysis
