// Random subsampling of scan results (§4.1 "Scanning 1% is enough!"):
// draw p-fraction subsets, compare their IW distributions against the full
// scan, and compute mean ± quantile bands over repeated 1% samples.
#pragma once

#include <map>
#include <span>
#include <vector>

#include "core/result.hpp"
#include "util/rng.hpp"

namespace iwscan::analysis {

/// A deterministic p-fraction subset of records.
[[nodiscard]] std::vector<core::HostScanRecord> subsample(
    std::span<const core::HostScanRecord> records, double fraction,
    std::uint64_t seed);

struct SubsampleBand {
  std::map<std::uint32_t, double> mean;        // IW → mean fraction
  std::map<std::uint32_t, double> quantile_lo; // (1−q)/2
  std::map<std::uint32_t, double> quantile_hi; // 1−(1−q)/2
  double max_l1_to_reference = 0.0;
};

/// Repeat `trials` independent p-fraction samples; report the mean IW
/// fractions and the two-sided `coverage`-quantile band (paper: 30 × 1%
/// samples with the 99% quantile).
[[nodiscard]] SubsampleBand subsample_band(
    std::span<const core::HostScanRecord> records, double fraction, int trials,
    double coverage, std::uint64_t seed,
    const std::map<std::uint32_t, double>& reference);

}  // namespace iwscan::analysis
