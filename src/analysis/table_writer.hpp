// Aligned text tables + CSV output for the experiment harnesses.
#pragma once

#include <string>
#include <vector>

namespace iwscan::analysis {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  /// Monospace-aligned rendering with a header separator.
  [[nodiscard]] std::string render() const;

  /// RFC-4180-ish CSV (quotes cells containing commas/quotes).
  [[nodiscard]] std::string csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision helper ("12.3").
[[nodiscard]] std::string fmt_double(double value, int decimals = 1);

}  // namespace iwscan::analysis
