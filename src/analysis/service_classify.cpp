#include "analysis/service_classify.hpp"

#include <cstdio>

#include "util/strings.hpp"

namespace iwscan::analysis {

std::string_view to_string(ServiceClass service) noexcept {
  switch (service) {
    case ServiceClass::Akamai: return "Akamai";
    case ServiceClass::Ec2: return "EC2";
    case ServiceClass::Cloudflare: return "Cloudflare";
    case ServiceClass::Azure: return "Azure";
    case ServiceClass::AccessNetwork: return "Access NW";
    case ServiceClass::Other: return "Other";
  }
  return "?";
}

ServiceClassifier::ServiceClassifier(const model::AsRegistry& registry, RdnsFn rdns)
    : registry_(registry), rdns_(std::move(rdns)) {
  // Manually curated ISP domain labels (the paper's analog: a hand-built
  // list of access-ISP domains) — these match the registry's access ASes.
  for (const auto& as : registry_.all()) {
    if (as.kind == model::AsKind::Access && !as.archetype.rdns_tag.empty()) {
      isp_domains_.push_back(as.archetype.rdns_tag);
    }
  }
  access_keywords_ = {"customer", "dialin", "dyn", "dsl", "pool",
                      "cable",    "dial",   "pppoe", "dhcp"};
}

ServiceClass ServiceClassifier::classify(net::IPv4Address ip) const {
  const model::AsInfo* as = registry_.find(ip);
  if (as != nullptr) {
    // Service-provider IP ranges (ip-ranges.json analogs). Akamai keys on
    // the GHost server string in the paper; in the simulation the GHost
    // hosts are exactly its tagged AS.
    if (as->service_tag == "akamai") return ServiceClass::Akamai;
    if (as->service_tag == "ec2") return ServiceClass::Ec2;
    if (as->service_tag == "cloudflare") return ServiceClass::Cloudflare;
    if (as->service_tag == "azure") return ServiceClass::Azure;
  }

  if (rdns_) {
    const std::string name = rdns_(ip);
    if (!name.empty() && rdns_encodes_ip(name, ip) && looks_like_access_name(name)) {
      return ServiceClass::AccessNetwork;
    }
  }
  return ServiceClass::Other;
}

bool ServiceClassifier::rdns_encodes_ip(std::string_view rdns, net::IPv4Address ip) {
  // Try the common separators used by ISPs for embedding the IP.
  for (const char separator : {'-', '.', '_'}) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%u%c%u%c%u%c%u", ip.octet(0), separator,
                  ip.octet(1), separator, ip.octet(2), separator, ip.octet(3));
    if (util::icontains(rdns, buf)) return true;
    // Reversed order (in-addr style) is also common.
    std::snprintf(buf, sizeof(buf), "%u%c%u%c%u%c%u", ip.octet(3), separator,
                  ip.octet(2), separator, ip.octet(1), separator, ip.octet(0));
    if (util::icontains(rdns, buf)) return true;
  }
  return false;
}

bool ServiceClassifier::looks_like_access_name(std::string_view rdns) const {
  for (const auto& domain : isp_domains_) {
    if (util::icontains(rdns, domain)) return true;
  }
  for (const auto& keyword : access_keywords_) {
    if (util::icontains(rdns, keyword)) return true;
  }
  return false;
}

}  // namespace iwscan::analysis
