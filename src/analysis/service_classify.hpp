// Service / network-type classification of scanned IPs (§4.3, Table 3):
//   * content services by published IP ranges (Amazon's ip-ranges.json,
//     Cloudflare/Azure lists) — here: the registry's service-tagged ASes;
//   * Akamai by its "GHost" HTTP Server header (same AS tag here);
//   * access networks by reverse DNS: the IP encoded in the PTR record
//     plus an ISP-domain/keyword list ("customer", "dialin", …), following
//     the paper's HLOC-style classifier [23].
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>

#include "inetmodel/as_registry.hpp"
#include "netbase/ipv4.hpp"

namespace iwscan::analysis {

enum class ServiceClass {
  Akamai,
  Ec2,
  Cloudflare,
  Azure,
  AccessNetwork,
  Other,
};

[[nodiscard]] std::string_view to_string(ServiceClass service) noexcept;

class ServiceClassifier {
 public:
  /// `rdns` resolves an address to its PTR record ("" if none) — in the
  /// simulation this is the ground-truth generator; against the real
  /// Internet it would be a DNS lookup.
  using RdnsFn = std::function<std::string(net::IPv4Address)>;

  ServiceClassifier(const model::AsRegistry& registry, RdnsFn rdns);

  [[nodiscard]] ServiceClass classify(net::IPv4Address ip) const;

  /// True if the PTR record encodes the IP (any common textual layout).
  [[nodiscard]] static bool rdns_encodes_ip(std::string_view rdns,
                                            net::IPv4Address ip);
  /// True if the name matches the ISP-domain or access keyword lists.
  [[nodiscard]] bool looks_like_access_name(std::string_view rdns) const;

 private:
  const model::AsRegistry& registry_;
  RdnsFn rdns_;
  std::vector<std::string> isp_domains_;
  std::vector<std::string> access_keywords_;
};

}  // namespace iwscan::analysis
