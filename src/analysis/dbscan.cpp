#include "analysis/dbscan.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

namespace iwscan::analysis {
namespace {

double distance(const std::vector<double>& a, const std::vector<double>& b) {
  double sum = 0.0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

std::vector<std::size_t> neighbours(std::span<const std::vector<double>> points,
                                    std::size_t index, double epsilon) {
  std::vector<std::size_t> result;
  for (std::size_t j = 0; j < points.size(); ++j) {
    if (distance(points[index], points[j]) <= epsilon) result.push_back(j);
  }
  return result;
}

}  // namespace

std::vector<int> dbscan(std::span<const std::vector<double>> points,
                        const DbscanParams& params) {
  constexpr int kUnvisited = -2;
  std::vector<int> labels(points.size(), kUnvisited);
  int next_cluster = 0;

  for (std::size_t i = 0; i < points.size(); ++i) {
    if (labels[i] != kUnvisited) continue;
    auto seed_neighbours = neighbours(points, i, params.epsilon);
    if (static_cast<int>(seed_neighbours.size()) < params.min_points) {
      labels[i] = kDbscanNoise;
      continue;
    }
    const int cluster = next_cluster++;
    labels[i] = cluster;
    std::deque<std::size_t> frontier(seed_neighbours.begin(), seed_neighbours.end());
    while (!frontier.empty()) {
      const std::size_t j = frontier.front();
      frontier.pop_front();
      if (labels[j] == kDbscanNoise) labels[j] = cluster;  // border point
      if (labels[j] != kUnvisited) continue;
      labels[j] = cluster;
      auto j_neighbours = neighbours(points, j, params.epsilon);
      if (static_cast<int>(j_neighbours.size()) >= params.min_points) {
        frontier.insert(frontier.end(), j_neighbours.begin(), j_neighbours.end());
      }
    }
  }
  return labels;
}

int cluster_count(std::span<const int> labels) {
  int max_label = -1;
  for (const int label : labels) max_label = std::max(max_label, label);
  return max_label + 1;
}

}  // namespace iwscan::analysis
