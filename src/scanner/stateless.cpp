#include "scanner/stateless.hpp"

#include <algorithm>
#include <span>
#include <string_view>
#include <utility>

#include "netbase/checksum.hpp"
#include "netbase/headers.hpp"
#include "netbase/packet.hpp"
#include "util/check.hpp"

namespace iwscan::scan {
namespace {

// Fixed offsets into a 20+20-byte headers-only frame (both templates are
// built without IP options; the ACK template's payload starts at 40).
constexpr std::size_t kIpChecksumAt = 10;
constexpr std::size_t kIpDstAt = 16;
constexpr std::size_t kTcpSeqAt = 24;
constexpr std::size_t kTcpAckAt = 28;
constexpr std::size_t kTcpChecksumAt = 36;

[[nodiscard]] std::uint16_t read_u16(const net::Bytes& bytes, std::size_t at) noexcept {
  return static_cast<std::uint16_t>((bytes[at] << 8) | bytes[at + 1]);
}

/// Scan the TCP options block for an MSS option (kind 2). Allocation-free
/// and bounds-guarded: every index is checked against the span before use.
[[nodiscard]] std::uint16_t parse_mss(std::span<const std::uint8_t> options) noexcept {
  std::size_t at = 0;
  while (at < options.size()) {
    const std::uint8_t kind = options[at];
    if (kind == 0) break;  // end-of-options
    if (kind == 1) {       // NOP
      ++at;
      continue;
    }
    if (at + 2 > options.size()) break;
    const std::uint8_t length = options[at + 1];
    if (length < 2 || length > options.size() - at) break;
    if (kind == 2 && length == 4) {
      return static_cast<std::uint16_t>((options[at + 2] << 8) | options[at + 3]);
    }
    at += length;
  }
  return 0;
}

}  // namespace

StatelessSweep::StatelessSweep(sim::Network& network, SweepConfig config,
                               TargetGenerator targets, EventFn on_event)
    : network_(network),
      config_(std::move(config)),
      targets_(std::move(targets)),
      on_event_(std::move(on_event)),
      codec_(config_.seed),
      request_length_(static_cast<std::uint32_t>(config_.request.size())),
      domain_(targets_.address_space_size()) {}

StatelessSweep::~StatelessSweep() {
  network_.loop().cancel(pace_event_);
  network_.loop().cancel(cooldown_event_);
  if (network_.attached(config_.scanner_address)) {
    network_.detach(config_.scanner_address);
  }
}

void StatelessSweep::start() {
  IWSCAN_ASSERT(domain_ <= kMaxCookieIndex,
                "sweep domain exceeds the 24-bit cookie index space; "
                "split the scan into epochs");
  started_ = true;
  stats_.started_at = network_.loop().now();
  const auto words = static_cast<std::size_t>((domain_ + 63) / 64);
  seen_live_.assign(words, 0);
  seen_banner_.assign(words, 0);
  build_templates();
  network_.attach(config_.scanner_address, this);
  pace();
}

void StatelessSweep::build_templates() {
  const auto build = [&](std::uint8_t flags, std::string_view payload,
                         Template& out) {
    net::TcpSegment segment;
    segment.ip.src = config_.scanner_address;
    segment.ip.dst = net::IPv4Address{std::uint32_t{0}};  // patched per target
    segment.ip.ttl = 64;
    segment.ip.dont_fragment = true;
    segment.tcp.src_port = config_.source_port;
    segment.tcp.dst_port = config_.target_port;
    segment.tcp.seq = 0;  // patched per target
    segment.tcp.ack = 0;  // patched per target
    segment.tcp.flags = flags;
    segment.tcp.window = 65535;
    segment.payload = net::to_bytes(payload);
    out.bytes = net::encode(segment);
    out.ip_checksum = read_u16(out.bytes, kIpChecksumAt);
    out.tcp_checksum = read_u16(out.bytes, kTcpChecksumAt);
  };
  // The SYN deliberately carries no MSS option: responders then answer
  // with ≤536-byte segments (RFC 1122 default), so the first flight is
  // segmented finely enough that one segment = one banner sample.
  build(net::kSyn, {}, syn_template_);
  build(net::kAck | net::kPsh, config_.request, ack_template_);
  build(net::kRst, {}, rst_template_);
}

void StatelessSweep::pace() {
  pace_event_ = sim::kNullEvent;
  if (exhausted_ || finished_) return;
  if (throttle_ && throttle_()) {
    // Promotion-queue backpressure: park until wake(). Replies to targets
    // already probed keep arriving and being answered meanwhile.
    throttled_ = true;
    return;
  }
  const auto target = targets_.next();
  if (!target) {
    begin_cooldown();
    return;
  }
  CookieIdentity identity;
  identity.index = targets_.last_cycle_index();
  identity.probe = 0;
  identity.epoch = config_.epoch;
  send_patched(syn_template_, *target, codec_.pack(identity, *target), 0);
  ++stats_.targets_probed;
  const auto interval = sim::SimTime{static_cast<std::int64_t>(
      1e9 / (config_.rate_pps > 0 ? config_.rate_pps : 1.0))};
  pace_event_ = network_.loop().schedule(interval, [this] { pace(); });
}

void StatelessSweep::wake() {
  if (!started_ || !throttled_) return;
  throttled_ = false;
  if (pace_event_ == sim::kNullEvent && !exhausted_ && !finished_) {
    pace_event_ =
        network_.loop().schedule(sim::SimTime::zero(), [this] { pace(); });
  }
}

void StatelessSweep::begin_cooldown() {
  exhausted_ = true;
  cooldown_event_ =
      network_.loop().schedule(config_.cooldown, [this] { finish(); });
}

void StatelessSweep::finish() {
  cooldown_event_ = sim::kNullEvent;
  finished_ = true;
  stats_.finished_at = network_.loop().now();
  if (network_.attached(config_.scanner_address)) {
    network_.detach(config_.scanner_address);
  }
  if (on_complete_) on_complete_();
}

void StatelessSweep::send_patched(const Template& tmpl, net::IPv4Address dst,
                                  std::uint32_t seq, std::uint32_t ack) {
  net::PacketBuf buf = network_.pool().acquire();
  net::Bytes& out = buf.bytes();
  out.clear();
  net::WireWriter writer(out);
  writer.raw(std::span<const std::uint8_t>(tmpl.bytes));
  // Patch destination / seq / ack over the template's zeros and update
  // both checksums incrementally (RFC 1624) — the template baselines were
  // computed with those fields zero, so every old-word term is 0. The
  // destination address feeds the TCP pseudo-header as well as the IP
  // header, hence the double update.
  const std::uint32_t dst_value = dst.value();
  writer.patch_u16(kIpDstAt, static_cast<std::uint16_t>(dst_value >> 16));
  writer.patch_u16(kIpDstAt + 2, static_cast<std::uint16_t>(dst_value));
  writer.patch_u16(kIpChecksumAt,
                   net::checksum_update32(tmpl.ip_checksum, 0, dst_value));
  std::uint16_t tcp_checksum =
      net::checksum_update32(tmpl.tcp_checksum, 0, dst_value);
  tcp_checksum = net::checksum_update32(tcp_checksum, 0, seq);
  tcp_checksum = net::checksum_update32(tcp_checksum, 0, ack);
  writer.patch_u16(kTcpSeqAt, static_cast<std::uint16_t>(seq >> 16));
  writer.patch_u16(kTcpSeqAt + 2, static_cast<std::uint16_t>(seq));
  writer.patch_u16(kTcpAckAt, static_cast<std::uint16_t>(ack >> 16));
  writer.patch_u16(kTcpAckAt + 2, static_cast<std::uint16_t>(ack));
  writer.patch_u16(kTcpChecksumAt, tcp_checksum);
  ++stats_.packets_sent;
  network_.send(std::move(buf));
}

bool StatelessSweep::recover(std::uint32_t cookie, net::IPv4Address source,
                             std::uint64_t& cycle) {
  CookieIdentity identity;
  if (!codec_.unpack(cookie, source, identity) ||
      identity.epoch != config_.epoch || identity.probe != 0 ||
      identity.index >= domain_) {
    ++stats_.cookie_rejected;
    return false;
  }
  cycle = identity.index;
  return true;
}

bool StatelessSweep::first_event(std::vector<std::uint64_t>& bitmap,
                                 std::uint64_t cycle) {
  // cycle < domain_ was established by recover(), so the word index is in
  // range by construction.
  const auto word = static_cast<std::size_t>(cycle >> 6);
  const std::uint64_t bit = std::uint64_t{1} << (cycle & 63);
  if ((bitmap[word] & bit) != 0) {
    ++stats_.duplicate_events;
    return false;
  }
  bitmap[word] |= bit;
  return true;
}

void StatelessSweep::emit(const SweepEvent& event) {
  if (on_event_) on_event_(event);
}

void StatelessSweep::handle_packet(net::PacketView bytes) {
  ++stats_.packets_received;
  // Hand-rolled header walk instead of decode_datagram(): the general
  // decoder allocates for payload/options, and the sweep needs neither —
  // just a handful of fixed-offset fields, all bounds-checked by the
  // reader. The fabric routed the packet here, so the destination matched.
  net::WireReader reader(bytes);
  if (reader.u8() != 0x45) return;  // IPv4, 20-byte header only
  reader.skip(8);                   // tos, total_length, id, flags/fragment, ttl
  const std::uint8_t protocol = reader.u8();
  reader.skip(2);  // IP header checksum
  const std::uint32_t source_value = reader.u32();
  reader.skip(4);  // destination address
  const std::uint16_t src_port = reader.u16();
  const std::uint16_t dst_port = reader.u16();
  const std::uint32_t seq = reader.u32();
  const std::uint32_t ack = reader.u32();
  const std::uint8_t data_offset_raw = reader.u8();
  const std::uint8_t flags = reader.u8();
  const std::uint16_t window = reader.u16();
  reader.skip(4);  // TCP checksum + urgent pointer
  if (!reader.ok() || protocol != net::kProtocolTcp) return;
  if (src_port != config_.target_port || dst_port != config_.source_port) return;
  const std::size_t header_bytes =
      static_cast<std::size_t>(data_offset_raw >> 4) * 4;
  if (header_bytes < 20 || header_bytes - 20 > reader.remaining()) return;
  const std::span<const std::uint8_t> options = reader.raw(header_bytes - 20);
  const std::span<const std::uint8_t> payload = reader.raw(reader.remaining());
  const net::IPv4Address source{source_value};

  if ((flags & net::kRst) != 0) {
    // Closed port: the host answers our SYN with RST|ACK, ack = cookie+1.
    // RSTs without ACK (e.g. the host's reply to our own teardown RST
    // hitting an already-closed connection) carry no echoed cookie.
    if ((flags & net::kAck) == 0) return;
    std::uint64_t cycle = 0;
    if (!recover(ack - 1, source, cycle)) return;
    if (!first_event(seen_live_, cycle)) return;
    ++stats_.closed;
    SweepEvent event;
    event.kind = SweepEventKind::Closed;
    event.cycle = cycle;
    event.source = source;
    emit(event);
    return;
  }

  if ((flags & (net::kSyn | net::kAck)) == (net::kSyn | net::kAck)) {
    // SYN-ACK: ack = cookie+1. Always complete the handshake and push the
    // request — a retransmitted SYN-ACK means our previous ACK was lost —
    // but emit the Responsive event only once per cycle index.
    std::uint64_t cycle = 0;
    if (!recover(ack - 1, source, cycle)) return;
    send_patched(ack_template_, source, ack, seq + 1);
    if (!first_event(seen_live_, cycle)) return;
    ++stats_.responsive;
    SweepEvent event;
    event.kind = SweepEventKind::Responsive;
    event.cycle = cycle;
    event.source = source;
    event.window = window;
    event.mss = parse_mss(options);
    emit(event);
    return;
  }

  if ((flags & net::kAck) != 0 && (!payload.empty() || (flags & net::kFin) != 0)) {
    // First-flight data (or an early FIN): the segment acks our entire
    // static request, so ack = cookie+1+len recovers the cookie. Answer
    // every such segment with a RST at the host's ack point — the first
    // one tears the server connection down, later in-flight segments hit
    // a closed connection and die quietly.
    std::uint64_t cycle = 0;
    if (!recover(ack - 1 - request_length_, source, cycle)) return;
    send_patched(rst_template_, source, ack, 0);
    if (payload.empty()) return;  // FIN with no data: nothing to sample
    if (!first_event(seen_banner_, cycle)) return;
    ++stats_.banners;
    SweepEvent event;
    event.kind = SweepEventKind::Banner;
    event.cycle = cycle;
    event.source = source;
    event.banner_length = static_cast<std::uint8_t>(
        std::min<std::size_t>(payload.size(), kSweepBannerCap));
    std::copy_n(payload.begin(), event.banner_length, event.banner.begin());
    emit(event);
    return;
  }
  // Pure ACKs (zero-window stallers, keepalives) are ignored: the host
  // side times out on its own, and there is no scanner state to stall.
}

}  // namespace iwscan::scan
