// ICMP-based path-MTU discovery probe (RFC 1191), reproducing footnote 1 of
// the paper: an ICMP module estimating typical MSS values ("we found 99%
// (80%) of all hosts support an MSS of 1336 B (1436 B)").
//
// Strategy per host: send a DF echo sized to the candidate MTU; a router on
// an undersized path answers with Fragmentation Needed carrying the next-
// hop MTU, which we then confirm with a second probe at exactly that size.
#pragma once

#include <functional>

#include "scanner/scan_engine.hpp"

namespace iwscan::scan {

struct MtuProbeResult {
  net::IPv4Address ip;
  bool responded = false;
  std::uint32_t path_mtu = 0;  // confirmed path MTU (0 if unresponsive)
  /// Largest TCP MSS this path supports (MTU − 40).
  [[nodiscard]] std::uint32_t supported_mss() const noexcept {
    return path_mtu > 40 ? path_mtu - 40 : 0;
  }
};

struct MtuProbeConfig {
  std::uint32_t initial_mtu = 1500;
  std::uint32_t min_mtu = 68;  // RFC 791 minimum
  sim::SimTime timeout = sim::sec(5);
  int max_probes = 8;
};

class IcmpMtuModule final : public ProbeModule {
 public:
  using ResultFn = std::function<void(const MtuProbeResult&)>;

  IcmpMtuModule(MtuProbeConfig config, ResultFn on_result)
      : config_(config), on_result_(std::move(on_result)) {}

  std::unique_ptr<ProbeSession> create_session(SessionServices& services,
                                               net::IPv4Address target,
                                               std::function<void()> finish) override;

 private:
  MtuProbeConfig config_;
  ResultFn on_result_;
};

}  // namespace iwscan::scan
