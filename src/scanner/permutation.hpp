// Full-cycle pseudorandom permutation over an arbitrary domain.
//
// ZMap iterates the IPv4 space as a cyclic multiplicative group mod a prime
// > 2^32, giving a stateless pseudorandom permutation so probes to one
// network are spread over time. We substitute a keyed Feistel network with
// cycle-walking: the same properties (bijective, seeded, O(1) state, no
// precomputed tables) with the advantage of working over any domain size —
// which lets both the whole-IPv4 iteration and the down-scaled simulation
// populations use one verified implementation (see DESIGN.md §2).
#pragma once

#include <cstdint>

namespace iwscan::scan {

/// Bijection over [0, domain_size). Deterministic in (domain_size, seed).
class RandomPermutation {
 public:
  RandomPermutation(std::uint64_t domain_size, std::uint64_t seed);

  [[nodiscard]] std::uint64_t domain_size() const noexcept { return domain_; }

  /// Image of `index` (index < domain_size).
  [[nodiscard]] std::uint64_t permute(std::uint64_t index) const noexcept;

 private:
  [[nodiscard]] std::uint64_t feistel(std::uint64_t value) const noexcept;

  std::uint64_t domain_;
  int half_bits_;          // bits per Feistel half (covers domain when doubled)
  std::uint64_t half_mask_;
  std::uint64_t round_keys_[4];
};

/// Iterates the permutation images in index order; optionally sharded
/// (shard k of n visits indices k, k+n, k+2n, …) for parallel scanners.
class PermutationIterator {
 public:
  PermutationIterator(const RandomPermutation& permutation, std::uint64_t shard = 0,
                      std::uint64_t total_shards = 1) noexcept
      : permutation_(&permutation), index_(shard), stride_(total_shards) {}

  /// Next image, or false when the cycle is complete.
  bool next(std::uint64_t& out) noexcept {
    if (index_ >= permutation_->domain_size()) return false;
    last_index_ = index_;
    out = permutation_->permute(index_);
    index_ += stride_;
    return true;
  }

  /// Domain index consumed by the most recent successful next(). Shard k of
  /// n walks k, k+n, k+2n, …, so this is a *global* cycle position that is
  /// comparable across shards — a parallel executor sorts merged results by
  /// it to recover the exact shards=1 emission order.
  [[nodiscard]] std::uint64_t last_index() const noexcept { return last_index_; }

  /// Re-point at a relocated permutation, keeping the cursor. An owner that
  /// stores both the permutation and an iterator over it must call this
  /// after a copy or move (see TargetGenerator's special members).
  void rebind(const RandomPermutation& permutation) noexcept {
    permutation_ = &permutation;
  }

  [[nodiscard]] bool exhausted() const noexcept {
    return index_ >= permutation_->domain_size();
  }

 private:
  const RandomPermutation* permutation_;
  std::uint64_t index_;
  std::uint64_t stride_;
  std::uint64_t last_index_ = 0;
};

}  // namespace iwscan::scan
