// Stateless fast-path sweep tier (phase 1 of the two-phase scan).
//
// ZBanner's observation (PAPERS.md): a scanner can harvest TCP liveness,
// the SYN-ACK's advertised window/MSS, and even the first flight of
// application data without keeping any per-host connection state. The
// probe's identity rides in the SYN's sequence number as a keyed cookie
// (syncookie.hpp); every reply echoes it back in the ack field, and every
// reply is answered from a precomputed, checksum-patched packet template —
// no session object, no per-host timer, no allocation on the hot path.
//
// Protocol walk for one responsive target (request length L):
//
//   sweep → host   SYN  seq=cookie                (patched SYN template)
//   host  → sweep  SYN-ACK  seq=S, ack=cookie+1   → Responsive event
//   sweep → host   ACK+request  seq=cookie+1, ack=S+1   (ACK template)
//   host  → sweep  data  ack=cookie+1+L           → Banner event (first),
//   sweep → host   RST  seq=cookie+1+L               RST per data segment
//
// A closed port answers the SYN with RST|ACK ack=cookie+1 → Closed event.
// Everything else (pure ACKs from zero-window stallers, RSTs without ACK,
// forged or stale acks) is dropped after cookie validation fails or the
// event was already emitted — duplicates are suppressed by two per-cycle
// bitmaps, the sweep's only per-target storage (2 bits per address).
//
// Determinism: a target's whole exchange is keyed by (seed, cycle index,
// addresses) and per-flow fabric draws, never by sweep interleaving, so
// sharded sweeps merge byte-identically (the same contract as ScanEngine;
// see exec/two_phase.hpp).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "netbase/packet_buf.hpp"
#include "netsim/network.hpp"
#include "scanner/syncookie.hpp"
#include "scanner/targets.hpp"
#include "util/annotations.hpp"

namespace iwscan::scan {

/// First bytes of a responder's first data segment, enough to classify the
/// application banner ("HTTP/1.1 200 OK…") without buffering a stream.
inline constexpr std::size_t kSweepBannerCap = 32;

enum class SweepEventKind : std::uint8_t {
  Responsive,  // SYN-ACK seen: liveness + advertised window/MSS
  Closed,      // RST|ACK answered the SYN: host up, port closed
  Banner,      // first data segment of the first flight
};

/// One deduplicated observation from the sweep. `cycle` is the global
/// permutation-cycle index recovered from the cookie — the merge key the
/// two-phase executor shares with the stateful engine.
struct SweepEvent {
  SweepEventKind kind = SweepEventKind::Responsive;
  std::uint64_t cycle = 0;
  net::IPv4Address source;
  std::uint16_t window = 0;  // Responsive: advertised receive window
  std::uint16_t mss = 0;     // Responsive: MSS option, 0 if absent
  std::uint8_t banner_length = 0;                   // Banner
  std::array<std::uint8_t, kSweepBannerCap> banner{};  // Banner
};

/// Per-host sweep result after merging that host's events (collector side;
/// the sweep itself never stores one). Defaulted equality is the
/// byte-identity contract, like core::HostScanRecord.
struct SweepRecord {
  std::uint64_t cycle = 0;
  net::IPv4Address ip;
  bool responsive = false;
  bool closed = false;
  std::uint16_t window = 0;
  std::uint16_t mss = 0;
  std::uint8_t banner_length = 0;
  std::array<std::uint8_t, kSweepBannerCap> banner{};

  friend bool operator==(const SweepRecord&, const SweepRecord&) = default;
};

struct SweepConfig {
  /// Distinct from the stateful engine's address on purpose: the two tiers
  /// then ride disjoint per-flow impairment streams, which is what keeps
  /// phase-2 records byte-identical to a stateful-everywhere scan.
  net::IPv4Address scanner_address{192, 0, 2, 2};
  std::uint16_t source_port = 61337;  // fixed; outside the ephemeral range
  std::uint16_t target_port = 80;
  double rate_pps = 600'000;
  std::uint64_t seed = 7;
  std::uint8_t epoch = 0;  // rotates between whole-space passes
  /// Answer window after the last SYN: must exceed the host stack's
  /// SYN-ACK retransmission span (~31 s at the simulated defaults).
  sim::SimTime cooldown = sim::sec(40);
  /// First-flight request pushed on the handshake ACK. Static, so a data
  /// segment's ack (= cookie+1+len) still recovers the cookie statelessly.
  std::string request = "GET / HTTP/1.0\r\n\r\n";
};

struct SweepStats {
  std::uint64_t targets_probed = 0;
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_received = 0;
  std::uint64_t responsive = 0;
  std::uint64_t closed = 0;
  std::uint64_t banners = 0;
  std::uint64_t cookie_rejected = 0;   // forged/stale/corrupted acks
  std::uint64_t duplicate_events = 0;  // suppressed re-deliveries
  sim::SimTime started_at{};
  sim::SimTime finished_at{};

  SweepStats& operator+=(const SweepStats& other) noexcept {
    targets_probed += other.targets_probed;
    packets_sent += other.packets_sent;
    packets_received += other.packets_received;
    responsive += other.responsive;
    closed += other.closed;
    banners += other.banners;
    cookie_rejected += other.cookie_rejected;
    duplicate_events += other.duplicate_events;
    started_at = std::min(started_at, other.started_at);
    finished_at = std::max(finished_at, other.finished_at);
    return *this;
  }
};

class StatelessSweep final : public sim::Endpoint {
 public:
  using EventFn = std::function<void(const SweepEvent&)>;
  /// Returning true pauses SYN pacing (promotion-queue backpressure);
  /// resume via wake(). Replies to already-probed targets keep flowing.
  using ThrottleFn = std::function<bool()>;

  StatelessSweep(sim::Network& network, SweepConfig config, TargetGenerator targets,
                 EventFn on_event);
  ~StatelessSweep() override;

  StatelessSweep(const StatelessSweep&) = delete;
  StatelessSweep& operator=(const StatelessSweep&) = delete;

  /// Attach and begin pacing SYNs. done() holds once every target was
  /// probed and the post-sweep cooldown elapsed.
  void start();

  void set_on_complete(std::function<void()> callback) {
    on_complete_ = std::move(callback);
  }
  void set_throttle(ThrottleFn throttle) { throttle_ = std::move(throttle); }
  /// Resume pacing after a throttle pause (idempotent).
  void wake();

  [[nodiscard]] bool done() const noexcept { return finished_; }
  [[nodiscard]] const SweepStats& stats() const noexcept { return stats_; }
  /// The stateless tier's defining property, kept as an explicit pin for
  /// the adversarial battery: there is no session table to leak from.
  [[nodiscard]] std::size_t live_sessions() const noexcept { return 0; }

  // sim::Endpoint — the allocation-free fast path (iwlint hot root).
  IWSCAN_HOT void handle_packet(net::PacketView bytes) override;

 private:
  // A precomputed wire-ready packet plus the checksum baselines its
  // per-target patches start from (template built with dst/seq/ack = 0).
  struct Template {
    net::Bytes bytes;
    std::uint16_t ip_checksum = 0;
    std::uint16_t tcp_checksum = 0;
  };

  void build_templates();
  void pace();
  void begin_cooldown();
  void finish();
  void send_patched(const Template& tmpl, net::IPv4Address dst, std::uint32_t seq,
                    std::uint32_t ack);
  [[nodiscard]] bool recover(std::uint32_t cookie, net::IPv4Address source,
                             std::uint64_t& cycle);
  [[nodiscard]] bool first_event(std::vector<std::uint64_t>& bitmap,
                                 std::uint64_t cycle);
  /// Hand-off into collector logic (std::function, arbitrary user code):
  /// the hot-path traversal stops here, mirroring ProbeSession::on_datagram.
  IWSCAN_HOT_BOUNDARY void emit(const SweepEvent& event);

  sim::Network& network_;
  SweepConfig config_;
  TargetGenerator targets_;
  EventFn on_event_;
  SynCookieCodec codec_;
  std::uint32_t request_length_ = 0;

  Template syn_template_;   // seq patched
  Template ack_template_;   // seq+ack patched; carries the request payload
  Template rst_template_;   // seq patched

  std::uint64_t domain_ = 0;
  std::vector<std::uint64_t> seen_live_;    // Responsive|Closed emitted
  std::vector<std::uint64_t> seen_banner_;  // Banner emitted

  sim::EventId pace_event_ = sim::kNullEvent;
  sim::EventId cooldown_event_ = sim::kNullEvent;
  bool started_ = false;
  bool throttled_ = false;
  bool exhausted_ = false;
  bool finished_ = false;
  std::function<void()> on_complete_;
  ThrottleFn throttle_;
  SweepStats stats_;
};

}  // namespace iwscan::scan
