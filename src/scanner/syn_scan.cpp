#include "scanner/syn_scan.hpp"

namespace iwscan::scan {
namespace {

class SynSession final : public ProbeSession {
 public:
  SynSession(SessionServices& services, net::IPv4Address target, SynScanConfig config,
             SynScanModule::ResultFn* on_result, std::function<void()> finish)
      : services_(services),
        target_(target),
        config_(config),
        on_result_(on_result),
        finish_(std::move(finish)) {}

  ~SynSession() override { services_.loop().cancel(timeout_event_); }

  void start() override {
    source_port_ = services_.allocate_port(target_);
    isn_ = static_cast<std::uint32_t>(services_.session_seed(target_));

    net::TcpSegment syn;
    syn.ip.src = services_.scanner_address();
    syn.ip.dst = target_;
    syn.ip.ttl = 64;
    syn.ip.dont_fragment = true;
    syn.tcp.src_port = source_port_;
    syn.tcp.dst_port = config_.port;
    syn.tcp.seq = isn_;
    syn.tcp.flags = net::kSyn;
    syn.tcp.window = 65535;
    services_.send_packet(syn);

    timeout_event_ = services_.loop().schedule(config_.timeout, [this] {
      timeout_event_ = sim::kNullEvent;
      conclude(PortState::Unresponsive);
    });
  }

  void on_datagram(const net::Datagram& datagram) override {
    if (finished_) return;
    const auto* segment = std::get_if<net::TcpSegment>(&datagram);
    if (segment == nullptr) return;
    if (segment->tcp.dst_port != source_port_ ||
        segment->tcp.src_port != config_.port) {
      return;
    }
    if (segment->tcp.has(net::kRst)) {
      conclude(PortState::Closed);
      return;
    }
    if (segment->tcp.has(net::kSyn) && segment->tcp.has(net::kAck) &&
        segment->tcp.ack == isn_ + 1) {
      // Reset the half-open connection, exactly like ZMap's TCP module.
      net::TcpSegment rst;
      rst.ip.src = services_.scanner_address();
      rst.ip.dst = target_;
      rst.ip.ttl = 64;
      rst.tcp.src_port = source_port_;
      rst.tcp.dst_port = config_.port;
      rst.tcp.seq = isn_ + 1;
      rst.tcp.flags = net::kRst;
      services_.send_packet(rst);
      conclude(PortState::Open);
    }
  }

 private:
  void conclude(PortState state) {
    if (finished_) return;
    finished_ = true;
    services_.loop().cancel(timeout_event_);
    timeout_event_ = sim::kNullEvent;
    if (*on_result_) (*on_result_)(SynScanResult{target_, state});
    finish_();  // may destroy *this (via the engine graveyard); return now
  }

  SessionServices& services_;
  net::IPv4Address target_;
  SynScanConfig config_;
  SynScanModule::ResultFn* on_result_;
  std::function<void()> finish_;
  std::uint16_t source_port_ = 0;
  std::uint32_t isn_ = 0;
  sim::EventId timeout_event_ = sim::kNullEvent;
  bool finished_ = false;
};

}  // namespace

std::unique_ptr<ProbeSession> SynScanModule::create_session(
    SessionServices& services, net::IPv4Address target, std::function<void()> finish) {
  return std::make_unique<SynSession>(services, target, config_, &on_result_,
                                      std::move(finish));
}

}  // namespace iwscan::scan
