#include "scanner/syncookie.hpp"

#include "util/check.hpp"
#include "util/rng.hpp"

namespace iwscan::scan {
namespace {

// SipHash-2-4 (Aumasson & Bernstein) specialized to one 8-byte message —
// the only shape the cookie MAC ever hashes, so the generic byte loop is
// dropped. Reference vectors are pinned in scanner_test.cpp.
constexpr std::uint64_t rotl64(std::uint64_t x, int b) noexcept {
  return (x << b) | (x >> (64 - b));
}

struct SipState {
  std::uint64_t v0, v1, v2, v3;

  constexpr void round() noexcept {
    v0 += v1;
    v1 = rotl64(v1, 13);
    v1 ^= v0;
    v0 = rotl64(v0, 32);
    v2 += v3;
    v3 = rotl64(v3, 16);
    v3 ^= v2;
    v0 += v3;
    v3 = rotl64(v3, 21);
    v3 ^= v0;
    v2 += v1;
    v1 = rotl64(v1, 17);
    v1 ^= v2;
    v2 = rotl64(v2, 32);
  }
};

[[nodiscard]] constexpr std::uint64_t siphash24_u64(std::uint64_t k0, std::uint64_t k1,
                                                    std::uint64_t message) noexcept {
  SipState s{k0 ^ 0x736f6d6570736575ULL, k1 ^ 0x646f72616e646f6dULL,
             k0 ^ 0x6c7967656e657261ULL, k1 ^ 0x7465646279746573ULL};
  // One full 8-byte block...
  s.v3 ^= message;
  s.round();
  s.round();
  s.v0 ^= message;
  // ...then the final block: no residual bytes, just the length (8) in
  // the top byte, per the spec's padding rule.
  const std::uint64_t tail = std::uint64_t{8} << 56;
  s.v3 ^= tail;
  s.round();
  s.round();
  s.v0 ^= tail;
  s.v2 ^= 0xff;
  s.round();
  s.round();
  s.round();
  s.round();
  return s.v0 ^ s.v1 ^ s.v2 ^ s.v3;
}

}  // namespace

SynCookieCodec::SynCookieCodec(std::uint64_t seed) noexcept
    : mac_k0_(util::mix64(seed, 0x6d61632d6b30ULL)),   // "mac-k0"
      mac_k1_(util::mix64(seed, 0x6d61632d6b31ULL)) {  // "mac-k1"
  for (std::size_t i = 0; i < round_keys_.size(); ++i) {
    round_keys_[i] =
        static_cast<std::uint32_t>(util::mix64(seed, 0xfe157e1ULL + i));
  }
}

std::uint32_t SynCookieCodec::encrypt(std::uint32_t word) const noexcept {
  std::uint32_t left = word >> 16;
  std::uint32_t right = word & 0xffff;
  for (const std::uint32_t key : round_keys_) {
    const std::uint32_t f =
        static_cast<std::uint32_t>(util::mix64(key, right)) & 0xffff;
    const std::uint32_t next = left ^ f;
    left = right;
    right = next;
  }
  return (left << 16) | right;
}

std::uint32_t SynCookieCodec::decrypt(std::uint32_t word) const noexcept {
  std::uint32_t left = word >> 16;
  std::uint32_t right = word & 0xffff;
  for (std::size_t i = round_keys_.size(); i-- > 0;) {
    const std::uint32_t f =
        static_cast<std::uint32_t>(util::mix64(round_keys_[i], left)) & 0xffff;
    const std::uint32_t prev = right ^ f;
    right = left;
    left = prev;
  }
  return (left << 16) | right;
}

std::uint8_t SynCookieCodec::mac(std::uint32_t fields,
                                 net::IPv4Address address) const noexcept {
  const std::uint64_t message =
      (std::uint64_t{fields} << 32) | address.value();
  return static_cast<std::uint8_t>(siphash24_u64(mac_k0_, mac_k1_, message) & 0xf);
}

std::uint32_t SynCookieCodec::pack(const CookieIdentity& identity,
                                   net::IPv4Address target) const noexcept {
  IWSCAN_ASSERT(identity.index < kMaxCookieIndex, "cookie index out of range");
  IWSCAN_ASSERT(identity.probe < kMaxCookieProbe, "cookie probe out of range");
  IWSCAN_ASSERT(identity.epoch < kMaxCookieEpoch, "cookie epoch out of range");
  const std::uint32_t fields = (static_cast<std::uint32_t>(identity.index) << 8) |
                               (std::uint32_t{identity.probe} << 6) |
                               (std::uint32_t{identity.epoch} << 4);
  return encrypt(fields | mac(fields, target));
}

bool SynCookieCodec::unpack(std::uint32_t cookie, net::IPv4Address source,
                            CookieIdentity& out) const noexcept {
  const std::uint32_t plain = decrypt(cookie);
  const std::uint32_t fields = plain & ~std::uint32_t{0xf};
  if ((plain & 0xf) != mac(fields, source)) return false;
  out.index = plain >> 8;
  out.probe = static_cast<std::uint8_t>((plain >> 6) & 0x3);
  out.epoch = static_cast<std::uint8_t>((plain >> 4) & 0x3);
  return true;
}

}  // namespace iwscan::scan
