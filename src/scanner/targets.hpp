// Scan target generation: an allowlist of CIDR blocks minus a blocklist,
// visited in pseudorandom permutation order (the ZMap model: blocklisted
// and unroutable prefixes are never probed, the rest is shuffled).
//
// Sampling support (take a random p-fraction of the space) implements the
// paper's 1 %-subsample scans (§4.1 "Scanning 1% is enough!").
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "netbase/ipv4.hpp"
#include "scanner/permutation.hpp"

namespace iwscan::scan {

/// Parse a ZMap-style blocklist/allowlist: one CIDR (or bare address) per
/// line, '#' comments, blank lines ignored. Malformed lines are collected
/// into `errors` (if non-null) and skipped — a scan must not silently probe
/// a network someone tried to exclude, so callers should surface errors.
[[nodiscard]] std::vector<net::Cidr> parse_cidr_list(
    std::string_view text, std::vector<std::string>* errors = nullptr);

class TargetGenerator {
 public:
  /// `allow` is normalized at construction: blocks nested inside another
  /// block (and exact duplicates) are merged away, so every address is
  /// visited exactly once and sharded partitions are provably disjoint.
  /// The number of addresses removed by merging is reported by
  /// merged_overlap(). `sample_fraction` in (0,1] keeps each address
  /// independently with that probability (deterministic in seed).
  TargetGenerator(std::vector<net::Cidr> allow, std::vector<net::Cidr> block,
                  std::uint64_t seed, double sample_fraction = 1.0,
                  std::uint64_t shard = 0, std::uint64_t total_shards = 1);

  // Self-referential: iterator_ points at this object's permutation_, so
  // the defaulted special members would leave a copy's iterator aimed at
  // the source. Each of these re-points it after the memberwise transfer.
  TargetGenerator(const TargetGenerator& other);
  TargetGenerator(TargetGenerator&& other) noexcept;
  TargetGenerator& operator=(const TargetGenerator& other);
  TargetGenerator& operator=(TargetGenerator&& other) noexcept;
  ~TargetGenerator() = default;

  /// Next target, or nullopt when the space is exhausted.
  [[nodiscard]] std::optional<net::IPv4Address> next();

  /// Global permutation-cycle index of the last address returned by next().
  /// Comparable across shards of the same (allow, seed) space; a parallel
  /// executor orders merged records by it (see PermutationIterator).
  [[nodiscard]] std::uint64_t last_cycle_index() const noexcept {
    return last_cycle_index_;
  }

  /// Total addresses in the allowlist (before blocklist/sampling).
  [[nodiscard]] std::uint64_t address_space_size() const noexcept { return total_; }

  [[nodiscard]] std::uint64_t emitted() const noexcept { return emitted_; }
  [[nodiscard]] std::uint64_t skipped_blocked() const noexcept {
    return skipped_blocked_;
  }
  [[nodiscard]] std::uint64_t skipped_sampled_out() const noexcept {
    return skipped_sampled_out_;
  }
  /// Addresses dropped by allowlist normalization (nested/duplicate CIDRs).
  [[nodiscard]] std::uint64_t merged_overlap() const noexcept {
    return merged_overlap_;
  }

 private:
  struct Normalized {
    std::vector<net::Cidr> blocks;
    std::uint64_t merged = 0;  // addresses dropped as nested/duplicate
  };
  [[nodiscard]] static Normalized normalize(std::vector<net::Cidr> blocks);
  TargetGenerator(Normalized allow, std::vector<net::Cidr> block, std::uint64_t seed,
                  double sample_fraction, std::uint64_t shard,
                  std::uint64_t total_shards);

  [[nodiscard]] net::IPv4Address index_to_address(std::uint64_t index) const noexcept;
  [[nodiscard]] bool blocked(net::IPv4Address addr) const noexcept;

  std::vector<net::Cidr> allow_;
  std::vector<std::uint64_t> cumulative_;  // prefix sums of block sizes
  std::vector<net::Cidr> block_;
  std::uint64_t total_ = 0;
  RandomPermutation permutation_;
  PermutationIterator iterator_;
  std::uint64_t sample_seed_;
  double sample_fraction_;
  std::uint64_t last_cycle_index_ = 0;
  std::uint64_t emitted_ = 0;
  std::uint64_t skipped_blocked_ = 0;
  std::uint64_t skipped_sampled_out_ = 0;
  std::uint64_t merged_overlap_ = 0;
};

/// Where a scan engine's targets come from. The classic batch scan pulls
/// from a TargetGenerator (every target known up front); the two-phase
/// executor pulls from a live promotion queue fed by the stateless sweep,
/// which can momentarily run dry without being finished — hence the
/// three-way pull result and the wakeup hook.
class TargetSource {
 public:
  enum class Pull : std::uint8_t {
    Ready,      // `target`/`cycle` were filled in
    Pending,    // nothing right now, but more may arrive — wait for wakeup
    Exhausted,  // no target will ever arrive again
  };

  virtual ~TargetSource() = default;

  /// Pull the next target and its global permutation-cycle index.
  [[nodiscard]] virtual Pull next(net::IPv4Address& target, std::uint64_t& cycle) = 0;

  /// Expected total target count (capacity pre-sizing only; may be 0).
  [[nodiscard]] virtual std::uint64_t size_hint() const noexcept { return 0; }

  /// Called once by the consuming engine. Implementations that ever return
  /// Pending must invoke the callback when new targets arrive or the
  /// source becomes Exhausted; always-ready sources may ignore it.
  virtual void set_wakeup(std::function<void()> wakeup) { (void)wakeup; }
};

/// TargetGenerator adapted to the pull interface: never Pending.
class GeneratorTargetSource final : public TargetSource {
 public:
  explicit GeneratorTargetSource(TargetGenerator generator)
      : generator_(std::move(generator)) {}

  [[nodiscard]] Pull next(net::IPv4Address& target, std::uint64_t& cycle) override {
    const auto address = generator_.next();
    if (!address) return Pull::Exhausted;
    target = *address;
    cycle = generator_.last_cycle_index();
    return Pull::Ready;
  }

  [[nodiscard]] std::uint64_t size_hint() const noexcept override {
    return generator_.address_space_size();
  }

  [[nodiscard]] const TargetGenerator& generator() const noexcept { return generator_; }

 private:
  TargetGenerator generator_;
};

/// A fixed, pre-resolved target list with explicit cycle indices — the
/// two-phase executor's capped mode replays the globally truncated
/// promotion set through one of these. Never Pending.
class ListTargetSource final : public TargetSource {
 public:
  using Entry = std::pair<net::IPv4Address, std::uint64_t>;  // (target, cycle)

  explicit ListTargetSource(std::vector<Entry> entries)
      : entries_(std::move(entries)) {}

  [[nodiscard]] Pull next(net::IPv4Address& target, std::uint64_t& cycle) override {
    if (position_ >= entries_.size()) return Pull::Exhausted;
    target = entries_[position_].first;
    cycle = entries_[position_].second;
    ++position_;
    return Pull::Ready;
  }

  [[nodiscard]] std::uint64_t size_hint() const noexcept override {
    return entries_.size();
  }

 private:
  std::vector<Entry> entries_;
  std::size_t position_ = 0;
};

}  // namespace iwscan::scan
