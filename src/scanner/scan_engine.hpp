// ZMap-style scan engine extended with per-connection state.
//
// Stock ZMap is built around a single stateless packet exchange per target;
// the paper's key engineering contribution (§3.4) is a probe-module design
// that keeps lightweight per-connection state so full TCP conversations
// can ride on the same high-rate architecture. This engine reproduces that
// split: a paced target iterator (send side) plus a demultiplexer that
// routes replies to per-host sessions (receive side).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "netbase/packet.hpp"
#include "netsim/network.hpp"
#include "scanner/targets.hpp"
#include "util/annotations.hpp"
#include "util/rng.hpp"

namespace iwscan::scan {

class ScanEngine;

/// Services a probe session uses to interact with the world.
class SessionServices {
 public:
  virtual ~SessionServices() = default;
  virtual void send_packet(net::Bytes bytes) = 0;
  /// Pooled-buffer variant of send_packet. The default forwards to the
  /// owned-bytes overload so lightweight test/bench implementations need
  /// only the one method; ScanEngine overrides it to hand the buffer to
  /// the fabric without a copy.
  virtual void send_packet(net::PacketBuf packet) {
    send_packet(packet.take_bytes());
  }
  /// Recycled buffers for outgoing packets, or nullptr when the transport
  /// has no pool (sessions then fall back to owned-bytes encoding).
  [[nodiscard]] virtual net::BufferPool* packet_pool() { return nullptr; }

  /// Encode-and-send conveniences used by the probe modules' hot paths:
  /// route through the pooled buffer when one is available so steady-state
  /// probing does not allocate per packet.
  void send_packet(const net::TcpSegment& segment) { encode_and_send(segment); }
  void send_packet(const net::IcmpDatagram& datagram) { encode_and_send(datagram); }

  [[nodiscard]] virtual sim::EventLoop& loop() = 0;
  [[nodiscard]] virtual net::IPv4Address scanner_address() const = 0;
  /// Fresh ephemeral source port for a connection to `target`. Allocation
  /// is deterministic per target (not globally sequential) so the packets
  /// of one conversation do not depend on which other targets are in
  /// flight; cross-target collisions are harmless — the engine demuxes
  /// replies by source address, not by port.
  [[nodiscard]] virtual std::uint16_t allocate_port(net::IPv4Address target) = 0;
  /// Deterministic per-session randomness, keyed by (scan seed, target) so
  /// a target's draw sequence is independent of launch interleaving.
  [[nodiscard]] virtual std::uint64_t session_seed(net::IPv4Address target) = 0;

 private:
  template <typename Packet>
  void encode_and_send(const Packet& packet) {
    if (net::BufferPool* pool = packet_pool()) {
      net::PacketBuf buf = pool->acquire();
      net::encode_into(packet, buf.bytes());
      send_packet(std::move(buf));
    } else {
      send_packet(net::encode(packet));
    }
  }
};

/// Which per-session budget expired (see SessionBudget).
enum class BudgetKind { WallTime, RxBytes, RxPackets };

[[nodiscard]] constexpr std::string_view to_string(BudgetKind kind) noexcept {
  switch (kind) {
    case BudgetKind::WallTime: return "wall-time";
    case BudgetKind::RxBytes: return "rx-bytes";
    case BudgetKind::RxPackets: return "rx-packets";
  }
  return "?";
}

/// One in-flight target conversation. Created by a ProbeModule; must call
/// ScanEngine-provided `finish` (passed at creation) exactly once.
class ProbeSession {
 public:
  virtual ~ProbeSession() = default;
  /// Send the first probe packet(s).
  virtual void start() = 0;
  /// A datagram from this session's target arrived. Hot-path boundary: the
  /// engine's rx traversal stops at this hand-off into probe-module logic;
  /// sessions own their (budgeted, per-conversation) allocation behavior.
  IWSCAN_HOT_BOUNDARY virtual void on_datagram(const net::Datagram& datagram) = 0;
  /// The engine's per-session budget expired (graceful degradation against
  /// tarpits / slowloris / amplifiers). The session may emit a best-effort
  /// record and invoke its finish callback; if it does not, the engine
  /// force-finishes it right after this returns. No packets are delivered
  /// to the session afterwards.
  virtual void on_budget_exhausted(BudgetKind kind) { (void)kind; }
};

/// Factory + result sink for a scan type (SYN scan, ICMP MTU, IW probe…).
class ProbeModule {
 public:
  virtual ~ProbeModule() = default;
  /// `finish` must be invoked exactly once when the session completes; the
  /// engine then releases the session (possibly immediately — the session
  /// must not touch its own state afterwards).
  virtual std::unique_ptr<ProbeSession> create_session(
      SessionServices& services, net::IPv4Address target,
      std::function<void()> finish) = 0;
};

/// Hard per-session ceilings: no single hostile host (tarpit, slowloris,
/// redirect amplifier) may hold scanner state or bandwidth indefinitely.
/// Defaults sit far above any well-behaved probe sequence (worst case is
/// ~160 s of virtual time and a few hundred packets), so they only ever
/// fire on pathological peers. Zero disables the corresponding limit.
struct SessionBudget {
  sim::SimTime wall_time = sim::sec(240);          // SimTime::zero() = unlimited
  std::uint64_t rx_bytes = 4 * 1024 * 1024;
  std::uint64_t rx_packets = 4096;
};

struct EngineConfig {
  net::IPv4Address scanner_address{10, 0, 0, 1};
  double rate_pps = 150'000;      // session starts per second (paper: 150 kpps)
  std::size_t max_outstanding = 10'000;
  std::uint64_t seed = 1;
  SessionBudget budget;
};

struct EngineStats {
  std::uint64_t targets_started = 0;
  std::uint64_t targets_finished = 0;
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_received = 0;
  std::uint64_t stray_packets = 0;  // no matching session
  // Sessions killed by each SessionBudget limit (graceful degradation).
  std::uint64_t sessions_killed_wall = 0;
  std::uint64_t sessions_killed_bytes = 0;
  std::uint64_t sessions_killed_packets = 0;
  sim::SimTime started_at{};
  sim::SimTime finished_at{};

  /// Merge another engine's stats (used by exec:: to aggregate shard
  /// workers): counters sum; the time window becomes the envelope — the
  /// earliest start and the latest finish across both.
  EngineStats& operator+=(const EngineStats& other) noexcept {
    targets_started += other.targets_started;
    targets_finished += other.targets_finished;
    packets_sent += other.packets_sent;
    packets_received += other.packets_received;
    stray_packets += other.stray_packets;
    sessions_killed_wall += other.sessions_killed_wall;
    sessions_killed_bytes += other.sessions_killed_bytes;
    sessions_killed_packets += other.sessions_killed_packets;
    started_at = std::min(started_at, other.started_at);
    finished_at = std::max(finished_at, other.finished_at);
    return *this;
  }
};

class ScanEngine final : public sim::Endpoint, public SessionServices {
 public:
  ScanEngine(sim::Network& network, EngineConfig config, TargetGenerator targets,
             ProbeModule& module);
  /// Pull targets from an external source instead of an owned generator —
  /// the two-phase executor feeds the engine from the stateless sweep's
  /// promotion queue this way. `source` must outlive the engine; a source
  /// that returns Pending must deliver its wakeup (set in start()) on the
  /// engine's own event loop.
  ScanEngine(sim::Network& network, EngineConfig config, TargetSource& source,
             ProbeModule& module);
  ~ScanEngine() override;

  ScanEngine(const ScanEngine&) = delete;
  ScanEngine& operator=(const ScanEngine&) = delete;

  /// Attach to the network and begin pacing. Completion is observable via
  /// done() once the event loop drains (or via on_complete).
  void start();

  void set_on_complete(std::function<void()> callback) {
    on_complete_ = std::move(callback);
  }

  /// Invoked for every launched target with its global permutation-cycle
  /// index (TargetGenerator::last_cycle_index) — the hook a parallel
  /// executor uses to tag records for deterministic merge ordering.
  using LaunchObserver = std::function<void(net::IPv4Address, std::uint64_t)>;
  void set_launch_observer(LaunchObserver observer) {
    launch_observer_ = std::move(observer);
  }

  [[nodiscard]] bool done() const noexcept {
    return started_ && targets_exhausted_ && sessions_.empty();
  }
  [[nodiscard]] const EngineStats& stats() const noexcept { return stats_; }
  /// Sessions currently holding engine state — the leak-check hook for
  /// tests: must be 0 once done() holds.
  [[nodiscard]] std::size_t live_sessions() const noexcept { return sessions_.size(); }

  // sim::Endpoint
  IWSCAN_HOT void handle_packet(net::PacketView bytes) override;

  // SessionServices
  using SessionServices::send_packet;  // keep the encode conveniences visible
  void send_packet(net::Bytes bytes) override;
  void send_packet(net::PacketBuf packet) override;
  [[nodiscard]] net::BufferPool* packet_pool() override {
    return &network_.pool();
  }
  [[nodiscard]] sim::EventLoop& loop() override { return network_.loop(); }
  [[nodiscard]] net::IPv4Address scanner_address() const override {
    return config_.scanner_address;
  }
  [[nodiscard]] std::uint16_t allocate_port(net::IPv4Address target) override;
  [[nodiscard]] std::uint64_t session_seed(net::IPv4Address target) override;

 private:
  // Per-target draw state: seeded purely from (scan seed, target) so the
  // sequence a session observes is identical no matter how many other
  // sessions interleave with it — the property that makes sharded scans
  // byte-identical to shards=1. Erased when the session finishes.
  struct TargetDraws {
    util::Rng rng;
    std::uint32_t port_offset;
  };
  [[nodiscard]] TargetDraws& target_draws(net::IPv4Address target);

  // One live conversation plus its budget accounting. The wall-time
  // deadline is armed at launch; byte/packet counters are checked in
  // handle_packet before delivery.
  struct SessionState {
    std::unique_ptr<ProbeSession> session;
    sim::EventId deadline = sim::kNullEvent;
    std::uint64_t rx_bytes = 0;
    std::uint64_t rx_packets = 0;
  };

  void pace();
  void launch_next_target();
  void on_source_wakeup();
  void maybe_complete();
  void finish_session(net::IPv4Address target);
  void abort_session(net::IPv4Address target, BudgetKind kind);
  void arm_deadline(SessionState& state, net::IPv4Address target);

  sim::Network& network_;
  EngineConfig config_;
  std::unique_ptr<TargetSource> owned_source_;  // generator-ctor path only
  TargetSource* source_;                        // never null
  ProbeModule& module_;

  std::unordered_map<net::IPv4Address, SessionState> sessions_;
  std::unordered_map<net::IPv4Address, TargetDraws> draws_;
  std::vector<std::unique_ptr<ProbeSession>> graveyard_;
  sim::EventId reap_event_ = sim::kNullEvent;
  sim::EventId pace_event_ = sim::kNullEvent;
  sim::SimTime next_send_time_{};
  bool started_ = false;
  bool source_waiting_ = false;  // source returned Pending; pacing is parked
  bool targets_exhausted_ = false;
  bool complete_notified_ = false;
  std::function<void()> on_complete_;
  LaunchObserver launch_observer_;
  EngineStats stats_;
};

}  // namespace iwscan::scan
