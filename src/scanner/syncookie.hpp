// Keyed SYN-cookie codec for the stateless sweep tier (ZBanner model, see
// PAPERS.md): the scanner keeps no per-host session object, so everything
// it needs to interpret a reply — which target this is, which probe type,
// which seed epoch — must ride inside the probe itself. TCP echoes our
// initial sequence number back in every acknowledgement (SYN-ACK and
// closed-port RST carry ack = seq+1; data segments carry ack = seq+1+len),
// so the 32-bit ISN is the stateless scanner's only storage.
//
// Layout of the plaintext word before encryption:
//
//   [ index:24 | probe:2 | epoch:2 | mac:4 ]
//
// The MAC is a truncated SipHash-2-4 over (index, probe, epoch, target
// address) under a per-scan key, so a host can only echo cookies minted
// for its own address — it cannot forge an ack that attributes a reply to
// a different permutation-cycle index. The whole word is then passed
// through a 4-round keyed Feistel network so on-the-wire ISNs look
// uniformly random (real stacks randomize ISNs; a bare counter would also
// make the sweep trivially fingerprintable).
//
// 24 bits of index cap one epoch at 2^24 targets; whole-IPv4 sweeps rotate
// the 2-bit epoch between passes (stale echoes from the previous epoch
// then fail validation instead of aliasing a new target).
#pragma once

#include <array>
#include <cstdint>

#include "netbase/ipv4.hpp"

namespace iwscan::scan {

/// Identity carried inside one stateless probe's sequence number.
struct CookieIdentity {
  std::uint64_t index = 0;  // permutation-cycle index, < kMaxCookieIndex
  std::uint8_t probe = 0;   // probe type, 2 bits
  std::uint8_t epoch = 0;   // seed epoch, 2 bits

  friend bool operator==(const CookieIdentity&, const CookieIdentity&) = default;
};

inline constexpr std::uint64_t kMaxCookieIndex = std::uint64_t{1} << 24;
inline constexpr std::uint8_t kMaxCookieProbe = 1 << 2;
inline constexpr std::uint8_t kMaxCookieEpoch = 1 << 2;

class SynCookieCodec {
 public:
  explicit SynCookieCodec(std::uint64_t seed) noexcept;

  /// Mint the ISN for a probe to `target`. Requires index/probe/epoch in
  /// range (IWSCAN_ASSERT; the sweep validates its domain at start()).
  [[nodiscard]] std::uint32_t pack(const CookieIdentity& identity,
                                   net::IPv4Address target) const noexcept;

  /// Recover the identity from an echoed cookie (the reply's ack minus the
  /// protocol offset, undone by the caller). Returns false — leaving `out`
  /// untouched — when the MAC does not verify, i.e. the ack was forged,
  /// corrupted, or minted for a different source address or scan key.
  [[nodiscard]] bool unpack(std::uint32_t cookie, net::IPv4Address source,
                            CookieIdentity& out) const noexcept;

 private:
  [[nodiscard]] std::uint32_t encrypt(std::uint32_t word) const noexcept;
  [[nodiscard]] std::uint32_t decrypt(std::uint32_t word) const noexcept;
  [[nodiscard]] std::uint8_t mac(std::uint32_t fields,
                                 net::IPv4Address address) const noexcept;

  std::uint64_t mac_k0_;
  std::uint64_t mac_k1_;
  std::array<std::uint32_t, 4> round_keys_;
};

}  // namespace iwscan::scan
