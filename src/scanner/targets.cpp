#include "scanner/targets.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "util/rng.hpp"
#include "util/strings.hpp"

namespace iwscan::scan {

std::vector<net::Cidr> parse_cidr_list(std::string_view text,
                                       std::vector<std::string>* errors) {
  std::vector<net::Cidr> list;
  for (const auto raw_line : util::split(text, '\n')) {
    std::string_view line = raw_line;
    if (const std::size_t hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = util::trim(line);
    if (line.empty()) continue;
    if (const auto cidr = net::Cidr::parse(line)) {
      list.push_back(*cidr);
    } else if (errors != nullptr) {
      errors->emplace_back(line);
    }
  }
  return list;
}

namespace {
std::uint64_t total_size(const std::vector<net::Cidr>& blocks) {
  std::uint64_t total = 0;
  for (const auto& block : blocks) total += block.size();
  return total == 0 ? 1 : total;
}
}  // namespace

// Two aligned power-of-two ranges are either disjoint or nested, so
// normalization reduces to dropping every block contained in another (and
// later copies of exact duplicates): the survivors are pairwise disjoint,
// and disjoint inputs pass through untouched, keeping the index→address
// assignment stable for callers that already pass disjoint lists.
TargetGenerator::Normalized TargetGenerator::normalize(std::vector<net::Cidr> blocks) {
  Normalized out;
  out.blocks.reserve(blocks.size());
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    bool drop = false;
    for (std::size_t j = 0; j < blocks.size() && !drop; ++j) {
      if (j == i) continue;
      const bool nested = blocks[j].prefix_len < blocks[i].prefix_len &&
                          blocks[j].contains(blocks[i].first());
      const bool duplicate = j < i &&
                             blocks[j].prefix_len == blocks[i].prefix_len &&
                             blocks[j].first() == blocks[i].first();
      drop = nested || duplicate;
    }
    if (drop) {
      out.merged += blocks[i].size();
    } else {
      out.blocks.push_back(blocks[i]);
    }
  }
  return out;
}

TargetGenerator::TargetGenerator(std::vector<net::Cidr> allow,
                                 std::vector<net::Cidr> block, std::uint64_t seed,
                                 double sample_fraction, std::uint64_t shard,
                                 std::uint64_t total_shards)
    : TargetGenerator(normalize(std::move(allow)), std::move(block), seed,
                      sample_fraction, shard, total_shards) {}

TargetGenerator::TargetGenerator(Normalized allow, std::vector<net::Cidr> block,
                                 std::uint64_t seed, double sample_fraction,
                                 std::uint64_t shard, std::uint64_t total_shards)
    : allow_(std::move(allow.blocks)),
      block_(std::move(block)),
      total_(total_size(allow_)),
      permutation_(total_, seed),
      iterator_(permutation_, shard, total_shards),
      sample_seed_(util::mix64(seed, 0x5a3b7e11)),
      sample_fraction_(sample_fraction),
      merged_overlap_(allow.merged) {
  cumulative_.reserve(allow_.size());
  std::uint64_t running = 0;
  for (const auto& cidr : allow_) {
    running += cidr.size();
    cumulative_.push_back(running);
  }
}

TargetGenerator::TargetGenerator(const TargetGenerator& other)
    : allow_(other.allow_),
      cumulative_(other.cumulative_),
      block_(other.block_),
      total_(other.total_),
      permutation_(other.permutation_),
      iterator_(other.iterator_),
      sample_seed_(other.sample_seed_),
      sample_fraction_(other.sample_fraction_),
      last_cycle_index_(other.last_cycle_index_),
      emitted_(other.emitted_),
      skipped_blocked_(other.skipped_blocked_),
      skipped_sampled_out_(other.skipped_sampled_out_),
      merged_overlap_(other.merged_overlap_) {
  iterator_.rebind(permutation_);
}

TargetGenerator::TargetGenerator(TargetGenerator&& other) noexcept
    : allow_(std::move(other.allow_)),
      cumulative_(std::move(other.cumulative_)),
      block_(std::move(other.block_)),
      total_(other.total_),
      permutation_(other.permutation_),
      iterator_(other.iterator_),
      sample_seed_(other.sample_seed_),
      sample_fraction_(other.sample_fraction_),
      last_cycle_index_(other.last_cycle_index_),
      emitted_(other.emitted_),
      skipped_blocked_(other.skipped_blocked_),
      skipped_sampled_out_(other.skipped_sampled_out_),
      merged_overlap_(other.merged_overlap_) {
  iterator_.rebind(permutation_);
}

TargetGenerator& TargetGenerator::operator=(const TargetGenerator& other) {
  if (this != &other) {
    *this = TargetGenerator(other);
  }
  return *this;
}

TargetGenerator& TargetGenerator::operator=(TargetGenerator&& other) noexcept {
  if (this != &other) {
    allow_ = std::move(other.allow_);
    cumulative_ = std::move(other.cumulative_);
    block_ = std::move(other.block_);
    total_ = other.total_;
    permutation_ = other.permutation_;
    iterator_ = other.iterator_;
    sample_seed_ = other.sample_seed_;
    sample_fraction_ = other.sample_fraction_;
    last_cycle_index_ = other.last_cycle_index_;
    emitted_ = other.emitted_;
    skipped_blocked_ = other.skipped_blocked_;
    skipped_sampled_out_ = other.skipped_sampled_out_;
    merged_overlap_ = other.merged_overlap_;
    iterator_.rebind(permutation_);
  }
  return *this;
}

net::IPv4Address TargetGenerator::index_to_address(std::uint64_t index) const noexcept {
  const auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), index);
  const std::size_t block_idx = static_cast<std::size_t>(it - cumulative_.begin());
  const std::uint64_t before = block_idx == 0 ? 0 : cumulative_[block_idx - 1];
  return allow_[block_idx].at(index - before);
}

bool TargetGenerator::blocked(net::IPv4Address addr) const noexcept {
  for (const auto& cidr : block_) {
    if (cidr.contains(addr)) return true;
  }
  return false;
}

std::optional<net::IPv4Address> TargetGenerator::next() {
  if (allow_.empty()) return std::nullopt;
  std::uint64_t index = 0;
  while (iterator_.next(index)) {
    const net::IPv4Address addr = index_to_address(index);
    if (blocked(addr)) {
      ++skipped_blocked_;
      continue;
    }
    if (sample_fraction_ < 1.0) {
      // Deterministic per-address coin: the same 1% sample is drawn on
      // every run with the same seed (and across shards).
      const double coin =
          static_cast<double>(util::mix64(sample_seed_, addr.value()) >> 11) *
          0x1.0p-53;
      if (coin >= sample_fraction_) {
        ++skipped_sampled_out_;
        continue;
      }
    }
    ++emitted_;
    last_cycle_index_ = iterator_.last_index();
    return addr;
  }
  return std::nullopt;
}

}  // namespace iwscan::scan
