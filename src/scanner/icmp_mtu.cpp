#include "scanner/icmp_mtu.hpp"

namespace iwscan::scan {
namespace {

class MtuSession final : public ProbeSession {
 public:
  MtuSession(SessionServices& services, net::IPv4Address target, MtuProbeConfig config,
             IcmpMtuModule::ResultFn* on_result, std::function<void()> finish)
      : services_(services),
        target_(target),
        config_(config),
        on_result_(on_result),
        finish_(std::move(finish)) {}

  ~MtuSession() override { services_.loop().cancel(timeout_event_); }

  void start() override {
    echo_id_ = static_cast<std::uint16_t>(services_.session_seed(target_));
    probe(config_.initial_mtu);
  }

  void on_datagram(const net::Datagram& datagram) override {
    if (finished_) return;
    const auto* icmp = std::get_if<net::IcmpDatagram>(&datagram);
    if (icmp == nullptr) return;

    if (icmp->icmp.type == net::IcmpType::EchoReply &&
        icmp->icmp.id_or_unused == echo_id_) {
      // The probe at `current_mtu_` traversed the path whole.
      conclude(true, current_mtu_);
      return;
    }
    if (icmp->icmp.type == net::IcmpType::DestinationUnreachable &&
        icmp->icmp.code == net::kIcmpFragNeeded) {
      const std::uint32_t next_hop = icmp->icmp.seq_or_mtu;
      if (next_hop >= config_.min_mtu && next_hop < current_mtu_ &&
          probes_sent_ < config_.max_probes) {
        probe(next_hop);  // confirm the advertised MTU end-to-end
      } else {
        conclude(false, 0);
      }
    }
  }

 private:
  void probe(std::uint32_t mtu) {
    current_mtu_ = mtu;
    ++probes_sent_;

    net::IcmpDatagram echo;
    echo.ip.src = services_.scanner_address();
    echo.ip.dst = target_;
    echo.ip.ttl = 64;
    echo.ip.dont_fragment = true;
    echo.icmp.type = net::IcmpType::Echo;
    echo.icmp.code = 0;
    echo.icmp.id_or_unused = echo_id_;
    echo.icmp.seq_or_mtu = static_cast<std::uint16_t>(probes_sent_);
    // Pad so the datagram is exactly `mtu` bytes: 20 IP + 8 ICMP + payload.
    echo.icmp.payload.assign(mtu > 28 ? mtu - 28 : 0, 0x5a);
    services_.send_packet(echo);

    services_.loop().cancel(timeout_event_);
    timeout_event_ = services_.loop().schedule(config_.timeout, [this] {
      timeout_event_ = sim::kNullEvent;
      conclude(false, 0);
    });
  }

  void conclude(bool responded, std::uint32_t mtu) {
    if (finished_) return;
    finished_ = true;
    services_.loop().cancel(timeout_event_);
    timeout_event_ = sim::kNullEvent;
    if (*on_result_) (*on_result_)(MtuProbeResult{target_, responded, mtu});
    finish_();  // may destroy *this
  }

  SessionServices& services_;
  net::IPv4Address target_;
  MtuProbeConfig config_;
  IcmpMtuModule::ResultFn* on_result_;
  std::function<void()> finish_;
  std::uint16_t echo_id_ = 0;
  std::uint32_t current_mtu_ = 0;
  int probes_sent_ = 0;
  sim::EventId timeout_event_ = sim::kNullEvent;
  bool finished_ = false;
};

}  // namespace

std::unique_ptr<ProbeSession> IcmpMtuModule::create_session(
    SessionServices& services, net::IPv4Address target, std::function<void()> finish) {
  return std::make_unique<MtuSession>(services, target, config_, &on_result_,
                                      std::move(finish));
}

}  // namespace iwscan::scan
