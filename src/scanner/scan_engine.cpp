#include "scanner/scan_engine.hpp"

#include "util/logging.hpp"

namespace iwscan::scan {

ScanEngine::ScanEngine(sim::Network& network, EngineConfig config,
                       TargetGenerator targets, ProbeModule& module)
    : network_(network),
      config_(config),
      owned_source_(std::make_unique<GeneratorTargetSource>(std::move(targets))),
      source_(owned_source_.get()),
      module_(module) {
  // Session/draw maps never exceed the outstanding window, and the fabric
  // instantiates at most one endpoint per in-flight target plus whatever
  // is already attached — reserve both up front so the steady-state scan
  // loop never rehashes (ScanOptions::max_outstanding flows in via
  // EngineConfig; the allowlist bounds it for small worlds).
  const std::size_t hint = static_cast<std::size_t>(
      std::min<std::uint64_t>(config_.max_outstanding, source_->size_hint()));
  sessions_.reserve(hint);
  draws_.reserve(hint);
  network_.reserve_endpoints(hint);
}

ScanEngine::ScanEngine(sim::Network& network, EngineConfig config,
                       TargetSource& source, ProbeModule& module)
    : network_(network), config_(config), source_(&source), module_(module) {
  const std::size_t hint = static_cast<std::size_t>(
      std::min<std::uint64_t>(config_.max_outstanding, source_->size_hint()));
  sessions_.reserve(hint);
  draws_.reserve(hint);
  network_.reserve_endpoints(hint);
}

ScanEngine::~ScanEngine() {
  network_.loop().cancel(pace_event_);
  network_.loop().cancel(reap_event_);
  for (auto& [target, state] : sessions_) {
    network_.loop().cancel(state.deadline);
  }
  if (network_.attached(config_.scanner_address)) {
    network_.detach(config_.scanner_address);
  }
}

void ScanEngine::start() {
  started_ = true;
  stats_.started_at = network_.loop().now();
  network_.attach(config_.scanner_address, this);
  source_->set_wakeup([this] { on_source_wakeup(); });
  next_send_time_ = network_.loop().now();
  pace();
}

void ScanEngine::pace() {
  pace_event_ = sim::kNullEvent;
  if (targets_exhausted_) return;

  const auto interval = sim::SimTime{
      static_cast<std::int64_t>(1e9 / (config_.rate_pps > 0 ? config_.rate_pps : 1.0))};

  if (sessions_.size() >= config_.max_outstanding) {
    // Backpressure: per-connection state is bounded (the lightweight-state
    // design of §3.4); retry this slot shortly.
    pace_event_ = network_.loop().schedule(interval, [this] { pace(); });
    return;
  }

  launch_next_target();
  if (!targets_exhausted_ && !source_waiting_) {
    pace_event_ = network_.loop().schedule(interval, [this] { pace(); });
  }
}

void ScanEngine::launch_next_target() {
  net::IPv4Address target;
  std::uint64_t cycle = 0;
  switch (source_->next(target, cycle)) {
    case TargetSource::Pull::Exhausted:
      targets_exhausted_ = true;
      maybe_complete();
      return;
    case TargetSource::Pull::Pending:
      // The source (a live promotion queue) ran dry but is not finished:
      // park pacing until its wakeup fires. Launches stay rate-limited on
      // resume because next_send_time_ is untouched.
      source_waiting_ = true;
      return;
    case TargetSource::Pull::Ready:
      break;
  }
  ++stats_.targets_started;
  if (launch_observer_) launch_observer_(target, cycle);
  auto session = module_.create_session(*this, target,
                                        [this, t = target] { finish_session(t); });
  auto [it, inserted] = sessions_.emplace(target, SessionState{std::move(session)});
  if (!inserted) {
    // Duplicate target (overlapping allowlist); replace and run anyway.
    network_.loop().cancel(it->second.deadline);
    it->second = SessionState{module_.create_session(
        *this, target, [this, t = target] { finish_session(t); })};
  }
  arm_deadline(it->second, target);
  it->second.session->start();
}

void ScanEngine::on_source_wakeup() {
  if (!started_ || !source_waiting_ || targets_exhausted_) return;
  source_waiting_ = false;
  if (pace_event_ == sim::kNullEvent) {
    pace_event_ = network_.loop().schedule(sim::SimTime::zero(), [this] { pace(); });
  }
}

void ScanEngine::maybe_complete() {
  if (!done()) return;
  stats_.finished_at = network_.loop().now();
  if (on_complete_ && !complete_notified_) {
    complete_notified_ = true;
    on_complete_();
  }
}

void ScanEngine::arm_deadline(SessionState& state, net::IPv4Address target) {
  if (config_.budget.wall_time == sim::SimTime::zero()) return;
  state.deadline = network_.loop().schedule(
      config_.budget.wall_time,
      [this, target] { abort_session(target, BudgetKind::WallTime); });
}

void ScanEngine::abort_session(net::IPv4Address target, BudgetKind kind) {
  const auto it = sessions_.find(target);
  if (it == sessions_.end()) return;
  network_.loop().cancel(it->second.deadline);
  it->second.deadline = sim::kNullEvent;
  switch (kind) {
    case BudgetKind::WallTime: ++stats_.sessions_killed_wall; break;
    case BudgetKind::RxBytes: ++stats_.sessions_killed_bytes; break;
    case BudgetKind::RxPackets: ++stats_.sessions_killed_packets; break;
  }
  // Give the session a chance to emit a best-effort record; `it` is dead
  // after this call (the session usually finishes itself, mutating the
  // map). Force-finish if it declined, so budget kills can never leak.
  it->second.session->on_budget_exhausted(kind);
  if (sessions_.contains(target)) finish_session(target);
}

void ScanEngine::finish_session(net::IPv4Address target) {
  auto node = sessions_.extract(target);
  if (node.empty()) return;
  network_.loop().cancel(node.mapped().deadline);
  draws_.erase(target);
  // The session is likely on the call stack; free it on the next tick.
  // iwlint: allow(hot-path) -- once-per-session teardown, not per-packet;
  // graveyard capacity is reused across reap ticks
  graveyard_.push_back(std::move(node.mapped().session));
  if (reap_event_ == sim::kNullEvent) {
    reap_event_ = network_.loop().schedule(sim::SimTime::zero(), [this] {
      reap_event_ = sim::kNullEvent;
      graveyard_.clear();
    });
  }
  ++stats_.targets_finished;
  maybe_complete();
}

void ScanEngine::handle_packet(net::PacketView bytes) {
  ++stats_.packets_received;
  const auto datagram = net::decode_datagram(bytes);
  if (!datagram) {
    ++stats_.stray_packets;
    return;
  }
  const net::IPv4Address source = std::visit(
      [](const auto& d) { return d.ip.src; }, *datagram);
  const auto it = sessions_.find(source);
  if (it == sessions_.end()) {
    ++stats_.stray_packets;
    return;
  }
  SessionState& state = it->second;
  state.rx_packets += 1;
  state.rx_bytes += bytes.size();
  if (config_.budget.rx_packets != 0 && state.rx_packets > config_.budget.rx_packets) {
    abort_session(source, BudgetKind::RxPackets);
    return;
  }
  if (config_.budget.rx_bytes != 0 && state.rx_bytes > config_.budget.rx_bytes) {
    abort_session(source, BudgetKind::RxBytes);
    return;
  }
  state.session->on_datagram(*datagram);
}

void ScanEngine::send_packet(net::Bytes bytes) {
  ++stats_.packets_sent;
  network_.send(std::move(bytes));
}

void ScanEngine::send_packet(net::PacketBuf packet) {
  ++stats_.packets_sent;
  network_.send(std::move(packet));
}

ScanEngine::TargetDraws& ScanEngine::target_draws(net::IPv4Address target) {
  auto it = draws_.find(target);
  if (it == draws_.end()) {
    const std::uint64_t key = util::mix64(config_.seed, target.value());
    it = draws_
             .emplace(target, TargetDraws{util::Rng(key),
                                          static_cast<std::uint32_t>(key >> 32)})
             .first;
  }
  return it->second;
}

std::uint16_t ScanEngine::allocate_port(net::IPv4Address target) {
  // Ephemeral range 32768..60999, walked from a per-target start offset.
  constexpr std::uint32_t kRange = 61000 - 32768;
  TargetDraws& draws = target_draws(target);
  const std::uint16_t port =
      static_cast<std::uint16_t>(32768 + draws.port_offset % kRange);
  ++draws.port_offset;
  return port;
}

std::uint64_t ScanEngine::session_seed(net::IPv4Address target) {
  return target_draws(target).rng();
}

}  // namespace iwscan::scan
