#include "scanner/permutation.hpp"

#include <bit>

#include "util/rng.hpp"

namespace iwscan::scan {

RandomPermutation::RandomPermutation(std::uint64_t domain_size, std::uint64_t seed)
    : domain_(domain_size == 0 ? 1 : domain_size) {
  // Smallest even-bit-width power of two ≥ domain, so the Feistel halves
  // are equal and cycle-walking terminates quickly (< 4 walks expected).
  int bits = std::bit_width(domain_ - 1);
  if (bits < 2) bits = 2;
  if (bits % 2 != 0) ++bits;
  half_bits_ = bits / 2;
  half_mask_ = (std::uint64_t{1} << half_bits_) - 1;

  std::uint64_t sm = seed ^ 0xfe157e1fe15737a1ULL;
  for (auto& key : round_keys_) key = util::splitmix64(sm);
}

std::uint64_t RandomPermutation::feistel(std::uint64_t value) const noexcept {
  std::uint64_t left = value >> half_bits_;
  std::uint64_t right = value & half_mask_;
  for (const std::uint64_t key : round_keys_) {
    const std::uint64_t mixed = util::mix64(key, right) & half_mask_;
    const std::uint64_t new_right = left ^ mixed;
    left = right;
    right = new_right;
  }
  return (left << half_bits_) | right;
}

std::uint64_t RandomPermutation::permute(std::uint64_t index) const noexcept {
  // Cycle-walking: re-encrypt until the image lands inside the domain.
  // Terminates because feistel() is a bijection on the covering power of
  // two, so the walk is a permutation cycle that must re-enter the domain.
  std::uint64_t value = feistel(index);
  while (value >= domain_) value = feistel(value);
  return value;
}

}  // namespace iwscan::scan
