// Stock-ZMap-style single-exchange SYN port scan.
//
// Serves two purposes: the reachability pre-scan the paper's numbers are
// based on ("we can successfully exchange data with ≈48.3 M hosts on port
// 80"), and the single-packet baseline against which §3.4 compares the
// multi-packet IW scan's efficiency (bench_s34_scan_rate).
#pragma once

#include <functional>
#include <vector>

#include "netsim/event_loop.hpp"
#include "scanner/scan_engine.hpp"

namespace iwscan::scan {

enum class PortState { Open, Closed, Unresponsive };

struct SynScanResult {
  net::IPv4Address ip;
  PortState state = PortState::Unresponsive;
};

struct SynScanConfig {
  std::uint16_t port = 80;
  sim::SimTime timeout = sim::sec(8);
};

class SynScanModule final : public ProbeModule {
 public:
  using ResultFn = std::function<void(const SynScanResult&)>;

  SynScanModule(SynScanConfig config, ResultFn on_result)
      : config_(config), on_result_(std::move(on_result)) {}

  std::unique_ptr<ProbeSession> create_session(SessionServices& services,
                                               net::IPv4Address target,
                                               std::function<void()> finish) override;

 private:
  SynScanConfig config_;
  ResultFn on_result_;
};

}  // namespace iwscan::scan
