// CDN configuration survey: model the IW configurations the paper found in
// content networks (Cloudflare IW10, Akamai IW4, GoDaddy's static IW48,
// Technicolor-style 4 kB byte IWs) and run the full dual-MSS multi-probe
// methodology against each — including §4.2's byte-limit detection.
//
//   $ ./build/examples/cdn_config_survey
#include <cstdio>

#include "analysis/table_writer.hpp"
#include "core/host_prober.hpp"
#include "httpd/http_server.hpp"
#include "netsim/network.hpp"
#include "tcpstack/host.hpp"
#include "tls/tls_server.hpp"

namespace {

using namespace iwscan;

class DirectServices final : public scan::SessionServices, public sim::Endpoint {
 public:
  explicit DirectServices(sim::Network& network) : network_(network) {
    network_.attach(net::IPv4Address{192, 0, 2, 1}, this);
  }
  ~DirectServices() override { network_.detach(net::IPv4Address{192, 0, 2, 1}); }
  void set_handler(std::function<void(const net::Datagram&)> handler) {
    handler_ = std::move(handler);
  }
  void handle_packet(net::PacketView bytes) override {
    const auto datagram = net::decode_datagram(bytes);
    if (datagram && handler_) handler_(*datagram);
  }
  void send_packet(net::Bytes bytes) override { network_.send(std::move(bytes)); }
  sim::EventLoop& loop() override { return network_.loop(); }
  net::IPv4Address scanner_address() const override {
    return net::IPv4Address{192, 0, 2, 1};
  }
  std::uint16_t allocate_port(net::IPv4Address) override { return port_++; }
  std::uint64_t session_seed(net::IPv4Address) override { return seed_ += 104729; }

 private:
  sim::Network& network_;
  std::function<void(const net::Datagram&)> handler_;
  std::uint16_t port_ = 40000;
  std::uint64_t seed_ = 3;
};

core::HostScanRecord probe(sim::Network& network, net::IPv4Address target,
                           core::ProbeProtocol protocol) {
  DirectServices services(network);
  core::IwScanConfig config;
  config.protocol = protocol;
  config.port = protocol == core::ProbeProtocol::Http ? 80 : 443;

  core::HostScanRecord record;
  bool done = false;
  core::HostProber prober(services, target, config,
                          [&](const core::HostScanRecord& r) { record = r; },
                          [&] { done = true; });
  services.set_handler([&](const net::Datagram& d) { prober.on_datagram(d); });
  prober.start();
  while (!done && network.loop().step()) {
  }
  return record;
}

}  // namespace

int main() {
  sim::EventLoop loop;
  sim::Network network(loop, 7);
  sim::PathConfig path;
  path.latency = sim::msec(15);
  network.set_default_path(path);

  struct Vendor {
    const char* name;
    tcp::IwConfig iw;
    tcp::OsProfile os;
  };
  const Vendor vendors[] = {
      {"cloudflare-style IW10", tcp::IwConfig::segments_of(10), tcp::OsProfile::Linux},
      {"akamai-style IW4", tcp::IwConfig::segments_of(4), tcp::OsProfile::Linux},
      {"akamai-custom IW16", tcp::IwConfig::segments_of(16), tcp::OsProfile::Linux},
      {"akamai-custom IW32", tcp::IwConfig::segments_of(32), tcp::OsProfile::Linux},
      {"godaddy-style IW48", tcp::IwConfig::segments_of(48), tcp::OsProfile::Linux},
      {"legacy IW2", tcp::IwConfig::segments_of(2), tcp::OsProfile::Linux},
      {"IIS on Windows IW10", tcp::IwConfig::segments_of(10), tcp::OsProfile::Windows},
      {"technicolor CPE 4kB", tcp::IwConfig::bytes_of(4096), tcp::OsProfile::Linux},
      {"mtu-fill device 1536B", tcp::IwConfig::bytes_of(1536), tcp::OsProfile::Linux},
  };

  std::vector<std::unique_ptr<tcp::TcpHost>> hosts;
  std::vector<net::IPv4Address> addresses;
  for (std::size_t i = 0; i < std::size(vendors); ++i) {
    const net::IPv4Address ip(10, 0, 1, static_cast<std::uint8_t>(i + 1));
    tcp::StackConfig stack;
    stack.os = vendors[i].os;
    stack.iw = vendors[i].iw;
    auto host = std::make_unique<tcp::TcpHost>(network, ip, stack, i);

    http::WebConfig web;
    web.page_size = 64 * 1024;  // large landing page: IW always fills
    host->listen(80, http::HttpServerApp::factory(web));
    tls::TlsConfig tls_config;
    tls_config.chain_bytes = 40 * 1024;  // generous chain for the big IWs
    tls_config.server_name = vendors[i].name;
    host->listen(443, tls::TlsServerApp::factory(tls_config));
    network.attach(ip, host.get());
    hosts.push_back(std::move(host));
    addresses.push_back(ip);
  }

  std::printf("Dual-MSS (64/128) multi-probe survey of modeled vendor configs\n"
              "(methodology of the IMC'17 IW-scanning paper, incl. §4.2\n"
              " byte-limit detection):\n\n");

  analysis::TextTable table({"vendor config", "HTTP IW@64", "HTTP IW@128",
                             "TLS IW@64", "byte-limited?", "observed MSS"});
  for (std::size_t i = 0; i < std::size(vendors); ++i) {
    const auto http = probe(network, addresses[i], core::ProbeProtocol::Http);
    const auto tls = probe(network, addresses[i], core::ProbeProtocol::Tls);
    table.add_row(
        {vendors[i].name,
         http.success() ? std::to_string(http.iw_segments) : "?",
         http.iw_segments_b ? std::to_string(http.iw_segments_b) : "?",
         tls.success() ? std::to_string(tls.iw_segments) : "?",
         http.byte_limited() ? "YES (IW set in bytes)" : "no",
         std::to_string(http.observed_mss)});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nNote the Windows host: it ignores the scanner's 64 B MSS and\n"
              "sends 536 B segments — the estimator normalizes by the observed\n"
              "segment size (§3.1), so the IW in segments is still exact.\n");
  return 0;
}
