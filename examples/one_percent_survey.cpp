// The "1% is enough" operating mode (§4.1): instead of sweeping the whole
// address space, scan a deterministic 1% sample and compare its IW
// distribution against the full scan. This is the footprint-reducing mode
// the authors run weekly at https://iw.comsys.rwth-aachen.de.
//
//   $ ./build/examples/one_percent_survey [--scale 17] [--fraction 0.01]
#include <cstdio>

#include "analysis/iw_table.hpp"
#include "analysis/scan_runner.hpp"
#include "analysis/table_writer.hpp"
#include "inetmodel/internet.hpp"
#include "util/flags.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace iwscan;

  util::Flags flags;
  flags.define_u64("scale", 16, "log2 of the simulated address space");
  flags.define_double("fraction", 0.01, "sample fraction");
  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.usage(argv[0]).c_str());
    return 0;
  }

  sim::EventLoop loop;
  sim::Network network(loop, 2);
  model::ModelConfig model_config;
  model_config.scale_log2 = static_cast<int>(flags.u64("scale"));
  model::InternetModel internet(network, model_config);
  internet.install();

  analysis::ScanOptions full;
  full.protocol = core::ProbeProtocol::Http;
  const auto full_scan = analysis::run_iw_scan(network, internet, full);

  analysis::ScanOptions sampled = full;
  sampled.sample_fraction = flags.real("fraction");
  const auto sample_scan = analysis::run_iw_scan(network, internet, sampled);

  const auto full_dist = analysis::iw_fractions(full_scan.records);
  const auto sample_dist = analysis::iw_fractions(sample_scan.records);

  std::printf("full scan:   %zu hosts, %llu packets\n", full_scan.records.size(),
              static_cast<unsigned long long>(full_scan.engine.packets_sent));
  std::printf("%.1f%% scan: %zu hosts, %llu packets (%.1fx fewer)\n\n",
              flags.real("fraction") * 100, sample_scan.records.size(),
              static_cast<unsigned long long>(sample_scan.engine.packets_sent),
              static_cast<double>(full_scan.engine.packets_sent) /
                  static_cast<double>(sample_scan.engine.packets_sent));

  analysis::TextTable table({"IW", "full %", "sample %", "delta"});
  for (const auto& [iw, fraction] : full_dist) {
    if (fraction < 0.002) continue;
    const auto it = sample_dist.find(iw);
    const double sampled_fraction = it == sample_dist.end() ? 0.0 : it->second;
    table.add_row({std::to_string(iw), analysis::fmt_double(fraction * 100, 2),
                   analysis::fmt_double(sampled_fraction * 100, 2),
                   analysis::fmt_double((sampled_fraction - fraction) * 100, 2)});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nL1 distance between distributions: %.4f\n",
              analysis::l1_distance(full_dist, sample_dist));
  std::printf("(the paper's claim: a 1%% sample of the real IPv4 space — still\n"
              " ~600k hosts — reproduces the full distribution; at simulation\n"
              " scale the sample is much smaller, so increase --scale to watch\n"
              " the distance shrink)\n");
  return 0;
}
