// Quickstart: stand up a simulated Internet, run an HTTP initial-window
// scan over it, and print the measured IW distribution.
//
//   $ ./build/examples/quickstart
//   $ ./build/examples/quickstart --shards=4    # same output, more cores
//   $ ./build/examples/quickstart --two-phase   # stateless sweep first
//
// Multi-process operator mode (ZMap-style): each process scans a disjoint
// stride of the same permutation and spills its records to disk; iwmerge
// reconstructs the single-process report byte-for-byte:
//
//   $ ./build/examples/quickstart --shard=0/2 --spill-dir=run/p0 &
//   $ ./build/examples/quickstart --shard=1/2 --spill-dir=run/p1 &
//   $ wait && ./build/tools/iwmerge/iwmerge --inputs=run/p0,run/p1
//
// This is the 20-line core of the library: a Network carries packets, an
// InternetModel materializes hosts lazily, and run_iw_scan() drives the
// ZMap-style engine with the paper's estimation methodology (Fig. 1).
#include <cstdio>
#include <string>

#include "analysis/iw_table.hpp"
#include "analysis/scan_runner.hpp"
#include "analysis/spill_report.hpp"
#include "inetmodel/internet.hpp"
#include "util/flags.hpp"
#include "util/strings.hpp"

namespace {

/// Parses "i/N" into (shard, total). Returns false on malformed input.
bool parse_shard_spec(const std::string& text, std::uint64_t& shard,
                      std::uint64_t& total) {
  const auto parts = iwscan::util::split(text, '/');
  if (parts.size() != 2) return false;
  const auto i = iwscan::util::parse_u64(parts[0]);
  const auto n = iwscan::util::parse_u64(parts[1]);
  if (!i.has_value() || !n.has_value() || *n == 0 || *i >= *n) return false;
  shard = *i;
  total = *n;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace iwscan;

  util::Flags flags;
  flags.define_u64("shards", 1,
                   "parallel scan workers (output is identical for any value)");
  flags.define_bool("two-phase", false,
                    "stateless ZBanner-style sweep first; only responsive "
                    "hosts reach the stateful IW estimator");
  flags.define_string("shard", "0/1",
                      "this process's stride of the target permutation, as "
                      "i/N (run one process per stride, then iwmerge)");
  flags.define_u64("seed", 7, "scan seed (all processes of one scan must match)");
  flags.define_string("spill-dir", "",
                      "stream records into columnar spill files under this "
                      "directory instead of RAM (required for --shard i/N>1)");
  flags.define_u64("cdn-fraction", 0,
                   "percent of web hosts in CDN-eligible ASes overlaid as "
                   "modern large-IW edges (paced flights, per-vhost tiers)");
  flags.define_u64("epoch", 0,
                   "longitudinal epoch: advances the deterministic IW/CDN-tier "
                   "drift (0 = the paper's snapshot)");
  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", flags.error().c_str(),
                 flags.usage(argv[0]).c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.usage(argv[0]).c_str());
    return 0;
  }
  std::uint64_t process_shard = 0;
  std::uint64_t process_shards = 1;
  if (!parse_shard_spec(flags.str("shard"), process_shard, process_shards)) {
    std::fprintf(stderr, "quickstart: --shard must be i/N with i < N\n");
    return 2;
  }

  // 1. A virtual-time network and a synthetic Internet of ~2^14 addresses.
  sim::EventLoop loop;
  sim::Network network(loop, /*seed=*/1);
  model::ModelConfig model_config;
  model_config.scale_log2 = 14;
  model_config.cdn_fraction = static_cast<double>(flags.u64("cdn-fraction")) / 100.0;
  model_config.epoch = static_cast<int>(flags.u64("epoch"));
  model::InternetModel internet(network, model_config);
  internet.install();

  // 2. Scan every address for HTTP (port 80) IW estimates: 3 probes per
  //    host at MSS 64, then 3 more at MSS 128 (the paper's §4 setup).
  analysis::ScanOptions options;
  options.protocol = core::ProbeProtocol::Http;
  options.rate_pps = 50'000;
  options.scan_seed = flags.u64("seed");
  options.shards = flags.u64("shards");  // >1: exec:: worker threads
  options.process_shard = process_shard;  // this process's permutation stride
  options.process_shards = process_shards;
  options.spill_dir = flags.str("spill-dir");
  // --two-phase: a stateless SYN sweep (no per-host state, identity in the
  // ISN) covers the space first; the stateful estimator then probes only
  // the responsive sliver. Records are byte-identical to the stateful-
  // everywhere scan restricted to that sliver.
  options.two_phase = flags.boolean("two-phase");
  const auto output = analysis::run_iw_scan(network, internet, options);
  if (options.two_phase) {
    std::printf("phase 1 swept %llu addresses: %llu responsive, %llu with "
                "port 80 closed, %llu banners; %llu promoted to phase 2\n",
                static_cast<unsigned long long>(output.sweep.targets_probed),
                static_cast<unsigned long long>(output.sweep.responsive),
                static_cast<unsigned long long>(output.sweep.closed),
                static_cast<unsigned long long>(output.sweep.banners),
                static_cast<unsigned long long>(output.promoted));
  }

  // Spill mode: records went to disk, not RAM. Read them back through the
  // streaming merge for the same report (or hand the directory to iwmerge
  // together with the other processes' directories).
  if (!options.spill_dir.empty()) {
    analysis::SpillSummary merged;
    std::string error;
    if (!analysis::summarize_spill_files(output.spill_files, merged, error)) {
      std::fprintf(stderr, "quickstart: %s\n", error.c_str());
      return 1;
    }
    std::printf("probed %llu hosts (shard %llu/%llu): %llu reachable, success "
                "%.1f%%, few-data %.1f%%, error %.1f%%\n",
                static_cast<unsigned long long>(merged.records),
                static_cast<unsigned long long>(process_shard),
                static_cast<unsigned long long>(process_shards),
                static_cast<unsigned long long>(merged.summary.reachable),
                merged.summary.success_rate() * 100,
                merged.summary.few_data_rate() * 100,
                merged.summary.error_rate() * 100);
    std::printf("spilled %zu file(s) under %s — merge with iwmerge\n",
                output.spill_files.size(), options.spill_dir.c_str());
    return 0;
  }

  // 3. Aggregate into the Table-1 / Fig.-3 views.
  const auto summary = analysis::summarize(output.records);
  std::printf("probed %zu hosts: %llu reachable, success %.1f%%, few-data "
              "%.1f%%, error %.1f%%\n",
              output.records.size(),
              static_cast<unsigned long long>(summary.reachable),
              summary.success_rate() * 100, summary.few_data_rate() * 100,
              summary.error_rate() * 100);

  std::printf("\nIW distribution (successful estimates):\n");
  for (const auto& [iw, fraction] : analysis::iw_fractions(output.records)) {
    if (fraction < 0.001) continue;
    std::printf("  IW %-3u %6.2f%%  %s\n", iw, fraction * 100,
                std::string(static_cast<std::size_t>(fraction * 120), '#').c_str());
  }

  std::printf("\nscan took %.1f virtual seconds, %llu packets\n",
              std::chrono::duration<double>(output.duration).count(),
              static_cast<unsigned long long>(output.engine.packets_sent));
  return 0;
}
