// Weekly-report mode: run the low-footprint sampled scan pair (HTTP + TLS)
// and emit the self-contained report the paper's authors publish weekly at
// iw.comsys.rwth-aachen.de — here rendered from the simulated Internet.
//
//   $ ./build/examples/weekly_report [--scale 16] [--fraction 0.05] [--markdown]
#include <cstdio>

#include "analysis/report.hpp"
#include "analysis/scan_runner.hpp"
#include "inetmodel/internet.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace iwscan;

  util::Flags flags;
  flags.define_u64("scale", 15, "log2 of the simulated address space");
  flags.define_double("fraction", 0.10, "sample fraction (1.0 = full sweep)");
  flags.define_bool("markdown", false, "emit Markdown instead of plain text");
  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.usage(argv[0]).c_str());
    return 0;
  }

  sim::EventLoop loop;
  sim::Network network(loop, 4);
  model::ModelConfig model_config;
  model_config.scale_log2 = static_cast<int>(flags.u64("scale"));
  model::InternetModel internet(network, model_config);
  internet.install();

  analysis::ScanOptions options;
  options.sample_fraction = flags.real("fraction");
  options.protocol = core::ProbeProtocol::Http;
  const auto http = analysis::run_iw_scan(network, internet, options);
  options.protocol = core::ProbeProtocol::Tls;
  const auto tls = analysis::run_iw_scan(network, internet, options);

  analysis::ScanInputs inputs;
  inputs.http = http.records;
  inputs.tls = tls.records;
  inputs.registry = &internet.registry();
  inputs.rdns = [&internet](net::IPv4Address ip) { return internet.truth(ip).rdns; };
  if (flags.real("fraction") < 1.0) inputs.sample_fraction = flags.real("fraction");

  analysis::ReportOptions report_options;
  report_options.markdown = flags.boolean("markdown");
  report_options.title = "TCP Initial Window scan report (simulated Internet)";
  std::fputs(analysis::render_report(inputs, report_options).c_str(), stdout);
  return 0;
}
