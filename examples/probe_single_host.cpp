// Probe a single, explicitly-configured host and trace the Figure-1
// conversation on the wire: the scan's SYN with its small MSS, the
// server's IW burst, the RTO retransmission that ends it, and the
// ACK-release verification.
//
//   $ ./build/examples/probe_single_host --iw 10 --os windows --page 16000
//
// Useful as an operator tool: configure your server model the way your
// production host is configured and check what a scanner would measure.
#include <cstdio>
#include <fstream>

#include "core/estimator.hpp"
#include "httpd/http_server.hpp"
#include "netsim/capture.hpp"
#include "netsim/network.hpp"
#include "scanner/scan_engine.hpp"
#include "tcpstack/host.hpp"
#include "util/bytes.hpp"
#include "util/flags.hpp"
#include "util/strings.hpp"

namespace {

using namespace iwscan;

/// SessionServices bound directly to the network, with a packet tracer.
class TracingServices final : public scan::SessionServices, public sim::Endpoint {
 public:
  TracingServices(sim::Network& network, net::IPv4Address self)
      : network_(network), self_(self) {
    network_.attach(self_, this);
  }
  ~TracingServices() override { network_.detach(self_); }

  void set_handler(std::function<void(const net::Datagram&)> handler) {
    handler_ = std::move(handler);
  }

  void handle_packet(net::PacketView bytes) override {
    const auto datagram = net::decode_datagram(bytes);
    if (!datagram) return;
    if (const auto* segment = std::get_if<net::TcpSegment>(&*datagram)) {
      trace("<-", *segment);
    }
    if (handler_) handler_(*datagram);
  }

  void send_packet(net::Bytes bytes) override {
    if (const auto datagram = net::decode_datagram(bytes)) {
      if (const auto* segment = std::get_if<net::TcpSegment>(&*datagram)) {
        trace("->", *segment);
      }
    }
    network_.send(std::move(bytes));
  }

  sim::EventLoop& loop() override { return network_.loop(); }
  net::IPv4Address scanner_address() const override { return self_; }
  std::uint16_t allocate_port(net::IPv4Address) override { return port_++; }
  std::uint64_t session_seed(net::IPv4Address) override { return seed_ += 7919; }

 private:
  void trace(const char* direction, const net::TcpSegment& segment) {
    std::string flags;
    if (segment.tcp.has(net::kSyn)) flags += "SYN ";
    if (segment.tcp.has(net::kAck)) flags += "ACK ";
    if (segment.tcp.has(net::kFin)) flags += "FIN ";
    if (segment.tcp.has(net::kRst)) flags += "RST ";
    if (segment.tcp.has(net::kPsh)) flags += "PSH ";
    std::printf("%8.3f ms %s %-18s seq=%-10u ack=%-10u win=%-5u len=%zu",
                std::chrono::duration<double, std::milli>(loop().now()).count(),
                direction, flags.c_str(), segment.tcp.seq, segment.tcp.ack,
                segment.tcp.window, segment.payload.size());
    if (const auto mss = net::find_mss(segment.tcp.options)) {
      std::printf(" mss=%u", *mss);
    }
    std::printf("\n");
  }

  sim::Network& network_;
  net::IPv4Address self_;
  std::function<void(const net::Datagram&)> handler_;
  std::uint16_t port_ = 40000;
  std::uint64_t seed_ = 1;
};

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  flags.define_u64("iw", 10, "initial window of the host under test (segments)");
  flags.define_u64("iw-bytes", 0, "byte-counted IW (overrides --iw when set)");
  flags.define_string("os", "linux", "MSS-clamping profile: linux | windows");
  flags.define_u64("page", 16'000, "response body size in bytes");
  flags.define_u64("mss", 64, "MSS announced by the scanner");
  flags.define_string("pcap", "", "also write the conversation to this .pcap file");
  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", flags.error().c_str(), flags.usage(argv[0]).c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.usage(argv[0]).c_str());
    return 0;
  }

  sim::EventLoop loop;
  sim::Network network(loop, 1);
  sim::PathConfig path;
  path.latency = sim::msec(20);
  network.set_default_path(path);

  sim::PacketCapture capture;
  if (!flags.str("pcap").empty()) capture.attach(network);

  // The host under test.
  tcp::StackConfig stack;
  stack.os = util::iequals(flags.str("os"), "windows") ? tcp::OsProfile::Windows
                                                       : tcp::OsProfile::Linux;
  stack.iw = flags.u64("iw-bytes") > 0
                 ? tcp::IwConfig::bytes_of(static_cast<std::uint32_t>(flags.u64("iw-bytes")))
                 : tcp::IwConfig::segments_of(static_cast<std::uint32_t>(flags.u64("iw")));
  const net::IPv4Address host_ip{10, 0, 0, 1};
  tcp::TcpHost host(network, host_ip, stack, 42);
  http::WebConfig web;
  web.page_size = flags.u64("page");
  host.listen(80, http::HttpServerApp::factory(web));
  network.attach(host_ip, &host);

  // One estimation connection, traced.
  TracingServices services(network, net::IPv4Address{192, 0, 2, 1});
  core::EstimatorConfig config;
  config.announced_mss = static_cast<std::uint16_t>(flags.u64("mss"));

  std::printf("probing 10.0.0.1:80 — announced MSS %u, host IW %s, OS %s\n\n",
              config.announced_mss,
              stack.iw.policy == tcp::IwPolicy::Bytes
                  ? (std::to_string(stack.iw.bytes) + " bytes").c_str()
                  : (std::to_string(stack.iw.segments) + " segments").c_str(),
              flags.str("os").c_str());

  bool done = false;
  core::ConnObservation result;
  core::IwEstimator estimator(
      services, host_ip, 80, config,
      net::to_bytes("GET / HTTP/1.1\r\nHost: 10.0.0.1\r\nConnection: close\r\n\r\n"),
      [&](const core::ConnObservation& observation) {
        result = observation;
        done = true;
      });
  services.set_handler([&](const net::Datagram& d) { estimator.on_datagram(d); });
  estimator.start();
  while (!done && loop.step()) {
  }

  std::printf("\noutcome: %s\n", std::string(to_string(result.outcome)).c_str());
  if (result.outcome == core::ConnOutcome::Success) {
    std::printf("estimated IW: %u segments (%llu bytes, observed MSS %u)\n",
                result.iw_estimate,
                static_cast<unsigned long long>(result.span_bytes),
                result.max_segment);
  } else if (result.outcome == core::ConnOutcome::FewData) {
    std::printf("response ended before the IW filled: lower bound IW >= %u\n",
                result.iw_estimate);
  }

  if (!flags.str("pcap").empty()) {
    const auto pcap = capture.pcap();
    std::ofstream file(flags.str("pcap"), std::ios::binary);
    const std::string_view text = iwscan::util::as_text(pcap);
    file.write(text.data(), static_cast<std::streamsize>(text.size()));
    std::printf("wrote %zu packets to %s (Wireshark-compatible, linktype RAW)\n",
                capture.size(), flags.str("pcap").c_str());
  }
  return 0;
}
