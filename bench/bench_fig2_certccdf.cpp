// Fig. 2 — CCDF of certificate chain lengths (censys-anchored model) with
// the TCP payload coverage lines for several IW/MSS combinations.
#include "bench_common.hpp"

#include "inetmodel/censys_certs.hpp"
#include "util/rng.hpp"

using namespace iwscan;

int main(int argc, char** argv) {
  util::Flags flags;
  bench::define_common_flags(flags);
  flags.define_u64("samples", 500'000, "number of chain lengths to draw");
  bench::parse_or_exit(flags, argc, argv);

  bench::print_header("Fig. 2: certificate chain length CCDF", "Figure 2");

  const std::uint64_t samples = flags.u64("samples");
  util::Rng rng(flags.u64("seed"));
  std::vector<std::size_t> lengths(samples);
  double mean = 0.0;
  std::size_t min_len = SIZE_MAX;
  std::size_t max_len = 0;
  for (auto& length : lengths) {
    length = model::CertChainDistribution::sample(rng);
    mean += static_cast<double>(length);
    min_len = std::min(min_len, length);
    max_len = std::max(max_len, length);
  }
  mean /= static_cast<double>(samples);

  std::printf("samples=%s  mean=%s  min=%s  max=%s\n",
              util::format_count(samples).c_str(),
              util::format_bytes(static_cast<std::uint64_t>(mean)).c_str(),
              util::format_bytes(min_len).c_str(),
              util::format_bytes(max_len).c_str());
  std::printf("(paper/censys: 36.5M hosts, mean 2186 B, min 36 B, max 65 kB)\n\n");

  // Empirical CCDF at 256 B steps up to 8 kB (the figure's x-range).
  std::sort(lengths.begin(), lengths.end());
  const auto ccdf_at = [&](double bytes) {
    const auto it = std::lower_bound(lengths.begin(), lengths.end(),
                                     static_cast<std::size_t>(bytes));
    return static_cast<double>(lengths.end() - it) / static_cast<double>(samples);
  };

  analysis::TextTable table({"bytes", "CCDF(measured)", "CCDF(model)"});
  for (double bytes = 0; bytes <= 8192; bytes += 256) {
    table.add_row({std::to_string(static_cast<int>(bytes)),
                   analysis::fmt_double(ccdf_at(bytes), 4),
                   analysis::fmt_double(model::CertChainDistribution::ccdf(bytes), 4)});
  }
  bench::print_table(table, flags.boolean("csv"));

  // Coverage lines: payload needed to fill IW·MSS bytes, for the announced
  // MSS of 64 B and a typical path MSS of 1336 B (per the paper's figure).
  std::printf("\nIW coverage (share of hosts whose chain fills the IW):\n");
  analysis::TextTable coverage({"MSS", "IW", "IW*MSS bytes", "P(chain >= IW*MSS)"});
  const struct {
    int mss;
    int iws[4];
    int count;
  } lines[] = {{64, {1, 2, 4, 10}, 4}, {1336, {1, 2, 4, 0}, 3}};
  for (const auto& line : lines) {
    for (int i = 0; i < line.count; ++i) {
      const int iw = line.iws[i];
      const double needed = static_cast<double>(line.mss) * iw;
      coverage.add_row({std::to_string(line.mss), std::to_string(iw),
                        std::to_string(static_cast<int>(needed)),
                        util::format_percent(ccdf_at(needed))});
    }
  }
  bench::print_table(coverage, flags.boolean("csv"));
  std::printf("\n(paper: MSS 64 & IW10 → 640 B covered by >86%% of hosts; even a\n"
              " hypothetical IW 34 → 2176 B still reaches 50%%)\n");
  return 0;
}
