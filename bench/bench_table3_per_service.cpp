// Table 3 — per-service IW distribution [%], clustered by IP range
// (content services) or reverse DNS (access networks).
#include "bench_common.hpp"

#include <array>
#include <map>

#include "analysis/iw_table.hpp"
#include "analysis/service_classify.hpp"

using namespace iwscan;

namespace {

struct ServiceStats {
  std::map<std::uint32_t, std::uint64_t> iw_counts;
  std::uint64_t successes = 0;

  [[nodiscard]] double share(std::uint32_t iw) const {
    if (successes == 0) return 0.0;
    const auto it = iw_counts.find(iw);
    return it == iw_counts.end()
               ? 0.0
               : static_cast<double>(it->second) / static_cast<double>(successes);
  }
};

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  bench::define_common_flags(flags);
  bench::parse_or_exit(flags, argc, argv);

  bench::print_header("Table 3: per-service IW distribution", "Table 3");
  auto world = bench::make_world(flags);

  analysis::ServiceClassifier classifier(
      world.internet->registry(),
      [&](net::IPv4Address ip) { return world.internet->truth(ip).rdns; });

  // Paper values: {service → {IW1, IW2, IW4, IW10}} in percent.
  struct PaperRow {
    analysis::ServiceClass service;
    std::array<double, 4> http;
    std::array<double, 4> tls;
  };
  const PaperRow paper_rows[] = {
      {analysis::ServiceClass::Akamai, {-1, -1, -1, -1}, {0.0, 0.0, 100.0, 0.0}},
      {analysis::ServiceClass::Ec2, {0.0, 1.8, 3.4, 94.7}, {0.2, 1.3, 2.6, 95.8}},
      {analysis::ServiceClass::Cloudflare, {0.0, 0.0, 0.0, 100.0},
       {0.0, 0.0, 0.0, 100.0}},
      {analysis::ServiceClass::Azure, {0.0, 7.8, 54.9, 37.1}, {0.1, 4.1, 73.3, 21.9}},
      {analysis::ServiceClass::AccessNetwork, {3.5, 50.2, 20.8, 21.7},
       {4.5, 17.6, 67.1, 10.4}},
  };
  const std::uint32_t iws[] = {1, 2, 4, 10};

  for (const auto protocol : {core::ProbeProtocol::Http, core::ProbeProtocol::Tls}) {
    const bool is_http = protocol == core::ProbeProtocol::Http;
    const auto output = analysis::run_iw_scan(*world.network, *world.internet,
                                              bench::scan_options(flags, protocol));

    std::map<analysis::ServiceClass, ServiceStats> stats;
    for (const auto& record : output.records) {
      if (record.outcome != core::HostOutcome::Success) continue;
      const auto service = classifier.classify(record.ip);
      auto& entry = stats[service];
      ++entry.iw_counts[record.iw_segments];
      ++entry.successes;
    }

    std::printf("--- %s ---\n", is_http ? "HTTP" : "TLS");
    analysis::TextTable table({"Service", "IW1", "IW2", "IW4", "IW10",
                               "paper:IW1", "paper:IW2", "paper:IW4", "paper:IW10",
                               "n"});
    for (const PaperRow& row : paper_rows) {
      const auto& paper = is_http ? row.http : row.tls;
      const auto it = stats.find(row.service);
      std::vector<std::string> cells;
      cells.emplace_back(to_string(row.service));
      for (const std::uint32_t iw : iws) {
        cells.push_back(it == stats.end() || it->second.successes == 0
                            ? "-"
                            : analysis::fmt_double(it->second.share(iw) * 100.0));
      }
      for (const double value : paper) {
        cells.push_back(value < 0 ? "-" : analysis::fmt_double(value));
      }
      cells.push_back(it == stats.end()
                          ? "0"
                          : util::format_count(it->second.successes));
      table.add_row(std::move(cells));
    }
    bench::print_table(table, flags.boolean("csv"));
    std::printf("\n");
  }
  std::printf("Akamai HTTP shows '-' in the paper: its error pages stopped echoing\n"
              "the URI during the study, so HTTP estimates never succeed there.\n");
  return 0;
}
