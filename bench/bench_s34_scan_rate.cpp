// §3.4 — scan efficiency: the multi-packet IW scan vs. an unmodified
// single-exchange SYN port scan. The paper: at a budget of 150k
// transmitted packets/s, a whole-IPv4 HTTP IW scan takes 7.5 h where the
// stock port scan takes 6.8 h — full TCP conversations cost only ~10%
// extra because the overwhelming majority of addresses never answer the
// SYN, and only responders trigger the multi-packet exchange.
//
// ZMap's rate limit governs *transmitted packets*, so the whole-IPv4
// projection here is packets-based: we measure packets-per-responder in
// the simulation and combine it with the paper's real-world responder
// density (48.3 M of ~3.7 B probed addresses ≈ 1.3%).
// This binary's one allocation-counting TU (see util/alloc_stats.hpp):
// the stateless-sweep section reports an allocs_per_packet counter.
#define IWSCAN_COUNT_ALLOCATIONS
#include "util/alloc_stats.hpp"

#include "bench_common.hpp"

#include <charconv>
#include <thread>
#include <vector>

#include "analysis/iw_table.hpp"
#include "scanner/stateless.hpp"
#include "scanner/syn_scan.hpp"
#include "scanner/syncookie.hpp"
#include "util/stopwatch.hpp"

using namespace iwscan;

namespace {

struct SynOutcome {
  std::uint64_t open = 0;
  std::uint64_t closed = 0;
  std::uint64_t unresponsive = 0;
  scan::EngineStats stats;
  sim::SimTime duration{};
};

SynOutcome run_syn_scan(sim::Network& network, model::InternetModel& internet,
                        const util::Flags& flags) {
  SynOutcome outcome;
  scan::SynScanConfig config;
  config.port = 80;
  scan::SynScanModule module(config, [&](const scan::SynScanResult& result) {
    switch (result.state) {
      case scan::PortState::Open: ++outcome.open; break;
      case scan::PortState::Closed: ++outcome.closed; break;
      case scan::PortState::Unresponsive: ++outcome.unresponsive; break;
    }
  });
  scan::TargetGenerator targets(internet.registry().scan_space(), {},
                                flags.u64("scan-seed"));
  scan::EngineConfig engine_config;
  engine_config.scanner_address = net::IPv4Address{192, 0, 2, 1};
  engine_config.rate_pps = flags.real("rate");
  engine_config.seed = flags.u64("scan-seed");
  engine_config.max_outstanding = 2'000'000;

  scan::ScanEngine engine(network, engine_config, std::move(targets), module);
  const sim::SimTime started = network.loop().now();
  engine.start();
  while (!engine.done() && network.loop().step()) {
  }
  outcome.duration = network.loop().now() - started;
  outcome.stats = engine.stats();
  return outcome;
}

std::vector<std::uint64_t> parse_shard_list(std::string_view text) {
  std::vector<std::uint64_t> counts;
  while (!text.empty()) {
    const std::size_t comma = text.find(',');
    const std::string_view field = text.substr(0, comma);
    std::uint64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(field.data(), field.data() + field.size(), value);
    if (ec == std::errc{} && ptr == field.data() + field.size() && value > 0) {
      counts.push_back(value);
    } else {
      std::fprintf(stderr, "bad --shard-list entry: '%.*s'\n",
                   static_cast<int>(field.size()), field.data());
      std::exit(2);
    }
    text = comma == std::string_view::npos ? std::string_view{}
                                           : text.substr(comma + 1);
  }
  return counts;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  bench::define_common_flags(flags);
  flags.define_double("real-responder-share", 0.013,
                      "responding-address share of the real IPv4 space "
                      "(paper: 48.3M/3.7B)");
  flags.define_string("json", "",
                      "write machine-readable results (wall clock, packet "
                      "rates, shard sweep) to this path");
  flags.define_string("shard-list", "",
                      "comma-separated shard counts for the wall-clock sweep "
                      "(default: 1,<hardware threads or --shards>)");
  bench::parse_or_exit(flags, argc, argv);

  bench::print_header("§3.4: IW scan vs. stock SYN scan efficiency", "Section 3.4");
  auto world = bench::make_world(flags);

  util::Stopwatch syn_watch;
  const auto syn = run_syn_scan(*world.network, *world.internet, flags);
  const double syn_wall_seconds = syn_watch.elapsed_seconds();

  // The whole-IPv4 sweep the paper times is a single estimation pass (the
  // repeat probes rescan only the responsive sliver of the space).
  analysis::ScanOptions iw_options =
      bench::scan_options(flags, core::ProbeProtocol::Http);
  iw_options.probe.probes_per_mss = 1;
  iw_options.probe.mss_secondary = 0;
  iw_options.max_outstanding = 2'000'000;
  util::Stopwatch iw_watch;
  const auto iw = analysis::run_iw_scan(*world.network, *world.internet, iw_options);
  const double iw_wall_seconds = iw_watch.elapsed_seconds();
  const auto iw_summary = analysis::summarize(iw.records);

  const double rate = flags.real("rate");
  const double real_share = flags.real("real-responder-share");
  const double addresses = 3.7e9;

  // Simulated packets-per-responder beyond the universal 1 SYN/address.
  const auto extra_per_responder = [&](std::uint64_t packets,
                                       std::uint64_t targets,
                                       std::uint64_t responders) {
    return responders == 0 ? 0.0
                           : (static_cast<double>(packets) -
                              static_cast<double>(targets)) /
                                 static_cast<double>(responders);
  };
  const double syn_extra = extra_per_responder(
      syn.stats.packets_sent, syn.stats.targets_started, syn.open + syn.closed);
  const double iw_extra = extra_per_responder(
      iw.engine.packets_sent, iw.engine.targets_started, iw_summary.reachable);

  const auto full_hours = [&](double extra) {
    const double packets = addresses * (1.0 + real_share * extra);
    return packets / rate / 3600.0;
  };
  const double syn_hours = full_hours(syn_extra);
  const double iw_hours = full_hours(iw_extra);

  analysis::TextTable table({"Scan", "targets", "packets tx", "tx/responder",
                             "whole-IPv4 @rate", "paper"});
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f h", syn_hours);
  table.add_row({"SYN port scan (stock ZMap)",
                 util::format_count(syn.stats.targets_started),
                 util::format_count(syn.stats.packets_sent),
                 analysis::fmt_double(1.0 + syn_extra, 1), buf, "6.8 h"});
  std::snprintf(buf, sizeof(buf), "%.1f h", iw_hours);
  table.add_row({"HTTP IW scan (this work)",
                 util::format_count(iw.engine.targets_started),
                 util::format_count(iw.engine.packets_sent),
                 analysis::fmt_double(1.0 + iw_extra, 1), buf, "7.5 h"});
  bench::print_table(table, flags.boolean("csv"));

  std::printf("\nIW/SYN duration ratio: %.2fx (paper: 7.5/6.8 = 1.10x)\n",
              iw_hours / syn_hours);
  std::printf("sim responder density: %s (real IPv4: ~1.3%%)\n",
              util::format_percent(static_cast<double>(iw_summary.reachable) /
                                   static_cast<double>(iw.engine.targets_started))
                  .c_str());
  std::printf("SYN scan: %s open, %s closed, %s unresponsive\n",
              util::format_count(syn.open).c_str(),
              util::format_count(syn.closed).c_str(),
              util::format_count(syn.unresponsive).c_str());
  std::printf("\nThe multi-packet design (per-connection state in the probe\n"
              "module) costs ~%.0f extra packets per *responding* host, which\n"
              "at real-world density is only ~%.0f%% more transmitted packets\n"
              "than the single-packet port scan.\n",
              iw_extra, (iw_hours / syn_hours - 1.0) * 100.0);

  // Wall-clock speedup of the parallel executor: the identical IW sweep on
  // fresh identically-seeded worlds, shards=1 vs one shard per hardware
  // thread (or an explicit --shards override). The merged records are
  // byte-identical; only wall time differs.
  const std::uint64_t hw_shards =
      flags.u64("shards") > 1
          ? flags.u64("shards")
          : std::max<std::uint64_t>(1, std::thread::hardware_concurrency());
  std::vector<std::uint64_t> shard_counts = {1, hw_shards};
  if (!flags.str("shard-list").empty()) {
    shard_counts = parse_shard_list(flags.str("shard-list"));
  }

  struct Sweep {
    std::uint64_t shards = 0;
    std::size_t records = 0;
    double seconds = 0.0;
  };
  std::vector<Sweep> sweeps;
  for (const std::uint64_t shards : shard_counts) {
    auto fresh = bench::make_world(flags);
    analysis::ScanOptions options = iw_options;
    options.shards = shards;
    util::Stopwatch watch;
    const auto output =
        analysis::run_iw_scan(*fresh.network, *fresh.internet, options);
    sweeps.push_back(Sweep{shards, output.records.size(), watch.elapsed_seconds()});
  }

  std::printf("\n");
  analysis::TextTable wall({"Executor", "shards", "records", "wall time"});
  for (const Sweep& sweep : sweeps) {
    std::snprintf(buf, sizeof(buf), "%.2f s", sweep.seconds);
    wall.add_row({sweep.shards == 1 ? "single-loop" : "parallel (exec)",
                  std::to_string(sweep.shards), util::format_count(sweep.records),
                  buf});
  }
  bench::print_table(wall, flags.boolean("csv"));
  const Sweep& first = sweeps.front();
  const Sweep& last = sweeps.back();
  std::printf("parallel speedup: %.2fx at %llu shards "
              "(%zu == %zu records, byte-identical merge)\n",
              last.seconds > 0 ? first.seconds / last.seconds : 0.0,
              static_cast<unsigned long long>(last.shards), first.records,
              last.records);

  // Stateless fast-path tier (phase 1 of the two-phase scan): one SYN per
  // address, identity in the ISN, replies answered from patched templates.
  // Throughput is measured over the same lazily-materialized world the
  // stateful scans above ran on, so the rates are directly comparable.
  struct SweepOutcome {
    scan::SweepStats stats;
    std::uint64_t events = 0;
    double seconds = 0.0;
  } sweep_outcome;
  {
    auto fresh = bench::make_world(flags);
    scan::SweepConfig config;
    config.seed = flags.u64("scan-seed");
    scan::StatelessSweep sweep(
        *fresh.network, config,
        scan::TargetGenerator(fresh.internet->registry().scan_space(), {},
                              config.seed),
        [&](const scan::SweepEvent&) { ++sweep_outcome.events; });
    util::Stopwatch watch;
    sweep.start();
    while (!sweep.done() && fresh.loop.step()) {
    }
    sweep_outcome.seconds = watch.elapsed_seconds();
    sweep_outcome.stats = sweep.stats();
  }
  const auto wall_rate = [](std::uint64_t items, double seconds) {
    return seconds > 0 ? static_cast<double>(items) / seconds : 0.0;
  };
  const double sweep_rate =
      wall_rate(sweep_outcome.stats.targets_probed, sweep_outcome.seconds);
  const double iw_rate = wall_rate(iw.engine.targets_started, iw_wall_seconds);

  // Hot-path allocation audit, isolated from the world model (which
  // legitimately allocates when it materializes hosts): a dark sweep
  // primes templates and pools, then pre-encoded SYN-ACK and first-flight
  // data segments are fed straight into handle_packet. After warm-up the
  // transmit (template patch + pool) and receive (parse + cookie + answer)
  // paths must both run allocation-free.
  double sweep_allocs_per_packet = 0.0;
  {
    sim::EventLoop loop;
    sim::Network network(loop, 9);
    scan::SweepConfig config;
    config.seed = 11;
    config.cooldown = sim::msec(1);
    const net::Cidr space = *net::Cidr::parse("10.50.0.0/24");
    std::uint64_t events = 0;
    scan::StatelessSweep sweep(network, config,
                               scan::TargetGenerator({space}, {}, config.seed),
                               [&](const scan::SweepEvent&) { ++events; });
    sweep.start();
    while (!sweep.done() && loop.step()) {
    }
    scan::SynCookieCodec codec(config.seed);
    scan::TargetGenerator replay({space}, {}, config.seed);
    std::vector<net::Bytes> replies;
    while (const auto addr = replay.next()) {
      scan::CookieIdentity identity;
      identity.index = replay.last_cycle_index();
      const std::uint32_t cookie = codec.pack(identity, *addr);
      net::TcpSegment reply;
      reply.ip.src = *addr;
      reply.ip.dst = config.scanner_address;
      reply.tcp.src_port = config.target_port;
      reply.tcp.dst_port = config.source_port;
      reply.tcp.seq = 0x1000 + static_cast<std::uint32_t>(identity.index);
      reply.tcp.ack = cookie + 1;
      reply.tcp.flags = net::kSyn | net::kAck;
      reply.tcp.window = 65535;
      replies.push_back(net::encode(reply));
      reply.tcp.flags = net::kAck | net::kPsh;
      reply.tcp.ack =
          cookie + 1 + static_cast<std::uint32_t>(config.request.size());
      reply.payload = net::to_bytes("HTTP/1.1 200 OK\r\n");
      replies.push_back(net::encode(reply));
    }
    const auto feed = [&] {
      for (const net::Bytes& packet : replies) {
        sweep.handle_packet(net::PacketView(packet.data(), packet.size()));
      }
      while (loop.step()) {  // drain the answered ACKs/RSTs (unroutable)
      }
    };
    // Warm-up: grows pools, the event-loop slab, and — because each round
    // lands its delivery burst in a different timer-wheel bucket — every
    // bucket's recycled vector capacity (one wheel revolution is 64
    // buckets; 200 rounds covers all of them with margin).
    for (int round = 0; round < 200; ++round) feed();
    const std::uint64_t before = util::alloc_stats::allocations();
    constexpr int kRounds = 50;
    for (int round = 0; round < kRounds; ++round) feed();
    const std::uint64_t delta = util::alloc_stats::allocations() - before;
    sweep_allocs_per_packet = static_cast<double>(delta) /
                              static_cast<double>(kRounds * replies.size());
  }

  std::printf("\n");
  analysis::TextTable tiers({"Tier", "targets", "packets tx", "wall time",
                             "targets/s (wall)"});
  std::snprintf(buf, sizeof(buf), "%.2f s", iw_wall_seconds);
  char rate_buf[64];
  std::snprintf(rate_buf, sizeof(rate_buf), "%.0f", iw_rate);
  tiers.add_row({"stateful IW estimator",
                 util::format_count(iw.engine.targets_started),
                 util::format_count(iw.engine.packets_sent), buf, rate_buf});
  std::snprintf(buf, sizeof(buf), "%.2f s", sweep_outcome.seconds);
  std::snprintf(rate_buf, sizeof(rate_buf), "%.0f", sweep_rate);
  tiers.add_row({"stateless sweep (phase 1)",
                 util::format_count(sweep_outcome.stats.targets_probed),
                 util::format_count(sweep_outcome.stats.packets_sent), buf,
                 rate_buf});
  bench::print_table(tiers, flags.boolean("csv"));
  std::printf("stateless/stateful rate ratio: %.1fx (two-phase design target: "
              ">=3x)\nsweep hot-path allocations/packet: %.4f (target: ~0)\n",
              iw_rate > 0 ? sweep_rate / iw_rate : 0.0,
              sweep_allocs_per_packet);

  if (!flags.str("json").empty()) {
    std::FILE* out = std::fopen(flags.str("json").c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   flags.str("json").c_str());
      return 1;
    }
    const auto pps = [](std::uint64_t packets, double seconds) {
      return seconds > 0 ? static_cast<double>(packets) / seconds : 0.0;
    };
    std::fprintf(out, "{\n  \"bench\": \"bench_s34_scan_rate\",\n");
    std::fprintf(out,
                 "  \"config\": {\"scale_log2\": %llu, \"rate_pps\": %.0f, "
                 "\"seed\": %llu, \"scan_seed\": %llu},\n",
                 static_cast<unsigned long long>(flags.u64("scale")),
                 flags.real("rate"),
                 static_cast<unsigned long long>(flags.u64("seed")),
                 static_cast<unsigned long long>(flags.u64("scan-seed")));
    std::fprintf(out,
                 "  \"syn_scan\": {\"targets\": %llu, \"packets_sent\": %llu, "
                 "\"wall_seconds\": %.6f, \"packets_per_second\": %.1f},\n",
                 static_cast<unsigned long long>(syn.stats.targets_started),
                 static_cast<unsigned long long>(syn.stats.packets_sent),
                 syn_wall_seconds, pps(syn.stats.packets_sent, syn_wall_seconds));
    std::fprintf(out,
                 "  \"iw_scan\": {\"targets\": %llu, \"packets_sent\": %llu, "
                 "\"records\": %zu, \"wall_seconds\": %.6f, "
                 "\"packets_per_second\": %.1f},\n",
                 static_cast<unsigned long long>(iw.engine.targets_started),
                 static_cast<unsigned long long>(iw.engine.packets_sent),
                 iw.records.size(), iw_wall_seconds,
                 pps(iw.engine.packets_sent, iw_wall_seconds));
    std::fprintf(out, "  \"sweeps\": [\n");
    for (std::size_t i = 0; i < sweeps.size(); ++i) {
      const Sweep& sweep = sweeps[i];
      std::fprintf(out,
                   "    {\"shards\": %llu, \"records\": %zu, \"wall_seconds\": "
                   "%.6f, \"records_per_second\": %.1f}%s\n",
                   static_cast<unsigned long long>(sweep.shards), sweep.records,
                   sweep.seconds,
                   sweep.seconds > 0
                       ? static_cast<double>(sweep.records) / sweep.seconds
                       : 0.0,
                   i + 1 < sweeps.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n");
    std::fprintf(out,
                 "  \"stateless_sweep\": {\"targets\": %llu, \"packets_sent\": "
                 "%llu, \"responsive\": %llu, \"banners\": %llu, "
                 "\"wall_seconds\": %.6f},\n",
                 static_cast<unsigned long long>(sweep_outcome.stats.targets_probed),
                 static_cast<unsigned long long>(sweep_outcome.stats.packets_sent),
                 static_cast<unsigned long long>(sweep_outcome.stats.responsive),
                 static_cast<unsigned long long>(sweep_outcome.stats.banners),
                 sweep_outcome.seconds);
    // The regression-checker contract (tools/perf/check_bench_regression.py):
    // rate floors and allocation ceilings, keyed by name.
    std::fprintf(out, "  \"benchmarks\": [\n");
    std::fprintf(out,
                 "    {\"name\": \"stateless_sweep_rate\", "
                 "\"items_per_second\": %.1f, \"allocs_per_packet\": %.6f},\n",
                 sweep_rate, sweep_allocs_per_packet);
    std::fprintf(out,
                 "    {\"name\": \"stateful_iw_scan_rate\", "
                 "\"items_per_second\": %.1f}\n",
                 iw_rate);
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
  }
  return 0;
}
