// §3.4 — scan efficiency: the multi-packet IW scan vs. an unmodified
// single-exchange SYN port scan. The paper: at a budget of 150k
// transmitted packets/s, a whole-IPv4 HTTP IW scan takes 7.5 h where the
// stock port scan takes 6.8 h — full TCP conversations cost only ~10%
// extra because the overwhelming majority of addresses never answer the
// SYN, and only responders trigger the multi-packet exchange.
//
// ZMap's rate limit governs *transmitted packets*, so the whole-IPv4
// projection here is packets-based: we measure packets-per-responder in
// the simulation and combine it with the paper's real-world responder
// density (48.3 M of ~3.7 B probed addresses ≈ 1.3%).
#include "bench_common.hpp"

#include <thread>

#include "analysis/iw_table.hpp"
#include "scanner/syn_scan.hpp"
#include "util/stopwatch.hpp"

using namespace iwscan;

namespace {

struct SynOutcome {
  std::uint64_t open = 0;
  std::uint64_t closed = 0;
  std::uint64_t unresponsive = 0;
  scan::EngineStats stats;
  sim::SimTime duration{};
};

SynOutcome run_syn_scan(sim::Network& network, model::InternetModel& internet,
                        const util::Flags& flags) {
  SynOutcome outcome;
  scan::SynScanConfig config;
  config.port = 80;
  scan::SynScanModule module(config, [&](const scan::SynScanResult& result) {
    switch (result.state) {
      case scan::PortState::Open: ++outcome.open; break;
      case scan::PortState::Closed: ++outcome.closed; break;
      case scan::PortState::Unresponsive: ++outcome.unresponsive; break;
    }
  });
  scan::TargetGenerator targets(internet.registry().scan_space(), {},
                                flags.u64("scan-seed"));
  scan::EngineConfig engine_config;
  engine_config.scanner_address = net::IPv4Address{192, 0, 2, 1};
  engine_config.rate_pps = flags.real("rate");
  engine_config.seed = flags.u64("scan-seed");
  engine_config.max_outstanding = 2'000'000;

  scan::ScanEngine engine(network, engine_config, std::move(targets), module);
  const sim::SimTime started = network.loop().now();
  engine.start();
  while (!engine.done() && network.loop().step()) {
  }
  outcome.duration = network.loop().now() - started;
  outcome.stats = engine.stats();
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  bench::define_common_flags(flags);
  flags.define_double("real-responder-share", 0.013,
                      "responding-address share of the real IPv4 space "
                      "(paper: 48.3M/3.7B)");
  bench::parse_or_exit(flags, argc, argv);

  bench::print_header("§3.4: IW scan vs. stock SYN scan efficiency", "Section 3.4");
  auto world = bench::make_world(flags);

  const auto syn = run_syn_scan(*world.network, *world.internet, flags);

  // The whole-IPv4 sweep the paper times is a single estimation pass (the
  // repeat probes rescan only the responsive sliver of the space).
  analysis::ScanOptions iw_options =
      bench::scan_options(flags, core::ProbeProtocol::Http);
  iw_options.probe.probes_per_mss = 1;
  iw_options.probe.mss_secondary = 0;
  iw_options.max_outstanding = 2'000'000;
  const auto iw = analysis::run_iw_scan(*world.network, *world.internet, iw_options);
  const auto iw_summary = analysis::summarize(iw.records);

  const double rate = flags.real("rate");
  const double real_share = flags.real("real-responder-share");
  const double addresses = 3.7e9;

  // Simulated packets-per-responder beyond the universal 1 SYN/address.
  const auto extra_per_responder = [&](std::uint64_t packets,
                                       std::uint64_t targets,
                                       std::uint64_t responders) {
    return responders == 0 ? 0.0
                           : (static_cast<double>(packets) -
                              static_cast<double>(targets)) /
                                 static_cast<double>(responders);
  };
  const double syn_extra = extra_per_responder(
      syn.stats.packets_sent, syn.stats.targets_started, syn.open + syn.closed);
  const double iw_extra = extra_per_responder(
      iw.engine.packets_sent, iw.engine.targets_started, iw_summary.reachable);

  const auto full_hours = [&](double extra) {
    const double packets = addresses * (1.0 + real_share * extra);
    return packets / rate / 3600.0;
  };
  const double syn_hours = full_hours(syn_extra);
  const double iw_hours = full_hours(iw_extra);

  analysis::TextTable table({"Scan", "targets", "packets tx", "tx/responder",
                             "whole-IPv4 @rate", "paper"});
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f h", syn_hours);
  table.add_row({"SYN port scan (stock ZMap)",
                 util::format_count(syn.stats.targets_started),
                 util::format_count(syn.stats.packets_sent),
                 analysis::fmt_double(1.0 + syn_extra, 1), buf, "6.8 h"});
  std::snprintf(buf, sizeof(buf), "%.1f h", iw_hours);
  table.add_row({"HTTP IW scan (this work)",
                 util::format_count(iw.engine.targets_started),
                 util::format_count(iw.engine.packets_sent),
                 analysis::fmt_double(1.0 + iw_extra, 1), buf, "7.5 h"});
  bench::print_table(table, flags.boolean("csv"));

  std::printf("\nIW/SYN duration ratio: %.2fx (paper: 7.5/6.8 = 1.10x)\n",
              iw_hours / syn_hours);
  std::printf("sim responder density: %s (real IPv4: ~1.3%%)\n",
              util::format_percent(static_cast<double>(iw_summary.reachable) /
                                   static_cast<double>(iw.engine.targets_started))
                  .c_str());
  std::printf("SYN scan: %s open, %s closed, %s unresponsive\n",
              util::format_count(syn.open).c_str(),
              util::format_count(syn.closed).c_str(),
              util::format_count(syn.unresponsive).c_str());
  std::printf("\nThe multi-packet design (per-connection state in the probe\n"
              "module) costs ~%.0f extra packets per *responding* host, which\n"
              "at real-world density is only ~%.0f%% more transmitted packets\n"
              "than the single-packet port scan.\n",
              iw_extra, (iw_hours / syn_hours - 1.0) * 100.0);

  // Wall-clock speedup of the parallel executor: the identical IW sweep on
  // fresh identically-seeded worlds, shards=1 vs one shard per hardware
  // thread (or an explicit --shards override). The merged records are
  // byte-identical; only wall time differs.
  const std::uint64_t hw_shards =
      flags.u64("shards") > 1
          ? flags.u64("shards")
          : std::max<std::uint64_t>(1, std::thread::hardware_concurrency());
  const auto timed_sweep = [&](std::uint64_t shards, std::size_t& records_out) {
    auto fresh = bench::make_world(flags);
    analysis::ScanOptions options = iw_options;
    options.shards = shards;
    util::Stopwatch watch;
    const auto output =
        analysis::run_iw_scan(*fresh.network, *fresh.internet, options);
    records_out = output.records.size();
    return watch.elapsed_seconds();
  };
  std::size_t single_records = 0;
  std::size_t multi_records = 0;
  const double single_seconds = timed_sweep(1, single_records);
  const double multi_seconds = timed_sweep(hw_shards, multi_records);

  std::printf("\n");
  analysis::TextTable wall({"Executor", "shards", "records", "wall time"});
  std::snprintf(buf, sizeof(buf), "%.2f s", single_seconds);
  wall.add_row({"single-loop", "1", util::format_count(single_records), buf});
  std::snprintf(buf, sizeof(buf), "%.2f s", multi_seconds);
  wall.add_row({"parallel (exec)", std::to_string(hw_shards),
                util::format_count(multi_records), buf});
  bench::print_table(wall, flags.boolean("csv"));
  std::printf("parallel speedup: %.2fx at %llu shards "
              "(%zu == %zu records, byte-identical merge)\n",
              multi_seconds > 0 ? single_seconds / multi_seconds : 0.0,
              static_cast<unsigned long long>(hw_shards), single_records,
              multi_records);
  return 0;
}
