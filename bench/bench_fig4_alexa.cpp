// Fig. 4 — IW distribution of the popular-host ("Alexa 1M") population for
// HTTP and TLS (log-scale counts in the paper; we print counts + shares),
// plus the success rates quoted in §4.1 (80% HTTP / 85% TLS).
#include "bench_common.hpp"

#include <set>

#include "analysis/iw_table.hpp"

using namespace iwscan;

int main(int argc, char** argv) {
  util::Flags flags;
  bench::define_common_flags(flags);
  bench::parse_or_exit(flags, argc, argv);

  bench::print_header("Fig. 4: Alexa-style popular-host IW distribution", "Figure 4");
  auto world = bench::make_world(flags);

  std::map<std::string, std::map<std::uint32_t, std::uint64_t>> histograms;
  std::set<std::uint32_t> iw_axis;

  for (const auto protocol : {core::ProbeProtocol::Http, core::ProbeProtocol::Tls}) {
    const bool is_http = protocol == core::ProbeProtocol::Http;
    analysis::ScanOptions options = bench::scan_options(flags, protocol);
    options.popular_space = true;
    const auto output =
        analysis::run_iw_scan(*world.network, *world.internet, options);
    const auto summary = analysis::summarize(output.records);
    const auto histogram = analysis::iw_histogram(output.records);
    std::printf("%s: reachable %s, success rate %s (paper: %s)\n",
                is_http ? "HTTP" : "TLS",
                util::format_count(summary.reachable).c_str(),
                util::format_percent(summary.success_rate()).c_str(),
                is_http ? "80%" : "85%");
    for (const auto& [iw, count] : histogram) iw_axis.insert(iw);
    histograms[is_http ? "HTTP" : "TLS"] = histogram;
  }

  std::printf("\nIW histogram (threshold: >= 3 hosts; the paper uses >= 100 at\n"
              "full Alexa-1M scale):\n");
  analysis::TextTable table({"IW", "HTTP #IPs", "HTTP %", "TLS #IPs", "TLS %"});
  std::map<std::string, std::uint64_t> totals;
  for (const auto& [tag, histogram] : histograms) {
    for (const auto& [iw, count] : histogram) totals[tag] += count;
  }
  for (const std::uint32_t iw : iw_axis) {
    const auto http_it = histograms["HTTP"].find(iw);
    const auto tls_it = histograms["TLS"].find(iw);
    const std::uint64_t http_count =
        http_it == histograms["HTTP"].end() ? 0 : http_it->second;
    const std::uint64_t tls_count =
        tls_it == histograms["TLS"].end() ? 0 : tls_it->second;
    if (http_count < 3 && tls_count < 3) continue;
    table.add_row(
        {std::to_string(iw), util::format_count(http_count),
         totals["HTTP"]
             ? util::format_percent(static_cast<double>(http_count) /
                                    static_cast<double>(totals["HTTP"]))
             : "-",
         util::format_count(tls_count),
         totals["TLS"] ? util::format_percent(static_cast<double>(tls_count) /
                                              static_cast<double>(totals["TLS"]))
                       : "-"});
  }
  bench::print_table(table, flags.boolean("csv"));
  std::printf("\n(paper: IW10 dominates popular hosts with >85%% HTTP / 80%% TLS,\n"
              " vs. the much lower IW10 share in the whole IPv4 space — Fig. 3)\n");
  return 0;
}
