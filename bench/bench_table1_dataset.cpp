// Table 1 — scan dataset overview: reachable hosts and the Success /
// Few Data / Error split for HTTP and TLS, probed with MSS 64.
#include "bench_common.hpp"

#include <map>
#include <set>

#include "analysis/iw_table.hpp"

using namespace iwscan;

int main(int argc, char** argv) {
  util::Flags flags;
  bench::define_common_flags(flags);
  bench::parse_or_exit(flags, argc, argv);

  bench::print_header("Table 1: scan data set overview", "Table 1");
  auto world = bench::make_world(flags);

  struct Row {
    const char* name;
    core::ProbeProtocol protocol;
    // Paper-reported reference values.
    double paper_success, paper_few, paper_error;
  };
  const Row rows[] = {
      {"HTTP", core::ProbeProtocol::Http, 0.508, 0.476, 0.016},
      {"TLS", core::ProbeProtocol::Tls, 0.856, 0.133, 0.011},
  };

  analysis::TextTable table({"Scan", "Reachable", "Success", "Few Data", "Error",
                             "paper:Success", "paper:FewData", "paper:Error"});
  std::uint64_t total_packets = 0;

  std::vector<core::HostScanRecord> http_records;
  std::vector<core::HostScanRecord> tls_records;

  for (const Row& row : rows) {
    const auto output = analysis::run_iw_scan(
        *world.network, *world.internet, bench::scan_options(flags, row.protocol));
    const auto summary = analysis::summarize(output.records);
    total_packets += output.engine.packets_sent;
    table.add_row({row.name, util::format_count(summary.reachable),
                   util::format_percent(summary.success_rate()),
                   util::format_percent(summary.few_data_rate()),
                   util::format_percent(summary.error_rate()),
                   util::format_percent(row.paper_success),
                   util::format_percent(row.paper_few),
                   util::format_percent(row.paper_error)});
    (row.protocol == core::ProbeProtocol::Http ? http_records : tls_records) =
        output.records;
  }
  bench::print_table(table, flags.boolean("csv"));

  // §4 "Success rates": distinct IPs, dual-service hosts, and how many of
  // the dual hosts agree in their HTTP and TLS IW estimates.
  std::map<net::IPv4Address, std::uint32_t> http_success;
  for (const auto& record : http_records) {
    if (record.outcome == core::HostOutcome::Success) {
      http_success.emplace(record.ip, record.iw_segments);
    }
  }
  std::uint64_t both = 0;
  std::uint64_t agree = 0;
  std::set<net::IPv4Address> distinct;
  for (const auto& record : http_records) {
    if (record.outcome != core::HostOutcome::Unreachable) distinct.insert(record.ip);
  }
  for (const auto& record : tls_records) {
    if (record.outcome == core::HostOutcome::Unreachable) continue;
    distinct.insert(record.ip);
    if (record.outcome != core::HostOutcome::Success) continue;
    const auto it = http_success.find(record.ip);
    if (it != http_success.end()) {
      ++both;
      if (it->second == record.iw_segments) ++agree;
    }
  }
  std::printf("\nDistinct reachable IPs: %s   dual-service successes: %s   "
              "agreeing IW estimates: %s (%s)\n",
              util::format_count(distinct.size()).c_str(),
              util::format_count(both).c_str(), util::format_count(agree).c_str(),
              both ? util::format_percent(static_cast<double>(agree) /
                                          static_cast<double>(both))
                         .c_str()
                   : "n/a");
  std::printf("(paper: 60.9M distinct, 7M dual-service, 6.2M agreeing)\n");
  std::printf("Packets sent: %s\n", util::format_count(total_packets).c_str());
  return 0;
}
