// Bounded-memory datapath bench: columnar spill write, K-way streaming
// merge, and the RSS ceiling that makes whole-IPv4 result sets feasible.
//
// The in-RAM result path costs 2^32 × sizeof(HostScanRecord) ≈ 170 GB at
// full IPv4 scale; the spill path (store/spill.hpp) caps resident memory at
// O(segment) per worker no matter how many targets complete. This bench
// pins that claim with numbers the CI regression checker gates on:
//
//   spill_write_rate   records/s through SpillWriter::append + flush, at
//                      2^24 records split over 4 process shards — with
//                      peak_rss_bytes as a hard ceiling (the write phase
//                      must not buffer the result set);
//   merge_read_rate    records/s through the 4-way SegmentReader/
//                      MergeReader heap merge, with cycle-order and
//                      content-checksum verification.
//
// Records are synthesized (the simulated-world model is itself O(hosts) in
// RAM, so driving 2^24 live sessions would measure the model, not the
// store); synthesis uses the same wire codecs, shard layout and cycle
// scrambling a real multi-process scan produces. A small end-to-end scan
// (--scan-scale) then pins spilled == in-RAM equality on the live pipeline.
#define IWSCAN_COUNT_ALLOCATIONS
#include "util/alloc_stats.hpp"

#include <sys/resource.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "store/spill.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

using namespace iwscan;

namespace {

/// Deterministic host record for global cycle index `cycle`; every field
/// depends only on the cycle, so writer and verifier agree without a
/// shared table.
core::HostScanRecord synthetic_record(std::uint64_t cycle) {
  const std::uint64_t h = util::mix64(0x51D0FF5EEDULL, cycle);
  core::HostScanRecord record;
  record.ip = net::IPv4Address(static_cast<std::uint32_t>(h >> 32));
  record.outcome = static_cast<core::HostOutcome>(h & 0x03u);
  record.iw_segments = static_cast<std::uint32_t>((h >> 8) & 0x3F);
  record.iw_bytes = static_cast<std::uint64_t>(record.iw_segments) * 1460;
  record.observed_mss = static_cast<std::uint16_t>(536 + (h & 0x3FF));
  record.lower_bound = static_cast<std::uint32_t>((h >> 16) & 0x0F);
  record.iw_segments_b = record.iw_segments / 2;
  record.iw_bytes_b = record.iw_bytes;
  record.observed_mss_b = static_cast<std::uint16_t>(record.observed_mss * 2);
  record.fin_seen = (h & 0x10u) != 0;
  record.reorder_seen = (h & 0x20u) != 0;
  record.loss_suspected = (h & 0x40u) != 0;
  record.anomaly = static_cast<core::ProbeAnomaly>((h >> 24) % 12);
  record.probes_run = static_cast<std::uint8_t>(1 + (h & 0x07u));
  record.connections_used = record.probes_run;
  return record;
}

/// Order-independent content checksum so the merge phase can prove it
/// delivered exactly the written records, not just the right count.
std::uint64_t record_digest(std::uint64_t cycle, const core::HostScanRecord& r) {
  std::uint64_t d = util::mix64(cycle, r.ip.value());
  d = util::mix64(d, (std::uint64_t{r.iw_segments} << 32) | r.lower_bound);
  d = util::mix64(d, r.iw_bytes ^ r.observed_mss);
  return d;
}

std::uint64_t peak_rss_bytes() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  // Linux reports ru_maxrss in KiB.
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
}

/// bench::make_world with an explicit (smaller) scale for the end-to-end
/// equality check — the 2^24 record phases never build a world at all.
bench::World make_scan_world(const util::Flags& flags, int scale_log2) {
  bench::World world;
  world.network = std::make_unique<sim::Network>(world.loop, flags.u64("seed") ^ 1);
  model::ModelConfig config;
  config.scale_log2 = scale_log2;
  config.seed = flags.u64("seed");
  config.loss_rate = flags.real("loss");
  world.internet = std::make_unique<model::InternetModel>(*world.network, config);
  world.internet->install();
  return world;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  bench::define_common_flags(flags);
  flags.define_u64("records-log2", 24,
                   "log2 of the synthetic record count pushed through the "
                   "spill datapath");
  flags.define_u64("processes", 4, "simulated operator processes (spill shards)");
  flags.define_u64("segment-bytes", store::kDefaultSegmentBytes,
                   "spill segment size in bytes");
  flags.define_u64("scan-scale", 12,
                   "log2 address-space size for the end-to-end spilled-scan "
                   "equality check");
  flags.define_string("json", "",
                      "write machine-readable results (rates, RSS ceiling) "
                      "to this path");
  bench::parse_or_exit(flags, argc, argv);

  bench::print_header("store/: columnar spill + streaming merge at 2^24 scale",
                      "the §3.4 operator model (bounded-memory variant)");

  const std::uint64_t total = std::uint64_t{1} << flags.u64("records-log2");
  const std::uint64_t processes = std::max<std::uint64_t>(1, flags.u64("processes"));
  const auto segment_bytes = static_cast<std::size_t>(flags.u64("segment-bytes"));
  const std::uint64_t scan_seed = flags.u64("scan-seed");

  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "iwscan_bench_spill";
  std::error_code ec;
  fs::remove_all(dir, ec);

  // --- Phase 1: write 2^records-log2 records through `processes` writers.
  // The multiplicative bijection scrambles cycle order (records complete
  // out of order in a real scan), so segments overlap and the merge below
  // has real K-way work to do. Shard p owns cycles ≡ p (mod processes),
  // exactly like --shard p/N.
  std::vector<std::unique_ptr<store::SpillWriter<core::HostScanRecord>>> writers;
  std::vector<std::string> files;
  for (std::uint64_t p = 0; p < processes; ++p) {
    store::SpillConfig config;
    config.directory = dir.string();
    config.segment_bytes = segment_bytes;
    config.seed = scan_seed;
    config.shard = static_cast<std::uint32_t>(p);
    config.total_shards = static_cast<std::uint32_t>(processes);
    writers.push_back(
        std::make_unique<store::SpillWriter<core::HostScanRecord>>(config));
  }

  const std::uint64_t mask = total - 1;
  std::uint64_t write_digest = 0;
  util::Stopwatch write_watch;
  for (std::uint64_t i = 0; i < total; ++i) {
    const std::uint64_t cycle = (i * 0x9E3779B1u) & mask;  // odd ⇒ bijection
    const core::HostScanRecord record = synthetic_record(cycle);
    write_digest ^= record_digest(cycle, record);
    writers[cycle % processes]->append(cycle, record);
  }
  std::uint64_t segments = 0;
  std::uint64_t bytes_written = 0;
  for (auto& writer : writers) {
    if (!writer->close()) {
      std::fprintf(stderr, "spill write failed: %s\n", writer->error().c_str());
      return 1;
    }
    segments += writer->segments_flushed();
    files.push_back(writer->path());
    bytes_written += fs::file_size(writer->path());
  }
  const double write_seconds = write_watch.elapsed_seconds();
  // Snapshot before the merge maps the files back in: this is the scan-side
  // RSS claim — writing O(targets) records must cost O(segment) memory.
  const std::uint64_t write_rss = peak_rss_bytes();
  writers.clear();

  const double write_rate =
      write_seconds > 0 ? static_cast<double>(total) / write_seconds : 0.0;
  std::printf("wrote %llu records into %llu files (%llu segments, %.1f MiB) "
              "in %.2f s — %.0f records/s\n",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(processes),
              static_cast<unsigned long long>(segments),
              static_cast<double>(bytes_written) / (1024.0 * 1024.0),
              write_seconds, write_rate);
  std::printf("peak RSS after write: %.1f MiB (in-RAM result set would be "
              "%.1f MiB)\n",
              static_cast<double>(write_rss) / (1024.0 * 1024.0),
              static_cast<double>(total * sizeof(core::HostScanRecord)) /
                  (1024.0 * 1024.0));

  // --- Phase 2: K-way merge back in global cycle order, verifying both the
  // order contract (MergeReader enforces strict increase) and the content.
  std::string error;
  auto merge = store::open_merge<core::HostScanRecord>(files, &error);
  if (!merge.has_value()) {
    std::fprintf(stderr, "open_merge failed: %s\n", error.c_str());
    return 1;
  }
  std::uint64_t read_digest = 0;
  std::uint64_t read_count = 0;
  std::uint64_t cycle = 0;
  core::HostScanRecord record;
  util::Stopwatch merge_watch;
  while (merge->next(cycle, record)) {
    read_digest ^= record_digest(cycle, record);
    ++read_count;
  }
  const double merge_seconds = merge_watch.elapsed_seconds();
  if (!merge->ok()) {
    std::fprintf(stderr, "merge failed: %s\n", merge->error().c_str());
    return 1;
  }
  if (read_count != total || read_digest != write_digest) {
    std::fprintf(stderr,
                 "merge mismatch: %llu/%llu records, digest %016llx vs "
                 "%016llx\n",
                 static_cast<unsigned long long>(read_count),
                 static_cast<unsigned long long>(total),
                 static_cast<unsigned long long>(read_digest),
                 static_cast<unsigned long long>(write_digest));
    return 1;
  }
  const double merge_rate =
      merge_seconds > 0 ? static_cast<double>(total) / merge_seconds : 0.0;
  std::printf("merged %llu records back in cycle order in %.2f s — %.0f "
              "records/s (digest ok)\n",
              static_cast<unsigned long long>(read_count), merge_seconds,
              merge_rate);

  // --- Phase 3: end-to-end equality on the live pipeline at a small scale:
  // a spilled scan's merged records must equal the in-RAM scan's records.
  bool identity_ok = true;
  {
    const int scan_scale = static_cast<int>(flags.u64("scan-scale"));
    auto in_ram_world = make_scan_world(flags, scan_scale);
    analysis::ScanOptions options =
        bench::scan_options(flags, core::ProbeProtocol::Http);
    options.rate_pps = 100'000;
    const auto in_ram =
        analysis::run_iw_scan(*in_ram_world.network, *in_ram_world.internet, options);

    auto spill_world = make_scan_world(flags, scan_scale);
    options.spill_dir = (dir / "e2e").string();
    options.spill_segment_bytes = 1u << 14;  // many segments, small scan
    const auto spilled =
        analysis::run_iw_scan(*spill_world.network, *spill_world.internet, options);

    std::vector<core::HostScanRecord> merged;
    if (!store::read_merged(spilled.spill_files, merged, &error)) {
      std::fprintf(stderr, "e2e merge failed: %s\n", error.c_str());
      return 1;
    }
    identity_ok = merged == in_ram.records;
    std::printf("end-to-end: spilled scan == in-RAM scan at 2^%llu hosts: %s "
                "(%zu records)\n",
                static_cast<unsigned long long>(flags.u64("scan-scale")),
                identity_ok ? "ok" : "MISMATCH", merged.size());
  }
  fs::remove_all(dir, ec);
  if (!identity_ok) return 1;

  if (!flags.str("json").empty()) {
    std::FILE* out = std::fopen(flags.str("json").c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", flags.str("json").c_str());
      return 1;
    }
    std::fprintf(out, "{\n  \"bench\": \"bench_spill\",\n");
    std::fprintf(out,
                 "  \"config\": {\"records\": %llu, \"processes\": %llu, "
                 "\"segment_bytes\": %llu, \"scan_seed\": %llu},\n",
                 static_cast<unsigned long long>(total),
                 static_cast<unsigned long long>(processes),
                 static_cast<unsigned long long>(segment_bytes),
                 static_cast<unsigned long long>(scan_seed));
    std::fprintf(out,
                 "  \"write\": {\"wall_seconds\": %.6f, \"segments\": %llu, "
                 "\"file_bytes\": %llu},\n",
                 write_seconds, static_cast<unsigned long long>(segments),
                 static_cast<unsigned long long>(bytes_written));
    std::fprintf(out, "  \"merge\": {\"wall_seconds\": %.6f},\n", merge_seconds);
    // The regression-checker contract (tools/perf/check_bench_regression.py):
    // rate floors plus the peak_rss_bytes ceiling that pins bounded memory.
    std::fprintf(out, "  \"benchmarks\": [\n");
    std::fprintf(out,
                 "    {\"name\": \"spill_write_rate\", \"items_per_second\": "
                 "%.1f, \"peak_rss_bytes\": %llu},\n",
                 write_rate, static_cast<unsigned long long>(write_rss));
    std::fprintf(out,
                 "    {\"name\": \"merge_read_rate\", \"items_per_second\": "
                 "%.1f}\n",
                 merge_rate);
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
  }
  return 0;
}
