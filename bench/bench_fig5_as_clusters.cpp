// Fig. 5 — per-AS IW distributions clustered with DBSCAN on the
// (IW1, IW2, IW4, IW10, other) share vector, for HTTP and TLS; plus the
// per-AS breakdown for the representatives named in the paper's figure.
#include "bench_common.hpp"

#include <algorithm>
#include <map>

#include "analysis/dbscan.hpp"
#include "analysis/iw_table.hpp"

using namespace iwscan;

namespace {

struct AsVector {
  const model::AsInfo* as = nullptr;
  std::uint64_t successes = 0;
  std::vector<double> shares;  // IW1, IW2, IW4, IW10, other
};

std::vector<AsVector> per_as_vectors(
    const std::vector<core::HostScanRecord>& records,
    const model::AsRegistry& registry) {
  std::map<const model::AsInfo*, std::map<std::uint32_t, std::uint64_t>> counts;
  for (const auto& record : records) {
    if (record.outcome != core::HostOutcome::Success) continue;
    const auto* as = registry.find(record.ip);
    if (as) ++counts[as][record.iw_segments];
  }
  std::vector<AsVector> vectors;
  for (const auto& [as, histogram] : counts) {
    AsVector v;
    v.as = as;
    std::uint64_t total = 0;
    for (const auto& [iw, count] : histogram) total += count;
    if (total < 20) continue;  // too few successes to characterize the AS
    v.successes = total;
    const auto share = [&](std::uint32_t iw) {
      const auto it = histogram.find(iw);
      return it == histogram.end()
                 ? 0.0
                 : static_cast<double>(it->second) / static_cast<double>(total);
    };
    v.shares = {share(1), share(2), share(4), share(10)};
    v.shares.push_back(std::max(
        0.0, 1.0 - v.shares[0] - v.shares[1] - v.shares[2] - v.shares[3]));
    vectors.push_back(std::move(v));
  }
  return vectors;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  bench::define_common_flags(flags);
  flags.define_double("epsilon", 0.15, "DBSCAN neighbourhood radius");
  flags.define_u64("min-points", 3, "DBSCAN density threshold");
  bench::parse_or_exit(flags, argc, argv);

  bench::print_header("Fig. 5: per-AS IW clusters (DBSCAN)", "Figure 5");
  auto world = bench::make_world(flags);

  for (const auto protocol : {core::ProbeProtocol::Http, core::ProbeProtocol::Tls}) {
    const bool is_http = protocol == core::ProbeProtocol::Http;
    const auto output = analysis::run_iw_scan(*world.network, *world.internet,
                                              bench::scan_options(flags, protocol));
    const auto vectors = per_as_vectors(output.records,
                                        world.internet->registry());

    std::vector<std::vector<double>> points;
    points.reserve(vectors.size());
    for (const auto& v : vectors) points.push_back(v.shares);

    analysis::DbscanParams params;
    params.epsilon = flags.real("epsilon");
    params.min_points = static_cast<int>(flags.u64("min-points"));
    const auto labels = analysis::dbscan(points, params);

    std::printf("--- %s: %d clusters over %zu ASes ---\n",
                is_http ? "HTTP" : "TLS", analysis::cluster_count(labels),
                vectors.size());
    analysis::TextTable table({"AS", "ASN", "kind", "IW1", "IW2", "IW4", "IW10",
                               "other", "n", "cluster"});
    for (std::size_t i = 0; i < vectors.size(); ++i) {
      const auto& v = vectors[i];
      table.add_row({v.as->name, std::to_string(v.as->asn),
                     std::string(model::to_string(v.as->kind)),
                     analysis::fmt_double(v.shares[0] * 100),
                     analysis::fmt_double(v.shares[1] * 100),
                     analysis::fmt_double(v.shares[2] * 100),
                     analysis::fmt_double(v.shares[3] * 100),
                     analysis::fmt_double(v.shares[4] * 100),
                     util::format_count(v.successes),
                     labels[i] == analysis::kDbscanNoise
                         ? "noise"
                         : std::to_string(labels[i])});
    }
    bench::print_table(table, flags.boolean("csv"));

    // Cluster summaries (the figure's left-hand side).
    const int clusters = analysis::cluster_count(labels);
    for (int c = 0; c < clusters; ++c) {
      std::vector<double> centroid(5, 0.0);
      std::uint64_t hosts = 0;
      int members = 0;
      for (std::size_t i = 0; i < vectors.size(); ++i) {
        if (labels[i] != c) continue;
        for (int d = 0; d < 5; ++d) centroid[d] += vectors[i].shares[d];
        hosts += vectors[i].successes;
        ++members;
      }
      for (auto& value : centroid) value /= members;
      std::printf("cluster %d: %d ASes, %s hosts — IW1 %.0f%% IW2 %.0f%% IW4 "
                  "%.0f%% IW10 %.0f%% other %.0f%%\n",
                  c, members, util::format_count(hosts).c_str(),
                  centroid[0] * 100, centroid[1] * 100, centroid[2] * 100,
                  centroid[3] * 100, centroid[4] * 100);
    }
    std::printf("\n");
  }
  std::printf("(paper: 3 HTTP + 3 TLS clusters stand out — near-exclusive IW10\n"
              " content clusters, IW2-heavy ISP/university clusters, and a mixed\n"
              " IW4 cluster incl. an Akamai AS on TLS; GoDaddy's IW48 hosts are\n"
              " <<1%% of all IPs and thus invisible in Fig. 3)\n");
  return 0;
}
