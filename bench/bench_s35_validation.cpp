// §3.5 — controlled validation + design ablations:
//   (a) ground truth across OS profiles and IW configs (exactness),
//   (b) a NetEM-style loss sweep (never overestimates; tail loss only
//       lowers estimates; the 3-probe rule vs. single probes — D3),
//   (c) announced-MSS ablation (D1: larger announced MSS → more few-data),
//   (d) ACK-release verification ablation (D2: without it, exact-fit
//       responses would be misclassified as Success).
#include "bench_common.hpp"

#include "core/estimator.hpp"
#include "core/host_prober.hpp"
#include "httpd/http_server.hpp"
#include "tcpstack/host.hpp"

using namespace iwscan;

namespace {

// A self-contained two-node testbed (scanner services + one host).
class MiniServices final : public scan::SessionServices, public sim::Endpoint {
 public:
  explicit MiniServices(sim::Network& network) : network_(network) {
    network_.attach(net::IPv4Address{192, 0, 2, 1}, this);
  }
  ~MiniServices() override { network_.detach(net::IPv4Address{192, 0, 2, 1}); }
  void set_handler(std::function<void(const net::Datagram&)> handler) {
    handler_ = std::move(handler);
  }
  void handle_packet(net::PacketView bytes) override {
    const auto datagram = net::decode_datagram(bytes);
    if (datagram && handler_) handler_(*datagram);
  }
  void send_packet(net::Bytes bytes) override { network_.send(std::move(bytes)); }
  sim::EventLoop& loop() override { return network_.loop(); }
  net::IPv4Address scanner_address() const override {
    return net::IPv4Address{192, 0, 2, 1};
  }
  std::uint16_t allocate_port(net::IPv4Address) override { return port_++; }
  std::uint64_t session_seed(net::IPv4Address) override {
    return seed_ += 0x9e3779b97f4a7c15ULL;
  }

 private:
  sim::Network& network_;
  std::function<void(const net::Datagram&)> handler_;
  std::uint16_t port_ = 40000;
  std::uint64_t seed_ = 17;
};

struct Probe {
  core::HostScanRecord record;
};

core::HostScanRecord probe_once(sim::Network& network, net::IPv4Address target,
                                const core::IwScanConfig& config) {
  MiniServices services(network);
  core::HostScanRecord record;
  bool done = false;
  core::HostProber prober(services, target, config,
                          [&](const core::HostScanRecord& r) { record = r; },
                          [&] { done = true; });
  services.set_handler(
      [&](const net::Datagram& datagram) { prober.on_datagram(datagram); });
  prober.start();
  while (!done && network.loop().step()) {
  }
  return record;
}

struct HostSetup {
  sim::EventLoop loop;
  std::unique_ptr<sim::Network> network;
  std::unique_ptr<tcp::TcpHost> host;
  net::IPv4Address ip{10, 0, 0, 1};

  HostSetup(std::uint32_t iw_segments, tcp::OsProfile os, std::size_t page,
            double loss, std::uint64_t seed) {
    network = std::make_unique<sim::Network>(loop, seed);
    sim::PathConfig path;
    path.latency = sim::msec(15);
    path.loss_rate = loss;
    network->set_default_path(path);
    tcp::StackConfig stack;
    stack.os = os;
    stack.iw = tcp::IwConfig::segments_of(iw_segments);
    host = std::make_unique<tcp::TcpHost>(*network, ip, stack, seed);
    http::WebConfig web;
    web.root = http::RootBehavior::Page;
    web.page_size = page;
    host->listen(80, http::HttpServerApp::factory(web));
    network->attach(ip, host.get());
  }
};

core::IwScanConfig probe_config(std::uint16_t mss, int probes) {
  core::IwScanConfig config;
  config.protocol = core::ProbeProtocol::Http;
  config.port = 80;
  config.mss_primary = mss;
  config.mss_secondary = 0;
  config.probes_per_mss = probes;
  config.estimator.announced_mss = mss;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  bench::define_common_flags(flags);
  flags.define_u64("trials", 40, "probe trials per loss level");
  bench::parse_or_exit(flags, argc, argv);
  const bool csv = flags.boolean("csv");

  bench::print_header("§3.5: testbed validation + ablations", "Section 3.5");

  // ---- (a) Ground-truth exactness across OS and IW configurations -------
  std::printf("(a) ground truth, no loss (paper: estimator exact in all cases)\n");
  analysis::TextTable truth_table({"OS", "true IW", "estimated", "outcome"});
  bool all_exact = true;
  for (const auto os : {tcp::OsProfile::Linux, tcp::OsProfile::Windows}) {
    for (const std::uint32_t iw : {1u, 2u, 3u, 4u, 10u, 16u, 32u}) {
      HostSetup setup(iw, os, 64 * 1024, 0.0, 1);
      const auto record = probe_once(*setup.network, setup.ip, probe_config(64, 3));
      truth_table.add_row(
          {os == tcp::OsProfile::Linux ? "Linux" : "Windows", std::to_string(iw),
           std::to_string(record.iw_segments),
           std::string(to_string(record.outcome))});
      all_exact &= record.outcome == core::HostOutcome::Success &&
                   record.iw_segments == iw;
    }
  }
  bench::print_table(truth_table, csv);
  std::printf("all exact: %s\n\n", all_exact ? "YES" : "NO");

  // ---- (b) loss sweep, single vs. 3-probe rule (D3) ----------------------
  std::printf("(b) loss sweep (paper: correct absent tail loss; tail loss only\n"
              "    underestimates; multiple probes mitigate)\n");
  analysis::TextTable loss_table({"loss", "mode", "exact", "under", "over",
                                  "no-estimate"});
  const int trials = static_cast<int>(flags.u64("trials"));
  for (const double loss : {0.0, 0.01, 0.02, 0.05, 0.10, 0.20}) {
    for (const int probes : {1, 3}) {
      int exact = 0;
      int under = 0;
      int over = 0;
      int none = 0;
      for (int t = 0; t < trials; ++t) {
        HostSetup setup(10, tcp::OsProfile::Linux, 64 * 1024, loss,
                        1000 + static_cast<std::uint64_t>(t) * 7 +
                            static_cast<std::uint64_t>(loss * 1e4));
        const auto record =
            probe_once(*setup.network, setup.ip, probe_config(64, probes));
        if (record.outcome != core::HostOutcome::Success) {
          ++none;
        } else if (record.iw_segments == 10) {
          ++exact;
        } else if (record.iw_segments < 10) {
          ++under;
        } else {
          ++over;
        }
      }
      char loss_text[16];
      std::snprintf(loss_text, sizeof(loss_text), "%.0f%%", loss * 100);
      loss_table.add_row({loss_text, probes == 1 ? "1 probe" : "3 probes",
                          std::to_string(exact), std::to_string(under),
                          std::to_string(over), std::to_string(none)});
    }
  }
  bench::print_table(loss_table, csv);
  std::printf("invariant: 'over' must be 0 everywhere.\n\n");

  // ---- (c) announced-MSS ablation (D1) -----------------------------------
  std::printf("(c) announced-MSS ablation (D1: small MSS maximizes the chance\n"
              "    a response fills the IW)\n");
  analysis::TextTable mss_table({"announced MSS", "page 2kB", "page 8kB",
                                 "page 24kB"});
  for (const std::uint16_t mss : {64, 128, 536, 1460}) {
    std::vector<std::string> row{std::to_string(mss)};
    for (const std::size_t page : {2'000u, 8'000u, 24'000u}) {
      HostSetup setup(10, tcp::OsProfile::Linux, page, 0.0, 5);
      const auto record = probe_once(*setup.network, setup.ip, probe_config(mss, 3));
      row.push_back(std::string(to_string(record.outcome)) +
                    (record.outcome == core::HostOutcome::Success
                         ? " (IW " + std::to_string(record.iw_segments) + ")"
                         : ""));
    }
    mss_table.add_row(std::move(row));
  }
  bench::print_table(mss_table, csv);
  std::printf("\n");

  // ---- (d) ACK-release verification ablation (D2) ------------------------
  std::printf("(d) verification ablation (D2): responses that exactly fit the\n"
              "    IW look complete; without the 2*MSS-window ACK release the\n"
              "    estimator could not tell Success from FewData.\n");
  {
    // Exact-fit host: sends exactly IW bytes then FIN.
    const std::size_t overhead = model::http_response_overhead("Apache", 200, 640, true);
    HostSetup exact_fit(10, tcp::OsProfile::Linux, 640 - overhead, 0.0, 9);
    const auto record =
        probe_once(*exact_fit.network, exact_fit.ip, probe_config(64, 3));
    std::printf("exact-fit 640B response on IW10 host → %s (lower bound %u)\n",
                std::string(to_string(record.outcome)).c_str(), record.lower_bound);
    std::printf("with D2 the estimator reports FewData/bound instead of a false\n"
                "Success; a naive byte-count would have claimed IW=10 'success'.\n");
  }
  return 0;
}
