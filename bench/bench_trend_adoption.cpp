// §5 (future work implemented) — monitoring IW adoption over time.
//
// The paper closes by arguing that the IW landscape keeps shifting (IW10
// was enabled in Linux in 2011 yet adoption was still partial in 2017) and
// that "monitoring and better understanding this trend motivates future
// research" — which their weekly 1% scans operationalize. This bench runs
// the scan across simulated epochs of kernel-upgrade drift and tracks the
// adoption curve the methodology would report.
#include "bench_common.hpp"

#include "analysis/iw_table.hpp"

using namespace iwscan;

int main(int argc, char** argv) {
  util::Flags flags;
  bench::define_common_flags(flags);
  flags.define_u64("epochs", 10, "number of scan epochs to simulate");
  flags.define_double("upgrade-rate", 0.06,
                      "per-epoch legacy-Linux → IW10 upgrade probability");
  flags.define_double("fraction", 0.25,
                      "sample fraction per epoch (the low-footprint mode)");
  bench::parse_or_exit(flags, argc, argv);

  bench::print_header("§5 extension: IW10 adoption trend over time",
                      "the §5 trend-monitoring proposal");

  analysis::TextTable table({"epoch", "scanned", "IW1%", "IW2%", "IW4%", "IW10%",
                             "other%"});
  double first_iw10 = 0;
  double last_iw10 = 0;

  const auto epochs = static_cast<int>(flags.u64("epochs"));
  for (int epoch = 0; epoch <= epochs; ++epoch) {
    sim::EventLoop loop;
    sim::Network network(loop, flags.u64("seed") ^ 1);
    model::ModelConfig config;
    config.scale_log2 = static_cast<int>(flags.u64("scale"));
    config.seed = flags.u64("seed");
    config.loss_rate = flags.real("loss");
    config.epoch = epoch;
    config.upgrade_rate_per_epoch = flags.real("upgrade-rate");
    model::InternetModel internet(network, config);
    internet.install();

    analysis::ScanOptions options;
    options.protocol = core::ProbeProtocol::Http;
    options.rate_pps = flags.real("rate");
    options.sample_fraction = flags.real("fraction");
    options.scan_seed = flags.u64("scan-seed");
    const auto output = analysis::run_iw_scan(network, internet, options);

    const auto fractions = analysis::iw_fractions(output.records);
    const auto share = [&](std::uint32_t iw) {
      const auto it = fractions.find(iw);
      return it == fractions.end() ? 0.0 : it->second;
    };
    const double other =
        1.0 - share(1) - share(2) - share(4) - share(10) - share(3);
    table.add_row({std::to_string(epoch),
                   util::format_count(output.records.size()),
                   analysis::fmt_double(share(1) * 100),
                   analysis::fmt_double(share(2) * 100),
                   analysis::fmt_double(share(4) * 100),
                   analysis::fmt_double(share(10) * 100),
                   analysis::fmt_double(other * 100)});
    if (epoch == 0) first_iw10 = share(10);
    last_iw10 = share(10);
  }

  bench::print_table(table, flags.boolean("csv"));
  std::printf("\nIW10 adoption measured by the scan: %s -> %s over %d epochs\n",
              util::format_percent(first_iw10).c_str(),
              util::format_percent(last_iw10).c_str(), epochs);
  std::printf("(legacy IW 1/2/4 shares shrink as deterministic per-host kernel\n"
              " upgrades land; byte-IW CPE and Windows hosts are unaffected —\n"
              " the heterogeneity the paper predicts will persist)\n");
  return 0;
}
