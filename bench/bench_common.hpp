// Shared scaffolding for the experiment harnesses: standard flags, world
// construction, and paper-vs-measured table helpers. Every bench binary
// regenerates one table or figure of the paper (see DESIGN.md §4); the
// absolute counts are down-scaled to the simulated universe, the *shape*
// is what must match.
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "analysis/scan_runner.hpp"
#include "analysis/table_writer.hpp"
#include "inetmodel/internet.hpp"
#include "util/flags.hpp"
#include "util/strings.hpp"

namespace iwscan::bench {

struct World {
  sim::EventLoop loop;
  std::unique_ptr<sim::Network> network;
  std::unique_ptr<model::InternetModel> internet;
};

inline void define_common_flags(util::Flags& flags) {
  flags.define_u64("scale", 16,
                   "log2 of the simulated address-space size (16 = 65k addresses)");
  flags.define_u64("seed", 42, "population seed (same seed → same Internet)");
  flags.define_u64("scan-seed", 7, "scanner seed (address order, ISNs)");
  flags.define_double("loss", 0.002, "per-packet per-direction loss rate");
  flags.define_double("rate", 150000, "scan rate in probed targets/second");
  flags.define_u64("shards", 1,
                   "parallel scan workers (output is identical for any value)");
  flags.define_string("shard", "0/1",
                      "this process's stride of the target permutation, as "
                      "i/N (multi-process operator mode; merge with iwmerge)");
  flags.define_string("spill-dir", "",
                      "stream scan records into columnar spill files under "
                      "this directory instead of RAM");
  flags.define_bool("csv", false, "emit CSV instead of aligned tables");
}

/// Parse flags; on --help or error prints and exits the process.
inline void parse_or_exit(util::Flags& flags, int argc, char** argv) {
  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", flags.error().c_str(),
                 flags.usage(argv[0]).c_str());
    std::exit(2);
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.usage(argv[0]).c_str());
    std::exit(0);
  }
}

inline World make_world(const util::Flags& flags) {
  World world;
  world.network = std::make_unique<sim::Network>(world.loop, flags.u64("seed") ^ 1);
  model::ModelConfig config;
  config.scale_log2 = static_cast<int>(flags.u64("scale"));
  config.seed = flags.u64("seed");
  config.loss_rate = flags.real("loss");
  world.internet = std::make_unique<model::InternetModel>(*world.network, config);
  world.internet->install();
  return world;
}

inline analysis::ScanOptions scan_options(const util::Flags& flags,
                                          core::ProbeProtocol protocol) {
  analysis::ScanOptions options;
  options.protocol = protocol;
  options.rate_pps = flags.real("rate");
  options.scan_seed = flags.u64("scan-seed");
  options.shards = flags.u64("shards");
  options.spill_dir = flags.str("spill-dir");
  const auto parts = util::split(flags.str("shard"), '/');
  if (parts.size() == 2) {
    const auto i = util::parse_u64(parts[0]);
    const auto n = util::parse_u64(parts[1]);
    if (i.has_value() && n.has_value() && *n > 0 && *i < *n) {
      options.process_shard = *i;
      options.process_shards = *n;
    }
  }
  return options;
}

inline void print_table(const analysis::TextTable& table, bool csv) {
  std::fputs((csv ? table.csv() : table.render()).c_str(), stdout);
}

inline void print_header(std::string_view experiment, std::string_view paper_ref) {
  std::printf("== %.*s ==\n(reproduces %.*s of \"Large-Scale Scanning of TCP's "
              "Initial Window\", IMC'17)\n\n",
              static_cast<int>(experiment.size()), experiment.data(),
              static_cast<int>(paper_ref.size()), paper_ref.data());
}

}  // namespace iwscan::bench
