// Fig. 3 — IW distribution over the IPv4 universe for HTTP and TLS (IWs
// held by ≥0.1% of hosts), plus the sampling study: 1/10/30/50/100%
// subsamples and the 30×1% mean / 99%-quantile band ("Scanning 1% is
// enough!", §4.1).
#include "bench_common.hpp"

#include <set>

#include "analysis/iw_table.hpp"
#include "analysis/subsample.hpp"

using namespace iwscan;

int main(int argc, char** argv) {
  util::Flags flags;
  bench::define_common_flags(flags);
  flags.define_u64("trials", 30, "number of repeated 1% samples for the band");
  bench::parse_or_exit(flags, argc, argv);

  bench::print_header("Fig. 3: IW distribution in IPv4 (HTTP & TLS)", "Figure 3");
  auto world = bench::make_world(flags);

  std::map<std::string, std::map<std::uint32_t, double>> series;
  std::set<std::uint32_t> iw_axis;

  std::vector<core::HostScanRecord> http_records;

  for (const auto protocol : {core::ProbeProtocol::Http, core::ProbeProtocol::Tls}) {
    const bool is_http = protocol == core::ProbeProtocol::Http;
    const auto output = analysis::run_iw_scan(*world.network, *world.internet,
                                              bench::scan_options(flags, protocol));
    const std::string tag = is_http ? "HTTP" : "TLS";
    if (is_http) http_records = output.records;

    const auto full = analysis::dominant_iws(analysis::iw_fractions(output.records));
    series[tag + " 100%"] = full;
    for (const auto& [iw, fraction] : full) iw_axis.insert(iw);

    for (const double fraction : {0.5, 0.3, 0.1, 0.01}) {
      const auto sample = analysis::subsample(output.records, fraction,
                                              flags.u64("scan-seed") ^ 0xabc);
      const auto fractions =
          analysis::dominant_iws(analysis::iw_fractions(sample), 0.0005);
      char label[32];
      std::snprintf(label, sizeof(label), "%s %g%%", tag.c_str(), fraction * 100);
      series[label] = fractions;
      for (const auto& [iw, f] : fractions) iw_axis.insert(iw);
    }
  }

  // The figure: one row per IW value, one column per series.
  std::vector<std::string> headers{"IW"};
  for (const auto& [label, values] : series) headers.push_back(label);
  analysis::TextTable table(headers);
  for (const std::uint32_t iw : iw_axis) {
    std::vector<std::string> row{std::to_string(iw)};
    for (const auto& [label, values] : series) {
      const auto it = values.find(iw);
      row.push_back(it == values.end() ? "-"
                                       : analysis::fmt_double(it->second * 100.0));
    }
    table.add_row(std::move(row));
  }
  bench::print_table(table, flags.boolean("csv"));

  // Stability band over repeated 1% samples (shown red in the figure).
  const auto reference = analysis::iw_fractions(http_records);
  const auto band = analysis::subsample_band(
      http_records, 0.01, static_cast<int>(flags.u64("trials")), 0.99,
      flags.u64("scan-seed"), reference);
  std::printf("\n30x 1%% HTTP subsamples — mean and 99%%-quantile band:\n");
  analysis::TextTable band_table({"IW", "mean%", "q0.5%", "q99.5%", "full-scan%"});
  for (const auto& [iw, mean] : band.mean) {
    if (mean < 0.0005 && (!reference.contains(iw) || reference.at(iw) < 0.0005)) {
      continue;
    }
    const auto ref_it = reference.find(iw);
    band_table.add_row(
        {std::to_string(iw), analysis::fmt_double(mean * 100.0, 2),
         analysis::fmt_double(band.quantile_lo.at(iw) * 100.0, 2),
         analysis::fmt_double(band.quantile_hi.at(iw) * 100.0, 2),
         ref_it == reference.end() ? "-"
                                   : analysis::fmt_double(ref_it->second * 100.0, 2)});
  }
  bench::print_table(band_table, flags.boolean("csv"));
  std::printf("\nMax L1 distance of any 1%% sample to the full distribution: %s\n",
              analysis::fmt_double(band.max_l1_to_reference, 4).c_str());
  std::printf("(paper: the 1%% distribution is stable — sampling suffices)\n");
  return 0;
}
