// Table 2 — lower bounds of IWs for hosts that did not send enough data
// ("Few Data" in Table 1), per the observed MSS, for HTTP and TLS.
#include "bench_common.hpp"

#include <map>

#include "analysis/iw_table.hpp"

using namespace iwscan;

int main(int argc, char** argv) {
  util::Flags flags;
  bench::define_common_flags(flags);
  bench::parse_or_exit(flags, argc, argv);

  bench::print_header("Table 2: few-data IW lower bounds", "Table 2");
  auto world = bench::make_world(flags);

  // Paper values (% of few-data hosts), per protocol, bounds NoData..IW10.
  const std::map<std::uint32_t, double> paper_http = {
      {0, 4.8}, {1, 16.5}, {2, 7.1}, {3, 7.2}, {4, 2.9},  {5, 3.6},
      {6, 2.0}, {7, 45.0}, {8, 2.7}, {9, 1.1}, {10, 0.9},
  };
  const std::map<std::uint32_t, double> paper_tls = {
      {0, 17.8}, {1, 56.3}, {2, 5.6}, {3, 0.7}, {4, 1.9},  {5, 2.8},
      {6, 2.4},  {7, 2.4},  {8, 3.4}, {9, 0.4}, {10, 0.8},
  };

  for (const auto protocol : {core::ProbeProtocol::Http, core::ProbeProtocol::Tls}) {
    const bool is_http = protocol == core::ProbeProtocol::Http;
    const auto output = analysis::run_iw_scan(*world.network, *world.internet,
                                              bench::scan_options(flags, protocol));
    const auto bounds = analysis::few_data_lower_bounds(output.records);
    const auto& paper = is_http ? paper_http : paper_tls;

    analysis::TextTable table({"Bound", "Measured", "Paper"});
    for (std::uint32_t bound = 0; bound <= 10; ++bound) {
      const auto it = bounds.find(bound);
      const double measured = it == bounds.end() ? 0.0 : it->second;
      const auto paper_it = paper.find(bound);
      table.add_row({bound == 0 ? "NoData" : ("IW" + std::to_string(bound)),
                     util::format_percent(measured),
                     paper_it == paper.end()
                         ? "-"
                         : util::format_percent(paper_it->second / 100.0)});
    }
    double tail = 0.0;
    for (const auto& [bound, fraction] : bounds) {
      if (bound > 10) tail += fraction;
    }
    table.add_row({">IW10", util::format_percent(tail), "~6.2% (HTTP)"});

    std::printf("--- %s ---\n", is_http ? "HTTP" : "TLS");
    bench::print_table(table, flags.boolean("csv"));
    std::printf("\n");
  }
  return 0;
}
