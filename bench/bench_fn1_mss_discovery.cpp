// Footnote 1 — ICMP path-MTU discovery scan (RFC 1191) estimating typical
// supportable MSS values. The paper: "We found 99% (80%) of all hosts
// support an MSS of 1336 B (1436 B)", motivating the TLS IW requirements.
#include "bench_common.hpp"

#include <map>

#include "scanner/icmp_mtu.hpp"

using namespace iwscan;

int main(int argc, char** argv) {
  util::Flags flags;
  bench::define_common_flags(flags);
  bench::parse_or_exit(flags, argc, argv);

  bench::print_header("Footnote 1: ICMP path-MTU / MSS discovery", "footnote 1");
  auto world = bench::make_world(flags);

  std::vector<scan::MtuProbeResult> results;
  scan::IcmpMtuModule module({}, [&](const scan::MtuProbeResult& result) {
    if (result.responded) results.push_back(result);
  });
  scan::TargetGenerator targets(world.internet->registry().scan_space(), {},
                                flags.u64("scan-seed"));
  scan::EngineConfig engine_config;
  engine_config.scanner_address = net::IPv4Address{192, 0, 2, 1};
  engine_config.rate_pps = flags.real("rate");
  engine_config.seed = flags.u64("scan-seed");
  scan::ScanEngine engine(*world.network, engine_config, std::move(targets), module);
  engine.start();
  while (!engine.done() && world.loop.step()) {
  }

  std::map<std::uint32_t, std::uint64_t> mtu_histogram;
  for (const auto& result : results) ++mtu_histogram[result.path_mtu];

  std::printf("responding hosts: %s\n\n", util::format_count(results.size()).c_str());
  analysis::TextTable table({"path MTU", "MSS", "hosts", "share"});
  for (const auto& [mtu, hosts] : mtu_histogram) {
    table.add_row({std::to_string(mtu), std::to_string(mtu - 40),
                   util::format_count(hosts),
                   util::format_percent(static_cast<double>(hosts) /
                                        static_cast<double>(results.size()))});
  }
  bench::print_table(table, flags.boolean("csv"));

  const auto share_at_least = [&](std::uint32_t mss) {
    std::uint64_t count = 0;
    for (const auto& result : results) {
      if (result.supported_mss() >= mss) ++count;
    }
    return static_cast<double>(count) / static_cast<double>(results.size());
  };
  std::printf("\nP(MSS >= 1336) = %s   (paper: 99%%)\n",
              util::format_percent(share_at_least(1336)).c_str());
  std::printf("P(MSS >= 1436) = %s   (paper: 80%%)\n",
              util::format_percent(share_at_least(1436)).c_str());
  std::printf("\n(With a typical MSS of 1336 B, filling IW 10 needs 13.4 kB of\n"
              " certificate data — far above typical chains; announcing MSS 64\n"
              " instead needs only 640 B, which >86%% of chains supply. This is\n"
              " why the small announced MSS is essential — Fig. 2.)\n");
  return 0;
}
