// §4.2 — IWs defined by a byte limit: scan the universe with MSS 64 and
// MSS 128 (the prober's dual pass) and classify hosts whose segment count
// halves when the MSS doubles. The paper: ~1% of hosts adjust the IW to
// the MSS; ~50% of those send 4 kB (64 → 32 segments, Technicolor CPE at
// Telmex), another group fills 1536 B (24 → 12 segments).
#include "bench_common.hpp"

#include <map>

#include "analysis/iw_table.hpp"

using namespace iwscan;

int main(int argc, char** argv) {
  util::Flags flags;
  bench::define_common_flags(flags);
  bench::parse_or_exit(flags, argc, argv);

  bench::print_header("§4.2: IW defined by byte limit (dual-MSS scan)", "Section 4.2");
  auto world = bench::make_world(flags);

  const auto output = analysis::run_iw_scan(
      *world.network, *world.internet,
      bench::scan_options(flags, core::ProbeProtocol::Http));

  std::uint64_t dual_success = 0;
  std::uint64_t byte_limited = 0;
  std::map<std::uint64_t, std::uint64_t> byte_budget_histogram;  // bytes → hosts
  std::map<std::string, std::uint64_t> byte_hosts_per_as;
  std::uint64_t mss_invariant = 0;

  for (const auto& record : output.records) {
    if (record.outcome != core::HostOutcome::Success || record.iw_segments_b == 0) {
      continue;
    }
    ++dual_success;
    if (record.iw_segments == record.iw_segments_b) {
      ++mss_invariant;
      continue;
    }
    // Byte-counted: segments halve (± the trailing partial segment) when
    // the MSS doubles, and the byte totals agree.
    const bool halves = record.iw_segments_b * 2 == record.iw_segments ||
                        record.iw_segments_b * 2 == record.iw_segments + 1;
    const bool same_bytes = record.iw_bytes == record.iw_bytes_b;
    if (halves && same_bytes) {
      ++byte_limited;
      ++byte_budget_histogram[record.iw_bytes];
      const auto* as = world.internet->registry().find(record.ip);
      if (as) ++byte_hosts_per_as[as->name];
    }
  }

  std::printf("dual-MSS successful hosts: %s\n",
              util::format_count(dual_success).c_str());
  std::printf("MSS-invariant (segment-counted): %s (%s)\n",
              util::format_count(mss_invariant).c_str(),
              util::format_percent(static_cast<double>(mss_invariant) /
                                   static_cast<double>(dual_success))
                  .c_str());
  std::printf("byte-counted IW hosts: %s (%s of dual successes; paper: ~1%%)\n\n",
              util::format_count(byte_limited).c_str(),
              util::format_percent(static_cast<double>(byte_limited) /
                                   static_cast<double>(dual_success))
                  .c_str());

  analysis::TextTable table({"byte budget", "segs @MSS64", "segs @MSS128", "hosts",
                             "share of byte hosts"});
  for (const auto& [bytes, hosts] : byte_budget_histogram) {
    table.add_row({util::format_bytes(bytes), std::to_string(bytes / 64),
                   std::to_string((bytes + 127) / 128), util::format_count(hosts),
                   util::format_percent(static_cast<double>(hosts) /
                                        static_cast<double>(byte_limited))});
  }
  bench::print_table(table, flags.boolean("csv"));

  std::printf("\nbyte-IW hosts per AS (paper: mostly Technicolor modems hosted "
              "by Telmex):\n");
  analysis::TextTable as_table({"AS", "byte-IW hosts"});
  for (const auto& [name, hosts] : byte_hosts_per_as) {
    as_table.add_row({name, util::format_count(hosts)});
  }
  bench::print_table(as_table, flags.boolean("csv"));
  std::printf("\n(paper: 4kB group = 64→32 segments; MTU-fill group = 1536 B:\n"
              " 24→12 segments; GoDaddy's IW48 stays 48 at both MSS values —\n"
              " static, hence NOT counted as byte-limited)\n");
  return 0;
}
