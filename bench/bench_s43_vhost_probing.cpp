// §4.3 + §5 (future work implemented) — per-service IW customization on
// virtualized infrastructure: generic IP-based probing of Akamai-style
// edges yields only "few data" (no valid Host name ⇒ short error pages),
// while probing with a curated URL list reveals the per-customer IW
// configurations (the paper manually found e.g. IW 16 and IW 32).
#include "bench_common.hpp"

#include "core/host_prober.hpp"
#include "httpd/http_server.hpp"
#include "tcpstack/host.hpp"

using namespace iwscan;

namespace {

class DirectServices final : public scan::SessionServices, public sim::Endpoint {
 public:
  explicit DirectServices(sim::Network& network) : network_(network) {
    network_.attach(net::IPv4Address{192, 0, 2, 1}, this);
  }
  ~DirectServices() override { network_.detach(net::IPv4Address{192, 0, 2, 1}); }
  void set_handler(std::function<void(const net::Datagram&)> handler) {
    handler_ = std::move(handler);
  }
  void handle_packet(net::PacketView bytes) override {
    const auto datagram = net::decode_datagram(bytes);
    if (datagram && handler_) handler_(*datagram);
  }
  void send_packet(net::Bytes bytes) override { network_.send(std::move(bytes)); }
  sim::EventLoop& loop() override { return network_.loop(); }
  net::IPv4Address scanner_address() const override {
    return net::IPv4Address{192, 0, 2, 1};
  }
  std::uint16_t allocate_port(net::IPv4Address) override { return port_++; }
  std::uint64_t session_seed(net::IPv4Address) override { return seed_ += 6007; }

 private:
  sim::Network& network_;
  std::function<void(const net::Datagram&)> handler_;
  std::uint16_t port_ = 40000;
  std::uint64_t seed_ = 11;
};

core::HostScanRecord probe(sim::Network& network, net::IPv4Address target,
                           const std::string& curated_host) {
  DirectServices services(network);
  core::IwScanConfig config;
  config.protocol = core::ProbeProtocol::Http;
  config.port = 80;
  config.curated_host = curated_host;

  core::HostScanRecord record;
  bool done = false;
  core::HostProber prober(services, target, config,
                          [&](const core::HostScanRecord& r) { record = r; },
                          [&] { done = true; });
  services.set_handler([&](const net::Datagram& d) { prober.on_datagram(d); });
  prober.start();
  while (!done && network.loop().step()) {
  }
  return record;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  bench::define_common_flags(flags);
  bench::parse_or_exit(flags, argc, argv);

  bench::print_header("§4.3/§5: per-customer IWs behind virtual hosting",
                      "Section 4.3 and the §5 future-work proposal");

  sim::EventLoop loop;
  sim::Network network(loop, flags.u64("seed"));
  sim::PathConfig path;
  path.latency = sim::msec(25);
  network.set_default_path(path);

  // Akamai-style edge nodes: each hosts a customer behind a virtual host,
  // with a per-customer IW configuration (the paper manually observed
  // IW 16 and IW 32 alongside the default 4).
  struct Customer {
    const char* name;       // curated URL list entry (Host header)
    std::uint32_t iw;
    net::IPv4Address edge;
  };
  Customer customers[] = {
      {"www.customer-default.example", 4, net::IPv4Address{10, 40, 0, 1}},
      {"www.customer-media.example", 16, net::IPv4Address{10, 40, 0, 2}},
      {"www.customer-commerce.example", 32, net::IPv4Address{10, 40, 0, 3}},
  };

  std::vector<std::unique_ptr<tcp::TcpHost>> edges;
  for (const auto& customer : customers) {
    tcp::StackConfig stack;
    stack.iw = tcp::IwConfig::segments_of(customer.iw);
    auto edge = std::make_unique<tcp::TcpHost>(network, customer.edge, stack, 5);
    http::WebConfig web;
    web.root = http::RootBehavior::VirtualHosted;
    web.canonical_name = customer.name;
    web.redirected_page_size = 64 * 1024;
    web.server_header = "GHost";
    edge->listen(80, http::HttpServerApp::factory(std::move(web)));
    network.attach(customer.edge, edge.get());
    edges.push_back(std::move(edge));
  }

  analysis::TextTable table({"edge IP", "customer (true IW)", "generic scan",
                             "curated-URL scan"});
  for (const auto& customer : customers) {
    const auto generic = probe(network, customer.edge, "");
    const auto curated = probe(network, customer.edge, customer.name);

    const auto describe = [](const core::HostScanRecord& record) {
      if (record.success()) return "IW " + std::to_string(record.iw_segments);
      if (record.outcome == core::HostOutcome::FewData) {
        return "few-data (bound >= " + std::to_string(record.lower_bound) + ")";
      }
      return std::string(to_string(record.outcome));
    };
    table.add_row({customer.edge.to_string(),
                   std::string(customer.name) + " (IW " +
                       std::to_string(customer.iw) + ")",
                   describe(generic), describe(curated)});
  }
  bench::print_table(table, flags.boolean("csv"));

  std::printf("\nGeneric scanning cannot assess virtualized services: without a\n"
              "valid Host name the edge serves a short error page, so only a\n"
              "lower bound is learned. With a curated URL list (the future work\n"
              "proposed in §5, implemented here as make_url_list_strategy) the\n"
              "per-customer IW configurations become measurable — reproducing\n"
              "the paper's manual finding of customized IW 16/32 at Akamai.\n");
  return 0;
}
