// Microbenchmarks (google-benchmark): the per-packet hot paths that bound
// the scanner's achievable rate (§3.4) — codec round trips, checksums,
// address-permutation iteration, event-loop throughput, the pooled fabric
// hop, and a single estimator connection end-to-end.
//
// `--json <path>` writes the results as JSON (items/bytes per second plus
// the allocs_per_packet counters) for the perf-tracking harness; see
// DESIGN.md §Performance for how CI compares runs against the committed
// baseline in BENCH_datapath.json.
#include <benchmark/benchmark.h>

#include <string>
#include <string_view>
#include <vector>

// This is the binary's one allocation-counting TU: every global operator
// new in the process increments util::alloc_stats::allocations(), which
// the datapath benchmarks report as allocs-per-packet counters.
#define IWSCAN_COUNT_ALLOCATIONS
#include "util/alloc_stats.hpp"

#include "core/estimator.hpp"
#include "httpd/http_server.hpp"
#include "inetmodel/censys_certs.hpp"
#include "netbase/checksum.hpp"
#include "netbase/packet.hpp"
#include "netsim/network.hpp"
#include "scanner/permutation.hpp"
#include "tcpstack/host.hpp"
#include "tls/cert.hpp"
#include "tls/handshake.hpp"
#include "util/rng.hpp"

namespace {

using namespace iwscan;

net::TcpSegment make_segment(std::size_t payload_size) {
  net::TcpSegment segment;
  segment.ip.src = net::IPv4Address{192, 0, 2, 1};
  segment.ip.dst = net::IPv4Address{10, 1, 2, 3};
  segment.tcp.src_port = 40000;
  segment.tcp.dst_port = 80;
  segment.tcp.seq = 12345;
  segment.tcp.ack = 67890;
  segment.tcp.flags = net::kAck | net::kPsh;
  segment.tcp.window = 65535;
  segment.tcp.options.push_back(net::MssOption{64});
  segment.payload.assign(payload_size, 0x41);
  return segment;
}

void BM_TcpSegmentEncode(benchmark::State& state) {
  const auto segment = make_segment(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::encode(segment));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          (40 + state.range(0)));
}
BENCHMARK(BM_TcpSegmentEncode)->Arg(0)->Arg(64)->Arg(536)->Arg(1460);

void BM_TcpSegmentDecode(benchmark::State& state) {
  const auto bytes = net::encode(make_segment(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::decode_datagram(bytes));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_TcpSegmentDecode)->Arg(0)->Arg(64)->Arg(536)->Arg(1460);

void BM_InternetChecksum(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::internet_checksum(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_InternetChecksum)->Arg(64)->Arg(1500)->Arg(65536);

void BM_PermutationNext(benchmark::State& state) {
  scan::RandomPermutation permutation(static_cast<std::uint64_t>(state.range(0)), 7);
  std::uint64_t index = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(permutation.permute(index));
    index = (index + 1) % permutation.domain_size();
  }
}
BENCHMARK(BM_PermutationNext)->Arg(1 << 16)->Arg(1 << 24)->Arg(1u << 31);

void BM_ClientHelloEncode(benchmark::State& state) {
  tls::ClientHello hello;
  const auto list = tls::probe_cipher_list();
  hello.cipher_suites.assign(list.begin(), list.end());
  hello.ocsp_stapling = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hello.encode());
  }
}
BENCHMARK(BM_ClientHelloEncode);

void BM_CertChainGenerate(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tls::make_chain(static_cast<std::size_t>(state.range(0)), "bench", 1));
  }
}
BENCHMARK(BM_CertChainGenerate)->Arg(640)->Arg(2186)->Arg(16384);

void BM_CertLengthSample(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::CertChainDistribution::sample(rng));
  }
}
BENCHMARK(BM_CertLengthSample);

void BM_EventLoopScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventLoop loop;
    int counter = 0;
    for (int i = 0; i < state.range(0); ++i) {
      loop.schedule(sim::usec(i), [&counter] { ++counter; });
    }
    loop.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventLoopScheduleRun)->Arg(1000)->Arg(100000);

void BM_NetworkPacketDelivery(benchmark::State& state) {
  // One steady-state fabric hop per iteration: encode into a pooled
  // buffer, inject, and deliver. allocs_per_packet is the tentpole's
  // zero-allocation claim, measured: once slab chunks and pool buffers
  // are warm, a packet should cross the fabric without touching the
  // allocator.
  struct Sink final : sim::Endpoint {
    std::uint64_t received = 0;
    void handle_packet(net::PacketView bytes) override {
      benchmark::DoNotOptimize(bytes.data());
      ++received;
    }
  };
  sim::EventLoop loop;
  sim::Network network(loop, 1);
  Sink sink;
  network.attach(net::IPv4Address{10, 1, 2, 3}, &sink);
  const auto segment = make_segment(static_cast<std::size_t>(state.range(0)));
  net::Bytes scratch;
  net::encode_into(segment, scratch);
  const std::size_t wire_size = scratch.size();

  // Warm the pool and slab so the counted window is steady state.
  for (int i = 0; i < 16; ++i) {
    net::PacketBuf warm = network.pool().acquire();
    net::encode_into(segment, warm.bytes());
    network.send(std::move(warm));
  }
  loop.run();

  std::uint64_t packets = 0;
  const std::uint64_t allocs_before = util::alloc_stats::allocations();
  for (auto _ : state) {
    net::PacketBuf buf = network.pool().acquire();
    net::encode_into(segment, buf.bytes());
    network.send(std::move(buf));
    loop.run();
    ++packets;
  }
  const std::uint64_t allocs = util::alloc_stats::allocations() - allocs_before;
  state.counters["allocs_per_packet"] =
      packets == 0 ? 0.0
                   : static_cast<double>(allocs) / static_cast<double>(packets);
  state.SetItemsProcessed(static_cast<std::int64_t>(packets));
  state.SetBytesProcessed(static_cast<std::int64_t>(packets * wire_size));
  benchmark::DoNotOptimize(sink.received);
}
BENCHMARK(BM_NetworkPacketDelivery)->Arg(0)->Arg(536)->Arg(1460);

void BM_EstimatorConnection(benchmark::State& state) {
  // One complete Fig.-1 estimation against an IW10 host, end to end.
  struct Services final : scan::SessionServices, sim::Endpoint {
    sim::Network& network;
    std::function<void(const net::Datagram&)> handler;
    std::uint16_t port = 40000;
    std::uint64_t seed = 5;
    explicit Services(sim::Network& n) : network(n) {}
    void handle_packet(net::PacketView bytes) override {
      const auto d = net::decode_datagram(bytes);
      if (d && handler) handler(*d);
    }
    void send_packet(net::Bytes bytes) override { network.send(std::move(bytes)); }
    sim::EventLoop& loop() override { return network.loop(); }
    net::IPv4Address scanner_address() const override {
      return net::IPv4Address{192, 0, 2, 1};
    }
    std::uint16_t allocate_port(net::IPv4Address) override { return port++; }
    std::uint64_t session_seed(net::IPv4Address) override { return seed += 12345; }
  };

  std::uint64_t connections = 0;
  const std::uint64_t allocs_before = util::alloc_stats::allocations();
  for (auto _ : state) {
    sim::EventLoop loop;
    sim::Network network(loop, 3);
    tcp::StackConfig stack;
    stack.iw = tcp::IwConfig::segments_of(10);
    tcp::TcpHost host(network, net::IPv4Address{10, 0, 0, 1}, stack, 3);
    http::WebConfig web;
    web.page_size = 16'000;
    host.listen(80, http::HttpServerApp::factory(web));
    network.attach(net::IPv4Address{10, 0, 0, 1}, &host);

    Services services(network);
    network.attach(services.scanner_address(), &services);
    bool done = false;
    core::EstimatorConfig config;
    core::IwEstimator estimator(
        services, net::IPv4Address{10, 0, 0, 1}, 80, config,
        net::to_bytes("GET / HTTP/1.1\r\nHost: 10.0.0.1\r\nConnection: close\r\n\r\n"),
        [&](const core::ConnObservation&) { done = true; });
    services.handler = [&](const net::Datagram& d) { estimator.on_datagram(d); };
    estimator.start();
    while (!done && loop.step()) {
    }
    benchmark::DoNotOptimize(done);
    ++connections;
  }
  const std::uint64_t allocs = util::alloc_stats::allocations() - allocs_before;
  state.counters["allocs_per_conn"] =
      connections == 0
          ? 0.0
          : static_cast<double>(allocs) / static_cast<double>(connections);
}
BENCHMARK(BM_EstimatorConnection);

}  // namespace

int main(int argc, char** argv) {
  // `--json <path>` / `--json=<path>` is the stable perf-harness interface;
  // it maps onto google-benchmark's file reporter so CI scripts do not
  // depend on gbench flag spellings.
  std::vector<char*> args;
  std::string out_flag;
  std::string format_flag = "--benchmark_out_format=json";
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      out_flag = std::string("--benchmark_out=") + argv[i + 1];
      ++i;
    } else if (arg.starts_with("--json=")) {
      out_flag = std::string("--benchmark_out=") + (argv[i] + 7);
    } else {
      args.push_back(argv[i]);
    }
  }
  if (!out_flag.empty()) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
