// Microbenchmarks (google-benchmark): the per-packet hot paths that bound
// the scanner's achievable rate (§3.4) — codec round trips, checksums,
// address-permutation iteration, event-loop throughput, and a single
// estimator connection end-to-end.
#include <benchmark/benchmark.h>

#include "core/estimator.hpp"
#include "httpd/http_server.hpp"
#include "inetmodel/censys_certs.hpp"
#include "netbase/checksum.hpp"
#include "netbase/packet.hpp"
#include "netsim/network.hpp"
#include "scanner/permutation.hpp"
#include "tcpstack/host.hpp"
#include "tls/cert.hpp"
#include "tls/handshake.hpp"
#include "util/rng.hpp"

namespace {

using namespace iwscan;

net::TcpSegment make_segment(std::size_t payload_size) {
  net::TcpSegment segment;
  segment.ip.src = net::IPv4Address{192, 0, 2, 1};
  segment.ip.dst = net::IPv4Address{10, 1, 2, 3};
  segment.tcp.src_port = 40000;
  segment.tcp.dst_port = 80;
  segment.tcp.seq = 12345;
  segment.tcp.ack = 67890;
  segment.tcp.flags = net::kAck | net::kPsh;
  segment.tcp.window = 65535;
  segment.tcp.options.push_back(net::MssOption{64});
  segment.payload.assign(payload_size, 0x41);
  return segment;
}

void BM_TcpSegmentEncode(benchmark::State& state) {
  const auto segment = make_segment(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::encode(segment));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          (40 + state.range(0)));
}
BENCHMARK(BM_TcpSegmentEncode)->Arg(0)->Arg(64)->Arg(536)->Arg(1460);

void BM_TcpSegmentDecode(benchmark::State& state) {
  const auto bytes = net::encode(make_segment(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::decode_datagram(bytes));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_TcpSegmentDecode)->Arg(0)->Arg(64)->Arg(536)->Arg(1460);

void BM_InternetChecksum(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::internet_checksum(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_InternetChecksum)->Arg(64)->Arg(1500)->Arg(65536);

void BM_PermutationNext(benchmark::State& state) {
  scan::RandomPermutation permutation(static_cast<std::uint64_t>(state.range(0)), 7);
  std::uint64_t index = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(permutation.permute(index));
    index = (index + 1) % permutation.domain_size();
  }
}
BENCHMARK(BM_PermutationNext)->Arg(1 << 16)->Arg(1 << 24)->Arg(1u << 31);

void BM_ClientHelloEncode(benchmark::State& state) {
  tls::ClientHello hello;
  const auto list = tls::probe_cipher_list();
  hello.cipher_suites.assign(list.begin(), list.end());
  hello.ocsp_stapling = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hello.encode());
  }
}
BENCHMARK(BM_ClientHelloEncode);

void BM_CertChainGenerate(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tls::make_chain(static_cast<std::size_t>(state.range(0)), "bench", 1));
  }
}
BENCHMARK(BM_CertChainGenerate)->Arg(640)->Arg(2186)->Arg(16384);

void BM_CertLengthSample(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::CertChainDistribution::sample(rng));
  }
}
BENCHMARK(BM_CertLengthSample);

void BM_EventLoopScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventLoop loop;
    int counter = 0;
    for (int i = 0; i < state.range(0); ++i) {
      loop.schedule(sim::usec(i), [&counter] { ++counter; });
    }
    loop.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventLoopScheduleRun)->Arg(1000)->Arg(100000);

void BM_EstimatorConnection(benchmark::State& state) {
  // One complete Fig.-1 estimation against an IW10 host, end to end.
  struct Services final : scan::SessionServices, sim::Endpoint {
    sim::Network& network;
    std::function<void(const net::Datagram&)> handler;
    std::uint16_t port = 40000;
    std::uint64_t seed = 5;
    explicit Services(sim::Network& n) : network(n) {}
    void handle_packet(const net::Bytes& bytes) override {
      const auto d = net::decode_datagram(bytes);
      if (d && handler) handler(*d);
    }
    void send_packet(net::Bytes bytes) override { network.send(std::move(bytes)); }
    sim::EventLoop& loop() override { return network.loop(); }
    net::IPv4Address scanner_address() const override {
      return net::IPv4Address{192, 0, 2, 1};
    }
    std::uint16_t allocate_port(net::IPv4Address) override { return port++; }
    std::uint64_t session_seed(net::IPv4Address) override { return seed += 12345; }
  };

  for (auto _ : state) {
    sim::EventLoop loop;
    sim::Network network(loop, 3);
    tcp::StackConfig stack;
    stack.iw = tcp::IwConfig::segments_of(10);
    tcp::TcpHost host(network, net::IPv4Address{10, 0, 0, 1}, stack, 3);
    http::WebConfig web;
    web.page_size = 16'000;
    host.listen(80, http::HttpServerApp::factory(web));
    network.attach(net::IPv4Address{10, 0, 0, 1}, &host);

    Services services(network);
    network.attach(services.scanner_address(), &services);
    bool done = false;
    core::EstimatorConfig config;
    core::IwEstimator estimator(
        services, net::IPv4Address{10, 0, 0, 1}, 80, config,
        net::to_bytes("GET / HTTP/1.1\r\nHost: 10.0.0.1\r\nConnection: close\r\n\r\n"),
        [&](const core::ConnObservation&) { done = true; });
    services.handler = [&](const net::Datagram& d) { estimator.on_datagram(d); };
    estimator.start();
    while (!done && loop.step()) {
    }
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_EstimatorConnection);

}  // namespace

BENCHMARK_MAIN();
