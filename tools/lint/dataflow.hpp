// Per-function dataflow layer: the intra-procedural half of iwlint's
// whole-program analysis, built on the shared symbol index (symbols.hpp).
//
// Two rule families run here:
//
//   wire-taint               values read off the wire (WireReader::u8/u16/
//                            u24/u32, subscripts into byte-span parameters,
//                            decoded header length fields) are tainted; a
//                            tainted value may not flow through local
//                            assignments and arithmetic into a container
//                            resize/reserve, a subscript index, a span
//                            slice, a loop bound, or a WireWriter patch
//                            offset until a sanitizing guard intervenes
//                            (WireReader::require, a comparison against a
//                            size()/remaining() bound or a constant, or a
//                            std::min/std::clamp). Findings print the
//                            def→use chain the same way hot-path prints
//                            call chains.
//   concurrency-confinement  thread creation lives in src/exec/thread_pool
//                            only; mutexes, atomics, and thread_local live
//                            in src/exec/ only; std::future/promise/async
//                            and friends are banned everywhere (the only
//                            cross-thread hand-off type is
//                            exec::BoundedChannel); mutable namespace-scope
//                            state is banned tree-wide.
//
// The taint analysis is a single linear forward pass per function body over
// the token stream: statement-level, flow-insensitive across branches, no
// fixpoint over loop back-edges, no aliasing, no inter-procedural flow (an
// out-parameter written by a callee comes back clean). Those blind spots
// are deliberate — they keep the whole-tree run inside the two-second
// budget — and are documented in DESIGN.md §9.
#pragma once

#include <cstddef>
#include <vector>

#include "iwlint.hpp"
#include "symbols.hpp"
#include "tokens.hpp"

namespace iwscan::lint {

/// Size of the dataflow analysis, for --json visibility.
struct DataflowStats {
  std::size_t functions = 0;      // function bodies analyzed
  std::size_t taint_sources = 0;  // wire reads observed introducing taint
  std::size_t taint_sinks = 0;    // sink sites checked
  std::size_t taint_guards = 0;   // sanitization events
};

/// Run both intra-procedural rule families over the src/ subset of
/// `files`, appending raw findings (suppressions are applied by the
/// caller). `scans` is the per-file tokenization parallel to `files`;
/// `symbols` the index built by extract_symbols over the same vectors.
void run_dataflow_rules(const std::vector<SourceFile>& files,
                        const std::vector<ScanResult>& scans,
                        const SymbolTable& symbols,
                        std::vector<Finding>& findings, DataflowStats* stats);

}  // namespace iwscan::lint
