// iwlint — project-specific static analyzer for the iwscan tree.
//
// Enforces the invariants no generic tool checks: the module DAG from
// DESIGN.md §3 (keeps the ZMap-style engine swappable), the byte/text
// bridge discipline of util/bytes.hpp, banned libc calls, wire-enum switch
// exhaustiveness, header hygiene, and seeded-determinism rules. Findings
// print as `file:line: rule: message`; every rule supports an inline
// suppression comment — the iwlint marker, then "allow(<rule>) -- <reason>",
// justification mandatory. See DESIGN.md "iwlint rule reference".
//
// Self-contained C++20: a small tokenizer + include-graph walker + rule
// engine. No libclang; the whole tree lints in well under a second.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace iwscan::lint {

struct Finding {
  std::string file;  // repo-relative path, '/'-separated
  int line = 0;
  std::string rule;
  std::string message;
};

struct Options {
  // Rules to skip entirely (fixture tests use this to prove each rule is
  // load-bearing). Names as in rule_names().
  std::vector<std::string> disabled_rules;
};

/// All rule identifiers accepted by suppression comments and --disable.
[[nodiscard]] const std::vector<std::string>& rule_names();

/// Lint one translation unit. `path` must be repo-relative with forward
/// slashes (e.g. "src/netbase/wire.hpp"); rules key off the path to decide
/// module membership and allowlists.
[[nodiscard]] std::vector<Finding> lint_source(std::string_view path,
                                               std::string_view source,
                                               const Options& options = {});

/// Recursively lint every .hpp/.cpp under root/<dir> for each dir, sorted
/// for deterministic output. tests/lint/fixtures is skipped — its snippets
/// violate rules on purpose. I/O failures append to *io_errors.
[[nodiscard]] std::vector<Finding> lint_tree(const std::string& root,
                                             const std::vector<std::string>& dirs,
                                             const Options& options,
                                             std::vector<std::string>* io_errors);

[[nodiscard]] std::string format_text(const Finding& finding);
[[nodiscard]] std::string format_json(const std::vector<Finding>& findings);

}  // namespace iwscan::lint
