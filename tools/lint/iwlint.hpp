// iwlint — project-specific static analyzer for the iwscan tree.
//
// Enforces the invariants no generic tool checks: the module DAG from
// DESIGN.md §3 (keeps the ZMap-style engine swappable), the byte/text
// bridge discipline of util/bytes.hpp, banned libc calls, wire-enum switch
// exhaustiveness, header hygiene, and seeded-determinism rules. Findings
// print as `file:line: rule: message`; every rule supports an inline
// suppression comment — the iwlint marker, then "allow(<rule>) -- <reason>",
// justification mandatory. See DESIGN.md "iwlint rule reference".
//
// Self-contained C++20: a small tokenizer (tokens.hpp) + include-graph
// walker + per-TU rule engine, plus a cross-TU call-graph layer
// (callgraph.hpp) for the hot-path purity and determinism-taint rules.
// No libclang; the whole tree lints in well under two seconds.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace iwscan::lint {

struct Finding {
  std::string file;  // repo-relative path, '/'-separated
  int line = 0;
  std::string rule;
  std::string message;
};

struct Options {
  // Rules to skip entirely (fixture tests use this to prove each rule is
  // load-bearing). Names as in rule_names().
  std::vector<std::string> disabled_rules;
};

/// One translation unit handed to the whole-program entry point. `path`
/// is repo-relative with forward slashes; only "src/..." files join the
/// call graph, everything still gets the per-TU rules.
struct SourceFile {
  std::string path;
  std::string content;
};

struct ProgramStats;  // callgraph.hpp

/// All rule identifiers accepted by suppression comments and --disable.
[[nodiscard]] const std::vector<std::string>& rule_names();

/// One-paragraph rationale for a rule (the DESIGN.md §9 text), or empty
/// if the name is unknown. Drives the CLI's --explain flag.
[[nodiscard]] std::string_view rule_explanation(std::string_view rule);

/// Lint one translation unit with the per-TU rules only. `path` must be
/// repo-relative with forward slashes (e.g. "src/netbase/wire.hpp"); rules
/// key off the path to decide module membership and allowlists. The
/// cross-TU rules (hot-path, determinism-taint) need the whole program and
/// only run under lint_files/lint_tree.
[[nodiscard]] std::vector<Finding> lint_source(std::string_view path,
                                               std::string_view source,
                                               const Options& options = {});

/// Whole-program lint: per-TU rules on every file plus the cross-TU
/// call-graph rules over the src/ subset. Findings are sorted by
/// (file, line, rule, message); inline suppressions apply to both layers.
[[nodiscard]] std::vector<Finding> lint_files(const std::vector<SourceFile>& files,
                                              const Options& options = {},
                                              ProgramStats* stats = nullptr);

/// Recursively lint every .hpp/.cpp under root/<dir> for each dir, sorted
/// for deterministic output. tests/lint/fixtures is skipped — its snippets
/// violate rules on purpose. I/O failures append to *io_errors.
[[nodiscard]] std::vector<Finding> lint_tree(const std::string& root,
                                             const std::vector<std::string>& dirs,
                                             const Options& options,
                                             std::vector<std::string>* io_errors,
                                             ProgramStats* stats = nullptr);

[[nodiscard]] std::string format_text(const Finding& finding);
[[nodiscard]] std::string format_json(const std::vector<Finding>& findings);

/// SARIF 2.1.0 log for GitHub code scanning: one run, one result per
/// finding (level "error", repo-relative uri under %SRCROOT%), with every
/// registered rule and its --explain text in the tool.driver.rules table.
[[nodiscard]] std::string format_sarif(const std::vector<Finding>& findings);

}  // namespace iwscan::lint
