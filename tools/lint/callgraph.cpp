#include "callgraph.hpp"

#include <algorithm>
#include <array>
#include <deque>
#include <map>
#include <set>
#include <string>

namespace iwscan::lint {
namespace {

// ---------------------------------------------------------------------------
// Fact vocabulary: what a function body can do that the reachability rules
// care about. Hot-path purity consumes the first six; determinism taint
// consumes the last two.
// ---------------------------------------------------------------------------

enum class FactKind {
  Alloc,      // new / make_unique / make_shared / to_string / malloc family
  Growth,     // .push_back() and friends — container growth idioms
  Lock,       // mutex/lock_guard construction, .lock()/.try_lock()
  Blocking,   // sleep_for / poll / select style blocking calls
  Throw,      // throw expression
  Iostream,   // iostream objects, fstream/stringstream, printf family
  Entropy,    // std::random_device, srand, rand()
  WallClock,  // *_clock::now(), time(), clock_gettime, gettimeofday
};

[[nodiscard]] std::string_view fact_label(FactKind kind) {
  switch (kind) {
    case FactKind::Alloc: return "heap allocation";
    case FactKind::Growth: return "container growth";
    case FactKind::Lock: return "lock acquisition";
    case FactKind::Blocking: return "blocking call";
    case FactKind::Throw: return "throw";
    case FactKind::Iostream: return "stdio/iostream I/O";
    case FactKind::Entropy: return "entropy source";
    case FactKind::WallClock: return "wall-clock read";
  }
  return "violation";
}

template <std::size_t N>
[[nodiscard]] bool in(const std::array<std::string_view, N>& set,
                      std::string_view text) {
  return std::find(set.begin(), set.end(), text) != set.end();
}

constexpr std::array<std::string_view, 8> kAllocCalls = {
    "make_unique", "make_shared", "to_string", "malloc",
    "calloc",      "realloc",     "aligned_alloc", "strdup"};

constexpr std::array<std::string_view, 12> kGrowthMethods = {
    "push_back", "emplace_back", "push_front",       "emplace_front",
    "insert",    "emplace",      "try_emplace",      "resize",
    "reserve",   "append",       "insert_or_assign", "assign"};

constexpr std::array<std::string_view, 6> kLockTypes = {
    "lock_guard", "unique_lock",        "scoped_lock",
    "shared_lock", "condition_variable", "condition_variable_any"};

constexpr std::array<std::string_view, 9> kBlockingCalls = {
    "sleep_for", "sleep_until", "usleep", "nanosleep", "poll",
    "select",    "epoll_wait",  "fsync",  "fdatasync"};

constexpr std::array<std::string_view, 20> kIostreamIdents = {
    "cout",  "cerr",  "clog",  "wcout",        "wcerr",
    "ifstream", "ofstream", "fstream", "stringstream", "ostringstream",
    "istringstream", "printf", "fprintf", "vfprintf", "puts",
    "fputs", "fputc", "fwrite", "fopen",  "getline"};

constexpr std::array<std::string_view, 3> kBannedClocks = {
    "steady_clock", "system_clock", "high_resolution_clock"};

constexpr std::array<std::string_view, 4> kWallClockCalls = {
    "clock_gettime", "gettimeofday", "localtime", "gmtime"};

// Identifiers that precede '(' without being calls, plus type keywords that
// show up in function-pointer declarators. 'new'/'delete' are here so the
// replacement operator new in util/alloc_stats.hpp is not indexed as a
// callable named "new": allocation is reported as a fact at the expression
// site, and placement new (which never enters operator new) stays silent.
constexpr std::array<std::string_view, 35> kNotACall = {
    "if",       "for",        "while",     "switch",     "catch",
    "return",   "sizeof",     "alignof",   "alignas",    "decltype",
    "typeid",   "noexcept",   "static_assert", "defined", "delete",
    "new",      "co_await",   "co_yield",  "co_return",  "requires",
    "constexpr", "consteval", "constinit", "operator",   "void",
    "int",      "char",       "bool",      "float",      "double",
    "auto",     "unsigned",   "signed",    "long",       "short"};

// ---------------------------------------------------------------------------
// Symbol extraction: one pass over a file's tokens builds the function
// definitions (with their local facts and call sites) plus the annotation
// sets. Scope tracking is brace-based: namespaces and classes push named
// scopes, function bodies push a function scope, and every other '{'
// (lambdas, control flow) pushes an anonymous block — which is exactly the
// fold-lambdas-into-their-enclosing-function semantics the rules want.
// ---------------------------------------------------------------------------

struct Fact {
  FactKind kind;
  int line;
  std::string token;  // what matched, for the message
};

struct FunctionDef {
  std::string qualified;  // scope-joined, e.g. "iwscan::sim::Network::send"
  std::string display;    // short form for chains, e.g. "Network::send"
  std::string last;       // unqualified name, the call-edge key
  std::string file;
  int line = 0;
  bool hot = false;
  bool noreturn = false;
  std::vector<Fact> facts;
  std::set<std::string> callees;  // unqualified callee names, deduplicated
};

struct ExtractOut {
  std::vector<FunctionDef> defs;
  std::set<std::string> hot_qualified;       // IWSCAN_HOT on declarations
  std::set<std::string> noreturn_qualified;  // [[noreturn]] on declarations
  std::set<std::string> boundary_last;       // IWSCAN_HOT_BOUNDARY names
  std::set<std::string> boundary_qualified;  // ... and qualified forms
};

class Extractor {
 public:
  Extractor(std::string_view path, const ScanResult& scan, ExtractOut& out)
      : path_(path), t_(scan.tokens), out_(out) {}

  void run() {
    while (i_ < t_.size()) step();
  }

 private:
  struct Scope {
    enum class Kind { Namespace, Class, Function, Block };
    Kind kind;
    std::string name;  // empty for blocks and anonymous namespaces
    int open_depth;    // brace depth just after the opening '{'
    int func = -1;     // defs index for Kind::Function
  };

  [[nodiscard]] const Token& tok(std::size_t i) const { return t_[i]; }
  [[nodiscard]] bool is(std::size_t i, std::string_view text) const {
    return i < t_.size() && t_[i].text == text;
  }
  [[nodiscard]] bool ident(std::size_t i) const {
    return i < t_.size() && t_[i].kind == TokKind::Ident;
  }

  [[nodiscard]] int current_function() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::Kind::Function) return it->func;
    }
    return -1;
  }

  void reset_pending() {
    pending_hot_ = false;
    pending_boundary_ = false;
    pending_noreturn_ = false;
  }

  void open_block() {
    ++depth_;
    scopes_.push_back({Scope::Kind::Block, "", depth_, -1});
  }

  void close_brace() {
    --depth_;
    if (!scopes_.empty() && scopes_.back().open_depth == depth_ + 1) {
      scopes_.pop_back();
    }
    reset_pending();
  }

  /// Index just past the matching closer, or t_.size() if unbalanced.
  [[nodiscard]] std::size_t skip_balanced(std::size_t open, std::string_view o,
                                          std::string_view c) const {
    int d = 0;
    for (std::size_t j = open; j < t_.size(); ++j) {
      if (t_[j].text == o) ++d;
      if (t_[j].text == c && --d == 0) return j + 1;
    }
    return t_.size();
  }

  [[nodiscard]] std::string scope_prefix() const {
    std::string joined;
    for (const auto& scope : scopes_) {
      if (scope.name.empty()) continue;
      if (!joined.empty()) joined += "::";
      joined += scope.name;
    }
    return joined;
  }

  /// Walk back over `A::B::` qualifiers from the name token at `i`.
  /// Returns the chain start index (and notes a leading '~').
  [[nodiscard]] std::size_t chain_start(std::size_t i) const {
    std::size_t j = i;
    while (j >= 2 && t_[j - 1].text == "::" && t_[j - 2].kind == TokKind::Ident) {
      j -= 2;
    }
    return j;
  }

  [[nodiscard]] std::string chain_text(std::size_t start, std::size_t i) const {
    std::string name;
    if (start >= 1 && t_[start - 1].text == "~") name = "~";
    for (std::size_t j = start; j <= i; ++j) {
      name += t_[j].text;
    }
    return name;
  }

  [[nodiscard]] bool member_access_before(std::size_t i) const {
    if (i == 0) return false;
    if (t_[i - 1].text == ".") return true;
    return i >= 2 && t_[i - 1].text == ">" && t_[i - 2].text == "-";
  }

  void add_fact(FactKind kind, int line, std::string token) {
    const int f = current_function();
    if (f < 0) return;
    out_.defs[static_cast<std::size_t>(f)].facts.push_back(
        {kind, line, std::move(token)});
  }

  void add_callee(std::string name) {
    const int f = current_function();
    if (f < 0) return;
    out_.defs[static_cast<std::size_t>(f)].callees.insert(std::move(name));
  }

  // ---- constructs -----------------------------------------------------

  void handle_namespace() {
    std::size_t j = i_ + 1;
    std::string name;
    while (j < t_.size() && (t_[j].kind == TokKind::Ident || t_[j].text == "::")) {
      name += t_[j].text;
      ++j;
    }
    if (is(j, "=")) {  // namespace alias
      while (j < t_.size() && t_[j].text != ";") ++j;
      i_ = j + 1;
      return;
    }
    if (is(j, "{")) {
      ++depth_;
      scopes_.push_back({Scope::Kind::Namespace, name, depth_, -1});
      i_ = j + 1;
      return;
    }
    i_ = j;
  }

  void handle_class() {
    // `template <class T>` type parameters are not class definitions.
    if (i_ > 0 && (t_[i_ - 1].text == "<" || t_[i_ - 1].text == ",")) {
      ++i_;
      return;
    }
    std::size_t j = i_ + 1;
    while (is(j, "[")) j = skip_balanced(j, "[", "]");  // [[attributes]]
    std::string name;
    if (ident(j)) {
      name = t_[j].text;
      ++j;
    }
    while (j < t_.size() && t_[j].text != "{" && t_[j].text != ";") ++j;
    if (is(j, "{")) {
      ++depth_;
      scopes_.push_back({Scope::Kind::Class, name, depth_, -1});
      i_ = j + 1;
      return;
    }
    i_ = (j < t_.size()) ? j + 1 : j;  // forward declaration
  }

  void handle_enum() {
    std::size_t j = i_ + 1;
    while (j < t_.size() && t_[j].text != "{" && t_[j].text != ";") ++j;
    if (is(j, "{")) {
      i_ = skip_balanced(j, "{", "}");  // enumerators hold no code the rules see
      return;
    }
    i_ = (j < t_.size()) ? j + 1 : j;
  }

  /// Ident followed by '(' inside a function body: a call site, possibly
  /// also a fact (growth idiom, blocking call, entropy draw, ...).
  void handle_call(std::size_t i) {
    const std::string_view name = t_[i].text;
    const int line = t_[i].line;
    if (member_access_before(i)) {
      if (in(kGrowthMethods, name)) add_fact(FactKind::Growth, line, "." + std::string(name));
      if (name == "lock" || name == "try_lock") {
        add_fact(FactKind::Lock, line, "." + std::string(name));
      }
      add_callee(std::string(name));
      ++i_;
      return;
    }
    const std::size_t start = chain_start(i);
    const bool std_qualified = start < i && t_[start].text == "std";
    if (in(kBlockingCalls, name)) add_fact(FactKind::Blocking, line, std::string(name));
    if (in(kAllocCalls, name)) add_fact(FactKind::Alloc, line, std::string(name));
    if (in(kWallClockCalls, name)) add_fact(FactKind::WallClock, line, std::string(name));
    if (!std_qualified && (name == "rand" || name == "time")) {
      // A call site, not a declaration whose name merely collides (same
      // heuristic as the per-TU banned-call rule).
      const bool qualified_elsewhere =
          start < i || (i >= 1 && t_[i - 1].text == "::");
      const bool after_ident = i >= 1 && t_[i - 1].kind == TokKind::Ident &&
                               t_[i - 1].text != "return" && t_[i - 1].text != "case" &&
                               t_[i - 1].text != "else" && t_[i - 1].text != "do";
      if (!qualified_elsewhere && !after_ident) {
        add_fact(name == "rand" ? FactKind::Entropy : FactKind::WallClock, line,
                 std::string(name));
      }
    }
    if (name == "srand") add_fact(FactKind::Entropy, line, "srand");
    if (!std_qualified && !in(kNotACall, name)) add_callee(std::string(name));
    ++i_;
  }

  /// Plain identifier facts inside a function body (no '(' required).
  void handle_body_ident(std::size_t i) {
    const std::string_view name = t_[i].text;
    const int line = t_[i].line;
    if (name == "throw") {
      add_fact(FactKind::Throw, line, "throw");
    } else if (name == "new") {
      // `new (place) T` is placement construction into existing storage
      // (util::InlineFn's slot emplace); `new T` / `new T[n]` allocates.
      if (!is(i + 1, "(")) add_fact(FactKind::Alloc, line, "new");
    } else if (in(kLockTypes, name)) {
      add_fact(FactKind::Lock, line, std::string(name));
    } else if (in(kIostreamIdents, name)) {
      add_fact(FactKind::Iostream, line, std::string(name));
    } else if (name == "random_device") {
      add_fact(FactKind::Entropy, line, "random_device");
    } else if (in(kBannedClocks, name) && is(i + 1, "::") && is(i + 2, "now")) {
      add_fact(FactKind::WallClock, line, std::string(name) + "::now");
    }
    ++i_;
  }

  /// Ident followed by '(' at namespace/class scope: try to parse a
  /// function declaration or definition. Returns having advanced i_.
  void handle_candidate(std::size_t i) {
    const std::string_view name = t_[i].text;
    if (in(kNotACall, name)) {
      ++i_;
      return;
    }
    const std::size_t start = chain_start(i);
    const std::size_t params_open = i + 1;
    const std::size_t after_params = skip_balanced(params_open, "(", ")");
    if (after_params >= t_.size()) {
      ++i_;
      return;
    }

    std::size_t j = after_params;
    // Specifier run: const/noexcept/override/final/try, noexcept(...),
    // trailing return types.
    while (j < t_.size()) {
      const std::string_view text = t_[j].text;
      if (text == "const" || text == "override" || text == "final" ||
          text == "mutable" || text == "try") {
        ++j;
        continue;
      }
      if (text == "noexcept") {
        ++j;
        if (is(j, "(")) j = skip_balanced(j, "(", ")");
        continue;
      }
      if (text == "-" && is(j + 1, ">")) {  // trailing return type
        j += 2;
        while (j < t_.size() && t_[j].text != "{" && t_[j].text != ";" &&
               t_[j].text != "=") {
          ++j;
        }
        continue;
      }
      break;
    }

    bool is_definition = false;
    bool is_declaration = false;
    std::size_t body_open = t_.size();
    if (is(j, "{")) {
      is_definition = true;
      body_open = j;
    } else if (is(j, ";")) {
      is_declaration = true;
    } else if (is(j, "=")) {
      // `= default; / = delete; / = 0;` — declarations all.
      if ((is(j + 1, "default") || is(j + 1, "delete") || is(j + 1, "0")) &&
          is(j + 2, ";")) {
        is_declaration = true;
        j += 2;
      }
    } else if (is(j, ":") ) {
      // Constructor initializer list: members followed by (...) or {...},
      // comma-separated; the first unconsumed '{' after an initializer is
      // the body.
      ++j;
      while (j < t_.size()) {
        while (j < t_.size() && t_[j].text != "(" && t_[j].text != "{" &&
               t_[j].text != ";" && t_[j].text != "}") {
          ++j;
        }
        if (!is(j, "(") && !is(j, "{")) break;
        j = skip_balanced(j, t_[j].text, t_[j].text == "(" ? ")" : "}");
        if (is(j, ",")) {
          ++j;
          continue;
        }
        if (is(j, "{")) {
          is_definition = true;
          body_open = j;
        }
        break;
      }
    }

    if (!is_definition && !is_declaration) {
      ++i_;
      return;
    }

    std::string chain = chain_text(start, i);
    std::string qualified = scope_prefix();
    if (!qualified.empty() && !chain.empty()) qualified += "::";
    qualified += chain;

    if (is_declaration) {
      if (pending_hot_) out_.hot_qualified.insert(qualified);
      if (pending_noreturn_) out_.noreturn_qualified.insert(qualified);
      if (pending_boundary_) {
        out_.boundary_last.insert(std::string(name));
        out_.boundary_qualified.insert(qualified);
      }
      reset_pending();
      i_ = j + 1;
      return;
    }

    FunctionDef def;
    def.qualified = std::move(qualified);
    def.last = std::string(name);
    def.file = std::string(path_);
    def.line = t_[i].line;
    def.hot = pending_hot_;
    def.noreturn = pending_noreturn_;
    // Display name: the last two segments ("Class::method") read well in
    // chains without the namespace noise.
    {
      const std::string& q = def.qualified;
      std::size_t cut = std::string::npos;
      const std::size_t last_sep = q.rfind("::");
      if (last_sep != std::string::npos && last_sep > 0) {
        cut = q.rfind("::", last_sep - 1);
      }
      def.display = (cut == std::string::npos) ? q : q.substr(cut + 2);
    }
    if (pending_boundary_) {
      out_.boundary_last.insert(def.last);
      out_.boundary_qualified.insert(def.qualified);
    }
    reset_pending();
    out_.defs.push_back(std::move(def));

    ++depth_;
    scopes_.push_back({Scope::Kind::Function, "", depth_,
                       static_cast<int>(out_.defs.size()) - 1});
    i_ = body_open + 1;
  }

  void step() {
    const Token& t = t_[i_];
    if (t.kind == TokKind::Punct) {
      if (t.text == "{") {
        open_block();
        ++i_;
        return;
      }
      if (t.text == "}") {
        close_brace();
        ++i_;
        return;
      }
      if (t.text == ";") reset_pending();
      ++i_;
      return;
    }
    if (t.kind != TokKind::Ident) {
      ++i_;
      return;
    }

    const std::string_view text = t.text;
    if (text == "IWSCAN_HOT") {
      pending_hot_ = true;
      ++i_;
      return;
    }
    if (text == "IWSCAN_HOT_BOUNDARY") {
      pending_boundary_ = true;
      ++i_;
      return;
    }
    if (text == "noreturn") {
      pending_noreturn_ = true;
      ++i_;
      return;
    }

    const bool in_fn = current_function() >= 0;
    if (!in_fn) {
      if (text == "namespace") {
        handle_namespace();
        return;
      }
      if (text == "class" || text == "struct" || text == "union") {
        handle_class();
        return;
      }
      if (text == "enum") {
        handle_enum();
        return;
      }
      if (is(i_ + 1, "(")) {
        handle_candidate(i_);
        return;
      }
      ++i_;
      return;
    }
    if (is(i_ + 1, "(") && !in(kNotACall, text)) {
      handle_call(i_);
      return;
    }
    handle_body_ident(i_);
  }

  std::string_view path_;
  const std::vector<Token>& t_;
  ExtractOut& out_;
  std::size_t i_ = 0;
  int depth_ = 0;
  std::vector<Scope> scopes_;
  bool pending_hot_ = false;
  bool pending_boundary_ = false;
  bool pending_noreturn_ = false;
};

// ---------------------------------------------------------------------------
// Reachability: worklist BFS with parent tracking (cycle-tolerant — a
// visited function is never re-expanded, so recursion and mutual recursion
// converge). Determinism: defs are sorted by (file, line) before indexing
// and adjacency lists preserve that order.
// ---------------------------------------------------------------------------

struct Graph {
  std::vector<FunctionDef> defs;
  std::map<std::string, std::vector<int>, std::less<>> by_last;
  std::set<std::string> boundary_last;
  std::set<std::string> boundary_qualified;
};

/// BFS from `roots`. `traverse(def)` gates whether a reached definition is
/// expanded (its callees followed) — facts are still collected for any
/// visited def the caller keeps. Returns parent indices (-1 for roots),
/// or absent = unreachable.
std::map<int, int> reach(const Graph& graph, const std::vector<int>& roots,
                         bool respect_boundaries,
                         const std::set<std::string>& opaque_files) {
  std::map<int, int> parent;
  std::deque<int> queue;
  for (const int root : roots) {
    if (parent.emplace(root, -1).second) queue.push_back(root);
  }
  while (!queue.empty()) {
    const int at = queue.front();
    queue.pop_front();
    const FunctionDef& def = graph.defs[static_cast<std::size_t>(at)];
    if (opaque_files.count(def.file) != 0) continue;  // quarantined sink
    for (const auto& callee : def.callees) {
      if (respect_boundaries && graph.boundary_last.count(callee) != 0) continue;
      const auto targets = graph.by_last.find(callee);
      if (targets == graph.by_last.end()) continue;
      for (const int target : targets->second) {
        const FunctionDef& td = graph.defs[static_cast<std::size_t>(target)];
        if (td.noreturn) continue;  // cold failure paths may do anything
        if (respect_boundaries &&
            graph.boundary_qualified.count(td.qualified) != 0) {
          continue;
        }
        if (parent.emplace(target, at).second) queue.push_back(target);
      }
    }
  }
  return parent;
}

[[nodiscard]] std::string chain_string(const Graph& graph,
                                       const std::map<int, int>& parent, int at) {
  std::vector<const std::string*> names;
  for (int cur = at; cur != -1;) {
    names.push_back(&graph.defs[static_cast<std::size_t>(cur)].display);
    const auto it = parent.find(cur);
    cur = (it == parent.end()) ? -1 : it->second;
  }
  std::reverse(names.begin(), names.end());
  std::string out;
  const std::size_t n = names.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (n > 7 && i == 3) {  // elide the middle of very long chains
      out += " -> ...";
      i = n - 4;
      continue;
    }
    if (!out.empty()) out += " -> ";
    out += *names[i];
  }
  return out;
}

void report(const Graph& graph, const std::map<int, int>& parent,
            bool hot_kinds, std::string_view rule, std::string_view root_word,
            std::string_view tail, const std::set<std::string>& skip_files,
            std::vector<Finding>& findings) {
  // Visit order: (file, line) of the containing definition, then fact order.
  std::vector<int> visited;
  visited.reserve(parent.size());
  for (const auto& [idx, _] : parent) visited.push_back(idx);
  std::sort(visited.begin(), visited.end(), [&](int a, int b) {
    const auto& fa = graph.defs[static_cast<std::size_t>(a)];
    const auto& fb = graph.defs[static_cast<std::size_t>(b)];
    return std::tie(fa.file, fa.line) < std::tie(fb.file, fb.line);
  });
  std::set<std::string> seen;  // file:line:token dedup across roots/paths
  for (const int idx : visited) {
    const FunctionDef& def = graph.defs[static_cast<std::size_t>(idx)];
    if (skip_files.count(def.file) != 0) continue;
    for (const Fact& fact : def.facts) {
      const bool is_hot_fact =
          fact.kind != FactKind::Entropy && fact.kind != FactKind::WallClock;
      if (is_hot_fact != hot_kinds) continue;
      std::string key = def.file + ":" + std::to_string(fact.line) + ":" + fact.token;
      if (!seen.insert(std::move(key)).second) continue;
      findings.push_back(
          {def.file, fact.line, std::string(rule),
           std::string(fact_label(fact.kind)) + " '" + fact.token + "' in '" +
               def.display + "' is reachable from " + std::string(root_word) +
               " via " + chain_string(graph, parent, idx) + "; " +
               std::string(tail)});
    }
  }
}

}  // namespace

void run_program_rules(const std::vector<SourceFile>& files,
                       std::vector<Finding>& findings, ProgramStats* stats) {
  ExtractOut out;
  std::size_t graph_files = 0;
  for (const auto& file : files) {
    if (file.path.rfind("src/", 0) != 0) continue;
    ++graph_files;
    const ScanResult scan = tokenize(file.content);
    Extractor(file.path, scan, out).run();
  }

  Graph graph;
  graph.defs = std::move(out.defs);
  std::sort(graph.defs.begin(), graph.defs.end(),
            [](const FunctionDef& a, const FunctionDef& b) {
              return std::tie(a.file, a.line) < std::tie(b.file, b.line);
            });
  for (auto& def : graph.defs) {
    if (out.hot_qualified.count(def.qualified) != 0) def.hot = true;
    if (out.noreturn_qualified.count(def.qualified) != 0) def.noreturn = true;
  }
  graph.boundary_last = std::move(out.boundary_last);
  graph.boundary_qualified = std::move(out.boundary_qualified);
  for (std::size_t i = 0; i < graph.defs.size(); ++i) {
    graph.by_last[graph.defs[i].last].push_back(static_cast<int>(i));
  }

  std::vector<int> hot_roots;
  std::vector<int> taint_roots;
  for (std::size_t i = 0; i < graph.defs.size(); ++i) {
    const FunctionDef& def = graph.defs[i];
    if (def.hot) hot_roots.push_back(static_cast<int>(i));
    if (def.last == "run_iw_scan" ||
        def.qualified.find("ParallelScanRunner") != std::string::npos) {
      taint_roots.push_back(static_cast<int>(i));
    }
  }

  // Hot-path purity: IWSCAN_HOT roots, boundaries honored, every file fair
  // game.
  const auto hot_parent = reach(graph, hot_roots, /*respect_boundaries=*/true, {});
  report(graph, hot_parent, /*hot_kinds=*/true, "hot-path",
         "an IWSCAN_HOT root",
         "the hot datapath must stay allocation-free and non-blocking "
         "(DESIGN.md §9)",
         {}, findings);

  // Determinism taint: scan roots, boundaries ignored (determinism must
  // hold through every layer), entropy quarantined to the two sink files.
  const std::set<std::string> quarantine = {"src/util/rng.cpp",
                                            "src/util/stopwatch.cpp"};
  const auto taint_parent =
      reach(graph, taint_roots, /*respect_boundaries=*/false, quarantine);
  report(graph, taint_parent, /*hot_kinds=*/false, "determinism-taint",
         "a scan root (run_iw_scan/ParallelScanRunner)",
         "entropy and wall-clock reads must stay quarantined in "
         "src/util/rng.cpp and src/util/stopwatch.cpp (DESIGN.md §9)",
         quarantine, findings);

  if (stats != nullptr) {
    stats->files = graph_files;
    stats->functions = graph.defs.size();
    std::size_t edges = 0;
    for (const auto& def : graph.defs) {
      for (const auto& callee : def.callees) {
        const auto it = graph.by_last.find(callee);
        if (it != graph.by_last.end()) edges += it->second.size();
      }
    }
    stats->call_edges = edges;
    stats->hot_roots = hot_roots.size();
    stats->taint_roots = taint_roots.size();
  }
}

}  // namespace iwscan::lint
