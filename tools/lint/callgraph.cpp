#include "callgraph.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <string>

namespace iwscan::lint {
namespace {

// ---------------------------------------------------------------------------
// Reachability: worklist BFS with parent tracking (cycle-tolerant — a
// visited function is never re-expanded, so recursion and mutual recursion
// converge). Determinism: defs are sorted by (file, line) before indexing
// and adjacency lists preserve that order.
// ---------------------------------------------------------------------------

struct Graph {
  std::vector<FunctionDef> defs;
  std::map<std::string, std::vector<int>, std::less<>> by_last;
  std::set<std::string> boundary_last;
  std::set<std::string> boundary_qualified;
};

/// BFS from `roots`. Returns parent indices (-1 for roots), or absent =
/// unreachable.
std::map<int, int> reach(const Graph& graph, const std::vector<int>& roots,
                         bool respect_boundaries,
                         const std::set<std::string>& opaque_files) {
  std::map<int, int> parent;
  std::deque<int> queue;
  for (const int root : roots) {
    if (parent.emplace(root, -1).second) queue.push_back(root);
  }
  while (!queue.empty()) {
    const int at = queue.front();
    queue.pop_front();
    const FunctionDef& def = graph.defs[static_cast<std::size_t>(at)];
    if (opaque_files.count(def.file) != 0) continue;  // quarantined sink
    for (const auto& callee : def.callees) {
      if (respect_boundaries && graph.boundary_last.count(callee) != 0) continue;
      const auto targets = graph.by_last.find(callee);
      if (targets == graph.by_last.end()) continue;
      for (const int target : targets->second) {
        const FunctionDef& td = graph.defs[static_cast<std::size_t>(target)];
        if (td.noreturn) continue;  // cold failure paths may do anything
        if (respect_boundaries &&
            graph.boundary_qualified.count(td.qualified) != 0) {
          continue;
        }
        if (parent.emplace(target, at).second) queue.push_back(target);
      }
    }
  }
  return parent;
}

[[nodiscard]] std::string chain_string(const Graph& graph,
                                       const std::map<int, int>& parent, int at) {
  std::vector<const std::string*> names;
  for (int cur = at; cur != -1;) {
    names.push_back(&graph.defs[static_cast<std::size_t>(cur)].display);
    const auto it = parent.find(cur);
    cur = (it == parent.end()) ? -1 : it->second;
  }
  std::reverse(names.begin(), names.end());
  std::string out;
  const std::size_t n = names.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (n > 7 && i == 3) {  // elide the middle of very long chains
      out += " -> ...";
      i = n - 4;
      continue;
    }
    if (!out.empty()) out += " -> ";
    out += *names[i];
  }
  return out;
}

void report(const Graph& graph, const std::map<int, int>& parent,
            bool hot_kinds, std::string_view rule, std::string_view root_word,
            std::string_view tail, const std::set<std::string>& skip_files,
            std::vector<Finding>& findings) {
  // Visit order: (file, line) of the containing definition, then fact order.
  std::vector<int> visited;
  visited.reserve(parent.size());
  for (const auto& [idx, _] : parent) visited.push_back(idx);
  std::sort(visited.begin(), visited.end(), [&](int a, int b) {
    const auto& fa = graph.defs[static_cast<std::size_t>(a)];
    const auto& fb = graph.defs[static_cast<std::size_t>(b)];
    return std::tie(fa.file, fa.line) < std::tie(fb.file, fb.line);
  });
  std::set<std::string> seen;  // file:line:token dedup across roots/paths
  for (const int idx : visited) {
    const FunctionDef& def = graph.defs[static_cast<std::size_t>(idx)];
    if (skip_files.count(def.file) != 0) continue;
    for (const Fact& fact : def.facts) {
      const bool is_hot_fact =
          fact.kind != FactKind::Entropy && fact.kind != FactKind::WallClock;
      if (is_hot_fact != hot_kinds) continue;
      std::string key = def.file + ":" + std::to_string(fact.line) + ":" + fact.token;
      if (!seen.insert(std::move(key)).second) continue;
      findings.push_back(
          {def.file, fact.line, std::string(rule),
           std::string(fact_label(fact.kind)) + " '" + fact.token + "' in '" +
               def.display + "' is reachable from " + std::string(root_word) +
               " via " + chain_string(graph, parent, idx) + "; " +
               std::string(tail)});
    }
  }
}

}  // namespace

void run_callgraph_rules(SymbolTable symbols, std::vector<Finding>& findings,
                         ProgramStats* stats) {
  Graph graph;
  graph.defs = std::move(symbols.defs);
  std::sort(graph.defs.begin(), graph.defs.end(),
            [](const FunctionDef& a, const FunctionDef& b) {
              return std::tie(a.file, a.line) < std::tie(b.file, b.line);
            });
  for (auto& def : graph.defs) {
    if (symbols.hot_qualified.count(def.qualified) != 0) def.hot = true;
    if (symbols.noreturn_qualified.count(def.qualified) != 0) def.noreturn = true;
  }
  graph.boundary_last = std::move(symbols.boundary_last);
  graph.boundary_qualified = std::move(symbols.boundary_qualified);
  for (std::size_t i = 0; i < graph.defs.size(); ++i) {
    graph.by_last[graph.defs[i].last].push_back(static_cast<int>(i));
  }

  std::vector<int> hot_roots;
  std::vector<int> taint_roots;
  for (std::size_t i = 0; i < graph.defs.size(); ++i) {
    const FunctionDef& def = graph.defs[i];
    if (def.hot) hot_roots.push_back(static_cast<int>(i));
    if (def.last == "run_iw_scan" ||
        def.qualified.find("ParallelScanRunner") != std::string::npos ||
        def.qualified.find("TwoPhaseRunner") != std::string::npos) {
      taint_roots.push_back(static_cast<int>(i));
    }
  }

  // Hot-path purity: IWSCAN_HOT roots, boundaries honored, every file fair
  // game.
  const auto hot_parent = reach(graph, hot_roots, /*respect_boundaries=*/true, {});
  report(graph, hot_parent, /*hot_kinds=*/true, "hot-path",
         "an IWSCAN_HOT root",
         "the hot datapath must stay allocation-free and non-blocking "
         "(DESIGN.md §9)",
         {}, findings);

  // Determinism taint: scan roots, boundaries ignored (determinism must
  // hold through every layer), entropy quarantined to the two sink files.
  const std::set<std::string> quarantine = {"src/util/rng.cpp",
                                            "src/util/stopwatch.cpp"};
  const auto taint_parent =
      reach(graph, taint_roots, /*respect_boundaries=*/false, quarantine);
  report(graph, taint_parent, /*hot_kinds=*/false, "determinism-taint",
         "a scan root (run_iw_scan/ParallelScanRunner/TwoPhaseRunner)",
         "entropy and wall-clock reads must stay quarantined in "
         "src/util/rng.cpp and src/util/stopwatch.cpp (DESIGN.md §9)",
         quarantine, findings);

  if (stats != nullptr) {
    stats->files = symbols.files_indexed;
    stats->functions = graph.defs.size();
    std::size_t edges = 0;
    for (const auto& def : graph.defs) {
      for (const auto& callee : def.callees) {
        const auto it = graph.by_last.find(callee);
        if (it != graph.by_last.end()) edges += it->second.size();
      }
    }
    stats->call_edges = edges;
    stats->hot_roots = hot_roots.size();
    stats->taint_roots = taint_roots.size();
  }
}

}  // namespace iwscan::lint
