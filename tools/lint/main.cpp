// iwlint CLI. Exit codes: 0 = clean, 1 = findings, 2 = usage/I-O error.
//
//   iwlint [--root <dir>] [--json] [--sarif <path>]
//          [--disable <rule>[,<rule>...]] [--only <rule>[,<rule>...]]
//          [--explain <rule>] [paths...]
//
// Paths default to the directories the repo lints in CI: src tests bench
// examples tools. Run from the repo root, or point --root at it.
//
// --json emits an object: schema_version, the findings array, the
// call-graph and dataflow stats, and the whole-tree wall time
// ("elapsed_ms") — CI's bench guard keys off the latter to keep the
// cross-TU analysis under its two-second budget.
//
// --sarif writes a SARIF 2.1.0 log to <path> (always, even when clean) so
// CI can upload findings as GitHub code-scanning annotations.
//
// --only inverts --disable: run just the listed rules. CI's self-lint
// step uses it to hold tools/ and examples/ to the relaxed profile
// (layering + banned-call + header-hygiene). Suppression hygiene is
// always checked.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "callgraph.hpp"
#include "iwlint.hpp"

namespace {

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: iwlint [--root <dir>] [--json] [--sarif <path>] "
               "[--disable <rule>[,...]] [--only <rule>[,...]] "
               "[--explain <rule>] [paths...]\n\nrules:\n");
  for (const auto& name : iwscan::lint::rule_names()) {
    std::fprintf(out, "  %s\n", name.c_str());
  }
  std::fprintf(out,
               "\nsuppress a finding inline with a mandatory justification:\n"
               "  // iwlint: allow(<rule>) -- <reason>\n");
}

void split_rules(std::string_view list, std::vector<std::string>& out) {
  while (!list.empty()) {
    const std::size_t comma = list.find(',');
    const std::string_view name = list.substr(0, comma);
    if (!name.empty()) out.emplace_back(name);
    if (comma == std::string_view::npos) break;
    list.remove_prefix(comma + 1);
  }
}

int explain(std::string_view rule) {
  const std::string_view text = iwscan::lint::rule_explanation(rule);
  if (text.empty()) {
    std::fprintf(stderr, "iwlint: unknown rule '%.*s'\n",
                 static_cast<int>(rule.size()), rule.data());
    return 2;
  }
  std::fprintf(stdout, "%.*s: %.*s\n", static_cast<int>(rule.size()), rule.data(),
               static_cast<int>(text.size()), text.data());
  return 0;
}

bool known_rule(const std::string& rule) {
  const auto& known = iwscan::lint::rule_names();
  return std::find(known.begin(), known.end(), rule) != known.end();
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  bool json = false;
  std::string sarif_path;
  iwscan::lint::Options options;
  std::vector<std::string> only;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    }
    if (arg == "--json") {
      json = true;
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg.substr(0, 7) == "--root=") {
      root = std::string(arg.substr(7));
    } else if (arg == "--sarif" && i + 1 < argc) {
      sarif_path = argv[++i];
    } else if (arg.substr(0, 8) == "--sarif=") {
      sarif_path = std::string(arg.substr(8));
    } else if (arg == "--disable" && i + 1 < argc) {
      split_rules(argv[++i], options.disabled_rules);
    } else if (arg.substr(0, 10) == "--disable=") {
      split_rules(arg.substr(10), options.disabled_rules);
    } else if (arg == "--only" && i + 1 < argc) {
      split_rules(argv[++i], only);
    } else if (arg.substr(0, 7) == "--only=") {
      split_rules(arg.substr(7), only);
    } else if (arg == "--explain" && i + 1 < argc) {
      return explain(argv[++i]);
    } else if (arg.substr(0, 10) == "--explain=") {
      return explain(arg.substr(10));
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "iwlint: unknown option '%s'\n", argv[i]);
      usage(stderr);
      return 2;
    } else {
      paths.emplace_back(arg);
    }
  }
  for (const auto& rule : options.disabled_rules) {
    if (!known_rule(rule)) {
      std::fprintf(stderr, "iwlint: unknown rule '%s' in --disable\n", rule.c_str());
      return 2;
    }
  }
  for (const auto& rule : only) {
    if (!known_rule(rule)) {
      std::fprintf(stderr, "iwlint: unknown rule '%s' in --only\n", rule.c_str());
      return 2;
    }
  }
  if (!only.empty()) {
    // --only = disable the complement. Suppression hygiene stays on: a
    // malformed or unjustified suppression is a finding in any profile.
    for (const auto& rule : iwscan::lint::rule_names()) {
      if (rule == "suppression") continue;
      if (std::find(only.begin(), only.end(), rule) == only.end()) {
        options.disabled_rules.push_back(rule);
      }
    }
  }
  if (paths.empty()) paths = {"src", "tests", "bench", "examples", "tools"};

  // The linter itself is a reporting tool, not scan logic: timing its own
  // run with the wall clock is the point of the bench guard.
  // iwlint: allow(determinism) -- self-timing for the --json bench guard; iwlint is tooling, not scan logic
  const auto started = std::chrono::steady_clock::now();

  std::vector<std::string> io_errors;
  iwscan::lint::ProgramStats stats;
  const auto findings =
      iwscan::lint::lint_tree(root, paths, options, &io_errors, &stats);

  // iwlint: allow(determinism) -- self-timing for the --json bench guard; iwlint is tooling, not scan logic
  const auto elapsed = std::chrono::steady_clock::now() - started;
  const long long elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count();

  for (const auto& error : io_errors) {
    std::fprintf(stderr, "iwlint: %s\n", error.c_str());
  }

  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "iwlint: cannot write %s\n", sarif_path.c_str());
      return 2;
    }
    out << iwscan::lint::format_sarif(findings);
  }

  if (json) {
    std::fputs("{\n\"schema_version\": 2,\n\"findings\": ", stdout);
    std::fputs(iwscan::lint::format_json(findings).c_str(), stdout);
    std::fprintf(stdout,
                 ",\n\"files\": %zu,\n\"functions\": %zu,\n\"call_edges\": %zu,"
                 "\n\"hot_roots\": %zu,\n\"taint_roots\": %zu,"
                 "\n\"dataflow\": {\"functions\": %zu, \"taint_sources\": %zu, "
                 "\"taint_sinks\": %zu, \"taint_guards\": %zu},"
                 "\n\"elapsed_ms\": %lld\n}\n",
                 stats.files, stats.functions, stats.call_edges, stats.hot_roots,
                 stats.taint_roots, stats.dataflow.functions,
                 stats.dataflow.taint_sources, stats.dataflow.taint_sinks,
                 stats.dataflow.taint_guards, elapsed_ms);
  } else {
    for (const auto& finding : findings) {
      std::fprintf(stdout, "%s\n", iwscan::lint::format_text(finding).c_str());
    }
    if (!findings.empty()) {
      std::fprintf(stdout, "iwlint: %zu finding%s\n", findings.size(),
                   findings.size() == 1 ? "" : "s");
    }
  }
  if (!io_errors.empty()) return 2;
  return findings.empty() ? 0 : 1;
}
