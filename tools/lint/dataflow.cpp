#include "dataflow.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <optional>
#include <set>
#include <string>

namespace iwscan::lint {
namespace {

template <std::size_t N>
[[nodiscard]] bool in(const std::array<std::string_view, N>& set,
                      std::string_view text) {
  return std::find(set.begin(), set.end(), text) != set.end();
}

// ---------------------------------------------------------------------------
// wire-taint vocabulary
// ---------------------------------------------------------------------------

// Zero-argument WireReader accessors whose return value is attacker bytes.
constexpr std::array<std::string_view, 4> kScalarSources = {"u8", "u16", "u24",
                                                            "u32"};

// Methods that return a view of their receiver's bytes: on a WireReader or
// a wire buffer they produce another wire buffer.
constexpr std::array<std::string_view, 5> kViewMethods = {"raw", "bytes",
                                                          "subspan", "first",
                                                          "last"};

// Decoded header fields that carry attacker-chosen lengths/offsets. Reads
// of `x.field` / `x->field` are taint sources until the field is guarded.
constexpr std::array<std::string_view, 6> kTaintedFields = {
    "total_length", "fragment_offset", "data_offset",
    "urgent",       "seq_or_mtu",      "id_or_unused"};

// Sinks: container sizing, span slicing, WireWriter patch offsets.
constexpr std::array<std::string_view, 2> kSizeSinks = {"resize", "reserve"};
constexpr std::array<std::string_view, 3> kViewSinks = {"subspan", "first",
                                                        "last"};
constexpr std::array<std::string_view, 3> kPatchSinks = {"patch_u8",
                                                         "patch_u16",
                                                         "patch_u24"};

// Bound-carrying method calls whose presence in a conditional makes it a
// sanitizing guard.
constexpr std::array<std::string_view, 4> kBoundMethods = {
    "size", "remaining", "length", "capacity"};

// Calls that sanitize their tainted operands wherever they appear.
constexpr std::array<std::string_view, 3> kClampCalls = {"require", "min",
                                                         "clamp"};

[[nodiscard]] bool is_k_constant(std::string_view text) {
  return text.size() >= 2 && text[0] == 'k' &&
         text[1] >= 'A' && text[1] <= 'Z';
}

// ---------------------------------------------------------------------------
// Per-function taint walk: one linear forward pass over the body tokens,
// statement by statement. State is a taint map (variable or `obj.field`
// pseudo-variable → its def chain), a sanitized set, and the set of
// wire-buffer views.
// ---------------------------------------------------------------------------

class FunctionTaint {
 public:
  FunctionTaint(const SourceFile& file, const ScanResult& scan,
                const FunctionDef& def, std::vector<Finding>& findings,
                DataflowStats& stats)
      : path_(file.path), t_(scan.tokens), def_(def), findings_(findings),
        stats_(stats) {}

  void run() {
    seed_params();
    split_statements(def_.body_begin, std::min(def_.body_end, t_.size()));
  }

 private:
  [[nodiscard]] bool is(std::size_t i, std::string_view text) const {
    return i < t_.size() && t_[i].text == text;
  }
  [[nodiscard]] bool ident(std::size_t i) const {
    return i < t_.size() && t_[i].kind == TokKind::Ident;
  }
  [[nodiscard]] bool member_access_before(std::size_t i) const {
    if (i == 0) return false;
    if (t_[i - 1].text == ".") return true;
    return i >= 2 && t_[i - 1].text == ">" && t_[i - 2].text == "-";
  }

  /// `obj.field` key for the member read/write at token i (the field name);
  /// '->' normalizes to '.', so a guard on `ip->total_length` sanitizes a
  /// later `ip->total_length` read. One level deep — enough for the
  /// decoded-header idiom the rule exists for.
  [[nodiscard]] std::string pseudo_name(std::size_t i) const {
    std::size_t base = t_.size();
    if (i >= 2 && t_[i - 1].text == ".") base = i - 2;
    if (i >= 3 && t_[i - 1].text == ">" && t_[i - 2].text == "-") base = i - 3;
    std::string key;
    if (base < t_.size() && t_[base].kind == TokKind::Ident) {
      key = std::string(t_[base].text);
    }
    key += ".";
    key += t_[i].text;
    return key;
  }

  [[nodiscard]] std::size_t find_close(std::size_t open, std::size_t limit,
                                       std::string_view o,
                                       std::string_view c) const {
    int d = 0;
    for (std::size_t j = open; j < limit; ++j) {
      if (t_[j].text == o) ++d;
      if (t_[j].text == c && --d == 0) return j;
    }
    return limit;
  }

  // ---- parameter seeding ------------------------------------------------

  /// Byte-span parameters (std::span<const std::uint8_t>, net::PacketView,
  /// net::Bytes) are wire buffers: subscript reads from them are sources.
  void seed_params() {
    const std::size_t begin = def_.params_begin;
    const std::size_t end = std::min(def_.params_end, t_.size());
    std::size_t chunk = begin;
    int depth = 0;
    for (std::size_t j = begin; j <= end; ++j) {
      const bool at_end = (j == end);
      if (!at_end) {
        const std::string_view text = t_[j].text;
        if (text == "(" || text == "[" || text == "{") ++depth;
        if (text == ")" || text == "]" || text == "}") --depth;
        if (!(depth == 0 && text == ",")) continue;
      }
      // One parameter in [chunk, j): name = last ident before any '=',
      // buffer-ness decided by the type tokens.
      bool spanish = false;
      bool bytish = false;
      std::size_t name_at = t_.size();
      for (std::size_t k = chunk; k < j; ++k) {
        const std::string_view text = t_[k].text;
        if (text == "=") break;
        if (t_[k].kind != TokKind::Ident) continue;
        if (text == "span") spanish = true;
        if (text == "uint8_t") bytish = true;
        if (text == "PacketView" || text == "Bytes") {
          spanish = bytish = true;
        }
        name_at = k;
      }
      if (spanish && bytish && name_at < t_.size()) {
        buffers_.insert(std::string(t_[name_at].text));
      }
      chunk = j + 1;
    }
  }

  // ---- statement iteration ---------------------------------------------

  void split_statements(std::size_t begin, std::size_t end) {
    std::size_t s = begin;
    int depth = 0;
    for (std::size_t j = begin; j < end; ++j) {
      const std::string_view text = t_[j].text;
      if (t_[j].kind == TokKind::Punct) {
        if (text == "(" || text == "[") ++depth;
        if (text == ")" || text == "]") --depth;
        if (depth <= 0 && (text == ";" || text == "{" || text == "}")) {
          depth = 0;
          if (j > s) statement(s, j);
          s = j + 1;
        }
      }
    }
    if (end > s) statement(s, end);
  }

  /// The condition region of a chunk: the paren group of if/while, the
  /// middle clause of a classic for, the whole chunk for ternaries, and
  /// nothing otherwise.
  struct Condition {
    std::size_t begin = 0;
    std::size_t end = 0;  // empty range = no condition
    bool loop = false;    // the region is a loop bound (for/while)
  };

  [[nodiscard]] Condition condition_of(std::size_t s, std::size_t e) const {
    Condition cond;
    const std::string_view head = t_[s].text;
    if ((head == "if" || head == "while" || head == "for") && is(s + 1, "(")) {
      const std::size_t close = find_close(s + 1, e, "(", ")");
      cond.begin = s + 2;
      cond.end = close;
      cond.loop = (head != "if");
      if (head == "for") {
        // Classic for: the bound is between the two top-level ';'. A
        // range-for has none — its buffer read is handled as a def.
        std::size_t first = cond.end;
        std::size_t second = cond.end;
        int depth = 0;
        for (std::size_t j = cond.begin; j < cond.end; ++j) {
          const std::string_view text = t_[j].text;
          if (text == "(" || text == "[") ++depth;
          if (text == ")" || text == "]") --depth;
          if (depth == 0 && text == ";") {
            if (first == cond.end) {
              first = j;
            } else {
              second = j;
              break;
            }
          }
        }
        if (first == cond.end) {
          cond.begin = cond.end;  // range-for: no bound clause
        } else {
          cond.begin = first + 1;
          cond.end = second;
        }
      }
      return cond;
    }
    for (std::size_t j = s; j < e; ++j) {
      if (t_[j].kind == TokKind::Punct && t_[j].text == "?" &&
          !is(j + 1, "?")) {
        cond.begin = s;
        cond.end = e;
        return cond;
      }
    }
    return cond;
  }

  /// A conditional whose condition mentions a bound — size()/remaining()/
  /// sizeof/a kConstant/a literal — sanitizes every tainted name it
  /// compares. require/min/clamp sanitize their operands anywhere.
  [[nodiscard]] bool has_bound_marker(std::size_t a, std::size_t b) const {
    for (std::size_t j = a; j < b; ++j) {
      if (t_[j].kind == TokKind::Number) return true;
      if (t_[j].kind != TokKind::Ident) continue;
      const std::string_view text = t_[j].text;
      if (text == "sizeof" || is_k_constant(text)) return true;
      if (in(kBoundMethods, text) && member_access_before(j) && is(j + 1, "("))
        return true;
    }
    return false;
  }

  [[nodiscard]] bool has_clamp_call(std::size_t s, std::size_t e) const {
    for (std::size_t j = s; j < e; ++j) {
      if (!ident(j) || !in(kClampCalls, t_[j].text)) continue;
      // `std::min<std::size_t>(a, b)`: hop the template argument list.
      std::size_t k = j + 1;
      if (is(k, "<")) {
        int angles = 0;
        for (; k < e; ++k) {
          if (t_[k].text == "<") ++angles;
          if (t_[k].text == ">" && --angles == 0) {
            ++k;
            break;
          }
        }
      }
      if (is(k, "(")) return true;
    }
    return false;
  }

  void sanitize_range(std::size_t a, std::size_t b) {
    for (std::size_t j = a; j < b; ++j) {
      if (!ident(j)) continue;
      std::string name;
      if (member_access_before(j)) {
        if (!in(kTaintedFields, t_[j].text) &&
            tainted_.count(pseudo_name(j)) == 0) {
          continue;
        }
        name = pseudo_name(j);
      } else {
        name = std::string(t_[j].text);
        if (tainted_.count(name) == 0) continue;
      }
      if (clean_.insert(name).second) ++stats_.taint_guards;
      tainted_.erase(name);
    }
  }

  // ---- taint lookup -----------------------------------------------------

  /// First tainted value in [a, b): a tainted local, a tainted or unguarded
  /// `obj.field` read, a direct WireReader accessor call, or a subscript
  /// read from a wire buffer. Returns its def chain.
  [[nodiscard]] std::optional<std::string> find_tainted(std::size_t a,
                                                        std::size_t b) {
    for (std::size_t j = a; j < b && j < t_.size(); ++j) {
      if (!ident(j)) continue;
      const std::string_view text = t_[j].text;
      if (member_access_before(j)) {
        const std::string pseudo = pseudo_name(j);
        const auto it = tainted_.find(pseudo);
        if (it != tainted_.end()) return it->second;
        if (in(kScalarSources, text) && is(j + 1, "(") && is(j + 2, ")")) {
          ++stats_.taint_sources;
          return pseudo + "() (line " + std::to_string(t_[j].line) + ")";
        }
        if (in(kTaintedFields, text) && clean_.count(pseudo) == 0) {
          ++stats_.taint_sources;
          return pseudo + " (line " + std::to_string(t_[j].line) + ")";
        }
        continue;
      }
      const auto it = tainted_.find(std::string(text));
      if (it != tainted_.end()) return it->second;
      if (buffers_.count(std::string(text)) != 0 && is(j + 1, "[")) {
        ++stats_.taint_sources;
        return std::string(text) + "[...] (line " + std::to_string(t_[j].line) +
               ")";
      }
    }
    return std::nullopt;
  }

  // ---- sinks ------------------------------------------------------------

  void report(int line, const std::string& chain, std::string_view sink) {
    findings_.push_back(
        {std::string(path_), line, "wire-taint",
         "tainted wire value [" + chain + "] flows into " + std::string(sink) +
             " in '" + def_.display +
             "' without a bounds guard; sanitize with WireReader::require(), "
             "a comparison against size()/remaining(), or std::min/std::clamp "
             "(DESIGN.md §9)"});
  }

  void check_sinks(std::size_t s, std::size_t e, const Condition& cond) {
    for (std::size_t j = s; j < e; ++j) {
      if (ident(j) && member_access_before(j) && is(j + 1, "(")) {
        const std::string_view text = t_[j].text;
        std::string_view sink;
        if (in(kSizeSinks, text)) sink = "container sizing";
        if (in(kViewSinks, text)) sink = "span slicing";
        if (in(kPatchSinks, text)) sink = "a WireWriter patch offset";
        if (sink.empty()) continue;
        ++stats_.taint_sinks;
        const std::size_t close = find_close(j + 1, e, "(", ")");
        if (has_clamp_call(j + 2, close)) continue;  // clamped in place
        if (auto chain = find_tainted(j + 2, close)) {
          std::string where = ".";
          where += text;
          where += "() (";
          where += sink;
          where += ")";
          report(t_[j].line, *chain, where);
        }
        continue;
      }
      // Subscript index: base '[' expr ']' where base is an expression
      // (ident / ')' / ']'), not a lambda introducer or attribute.
      if (t_[j].kind == TokKind::Punct && t_[j].text == "[" && j > s &&
          !is(j + 1, "[") && !is(j + 1, "]")) {
        const Token& prev = t_[j - 1];
        const bool indexable = prev.kind == TokKind::Ident ||
                               prev.text == ")" || prev.text == "]";
        if (!indexable || prev.text == "[") continue;
        ++stats_.taint_sinks;
        const std::size_t close = find_close(j, e, "[", "]");
        if (auto chain = find_tainted(j + 1, close)) {
          report(t_[j].line, *chain, "a subscript index");
        }
      }
    }
    if (cond.loop && cond.begin < cond.end) {
      ++stats_.taint_sinks;
      if (auto chain = find_tainted(cond.begin, cond.end)) {
        report(t_[cond.begin].line, *chain, "a loop bound");
      }
    }
  }

  // ---- defs -------------------------------------------------------------

  [[nodiscard]] static bool is_arith_op(std::string_view text) {
    return text == "+" || text == "-" || text == "*" || text == "/" ||
           text == "%" || text == "&" || text == "|" || text == "^" ||
           text == "<" || text == ">";
  }

  /// True when the range holds a wire-buffer producer: reader.raw(n) /
  /// .bytes(n), a slice of an existing buffer, or a bare buffer alias.
  [[nodiscard]] bool buffer_rhs(std::size_t a, std::size_t b) const {
    for (std::size_t j = a; j < b && j < t_.size(); ++j) {
      if (!ident(j)) continue;
      const std::string_view text = t_[j].text;
      if (member_access_before(j) && is(j + 1, "(") && in(kViewMethods, text)) {
        if (text == "raw" || text == "bytes") return true;
        // subspan/first/last make a buffer only out of a buffer.
        if (j >= 2 && t_[j - 1].text == "." &&
            buffers_.count(std::string(t_[j - 2].text)) != 0) {
          return true;
        }
        continue;
      }
      if (!member_access_before(j) && buffers_.count(std::string(text)) != 0 &&
          !is(j + 1, "[")) {
        return true;
      }
    }
    return false;
  }

  void process_defs(std::size_t s, std::size_t e) {
    // Range-for: `for (auto v : buf)` reads wire bytes into v.
    if (is(s, "for") && is(s + 1, "(")) {
      const std::size_t close = find_close(s + 1, e, "(", ")");
      for (std::size_t j = s + 2; j < close; ++j) {
        if (t_[j].kind == TokKind::Punct && t_[j].text == ":" && j > s + 2 &&
            ident(j - 1)) {
          const std::string var(t_[j - 1].text);
          if (auto chain = find_tainted(j + 1, close)) {
            taint(var, t_[j - 1].line, *chain);
          } else if (buffer_rhs(j + 1, close)) {
            taint(var, t_[j - 1].line,
                  "byte read off " + std::string(t_[j + 1].text) + " (line " +
                      std::to_string(t_[j + 1].line) + ")");
          }
          return;
        }
      }
    }

    for (std::size_t j = s + 1; j < e; ++j) {
      if (t_[j].kind != TokKind::Punct || t_[j].text != "=") continue;
      if (is(j + 1, "=")) {  // '==' comparison
        ++j;
        continue;
      }
      const std::string_view prev = t_[j - 1].text;
      if (prev == "!" || prev == "<" || prev == ">" || prev == "=") continue;
      std::size_t lhs_at = j - 1;
      bool compound = false;
      if (t_[j - 1].kind == TokKind::Punct && is_arith_op(prev)) {
        compound = true;  // += and friends tokenize as op + '='
        while (lhs_at > s && t_[lhs_at].kind == TokKind::Punct &&
               is_arith_op(t_[lhs_at].text)) {
          --lhs_at;
        }
      }
      if (!ident(lhs_at)) continue;  // subscript/call stores have no local def
      std::string lhs;
      if (member_access_before(lhs_at)) {
        lhs = pseudo_name(lhs_at);
      } else {
        lhs = std::string(t_[lhs_at].text);
      }

      // A clamp in the RHS bounds whatever it wraps: the defined value is
      // clean even when the wire read sits inside the min/clamp call.
      std::optional<std::string> chain;
      if (!has_clamp_call(j + 1, e)) chain = find_tainted(j + 1, e);
      if (chain) {
        taint(lhs, t_[lhs_at].line, *chain);
      } else if (!compound) {
        tainted_.erase(lhs);  // strong update: a clean RHS kills taint
      }
      if (buffer_rhs(j + 1, e)) buffers_.insert(lhs);
      return;  // one def per statement is the idiom this pass models
    }
  }

  void taint(const std::string& name, int line, const std::string& chain) {
    std::string entry = chain;
    // Self-assignment noise (`len = len * 2`) keeps the original chain.
    if (chain.rfind(name + " (", 0) != 0) {
      entry += " -> " + name + " (line " + std::to_string(line) + ")";
    }
    tainted_[name] = std::move(entry);
    clean_.erase(name);
  }

  // ---- driver -----------------------------------------------------------

  void statement(std::size_t s, std::size_t e) {
    const Condition cond = condition_of(s, e);
    const bool conditional = cond.begin < cond.end;
    const bool guard =
        (conditional && has_bound_marker(cond.begin, cond.end));
    if (has_clamp_call(s, e)) {
      sanitize_range(s, e);
    } else if (guard) {
      sanitize_range(cond.begin, cond.end);
    }
    check_sinks(s, e, guard ? Condition{} : cond);
    process_defs(s, e);
    // An if-initializer (`if (auto n = r.u16(); n > kMax)`) defines and
    // guards in one statement; re-sanitizing after the def covers it.
    if (guard) sanitize_range(cond.begin, cond.end);
  }

  std::string_view path_;
  const std::vector<Token>& t_;
  const FunctionDef& def_;
  std::vector<Finding>& findings_;
  DataflowStats& stats_;

  std::map<std::string, std::string> tainted_;  // name -> def chain
  std::set<std::string> clean_;                 // sanitized names
  std::set<std::string> buffers_;               // wire-buffer views
};

// ---------------------------------------------------------------------------
// concurrency-confinement: token scan per src/ file + the symbol table's
// mutable globals. Thread creation lives in src/exec/thread_pool.*;
// primitives live in src/exec/; std::future and friends are banned
// outright; mutable namespace-scope state is banned tree-wide.
// ---------------------------------------------------------------------------

constexpr std::array<std::string_view, 2> kThreadTypes = {"thread", "jthread"};

constexpr std::array<std::string_view, 9> kHandoffTypes = {
    "future",  "promise", "packaged_task",      "shared_future",   "async",
    "latch",   "barrier", "counting_semaphore", "binary_semaphore"};

constexpr std::array<std::string_view, 20> kSyncTypes = {
    "mutex",          "recursive_mutex",        "timed_mutex",
    "shared_mutex",   "recursive_timed_mutex",  "shared_timed_mutex",
    "condition_variable", "condition_variable_any", "lock_guard",
    "unique_lock",    "scoped_lock",            "shared_lock",
    "atomic",         "atomic_flag",            "atomic_ref",
    "atomic_bool",    "atomic_int",             "atomic_uint",
    "atomic_size_t",  "atomic_uint64_t"};

void check_concurrency(const SourceFile& file, const ScanResult& scan,
                       std::vector<Finding>& findings) {
  const std::string& path = file.path;
  const bool in_exec = path.rfind("src/exec/", 0) == 0;
  const bool in_thread_pool = path == "src/exec/thread_pool.cpp" ||
                              path == "src/exec/thread_pool.hpp";
  const auto& toks = scan.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::Ident) continue;
    const std::string_view text = toks[i].text;
    const int line = toks[i].line;

    if (text == "thread_local") {
      if (!in_exec) {
        findings.push_back(
            {path, line, "concurrency-confinement",
             "thread_local outside src/exec/: per-thread state belongs to "
             "the executor, not scan logic (DESIGN.md §9)"});
      }
      continue;
    }
    if (text.rfind("pthread_", 0) == 0) {
      if (!in_thread_pool) {
        findings.push_back(
            {path, line, "concurrency-confinement",
             std::string(text) + " bypasses the audited pool; threads are "
             "created only in src/exec/thread_pool.cpp (DESIGN.md §9)"});
      }
      continue;
    }

    const bool std_qualified = i >= 2 && toks[i - 1].text == "::" &&
                               toks[i - 2].text == "std";
    if (!std_qualified) continue;

    if (in(kThreadTypes, text)) {
      // `std::thread::hardware_concurrency()` is a static query, not a
      // thread; only naming the type itself counts as creation/ownership.
      const bool static_member =
          i + 1 < toks.size() && toks[i + 1].text == "::";
      if (!static_member && !in_thread_pool) {
        findings.push_back(
            {path, line, "concurrency-confinement",
             "std::" + std::string(text) + " outside src/exec/thread_pool: "
             "all threads come from the audited pool so shutdown, sharding, "
             "and the byte-identical merge stay provable (DESIGN.md §9)"});
      }
      continue;
    }
    if (in(kHandoffTypes, text)) {
      findings.push_back(
          {path, line, "concurrency-confinement",
           "std::" + std::string(text) + " is banned: exec::BoundedChannel "
           "is the only audited cross-thread hand-off type (DESIGN.md §9)"});
      continue;
    }
    if (in(kSyncTypes, text) && !in_exec) {
      findings.push_back(
          {path, line, "concurrency-confinement",
           "std::" + std::string(text) + " outside src/exec/: "
           "synchronization primitives are confined to the executor; "
           "elsewhere they hide sharing that breaks the deterministic "
           "merge (DESIGN.md §9)"});
    }
  }
}

}  // namespace

void run_dataflow_rules(const std::vector<SourceFile>& files,
                        const std::vector<ScanResult>& scans,
                        const SymbolTable& symbols,
                        std::vector<Finding>& findings, DataflowStats* stats) {
  DataflowStats local;

  for (const auto& def : symbols.defs) {
    if (def.file_index >= files.size() || def.file_index >= scans.size())
      continue;
    if (def.body_begin >= def.body_end) continue;
    ++local.functions;
    FunctionTaint(files[def.file_index], scans[def.file_index], def, findings,
                  local)
        .run();
  }

  for (std::size_t f = 0; f < files.size() && f < scans.size(); ++f) {
    if (files[f].path.rfind("src/", 0) != 0) continue;
    check_concurrency(files[f], scans[f], findings);
  }

  for (const auto& global : symbols.globals) {
    findings.push_back(
        {global.file, global.line, "concurrency-confinement",
         "mutable namespace-scope state '" + global.name + "' is banned "
         "tree-wide: shared globals break the byte-identical sharded-merge "
         "guarantee; pass state through a context object or make it "
         "const/constexpr (DESIGN.md §9)"});
  }

  if (stats != nullptr) *stats = local;
}

}  // namespace iwscan::lint
