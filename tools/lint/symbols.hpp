// Shared symbol index: the extraction layer under both whole-program
// analyses (callgraph.hpp reachability, dataflow.hpp per-function taint).
//
// One pass over each src/ translation unit's tokens builds the function
// definitions — with their local facts, call sites, and body/parameter
// token ranges — plus the annotation sets and the namespace-scope mutable
// globals. Scope tracking is brace-based: namespaces and classes push
// named scopes, function bodies push a function scope, and every other
// '{' (lambdas, control flow) pushes an anonymous block — which is exactly
// the fold-lambdas-into-their-enclosing-function semantics the rules want.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "iwlint.hpp"
#include "tokens.hpp"

namespace iwscan::lint {

// Fact vocabulary: what a function body can do that the reachability rules
// care about. Hot-path purity consumes the first six; determinism taint
// consumes the last two.
enum class FactKind {
  Alloc,      // new / make_unique / make_shared / to_string / malloc family
  Growth,     // .push_back() and friends — container growth idioms
  Lock,       // mutex/lock_guard construction, .lock()/.try_lock()
  Blocking,   // sleep_for / poll / select style blocking calls
  Throw,      // throw expression
  Iostream,   // iostream objects, fstream/stringstream, printf family
  Entropy,    // std::random_device, srand, rand()
  WallClock,  // *_clock::now(), time(), clock_gettime, gettimeofday
};

[[nodiscard]] std::string_view fact_label(FactKind kind);

struct Fact {
  FactKind kind;
  int line;
  std::string token;  // what matched, for the message
};

struct FunctionDef {
  std::string qualified;  // scope-joined, e.g. "iwscan::sim::Network::send"
  std::string display;    // short form for chains, e.g. "Network::send"
  std::string last;       // unqualified name, the call-edge key
  std::string file;
  int line = 0;
  bool hot = false;
  bool noreturn = false;
  std::size_t file_index = 0;    // index into the extraction's file list
  std::size_t params_begin = 0;  // token range of the parameter list,
  std::size_t params_end = 0;    // exclusive of the parentheses
  std::size_t body_begin = 0;    // token range of the body, exclusive of
  std::size_t body_end = 0;      // the braces ([begin, end))
  std::vector<Fact> facts;
  std::set<std::string> callees;  // unqualified callee names, deduplicated
};

/// A mutable variable declared at namespace scope — shared state the
/// concurrency-confinement rule bans tree-wide (const/constexpr are exempt
/// during extraction).
struct GlobalVar {
  std::string name;
  std::string file;
  int line = 0;
};

struct SymbolTable {
  std::vector<FunctionDef> defs;
  std::vector<GlobalVar> globals;
  std::set<std::string> hot_qualified;       // IWSCAN_HOT on declarations
  std::set<std::string> noreturn_qualified;  // [[noreturn]] on declarations
  std::set<std::string> boundary_last;       // IWSCAN_HOT_BOUNDARY names
  std::set<std::string> boundary_qualified;  // ... and qualified forms
  std::size_t files_indexed = 0;             // src/ files fed into the pass
};

/// Build the symbol table over the src/ subset of `files`. `scans` is the
/// per-file tokenization, parallel to `files` (tokenize once, analyze
/// many times). FunctionDef token ranges index into the matching scan's
/// token vector via `file_index`.
[[nodiscard]] SymbolTable extract_symbols(const std::vector<SourceFile>& files,
                                          const std::vector<ScanResult>& scans);

}  // namespace iwscan::lint
