#include "iwlint.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>

namespace iwscan::lint {
namespace {

// ---------------------------------------------------------------------------
// Module registry: the DAG from DESIGN.md §3.
//   util → netbase → netsim → tcpstack → {httpd, tls} → scanner → core →
//   inetmodel → analysis
// `deps` lists every module a file in `dir` may include (its own module is
// always allowed). scanner deliberately omits the protocol layers: the
// ZMap-style engine must stay swappable against real probe modules.
// ---------------------------------------------------------------------------

struct ModuleSpec {
  std::string_view dir;  // directory under src/
  std::string_view ns;   // required namespace: iwscan::<ns>
  std::vector<std::string_view> deps;
};

const std::vector<ModuleSpec>& modules() {
  static const std::vector<ModuleSpec> specs = {
      {"util", "util", {}},
      {"netbase", "net", {"util"}},
      {"netsim", "sim", {"util", "netbase"}},
      {"tcpstack", "tcp", {"util", "netbase", "netsim"}},
      {"httpd", "http", {"util", "netbase", "netsim", "tcpstack"}},
      {"tls", "tls", {"util", "netbase", "netsim", "tcpstack"}},
      {"scanner", "scan", {"util", "netbase", "netsim"}},
      {"core", "core",
       {"util", "netbase", "netsim", "tcpstack", "httpd", "tls", "scanner"}},
      {"inetmodel", "model", {"util", "netbase", "netsim", "tcpstack", "httpd", "tls"}},
      {"exec", "exec",
       {"util", "netbase", "netsim", "tcpstack", "httpd", "tls", "scanner", "core",
        "inetmodel"}},
      {"analysis", "analysis",
       {"util", "netbase", "netsim", "tcpstack", "httpd", "tls", "scanner", "core",
        "inetmodel", "exec"}},
  };
  return specs;
}

const ModuleSpec* find_module(std::string_view dir) {
  for (const auto& spec : modules()) {
    if (spec.dir == dir) return &spec;
  }
  return nullptr;
}

// Wire enums whose switches must stay default-free so a newly registered
// value is a compile-time (-Wswitch) event, not a silent fall-through.
// Matched against qualified case labels (`tls::HandshakeType::ClientHello`
// contains "HandshakeType"; `RequestParser::Status::Complete` contains
// "RequestParser").
constexpr std::array<std::string_view, 6> kWireEnums = {
    "ContentType",      // TLS record types (tls/records.hpp)
    "HandshakeType",    // TLS handshake types (tls/handshake.hpp)
    "AlertLevel",       // TLS alerts (tls/records.hpp)
    "AlertDescription", // TLS alerts (tls/records.hpp)
    "IcmpType",         // ICMP message types (netbase/headers.hpp)
    "RequestParser",    // HTTP parser states (httpd/http_message.hpp)
};

// TCP option kinds are plain constants, not an enum class; a switch whose
// case labels use any of these is a wire-kind dispatch all the same.
constexpr std::array<std::string_view, 3> kTcpOptionKinds = {
    "kMss", "kWindowScale", "kSackPermitted"};

struct BannedCall {
  std::string_view name;
  std::string_view message;
  std::vector<std::string_view> allowed_paths;
};

const std::vector<BannedCall>& banned_calls() {
  static const std::vector<BannedCall> calls = {
      {"memcpy",
       "raw memcpy bypasses the byte/text bridge; use std::copy/std::ranges::copy "
       "or the helpers in util/bytes.hpp",
       {"src/util/bytes.hpp"}},
      {"sprintf", "unbounded sprintf; use std::snprintf or util/strings.hpp", {}},
      {"atoi", "atoi has no error reporting; use std::from_chars", {}},
      {"strtol", "strtol error handling is errno-based; use std::from_chars", {}},
      {"rand",
       "rand() breaks seeded determinism; draw from an explicitly seeded "
       "util::Rng",
       {}},
      {"time",
       "wall-clock time breaks replayable scans; use the event loop's virtual "
       "now()",
       {}},
      {"assert",
       "assert() vanishes under NDEBUG; use IWSCAN_ASSERT/IWSCAN_UNREACHABLE "
       "from util/check.hpp",
       {}},
      // The malloc family bypasses operator new, which the allocation-
      // counting perf hook replaces; untracked raw allocations would make
      // the steady-state allocation budgets lie. alloc_stats.hpp itself is
      // the hook: its replacement operator new must bottom out in malloc
      // (not new) so sanitizer interceptors still see every allocation.
      {"malloc", "raw malloc evades the allocation-counting hook; use new or "
                 "standard containers", {"src/util/alloc_stats.hpp"}},
      {"calloc", "raw calloc evades the allocation-counting hook; use new or "
                 "standard containers", {"src/util/alloc_stats.hpp"}},
      {"realloc", "raw realloc evades the allocation-counting hook; use "
                  "standard containers", {"src/util/alloc_stats.hpp"}},
      {"aligned_alloc", "raw aligned_alloc evades the allocation-counting "
                        "hook; use aligned operator new", {"src/util/alloc_stats.hpp"}},
      {"free", "raw free pairs with raw malloc; both are reserved for the "
               "allocation-counting hook", {"src/util/alloc_stats.hpp"}},
  };
  return calls;
}

// std::random_device / srand / *_clock::now undermine the bit-reproducible
// permutation sweeps and fuzz corpora; only the seeded RNG implementation
// and the simulator's virtual-time internals may touch entropy or clocks.
// util/stopwatch.cpp wraps the wall clock for *benchmark reporting only*
// (bench/ wall-clock rows); scan logic — including every worker in
// src/exec/ — stays on virtual time and is deliberately NOT allowlisted.
constexpr std::array<std::string_view, 3> kDeterminismAllowedPrefixes = {
    "src/util/rng.cpp", "src/util/stopwatch.cpp", "src/netsim/"};

constexpr std::array<std::string_view, 3> kBannedClocks = {
    "steady_clock", "system_clock", "high_resolution_clock"};

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

enum class TokKind { Ident, Number, Str, CharLit, Punct };

struct Token {
  TokKind kind;
  std::string_view text;
  int line;
};

struct IncludeDirective {
  int line;
  std::string_view target;
  bool angled;
};

struct Comment {
  int line;  // line the comment starts on
  std::string_view text;
};

struct ScanResult {
  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;
  std::vector<Comment> comments;
  std::set<int> code_lines;            // lines holding at least one token/directive
  int first_code_line = 0;             // 0 = file holds no code at all
  bool first_code_is_pragma_once = false;
};

bool is_ident_start(char c) {
  return (std::isalpha(static_cast<unsigned char>(c)) != 0) || c == '_';
}
bool is_ident_char(char c) {
  return (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '_';
}

ScanResult tokenize(std::string_view src) {
  ScanResult out;
  std::size_t i = 0;
  int line = 1;
  bool at_line_start = true;  // only whitespace seen since the last newline

  auto note_code = [&](int at_line) {
    out.code_lines.insert(at_line);
    if (out.first_code_line == 0) out.first_code_line = at_line;
  };

  auto skip_string = [&](char quote) {
    // i points at the opening quote.
    ++i;
    while (i < src.size() && src[i] != quote) {
      if (src[i] == '\\' && i + 1 < src.size()) ++i;
      if (src[i] == '\n') ++line;  // unterminated/multiline literal: keep counting
      ++i;
    }
    if (i < src.size()) ++i;  // closing quote
  };

  while (i < src.size()) {
    const char c = src[i];

    if (c == '\n') {
      ++line;
      at_line_start = true;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }

    // Comments.
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      const std::size_t start = i;
      while (i < src.size() && src[i] != '\n') ++i;
      out.comments.push_back({line, src.substr(start, i - start)});
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      const std::size_t start = i;
      const int start_line = line;
      i += 2;
      while (i + 1 < src.size() && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i = (i + 1 < src.size()) ? i + 2 : src.size();
      out.comments.push_back({start_line, src.substr(start, i - start)});
      at_line_start = false;
      continue;
    }

    // Preprocessor directives (only at the start of a line).
    if (c == '#' && at_line_start) {
      const int dir_line = line;
      ++i;
      while (i < src.size() && (src[i] == ' ' || src[i] == '\t')) ++i;
      std::size_t word_start = i;
      while (i < src.size() && is_ident_char(src[i])) ++i;
      const std::string_view word = src.substr(word_start, i - word_start);
      if (word == "include") {
        while (i < src.size() && (src[i] == ' ' || src[i] == '\t')) ++i;
        if (i < src.size() && (src[i] == '"' || src[i] == '<')) {
          const char close = (src[i] == '<') ? '>' : '"';
          const bool angled = (src[i] == '<');
          ++i;
          const std::size_t target_start = i;
          while (i < src.size() && src[i] != close && src[i] != '\n') ++i;
          out.includes.push_back(
              {dir_line, src.substr(target_start, i - target_start), angled});
          if (i < src.size() && src[i] == close) ++i;
        }
        note_code(dir_line);
      } else if (word == "pragma") {
        while (i < src.size() && (src[i] == ' ' || src[i] == '\t')) ++i;
        word_start = i;
        while (i < src.size() && is_ident_char(src[i])) ++i;
        if (out.first_code_line == 0 && src.substr(word_start, i - word_start) == "once") {
          out.first_code_is_pragma_once = true;
        }
        note_code(dir_line);
      } else {
        // Other directives (#define, #if, ...): the keyword is consumed and
        // the body falls through to normal tokenization so banned calls
        // inside macro bodies are still seen.
        note_code(dir_line);
      }
      at_line_start = false;
      continue;
    }
    at_line_start = false;

    // String / char literals (incl. raw strings via their encoding prefix).
    if (c == '"') {
      const std::size_t start = i;
      skip_string('"');
      out.tokens.push_back({TokKind::Str, src.substr(start, i - start), line});
      note_code(line);
      continue;
    }
    if (c == '\'') {
      const std::size_t start = i;
      skip_string('\'');
      out.tokens.push_back({TokKind::CharLit, src.substr(start, i - start), line});
      note_code(line);
      continue;
    }

    if (is_ident_start(c)) {
      const std::size_t start = i;
      while (i < src.size() && is_ident_char(src[i])) ++i;
      const std::string_view word = src.substr(start, i - start);
      const bool raw_prefix = (word == "R" || word == "u8R" || word == "uR" ||
                               word == "UR" || word == "LR");
      if (raw_prefix && i < src.size() && src[i] == '"') {
        // Raw string: R"delim( ... )delim".
        ++i;
        const std::size_t delim_start = i;
        while (i < src.size() && src[i] != '(') ++i;
        const std::string terminator =
            ")" + std::string(src.substr(delim_start, i - delim_start)) + "\"";
        const std::size_t body = (i < src.size()) ? i + 1 : i;
        const std::size_t end = src.find(terminator, body);
        const std::size_t stop =
            (end == std::string_view::npos) ? src.size() : end + terminator.size();
        line += static_cast<int>(std::count(src.begin() + static_cast<long>(start),
                                            src.begin() + static_cast<long>(stop), '\n'));
        out.tokens.push_back({TokKind::Str, src.substr(start, stop - start), line});
        i = stop;
      } else {
        out.tokens.push_back({TokKind::Ident, word, line});
      }
      note_code(line);
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      const std::size_t start = i;
      while (i < src.size() &&
             (is_ident_char(src[i]) || src[i] == '.' ||
              (src[i] == '\'' && i + 1 < src.size() && is_ident_char(src[i + 1])))) {
        ++i;
      }
      out.tokens.push_back({TokKind::Number, src.substr(start, i - start), line});
      note_code(line);
      continue;
    }

    // Punctuation. '::' is one token (qualified names matter to the rules).
    if (c == ':' && i + 1 < src.size() && src[i + 1] == ':') {
      out.tokens.push_back({TokKind::Punct, src.substr(i, 2), line});
      i += 2;
    } else {
      out.tokens.push_back({TokKind::Punct, src.substr(i, 1), line});
      ++i;
    }
    note_code(line);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Suppressions: a comment holding the iwlint marker followed by
// "allow(rule-one, rule-two) -- justification".
// ---------------------------------------------------------------------------

struct Suppressions {
  // rule -> set of lines on which findings of that rule are allowed
  std::map<std::string_view, std::set<int>, std::less<>> allowed;
};

bool is_known_rule(std::string_view name) {
  const auto& names = rule_names();
  return std::find(names.begin(), names.end(), name) != names.end();
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())) != 0)
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())) != 0)
    s.remove_suffix(1);
  return s;
}

Suppressions collect_suppressions(const ScanResult& scan,
                                  std::vector<Finding>& findings,
                                  std::string_view path) {
  Suppressions out;
  constexpr std::string_view kMarker = "iwlint: allow(";
  for (const auto& comment : scan.comments) {
    const std::size_t at = comment.text.find(kMarker);
    if (at == std::string_view::npos) continue;
    const std::size_t list_start = at + kMarker.size();
    const std::size_t close = comment.text.find(')', list_start);
    if (close == std::string_view::npos) {
      findings.push_back({std::string(path), comment.line, "suppression",
                          "malformed suppression: missing ')'"});
      continue;
    }

    // A trailing-comment suppression covers its own line; a comment-only
    // line covers the next line that holds code.
    int effective_line = comment.line;
    if (scan.code_lines.count(comment.line) == 0) {
      const auto next = scan.code_lines.upper_bound(comment.line);
      if (next != scan.code_lines.end()) effective_line = *next;
    }

    // The justification is mandatory: "-- <non-empty reason>" after ')'.
    const std::string_view tail = trim(comment.text.substr(close + 1));
    const bool justified = tail.size() > 2 && tail.substr(0, 2) == "--" &&
                           !trim(tail.substr(2)).empty();
    if (!justified) {
      findings.push_back(
          {std::string(path), comment.line, "suppression",
           "suppression requires a justification: // iwlint: allow(<rule>) -- "
           "<reason>"});
      continue;  // an unjustified suppression suppresses nothing
    }

    std::string_view list = comment.text.substr(list_start, close - list_start);
    while (!list.empty()) {
      const std::size_t comma = list.find(',');
      const std::string_view name = trim(list.substr(0, comma));
      list = (comma == std::string_view::npos) ? std::string_view{}
                                               : list.substr(comma + 1);
      if (name.empty()) continue;
      if (!is_known_rule(name) || name == "suppression") {
        findings.push_back({std::string(path), comment.line, "suppression",
                            "unknown rule '" + std::string(name) + "' in suppression"});
        continue;
      }
      // Point the suppression at the rule registry's copy of the name so the
      // string_view outlives this comment's buffer trivially.
      const auto& names = rule_names();
      const auto it = std::find(names.begin(), names.end(), name);
      out.allowed[*it].insert(effective_line);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Path classification
// ---------------------------------------------------------------------------

struct FileClass {
  const ModuleSpec* module = nullptr;  // set for src/<module>/ files
  bool src_root = false;               // file directly under src/ (umbrella)
  bool header = false;
  std::string_view basename;
};

FileClass classify(std::string_view path) {
  FileClass fc;
  const std::size_t slash = path.rfind('/');
  fc.basename = (slash == std::string_view::npos) ? path : path.substr(slash + 1);
  fc.header = path.size() >= 4 && path.substr(path.size() - 4) == ".hpp";
  if (path.substr(0, 4) == "src/") {
    const std::string_view rest = path.substr(4);
    const std::size_t sep = rest.find('/');
    if (sep == std::string_view::npos) {
      fc.src_root = true;
    } else {
      fc.module = find_module(rest.substr(0, sep));
    }
  }
  return fc;
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

struct RuleContext {
  std::string_view path;
  const FileClass& file;
  const ScanResult& scan;
  std::vector<Finding>& findings;

  void add(int line, std::string_view rule, std::string message) const {
    findings.push_back({std::string(path), line, std::string(rule), std::move(message)});
  }
};

// Rule: layering — every project include must respect the module DAG.
void rule_layering(const RuleContext& ctx) {
  // tests/, bench/, examples/ and tools/ sit on top of the whole tree.
  if (ctx.file.module == nullptr && !ctx.file.src_root) return;

  for (const auto& inc : ctx.scan.includes) {
    const std::size_t sep = inc.target.find('/');
    const ModuleSpec* target =
        (sep == std::string_view::npos) ? nullptr : find_module(inc.target.substr(0, sep));
    if (inc.angled) {
      if (target == nullptr) continue;  // system/library header
      ctx.add(inc.line, "layering",
              "project header <" + std::string(inc.target) +
                  "> must be included with quotes");
      continue;
    }
    if (target == nullptr) {
      ctx.add(inc.line, "layering",
              "quoted include \"" + std::string(inc.target) +
                  "\" does not name a module header (expected <module>/<file>.hpp)");
      continue;
    }
    if (ctx.file.src_root) continue;  // the umbrella header sees everything
    const ModuleSpec& self = *ctx.file.module;
    if (target->dir == self.dir) continue;
    if (std::find(self.deps.begin(), self.deps.end(), target->dir) != self.deps.end())
      continue;
    ctx.add(inc.line, "layering",
            "module '" + std::string(self.dir) + "' may not include '" +
                std::string(inc.target) + "': src/" + std::string(self.dir) +
                " sits below src/" + std::string(target->dir) +
                " in the module DAG (DESIGN.md §3)");
  }
}

// Rule: byte-bridge — reinterpret_cast / C-style pointer casts live only in
// src/util/bytes.hpp, the one audited byte↔text crossing.
void rule_byte_bridge(const RuleContext& ctx) {
  if (ctx.path == "src/util/bytes.hpp") return;
  const auto& toks = ctx.scan.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind == TokKind::Ident && toks[i].text == "reinterpret_cast") {
      ctx.add(toks[i].line, "byte-bridge",
              "reinterpret_cast outside util/bytes.hpp; use util::as_text / "
              "util::as_bytes");
      continue;
    }
    // C-style pointer cast: '(' type-tokens '*' ')' <operand>. The operand
    // requirement keeps unnamed pointer parameters `f(const char*)` and
    // `sizeof(int*)` out of the match.
    if (toks[i].kind != TokKind::Punct || toks[i].text != "(") continue;
    std::size_t j = i + 1;
    bool saw_ident = false;
    while (j < toks.size() &&
           (toks[j].kind == TokKind::Ident || toks[j].text == "::")) {
      saw_ident = saw_ident || toks[j].kind == TokKind::Ident;
      ++j;
    }
    bool saw_star = false;
    while (j < toks.size() && toks[j].text == "*") {
      saw_star = true;
      ++j;
    }
    if (!saw_ident || !saw_star) continue;
    if (j >= toks.size() || toks[j].text != ")") continue;
    if (j + 1 >= toks.size()) continue;
    const Token& next = toks[j + 1];
    const bool operand_like =
        next.kind == TokKind::Number || next.kind == TokKind::Str ||
        next.kind == TokKind::CharLit || next.text == "(" || next.text == "&" ||
        next.text == "*" ||
        (next.kind == TokKind::Ident && next.text != "noexcept" &&
         next.text != "const" && next.text != "override" && next.text != "final" &&
         next.text != "requires");
    if (operand_like) {
      ctx.add(toks[i].line, "byte-bridge",
              "C-style pointer cast outside util/bytes.hpp; use util::as_text / "
              "util::as_bytes or static_cast");
    }
  }
}

// Rule: banned-call — libc calls that break determinism, safety, or the
// check.hpp discipline.
void rule_banned_call(const RuleContext& ctx) {
  const auto& toks = ctx.scan.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::Ident || toks[i + 1].text != "(") continue;
    const BannedCall* banned = nullptr;
    for (const auto& call : banned_calls()) {
      if (call.name == toks[i].text) {
        banned = &call;
        break;
      }
    }
    if (banned == nullptr) continue;
    if (i > 0) {
      const Token& prev = toks[i - 1];
      if (prev.text == "." || prev.text == "->") continue;  // member access
      if (prev.text == "::" && i > 1 && toks[i - 2].kind == TokKind::Ident &&
          toks[i - 2].text != "std") {
        continue;  // qualified call into some namespace other than std
      }
      // `long time(...)` is a declaration whose name merely collides; a call
      // site is preceded by punctuation or an expression keyword.
      if (prev.kind == TokKind::Ident && prev.text != "return" &&
          prev.text != "case" && prev.text != "throw" && prev.text != "else" &&
          prev.text != "do" && prev.text != "co_return" && prev.text != "co_yield") {
        continue;
      }
    }
    if (std::find(banned->allowed_paths.begin(), banned->allowed_paths.end(),
                  ctx.path) != banned->allowed_paths.end()) {
      continue;
    }
    ctx.add(toks[i].line, "banned-call",
            std::string(toks[i].text) + "(): " + std::string(banned->message));
  }
}

// Rule: wire-enum-default — a default: in a switch over a registered wire
// enum hides newly registered values from -Wswitch.
void rule_wire_enum_default(const RuleContext& ctx) {
  const auto& toks = ctx.scan.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::Ident || toks[i].text != "switch") continue;
    // Skip the condition '(...)'.
    std::size_t j = i + 1;
    if (j >= toks.size() || toks[j].text != "(") continue;
    int depth = 0;
    for (; j < toks.size(); ++j) {
      if (toks[j].text == "(") ++depth;
      if (toks[j].text == ")" && --depth == 0) break;
    }
    // Find the body '{...}' and scan its depth-1 labels.
    while (++j < toks.size() && toks[j].text != "{") {
    }
    if (j >= toks.size()) continue;
    depth = 0;
    bool wire = false;
    std::optional<std::size_t> default_at;
    std::string_view matched_enum;
    for (; j < toks.size(); ++j) {
      if (toks[j].text == "{") ++depth;
      if (toks[j].text == "}" && --depth == 0) break;
      if (depth != 1 || toks[j].kind != TokKind::Ident) continue;
      if (toks[j].text == "default") {
        if (!default_at) default_at = j;
      } else if (toks[j].text == "case") {
        for (std::size_t k = j + 1; k < toks.size() && toks[k].text != ":"; ++k) {
          if (toks[k].kind != TokKind::Ident) continue;
          const bool is_enum = std::find(kWireEnums.begin(), kWireEnums.end(),
                                         toks[k].text) != kWireEnums.end();
          const bool is_kind =
              std::find(kTcpOptionKinds.begin(), kTcpOptionKinds.end(),
                        toks[k].text) != kTcpOptionKinds.end();
          if (is_enum || is_kind) {
            wire = true;
            matched_enum = is_enum ? toks[k].text : std::string_view("TCP option kind");
          }
        }
      }
    }
    if (wire && default_at) {
      ctx.add(toks[*default_at].line, "wire-enum-default",
              "switch over wire enum (" + std::string(matched_enum) +
                  ") must not have a default:; enumerate values so -Wswitch "
                  "surfaces newly registered ones");
    }
  }
}

// Rule: header-hygiene — #pragma once first, snake_case names, and the
// module's iwscan::<ns> namespace.
void rule_header_hygiene(const RuleContext& ctx) {
  const std::string_view name = ctx.file.basename;
  const std::size_t dot = name.rfind('.');
  const std::string_view stem = name.substr(0, dot);
  const bool stem_ok =
      !stem.empty() &&
      std::all_of(stem.begin(), stem.end(), [](char c) {
        return (std::islower(static_cast<unsigned char>(c)) != 0) ||
               (std::isdigit(static_cast<unsigned char>(c)) != 0) || c == '_';
      });
  if (!stem_ok) {
    ctx.add(1, "header-hygiene",
            "file name '" + std::string(name) + "' is not lower_snake_case");
  }
  if (!ctx.file.header) return;

  if (!ctx.scan.first_code_is_pragma_once) {
    ctx.add(ctx.scan.first_code_line > 0 ? ctx.scan.first_code_line : 1,
            "header-hygiene", "header must open with #pragma once");
  }

  if (ctx.file.module == nullptr) return;  // namespace rule is for src modules
  const std::string_view expected = ctx.file.module->ns;
  const auto& toks = ctx.scan.tokens;
  bool found = false;
  for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
    if (toks[i].text != "namespace" || toks[i + 1].text != "iwscan" ||
        toks[i + 2].text != "::") {
      continue;
    }
    if (toks[i + 3].text == expected) {
      found = true;
    } else {
      ctx.add(toks[i].line, "header-hygiene",
              "namespace iwscan::" + std::string(toks[i + 3].text) +
                  " does not match module '" + std::string(ctx.file.module->dir) +
                  "' (expected iwscan::" + std::string(expected) + ")");
    }
  }
  if (!found) {
    ctx.add(ctx.scan.first_code_line > 0 ? ctx.scan.first_code_line : 1,
            "header-hygiene",
            "header declares no namespace iwscan::" + std::string(expected));
  }
}

// Rule: determinism — entropy and wall clocks only inside the seeded RNG
// implementation and the simulator.
void rule_determinism(const RuleContext& ctx) {
  for (const auto& prefix : kDeterminismAllowedPrefixes) {
    if (ctx.path.substr(0, prefix.size()) == prefix) return;
  }
  const auto& toks = ctx.scan.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::Ident) continue;
    if (toks[i].text == "random_device") {
      ctx.add(toks[i].line, "determinism",
              "std::random_device is non-reproducible; seed a util::Rng explicitly");
    } else if (toks[i].text == "srand") {
      ctx.add(toks[i].line, "determinism",
              "srand() seeds global hidden state; use util::Rng");
    } else if (std::find(kBannedClocks.begin(), kBannedClocks.end(), toks[i].text) !=
                   kBannedClocks.end() &&
               i + 2 < toks.size() && toks[i + 1].text == "::" &&
               toks[i + 2].text == "now") {
      ctx.add(toks[i].line, "determinism",
              std::string(toks[i].text) +
                  "::now() reads the wall clock; use the event loop's virtual now()");
    }
  }
}

void apply_rules(const RuleContext& ctx) {
  rule_layering(ctx);
  rule_byte_bridge(ctx);
  rule_banned_call(ctx);
  rule_wire_enum_default(ctx);
  rule_header_hygiene(ctx);
  rule_determinism(ctx);
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> names = {
      "layering",      "byte-bridge",    "banned-call", "wire-enum-default",
      "header-hygiene", "determinism",   "suppression",
  };
  return names;
}

std::vector<Finding> lint_source(std::string_view path, std::string_view source,
                                 const Options& options) {
  const ScanResult scan = tokenize(source);
  const FileClass file = classify(path);

  std::vector<Finding> findings;
  const Suppressions suppressions = collect_suppressions(scan, findings, path);
  const RuleContext ctx{path, file, scan, findings};
  apply_rules(ctx);

  std::vector<Finding> kept;
  kept.reserve(findings.size());
  for (auto& finding : findings) {
    const auto allowed = suppressions.allowed.find(finding.rule);
    if (allowed != suppressions.allowed.end() &&
        allowed->second.count(finding.line) != 0) {
      continue;
    }
    if (std::find(options.disabled_rules.begin(), options.disabled_rules.end(),
                  finding.rule) != options.disabled_rules.end()) {
      continue;
    }
    kept.push_back(std::move(finding));
  }
  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.line, a.rule, a.message) < std::tie(b.line, b.rule, b.message);
  });
  return kept;
}

std::vector<Finding> lint_tree(const std::string& root,
                               const std::vector<std::string>& dirs,
                               const Options& options,
                               std::vector<std::string>* io_errors) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  for (const auto& dir : dirs) {
    const fs::path base = fs::path(root) / dir;
    std::error_code ec;
    if (fs::is_regular_file(base, ec)) {
      files.push_back(base);
      continue;
    }
    fs::recursive_directory_iterator it(base, ec);
    if (ec) {
      if (io_errors != nullptr)
        io_errors->push_back(base.generic_string() + ": " + ec.message());
      continue;
    }
    for (const auto& entry : it) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".hpp" && ext != ".cpp" && ext != ".cc") continue;
      const std::string rel = entry.path().generic_string();
      // Fixture snippets violate rules on purpose; never lint them in tree mode.
      if (rel.find("tests/lint/fixtures") != std::string::npos) continue;
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<Finding> findings;
  for (const auto& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      if (io_errors != nullptr)
        io_errors->push_back(file.generic_string() + ": cannot open");
      continue;
    }
    std::ostringstream content;
    content << in.rdbuf();
    std::error_code ec;
    fs::path rel = fs::relative(file, root, ec);
    const std::string rel_path = (ec ? file : rel).generic_string();
    auto file_findings = lint_source(rel_path, content.str(), options);
    findings.insert(findings.end(), std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  return findings;
}

std::string format_text(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": " + finding.rule +
         ": " + finding.message;
}

std::string format_json(const std::vector<Finding>& findings) {
  std::string out = "[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    if (i > 0) out += ",";
    out += "\n  {\"file\": \"" + json_escape(findings[i].file) +
           "\", \"line\": " + std::to_string(findings[i].line) + ", \"rule\": \"" +
           json_escape(findings[i].rule) + "\", \"message\": \"" +
           json_escape(findings[i].message) + "\"}";
  }
  out += findings.empty() ? "]\n" : "\n]\n";
  return out;
}

}  // namespace iwscan::lint
