#include "iwlint.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>

#include "callgraph.hpp"
#include "dataflow.hpp"
#include "symbols.hpp"
#include "tokens.hpp"

namespace iwscan::lint {
namespace {

// ---------------------------------------------------------------------------
// Module registry: the DAG from DESIGN.md §3.
//   util → netbase → netsim → tcpstack → {httpd, tls} → scanner → core →
//   inetmodel → analysis
// `deps` lists every module a file in `dir` may include (its own module is
// always allowed). scanner deliberately omits the protocol layers: the
// ZMap-style engine must stay swappable against real probe modules.
// ---------------------------------------------------------------------------

struct ModuleSpec {
  std::string_view dir;  // directory under src/
  std::string_view ns;   // required namespace: iwscan::<ns>
  std::vector<std::string_view> deps;
};

const std::vector<ModuleSpec>& modules() {
  static const std::vector<ModuleSpec> specs = {
      {"util", "util", {}},
      {"netbase", "net", {"util"}},
      {"netsim", "sim", {"util", "netbase"}},
      {"tcpstack", "tcp", {"util", "netbase", "netsim"}},
      {"httpd", "http", {"util", "netbase", "netsim", "tcpstack"}},
      {"tls", "tls", {"util", "netbase", "netsim", "tcpstack"}},
      {"scanner", "scan", {"util", "netbase", "netsim"}},
      {"core", "core",
       {"util", "netbase", "netsim", "tcpstack", "httpd", "tls", "scanner"}},
      {"store", "store", {"util", "netbase", "netsim", "scanner", "core"}},
      {"inetmodel", "model", {"util", "netbase", "netsim", "tcpstack", "httpd", "tls"}},
      {"exec", "exec",
       {"util", "netbase", "netsim", "tcpstack", "httpd", "tls", "scanner", "core",
        "inetmodel", "store"}},
      {"analysis", "analysis",
       {"util", "netbase", "netsim", "tcpstack", "httpd", "tls", "scanner", "core",
        "inetmodel", "store", "exec"}},
  };
  return specs;
}

const ModuleSpec* find_module(std::string_view dir) {
  for (const auto& spec : modules()) {
    if (spec.dir == dir) return &spec;
  }
  return nullptr;
}

// Wire enums whose switches must stay default-free so a newly registered
// value is a compile-time (-Wswitch) event, not a silent fall-through.
// Matched against qualified case labels (`tls::HandshakeType::ClientHello`
// contains "HandshakeType"; `RequestParser::Status::Complete` contains
// "RequestParser").
constexpr std::array<std::string_view, 6> kWireEnums = {
    "ContentType",      // TLS record types (tls/records.hpp)
    "HandshakeType",    // TLS handshake types (tls/handshake.hpp)
    "AlertLevel",       // TLS alerts (tls/records.hpp)
    "AlertDescription", // TLS alerts (tls/records.hpp)
    "IcmpType",         // ICMP message types (netbase/headers.hpp)
    "RequestParser",    // HTTP parser states (httpd/http_message.hpp)
};

// TCP option kinds are plain constants, not an enum class; a switch whose
// case labels use any of these is a wire-kind dispatch all the same.
constexpr std::array<std::string_view, 3> kTcpOptionKinds = {
    "kMss", "kWindowScale", "kSackPermitted"};

struct BannedCall {
  std::string_view name;
  std::string_view message;
  std::vector<std::string_view> allowed_paths;
};

const std::vector<BannedCall>& banned_calls() {
  static const std::vector<BannedCall> calls = {
      {"memcpy",
       "raw memcpy bypasses the byte/text bridge; use std::copy/std::ranges::copy "
       "or the helpers in util/bytes.hpp",
       {"src/util/bytes.hpp"}},
      {"sprintf", "unbounded sprintf; use std::snprintf or util/strings.hpp", {}},
      {"atoi", "atoi has no error reporting; use std::from_chars", {}},
      {"strtol", "strtol error handling is errno-based; use std::from_chars", {}},
      {"rand",
       "rand() breaks seeded determinism; draw from an explicitly seeded "
       "util::Rng",
       {}},
      {"time",
       "wall-clock time breaks replayable scans; use the event loop's virtual "
       "now()",
       {}},
      {"assert",
       "assert() vanishes under NDEBUG; use IWSCAN_ASSERT/IWSCAN_UNREACHABLE "
       "from util/check.hpp",
       {}},
      // The malloc family bypasses operator new, which the allocation-
      // counting perf hook replaces; untracked raw allocations would make
      // the steady-state allocation budgets lie. alloc_stats.hpp itself is
      // the hook: its replacement operator new must bottom out in malloc
      // (not new) so sanitizer interceptors still see every allocation.
      {"malloc", "raw malloc evades the allocation-counting hook; use new or "
                 "standard containers", {"src/util/alloc_stats.hpp"}},
      {"calloc", "raw calloc evades the allocation-counting hook; use new or "
                 "standard containers", {"src/util/alloc_stats.hpp"}},
      {"realloc", "raw realloc evades the allocation-counting hook; use "
                  "standard containers", {"src/util/alloc_stats.hpp"}},
      {"aligned_alloc", "raw aligned_alloc evades the allocation-counting "
                        "hook; use aligned operator new", {"src/util/alloc_stats.hpp"}},
      {"free", "raw free pairs with raw malloc; both are reserved for the "
               "allocation-counting hook", {"src/util/alloc_stats.hpp"}},
  };
  return calls;
}

// std::random_device / srand / *_clock::now undermine the bit-reproducible
// permutation sweeps and fuzz corpora; only the seeded RNG implementation
// and the simulator's virtual-time internals may touch entropy or clocks.
// util/stopwatch.cpp wraps the wall clock for *benchmark reporting only*
// (bench/ wall-clock rows); scan logic — including every worker in
// src/exec/ — stays on virtual time and is deliberately NOT allowlisted.
// The determinism-taint rule is the cross-TU sharpening of this: inside
// the allowlisted prefixes it still flags sources that are *reachable
// from the scan roots* unless they sit in the two quarantine files.
constexpr std::array<std::string_view, 3> kDeterminismAllowedPrefixes = {
    "src/util/rng.cpp", "src/util/stopwatch.cpp", "src/netsim/"};

constexpr std::array<std::string_view, 3> kBannedClocks = {
    "steady_clock", "system_clock", "high_resolution_clock"};

// ---------------------------------------------------------------------------
// Suppressions: a comment holding the iwlint marker followed by
// "allow(rule-one, rule-two) -- justification".
// ---------------------------------------------------------------------------

struct Suppressions {
  // rule -> set of lines on which findings of that rule are allowed
  std::map<std::string_view, std::set<int>, std::less<>> allowed;

  [[nodiscard]] bool covers(const Finding& finding) const {
    const auto it = allowed.find(finding.rule);
    return it != allowed.end() && it->second.count(finding.line) != 0;
  }
};

bool is_known_rule(std::string_view name) {
  const auto& names = rule_names();
  return std::find(names.begin(), names.end(), name) != names.end();
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())) != 0)
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())) != 0)
    s.remove_suffix(1);
  return s;
}

/// Line ranges of the token-level "statements" in a file, delimited by
/// ';'/'{'/'}'. A suppression anywhere inside a multi-line statement (a
/// wrapped call, a condition split across lines) covers the whole span, so
/// the comment can sit on the readable line instead of whichever line the
/// rule happens to report.
std::vector<std::pair<int, int>> statement_spans(const ScanResult& scan) {
  std::vector<std::pair<int, int>> spans;
  int start = -1;
  int end = -1;
  for (const auto& tok : scan.tokens) {
    if (start < 0) start = tok.line;
    end = tok.line;
    if (tok.kind == TokKind::Punct &&
        (tok.text == ";" || tok.text == "{" || tok.text == "}")) {
      spans.emplace_back(start, end);
      start = -1;
    }
  }
  if (start >= 0) spans.emplace_back(start, end);
  return spans;
}

Suppressions collect_suppressions(const ScanResult& scan,
                                  std::vector<Finding>& findings,
                                  std::string_view path) {
  Suppressions out;
  const std::vector<std::pair<int, int>> spans = statement_spans(scan);
  constexpr std::string_view kMarker = "iwlint: allow(";
  for (const auto& comment : scan.comments) {
    const std::size_t at = comment.text.find(kMarker);
    if (at == std::string_view::npos) continue;
    const std::size_t list_start = at + kMarker.size();
    const std::size_t close = comment.text.find(')', list_start);
    if (close == std::string_view::npos) {
      findings.push_back({std::string(path), comment.line, "suppression",
                          "malformed suppression: missing ')'"});
      continue;
    }

    // A trailing-comment suppression covers its own line; a comment-only
    // line covers the next line that holds code.
    int effective_line = comment.line;
    if (scan.code_lines.count(comment.line) == 0) {
      const auto next = scan.code_lines.upper_bound(comment.line);
      if (next != scan.code_lines.end()) effective_line = *next;
    }

    // ... and the full extent of any multi-line statement it lands in.
    std::set<int> lines = {effective_line};
    for (const auto& [lo, hi] : spans) {
      if (lo <= effective_line && effective_line <= hi) {
        for (int l = lo; l <= hi; ++l) lines.insert(l);
      }
    }

    // The justification is mandatory: "-- <non-empty reason>" after ')'.
    const std::string_view tail = trim(comment.text.substr(close + 1));
    const bool justified = tail.size() > 2 && tail.substr(0, 2) == "--" &&
                           !trim(tail.substr(2)).empty();
    if (!justified) {
      findings.push_back(
          {std::string(path), comment.line, "suppression",
           "suppression requires a justification: // iwlint: allow(<rule>) -- "
           "<reason>"});
      continue;  // an unjustified suppression suppresses nothing
    }

    std::string_view list = comment.text.substr(list_start, close - list_start);
    while (!list.empty()) {
      const std::size_t comma = list.find(',');
      const std::string_view name = trim(list.substr(0, comma));
      list = (comma == std::string_view::npos) ? std::string_view{}
                                               : list.substr(comma + 1);
      if (name.empty()) continue;
      if (!is_known_rule(name) || name == "suppression") {
        findings.push_back({std::string(path), comment.line, "suppression",
                            "unknown rule '" + std::string(name) + "' in suppression"});
        continue;
      }
      // Point the suppression at the rule registry's copy of the name so the
      // string_view outlives this comment's buffer trivially.
      const auto& names = rule_names();
      const auto it = std::find(names.begin(), names.end(), name);
      out.allowed[*it].insert(lines.begin(), lines.end());
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Path classification
// ---------------------------------------------------------------------------

struct FileClass {
  const ModuleSpec* module = nullptr;  // set for src/<module>/ files
  bool src_root = false;               // file directly under src/ (umbrella)
  bool header = false;
  std::string_view basename;
};

FileClass classify(std::string_view path) {
  FileClass fc;
  const std::size_t slash = path.rfind('/');
  fc.basename = (slash == std::string_view::npos) ? path : path.substr(slash + 1);
  fc.header = path.size() >= 4 && path.substr(path.size() - 4) == ".hpp";
  if (path.substr(0, 4) == "src/") {
    const std::string_view rest = path.substr(4);
    const std::size_t sep = rest.find('/');
    if (sep == std::string_view::npos) {
      fc.src_root = true;
    } else {
      fc.module = find_module(rest.substr(0, sep));
    }
  }
  return fc;
}

// ---------------------------------------------------------------------------
// Per-TU rules
// ---------------------------------------------------------------------------

struct RuleContext {
  std::string_view path;
  const FileClass& file;
  const ScanResult& scan;
  std::vector<Finding>& findings;

  void add(int line, std::string_view rule, std::string message) const {
    findings.push_back({std::string(path), line, std::string(rule), std::move(message)});
  }
};

// Rule: layering — every project include must respect the module DAG.
void rule_layering(const RuleContext& ctx) {
  // tests/, bench/, examples/ and tools/ sit on top of the whole tree.
  if (ctx.file.module == nullptr && !ctx.file.src_root) return;

  for (const auto& inc : ctx.scan.includes) {
    const std::size_t sep = inc.target.find('/');
    const ModuleSpec* target =
        (sep == std::string_view::npos) ? nullptr : find_module(inc.target.substr(0, sep));
    if (inc.angled) {
      if (target == nullptr) continue;  // system/library header
      ctx.add(inc.line, "layering",
              "project header <" + std::string(inc.target) +
                  "> must be included with quotes");
      continue;
    }
    if (target == nullptr) {
      ctx.add(inc.line, "layering",
              "quoted include \"" + std::string(inc.target) +
                  "\" does not name a module header (expected <module>/<file>.hpp)");
      continue;
    }
    if (ctx.file.src_root) continue;  // the umbrella header sees everything
    const ModuleSpec& self = *ctx.file.module;
    if (target->dir == self.dir) continue;
    if (std::find(self.deps.begin(), self.deps.end(), target->dir) != self.deps.end())
      continue;
    ctx.add(inc.line, "layering",
            "module '" + std::string(self.dir) + "' may not include '" +
                std::string(inc.target) + "': src/" + std::string(self.dir) +
                " sits below src/" + std::string(target->dir) +
                " in the module DAG (DESIGN.md §3)");
  }
}

// Rule: byte-bridge — reinterpret_cast / C-style pointer casts live only in
// src/util/bytes.hpp, the one audited byte↔text crossing.
void rule_byte_bridge(const RuleContext& ctx) {
  if (ctx.path == "src/util/bytes.hpp") return;
  const auto& toks = ctx.scan.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind == TokKind::Ident && toks[i].text == "reinterpret_cast") {
      ctx.add(toks[i].line, "byte-bridge",
              "reinterpret_cast outside util/bytes.hpp; use util::as_text / "
              "util::as_bytes");
      continue;
    }
    // C-style pointer cast: '(' type-tokens '*' ')' <operand>. The operand
    // requirement keeps unnamed pointer parameters `f(const char*)` and
    // `sizeof(int*)` out of the match.
    if (toks[i].kind != TokKind::Punct || toks[i].text != "(") continue;
    std::size_t j = i + 1;
    bool saw_ident = false;
    while (j < toks.size() &&
           (toks[j].kind == TokKind::Ident || toks[j].text == "::")) {
      saw_ident = saw_ident || toks[j].kind == TokKind::Ident;
      ++j;
    }
    bool saw_star = false;
    while (j < toks.size() && toks[j].text == "*") {
      saw_star = true;
      ++j;
    }
    if (!saw_ident || !saw_star) continue;
    if (j >= toks.size() || toks[j].text != ")") continue;
    if (j + 1 >= toks.size()) continue;
    const Token& next = toks[j + 1];
    const bool operand_like =
        next.kind == TokKind::Number || next.kind == TokKind::Str ||
        next.kind == TokKind::CharLit || next.text == "(" || next.text == "&" ||
        next.text == "*" ||
        (next.kind == TokKind::Ident && next.text != "noexcept" &&
         next.text != "const" && next.text != "override" && next.text != "final" &&
         next.text != "requires");
    if (operand_like) {
      ctx.add(toks[i].line, "byte-bridge",
              "C-style pointer cast outside util/bytes.hpp; use util::as_text / "
              "util::as_bytes or static_cast");
    }
  }
}

// Rule: banned-call — libc calls that break determinism, safety, or the
// check.hpp discipline.
void rule_banned_call(const RuleContext& ctx) {
  const auto& toks = ctx.scan.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::Ident || toks[i + 1].text != "(") continue;
    const BannedCall* banned = nullptr;
    for (const auto& call : banned_calls()) {
      if (call.name == toks[i].text) {
        banned = &call;
        break;
      }
    }
    if (banned == nullptr) continue;
    if (i > 0) {
      const Token& prev = toks[i - 1];
      if (prev.text == "." || prev.text == "->") continue;  // member access
      if (prev.text == "::" && i > 1 && toks[i - 2].kind == TokKind::Ident &&
          toks[i - 2].text != "std") {
        continue;  // qualified call into some namespace other than std
      }
      // `long time(...)` is a declaration whose name merely collides; a call
      // site is preceded by punctuation or an expression keyword.
      if (prev.kind == TokKind::Ident && prev.text != "return" &&
          prev.text != "case" && prev.text != "throw" && prev.text != "else" &&
          prev.text != "do" && prev.text != "co_return" && prev.text != "co_yield") {
        continue;
      }
    }
    if (std::find(banned->allowed_paths.begin(), banned->allowed_paths.end(),
                  ctx.path) != banned->allowed_paths.end()) {
      continue;
    }
    ctx.add(toks[i].line, "banned-call",
            std::string(toks[i].text) + "(): " + std::string(banned->message));
  }
}

// Rule: wire-enum-default — a default: in a switch over a registered wire
// enum hides newly registered values from -Wswitch.
void rule_wire_enum_default(const RuleContext& ctx) {
  const auto& toks = ctx.scan.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::Ident || toks[i].text != "switch") continue;
    // Skip the condition '(...)'.
    std::size_t j = i + 1;
    if (j >= toks.size() || toks[j].text != "(") continue;
    int depth = 0;
    for (; j < toks.size(); ++j) {
      if (toks[j].text == "(") ++depth;
      if (toks[j].text == ")" && --depth == 0) break;
    }
    // Find the body '{...}' and scan its depth-1 labels.
    while (++j < toks.size() && toks[j].text != "{") {
    }
    if (j >= toks.size()) continue;
    depth = 0;
    bool wire = false;
    std::optional<std::size_t> default_at;
    std::string_view matched_enum;
    for (; j < toks.size(); ++j) {
      if (toks[j].text == "{") ++depth;
      if (toks[j].text == "}" && --depth == 0) break;
      if (depth != 1 || toks[j].kind != TokKind::Ident) continue;
      if (toks[j].text == "default") {
        if (!default_at) default_at = j;
      } else if (toks[j].text == "case") {
        for (std::size_t k = j + 1; k < toks.size() && toks[k].text != ":"; ++k) {
          if (toks[k].kind != TokKind::Ident) continue;
          const bool is_enum = std::find(kWireEnums.begin(), kWireEnums.end(),
                                         toks[k].text) != kWireEnums.end();
          const bool is_kind =
              std::find(kTcpOptionKinds.begin(), kTcpOptionKinds.end(),
                        toks[k].text) != kTcpOptionKinds.end();
          if (is_enum || is_kind) {
            wire = true;
            matched_enum = is_enum ? toks[k].text : std::string_view("TCP option kind");
          }
        }
      }
    }
    if (wire && default_at) {
      ctx.add(toks[*default_at].line, "wire-enum-default",
              "switch over wire enum (" + std::string(matched_enum) +
                  ") must not have a default:; enumerate values so -Wswitch "
                  "surfaces newly registered ones");
    }
  }
}

// Rule: header-hygiene — #pragma once first, snake_case names, and the
// module's iwscan::<ns> namespace.
void rule_header_hygiene(const RuleContext& ctx) {
  const std::string_view name = ctx.file.basename;
  const std::size_t dot = name.rfind('.');
  const std::string_view stem = name.substr(0, dot);
  const bool stem_ok =
      !stem.empty() &&
      std::all_of(stem.begin(), stem.end(), [](char c) {
        return (std::islower(static_cast<unsigned char>(c)) != 0) ||
               (std::isdigit(static_cast<unsigned char>(c)) != 0) || c == '_';
      });
  if (!stem_ok) {
    ctx.add(1, "header-hygiene",
            "file name '" + std::string(name) + "' is not lower_snake_case");
  }
  if (!ctx.file.header) return;

  if (!ctx.scan.first_code_is_pragma_once) {
    ctx.add(ctx.scan.first_code_line > 0 ? ctx.scan.first_code_line : 1,
            "header-hygiene", "header must open with #pragma once");
  }

  if (ctx.file.module == nullptr) return;  // namespace rule is for src modules
  const std::string_view expected = ctx.file.module->ns;
  const auto& toks = ctx.scan.tokens;
  bool found = false;
  for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
    if (toks[i].text != "namespace" || toks[i + 1].text != "iwscan" ||
        toks[i + 2].text != "::") {
      continue;
    }
    if (toks[i + 3].text == expected) {
      found = true;
    } else {
      ctx.add(toks[i].line, "header-hygiene",
              "namespace iwscan::" + std::string(toks[i + 3].text) +
                  " does not match module '" + std::string(ctx.file.module->dir) +
                  "' (expected iwscan::" + std::string(expected) + ")");
    }
  }
  if (!found) {
    ctx.add(ctx.scan.first_code_line > 0 ? ctx.scan.first_code_line : 1,
            "header-hygiene",
            "header declares no namespace iwscan::" + std::string(expected));
  }
}

// Rule: determinism — entropy and wall clocks only inside the seeded RNG
// implementation and the simulator.
void rule_determinism(const RuleContext& ctx) {
  for (const auto& prefix : kDeterminismAllowedPrefixes) {
    if (ctx.path.substr(0, prefix.size()) == prefix) return;
  }
  const auto& toks = ctx.scan.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::Ident) continue;
    if (toks[i].text == "random_device") {
      ctx.add(toks[i].line, "determinism",
              "std::random_device is non-reproducible; seed a util::Rng explicitly");
    } else if (toks[i].text == "srand") {
      ctx.add(toks[i].line, "determinism",
              "srand() seeds global hidden state; use util::Rng");
    } else if (std::find(kBannedClocks.begin(), kBannedClocks.end(), toks[i].text) !=
                   kBannedClocks.end() &&
               i + 2 < toks.size() && toks[i + 1].text == "::" &&
               toks[i + 2].text == "now") {
      ctx.add(toks[i].line, "determinism",
              std::string(toks[i].text) +
                  "::now() reads the wall clock; use the event loop's virtual now()");
    }
  }
}

void apply_rules(const RuleContext& ctx) {
  rule_layering(ctx);
  rule_byte_bridge(ctx);
  rule_banned_call(ctx);
  rule_wire_enum_default(ctx);
  rule_header_hygiene(ctx);
  rule_determinism(ctx);
}

bool rule_disabled(const Options& options, std::string_view rule) {
  return std::find(options.disabled_rules.begin(), options.disabled_rules.end(),
                   rule) != options.disabled_rules.end();
}

void sort_findings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule, a.message) <
           std::tie(b.file, b.line, b.rule, b.message);
  });
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> names = {
      "layering",      "byte-bridge",    "banned-call", "wire-enum-default",
      "header-hygiene", "determinism",   "hot-path",    "determinism-taint",
      "wire-taint",    "concurrency-confinement", "suppression",
  };
  return names;
}

std::string_view rule_explanation(std::string_view rule) {
  // One paragraph per rule — the DESIGN.md §9 rationale, verbatim enough
  // that --explain answers "why is this a finding" without opening the doc.
  if (rule == "layering") {
    return "Every project include must follow the module DAG of DESIGN.md §3 "
           "(util → netbase → netsim → tcpstack → {httpd, tls} → scanner → "
           "core → inetmodel → exec → analysis). The DAG is what keeps the "
           "ZMap-style scanner engine swappable and the protocol stacks "
           "testable in isolation; one convenience include collapses it.";
  }
  if (rule == "byte-bridge") {
    return "reinterpret_cast and C-style pointer casts appear only in "
           "src/util/bytes.hpp, the single audited byte-to-text crossing. "
           "Concentrating the casts in one reviewed file is what makes the "
           "\"no aliasing surprises anywhere else\" claim checkable.";
  }
  if (rule == "banned-call") {
    return "A short list of libc calls is banned tree-wide: memcpy (bypasses "
           "the byte bridge), sprintf/atoi/strtol (unsafe or errno-based), "
           "rand/time (break seeded determinism), assert (vanishes under "
           "NDEBUG; use IWSCAN_ASSERT), and the malloc family (evades the "
           "allocation-counting operator-new hook).";
  }
  if (rule == "wire-enum-default") {
    return "Switches over registered wire enums (TLS record and handshake "
           "types, ICMP types, HTTP parser states, TCP option kinds) must "
           "not carry a default: label. Enumerating every value keeps "
           "-Wswitch as the registration check: adding a wire value without "
           "handling it everywhere is a compile error, not a silent "
           "fall-through.";
  }
  if (rule == "header-hygiene") {
    return "Headers open with #pragma once, file names are lower_snake_case, "
           "and every src/<module> header declares the module's "
           "iwscan::<ns> namespace. Mechanical, but it keeps the module "
           "registry in iwlint authoritative: the namespace is how a reader "
           "(and the linter) maps a file to its layer.";
  }
  if (rule == "determinism") {
    return "std::random_device, srand, and *_clock::now() are per-TU banned "
           "outside src/util/rng.cpp, src/util/stopwatch.cpp, and "
           "src/netsim/. Scans must replay bit-identically from a seed; "
           "entropy and wall clocks are wrapped once, behind util::Rng and "
           "the event loop's virtual now().";
  }
  if (rule == "hot-path") {
    return "Cross-TU reachability rule. Functions marked IWSCAN_HOT are the "
           "roots of the per-packet datapath (event-loop dispatch, fabric "
           "send/deliver, TCP transmit, scanner rx, checksum folding, and "
           "the spill datapath's per-record SpillWriter::append / "
           "SegmentReader::next). "
           "Nothing transitively reachable from a root may allocate "
           "(new/make_unique/malloc), grow containers (push_back and "
           "friends), take locks, block, throw, or touch iostreams — the "
           "static complement of the runtime allocs-per-packet budget. "
           "IWSCAN_HOT_BOUNDARY marks audited hand-off points (virtual "
           "per-packet entry points like Endpoint::handle_packet, and "
           "SpillWriter::flush_segment, which amortizes its sort + encode + "
           "write over a whole segment) where the traversal stops; "
           "[[noreturn]] failure paths are exempt. Call "
           "edges resolve by unqualified callee name, deliberately "
           "over-approximate: overload sets, virtual dispatch, and member "
           "calls through any object all count. Blind spots: implicit "
           "constructor/destructor/operator calls, calls through function "
           "pointers/std::function/util::InlineFn, and macro bodies.";
  }
  if (rule == "determinism-taint") {
    return "Cross-TU reachability rule generalizing 'determinism' from a "
           "file allowlist to the call graph: no entropy source "
           "(std::random_device, srand, rand) or wall-clock read "
           "(*_clock::now, time, clock_gettime, gettimeofday) may be "
           "reachable from the scan roots — run_iw_scan and "
           "ParallelScanRunner — except inside the quarantined sinks "
           "src/util/rng.cpp and src/util/stopwatch.cpp. The per-TU rule "
           "allowlists all of src/netsim/, so a clock read there passes "
           "per-TU review; this rule still flags it the moment it becomes "
           "reachable from a scan, which is exactly the regression that "
           "would silently break replayable sweeps. Boundaries do not stop "
           "this traversal: determinism must hold through every layer.";
  }
  if (rule == "wire-taint") {
    return "Intra-procedural dataflow rule. Values read off the wire — "
           "WireReader::u8/u16/u24/u32, subscript reads from byte-span "
           "parameters (std::span<const std::uint8_t>, net::PacketView, "
           "net::Bytes), and decoded header length/offset fields "
           "(total_length, fragment_offset, data_offset, urgent, "
           "seq_or_mtu, id_or_unused) — are tainted. Taint propagates "
           "through local assignments and arithmetic, statement by "
           "statement, and may not reach a container resize/reserve, a "
           "subscript index, a span subspan/first/last, a loop bound, or a "
           "WireWriter patch offset until a sanitizing guard intervenes: "
           "WireReader::require(), a conditional comparing the value "
           "against size()/remaining()/sizeof/a constant, or a "
           "std::min/std::clamp. Findings print the def→use chain. The "
           "pass is one linear forward walk per function: no fixpoint over "
           "loop back-edges, no branch-path sensitivity, no aliasing, and "
           "no inter-procedural flow (out-parameters come back clean) — "
           "blind spots documented in DESIGN.md §9.";
  }
  if (rule == "concurrency-confinement") {
    return "Threading discipline, statically enforced. Thread creation "
           "(std::thread/std::jthread/pthread_create) is confined to "
           "src/exec/thread_pool.*; synchronization primitives "
           "(std::mutex and variants, std::atomic, condition variables, "
           "lock types, thread_local) are confined to src/exec/; "
           "std::future/promise/async/latch/barrier/semaphores are banned "
           "everywhere because exec::BoundedChannel is the only audited "
           "cross-thread hand-off type; and mutable namespace-scope state "
           "is banned tree-wide — shared globals are invisible cross-shard "
           "coupling that would break the byte-identical sharded-merge "
           "guarantee. const/constexpr globals are exempt; justified "
           "suppressions cover the audited exceptions (the allocation "
           "counter in util/alloc_stats.hpp).";
  }
  if (rule == "suppression") {
    return "Findings are silenced inline with the iwlint marker comment "
           "followed by 'allow(<rule>) -- <reason>'. The justification is "
           "mandatory and must be non-empty; an unjustified suppression "
           "suppresses nothing and is itself a finding, so CI fails on it. "
           "A trailing comment covers its own line (and the whole statement "
           "if it spans several lines); a standalone comment covers the "
           "next code line.";
  }
  return {};
}

std::vector<Finding> lint_source(std::string_view path, std::string_view source,
                                 const Options& options) {
  std::vector<SourceFile> one;
  one.push_back({std::string(path), std::string(source)});
  // Per-TU only: without the rest of the program the call-graph rules have
  // no roots to traverse from, so this stays the single-file entry point.
  Options per_tu = options;
  per_tu.disabled_rules.emplace_back("hot-path");
  per_tu.disabled_rules.emplace_back("determinism-taint");
  return lint_files(one, per_tu, nullptr);
}

std::vector<Finding> lint_files(const std::vector<SourceFile>& files,
                                const Options& options, ProgramStats* stats) {
  std::vector<Finding> kept;
  std::map<std::string_view, Suppressions> suppressions_by_file;

  // Tokenize once: the per-TU rules, the symbol index, and both
  // whole-program passes all pattern-match the same scan.
  std::vector<ScanResult> scans;
  scans.reserve(files.size());
  for (const auto& file : files) scans.push_back(tokenize(file.content));

  for (std::size_t f = 0; f < files.size(); ++f) {
    const SourceFile& file = files[f];
    const ScanResult& scan = scans[f];
    const FileClass fc = classify(file.path);

    std::vector<Finding> findings;
    Suppressions suppressions = collect_suppressions(scan, findings, file.path);
    const RuleContext ctx{file.path, fc, scan, findings};
    apply_rules(ctx);

    for (auto& finding : findings) {
      if (suppressions.covers(finding)) continue;
      if (rule_disabled(options, finding.rule)) continue;
      kept.push_back(std::move(finding));
    }
    suppressions_by_file.emplace(file.path, std::move(suppressions));
  }

  const bool want_dataflow = !rule_disabled(options, "wire-taint") ||
                             !rule_disabled(options, "concurrency-confinement");
  const bool want_graph = !rule_disabled(options, "hot-path") ||
                          !rule_disabled(options, "determinism-taint");
  if (want_dataflow || want_graph || stats != nullptr) {
    std::vector<Finding> program;
    SymbolTable symbols = extract_symbols(files, scans);
    run_dataflow_rules(files, scans, symbols, program,
                       stats != nullptr ? &stats->dataflow : nullptr);
    run_callgraph_rules(std::move(symbols), program, stats);
    for (auto& finding : program) {
      if (rule_disabled(options, finding.rule)) continue;
      const auto it = suppressions_by_file.find(finding.file);
      if (it != suppressions_by_file.end() && it->second.covers(finding)) continue;
      kept.push_back(std::move(finding));
    }
  }

  sort_findings(kept);
  return kept;
}

std::vector<Finding> lint_tree(const std::string& root,
                               const std::vector<std::string>& dirs,
                               const Options& options,
                               std::vector<std::string>* io_errors,
                               ProgramStats* stats) {
  namespace fs = std::filesystem;
  std::vector<fs::path> paths;
  for (const auto& dir : dirs) {
    const fs::path base = fs::path(root) / dir;
    std::error_code ec;
    if (fs::is_regular_file(base, ec)) {
      paths.push_back(base);
      continue;
    }
    fs::recursive_directory_iterator it(base, ec);
    if (ec) {
      if (io_errors != nullptr)
        io_errors->push_back(base.generic_string() + ": " + ec.message());
      continue;
    }
    for (const auto& entry : it) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".hpp" && ext != ".cpp" && ext != ".cc") continue;
      const std::string rel = entry.path().generic_string();
      // Fixture snippets violate rules on purpose; never lint them in tree mode.
      if (rel.find("tests/lint/fixtures") != std::string::npos) continue;
      paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  std::vector<SourceFile> files;
  files.reserve(paths.size());
  for (const auto& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      if (io_errors != nullptr)
        io_errors->push_back(path.generic_string() + ": cannot open");
      continue;
    }
    std::ostringstream content;
    content << in.rdbuf();
    std::error_code ec;
    fs::path rel = fs::relative(path, root, ec);
    files.push_back({(ec ? path : rel).generic_string(), content.str()});
  }
  return lint_files(files, options, stats);
}

std::string format_text(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": " + finding.rule +
         ": " + finding.message;
}

std::string format_json(const std::vector<Finding>& findings) {
  std::string out = "[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    if (i > 0) out += ",";
    out += "\n  {\"file\": \"" + json_escape(findings[i].file) +
           "\", \"line\": " + std::to_string(findings[i].line) + ", \"rule\": \"" +
           json_escape(findings[i].rule) + "\", \"message\": \"" +
           json_escape(findings[i].message) + "\"}";
  }
  out += findings.empty() ? "]\n" : "\n]\n";
  return out;
}

std::string format_sarif(const std::vector<Finding>& findings) {
  std::string out;
  out += "{\n";
  out += "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  out += "  \"version\": \"2.1.0\",\n";
  out += "  \"runs\": [\n    {\n";
  out += "      \"tool\": {\n        \"driver\": {\n";
  out += "          \"name\": \"iwlint\",\n";
  out += "          \"informationUri\": "
         "\"https://example.invalid/iwscan/DESIGN.md\",\n";
  out += "          \"rules\": [\n";
  const auto& names = rule_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ",\n";
    out += "            {\"id\": \"" + json_escape(names[i]) +
           "\", \"shortDescription\": {\"text\": \"" + json_escape(names[i]) +
           "\"}, \"fullDescription\": {\"text\": \"" +
           json_escape(rule_explanation(names[i])) + "\"}}";
  }
  out += "\n          ]\n        }\n      },\n";
  out += "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    if (i > 0) out += ",\n";
    const Finding& finding = findings[i];
    out += "        {\"ruleId\": \"" + json_escape(finding.rule) +
           "\", \"level\": \"error\", \"message\": {\"text\": \"" +
           json_escape(finding.message) +
           "\"}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \"" +
           json_escape(finding.file) +
           "\", \"uriBaseId\": \"%SRCROOT%\"}, \"region\": {\"startLine\": " +
           std::to_string(finding.line > 0 ? finding.line : 1) + "}}}]}";
  }
  out += findings.empty() ? "      ]\n" : "\n      ]\n";
  out += "    }\n  ]\n}\n";
  return out;
}

}  // namespace iwscan::lint
