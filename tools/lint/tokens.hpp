// iwlint's lexical layer, shared by the per-TU rule engine (iwlint.cpp)
// and the cross-TU call-graph analyzer (callgraph.cpp).
//
// This is a scanner, not a parser: it produces the token/comment/include
// streams the rules pattern-match against. Preprocessor directives are
// recognized only enough to capture #include targets and the leading
// #pragma once; other directive bodies fall through to normal
// tokenization so banned calls inside macro bodies are still seen.
#pragma once

#include <set>
#include <string_view>
#include <vector>

namespace iwscan::lint {

enum class TokKind { Ident, Number, Str, CharLit, Punct };

struct Token {
  TokKind kind;
  std::string_view text;
  int line;
};

struct IncludeDirective {
  int line;
  std::string_view target;
  bool angled;
};

struct Comment {
  int line;  // line the comment starts on
  std::string_view text;
};

struct ScanResult {
  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;
  std::vector<Comment> comments;
  std::set<int> code_lines;            // lines holding at least one token/directive
  int first_code_line = 0;             // 0 = file holds no code at all
  bool first_code_is_pragma_once = false;
};

[[nodiscard]] bool is_ident_start(char c);
[[nodiscard]] bool is_ident_char(char c);

/// Tokenize one translation unit. The returned views borrow `src`.
[[nodiscard]] ScanResult tokenize(std::string_view src);

}  // namespace iwscan::lint
