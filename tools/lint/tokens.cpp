#include "tokens.hpp"

#include <algorithm>
#include <cctype>
#include <string>

namespace iwscan::lint {

bool is_ident_start(char c) {
  return (std::isalpha(static_cast<unsigned char>(c)) != 0) || c == '_';
}
bool is_ident_char(char c) {
  return (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '_';
}

ScanResult tokenize(std::string_view src) {
  ScanResult out;
  std::size_t i = 0;
  int line = 1;
  bool at_line_start = true;  // only whitespace seen since the last newline

  auto note_code = [&](int at_line) {
    out.code_lines.insert(at_line);
    if (out.first_code_line == 0) out.first_code_line = at_line;
  };
  // Multiline literals (raw strings, backslash-continued strings) occupy
  // every line they span; suppression targeting needs them all marked.
  auto note_code_range = [&](int from_line, int to_line) {
    for (int l = from_line; l <= to_line; ++l) note_code(l);
  };

  auto skip_string = [&](char quote) {
    // i points at the opening quote.
    ++i;
    while (i < src.size() && src[i] != quote) {
      if (src[i] == '\\' && i + 1 < src.size()) ++i;
      if (src[i] == '\n') ++line;  // unterminated/multiline literal: keep counting
      ++i;
    }
    if (i < src.size()) ++i;  // closing quote
  };

  while (i < src.size()) {
    const char c = src[i];

    if (c == '\n') {
      ++line;
      at_line_start = true;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }

    // Comments.
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      const std::size_t start = i;
      while (i < src.size() && src[i] != '\n') ++i;
      out.comments.push_back({line, src.substr(start, i - start)});
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      const std::size_t start = i;
      const int start_line = line;
      i += 2;
      while (i + 1 < src.size() && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i = (i + 1 < src.size()) ? i + 2 : src.size();
      out.comments.push_back({start_line, src.substr(start, i - start)});
      at_line_start = false;
      continue;
    }

    // Preprocessor directives (only at the start of a line).
    if (c == '#' && at_line_start) {
      const int dir_line = line;
      ++i;
      while (i < src.size() && (src[i] == ' ' || src[i] == '\t')) ++i;
      std::size_t word_start = i;
      while (i < src.size() && is_ident_char(src[i])) ++i;
      const std::string_view word = src.substr(word_start, i - word_start);
      if (word == "include") {
        while (i < src.size() && (src[i] == ' ' || src[i] == '\t')) ++i;
        if (i < src.size() && (src[i] == '"' || src[i] == '<')) {
          const char close = (src[i] == '<') ? '>' : '"';
          const bool angled = (src[i] == '<');
          ++i;
          const std::size_t target_start = i;
          while (i < src.size() && src[i] != close && src[i] != '\n') ++i;
          out.includes.push_back(
              {dir_line, src.substr(target_start, i - target_start), angled});
          if (i < src.size() && src[i] == close) ++i;
        }
        note_code(dir_line);
      } else if (word == "pragma") {
        while (i < src.size() && (src[i] == ' ' || src[i] == '\t')) ++i;
        word_start = i;
        while (i < src.size() && is_ident_char(src[i])) ++i;
        if (out.first_code_line == 0 && src.substr(word_start, i - word_start) == "once") {
          out.first_code_is_pragma_once = true;
        }
        note_code(dir_line);
      } else {
        // Other directives (#define, #if, ...): the keyword is consumed and
        // the body falls through to normal tokenization so banned calls
        // inside macro bodies are still seen.
        note_code(dir_line);
      }
      at_line_start = false;
      continue;
    }
    at_line_start = false;

    // String / char literals (incl. raw strings via their encoding prefix).
    // A literal spanning lines (backslash continuation) is attributed to
    // its START line — the same convention block comments use — so rules
    // and suppressions see the line a reader would point at.
    if (c == '"') {
      const std::size_t start = i;
      const int start_line = line;
      skip_string('"');
      out.tokens.push_back({TokKind::Str, src.substr(start, i - start), start_line});
      note_code_range(start_line, line);
      continue;
    }
    if (c == '\'') {
      const std::size_t start = i;
      const int start_line = line;
      skip_string('\'');
      out.tokens.push_back(
          {TokKind::CharLit, src.substr(start, i - start), start_line});
      note_code_range(start_line, line);
      continue;
    }

    if (is_ident_start(c)) {
      const std::size_t start = i;
      while (i < src.size() && is_ident_char(src[i])) ++i;
      const std::string_view word = src.substr(start, i - start);
      const bool raw_prefix = (word == "R" || word == "u8R" || word == "uR" ||
                               word == "UR" || word == "LR");
      if (raw_prefix && i < src.size() && src[i] == '"') {
        // Raw string: R"delim( ... )delim". The token carries its START
        // line (multiline raw strings are common in tests and tables);
        // the line counter still advances past every embedded newline.
        const int start_line = line;
        ++i;
        const std::size_t delim_start = i;
        while (i < src.size() && src[i] != '(') ++i;
        const std::string terminator =
            ")" + std::string(src.substr(delim_start, i - delim_start)) + "\"";
        const std::size_t body = (i < src.size()) ? i + 1 : i;
        const std::size_t end = src.find(terminator, body);
        const std::size_t stop =
            (end == std::string_view::npos) ? src.size() : end + terminator.size();
        line += static_cast<int>(std::count(src.begin() + static_cast<long>(start),
                                            src.begin() + static_cast<long>(stop), '\n'));
        out.tokens.push_back({TokKind::Str, src.substr(start, stop - start), start_line});
        i = stop;
        note_code_range(start_line, line);
      } else {
        out.tokens.push_back({TokKind::Ident, word, line});
        note_code(line);
      }
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      const std::size_t start = i;
      while (i < src.size() &&
             (is_ident_char(src[i]) || src[i] == '.' ||
              (src[i] == '\'' && i + 1 < src.size() && is_ident_char(src[i + 1])))) {
        ++i;
      }
      out.tokens.push_back({TokKind::Number, src.substr(start, i - start), line});
      note_code(line);
      continue;
    }

    // Punctuation. '::' is one token (qualified names matter to the rules).
    if (c == ':' && i + 1 < src.size() && src[i + 1] == ':') {
      out.tokens.push_back({TokKind::Punct, src.substr(i, 2), line});
      i += 2;
    } else {
      out.tokens.push_back({TokKind::Punct, src.substr(i, 1), line});
      ++i;
    }
    note_code(line);
  }
  return out;
}

}  // namespace iwscan::lint
