// Cross-TU call-graph layer: the reachability half of iwlint's
// whole-program analysis, over the symbol index built by symbols.hpp.
//
// Two reachability rule families run on top of the graph:
//
//   hot-path          IWSCAN_HOT roots (the PR 4 datapath) must not reach
//                     allocation, container growth, locks, blocking calls,
//                     throw, or iostreams. IWSCAN_HOT_BOUNDARY marks the
//                     audited hand-off points where traversal stops.
//   determinism-taint wall-clock/entropy sources must not be reachable
//                     from the scan roots (run_iw_scan, ParallelScanRunner)
//                     except inside the quarantined sinks src/util/rng.cpp
//                     and src/util/stopwatch.cpp.
//
// The graph is deliberately over-approximate: call edges resolve by the
// callee's unqualified name, so overload sets, virtual dispatch, and
// method calls through any object all produce edges. Propagation is a
// worklist over the (possibly cyclic) graph, so recursion and mutual
// recursion converge. Known blind spots (documented in DESIGN.md §9):
// implicit constructor/destructor/operator invocations, calls through
// function pointers/std::function/InlineFn, and macro bodies (a macro's
// tokens sit at file scope, outside any function).
#pragma once

#include <cstddef>
#include <vector>

#include "dataflow.hpp"
#include "iwlint.hpp"
#include "symbols.hpp"
#include "tokens.hpp"

namespace iwscan::lint {

/// Size of the whole-program analysis, for --json visibility and the bench
/// guard.
struct ProgramStats {
  std::size_t files = 0;       // src/ files fed into the symbol pass
  std::size_t functions = 0;   // function definitions indexed
  std::size_t call_edges = 0;  // resolved (caller, callee-def) edges
  std::size_t hot_roots = 0;   // IWSCAN_HOT roots found
  std::size_t taint_roots = 0; // determinism roots found
  DataflowStats dataflow;      // the per-function taint pass (dataflow.hpp)
};

/// Run the cross-TU reachability rules over the symbol table, appending
/// raw findings (suppressions are applied by the caller). Takes the table
/// by value: the graph re-sorts and re-indexes the definitions.
void run_callgraph_rules(SymbolTable symbols, std::vector<Finding>& findings,
                         ProgramStats* stats);

}  // namespace iwscan::lint
