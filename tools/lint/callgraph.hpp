// Cross-TU call-graph layer: the whole-program half of iwlint.
//
// Builds a symbol index and call graph over every src/ translation unit —
// functions, methods, out-of-line definitions, lambdas folded into their
// enclosing function — then runs two reachability rule families on top:
//
//   hot-path          IWSCAN_HOT roots (the PR 4 datapath) must not reach
//                     allocation, container growth, locks, blocking calls,
//                     throw, or iostreams. IWSCAN_HOT_BOUNDARY marks the
//                     audited hand-off points where traversal stops.
//   determinism-taint wall-clock/entropy sources must not be reachable
//                     from the scan roots (run_iw_scan, ParallelScanRunner)
//                     except inside the quarantined sinks src/util/rng.cpp
//                     and src/util/stopwatch.cpp.
//
// The graph is deliberately over-approximate: call edges resolve by the
// callee's unqualified name, so overload sets, virtual dispatch, and
// method calls through any object all produce edges. Propagation is a
// worklist over the (possibly cyclic) graph, so recursion and mutual
// recursion converge. Known blind spots (documented in DESIGN.md §9):
// implicit constructor/destructor/operator invocations, calls through
// function pointers/std::function/InlineFn, and macro bodies (a macro's
// tokens sit at file scope, outside any function).
#pragma once

#include <cstddef>
#include <vector>

#include "iwlint.hpp"
#include "tokens.hpp"

namespace iwscan::lint {

/// Size of the program analysis, for --json visibility and the bench guard.
struct ProgramStats {
  std::size_t files = 0;       // files fed into the call-graph pass
  std::size_t functions = 0;   // function definitions indexed
  std::size_t call_edges = 0;  // resolved (caller, callee-def) edges
  std::size_t hot_roots = 0;   // IWSCAN_HOT roots found
  std::size_t taint_roots = 0; // determinism roots found
};

/// Run the cross-TU rules over `files` (only src/ files participate),
/// appending raw findings (suppressions are applied by the caller).
void run_program_rules(const std::vector<SourceFile>& files,
                       std::vector<Finding>& findings, ProgramStats* stats);

}  // namespace iwscan::lint
