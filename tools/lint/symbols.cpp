#include "symbols.hpp"

#include <algorithm>
#include <array>

namespace iwscan::lint {

std::string_view fact_label(FactKind kind) {
  switch (kind) {
    case FactKind::Alloc: return "heap allocation";
    case FactKind::Growth: return "container growth";
    case FactKind::Lock: return "lock acquisition";
    case FactKind::Blocking: return "blocking call";
    case FactKind::Throw: return "throw";
    case FactKind::Iostream: return "stdio/iostream I/O";
    case FactKind::Entropy: return "entropy source";
    case FactKind::WallClock: return "wall-clock read";
  }
  return "violation";
}

namespace {

template <std::size_t N>
[[nodiscard]] bool in(const std::array<std::string_view, N>& set,
                      std::string_view text) {
  return std::find(set.begin(), set.end(), text) != set.end();
}

constexpr std::array<std::string_view, 8> kAllocCalls = {
    "make_unique", "make_shared", "to_string", "malloc",
    "calloc",      "realloc",     "aligned_alloc", "strdup"};

constexpr std::array<std::string_view, 12> kGrowthMethods = {
    "push_back", "emplace_back", "push_front",       "emplace_front",
    "insert",    "emplace",      "try_emplace",      "resize",
    "reserve",   "append",       "insert_or_assign", "assign"};

constexpr std::array<std::string_view, 6> kLockTypes = {
    "lock_guard", "unique_lock",        "scoped_lock",
    "shared_lock", "condition_variable", "condition_variable_any"};

constexpr std::array<std::string_view, 9> kBlockingCalls = {
    "sleep_for", "sleep_until", "usleep", "nanosleep", "poll",
    "select",    "epoll_wait",  "fsync",  "fdatasync"};

constexpr std::array<std::string_view, 20> kIostreamIdents = {
    "cout",  "cerr",  "clog",  "wcout",        "wcerr",
    "ifstream", "ofstream", "fstream", "stringstream", "ostringstream",
    "istringstream", "printf", "fprintf", "vfprintf", "puts",
    "fputs", "fputc", "fwrite", "fopen",  "getline"};

constexpr std::array<std::string_view, 3> kBannedClocks = {
    "steady_clock", "system_clock", "high_resolution_clock"};

constexpr std::array<std::string_view, 4> kWallClockCalls = {
    "clock_gettime", "gettimeofday", "localtime", "gmtime"};

// Identifiers that precede '(' without being calls, plus type keywords that
// show up in function-pointer declarators. 'new'/'delete' are here so the
// replacement operator new in util/alloc_stats.hpp is not indexed as a
// callable named "new": allocation is reported as a fact at the expression
// site, and placement new (which never enters operator new) stays silent.
constexpr std::array<std::string_view, 35> kNotACall = {
    "if",       "for",        "while",     "switch",     "catch",
    "return",   "sizeof",     "alignof",   "alignas",    "decltype",
    "typeid",   "noexcept",   "static_assert", "defined", "delete",
    "new",      "co_await",   "co_yield",  "co_return",  "requires",
    "constexpr", "consteval", "constinit", "operator",   "void",
    "int",      "char",       "bool",      "float",      "double",
    "auto",     "unsigned",   "signed",    "long",       "short"};

// Statement shapes at namespace scope that are declarations of something
// other than a variable; their presence disqualifies a mutable-global
// candidate. '(' and '[' additionally reject function declarators,
// function-pointer variables, attributes, and array-of-function oddities —
// a conservative miss, never a false flag.
constexpr std::array<std::string_view, 16> kNotAGlobalStmt = {
    "using",    "typedef", "template",      "concept",  "operator",
    "extern",   "friend",  "static_assert", "requires", "enum",
    "namespace", "struct", "class",         "union",    "(",
    "["};

class Extractor {
 public:
  Extractor(std::string_view path, std::size_t file_index,
            const ScanResult& scan, SymbolTable& out)
      : path_(path), file_index_(file_index), t_(scan.tokens), out_(out) {}

  void run() {
    while (i_ < t_.size()) step();
    // Unbalanced braces (truncated input) leave function scopes open; close
    // their body ranges at end-of-tokens so dataflow never walks off the
    // vector.
    for (const auto& scope : scopes_) {
      if (scope.kind == Scope::Kind::Function && scope.func >= 0) {
        out_.defs[static_cast<std::size_t>(scope.func)].body_end = t_.size();
      }
    }
  }

 private:
  struct Scope {
    enum class Kind { Namespace, Class, Function, Block };
    Kind kind;
    std::string name;  // empty for blocks and anonymous namespaces
    int open_depth;    // brace depth just after the opening '{'
    int func = -1;     // defs index for Kind::Function
  };

  [[nodiscard]] const Token& tok(std::size_t i) const { return t_[i]; }
  [[nodiscard]] bool is(std::size_t i, std::string_view text) const {
    return i < t_.size() && t_[i].text == text;
  }
  [[nodiscard]] bool ident(std::size_t i) const {
    return i < t_.size() && t_[i].kind == TokKind::Ident;
  }

  [[nodiscard]] int current_function() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::Kind::Function) return it->func;
    }
    return -1;
  }

  [[nodiscard]] bool at_namespace_scope() const {
    return scopes_.empty() || scopes_.back().kind == Scope::Kind::Namespace;
  }

  void reset_pending() {
    pending_hot_ = false;
    pending_boundary_ = false;
    pending_noreturn_ = false;
  }

  void open_block() {
    ++depth_;
    scopes_.push_back({Scope::Kind::Block, "", depth_, -1});
  }

  void close_brace(std::size_t close_index) {
    --depth_;
    if (!scopes_.empty() && scopes_.back().open_depth == depth_ + 1) {
      const Scope& top = scopes_.back();
      if (top.kind == Scope::Kind::Function && top.func >= 0) {
        out_.defs[static_cast<std::size_t>(top.func)].body_end = close_index;
      }
      scopes_.pop_back();
    }
    reset_pending();
  }

  /// Index just past the matching closer, or t_.size() if unbalanced.
  [[nodiscard]] std::size_t skip_balanced(std::size_t open, std::string_view o,
                                          std::string_view c) const {
    int d = 0;
    for (std::size_t j = open; j < t_.size(); ++j) {
      if (t_[j].text == o) ++d;
      if (t_[j].text == c && --d == 0) return j + 1;
    }
    return t_.size();
  }

  [[nodiscard]] std::string scope_prefix() const {
    std::string joined;
    for (const auto& scope : scopes_) {
      if (scope.name.empty()) continue;
      if (!joined.empty()) joined += "::";
      joined += scope.name;
    }
    return joined;
  }

  /// Walk back over `A::B::` qualifiers from the name token at `i`.
  /// Returns the chain start index (and notes a leading '~').
  [[nodiscard]] std::size_t chain_start(std::size_t i) const {
    std::size_t j = i;
    while (j >= 2 && t_[j - 1].text == "::" && t_[j - 2].kind == TokKind::Ident) {
      j -= 2;
    }
    return j;
  }

  [[nodiscard]] std::string chain_text(std::size_t start, std::size_t i) const {
    std::string name;
    if (start >= 1 && t_[start - 1].text == "~") name = "~";
    for (std::size_t j = start; j <= i; ++j) {
      name += t_[j].text;
    }
    return name;
  }

  [[nodiscard]] bool member_access_before(std::size_t i) const {
    if (i == 0) return false;
    if (t_[i - 1].text == ".") return true;
    return i >= 2 && t_[i - 1].text == ">" && t_[i - 2].text == "-";
  }

  void add_fact(FactKind kind, int line, std::string token) {
    const int f = current_function();
    if (f < 0) return;
    out_.defs[static_cast<std::size_t>(f)].facts.push_back(
        {kind, line, std::move(token)});
  }

  void add_callee(std::string name) {
    const int f = current_function();
    if (f < 0) return;
    out_.defs[static_cast<std::size_t>(f)].callees.insert(std::move(name));
  }

  // ---- constructs -----------------------------------------------------

  void handle_namespace() {
    std::size_t j = i_ + 1;
    std::string name;
    while (j < t_.size() && (t_[j].kind == TokKind::Ident || t_[j].text == "::")) {
      name += t_[j].text;
      ++j;
    }
    if (is(j, "=")) {  // namespace alias
      while (j < t_.size() && t_[j].text != ";") ++j;
      i_ = j + 1;
      stmt_start_ = i_;
      return;
    }
    if (is(j, "{")) {
      ++depth_;
      scopes_.push_back({Scope::Kind::Namespace, name, depth_, -1});
      i_ = j + 1;
      stmt_start_ = i_;
      return;
    }
    i_ = j;
    stmt_start_ = i_;
  }

  void handle_class() {
    // `template <class T>` type parameters are not class definitions.
    if (i_ > 0 && (t_[i_ - 1].text == "<" || t_[i_ - 1].text == ",")) {
      ++i_;
      return;
    }
    std::size_t j = i_ + 1;
    while (is(j, "[")) j = skip_balanced(j, "[", "]");  // [[attributes]]
    std::string name;
    if (ident(j)) {
      name = t_[j].text;
      ++j;
    }
    while (j < t_.size() && t_[j].text != "{" && t_[j].text != ";") ++j;
    if (is(j, "{")) {
      ++depth_;
      scopes_.push_back({Scope::Kind::Class, name, depth_, -1});
      i_ = j + 1;
      stmt_start_ = i_;
      return;
    }
    i_ = (j < t_.size()) ? j + 1 : j;  // forward declaration
    stmt_start_ = i_;
  }

  void handle_enum() {
    std::size_t j = i_ + 1;
    while (j < t_.size() && t_[j].text != "{" && t_[j].text != ";") ++j;
    if (is(j, "{")) {
      i_ = skip_balanced(j, "{", "}");  // enumerators hold no code the rules see
      stmt_start_ = i_;
      return;
    }
    i_ = (j < t_.size()) ? j + 1 : j;
    stmt_start_ = i_;
  }

  /// Ident followed by '(' inside a function body: a call site, possibly
  /// also a fact (growth idiom, blocking call, entropy draw, ...).
  void handle_call(std::size_t i) {
    const std::string_view name = t_[i].text;
    const int line = t_[i].line;
    if (member_access_before(i)) {
      if (in(kGrowthMethods, name)) add_fact(FactKind::Growth, line, "." + std::string(name));
      if (name == "lock" || name == "try_lock") {
        add_fact(FactKind::Lock, line, "." + std::string(name));
      }
      add_callee(std::string(name));
      ++i_;
      return;
    }
    const std::size_t start = chain_start(i);
    const bool std_qualified = start < i && t_[start].text == "std";
    if (in(kBlockingCalls, name)) add_fact(FactKind::Blocking, line, std::string(name));
    if (in(kAllocCalls, name)) add_fact(FactKind::Alloc, line, std::string(name));
    if (in(kWallClockCalls, name)) add_fact(FactKind::WallClock, line, std::string(name));
    if (!std_qualified && (name == "rand" || name == "time")) {
      // A call site, not a declaration whose name merely collides (same
      // heuristic as the per-TU banned-call rule).
      const bool qualified_elsewhere =
          start < i || (i >= 1 && t_[i - 1].text == "::");
      const bool after_ident = i >= 1 && t_[i - 1].kind == TokKind::Ident &&
                               t_[i - 1].text != "return" && t_[i - 1].text != "case" &&
                               t_[i - 1].text != "else" && t_[i - 1].text != "do";
      if (!qualified_elsewhere && !after_ident) {
        add_fact(name == "rand" ? FactKind::Entropy : FactKind::WallClock, line,
                 std::string(name));
      }
    }
    if (name == "srand") add_fact(FactKind::Entropy, line, "srand");
    if (!std_qualified && !in(kNotACall, name)) add_callee(std::string(name));
    ++i_;
  }

  /// Plain identifier facts inside a function body (no '(' required).
  void handle_body_ident(std::size_t i) {
    const std::string_view name = t_[i].text;
    const int line = t_[i].line;
    if (name == "throw") {
      add_fact(FactKind::Throw, line, "throw");
    } else if (name == "new") {
      // `new (place) T` is placement construction into existing storage
      // (util::InlineFn's slot emplace); `new T` / `new T[n]` allocates.
      if (!is(i + 1, "(")) add_fact(FactKind::Alloc, line, "new");
    } else if (in(kLockTypes, name)) {
      add_fact(FactKind::Lock, line, std::string(name));
    } else if (in(kIostreamIdents, name)) {
      add_fact(FactKind::Iostream, line, std::string(name));
    } else if (name == "random_device") {
      add_fact(FactKind::Entropy, line, "random_device");
    } else if (in(kBannedClocks, name) && is(i + 1, "::") && is(i + 2, "now")) {
      add_fact(FactKind::WallClock, line, std::string(name) + "::now");
    }
    ++i_;
  }

  /// Ident at namespace scope whose next token is '=', '{', or ';': a
  /// variable declaration unless the statement so far says otherwise.
  /// const/constexpr declarations are exempt — only mutable state is
  /// shared-state the concurrency rule cares about.
  void check_global(std::size_t i) {
    if (member_access_before(i)) return;
    if (in(kNotAGlobalStmt, t_[i].text)) return;  // `operator=` and friends
    bool immutable = false;
    for (std::size_t j = stmt_start_; j < i && j < t_.size(); ++j) {
      const std::string_view text = t_[j].text;
      if (in(kNotAGlobalStmt, text)) return;
      if (text == "const" || text == "constexpr") immutable = true;
    }
    if (stmt_start_ >= i) return;  // a bare `name;` names nothing typed
    if (!immutable) {
      out_.globals.push_back({std::string(t_[i].text), std::string(path_),
                              t_[i].line});
    }
  }

  /// Ident followed by '(' at namespace/class scope: try to parse a
  /// function declaration or definition. Returns having advanced i_.
  void handle_candidate(std::size_t i) {
    const std::string_view name = t_[i].text;
    if (in(kNotACall, name)) {
      ++i_;
      return;
    }
    const std::size_t start = chain_start(i);
    const std::size_t params_open = i + 1;
    const std::size_t after_params = skip_balanced(params_open, "(", ")");
    if (after_params >= t_.size()) {
      ++i_;
      return;
    }

    std::size_t j = after_params;
    // Specifier run: const/noexcept/override/final/try, noexcept(...),
    // trailing return types.
    while (j < t_.size()) {
      const std::string_view text = t_[j].text;
      if (text == "const" || text == "override" || text == "final" ||
          text == "mutable" || text == "try") {
        ++j;
        continue;
      }
      if (text == "noexcept") {
        ++j;
        if (is(j, "(")) j = skip_balanced(j, "(", ")");
        continue;
      }
      if (text == "-" && is(j + 1, ">")) {  // trailing return type
        j += 2;
        while (j < t_.size() && t_[j].text != "{" && t_[j].text != ";" &&
               t_[j].text != "=") {
          ++j;
        }
        continue;
      }
      break;
    }

    bool is_definition = false;
    bool is_declaration = false;
    std::size_t body_open = t_.size();
    if (is(j, "{")) {
      is_definition = true;
      body_open = j;
    } else if (is(j, ";")) {
      is_declaration = true;
    } else if (is(j, "=")) {
      // `= default; / = delete; / = 0;` — declarations all.
      if ((is(j + 1, "default") || is(j + 1, "delete") || is(j + 1, "0")) &&
          is(j + 2, ";")) {
        is_declaration = true;
        j += 2;
      }
    } else if (is(j, ":") ) {
      // Constructor initializer list: members followed by (...) or {...},
      // comma-separated; the first unconsumed '{' after an initializer is
      // the body.
      ++j;
      while (j < t_.size()) {
        while (j < t_.size() && t_[j].text != "(" && t_[j].text != "{" &&
               t_[j].text != ";" && t_[j].text != "}") {
          ++j;
        }
        if (!is(j, "(") && !is(j, "{")) break;
        j = skip_balanced(j, t_[j].text, t_[j].text == "(" ? ")" : "}");
        if (is(j, ",")) {
          ++j;
          continue;
        }
        if (is(j, "{")) {
          is_definition = true;
          body_open = j;
        }
        break;
      }
    }

    if (!is_definition && !is_declaration) {
      ++i_;
      return;
    }

    std::string chain = chain_text(start, i);
    std::string qualified = scope_prefix();
    if (!qualified.empty() && !chain.empty()) qualified += "::";
    qualified += chain;

    if (is_declaration) {
      if (pending_hot_) out_.hot_qualified.insert(qualified);
      if (pending_noreturn_) out_.noreturn_qualified.insert(qualified);
      if (pending_boundary_) {
        out_.boundary_last.insert(std::string(name));
        out_.boundary_qualified.insert(qualified);
      }
      reset_pending();
      i_ = j + 1;
      stmt_start_ = i_;
      return;
    }

    FunctionDef def;
    def.qualified = std::move(qualified);
    def.last = std::string(name);
    def.file = std::string(path_);
    def.line = t_[i].line;
    def.hot = pending_hot_;
    def.noreturn = pending_noreturn_;
    def.file_index = file_index_;
    def.params_begin = params_open + 1;
    def.params_end = (after_params > 0) ? after_params - 1 : 0;
    def.body_begin = body_open + 1;
    def.body_end = t_.size();  // patched in close_brace
    // Display name: the last two segments ("Class::method") read well in
    // chains without the namespace noise.
    {
      const std::string& q = def.qualified;
      std::size_t cut = std::string::npos;
      const std::size_t last_sep = q.rfind("::");
      if (last_sep != std::string::npos && last_sep > 0) {
        cut = q.rfind("::", last_sep - 1);
      }
      def.display = (cut == std::string::npos) ? q : q.substr(cut + 2);
    }
    if (pending_boundary_) {
      out_.boundary_last.insert(def.last);
      out_.boundary_qualified.insert(def.qualified);
    }
    reset_pending();
    out_.defs.push_back(std::move(def));

    ++depth_;
    scopes_.push_back({Scope::Kind::Function, "", depth_,
                       static_cast<int>(out_.defs.size()) - 1});
    i_ = body_open + 1;
    stmt_start_ = i_;
  }

  void step() {
    const Token& t = t_[i_];
    if (t.kind == TokKind::Punct) {
      if (t.text == "{") {
        open_block();
        ++i_;
        stmt_start_ = i_;
        return;
      }
      if (t.text == "}") {
        close_brace(i_);
        ++i_;
        stmt_start_ = i_;
        return;
      }
      if (t.text == ";") {
        reset_pending();
        ++i_;
        stmt_start_ = i_;
        return;
      }
      ++i_;
      return;
    }
    if (t.kind != TokKind::Ident) {
      ++i_;
      return;
    }

    const std::string_view text = t.text;
    if (text == "IWSCAN_HOT") {
      pending_hot_ = true;
      ++i_;
      return;
    }
    if (text == "IWSCAN_HOT_BOUNDARY") {
      pending_boundary_ = true;
      ++i_;
      return;
    }
    if (text == "noreturn") {
      pending_noreturn_ = true;
      ++i_;
      return;
    }

    const bool in_fn = current_function() >= 0;
    if (!in_fn) {
      if (text == "namespace") {
        handle_namespace();
        return;
      }
      if (text == "class" || text == "struct" || text == "union") {
        handle_class();
        return;
      }
      if (text == "enum") {
        handle_enum();
        return;
      }
      if (is(i_ + 1, "(")) {
        handle_candidate(i_);
        return;
      }
      if (at_namespace_scope() &&
          (is(i_ + 1, "=") || is(i_ + 1, "{") || is(i_ + 1, ";"))) {
        check_global(i_);
      }
      ++i_;
      return;
    }
    if (is(i_ + 1, "(") && !in(kNotACall, text)) {
      handle_call(i_);
      return;
    }
    handle_body_ident(i_);
  }

  std::string_view path_;
  std::size_t file_index_;
  const std::vector<Token>& t_;
  SymbolTable& out_;
  std::size_t i_ = 0;
  std::size_t stmt_start_ = 0;
  int depth_ = 0;
  std::vector<Scope> scopes_;
  bool pending_hot_ = false;
  bool pending_boundary_ = false;
  bool pending_noreturn_ = false;
};

}  // namespace

SymbolTable extract_symbols(const std::vector<SourceFile>& files,
                            const std::vector<ScanResult>& scans) {
  SymbolTable out;
  for (std::size_t f = 0; f < files.size() && f < scans.size(); ++f) {
    if (files[f].path.rfind("src/", 0) != 0) continue;
    ++out.files_indexed;
    Extractor(files[f].path, f, scans[f], out).run();
  }
  return out;
}

}  // namespace iwscan::lint
