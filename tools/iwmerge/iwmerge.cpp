// iwmerge: K-way merge of columnar spill files from sharded scan processes.
//
// The multi-process operator workflow (ZMap-style, "Ten Years of ZMap"):
//
//   $ quickstart --shard=0/2 --spill-dir=run/p0 &
//   $ quickstart --shard=1/2 --spill-dir=run/p1 &
//   $ wait
//   $ iwmerge --inputs=run/p0,run/p1
//
// Each process spills its stride of the target permutation; iwmerge streams
// the union back in global cycle order and prints the same Table-1 /
// Fig.-3 report a single-process run would have printed — byte-identical,
// because cycle indices are globally unique across shards. Inputs from
// different scans (mixed seeds) or with intersecting strides (overlapping
// shards) are rejected with a diagnostic, not merged into garbage.
//
// With --out=DIR the merged host stream is re-spilled as one canonical
// shard-0-of-1 file instead, so downstream tooling can treat the sharded
// run as if it had been a single process.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/spill_report.hpp"
#include "core/result.hpp"
#include "store/spill.hpp"
#include "util/flags.hpp"
#include "util/strings.hpp"

namespace {

using namespace iwscan;

std::vector<std::string> parse_inputs(const std::string& list) {
  std::vector<std::string> inputs;
  for (std::string_view part : util::split(list, ',')) {
    if (!part.empty()) inputs.emplace_back(part);
  }
  return inputs;
}

/// Streams the merged record sequence into a fresh shard-0-of-1 spill file
/// under `dir`, preserving cycle tags. RSS stays O(segment) end to end.
int rewrite_merged(const std::vector<std::string>& files, const std::string& dir,
                   std::size_t segment_bytes) {
  std::string error;
  auto merge = store::open_merge<core::HostScanRecord>(files, &error);
  if (!merge.has_value()) {
    std::fprintf(stderr, "iwmerge: %s\n", error.c_str());
    return 1;
  }
  store::SpillConfig config;
  config.directory = dir;
  config.segment_bytes = segment_bytes;
  config.seed = merge->seed();
  store::SpillWriter<core::HostScanRecord> writer(config);
  std::uint64_t cycle = 0;
  core::HostScanRecord record;
  while (merge->next(cycle, record)) writer.append(cycle, record);
  if (!merge->ok()) {
    std::fprintf(stderr, "iwmerge: %s\n", merge->error().c_str());
    return 1;
  }
  if (!writer.close()) {
    std::fprintf(stderr, "iwmerge: %s\n", writer.error().c_str());
    return 1;
  }
  std::printf("merged %llu records from %zu spill files into %s\n",
              static_cast<unsigned long long>(merge->record_count()), files.size(),
              writer.path().c_str());
  return 0;
}

int print_report(const std::vector<std::string>& inputs) {
  analysis::SpillSummary merged;
  std::string error;
  if (!analysis::summarize_spill_files(inputs, merged, error)) {
    std::fprintf(stderr, "iwmerge: %s\n", error.c_str());
    return 1;
  }
  std::printf("probed %llu hosts (seed %llu): %llu reachable, success %.1f%%, "
              "few-data %.1f%%, error %.1f%%\n",
              static_cast<unsigned long long>(merged.records),
              static_cast<unsigned long long>(merged.seed),
              static_cast<unsigned long long>(merged.summary.reachable),
              merged.summary.success_rate() * 100,
              merged.summary.few_data_rate() * 100,
              merged.summary.error_rate() * 100);
  std::printf("\nIW distribution (successful estimates):\n");
  for (const auto& [iw, fraction] : analysis::spill_iw_fractions(merged)) {
    if (fraction < 0.001) continue;
    std::printf("  IW %-3u %6.2f%%  %s\n", iw, fraction * 100,
                std::string(static_cast<std::size_t>(fraction * 120), '#').c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  flags.define_string("inputs", "",
                      "comma-separated spill files or directories, one per "
                      "scan process (e.g. run/p0,run/p1)");
  flags.define_string("out", "",
                      "re-spill the merged stream into this directory as one "
                      "canonical shard-0-of-1 file instead of printing a report");
  flags.define_u64("segment-bytes", store::kDefaultSegmentBytes,
                   "segment size for --out rewriting");
  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", flags.error().c_str(), flags.usage(argv[0]).c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.usage(argv[0]).c_str());
    return 0;
  }

  const std::vector<std::string> inputs = parse_inputs(flags.str("inputs"));
  if (inputs.empty()) {
    std::fprintf(stderr, "iwmerge: --inputs is required\n%s",
                 flags.usage(argv[0]).c_str());
    return 2;
  }

  if (!flags.str("out").empty()) {
    std::vector<std::string> files;
    std::string error;
    if (!store::collect_spill_files(inputs, store::RecordKind::Host, files, &error)) {
      std::fprintf(stderr, "iwmerge: %s\n", error.c_str());
      return 1;
    }
    return rewrite_merged(files, flags.str("out"),
                          static_cast<std::size_t>(flags.u64("segment-bytes")));
  }
  return print_report(inputs);
}
