#!/usr/bin/env python3
"""Aggregate gcov line coverage and gate it against the committed floors.

Usage: check_coverage.py BUILD_DIR [--report coverage_report.json]
                                   [--baseline tools/coverage/baseline.json]

Run the test suite under the `coverage` preset first (IWSCAN_COVERAGE=ON
writes one .gcda per TU), then point this script at the build directory. It
invokes `gcov --json-format` on every .gcda, merges the per-TU line tables
(a header exercised by any TU counts as covered), and computes line
coverage for each source group named in the baseline file.

The baseline maps source-path prefixes to minimum line-coverage percentages
— the floors recorded when the coverage lane was merged:

    { "src/core": 88.0, "src/scanner": 90.0 }

Exit codes: 0 = all groups at or above their floor, 1 = a group dropped
below it, 2 = usage / no coverage data found. A full per-file breakdown is
written to --report for the CI artifact regardless of the verdict.
"""

import json
import os
import subprocess
import sys


def parse_args(argv):
    build_dir = None
    report_path = "coverage_report.json"
    baseline_path = os.path.join("tools", "coverage", "baseline.json")
    args = argv[1:]
    while args:
        arg = args.pop(0)
        if arg == "--report":
            report_path = args.pop(0)
        elif arg == "--baseline":
            baseline_path = args.pop(0)
        elif build_dir is None:
            build_dir = arg
        else:
            return None
    if build_dir is None:
        return None
    return build_dir, report_path, baseline_path


def find_gcda(build_dir):
    for root, _dirs, files in os.walk(build_dir):
        for name in files:
            if name.endswith(".gcda"):
                yield os.path.join(root, name)


def gcov_json(gcda_path):
    """One gcov invocation → parsed JSON documents (one per source file)."""
    gcda_path = os.path.abspath(gcda_path)
    result = subprocess.run(
        ["gcov", "--json-format", "--stdout", gcda_path],
        capture_output=True,
        text=True,
        check=False,
        cwd=os.path.dirname(gcda_path),
    )
    documents = []
    for line in result.stdout.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            documents.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return documents


def merge_coverage(build_dir, source_root):
    """(file → {line → max hit count}) across every TU that compiled it."""
    lines_by_file = {}
    for gcda in find_gcda(build_dir):
        for document in gcov_json(gcda):
            for entry in document.get("files", []):
                path = os.path.normpath(entry["file"])
                if os.path.isabs(path):
                    path = os.path.relpath(path, source_root)
                if path.startswith(".."):
                    continue  # system / third-party header
                table = lines_by_file.setdefault(path, {})
                for line in entry.get("lines", []):
                    number = line["line_number"]
                    table[number] = max(table.get(number, 0), line["count"])
    return lines_by_file


def group_stats(lines_by_file, prefix):
    covered = total = 0
    files = {}
    for path, table in sorted(lines_by_file.items()):
        if not path.startswith(prefix):
            continue
        file_covered = sum(1 for count in table.values() if count > 0)
        covered += file_covered
        total += len(table)
        files[path] = {
            "lines": len(table),
            "covered": file_covered,
            "percent": round(100.0 * file_covered / len(table), 2) if table else 0.0,
        }
    percent = 100.0 * covered / total if total else 0.0
    return {"percent": round(percent, 2), "covered": covered, "lines": total,
            "files": files}


def main(argv):
    parsed = parse_args(argv)
    if parsed is None:
        print(__doc__, file=sys.stderr)
        return 2
    build_dir, report_path, baseline_path = parsed

    with open(baseline_path, encoding="utf-8") as handle:
        baseline = json.load(handle)

    source_root = os.getcwd()
    lines_by_file = merge_coverage(build_dir, source_root)
    if not lines_by_file:
        print(f"no .gcda coverage data under {build_dir}; "
              "build with the 'coverage' preset and run ctest first",
              file=sys.stderr)
        return 2

    report = {"groups": {}}
    failed = False
    for prefix, floor in sorted(baseline.items()):
        stats = group_stats(lines_by_file, prefix)
        stats["floor"] = floor
        report["groups"][prefix] = stats
        verdict = "OK" if stats["percent"] >= floor else "BELOW FLOOR"
        if stats["percent"] < floor:
            failed = True
        print(f"{prefix}: {stats['percent']:.2f}% line coverage "
              f"({stats['covered']}/{stats['lines']} lines, floor {floor}%) "
              f"[{verdict}]")

    with open(report_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(f"report written to {report_path}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
