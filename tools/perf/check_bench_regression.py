#!/usr/bin/env python3
"""Compare fresh `--json` bench runs against the committed baseline.

Usage: check_bench_regression.py BENCH_datapath.json FRESH.json [FRESH.json...]

Every fresh file contributes the entries of its top-level `benchmarks`
array (bench_micro emits one per microbenchmark; bench_s34_scan_rate emits
the scan/sweep rate counters). A name appearing in several files takes the
last file's value.

The baseline file (see BENCH_datapath.json at the repo root) maps benchmark
names to expected counters. Two kinds of counters are checked:

  * rates (items_per_second, bytes_per_second): the fresh value must be at
    least (1 - TOLERANCE) of the baseline — a >25% drop fails the job;
  * ceilings (allocs_per_packet, allocs_per_conn, peak_rss_bytes): the
    fresh value must not exceed the baseline — allocation counts are
    deterministic and the spill path's RSS is O(segment) by design, so any
    excess is a real regression, not noise.

Exits 0 when the baseline file does not exist (fresh branches without a
committed baseline skip the check) and 1 on any regression.
"""

import json
import sys

TOLERANCE = 0.25
RATE_KEYS = ("items_per_second", "bytes_per_second")
CEILING_KEYS = ("allocs_per_packet", "allocs_per_conn", "peak_rss_bytes")


def load(path):
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def main(argv):
    if len(argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    baseline_path, fresh_paths = argv[1], argv[2:]

    try:
        baseline = load(baseline_path)
    except FileNotFoundError:
        print(f"no committed baseline at {baseline_path}; skipping perf check")
        return 0
    by_name = {}
    for fresh_path in fresh_paths:
        fresh = load(fresh_path)
        by_name.update({entry["name"]: entry for entry in fresh.get("benchmarks", [])})
    failures = []
    for name, expected in baseline.get("baseline", {}).items():
        entry = by_name.get(name)
        if entry is None:
            failures.append(f"{name}: missing from the fresh run")
            continue
        for key, want in expected.items():
            got = entry.get(key)
            if got is None:
                failures.append(f"{name}: counter {key} missing from the fresh run")
            elif key in RATE_KEYS:
                floor = want * (1.0 - TOLERANCE)
                verdict = "FAIL" if got < floor else "ok"
                print(f"{verdict:4} {name} {key}: {got:.3g} vs baseline "
                      f"{want:.3g} (floor {floor:.3g})")
                if got < floor:
                    failures.append(f"{name}: {key} {got:.3g} < floor {floor:.3g}")
            elif key in CEILING_KEYS:
                verdict = "FAIL" if got > want else "ok"
                print(f"{verdict:4} {name} {key}: {got:.3g} vs ceiling {want:.3g}")
                if got > want:
                    failures.append(f"{name}: {key} {got:.3g} > ceiling {want:.3g}")
            else:
                failures.append(f"{name}: unknown counter kind '{key}' in baseline")

    if failures:
        print(f"\n{len(failures)} perf regression(s) vs {baseline_path}:")
        for failure in failures:
            print(f"  {failure}")
        print("If the change is intentional, refresh the baseline "
              "(see DESIGN.md, Performance).")
        return 1
    print(f"\nall benchmarks within tolerance of {baseline_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
