// Fixture tests for iwlint: every rule must flag its bad snippet, pass its
// good twin, and go quiet when disabled — so gutting a rule in the analyzer
// fails here even though the tree lint would simply stop reporting.
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "iwlint.hpp"

namespace {

using iwscan::lint::Finding;
using iwscan::lint::Options;

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(IWSCAN_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::vector<Finding> lint_fixture(const std::string& name,
                                  const std::string& pretend_path,
                                  const Options& options = {}) {
  return iwscan::lint::lint_source(pretend_path, read_fixture(name), options);
}

std::map<std::string, int> count_by_rule(const std::vector<Finding>& findings) {
  std::map<std::string, int> counts;
  for (const auto& finding : findings) ++counts[finding.rule];
  return counts;
}

struct RuleFixture {
  std::string rule;
  std::string bad_fixture;
  std::string bad_path;  // pretend repo-relative path for the bad snippet
  int bad_findings;
  std::string good_fixture;
  std::string good_path;
};

const std::vector<RuleFixture>& rule_fixtures() {
  static const std::vector<RuleFixture> fixtures = {
      {"layering", "bad_layering.cpp", "src/netbase/bad_layering.cpp", 2,
       "good_layering.cpp", "src/tcpstack/good_layering.cpp"},
      {"byte-bridge", "bad_byte_bridge.cpp", "src/core/bad_byte_bridge.cpp", 2,
       "good_byte_bridge.cpp", "src/core/good_byte_bridge.cpp"},
      {"banned-call", "bad_banned_call.cpp", "src/netbase/bad_banned_call.cpp", 3,
       "good_banned_call.cpp", "src/netbase/good_banned_call.cpp"},
      {"wire-enum-default", "bad_wire_enum_default.cpp",
       "src/tls/bad_wire_enum_default.cpp", 1, "good_wire_enum_default.cpp",
       "src/tls/good_wire_enum_default.cpp"},
      {"header-hygiene", "bad_header_hygiene.hpp",
       "src/netbase/bad_header_hygiene.hpp", 3, "good_header_hygiene.hpp",
       "src/netbase/good_header_hygiene.hpp"},
      {"determinism", "bad_determinism.cpp", "src/scanner/bad_determinism.cpp", 3,
       "good_determinism.cpp", "src/scanner/good_determinism.cpp"},
  };
  return fixtures;
}

TEST(IwlintRules, BadFixturesFlagExactlyTheirRule) {
  for (const auto& fixture : rule_fixtures()) {
    const auto findings = lint_fixture(fixture.bad_fixture, fixture.bad_path);
    const auto counts = count_by_rule(findings);
    ASSERT_EQ(counts.size(), 1u) << fixture.rule << ": unexpected extra rules";
    EXPECT_EQ(counts.begin()->first, fixture.rule);
    EXPECT_EQ(counts.begin()->second, fixture.bad_findings) << fixture.rule;
    for (const auto& finding : findings) {
      EXPECT_EQ(finding.file, fixture.bad_path);
      EXPECT_GT(finding.line, 0) << fixture.rule;
      EXPECT_FALSE(finding.message.empty()) << fixture.rule;
    }
  }
}

TEST(IwlintRules, GoodFixturesAreClean) {
  for (const auto& fixture : rule_fixtures()) {
    const auto findings = lint_fixture(fixture.good_fixture, fixture.good_path);
    EXPECT_TRUE(findings.empty())
        << fixture.rule << ": "
        << (findings.empty() ? "" : iwscan::lint::format_text(findings.front()));
  }
}

// The acceptance property: disabling a rule silences its bad fixture, so a
// rule that silently stopped firing cannot hide behind a green tree lint.
TEST(IwlintRules, EachRuleIsLoadBearing) {
  for (const auto& fixture : rule_fixtures()) {
    Options disabled;
    disabled.disabled_rules.push_back(fixture.rule);
    EXPECT_FALSE(lint_fixture(fixture.bad_fixture, fixture.bad_path).empty())
        << fixture.rule;
    EXPECT_TRUE(
        lint_fixture(fixture.bad_fixture, fixture.bad_path, disabled).empty())
        << fixture.rule;
  }
}

TEST(IwlintSuppression, JustificationIsMandatory) {
  const auto findings =
      lint_fixture("bad_suppression.cpp", "src/core/bad_suppression.cpp");
  const auto counts = count_by_rule(findings);
  // The unjustified allow() is flagged AND fails to suppress the underlying
  // byte-bridge finding.
  EXPECT_EQ(counts.at("suppression"), 1);
  EXPECT_EQ(counts.at("byte-bridge"), 1);
}

TEST(IwlintSuppression, JustifiedSuppressionSilencesTrailingAndWholeLine) {
  const auto findings =
      lint_fixture("good_suppression.cpp", "src/core/good_suppression.cpp");
  EXPECT_TRUE(findings.empty())
      << (findings.empty() ? "" : iwscan::lint::format_text(findings.front()));
}

TEST(IwlintSuppression, UnknownRuleNameIsFlagged) {
  const auto findings = iwscan::lint::lint_source(
      "src/core/x.cpp",
      "// iwlint: allow(no-such-rule) -- justified but meaningless\nint x;\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "suppression");
}

TEST(IwlintDeterminism, NetsimAndRngImplementationAreAllowlisted) {
  const auto content = read_fixture("bad_determinism.cpp");
  EXPECT_FALSE(
      iwscan::lint::lint_source("src/scanner/bad_determinism.cpp", content).empty());
  EXPECT_TRUE(
      iwscan::lint::lint_source("src/netsim/bad_determinism.cpp", content).empty());
  EXPECT_TRUE(iwscan::lint::lint_source("src/util/rng.cpp", content).empty());
}

TEST(IwlintLayering, TestsBenchExamplesSeeEverything) {
  const std::string content = "#include \"analysis/report.hpp\"\nint x;\n";
  EXPECT_TRUE(iwscan::lint::lint_source("tests/foo_test.cpp", content).empty());
  EXPECT_TRUE(iwscan::lint::lint_source("bench/bench_foo.cpp", content).empty());
  EXPECT_TRUE(iwscan::lint::lint_source("examples/foo.cpp", content).empty());
  // ...but netbase must not reach up into analysis.
  EXPECT_FALSE(iwscan::lint::lint_source("src/netbase/foo.cpp", content).empty());
}

TEST(IwlintOutput, TextAndJsonFormats) {
  const Finding finding{"src/a.cpp", 7, "layering", "msg with \"quotes\""};
  EXPECT_EQ(iwscan::lint::format_text(finding),
            "src/a.cpp:7: layering: msg with \"quotes\"");
  const std::string json = iwscan::lint::format_json({finding});
  EXPECT_NE(json.find("\"line\": 7"), std::string::npos);
  EXPECT_NE(json.find("msg with \\\"quotes\\\""), std::string::npos);
  EXPECT_EQ(iwscan::lint::format_json({}), "[]\n");
}

TEST(IwlintTree, WholeRepositoryLintsClean) {
  std::vector<std::string> io_errors;
  const auto findings = iwscan::lint::lint_tree(
      IWSCAN_LINT_REPO_ROOT, {"src", "tests", "bench", "examples", "tools"}, {},
      &io_errors);
  EXPECT_TRUE(io_errors.empty());
  for (const auto& finding : findings) {
    ADD_FAILURE() << iwscan::lint::format_text(finding);
  }
}

}  // namespace
