// Fixture tests for iwlint: every rule must flag its bad snippet, pass its
// good twin, and go quiet when disabled — so gutting a rule in the analyzer
// fails here even though the tree lint would simply stop reporting.
#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "callgraph.hpp"
#include "iwlint.hpp"
#include "tokens.hpp"

namespace {

using iwscan::lint::Finding;
using iwscan::lint::Options;

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(IWSCAN_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::vector<Finding> lint_fixture(const std::string& name,
                                  const std::string& pretend_path,
                                  const Options& options = {}) {
  return iwscan::lint::lint_source(pretend_path, read_fixture(name), options);
}

std::map<std::string, int> count_by_rule(const std::vector<Finding>& findings) {
  std::map<std::string, int> counts;
  for (const auto& finding : findings) ++counts[finding.rule];
  return counts;
}

struct RuleFixture {
  std::string rule;
  std::string bad_fixture;
  std::string bad_path;  // pretend repo-relative path for the bad snippet
  int bad_findings;
  std::string good_fixture;
  std::string good_path;
};

const std::vector<RuleFixture>& rule_fixtures() {
  static const std::vector<RuleFixture> fixtures = {
      {"layering", "bad_layering.cpp", "src/netbase/bad_layering.cpp", 2,
       "good_layering.cpp", "src/tcpstack/good_layering.cpp"},
      {"byte-bridge", "bad_byte_bridge.cpp", "src/core/bad_byte_bridge.cpp", 2,
       "good_byte_bridge.cpp", "src/core/good_byte_bridge.cpp"},
      {"banned-call", "bad_banned_call.cpp", "src/netbase/bad_banned_call.cpp", 3,
       "good_banned_call.cpp", "src/netbase/good_banned_call.cpp"},
      {"wire-enum-default", "bad_wire_enum_default.cpp",
       "src/tls/bad_wire_enum_default.cpp", 1, "good_wire_enum_default.cpp",
       "src/tls/good_wire_enum_default.cpp"},
      {"header-hygiene", "bad_header_hygiene.hpp",
       "src/netbase/bad_header_hygiene.hpp", 3, "good_header_hygiene.hpp",
       "src/netbase/good_header_hygiene.hpp"},
      {"determinism", "bad_determinism.cpp", "src/scanner/bad_determinism.cpp", 3,
       "good_determinism.cpp", "src/scanner/good_determinism.cpp"},
      {"wire-taint", "bad_wire_taint.cpp", "src/netbase/bad_wire_taint.cpp", 5,
       "good_wire_taint.cpp", "src/netbase/good_wire_taint.cpp"},
      {"concurrency-confinement", "bad_concurrency.cpp",
       "src/scanner/bad_concurrency.cpp", 4, "good_concurrency.cpp",
       "src/exec/good_concurrency.cpp"},
  };
  return fixtures;
}

TEST(IwlintRules, BadFixturesFlagExactlyTheirRule) {
  for (const auto& fixture : rule_fixtures()) {
    const auto findings = lint_fixture(fixture.bad_fixture, fixture.bad_path);
    const auto counts = count_by_rule(findings);
    ASSERT_EQ(counts.size(), 1u) << fixture.rule << ": unexpected extra rules";
    EXPECT_EQ(counts.begin()->first, fixture.rule);
    EXPECT_EQ(counts.begin()->second, fixture.bad_findings) << fixture.rule;
    for (const auto& finding : findings) {
      EXPECT_EQ(finding.file, fixture.bad_path);
      EXPECT_GT(finding.line, 0) << fixture.rule;
      EXPECT_FALSE(finding.message.empty()) << fixture.rule;
    }
  }
}

TEST(IwlintRules, GoodFixturesAreClean) {
  for (const auto& fixture : rule_fixtures()) {
    const auto findings = lint_fixture(fixture.good_fixture, fixture.good_path);
    EXPECT_TRUE(findings.empty())
        << fixture.rule << ": "
        << (findings.empty() ? "" : iwscan::lint::format_text(findings.front()));
  }
}

// The acceptance property: disabling a rule silences its bad fixture, so a
// rule that silently stopped firing cannot hide behind a green tree lint.
TEST(IwlintRules, EachRuleIsLoadBearing) {
  for (const auto& fixture : rule_fixtures()) {
    Options disabled;
    disabled.disabled_rules.push_back(fixture.rule);
    EXPECT_FALSE(lint_fixture(fixture.bad_fixture, fixture.bad_path).empty())
        << fixture.rule;
    EXPECT_TRUE(
        lint_fixture(fixture.bad_fixture, fixture.bad_path, disabled).empty())
        << fixture.rule;
  }
}

TEST(IwlintSuppression, JustificationIsMandatory) {
  const auto findings =
      lint_fixture("bad_suppression.cpp", "src/core/bad_suppression.cpp");
  const auto counts = count_by_rule(findings);
  // The unjustified allow() is flagged AND fails to suppress the underlying
  // byte-bridge finding.
  EXPECT_EQ(counts.at("suppression"), 1);
  EXPECT_EQ(counts.at("byte-bridge"), 1);
}

TEST(IwlintSuppression, JustifiedSuppressionSilencesTrailingAndWholeLine) {
  const auto findings =
      lint_fixture("good_suppression.cpp", "src/core/good_suppression.cpp");
  EXPECT_TRUE(findings.empty())
      << (findings.empty() ? "" : iwscan::lint::format_text(findings.front()));
}

TEST(IwlintSuppression, UnknownRuleNameIsFlagged) {
  const auto findings = iwscan::lint::lint_source(
      "src/core/x.cpp",
      "// iwlint: allow(no-such-rule) -- justified but meaningless\n"
      "constexpr int x = 0;\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "suppression");
}

TEST(IwlintDeterminism, NetsimAndRngImplementationAreAllowlisted) {
  const auto content = read_fixture("bad_determinism.cpp");
  EXPECT_FALSE(
      iwscan::lint::lint_source("src/scanner/bad_determinism.cpp", content).empty());
  EXPECT_TRUE(
      iwscan::lint::lint_source("src/netsim/bad_determinism.cpp", content).empty());
  EXPECT_TRUE(iwscan::lint::lint_source("src/util/rng.cpp", content).empty());
}

TEST(IwlintLayering, TestsBenchExamplesSeeEverything) {
  const std::string content = "#include \"analysis/report.hpp\"\nint x;\n";
  EXPECT_TRUE(iwscan::lint::lint_source("tests/foo_test.cpp", content).empty());
  EXPECT_TRUE(iwscan::lint::lint_source("bench/bench_foo.cpp", content).empty());
  EXPECT_TRUE(iwscan::lint::lint_source("examples/foo.cpp", content).empty());
  // ...but netbase must not reach up into analysis.
  EXPECT_FALSE(iwscan::lint::lint_source("src/netbase/foo.cpp", content).empty());
}

TEST(IwlintOutput, TextAndJsonFormats) {
  const Finding finding{"src/a.cpp", 7, "layering", "msg with \"quotes\""};
  EXPECT_EQ(iwscan::lint::format_text(finding),
            "src/a.cpp:7: layering: msg with \"quotes\"");
  const std::string json = iwscan::lint::format_json({finding});
  EXPECT_NE(json.find("\"line\": 7"), std::string::npos);
  EXPECT_NE(json.find("msg with \\\"quotes\\\""), std::string::npos);
  EXPECT_EQ(iwscan::lint::format_json({}), "[]\n");
}

// ---------------------------------------------------------------------------
// Cross-TU call-graph rules (hot-path, determinism-taint). These need the
// whole-program entry point: lint_source deliberately skips both.

using iwscan::lint::SourceFile;

std::vector<Finding> lint_program(const std::vector<SourceFile>& files,
                                  const Options& options = {}) {
  return iwscan::lint::lint_files(files, options);
}

int count_rule(const std::vector<Finding>& findings, const std::string& rule) {
  int n = 0;
  for (const auto& finding : findings) n += finding.rule == rule ? 1 : 0;
  return n;
}

TEST(IwlintHotPath, DirectFactAtRootIsFlagged) {
  const auto findings = lint_program({{"src/netsim/pump.cpp",
                                       "namespace iwscan::sim {\n"
                                       "IWSCAN_HOT void pump(std::vector<int>& v) {\n"
                                       "  v.push_back(1);\n"
                                       "}\n"
                                       "}  // namespace iwscan::sim\n"}});
  ASSERT_EQ(findings.size(), 1u)
      << (findings.empty() ? "" : iwscan::lint::format_text(findings.front()));
  EXPECT_EQ(findings[0].rule, "hot-path");
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_NE(findings[0].message.find("push_back"), std::string::npos);
}

TEST(IwlintHotPath, CrossFileChainNamesTheRoot) {
  const auto findings = lint_program(
      {{"src/netsim/pump.cpp",
        "namespace iwscan::sim {\n"
        "IWSCAN_HOT void pump() { helper_fill(); }\n"
        "}  // namespace iwscan::sim\n"},
       {"src/netbase/helper.cpp",
        "namespace iwscan::net {\n"
        "void helper_fill() { const std::string s = std::to_string(7); }\n"
        "}  // namespace iwscan::net\n"}});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "hot-path");
  EXPECT_EQ(findings[0].file, "src/netbase/helper.cpp");
  // The chain in the message leads back to the annotated root.
  EXPECT_NE(findings[0].message.find("pump"), std::string::npos);
}

TEST(IwlintHotPath, RecursionConvergesAndStillFlags) {
  const auto findings = lint_program({{"src/netsim/walk.cpp",
                                       "namespace iwscan::sim {\n"
                                       "IWSCAN_HOT void walk(int n) {\n"
                                       "  if (n > 0) walk(n - 1);\n"
                                       "  std::cout << n;\n"
                                       "}\n"
                                       "}  // namespace iwscan::sim\n"}});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "hot-path");
  EXPECT_NE(findings[0].message.find("cout"), std::string::npos);
}

TEST(IwlintHotPath, MutualRecursionConverges) {
  const auto findings = lint_program({{"src/netsim/pingpong.cpp",
                                       "namespace iwscan::sim {\n"
                                       "void ping(int n);\n"
                                       "void pong(int n) {\n"
                                       "  if (n > 0) ping(n - 1);\n"
                                       "  throw n;\n"
                                       "}\n"
                                       "void ping(int n) {\n"
                                       "  if (n > 0) pong(n - 1);\n"
                                       "}\n"
                                       "IWSCAN_HOT void drive() { ping(3); }\n"
                                       "}  // namespace iwscan::sim\n"}});
  ASSERT_EQ(count_rule(findings, "hot-path"), 1);
  EXPECT_NE(findings[0].message.find("throw"), std::string::npos);
}

TEST(IwlintHotPath, LambdaBodyFoldsIntoEnclosingFunction) {
  const auto findings = lint_program({{"src/netsim/lam.cpp",
                                       "namespace iwscan::sim {\n"
                                       "IWSCAN_HOT void pump(std::vector<int>& v) {\n"
                                       "  auto fill = [&v] { v.push_back(7); };\n"
                                       "  fill();\n"
                                       "}\n"
                                       "}  // namespace iwscan::sim\n"}});
  ASSERT_EQ(count_rule(findings, "hot-path"), 1);
  EXPECT_EQ(findings[0].line, 3);
}

TEST(IwlintHotPath, TemplateHelperIsTraversed) {
  const auto findings = lint_program({{"src/netsim/tmpl.cpp",
                                       "namespace iwscan::sim {\n"
                                       "template <typename T>\n"
                                       "void fill(T& t) { t.resize(8); }\n"
                                       "IWSCAN_HOT void pump(std::vector<int>& v) {\n"
                                       "  fill(v);\n"
                                       "}\n"
                                       "}  // namespace iwscan::sim\n"}});
  ASSERT_EQ(count_rule(findings, "hot-path"), 1);
  EXPECT_NE(findings[0].message.find("resize"), std::string::npos);
}

TEST(IwlintHotPath, OverloadSetsResolveOverApproximately) {
  // Name-based resolution cannot pick the overload; the allocating member
  // of the set must be flagged even though the call site passes an int.
  const auto findings = lint_program({{"src/netsim/ovl.cpp",
                                       "namespace iwscan::sim {\n"
                                       "void encode(int) {}\n"
                                       "void encode(std::vector<int>& v) {\n"
                                       "  v.reserve(4);\n"
                                       "}\n"
                                       "IWSCAN_HOT void pump(int x) { encode(x); }\n"
                                       "}  // namespace iwscan::sim\n"}});
  ASSERT_EQ(count_rule(findings, "hot-path"), 1);
  EXPECT_EQ(findings[0].line, 4);
}

TEST(IwlintHotPath, VirtualDispatchReachesEveryOverride) {
  const auto findings = lint_program(
      {{"src/netsim/sink.cpp",
        "namespace iwscan::sim {\n"
        "struct Sink {\n"
        "  virtual void emit(int value) = 0;\n"
        "};\n"
        "struct VecSink : Sink {\n"
        "  void emit(int value) override;\n"
        "  std::vector<int> out_;\n"
        "};\n"
        "void VecSink::emit(int value) { out_.push_back(value); }\n"
        "IWSCAN_HOT void pump(Sink& sink) { sink.emit(1); }\n"
        "}  // namespace iwscan::sim\n"}});
  ASSERT_EQ(count_rule(findings, "hot-path"), 1);
  EXPECT_EQ(findings[0].line, 9);
}

TEST(IwlintHotPath, BoundaryStopsTraversal) {
  // IWSCAN_HOT_BOUNDARY marks the audited hand-off: the allocating override
  // behind it is out of scope for the fabric's root.
  const auto findings = lint_program(
      {{"src/netsim/boundary.cpp",
        "namespace iwscan::sim {\n"
        "struct Endpoint {\n"
        "  IWSCAN_HOT_BOUNDARY virtual void handle_it(int value) = 0;\n"
        "};\n"
        "struct Slow : Endpoint {\n"
        "  void handle_it(int value) override;\n"
        "};\n"
        "void Slow::handle_it(int value) {\n"
        "  const std::string s = std::to_string(value);\n"
        "}\n"
        "IWSCAN_HOT void pump(Endpoint& endpoint) { endpoint.handle_it(1); }\n"
        "}  // namespace iwscan::sim\n"}});
  EXPECT_EQ(count_rule(findings, "hot-path"), 0)
      << iwscan::lint::format_text(findings.front());
}

TEST(IwlintHotPath, JustifiedSuppressionSilencesProgramFinding) {
  const auto findings = lint_program(
      {{"src/netsim/pump.cpp",
        "namespace iwscan::sim {\n"
        "IWSCAN_HOT void pump(std::vector<int>& v) {\n"
        "  // iwlint: allow(hot-path) -- fixture: growth is intentional here\n"
        "  v.push_back(1);\n"
        "}\n"
        "}  // namespace iwscan::sim\n"}});
  EXPECT_TRUE(findings.empty())
      << iwscan::lint::format_text(findings.front());
}

TEST(IwlintHotPath, PerTuEntryPointNeverRunsProgramRules) {
  // lint_source's contract: per-TU rules only, even on annotated sources.
  const auto findings = iwscan::lint::lint_source(
      "src/netsim/pump.cpp",
      "IWSCAN_HOT void pump(std::vector<int>& v) { v.push_back(1); }\n");
  EXPECT_TRUE(findings.empty());
}

TEST(IwlintTaint, ClockBehindNetsimAllowlistIsStillTainted) {
  // The per-TU determinism rule allowlists src/netsim/, so this program is
  // per-TU clean — only the cross-TU taint pass can see that a scan root
  // reaches the clock read.
  const std::vector<SourceFile> program = {
      {"src/netsim/clockutil.cpp",
       "namespace iwscan::sim {\n"
       "long now_ns() {\n"
       "  return std::chrono::steady_clock::now().time_since_epoch().count();\n"
       "}\n"
       "}  // namespace iwscan::sim\n"},
      {"src/scanner/runner.cpp",
       "namespace iwscan::scan {\n"
       "int run_iw_scan() { return static_cast<int>(now_ns()); }\n"
       "}  // namespace iwscan::scan\n"}};
  const auto findings = lint_program(program);
  ASSERT_EQ(findings.size(), 1u)
      << (findings.empty() ? "" : iwscan::lint::format_text(findings.front()));
  EXPECT_EQ(findings[0].rule, "determinism-taint");
  EXPECT_EQ(findings[0].file, "src/netsim/clockutil.cpp");
  EXPECT_NE(findings[0].message.find("run_iw_scan"), std::string::npos);
}

TEST(IwlintTaint, QuarantinedSinksAreOpaque) {
  // The same clock read inside src/util/stopwatch.cpp is the sanctioned
  // home for wall-clock access; reaching it taints nothing.
  const auto findings = lint_program(
      {{"src/util/stopwatch.cpp",
        "namespace iwscan::util {\n"
        "long now_ns() {\n"
        "  return std::chrono::steady_clock::now().time_since_epoch().count();\n"
        "}\n"
        "}  // namespace iwscan::util\n"},
       {"src/scanner/runner.cpp",
        "namespace iwscan::scan {\n"
        "int run_iw_scan() { return static_cast<int>(now_ns()); }\n"
        "}  // namespace iwscan::scan\n"}});
  EXPECT_TRUE(findings.empty())
      << iwscan::lint::format_text(findings.front());
}

TEST(IwlintProgram, BothCallGraphRulesAreLoadBearing) {
  const std::vector<SourceFile> hot_bad = {
      {"src/netsim/pump.cpp",
       "namespace iwscan::sim {\n"
       "IWSCAN_HOT void pump(std::vector<int>& v) { v.push_back(1); }\n"
       "}  // namespace iwscan::sim\n"}};
  const std::vector<SourceFile> taint_bad = {
      {"src/netsim/clockutil.cpp",
       "namespace iwscan::sim {\n"
       "long now_ns() {\n"
       "  return std::chrono::steady_clock::now().time_since_epoch().count();\n"
       "}\n"
       "}  // namespace iwscan::sim\n"},
      {"src/scanner/runner.cpp",
       "namespace iwscan::scan {\n"
       "int run_iw_scan() { return static_cast<int>(now_ns()); }\n"
       "}  // namespace iwscan::scan\n"}};
  EXPECT_EQ(count_rule(lint_program(hot_bad), "hot-path"), 1);
  EXPECT_EQ(count_rule(lint_program(taint_bad), "determinism-taint"), 1);
  Options no_hot;
  no_hot.disabled_rules.push_back("hot-path");
  EXPECT_TRUE(lint_program(hot_bad, no_hot).empty());
  Options no_taint;
  no_taint.disabled_rules.push_back("determinism-taint");
  EXPECT_TRUE(lint_program(taint_bad, no_taint).empty());
}

TEST(IwlintProgram, StatsReportGraphSize) {
  iwscan::lint::ProgramStats stats;
  const std::vector<SourceFile> program = {
      {"src/netsim/pump.cpp",
       "namespace iwscan::sim {\n"
       "void helper() {}\n"
       "IWSCAN_HOT void pump() { helper(); }\n"
       "int run_iw_scan() { return 0; }\n"
       "}  // namespace iwscan::sim\n"}};
  const auto findings = iwscan::lint::lint_files(program, {}, &stats);
  EXPECT_TRUE(findings.empty());
  EXPECT_EQ(stats.files, 1u);
  EXPECT_EQ(stats.functions, 3u);
  EXPECT_EQ(stats.hot_roots, 1u);
  EXPECT_EQ(stats.taint_roots, 1u);
  EXPECT_GE(stats.call_edges, 1u);
}

TEST(IwlintSuppression, StandaloneCommentCoversTheWholeStatement) {
  // The banned call sits on the statement's continuation line, not the line
  // right after the comment; the suppression must cover the full span.
  const auto findings = iwscan::lint::lint_source(
      "src/analysis/parse.cpp",
      "int parse(const char* a, const char* b) {\n"
      "  // iwlint: allow(banned-call) -- fixture: legacy parse, span test\n"
      "  const int x = combine(a,\n"
      "                        atoi(b));\n"
      "  return x;\n"
      "}\n");
  EXPECT_TRUE(findings.empty())
      << iwscan::lint::format_text(findings.front());
  // Control: without the comment the same source fires on line 3.
  const auto unsuppressed = iwscan::lint::lint_source(
      "src/analysis/parse.cpp",
      "int parse(const char* a, const char* b) {\n"
      "  const int x = combine(a,\n"
      "                        atoi(b));\n"
      "  return x;\n"
      "}\n");
  ASSERT_EQ(unsuppressed.size(), 1u);
  EXPECT_EQ(unsuppressed[0].rule, "banned-call");
  EXPECT_EQ(unsuppressed[0].line, 3);
}

TEST(IwlintExplain, EveryRuleHasAnExplanation) {
  for (const auto& rule : iwscan::lint::rule_names()) {
    EXPECT_FALSE(iwscan::lint::rule_explanation(rule).empty()) << rule;
  }
  EXPECT_TRUE(iwscan::lint::rule_explanation("no-such-rule").empty());
  EXPECT_NE(std::find(iwscan::lint::rule_names().begin(),
                      iwscan::lint::rule_names().end(), "hot-path"),
            iwscan::lint::rule_names().end());
  EXPECT_NE(std::find(iwscan::lint::rule_names().begin(),
                      iwscan::lint::rule_names().end(), "determinism-taint"),
            iwscan::lint::rule_names().end());
}

// ---------------------------------------------------------------------------
// Tokenizer fixtures the dataflow rules depend on: raw strings and digit
// separators must lex as single tokens attributed to their START line, or
// taint chains and suppression spans drift.

using iwscan::lint::TokKind;

TEST(IwlintTokens, DigitSeparatorsLexAsOneNumber) {
  const auto scan = iwscan::lint::tokenize("std::size_t x = 64'000;\n");
  bool found = false;
  for (const auto& tok : scan.tokens) {
    if (tok.kind == TokKind::Number) {
      EXPECT_EQ(tok.text, "64'000");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(IwlintTokens, RawStringIsOneTokenAndHidesCommentMarkers) {
  const auto scan =
      iwscan::lint::tokenize("auto s = R\"(quote \" and // not a comment)\";\n");
  EXPECT_TRUE(scan.comments.empty());
  bool found = false;
  for (const auto& tok : scan.tokens) {
    if (tok.kind == TokKind::Str) {
      EXPECT_NE(tok.text.find("not a comment"), std::string_view::npos);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(IwlintTokens, DelimitedRawStringStopsAtMatchingTerminator) {
  // The inner `)"` must not end the d-char-delimited literal.
  const auto scan = iwscan::lint::tokenize(
      "auto s = R\"x(inner )\" quote)x\";\nint marker_after;\n");
  bool marker = false;
  for (const auto& tok : scan.tokens) {
    if (tok.kind == TokKind::Ident && tok.text == "marker_after") {
      EXPECT_EQ(tok.line, 2);
      marker = true;
    }
  }
  EXPECT_TRUE(marker);
}

TEST(IwlintTokens, MultilineRawStringKeepsStartLineAndCodeLines) {
  const auto scan = iwscan::lint::tokenize(
      "auto s = R\"(line one\nline two\nline three)\";\nint after;\n");
  bool str_found = false;
  for (const auto& tok : scan.tokens) {
    if (tok.kind == TokKind::Str) {
      EXPECT_EQ(tok.line, 1);
      str_found = true;
    }
    if (tok.kind == TokKind::Ident && tok.text == "after") {
      EXPECT_EQ(tok.line, 4);
    }
  }
  EXPECT_TRUE(str_found);
  // Every spanned line counts as code so suppression spans don't drift.
  for (int line = 1; line <= 4; ++line) {
    EXPECT_EQ(scan.code_lines.count(line), 1u) << line;
  }
}

// ---------------------------------------------------------------------------
// wire-taint dataflow specifics beyond the fixture table: the finding must
// print the def→use chain, and a justified suppression must silence it.

TEST(IwlintWireTaint, FindingPrintsTheDefUseChain) {
  const auto findings =
      lint_fixture("bad_wire_taint.cpp", "src/netbase/bad_wire_taint.cpp");
  bool chain = false;
  for (const auto& finding : findings) {
    if (finding.message.find("raw_idx") != std::string::npos) {
      EXPECT_NE(finding.message.find("shifted"), std::string::npos);
      EXPECT_NE(finding.message.find("subscript"), std::string::npos);
      chain = true;
    }
  }
  EXPECT_TRUE(chain) << "no finding carries the raw_idx -> idx -> shifted chain";
}

TEST(IwlintWireTaint, JustifiedSuppressionSilencesTheFlow) {
  const auto findings = iwscan::lint::lint_source(
      "src/netbase/len.cpp",
      "namespace iwscan::net {\n"
      "std::vector<std::uint8_t> grab(WireReader& reader) {\n"
      "  std::vector<std::uint8_t> out;\n"
      "  const std::uint16_t len = reader.u16();\n"
      "  // iwlint: allow(wire-taint) -- fixture: bounded by the caller's framing\n"
      "  out.resize(len);\n"
      "  return out;\n"
      "}\n"
      "}  // namespace iwscan::net\n");
  EXPECT_TRUE(findings.empty())
      << iwscan::lint::format_text(findings.front());
}

// ---------------------------------------------------------------------------
// concurrency-confinement specifics beyond the fixture table.

TEST(IwlintConcurrency, ThreadPoolIsTheSanctionedHome) {
  const std::string content =
      "namespace iwscan::exec {\n"
      "void spawn() { std::thread worker([] {}); worker.join(); }\n"
      "}  // namespace iwscan::exec\n";
  EXPECT_TRUE(
      iwscan::lint::lint_source("src/exec/thread_pool.cpp", content).empty());
  // Even inside src/exec/, thread creation belongs to the pool alone.
  EXPECT_FALSE(iwscan::lint::lint_source("src/exec/channel.cpp", content).empty());
}

TEST(IwlintConcurrency, ConstGlobalsAreExemptMutableOnesAreNot) {
  EXPECT_TRUE(iwscan::lint::lint_source(
                  "src/core/c.cpp",
                  "constexpr int kMax = 7;\nconst char* const kName = \"iw\";\n")
                  .empty());
  const auto findings =
      iwscan::lint::lint_source("src/core/c.cpp", "int g_count = 0;\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "concurrency-confinement");
  EXPECT_NE(findings[0].message.find("g_count"), std::string::npos);
}

TEST(IwlintConcurrency, SuppressionWithJustificationIsHonored) {
  // Mirrors the tree's one sanctioned exception (alloc_stats.hpp): one
  // justified comment covers both the sync-type and mutable-global findings
  // that anchor to the declaration line.
  const auto findings = iwscan::lint::lint_source(
      "src/util/counter.cpp",
      "// iwlint: allow(concurrency-confinement) -- fixture: audited counter\n"
      "std::atomic<int> g_count{0};\n");
  EXPECT_TRUE(findings.empty())
      << iwscan::lint::format_text(findings.front());
}

// ---------------------------------------------------------------------------
// SARIF output and dataflow stats.

TEST(IwlintOutput, SarifFormat) {
  const Finding finding{"src/a.cpp", 7, "wire-taint", "tainted \"len\""};
  const std::string sarif = iwscan::lint::format_sarif({finding});
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"wire-taint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 7"), std::string::npos);
  EXPECT_NE(sarif.find("%SRCROOT%"), std::string::npos);
  EXPECT_NE(sarif.find("tainted \\\"len\\\""), std::string::npos);
  // Every rule is described in the driver's rule table, even on a clean run.
  const std::string empty = iwscan::lint::format_sarif({});
  for (const auto& rule : iwscan::lint::rule_names()) {
    EXPECT_NE(empty.find("\"id\": \"" + rule + "\""), std::string::npos) << rule;
  }
}

TEST(IwlintProgram, DataflowStatsCountSourcesSinksGuards) {
  iwscan::lint::ProgramStats stats;
  const std::vector<SourceFile> program = {
      {"src/netbase/len.cpp",
       "namespace iwscan::net {\n"
       "std::vector<std::uint8_t> grab(WireReader& reader) {\n"
       "  std::vector<std::uint8_t> out;\n"
       "  const std::uint16_t len = reader.u16();\n"
       "  if (!reader.require(len)) return out;\n"
       "  out.resize(len);\n"
       "  return out;\n"
       "}\n"
       "}  // namespace iwscan::net\n"}};
  const auto findings = iwscan::lint::lint_files(program, {}, &stats);
  EXPECT_TRUE(findings.empty())
      << iwscan::lint::format_text(findings.front());
  EXPECT_EQ(stats.dataflow.functions, 1u);
  EXPECT_GE(stats.dataflow.taint_sources, 1u);
  EXPECT_GE(stats.dataflow.taint_sinks, 1u);
  EXPECT_GE(stats.dataflow.taint_guards, 1u);
}

TEST(IwlintTree, WholeRepositoryLintsClean) {
  std::vector<std::string> io_errors;
  const auto findings = iwscan::lint::lint_tree(
      IWSCAN_LINT_REPO_ROOT, {"src", "tests", "bench", "examples", "tools"}, {},
      &io_errors);
  EXPECT_TRUE(io_errors.empty());
  for (const auto& finding : findings) {
    ADD_FAILURE() << iwscan::lint::format_text(finding);
  }
}

}  // namespace
