// Linted as src/tls/good_wire_enum_default.cpp: wire enums enumerated
// exhaustively; a default over a non-wire enum stays legal.
#include "tls/records.hpp"

namespace iwscan::tls {

enum class LocalMode { Fast, Careful };

int classify(ContentType type) {
  switch (type) {
    case ContentType::ChangeCipherSpec:
      return 0;
    case ContentType::Alert:
      return 2;
    case ContentType::Handshake:
      return 1;
    case ContentType::ApplicationData:
      return 3;
  }
  return -1;
}

int cost(LocalMode mode) {
  switch (mode) {
    case LocalMode::Fast:
      return 1;
    default:
      return 10;
  }
}

}  // namespace iwscan::tls
