// Linted as src/netbase/good_header_hygiene.hpp.
#pragma once

#include <cstdint>

namespace iwscan::net {
inline std::uint8_t right_home() { return 0; }
}  // namespace iwscan::net
