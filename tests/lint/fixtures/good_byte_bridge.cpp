// Linted as src/core/good_byte_bridge.cpp: the bridge helpers do the
// casting; declarations with unnamed pointer parameters must not match the
// C-style-cast heuristic.
#include <cstdint>
#include <span>
#include <string_view>

#include "util/bytes.hpp"

namespace iwscan::core {

void sink(const char*) noexcept;

std::string_view view_bytes(std::span<const std::uint8_t> data) {
  return util::as_text(data);
}

std::size_t arithmetic(std::size_t a, std::size_t b) {
  return (a * b) + sizeof(int*);
}

}  // namespace iwscan::core
