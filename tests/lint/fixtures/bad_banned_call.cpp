// Linted as src/netbase/bad_banned_call.cpp: memcpy outside the bytes.hpp
// allowlist, a raw assert, and wall-clock time().
#include <cassert>
#include <cstring>
#include <ctime>

namespace iwscan::net {

void copy_bytes(char* dst, const char* src, unsigned long n) {
  assert(n > 0);
  std::memcpy(dst, src, n);
}

long stamp() { return static_cast<long>(time(nullptr)); }

}  // namespace iwscan::net
