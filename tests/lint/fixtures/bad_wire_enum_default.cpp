// Linted as src/tls/bad_wire_enum_default.cpp: the default: hides any newly
// registered ContentType from -Wswitch.
#include "tls/records.hpp"

namespace iwscan::tls {

int classify(ContentType type) {
  switch (type) {
    case ContentType::Handshake:
      return 1;
    case ContentType::Alert:
      return 2;
    default:
      return 0;
  }
}

}  // namespace iwscan::tls
