// Linted as src/netbase/bad_header_hygiene.hpp: no #pragma once before the
// first code, and the namespace belongs to another module.
#include <cstdint>

namespace iwscan::tls {
inline std::uint8_t wrong_home() { return 0; }
}  // namespace iwscan::tls
