// Fixture twin: the same flows as bad_wire_taint.cpp, each laundered
// through a sanctioned guard before it sizes, indexes, or slices anything.
// Also carries the lexer fixtures the tokenizer tests pin: a digit-separated
// literal and a raw string literal. Linted, never compiled.
#include <algorithm>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "netbase/wire.hpp"

namespace iwscan::net {

constexpr std::size_t kMaxPayload = 64'000;
const std::string_view kProbeLine = R"(GET / HTTP/1.1)";

// require() pre-validates the attacker-derived length.
std::vector<std::uint8_t> grab_guarded(WireReader& reader) {
  std::vector<std::uint8_t> out;
  const std::uint16_t len = reader.u16();
  if (!reader.require(len)) return out;
  out.resize(len);
  return out;
}

// A comparison against the span's size() guards the index.
std::uint8_t pick_guarded(std::span<const std::uint8_t> data, WireReader& reader) {
  const std::size_t idx = reader.u8();
  if (idx >= data.size()) return 0;
  return data[idx];
}

// std::min against a named constant clamps before the resize.
std::vector<std::uint8_t> grab_clamped(WireReader& reader) {
  std::vector<std::uint8_t> out;
  const std::size_t len = std::min<std::size_t>(reader.u16(), kMaxPayload);
  out.resize(len);
  return out;
}

// A comparison against a kConstant bound launders the loop count.
std::uint32_t sum_bounded(WireReader& reader) {
  const std::uint16_t count = reader.u16();
  if (count > kMaxPayload) return 0;
  std::uint32_t total = 0;
  for (std::uint16_t i = 0; i < count; ++i) total += reader.u8();
  return total;
}

}  // namespace iwscan::net
