// Linted as src/netbase/bad_layering.cpp: netbase sits below tcpstack in the
// module DAG, so both includes must be flagged.
#include "tcpstack/config.hpp"
#include "not_a_module.hpp"

namespace iwscan::net {
int unused_layering_probe() { return 1; }
}  // namespace iwscan::net
