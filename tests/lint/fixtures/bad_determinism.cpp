// Linted as src/scanner/bad_determinism.cpp: entropy and wall clocks are
// banned outside src/util/rng.cpp and src/netsim/. The same bytes linted as
// a src/netsim/ path must produce zero findings.
#include <chrono>
#include <cstdlib>
#include <random>

namespace iwscan::scan {

unsigned long entropy() {
  std::random_device device;
  srand(42);
  const auto now = std::chrono::steady_clock::now();
  return device() + static_cast<unsigned long>(now.time_since_epoch().count());
}

}  // namespace iwscan::scan
