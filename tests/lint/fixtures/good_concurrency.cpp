// Fixture twin: the same primitives inside their confinement zone. This
// file pretends to live in src/exec/, where synchronization primitives are
// sanctioned; thread creation itself still belongs to thread_pool.cpp, so
// none happens here. Linted, never compiled.
#include <atomic>
#include <cstdint>
#include <mutex>

namespace iwscan::exec {

class WorkGate {
 public:
  void close() {
    std::lock_guard hold(mu_);
    closed_ = true;
  }
  bool closed() {
    std::lock_guard hold(mu_);
    return closed_;
  }

 private:
  std::mutex mu_;
  bool closed_ = false;
};

inline std::uint64_t bump(std::atomic<std::uint64_t>& counter) {
  return counter.fetch_add(1, std::memory_order_relaxed);
}

// A static query, not thread creation: allowed anywhere.
inline unsigned lanes() { return std::thread::hardware_concurrency(); }

}  // namespace iwscan::exec
