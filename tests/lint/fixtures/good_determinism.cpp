// Linted as src/scanner/good_determinism.cpp: explicitly seeded RNG and
// virtual time keep permutation sweeps replayable.
#include "util/rng.hpp"

namespace iwscan::scan {

unsigned long draw(unsigned long seed) {
  util::Rng rng(seed);
  return static_cast<unsigned long>(rng());
}

}  // namespace iwscan::scan
