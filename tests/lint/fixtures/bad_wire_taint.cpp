// Fixture: every wire-derived value below reaches a size, index, slice, or
// patch sink with no bounds guard on the way. Linted, never compiled.
#include <cstdint>
#include <span>
#include <vector>

#include "netbase/wire.hpp"

namespace iwscan::net {

// Tainted resize, direct: the attacker picks the allocation size.
std::vector<std::uint8_t> grab(WireReader& reader) {
  std::vector<std::uint8_t> out;
  const std::uint16_t len = reader.u16();
  out.resize(len);
  return out;
}

// Taint survives an assignment/arithmetic chain into a subscript.
std::uint8_t pick(std::span<const std::uint8_t> data, WireReader& reader) {
  const std::uint8_t raw_idx = reader.u8();
  const std::size_t idx = raw_idx * 2;
  const std::size_t shifted = idx + 1;
  return data[shifted];
}

// Tainted loop bound: the peer controls the iteration count.
std::uint32_t sum(WireReader& reader) {
  const std::uint16_t count = reader.u16();
  std::uint32_t total = 0;
  for (std::uint16_t i = 0; i < count; ++i) total += reader.u8();
  return total;
}

// A decoded header field slices a span.
std::span<const std::uint8_t> slice(std::span<const std::uint8_t> bytes) {
  struct Hdr {
    std::uint16_t total_length;
  } hdr{};
  return bytes.subspan(0, hdr.total_length);
}

// A wire-buffer subscript read feeds a WireWriter patch offset.
void patch(Bytes& out, std::span<const std::uint8_t> data) {
  WireWriter writer(out);
  const std::size_t at = data[0];
  writer.patch_u16(at, 7);
}

}  // namespace iwscan::net
