// Fixture: concurrency primitives outside their confinement zones. Threads
// come only from src/exec/thread_pool.cpp, synchronization primitives live
// in src/exec/, std::future and friends are banned outright, and mutable
// namespace-scope state is banned tree-wide. Linted, never compiled.
#include <future>
#include <mutex>
#include <thread>

namespace iwscan::scan {

int g_inflight_probes = 0;

void rogue_thread() {
  std::thread worker([] {});
  worker.join();
}

void rogue_lock() {
  static std::mutex gate;
  gate.lock();
  gate.unlock();
}

int rogue_handoff(int x) {
  std::future<int> pending;
  return x;
}

}  // namespace iwscan::scan
