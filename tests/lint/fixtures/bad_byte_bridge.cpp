// Linted as src/core/bad_byte_bridge.cpp: one reinterpret_cast and one
// C-style pointer cast, both outside util/bytes.hpp.
#include <cstdint>
#include <string_view>

namespace iwscan::core {

std::string_view leak_bytes(const std::uint8_t* data, std::size_t size) {
  return {reinterpret_cast<const char*>(data), size};
}

const char* leak_more(const std::uint8_t* data) {
  return (const char*)data;
}

}  // namespace iwscan::core
