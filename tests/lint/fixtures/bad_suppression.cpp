// Linted as src/core/bad_suppression.cpp: a suppression with no
// justification is itself a finding, and it suppresses nothing.
#include <cstdint>

namespace iwscan::core {

const char* unjustified(const std::uint8_t* data) {
  return reinterpret_cast<const char*>(data);  // iwlint: allow(byte-bridge)
}

}  // namespace iwscan::core
