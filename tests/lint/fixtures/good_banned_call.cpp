// Linted as src/netbase/good_banned_call.cpp: std::copy, IWSCAN_ASSERT and a
// member function that merely shares a banned name.
#include <algorithm>

#include "util/check.hpp"

namespace iwscan::net {

struct Clock {
  long time() const { return 0; }  // member named time(): not the libc call
};

void copy_bytes(char* dst, const char* src, unsigned long n) {
  IWSCAN_ASSERT(n > 0, "empty copy is a caller bug");
  std::copy(src, src + n, dst);
}

long stamp(const Clock& clock) { return clock.time(); }

}  // namespace iwscan::net
