// Linted as src/core/good_suppression.cpp: a justified suppression silences
// exactly the named rule on that line, whether trailing or on its own line.
#include <cstdint>

namespace iwscan::core {

const char* justified(const std::uint8_t* data) {
  // iwlint: allow(byte-bridge) -- fixture exercising a whole-line suppression
  return reinterpret_cast<const char*>(data);
}

const char* trailing(const std::uint8_t* data) {
  return reinterpret_cast<const char*>(data);  // iwlint: allow(byte-bridge) -- fixture
}

}  // namespace iwscan::core
