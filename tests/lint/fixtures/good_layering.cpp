// Linted as src/tcpstack/good_layering.cpp: tcpstack may use netsim, netbase
// and util, plus its own headers and any system header.
#include "tcpstack/config.hpp"

#include <vector>

#include "netbase/wire.hpp"
#include "netsim/event_loop.hpp"
#include "util/rng.hpp"

namespace iwscan::tcp {
int unused_layering_probe() { return 0; }
}  // namespace iwscan::tcp
