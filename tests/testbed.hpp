// Shared test fixture: a controlled two-node testbed (scanner ↔ one or more
// configured hosts), mirroring the paper's §3.5 validation setup where
// ground-truth IWs are known and packet traces are inspected.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/estimator.hpp"
#include "core/host_prober.hpp"
#include "httpd/http_server.hpp"
#include "inetmodel/profiles.hpp"
#include "netsim/network.hpp"
#include "tcpstack/host.hpp"
#include "tls/tls_server.hpp"

namespace iwscan::test {

inline const net::IPv4Address kScannerIp{192, 0, 2, 1};

/// Minimal SessionServices bound straight to the network (no scan engine):
/// lets tests drive one estimator / prober at a time.
class DirectServices final : public scan::SessionServices, public sim::Endpoint {
 public:
  explicit DirectServices(sim::Network& network) : network_(network) {
    network_.attach(kScannerIp, this);
  }
  ~DirectServices() override { network_.detach(kScannerIp); }

  void set_handler(std::function<void(const net::Datagram&)> handler) {
    handler_ = std::move(handler);
  }

  void handle_packet(net::PacketView bytes) override {
    const auto datagram = net::decode_datagram(bytes);
    if (datagram && handler_) handler_(*datagram);
  }

  void send_packet(net::Bytes bytes) override { network_.send(std::move(bytes)); }
  sim::EventLoop& loop() override { return network_.loop(); }
  net::IPv4Address scanner_address() const override { return kScannerIp; }
  std::uint16_t allocate_port(net::IPv4Address) override { return next_port_++; }
  std::uint64_t session_seed(net::IPv4Address) override {
    return seed_ += 0x9e3779b97f4a7c15ULL;
  }

 private:
  sim::Network& network_;
  std::function<void(const net::Datagram&)> handler_;
  std::uint16_t next_port_ = 40000;
  std::uint64_t seed_ = 0x5eed;
};

class Testbed {
 public:
  explicit Testbed(std::uint64_t seed = 1)
      : network_(loop_, seed), services_(network_) {
    sim::PathConfig path;
    path.latency = sim::msec(10);
    network_.set_default_path(path);
  }

  sim::EventLoop& loop() { return loop_; }
  sim::Network& network() { return network_; }
  DirectServices& services() { return services_; }

  tcp::TcpHost& add_http_host(net::IPv4Address ip, const tcp::StackConfig& stack,
                              http::WebConfig web) {
    auto host = std::make_unique<tcp::TcpHost>(network_, ip, stack, 99);
    host->listen(80, http::HttpServerApp::factory(std::move(web)));
    network_.attach(ip, host.get());
    hosts_.push_back(std::move(host));
    return *hosts_.back();
  }

  tcp::TcpHost& add_tls_host(net::IPv4Address ip, const tcp::StackConfig& stack,
                             tls::TlsConfig config) {
    auto host = std::make_unique<tcp::TcpHost>(network_, ip, stack, 99);
    host->listen(443, tls::TlsServerApp::factory(std::move(config)));
    network_.attach(ip, host.get());
    hosts_.push_back(std::move(host));
    return *hosts_.back();
  }

  /// Run one estimation connection; returns the observation.
  core::ConnObservation estimate(net::IPv4Address target, std::uint16_t port,
                                 core::EstimatorConfig config, net::Bytes request) {
    core::ConnObservation result;
    bool done = false;
    core::IwEstimator estimator(services_, target, port, config, std::move(request),
                                [&](const core::ConnObservation& observation) {
                                  result = observation;
                                  done = true;
                                });
    services_.set_handler(
        [&](const net::Datagram& datagram) { estimator.on_datagram(datagram); });
    estimator.start();
    while (!done && loop_.step()) {
    }
    services_.set_handler(nullptr);
    return result;
  }

  /// Run a full multi-probe host session; returns the host record.
  core::HostScanRecord probe_host(net::IPv4Address target,
                                  const core::IwScanConfig& config) {
    core::HostScanRecord record;
    bool done = false;
    core::HostProber prober(
        services_, target, config,
        [&](const core::HostScanRecord& r) { record = r; }, [&] { done = true; });
    services_.set_handler(
        [&](const net::Datagram& datagram) { prober.on_datagram(datagram); });
    prober.start();
    while (!done && loop_.step()) {
    }
    services_.set_handler(nullptr);
    return record;
  }

  /// Standard HTTP request the strategies would send first.
  static net::Bytes http_get(net::IPv4Address host, std::string_view path = "/") {
    std::string req = "GET " + std::string(path) + " HTTP/1.1\r\nHost: " +
                      host.to_string() + "\r\nConnection: close\r\n\r\n";
    return net::to_bytes(req);
  }

 private:
  sim::EventLoop loop_;
  sim::Network network_;
  DirectServices services_;
  std::vector<std::unique_ptr<tcp::TcpHost>> hosts_;
};

}  // namespace iwscan::test
